package metrics

import (
	"math"
	"strings"
	"testing"

	"stfw/internal/core"
	"stfw/internal/vpt"
)

func TestSummarizeDirect(t *testing.T) {
	// Rank 0 sends 3 messages of 10 words; rank 1 sends 1 of 5.
	s := core.NewSendSets(4)
	s.Add(0, 1, 10)
	s.Add(0, 2, 10)
	s.Add(0, 3, 10)
	s.Add(1, 2, 5)
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	p, err := core.BuildDirectPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize("BL", p, s)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MMax != 3 {
		t.Errorf("MMax = %v", sum.MMax)
	}
	if sum.MAvg != 1.0 { // 4 messages / 4 ranks
		t.Errorf("MAvg = %v", sum.MAvg)
	}
	if sum.VAvg != 35.0/4 {
		t.Errorf("VAvg = %v", sum.VAvg)
	}
	// The baseline has no store-and-forward residency: rank 0's footprint
	// is its original 30 send words -> 240 bytes (the max across ranks).
	if sum.BufferBytes != 240 {
		t.Errorf("BufferBytes = %v", sum.BufferBytes)
	}
	if sum.Scheme != "BL" {
		t.Errorf("scheme %q", sum.Scheme)
	}
}

func TestSummarizeMismatch(t *testing.T) {
	s := core.NewSendSets(4)
	p, _ := core.BuildDirectPlan(s)
	for _, badK := range []int{1, 8} {
		bad := core.NewSendSets(badK)
		_, err := Summarize("x", p, bad)
		if err == nil {
			t.Errorf("K=%d mismatch accepted", badK)
		} else if !strings.Contains(err.Error(), "K=") {
			t.Errorf("K=%d error does not name the mismatch: %v", badK, err)
		}
	}
	// Matching K on an all-empty schedule is not an error: every metric is
	// simply zero.
	sum, err := Summarize("empty", p, core.NewSendSets(4))
	if err != nil {
		t.Fatal(err)
	}
	if sum.MMax != 0 || sum.MAvg != 0 || sum.VAvg != 0 || sum.BufferBytes != 0 {
		t.Errorf("empty schedule metrics = %+v", sum)
	}
}

func TestSummarizeSTFWBoundConsistency(t *testing.T) {
	tp := vpt.MustNew(4, 4)
	s := core.Complete(16, 2)
	p, err := core.BuildPlan(tp, s)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize("STFW2", p, s)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MMax != float64(core.MaxMessageBound(tp)) {
		t.Errorf("MMax = %v, want bound %d", sum.MMax, core.MaxMessageBound(tp))
	}
	if sum.MAvg > sum.MMax {
		t.Error("MAvg exceeds MMax")
	}
	// Complete exchange: STFW volume strictly exceeds direct volume.
	direct, _ := core.BuildDirectPlan(s)
	dsum, _ := Summarize("BL", direct, s)
	if sum.VAvg <= dsum.VAvg {
		t.Errorf("STFW VAvg %v not above BL %v", sum.VAvg, dsum.VAvg)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("GeoMean(5) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	// Non-positive entries are skipped, not zeroing the mean.
	if got := GeoMean([]float64{0, 4, 4}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean with zero = %v", got)
	}
}

func TestAggregate(t *testing.T) {
	rows := []Summary{
		{MMax: 2, MAvg: 1, VAvg: 10, CommTime: 1e-6, SpMVTime: 2e-6, BufferBytes: 100},
		{MMax: 8, MAvg: 4, VAvg: 1000, CommTime: 4e-6, SpMVTime: 8e-6, BufferBytes: 400},
	}
	agg := Aggregate("STFW3", rows)
	if agg.Scheme != "STFW3" {
		t.Errorf("scheme %q", agg.Scheme)
	}
	if math.Abs(agg.MMax-4) > 1e-12 {
		t.Errorf("MMax = %v", agg.MMax)
	}
	if math.Abs(agg.MAvg-2) > 1e-12 {
		t.Errorf("MAvg = %v", agg.MAvg)
	}
	if math.Abs(agg.VAvg-100) > 1e-9 {
		t.Errorf("VAvg = %v", agg.VAvg)
	}
	if math.Abs(agg.CommTime-2e-6) > 1e-15 {
		t.Errorf("CommTime = %v", agg.CommTime)
	}
	if math.Abs(agg.BufferBytes-200) > 1e-9 {
		t.Errorf("BufferBytes = %v", agg.BufferBytes)
	}
}

func TestHistogram(t *testing.T) {
	s := core.NewSendSets(4)
	s.Add(0, 1, 1)
	s.Add(0, 2, 1)
	s.Add(3, 0, 1)
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	p, _ := core.BuildDirectPlan(s)
	counts, max, mean := Histogram(p)
	if len(counts) != 4 || counts[0] != 2 || counts[3] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if max != 2 {
		t.Errorf("max = %d", max)
	}
	if math.Abs(mean-0.75) > 1e-12 {
		t.Errorf("mean = %v", mean)
	}
}
