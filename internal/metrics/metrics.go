// Package metrics summarizes communication schedules into the paper's
// performance metrics: maximum and average message count, average volume,
// and buffer size, plus the geometric-mean aggregation Table 2 and Table 3
// apply across matrix suites.
package metrics

import (
	"fmt"
	"math"

	"stfw/internal/core"
)

// Summary holds the per-instance metrics of one scheme on one input,
// mirroring a row of Table 2 / Table 3.
type Summary struct {
	Scheme string
	// MMax is the maximum over processes of sent message count (mmax).
	MMax float64
	// MAvg is the average over processes of sent message count (mavg).
	MAvg float64
	// VAvg is the average over processes of sent volume in words (vavg).
	VAvg float64
	// CommTime and SpMVTime are filled by the caller from netsim (seconds).
	CommTime float64
	SpMVTime float64
	// BufferBytes is the maximum over processes of the buffer footprint:
	// the original send+receive payloads plus peak store-and-forward
	// residency, in bytes (8 bytes per word).
	BufferBytes float64
}

// Summarize computes the message-count, volume and buffer metrics of a
// plan. sends is the application-level requirement the plan realizes (used
// for the original send/receive buffer part of the buffer metric).
func Summarize(scheme string, p *core.Plan, sends *core.SendSets) (Summary, error) {
	K := len(p.SentMsgs)
	if sends.K != K {
		return Summary{}, fmt.Errorf("metrics: send sets K=%d != plan K=%d", sends.K, K)
	}
	s := Summary{Scheme: scheme}
	var msgSum int
	var wordSum int64
	for q := 0; q < K; q++ {
		if float64(p.SentMsgs[q]) > s.MMax {
			s.MMax = float64(p.SentMsgs[q])
		}
		msgSum += p.SentMsgs[q]
		wordSum += p.SentWords[q]
	}
	s.MAvg = float64(msgSum) / float64(K)
	s.VAvg = float64(wordSum) / float64(K)

	// Buffer: original application send + receive words per rank, plus the
	// peak store-and-forward residency of the schedule.
	recv := sends.RecvSets()
	for q := 0; q < K; q++ {
		var orig int64
		for _, pr := range sends.Sets[q] {
			orig += pr.Words
		}
		for _, pr := range recv[q] {
			orig += pr.Words
		}
		b := float64(orig+p.MaxBufferWords[q]) * 8
		if b > s.BufferBytes {
			s.BufferBytes = b
		}
	}
	return s, nil
}

// GeoMean returns the geometric mean of the values, ignoring non-positive
// entries the way the paper's geometric averages must (a zero metric would
// zero the mean); it returns 0 if no positive values exist.
func GeoMean(vals []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Aggregate geometric-means a set of per-matrix summaries for the same
// scheme into one row, the way Table 2 aggregates the 15 test matrices.
func Aggregate(scheme string, rows []Summary) Summary {
	pick := func(f func(Summary) float64) float64 {
		vals := make([]float64, len(rows))
		for i, r := range rows {
			vals[i] = f(r)
		}
		return GeoMean(vals)
	}
	return Summary{
		Scheme:      scheme,
		MMax:        pick(func(s Summary) float64 { return s.MMax }),
		MAvg:        pick(func(s Summary) float64 { return s.MAvg }),
		VAvg:        pick(func(s Summary) float64 { return s.VAvg }),
		CommTime:    pick(func(s Summary) float64 { return s.CommTime }),
		SpMVTime:    pick(func(s Summary) float64 { return s.SpMVTime }),
		BufferBytes: pick(func(s Summary) float64 { return s.BufferBytes }),
	}
}

// Histogram returns per-process sent message counts of a plan, the series
// Figure 1 plots, along with its max and mean.
func Histogram(p *core.Plan) (counts []int, max int, mean float64) {
	counts = append([]int(nil), p.SentMsgs...)
	sum := 0
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if len(counts) > 0 {
		mean = float64(sum) / float64(len(counts))
	}
	return counts, max, mean
}
