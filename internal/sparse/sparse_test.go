package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustFromTriples(t *testing.T, rows, cols int, ts []Triple) *CSR {
	t.Helper()
	m, err := FromTriples(rows, cols, ts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromTriples(t *testing.T) {
	m := mustFromTriples(t, 3, 4, []Triple{
		{2, 1, 5}, {0, 0, 1}, {0, 3, 2}, {2, 1, 3}, // duplicate merges to 8
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.RowDegree(0) != 2 || m.RowDegree(1) != 0 || m.RowDegree(2) != 1 {
		t.Errorf("row degrees wrong")
	}
	cols, vals := m.Row(2)
	if len(cols) != 1 || cols[0] != 1 || vals[0] != 8 {
		t.Errorf("row 2 = %v %v", cols, vals)
	}
	cols0, _ := m.Row(0)
	if cols0[0] != 0 || cols0[1] != 3 {
		t.Errorf("row 0 not sorted: %v", cols0)
	}
}

func TestFromTriplesOutOfRange(t *testing.T) {
	if _, err := FromTriples(2, 2, []Triple{{2, 0, 1}}); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := FromTriples(2, 2, []Triple{{0, -1, 1}}); err == nil {
		t.Error("negative col accepted")
	}
}

func TestTranspose(t *testing.T) {
	m := mustFromTriples(t, 2, 3, []Triple{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.NNZ() != 3 {
		t.Fatalf("transpose shape %dx%d nnz %d", tr.Rows, tr.Cols, tr.NNZ())
	}
	cols, vals := tr.Row(2)
	if len(cols) != 1 || cols[0] != 0 || vals[0] != 2 {
		t.Errorf("transpose row 2 = %v %v", cols, vals)
	}
	// Double transpose is identity.
	trtr := tr.Transpose()
	for i := 0; i <= m.Rows; i++ {
		if m.RowPtr[i] != trtr.RowPtr[i] {
			t.Fatal("double transpose rowptr differs")
		}
	}
	for k := range m.ColIdx {
		if m.ColIdx[k] != trtr.ColIdx[k] || m.Val[k] != trtr.Val[k] {
			t.Fatal("double transpose entries differ")
		}
	}
}

func TestIsSymmetricPattern(t *testing.T) {
	sym := mustFromTriples(t, 2, 2, []Triple{{0, 1, 5}, {1, 0, 7}, {0, 0, 1}})
	if !sym.IsSymmetricPattern() {
		t.Error("symmetric pattern not detected")
	}
	asym := mustFromTriples(t, 2, 2, []Triple{{0, 1, 5}})
	if asym.IsSymmetricPattern() {
		t.Error("asymmetric pattern accepted")
	}
	rect := mustFromTriples(t, 2, 3, []Triple{{0, 1, 5}})
	if rect.IsSymmetricPattern() {
		t.Error("rectangular matrix cannot be symmetric")
	}
}

func TestMulVec(t *testing.T) {
	// [1 0 2; 0 3 0] * [1 2 3] = [7, 6]
	m := mustFromTriples(t, 2, 3, []Triple{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	y, err := m.MulVec(nil, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 || y[1] != 6 {
		t.Errorf("y = %v", y)
	}
	if _, err := m.MulVec(nil, []float64{1}); err == nil {
		t.Error("bad x length accepted")
	}
	if _, err := m.MulVec(make([]float64, 5), []float64{1, 2, 3}); err == nil {
		t.Error("bad y length accepted")
	}
}

func TestComputeStats(t *testing.T) {
	// Degrees: 2, 1, 1 -> avg 4/3, max 2.
	m := mustFromTriples(t, 3, 3, []Triple{{0, 0, 1}, {0, 1, 1}, {1, 1, 1}, {2, 0, 1}})
	s := ComputeStats(m)
	if s.MaxDegree != 2 || s.NNZ != 4 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.AvgDegree-4.0/3.0) > 1e-12 {
		t.Errorf("avg = %v", s.AvgDegree)
	}
	if math.Abs(s.MaxDR-2.0/3.0) > 1e-12 {
		t.Errorf("maxdr = %v", s.MaxDR)
	}
	// cv of (2,1,1): mean 4/3, var = ( (2/3)^2 + 2*(1/3)^2 )/3 = 2/9
	wantCV := math.Sqrt(2.0/9.0) / (4.0 / 3.0)
	if math.Abs(s.CV-wantCV) > 1e-12 {
		t.Errorf("cv = %v, want %v", s.CV, wantCV)
	}
}

func TestGenerateBasicProperties(t *testing.T) {
	m, err := Generate(GenParams{
		Name: "test", Rows: 2000, TargetNNZ: 30000, MaxDegree: 400,
		HubRows: 3, Band: 6, TailFrac: 0.3, TailSkew: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2000 || m.Cols != 2000 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if !m.IsSymmetricPattern() {
		t.Error("generated matrix must have symmetric pattern")
	}
	s := ComputeStats(m)
	if float64(s.NNZ) < 0.8*30000 || float64(s.NNZ) > 1.2*30000 {
		t.Errorf("nnz %d far from target 30000", s.NNZ)
	}
	if s.MaxDegree < 300 || s.MaxDegree > 401 {
		t.Errorf("max degree %d far from target 400", s.MaxDegree)
	}
	// Full diagonal.
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		found := false
		for _, c := range cols {
			if int(c) == i {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("row %d missing diagonal", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := GenParams{Name: "det", Rows: 500, TargetNNZ: 5000, MaxDegree: 100, HubRows: 2, Band: 4, TailFrac: 0.2, TailSkew: 1.4}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != b.NNZ() {
		t.Fatal("generator not deterministic")
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenParams{Rows: 1}); err == nil {
		t.Error("1-row matrix accepted")
	}
	// MaxDegree >= Rows is clamped, not an error.
	m, err := Generate(GenParams{Name: "clamp", Rows: 16, TargetNNZ: 100, MaxDegree: 100, HubRows: 1, Band: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ComputeStats(m).MaxDegree > 16 {
		t.Error("degree exceeds rows")
	}
}

func TestScaleParams(t *testing.T) {
	p := GenParams{Name: "s", Rows: 100000, TargetNNZ: 4000000, MaxDegree: 5000, Band: 100}
	q := ScaleParams(p, 4)
	if q.Rows != 25000 {
		t.Errorf("rows = %d", q.Rows)
	}
	// nnz scales by factor^2 (uniform-sampling semantics).
	if q.TargetNNZ != 250000 {
		t.Errorf("nnz = %d", q.TargetNNZ)
	}
	// maxdr preserved: 5000/100000 == q.MaxDegree/25000
	if math.Abs(float64(q.MaxDegree)/25000.0-0.05) > 0.001 {
		t.Errorf("maxdr drifted: maxdeg %d", q.MaxDegree)
	}
	// density preserved: avgdeg/rows constant.
	origDensity := float64(p.TargetNNZ) / float64(p.Rows) / float64(p.Rows)
	newDensity := float64(q.TargetNNZ) / float64(q.Rows) / float64(q.Rows)
	if math.Abs(newDensity-origDensity)/origDensity > 0.05 {
		t.Errorf("density drifted: %v vs %v", newDensity, origDensity)
	}
	same := ScaleParams(p, 1)
	if same.Rows != p.Rows {
		t.Error("scale 1 must be identity")
	}
	// A dense original cannot exceed the 35% density clamp when shrunk.
	dense := GenParams{Name: "d", Rows: 14340, TargetNNZ: 18068388, MaxDegree: 7229, Band: 630}
	dq := ScaleParams(dense, 128)
	if dq.TargetNNZ > dq.Rows*dq.Rows*35/100 {
		t.Errorf("density clamp failed: %d nnz for %d rows", dq.TargetNNZ, dq.Rows)
	}
	if dq.MaxDegree > dq.Rows-1 {
		t.Errorf("max degree %d exceeds rows %d", dq.MaxDegree, dq.Rows)
	}
}

func TestCatalogComplete(t *testing.T) {
	names := CatalogNames()
	if len(names) != 22 {
		t.Fatalf("catalog has %d entries, want 22", len(names))
	}
	if len(Top15Names()) != 15 {
		t.Errorf("top15 = %d", len(Top15Names()))
	}
	b10 := Bottom10Names()
	if len(b10) != 10 {
		t.Fatalf("bottom10 = %d: %v", len(b10), b10)
	}
	for _, n := range b10 {
		e, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if e.RefNNZ <= 10_000_000 {
			t.Errorf("%s in bottom10 with %d nnz", n, e.RefNNZ)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown matrix accepted")
	}
}

func TestCatalogAnalogsMatchTable1(t *testing.T) {
	// Scaled-down analogs must preserve the qualitative regimes the paper
	// relies on: analogs of high-maxdr matrices must have high maxdr,
	// low-cv matrices low cv.
	if testing.Short() {
		t.Skip("catalog sweep")
	}
	for _, name := range CatalogNames() {
		e, _ := Lookup(name)
		m, err := CatalogMatrix(name, 32)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := ComputeStats(m)
		if !m.IsSymmetricPattern() {
			t.Errorf("%s: asymmetric analog", name)
		}
		// nnz within 35% of the scaled target.
		want := float64(ScaleParams(e.Params, 32).TargetNNZ)
		if f := float64(s.NNZ) / want; f < 0.65 || f > 1.35 {
			t.Errorf("%s: nnz %d vs target %.0f (ratio %.2f)", name, s.NNZ, want, f)
		}
		// maxdr within a factor ~3 of the reference (regime-preserving).
		if e.RefMaxDR > 0.01 && s.MaxDR < e.RefMaxDR/3 {
			t.Errorf("%s: maxdr %.4f too low vs ref %.4f", name, s.MaxDR, e.RefMaxDR)
		}
		if e.RefMaxDR < 0.01 && s.MaxDR > 0.2 {
			t.Errorf("%s: maxdr %.4f too high vs ref %.4f", name, s.MaxDR, e.RefMaxDR)
		}
		// Irregular matrices must stay irregular.
		if e.RefCV > 1.5 && s.CV < 0.4 {
			t.Errorf("%s: cv %.2f too regular vs ref %.2f", name, s.CV, e.RefCV)
		}
		if e.RefCV < 0.3 && s.CV > 1.0 {
			t.Errorf("%s: cv %.2f too irregular vs ref %.2f", name, s.CV, e.RefCV)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := mustFromTriples(t, 3, 3, []Triple{{0, 0, 1.5}, {0, 2, -2}, {2, 1, 3.25}})
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 3 || got.Cols != 3 || got.NNZ() != 3 {
		t.Fatalf("round trip shape %dx%d nnz %d", got.Rows, got.Cols, got.NNZ())
	}
	for k := range m.ColIdx {
		if got.ColIdx[k] != m.ColIdx[k] || got.Val[k] != m.Val[k] {
			t.Fatal("round trip entries differ")
		}
	}
}

func TestReadMatrixMarketVariants(t *testing.T) {
	sym := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 2
2 1 5.0
3 3 1.0
`
	m, err := ReadMatrixMarket(strings.NewReader(sym))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 { // (1,0), (0,1), (2,2)
		t.Errorf("symmetric expansion nnz = %d", m.NNZ())
	}
	pat := `%%MatrixMarket matrix coordinate pattern general
2 2 1
1 2
`
	m2, err := ReadMatrixMarket(strings.NewReader(pat))
	if err != nil {
		t.Fatal(err)
	}
	if m2.NNZ() != 1 || m2.Val[0] != 1 {
		t.Errorf("pattern read wrong")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n1 2 1\n",
		"%%MatrixMarket matrix coordinate real general\n-1 2 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
	} {
		if _, err := ReadMatrixMarket(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted bad input %q", bad)
		}
	}
}

// Property: MulVec distributes over vector addition.
func TestQuickMulVecLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := Generate(GenParams{Name: "q", Rows: 200, TargetNNZ: 2000, MaxDegree: 40, HubRows: 1, Band: 3, TailFrac: 0.2, TailSkew: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x1 := make([]float64, m.Cols)
		x2 := make([]float64, m.Cols)
		sum := make([]float64, m.Cols)
		for i := range x1 {
			x1[i], x2[i] = r.NormFloat64(), r.NormFloat64()
			sum[i] = x1[i] + x2[i]
		}
		y1, _ := m.MulVec(nil, x1)
		y2, _ := m.MulVec(nil, x2)
		ys, _ := m.MulVec(nil, sum)
		for i := range ys {
			if math.Abs(ys[i]-(y1[i]+y2[i])) > 1e-9*(1+math.Abs(ys[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateMedium(b *testing.B) {
	p := GenParams{Name: "bench", Rows: 20000, TargetNNZ: 400000, MaxDegree: 2000, HubRows: 8, Band: 10, TailFrac: 0.4, TailSkew: 1.5}
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulVec(b *testing.B) {
	m, err := Generate(GenParams{Name: "mv", Rows: 50000, TargetNNZ: 1000000, MaxDegree: 500, HubRows: 4, Band: 8, TailFrac: 0.2, TailSkew: 1.4})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%13) * 0.5
	}
	y := make([]float64, m.Rows)
	b.SetBytes(int64(m.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MulVec(y, x); err != nil {
			b.Fatal(err)
		}
	}
}
