package sparse

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
)

// GenParams parameterizes the synthetic symmetric matrix generator. The
// generator composes three structures that together span the space of
// Table 1's matrices:
//
//   - a banded local base (structural-mechanics-like regular coupling),
//   - a small number of dense hub rows/columns (the dense rows that make
//     instances latency-bound: one process ends up talking to almost
//     everyone),
//   - a power-law tail of random long-range edges (graph-like irregularity
//     that raises the coefficient of variation).
//
// The pattern is symmetric with a full diagonal, like the paper's test set.
type GenParams struct {
	Name      string
	Rows      int
	TargetNNZ int     // total stored nonzeros to aim for (within a few %)
	MaxDegree int     // intended max row degree (drives maxdr)
	HubRows   int     // number of dense rows with degree ~ MaxDegree
	Band      int     // half-bandwidth of the local base
	TailFrac  float64 // fraction of non-hub off-diagonal edges drawn from the power-law tail
	TailSkew  float64 // Zipf-like skew of tail endpoints; 0 = uniform
	Seed      int64   // 0 = derive deterministically from Name
}

// Generate builds the matrix. It is deterministic for fixed params.
func Generate(p GenParams) (*CSR, error) {
	if p.Rows < 2 {
		return nil, fmt.Errorf("sparse: Generate: need at least 2 rows, got %d", p.Rows)
	}
	if p.MaxDegree >= p.Rows {
		p.MaxDegree = p.Rows - 1
	}
	if p.TargetNNZ < p.Rows {
		p.TargetNNZ = p.Rows
	}
	seed := p.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(p.Name))
		seed = int64(h.Sum64() & 0x7fffffffffffffff)
	}
	rng := rand.New(rand.NewSource(seed))

	n := p.Rows
	// Off-diagonal degree cap: the diagonal contributes 1 to the row
	// degree, so cap at MaxDegree-1 to make MaxDegree the actual maximum.
	capDeg := p.MaxDegree - 1
	if capDeg < 1 {
		capDeg = 1
	}
	// Adjacency as per-row sets of columns > row (upper triangle); the
	// diagonal and lower triangle are implied.
	adj := make(map[int64]struct{}, p.TargetNNZ/2)
	degree := make([]int, n)
	key := func(i, j int) int64 { return int64(i)*int64(n) + int64(j) }
	addEdge := func(i, j int) bool {
		if i == j || degree[i] >= capDeg || degree[j] >= capDeg {
			return false
		}
		if i > j {
			i, j = j, i
		}
		k := key(i, j)
		if _, dup := adj[k]; dup {
			return false
		}
		adj[k] = struct{}{}
		degree[i]++
		degree[j]++
		return true
	}

	// Budget: TargetNNZ = n (diagonal) + 2 * |edges|, clamped below both
	// the clique capacity and the degree-cap capacity so the fill loop
	// terminates even for over-ambitious parameters.
	budget := (p.TargetNNZ - n) / 2
	if budget < 0 {
		budget = 0
	}
	if clique := int64(n) * int64(n-1) / 2 * 7 / 10; int64(budget) > clique {
		budget = int(clique)
	}
	if capSum := int64(n) * int64(capDeg) / 2 * 8 / 10; int64(budget) > capSum {
		budget = int(capSum)
	}
	edges := 0

	// 1. Hub rows: evenly spread dense rows aiming at MaxDegree.
	hubDeg := p.MaxDegree - 1 // diagonal contributes 1
	if hubDeg < 0 {
		hubDeg = 0
	}
	for h := 0; h < p.HubRows && edges < budget; h++ {
		hub := h * n / p.HubRows
		if hub >= n {
			hub = n - 1
		}
		// First hub hits MaxDegree exactly; later hubs taper off so the
		// degree distribution has a heavy but not flat top.
		want := hubDeg
		if h > 0 {
			want = hubDeg / (1 + h)
			if want < hubDeg/4 {
				want = hubDeg / 4
			}
		}
		for tries := 0; degree[hub] < want && tries < 4*want && edges < budget; tries++ {
			if addEdge(hub, rng.Intn(n)) {
				edges++
			}
		}
	}

	// 2. Local banded base plus 3. power-law tail for the remaining budget.
	band := p.Band
	if band < 1 {
		band = 1
	}
	zipfMax := uint64(n - 1)
	var zipf *rand.Zipf
	if p.TailSkew > 1 {
		zipf = rand.NewZipf(rng, p.TailSkew, 1, zipfMax)
	}
	tailEnd := func() int {
		if zipf != nil {
			return int(zipf.Uint64())
		}
		return rng.Intn(n)
	}
	row := 0
	stalls := 0
	for edges < budget {
		added := false
		if p.TailFrac > 0 && rng.Float64() < p.TailFrac {
			added = addEdge(tailEnd(), tailEnd())
		} else {
			// Banded edge around a sweeping row cursor.
			i := row
			row++
			if row >= n {
				row = 0
			}
			off := 1 + rng.Intn(band)
			j := i + off
			if j >= n {
				j = i - off
			}
			if j >= 0 {
				added = addEdge(i, j)
			}
		}
		if added {
			edges++
			stalls = 0
			continue
		}
		// The band (or the skewed tail) can saturate before the budget is
		// met; widen the band so the loop always terminates. If the band
		// already spans the matrix the budget clamp above guarantees
		// enough free slots for rejection sampling to find.
		if stalls++; stalls > 2*n+1000 {
			stalls = 0
			if band < n-1 {
				band *= 2
				if band > n-1 {
					band = n - 1
				}
			} else if zipf != nil {
				zipf = nil // fall back to uniform endpoints
			} else {
				break // defensive: should be unreachable under the clamps
			}
		}
	}

	// Materialize the symmetric CSR with a unit diagonal.
	ts := make([]Triple, 0, n+2*edges)
	for i := 0; i < n; i++ {
		ts = append(ts, Triple{Row: i, Col: i, Val: float64(4 + i%7)})
	}
	pairs := make([]int64, 0, len(adj))
	for k := range adj {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a] < pairs[b] })
	for _, k := range pairs {
		i, j := int(k/int64(n)), int(k%int64(n))
		v := 1.0 + float64((i+j)%5)*0.25
		ts = append(ts, Triple{Row: i, Col: j, Val: v}, Triple{Row: j, Col: i, Val: v})
	}
	return FromTriples(n, n, ts)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ScaleParams returns a copy of p shrunk by an integer factor the way
// uniform row/column sampling would shrink the matrix: rows and every
// degree scale by 1/factor, so nonzeros scale by 1/factor^2. This preserves
// the statistics the evaluation depends on — maxdr (max degree over rows),
// density, and the relative irregularity of the degree distribution (and
// hence cv) — while making generation and routing affordable. Scaled
// analogs interact with a K-process partition the same way the originals
// do: a dense row that touched x% of the rows still touches x%.
func ScaleParams(p GenParams, factor int) GenParams {
	if factor <= 1 {
		return p
	}
	q := p
	q.Rows = maxInt(p.Rows/factor, 64)
	shrink := float64(p.Rows) / float64(q.Rows)
	q.TargetNNZ = maxInt(int(float64(p.TargetNNZ)/(shrink*shrink)), 2*q.Rows)
	if maxNNZ := q.Rows * q.Rows * 35 / 100; q.TargetNNZ > maxNNZ {
		q.TargetNNZ = maxNNZ
	}
	q.MaxDegree = maxInt(int(float64(p.MaxDegree)/shrink), 3)
	if q.MaxDegree > q.Rows-1 {
		q.MaxDegree = q.Rows - 1
	}
	q.Band = maxInt(int(float64(p.Band)/shrink), 1)
	return q
}
