// Package sparse provides the sparse-matrix substrate of the evaluation:
// CSR storage, structure statistics (Table 1's max degree, coefficient of
// variation, maximum degree ratio), deterministic synthetic generators, a
// catalog of analogs for the paper's 22 SuiteSparse matrices, and a
// MatrixMarket-subset reader/writer.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format. RowPtr has
// Rows+1 entries; the column indices of row i are ColIdx[RowPtr[i]:
// RowPtr[i+1]], sorted increasing, with values in the matching positions of
// Val.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Val        []float64
}

// Triple is one coordinate-format nonzero.
type Triple struct {
	Row, Col int
	Val      float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowDegree returns the number of nonzeros in row i.
func (m *CSR) RowDegree(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Row returns the column indices and values of row i (views, do not
// modify).
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// FromTriples builds a CSR from coordinate entries, merging duplicates by
// addition and sorting each row. Out-of-range entries are an error.
func FromTriples(rows, cols int, ts []Triple) (*CSR, error) {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of %dx%d", t.Row, t.Col, rows, cols)
		}
	}
	sorted := make([]Triple, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	for i, t := range sorted {
		if i > 0 && sorted[i-1].Row == t.Row && sorted[i-1].Col == t.Col {
			m.Val[len(m.Val)-1] += t.Val
			continue
		}
		m.ColIdx = append(m.ColIdx, int32(t.Col))
		m.Val = append(m.Val, t.Val)
		m.RowPtr[t.Row+1] = int64(len(m.ColIdx))
	}
	for i := 1; i <= rows; i++ {
		if m.RowPtr[i] == 0 {
			m.RowPtr[i] = m.RowPtr[i-1]
		}
	}
	return m, nil
}

// Transpose returns the transpose of m.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int64, m.Cols+1)}
	t.ColIdx = make([]int32, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 1; i <= m.Cols; i++ {
		t.RowPtr[i] += t.RowPtr[i-1]
	}
	next := make([]int64, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			pos := next[c]
			t.ColIdx[pos] = int32(i)
			t.Val[pos] = vals[k]
			next[c]++
		}
	}
	return t
}

// IsSymmetricPattern reports whether the sparsity pattern is symmetric
// (values may differ).
func (m *CSR) IsSymmetricPattern() bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	for i := range m.RowPtr {
		if m.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	for i := range m.ColIdx {
		if m.ColIdx[i] != t.ColIdx[i] {
			return false
		}
	}
	return true
}

// MulVec computes y = m * x serially; the parallel SpMV is validated
// against it. len(x) must equal Cols; y is allocated if nil.
func (m *CSR) MulVec(y, x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("sparse: x length %d != cols %d", len(x), m.Cols)
	}
	if y == nil {
		y = make([]float64, m.Rows)
	} else if len(y) != m.Rows {
		return nil, fmt.Errorf("sparse: y length %d != rows %d", len(y), m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		var sum float64
		for k, c := range cols {
			sum += vals[k] * x[c]
		}
		y[i] = sum
	}
	return y, nil
}

// Stats summarizes the structure of a matrix the way Table 1 does.
type Stats struct {
	Rows, Cols int
	NNZ        int
	MaxDegree  int     // max row degree
	AvgDegree  float64 // mean row degree
	CV         float64 // coefficient of variation of row degrees
	MaxDR      float64 // max degree / number of rows
}

// ComputeStats returns the Table-1 statistics of m.
func ComputeStats(m *CSR) Stats {
	s := Stats{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}
	if m.Rows == 0 {
		return s
	}
	var sum, sumsq float64
	for i := 0; i < m.Rows; i++ {
		d := float64(m.RowDegree(i))
		sum += d
		sumsq += d * d
		if int(d) > s.MaxDegree {
			s.MaxDegree = int(d)
		}
	}
	n := float64(m.Rows)
	s.AvgDegree = sum / n
	variance := sumsq/n - s.AvgDegree*s.AvgDegree
	if variance < 0 {
		variance = 0
	}
	if s.AvgDegree > 0 {
		s.CV = math.Sqrt(variance) / s.AvgDegree
	}
	s.MaxDR = float64(s.MaxDegree) / n
	return s
}
