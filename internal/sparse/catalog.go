package sparse

import (
	"fmt"
	"sort"
)

// The catalog maps each of the paper's 22 SuiteSparse matrices (Table 1) to
// generator parameters tuned to land near its published structure
// statistics: rows, nonzeros, maximum row degree (and therefore maxdr =
// max/rows), and coefficient of variation of row degrees. The actual
// matrices are not redistributable inputs of this repository; the analogs
// reproduce the communication character — dense rows and irregularity —
// that drives the paper's evaluation.
//
// Table 1 reference values (rows, nnz, max, cv, maxdr):
//
//	cbuckle          13681   676515    600  0.16 0.044
//	msc10848         10848  1229778    723  0.42 0.067
//	fe_rotor         99617  1324862    125  0.29 0.001
//	sparsine         50000  1548988     56  0.36 0.001
//	coAuthorsDBLP   299067  1955352    336  1.50 0.001
//	net125           36720  2577200    231  0.95 0.006
//	nd3k              9000  3279690    515  0.26 0.057
//	GaAsH6           61349  3381809   1646  2.44 0.027
//	pkustk04         55590  4218660   4230  1.46 0.076
//	gupta2           62064  4248286   8413  5.20 0.136
//	TSOPF_FS_b300_c2 56814  8767466  27742  6.23 0.488
//	pattern1         19242  9323432   6028  0.78 0.313
//	Si02            155331 11283503   2749  4.05 0.018
//	human_gene2      14340 18068388   7229  1.09 0.504
//	coPapersCiteseer 434102 32073440  1188  1.37 0.003
//	mip1             66463 10352819  66395  2.25 0.999
//	TSOPF_FS_b300_c3 84414 13135930  41542  7.59 0.492
//	crankseg_2       63838 14148858   3423  0.43 0.054
//	Ga41As41H72     268096 17488476    702  1.53 0.003
//	bundle_adj      513351 20208051  12588  6.37 0.025
//	F1              343791 26837113    435  0.52 0.001
//	nd24k            72000 28715634    520  0.19 0.007
type CatalogEntry struct {
	Params GenParams
	Kind   string
	// Reference values from the paper's Table 1.
	RefRows, RefNNZ, RefMax int
	RefCV, RefMaxDR         float64
}

// mk builds a catalog entry; hub count and tail shape are chosen from the
// reference cv and maxdr: high maxdr needs hubs near max degree, high cv
// needs a skewed tail.
func mk(name, kind string, rows, nnz, maxDeg int, cv, maxdr float64, hubs int, band int, tailFrac, tailSkew float64) CatalogEntry {
	return CatalogEntry{
		Kind: kind,
		Params: GenParams{
			Name:      name,
			Rows:      rows,
			TargetNNZ: nnz,
			MaxDegree: maxDeg,
			HubRows:   hubs,
			Band:      band,
			TailFrac:  tailFrac,
			TailSkew:  tailSkew,
		},
		RefRows: rows, RefNNZ: nnz, RefMax: maxDeg, RefCV: cv, RefMaxDR: maxdr,
	}
}

// catalog lists all 22 matrices in Table 1 order (top 15 then bottom 10;
// mip1..nd24k overlap the ">10M nonzeros" set used in Section 6.5).
var catalog = []CatalogEntry{
	mk("cbuckle", "structural mechanics", 13681, 676515, 600, 0.16, 0.044, 2, 30, 0.02, 0),
	mk("msc10848", "structural eng.", 10848, 1229778, 723, 0.42, 0.067, 4, 60, 0.05, 0),
	mk("fe_rotor", "undirected graph", 99617, 1324862, 125, 0.29, 0.001, 2, 8, 0.05, 0),
	mk("sparsine", "structural eng.", 50000, 1548988, 56, 0.36, 0.001, 2, 16, 0.30, 0),
	mk("coAuthorsDBLP", "co-author network", 299067, 1955352, 336, 1.50, 0.001, 16, 4, 0.75, 1.5),
	mk("net125", "optimization", 36720, 2577200, 231, 0.95, 0.006, 24, 35, 0.40, 1.3),
	mk("nd3k", "2D/3D problem", 9000, 3279690, 515, 0.26, 0.057, 2, 180, 0.05, 0),
	mk("GaAsH6", "chemistry problem", 61349, 3381809, 1646, 2.44, 0.027, 40, 28, 0.55, 1.7),
	mk("pkustk04", "structural eng.", 55590, 4218660, 4230, 1.46, 0.076, 24, 38, 0.30, 1.4),
	mk("gupta2", "linear programming", 62064, 4248286, 8413, 5.20, 0.136, 48, 35, 0.65, 1.9),
	mk("TSOPF_FS_b300_c2", "power network", 56814, 8767466, 27742, 6.23, 0.488, 20, 77, 0.50, 1.9),
	mk("pattern1", "optimization", 19242, 9323432, 6028, 0.78, 0.313, 40, 240, 0.25, 1.2),
	mk("Si02", "chemistry problem", 155331, 11283503, 2749, 4.05, 0.018, 64, 36, 0.60, 1.8),
	mk("human_gene2", "gene network", 14340, 18068388, 7229, 1.09, 0.504, 64, 630, 0.35, 1.2),
	mk("coPapersCiteseer", "citation network", 434102, 32073440, 1188, 1.37, 0.003, 32, 37, 0.60, 1.5),
	mk("mip1", "optimization", 66463, 10352819, 66395, 2.25, 0.999, 6, 78, 0.35, 1.5),
	mk("TSOPF_FS_b300_c3", "power network", 84414, 13135930, 41542, 7.59, 0.492, 24, 78, 0.55, 1.9),
	mk("crankseg_2", "structural eng.", 63838, 14148858, 3423, 0.43, 0.054, 4, 110, 0.05, 0),
	mk("Ga41As41H72", "chemistry problem", 268096, 17488476, 702, 1.53, 0.003, 48, 33, 0.55, 1.6),
	mk("bundle_adj", "computer vision prb.", 513351, 20208051, 12588, 6.37, 0.025, 64, 20, 0.55, 1.9),
	mk("F1", "structural eng.", 343791, 26837113, 435, 0.52, 0.001, 4, 39, 0.08, 0),
	mk("nd24k", "2D/3D problem", 72000, 28715634, 520, 0.19, 0.007, 2, 200, 0.04, 0),
}

// CatalogNames returns all matrix names in Table 1 order.
func CatalogNames() []string {
	names := make([]string, len(catalog))
	for i, e := range catalog {
		names[i] = e.Params.Name
	}
	return names
}

// Top15Names returns the matrices used in Sections 6.2-6.4 (the first 15
// rows of Table 1).
func Top15Names() []string { return CatalogNames()[:15] }

// Bottom10Names returns the matrices with more than 10M nonzeros used for
// the Section 6.5 large-scale analysis (the last 10 rows of Table 1 as
// printed: mip1 .. nd24k plus Si02, human_gene2, coPapersCiteseer).
func Bottom10Names() []string {
	var names []string
	for _, e := range catalog {
		if e.RefNNZ > 10_000_000 {
			names = append(names, e.Params.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Lookup returns the catalog entry for name.
func Lookup(name string) (CatalogEntry, error) {
	for _, e := range catalog {
		if e.Params.Name == name {
			return e, nil
		}
	}
	return CatalogEntry{}, fmt.Errorf("sparse: unknown catalog matrix %q", name)
}

// CatalogMatrix generates the analog of a Table-1 matrix, optionally shrunk
// by an integer scale factor (see ScaleParams); scale <= 1 means full size.
func CatalogMatrix(name string, scale int) (*CSR, error) {
	e, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return Generate(ScaleParams(e.Params, scale))
}
