package sparse

import (
	"fmt"
	"sort"
)

// RCM computes the reverse Cuthill-McKee ordering of a structurally
// symmetric matrix: a breadth-first traversal from a low-degree peripheral
// vertex, visiting neighbors in increasing degree order, reversed. It
// reduces the matrix bandwidth, which turns a block partition into a
// locality-aware partition — a classic, cheap alternative to the greedy
// partitioner for mesh-like structures.
//
// The returned slice maps new position to old index: order[i] is the
// original row placed at position i.
func RCM(a *CSR) ([]int, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: RCM needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	order := make([]int, 0, n)
	visited := make([]bool, n)

	// Degree-sorted vertex list to pick component starts (lowest degree
	// first, the standard peripheral heuristic).
	starts := make([]int, n)
	for i := range starts {
		starts[i] = i
	}
	sort.Slice(starts, func(x, y int) bool {
		dx, dy := a.RowDegree(starts[x]), a.RowDegree(starts[y])
		if dx != dy {
			return dx < dy
		}
		return starts[x] < starts[y]
	})

	queue := make([]int, 0, n)
	nbuf := make([]int, 0, 64)
	for _, s := range starts {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			cols, _ := a.Row(v)
			nbuf = nbuf[:0]
			for _, c := range cols {
				if j := int(c); j != v && !visited[j] {
					visited[j] = true
					nbuf = append(nbuf, j)
				}
			}
			sort.Slice(nbuf, func(x, y int) bool {
				dx, dy := a.RowDegree(nbuf[x]), a.RowDegree(nbuf[y])
				if dx != dy {
					return dx < dy
				}
				return nbuf[x] < nbuf[y]
			})
			queue = append(queue, nbuf...)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// Permute applies a symmetric permutation: row/column `order[i]` of a moves
// to position i of the result (P A P^T with P defined by order).
func Permute(a *CSR, order []int) (*CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: Permute needs a square matrix")
	}
	n := a.Rows
	if len(order) != n {
		return nil, fmt.Errorf("sparse: order length %d != %d", len(order), n)
	}
	newPos := make([]int, n) // newPos[old] = new
	seen := make([]bool, n)
	for newIdx, old := range order {
		if old < 0 || old >= n || seen[old] {
			return nil, fmt.Errorf("sparse: order is not a permutation")
		}
		seen[old] = true
		newPos[old] = newIdx
	}
	ts := make([]Triple, 0, a.NNZ())
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			ts = append(ts, Triple{Row: newPos[i], Col: newPos[c], Val: vals[k]})
		}
	}
	return FromTriples(n, n, ts)
}

// Bandwidth returns the maximum |i - j| over stored nonzeros, the quantity
// RCM minimizes heuristically.
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			d := i - int(c)
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
