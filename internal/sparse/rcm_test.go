package sparse

import (
	"math/rand"
	"testing"
)

// shuffledBanded builds a banded matrix and then scrambles its labels, so
// RCM has bandwidth to recover.
func shuffledBanded(t *testing.T, n, band int, seed int64) *CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	var ts []Triple
	for i := 0; i < n; i++ {
		ts = append(ts, Triple{Row: perm[i], Col: perm[i], Val: 4})
		for off := 1; off <= band; off++ {
			if j := i + off; j < n {
				ts = append(ts, Triple{Row: perm[i], Col: perm[j], Val: 1})
				ts = append(ts, Triple{Row: perm[j], Col: perm[i], Val: 1})
			}
		}
	}
	m, err := FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRCMReducesBandwidth(t *testing.T) {
	m := shuffledBanded(t, 500, 3, 1)
	before := Bandwidth(m)
	order, err := RCM(m)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := Permute(m, order)
	if err != nil {
		t.Fatal(err)
	}
	after := Bandwidth(pm)
	if after >= before {
		t.Errorf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
	// A shuffled band-3 matrix has bandwidth near n; RCM should get it
	// within a small constant of the true band.
	if after > 30 {
		t.Errorf("RCM bandwidth %d far from optimal ~3", after)
	}
	if pm.NNZ() != m.NNZ() {
		t.Errorf("permutation changed nnz: %d -> %d", m.NNZ(), pm.NNZ())
	}
}

func TestRCMIsPermutation(t *testing.T) {
	m := shuffledBanded(t, 200, 2, 3)
	order, err := RCM(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != m.Rows {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, m.Rows)
	for _, v := range order {
		if v < 0 || v >= m.Rows || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	// Two components: {0,1} and {2,3}, plus an isolated vertex 4.
	ts := []Triple{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	}
	m, err := FromTriples(5, 5, ts)
	if err != nil {
		t.Fatal(err)
	}
	order, err := RCM(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("order %v", order)
	}
}

func TestRCMRejectsRectangular(t *testing.T) {
	m, _ := FromTriples(2, 3, []Triple{{Row: 0, Col: 0, Val: 1}})
	if _, err := RCM(m); err == nil {
		t.Error("rectangular accepted")
	}
	if _, err := Permute(m, []int{0, 1}); err == nil {
		t.Error("rectangular permute accepted")
	}
}

func TestPermuteValidation(t *testing.T) {
	m := shuffledBanded(t, 10, 1, 5)
	if _, err := Permute(m, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	bad := make([]int, 10)
	if _, err := Permute(m, bad); err == nil {
		t.Error("duplicate order accepted")
	}
}

func TestPermutePreservesSpectrumProxy(t *testing.T) {
	// A symmetric permutation preserves row degree multiset and values sum.
	m := shuffledBanded(t, 100, 2, 7)
	order, _ := RCM(m)
	pm, err := Permute(m, order)
	if err != nil {
		t.Fatal(err)
	}
	sumDeg := func(a *CSR) (int, float64) {
		d, s := 0, 0.0
		for i := 0; i < a.Rows; i++ {
			d += a.RowDegree(i)
		}
		for _, v := range a.Val {
			s += v
		}
		return d, s
	}
	d1, s1 := sumDeg(m)
	d2, s2 := sumDeg(pm)
	if d1 != d2 || s1 != s2 {
		t.Errorf("permutation not structure-preserving: (%d,%g) vs (%d,%g)", d1, s1, d2, s2)
	}
}

func TestBandwidth(t *testing.T) {
	m, _ := FromTriples(4, 4, []Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 3, Val: 1}, {Row: 2, Col: 1, Val: 1},
	})
	if bw := Bandwidth(m); bw != 3 {
		t.Errorf("bandwidth %d, want 3", bw)
	}
	empty, _ := FromTriples(3, 3, nil)
	if bw := Bandwidth(empty); bw != 0 {
		t.Errorf("empty bandwidth %d", bw)
	}
}

func BenchmarkRCM(b *testing.B) {
	m, err := Generate(GenParams{Name: "rcm", Rows: 20000, TargetNNZ: 200000, MaxDegree: 100, HubRows: 2, Band: 6, TailFrac: 0.1, TailSkew: 1.2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RCM(m); err != nil {
			b.Fatal(err)
		}
	}
}
