package sparse

// DiagonallyDominant returns a copy of a symmetric-pattern matrix whose
// diagonal is boosted to strictly dominate each row (diag = sum of absolute
// off-diagonal values + margin), making the matrix symmetric positive
// definite — the input class of the conjugate gradient solver in
// internal/iterative. The sparsity pattern is preserved except that a
// missing diagonal entry is added.
func DiagonallyDominant(a *CSR, margin float64) (*CSR, error) {
	if margin <= 0 {
		margin = 1
	}
	ts := make([]Triple, 0, a.NNZ()+a.Rows)
	rowAbs := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if int(c) == i {
				continue
			}
			v := vals[k]
			if v < 0 {
				rowAbs[i] -= v
			} else {
				rowAbs[i] += v
			}
			ts = append(ts, Triple{Row: i, Col: int(c), Val: v})
		}
	}
	for i := 0; i < a.Rows; i++ {
		ts = append(ts, Triple{Row: i, Col: i, Val: rowAbs[i] + margin})
	}
	return FromTriples(a.Rows, a.Cols, ts)
}
