package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes m in MatrixMarket coordinate/real/general format
// (1-based indices), the interchange format of the SuiteSparse collection
// the paper draws its inputs from.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, c+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket reads the subset of MatrixMarket this package writes:
// coordinate format, real or pattern values, general or symmetric storage.
// Symmetric storage is expanded to a full pattern.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	valKind, sym := header[3], header[4]
	if valKind != "real" && valKind != "pattern" && valKind != "integer" {
		return nil, fmt.Errorf("sparse: unsupported value type %q", valKind)
	}
	if sym != "general" && sym != "symmetric" {
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", sym)
	}

	// Skip comments, read size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: bad dimensions %dx%d nnz %d", rows, cols, nnz)
	}

	ts := make([]Triple, 0, nnz)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sparse: bad entry %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q", fields[0])
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q", fields[1])
		}
		v := 1.0
		if valKind != "pattern" {
			if len(fields) < 3 {
				return nil, fmt.Errorf("sparse: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q", fields[2])
			}
		}
		ts = append(ts, Triple{Row: i - 1, Col: j - 1, Val: v})
		if sym == "symmetric" && i != j {
			ts = append(ts, Triple{Row: j - 1, Col: i - 1, Val: v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromTriples(rows, cols, ts)
}
