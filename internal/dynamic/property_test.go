// The dynamic-sparsity property suite: randomized mutation sequences
// (pair additions, removals, resizes, whole-rank fanout churn) applied via
// the full production path — NBX census (Discover) → Persistent.Patch →
// PatchCompiled — must leave every rank's replay output bit-identical to a
// world learned from scratch on the mutated pattern, on every transport.
// After every round the patched world is gated through all three verifiers:
// VerifyWorld (schedule consistency), VerifyLearnedWorld (payload-plane
// wire symmetry and route completeness), and VerifyWorldAgainstPlan
// (conservation against an independently built static plan).
package dynamic_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"stfw/internal/core"
	"stfw/internal/dynamic"
	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/tcpnet"
	"stfw/internal/transport/tptest"
	"stfw/internal/vpt"
)

type pairKey struct{ src, dst int }

const propXlen = 192

// gatherFor is a pure function of the pair — both the patched and the
// from-scratch world derive identical gather lists, so halo differences can
// only come from the exchange itself.
func gatherFor(src, dst, size int) []int32 {
	idx := make([]int32, size/8)
	for i := range idx {
		idx[i] = int32((src*29 + dst*13 + i*7) % propXlen)
	}
	return idx
}

func xFor(rank, round int) []float64 {
	x := make([]float64, propXlen)
	for i := range x {
		x[i] = float64(rank*propXlen+i)*1.5 + float64(round)*0.125
	}
	return x
}

// payloadFor is the map-based replay's payload: deterministic bytes so the
// patched Persistent.Run and the relearned one must deliver identical data.
func payloadFor(src, dst, size, round int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(src*31 + dst*17 + i*5 + round*101)
	}
	return b
}

func basePattern(rng *rand.Rand, K int) map[pairKey]int {
	pairs := map[pairKey]int{}
	for src := 0; src < K; src++ {
		fan := 1 + rng.Intn(3)
		for i := 0; i < fan; i++ {
			dst := rng.Intn(K)
			if dst == src {
				continue
			}
			pairs[pairKey{src, dst}] = 8 * (1 + rng.Intn(5))
		}
	}
	return pairs
}

// mutatePattern derives one round's globally valid mutation list: removals
// and resizes of existing pairs, additions of absent ones, and — every
// round — one rank's full fanout churned (all its pairs removed, a fresh
// set added), the hardest case for incremental patching.
func mutatePattern(rng *rand.Rand, K int, pairs map[pairKey]int) []core.PatchPair {
	var muts []core.PatchPair
	touched := map[pairKey]bool{}
	// Deterministic iteration: sort the existing pairs.
	existing := make([]pairKey, 0, len(pairs))
	for pr := range pairs {
		existing = append(existing, pr)
	}
	for i := range existing {
		for j := i + 1; j < len(existing); j++ {
			a, b := existing[i], existing[j]
			if b.src < a.src || (b.src == a.src && b.dst < a.dst) {
				existing[i], existing[j] = existing[j], existing[i]
			}
		}
	}
	churn := rng.Intn(K)
	for _, pr := range existing {
		if pr.src == churn {
			muts = append(muts, core.PatchPair{Src: pr.src, Dst: pr.dst, Remove: true})
			touched[pr] = true
			continue
		}
		switch rng.Intn(6) {
		case 0: // remove
			muts = append(muts, core.PatchPair{Src: pr.src, Dst: pr.dst, Remove: true})
			touched[pr] = true
		case 1: // resize
			muts = append(muts, core.PatchPair{Src: pr.src, Dst: pr.dst, Remove: true})
			muts = append(muts, core.PatchPair{Src: pr.src, Dst: pr.dst, Size: 8 * (1 + rng.Intn(5))})
			touched[pr] = true
		}
	}
	// The churned rank's fresh fanout plus scattered new pairs.
	for i := 0; i < 2+rng.Intn(2); i++ {
		dst := rng.Intn(K)
		pr := pairKey{churn, dst}
		if dst == churn || touched[pr] {
			continue
		}
		if _, exists := pairs[pr]; exists {
			continue // removed above only if src==churn; cannot happen, but keep the guard
		}
		muts = append(muts, core.PatchPair{Src: churn, Dst: dst, Size: 8 * (1 + rng.Intn(5))})
		touched[pr] = true
	}
	for i := 0; i < K/2; i++ {
		pr := pairKey{rng.Intn(K), rng.Intn(K)}
		if pr.src == pr.dst || touched[pr] {
			continue
		}
		if _, exists := pairs[pr]; exists {
			continue
		}
		muts = append(muts, core.PatchPair{Src: pr.src, Dst: pr.dst, Size: 8 * (1 + rng.Intn(5))})
		touched[pr] = true
	}
	return muts
}

func applyMuts(pairs map[pairKey]int, muts []core.PatchPair) {
	for _, m := range muts {
		if m.Remove {
			delete(pairs, pairKey{m.Src, m.Dst})
		}
	}
	for _, m := range muts {
		if !m.Remove {
			pairs[pairKey{m.Src, m.Dst}] = m.Size
		}
	}
}

func gatherWorld(me int, pairs map[pairKey]int) map[int][]int32 {
	g := map[int][]int32{}
	for pr, size := range pairs {
		if pr.src == me {
			g[pr.dst] = gatherFor(pr.src, pr.dst, size)
		}
	}
	return g
}

func payloadWorld(me, round int, pairs map[pairKey]int) map[int][]byte {
	p := map[int][]byte{}
	for pr, size := range pairs {
		if pr.src == me {
			p[pr.dst] = payloadFor(pr.src, pr.dst, size, round)
		}
	}
	return p
}

// runDynamicProperty executes the harness on one world: learn a base
// pattern, then for each round discover + patch + incrementally re-lower
// and prove the replay output bit-identical to a from-scratch relearn of
// the mutated pattern, with all world verifiers green in between.
func runDynamicProperty(t *testing.T, tp *vpt.Topology, comms []runtime.Comm, rounds int, seed int64) {
	t.Helper()
	K := tp.Size()
	rng := rand.New(rand.NewSource(seed))
	pairs := basePattern(rng, K)

	ps := make([]*core.Persistent, K)
	reps := make([]*core.Replay, K)
	err := runtime.Run(comms, func(c runtime.Comm) error {
		me := c.Rank()
		payloads := map[int][]byte{}
		for pr, size := range pairs {
			if pr.src == me {
				payloads[pr.dst] = make([]byte, size)
			}
		}
		p, _, err := core.NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		rep, err := p.Compile(propXlen, gatherWorld(me, pairs))
		if err != nil {
			return err
		}
		ps[me], reps[me] = p, rep
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= rounds; round++ {
		muts := mutatePattern(rng, K, pairs)
		applyMuts(pairs, muts)

		// Each rank announces only its own fanout changes — the census
		// spreads them to every transit rank.
		deltas := make([]dynamic.Delta, K)
		for _, m := range muts {
			if m.Remove {
				deltas[m.Src].Remove = append(deltas[m.Src].Remove, m.Dst)
			} else {
				deltas[m.Src].Add = append(deltas[m.Src].Add, dynamic.Announce{Dst: m.Dst, Size: m.Size})
			}
		}

		halos := make([][]float64, K)
		delivered := make([][]msg.Submessage, K)
		patchStats := make([]*core.PatchStats, K)
		err := runtime.Run(comms, func(c runtime.Comm) error {
			me := c.Rank()
			pd, err := dynamic.Discover(c, tp, deltas[me])
			if err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
			st, err := ps[me].Patch(pd)
			if err != nil {
				return fmt.Errorf("round %d rank %d: patch: %w", round, me, err)
			}
			patchStats[me] = st
			if err := ps[me].PatchCompiled(reps[me], propXlen, gatherWorld(me, pairs), st); err != nil {
				return fmt.Errorf("round %d rank %d: patch-compile: %w", round, me, err)
			}
			halo := make([]float64, reps[me].HaloWords())
			if err := reps[me].Run(c, xFor(me, round), halo); err != nil {
				return fmt.Errorf("round %d rank %d: compiled replay: %w", round, me, err)
			}
			halos[me] = halo
			d, err := ps[me].Run(c, payloadWorld(me, round, pairs))
			if err != nil {
				return fmt.Errorf("round %d rank %d: replay: %w", round, me, err)
			}
			delivered[me] = d.Subs
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		// World gates: schedule consistency, payload-plane symmetry, and
		// conservation against an independently built static plan.
		scheds := core.LearnedWorldSchedules(ps)
		if err := core.VerifyWorld(scheds); err != nil {
			t.Fatalf("round %d: VerifyWorld: %v", round, err)
		}
		if err := core.VerifyLearnedWorld(ps); err != nil {
			t.Fatalf("round %d: VerifyLearnedWorld: %v", round, err)
		}
		ss := core.NewSendSets(K)
		for pr, size := range pairs {
			ss.Add(pr.src, pr.dst, int64(size/8))
		}
		if err := ss.Normalize(); err != nil {
			t.Fatal(err)
		}
		plan, err := core.BuildPlan(tp, ss)
		if err != nil {
			t.Fatalf("round %d: build plan: %v", round, err)
		}
		if err := core.VerifyWorldAgainstPlan(scheds, plan); err != nil {
			t.Fatalf("round %d: VerifyWorldAgainstPlan: %v", round, err)
		}

		// The from-scratch reference: relearn + recompile on the mutated
		// pattern, same inputs, same world. Bit-identical or bust.
		err = runtime.Run(comms, func(c runtime.Comm) error {
			me := c.Rank()
			payloads := map[int][]byte{}
			for pr, size := range pairs {
				if pr.src == me {
					payloads[pr.dst] = make([]byte, size)
				}
			}
			p2, _, err := core.NewPersistent(c, tp, payloads)
			if err != nil {
				return err
			}
			rep2, err := p2.Compile(propXlen, gatherWorld(me, pairs))
			if err != nil {
				return err
			}
			halo2 := make([]float64, rep2.HaloWords())
			if err := rep2.Run(c, xFor(me, round), halo2); err != nil {
				return err
			}
			if len(halo2) != len(halos[me]) {
				return fmt.Errorf("round %d rank %d: patched halo has %d words, relearned %d",
					round, me, len(halos[me]), len(halo2))
			}
			for i := range halo2 {
				if halos[me][i] != halo2[i] {
					return fmt.Errorf("round %d rank %d: halo[%d] = %v patched, %v relearned",
						round, me, i, halos[me][i], halo2[i])
				}
			}
			d2, err := p2.Run(c, payloadWorld(me, round, pairs))
			if err != nil {
				return err
			}
			if len(d2.Subs) != len(delivered[me]) {
				return fmt.Errorf("round %d rank %d: %d deliveries patched, %d relearned",
					round, me, len(delivered[me]), len(d2.Subs))
			}
			for i, sub := range d2.Subs {
				g := delivered[me][i]
				if g.Src != sub.Src || g.Dst != sub.Dst || !bytes.Equal(g.Data, sub.Data) {
					return fmt.Errorf("round %d rank %d delivery %d: patched (%d->%d, %x), relearned (%d->%d, %x)",
						round, me, i, g.Src, g.Dst, g.Data, sub.Src, sub.Dst, sub.Data)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		var dirty, stages int
		for _, st := range patchStats {
			dirty += st.DirtyStages
			stages += tp.N()
		}
		t.Logf("round %d: %d mutations, %d/%d stages dirty across the world", round, len(muts), dirty, stages)
	}
}

func TestDynamicPropertyChanpt(t *testing.T) {
	for _, c := range []struct{ K, n, rounds int }{{8, 3, 3}, {16, 2, 3}, {64, 3, 2}} {
		if testing.Short() && c.K > 16 {
			continue
		}
		c := c
		t.Run(fmt.Sprintf("K=%d/n=%d", c.K, c.n), func(t *testing.T) {
			t.Parallel()
			tp, err := vpt.NewBalanced(c.K, c.n)
			if err != nil {
				t.Fatal(err)
			}
			w, err := chanpt.NewWorld(c.K, 2)
			if err != nil {
				t.Fatal(err)
			}
			runDynamicProperty(t, tp, w.Comms(), c.rounds, int64(c.K)*7+int64(c.n))
		})
	}
}

func TestDynamicPropertyTCP(t *testing.T) {
	cells := []struct{ K, n, rounds int }{{8, 3, 2}, {16, 2, 2}}
	if !testing.Short() {
		cells = append(cells, struct{ K, n, rounds int }{64, 3, 1})
	}
	for _, c := range cells {
		c := c
		t.Run(fmt.Sprintf("K=%d/n=%d", c.K, c.n), func(t *testing.T) {
			tp, err := vpt.NewBalanced(c.K, c.n)
			if err != nil {
				t.Fatal(err)
			}
			w, err := tcpnet.NewWorld(c.K)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			runDynamicProperty(t, tp, w.Comms(), c.rounds, int64(c.K)*11+int64(c.n))
		})
	}
}

// TestDynamicPropertyFaultDelay runs the whole dynamic path — census,
// patch, incremental re-lower, replay, relearn reference — under the
// fault injector's send delays. Delay is contract-preserving, so the
// bit-identity property must survive adversarial timing.
func TestDynamicPropertyFaultDelay(t *testing.T) {
	tp, err := vpt.NewBalanced(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := chanpt.NewWorld(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	inj := tptest.NewInjector(tptest.FaultConfig{Seed: 5, Delay: 0.5, MaxDelay: 100 * time.Microsecond})
	runDynamicProperty(t, tp, inj.WrapAll(w.Comms()), 2, 99)
	if st := inj.Stats(); st.Delayed == 0 {
		t.Fatalf("delay fault never fired: %+v", st)
	}
}
