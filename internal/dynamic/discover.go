// Package dynamic implements sparse dynamic data exchange for the
// store-and-forward runtime: discovering changed communicants without a
// full relearn, in the spirit of the NBX algorithm (Hoefler et al.) and its
// locality-aware descendants (Geyko et al., "A More Scalable Sparse Dynamic
// Data Exchange"). True NBX needs synchronous nonblocking sends and a
// nonblocking barrier, neither of which the blocking Comm abstraction
// offers — and the paper this repo reproduces argues the stronger point
// that *regularizing* irregular communication beats speculative probing.
// Discover therefore runs the census the same way the data plane runs
// payloads: announcements ride the exact dimension-ordered store-and-
// forward routes their future payloads will take, one (possibly empty)
// frame to every dimension-d neighbor per stage, so receive counts are
// deterministic and no probing, cancellation, or consensus round is needed.
// Every rank on a pair's route — origin, forwarders, destination — learns
// of the mutation in n stages, which is exactly the set of ranks whose
// learned layout the mutation dirties: the census output is, per rank, the
// core.PatchDelta that Persistent.Patch consumes.
package dynamic

import (
	"encoding/binary"
	"fmt"

	"stfw/internal/core"
	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/vpt"
)

// Announce declares one new or resized payload pair originating at the
// calling rank: Size payload bytes per iteration, destined for Dst.
type Announce struct {
	Dst  int
	Size int
}

// Delta is one rank's local view of a pattern mutation: destinations it
// will start (or resume, with a new size) sending to, and destinations it
// will stop sending to. Removing and adding the same destination resizes
// it. The zero Delta is valid: a rank with no local changes still
// participates in the collective census and learns about transiting pairs.
type Delta struct {
	Add    []Announce
	Remove []int
}

// Announcement wire format: a 5-byte submessage payload, op byte (0 add,
// 1 remove) followed by the little-endian uint32 payload size.
const annLen = 5

func encodeAnnouncement(remove bool, size int) []byte {
	b := make([]byte, annLen)
	if remove {
		b[0] = 1
	}
	binary.LittleEndian.PutUint32(b[1:], uint32(size))
	return b
}

func decodeAnnouncement(b []byte) (remove bool, size int, err error) {
	if len(b) != annLen {
		return false, 0, fmt.Errorf("dynamic: announcement has %d bytes, want %d", len(b), annLen)
	}
	switch b[0] {
	case 0:
	case 1:
		remove = true
	default:
		return false, 0, fmt.Errorf("dynamic: announcement op %d unknown", b[0])
	}
	return remove, int(binary.LittleEndian.Uint32(b[1:])), nil
}

// Discover runs the sparse dynamic-discovery census: a collective,
// regularized announcement exchange over the topology's stages. Every rank
// contributes its local Delta; every rank receives back the PatchDelta of
// all pairs — its own and other ranks' — whose store-and-forward route
// transits it. The returned delta is exactly what Persistent.Patch on this
// rank needs, and the union of all ranks' returns covers every mutation
// exactly once per route hop.
//
// The census uses its own tag range (core.CensusTag), so it can interleave
// with payload exchanges on the same communicator. It is collective: every
// rank of the world must call it, with possibly empty deltas. Cost is one
// frame per neighbor per stage — the same regular message count as a data
// exchange, but with 5-byte announcements instead of payloads.
func Discover(c runtime.Comm, t *vpt.Topology, delta Delta) (*core.PatchDelta, error) {
	me := c.Rank()
	if t.Size() != c.Size() {
		return nil, fmt.Errorf("dynamic: topology size %d != communicator size %d", t.Size(), c.Size())
	}

	out := &core.PatchDelta{}
	fb := msg.NewForwardBuffers(t.Dims())
	seed := func(dst, size int, remove bool, seen map[int]bool) error {
		if dst < 0 || dst >= t.Size() {
			return fmt.Errorf("dynamic: rank %d: destination %d out of range", me, dst)
		}
		if seen[dst] {
			return fmt.Errorf("dynamic: rank %d: destination %d announced twice", me, dst)
		}
		seen[dst] = true
		out.Pairs = append(out.Pairs, core.PatchPair{Src: me, Dst: dst, Size: size, Remove: remove})
		if dst != me {
			d := t.FirstDiff(me, dst)
			fb.Put(d, t.Digit(dst, d), msg.Submessage{Src: me, Dst: dst, Data: encodeAnnouncement(remove, size)})
		}
		return nil
	}
	seenRm := make(map[int]bool, len(delta.Remove))
	for _, dst := range delta.Remove {
		if err := seed(dst, 0, true, seenRm); err != nil {
			return nil, err
		}
	}
	seenAdd := make(map[int]bool, len(delta.Add))
	for _, a := range delta.Add {
		if a.Size < 0 {
			return nil, fmt.Errorf("dynamic: rank %d: destination %d announced with negative size %d", me, a.Dst, a.Size)
		}
		if err := seed(a.Dst, a.Size, false, seenAdd); err != nil {
			return nil, err
		}
	}

	// The census stage loop mirrors the ordered exchange discipline: one
	// frame to every dimension-d neighbor in digit order (empty when no
	// announcement routes through it), then one frame from each of them.
	// Announcements scatter into later-stage buffers exactly like payload
	// submessages — the route *is* the payload's future route.
	var in msg.Message
	for d := 0; d < t.N(); d++ {
		tag := core.CensusTag(d)
		myDigit := t.Digit(me, d)
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			nbr := t.WithDigit(me, d, x)
			frame := msg.Encode(nil, &msg.Message{From: me, To: nbr, Subs: fb.Take(d, x)})
			if err := c.Send(nbr, tag, frame); err != nil {
				return nil, fmt.Errorf("dynamic: rank %d census stage %d send to %d: %w", me, d, nbr, err)
			}
		}
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			nbr := t.WithDigit(me, d, x)
			raw, err := c.Recv(nbr, tag)
			if err != nil {
				return nil, fmt.Errorf("dynamic: rank %d census stage %d recv from %d: %w", me, d, nbr, err)
			}
			if err := msg.DecodeInto(&in, raw); err != nil {
				return nil, fmt.Errorf("dynamic: rank %d census stage %d frame from %d: %w", me, d, nbr, err)
			}
			if in.From != nbr || in.To != me {
				return nil, fmt.Errorf("dynamic: rank %d census stage %d: frame claims %d->%d, transport says %d->%d",
					me, d, in.From, in.To, nbr, me)
			}
			for _, sub := range in.Subs {
				remove, size, err := decodeAnnouncement(sub.Data)
				if err != nil {
					return nil, fmt.Errorf("dynamic: rank %d census stage %d: pair %d->%d: %w", me, d, sub.Src, sub.Dst, err)
				}
				out.Pairs = append(out.Pairs, core.PatchPair{Src: sub.Src, Dst: sub.Dst, Size: size, Remove: remove})
				if sub.Dst == me {
					continue
				}
				c2 := t.NextDiff(me, sub.Dst, d)
				if c2 < 0 {
					return nil, fmt.Errorf("dynamic: rank %d census stage %d: announcement for %d cannot be forwarded", me, d, sub.Dst)
				}
				fb.Put(c2, t.Digit(sub.Dst, c2), sub)
			}
		}
	}
	if left := fb.SubCount(); left != 0 {
		return nil, fmt.Errorf("dynamic: rank %d: %d announcements left undelivered", me, left)
	}
	return out, nil
}
