package dynamic_test

import (
	"fmt"
	"sort"
	"testing"

	"stfw/internal/core"
	"stfw/internal/dynamic"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// routeInvolves reports whether rank me lies on the dimension-ordered route
// of (src, dst) — origin, any forwarder, or destination. This re-derives
// the census's coverage contract independently of its implementation.
func routeInvolves(t *vpt.Topology, me, src, dst int) bool {
	if src == me || dst == me {
		return true
	}
	cur := src
	for d := 0; d < t.N(); d++ {
		cur = t.RouteNext(cur, dst, d)
		if cur == me {
			return true
		}
	}
	return false
}

func sortPairs(ps []core.PatchPair) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return !a.Remove && b.Remove
	})
}

// TestDiscoverCoverage runs the census over several shapes and checks the
// coverage contract exactly: every rank receives precisely the announced
// pairs whose route involves it — no more, no fewer — with op and size
// intact.
func TestDiscoverCoverage(t *testing.T) {
	for _, c := range []struct{ K, n int }{{8, 3}, {8, 1}, {16, 2}} {
		c := c
		t.Run(fmt.Sprintf("K=%d/n=%d", c.K, c.n), func(t *testing.T) {
			t.Parallel()
			tp, err := vpt.NewBalanced(c.K, c.n)
			if err != nil {
				t.Fatal(err)
			}
			w, err := chanpt.NewWorld(c.K, 2)
			if err != nil {
				t.Fatal(err)
			}
			// Every rank announces one addition and one removal with
			// rank-derived destinations and sizes.
			deltas := make([]dynamic.Delta, c.K)
			var all []core.PatchPair
			for r := 0; r < c.K; r++ {
				addDst := (r*3 + 1) % c.K
				rmDst := (r*5 + 2) % c.K
				deltas[r].Add = append(deltas[r].Add, dynamic.Announce{Dst: addDst, Size: 8 * (r + 1)})
				all = append(all, core.PatchPair{Src: r, Dst: addDst, Size: 8 * (r + 1)})
				if rmDst != addDst {
					deltas[r].Remove = append(deltas[r].Remove, rmDst)
					all = append(all, core.PatchPair{Src: r, Dst: rmDst, Remove: true})
				}
			}
			got := make([]*core.PatchDelta, c.K)
			err = runtime.Run(w.Comms(), func(cm runtime.Comm) error {
				d, err := dynamic.Discover(cm, tp, deltas[cm.Rank()])
				if err != nil {
					return err
				}
				got[cm.Rank()] = d
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for me := 0; me < c.K; me++ {
				var want []core.PatchPair
				for _, pr := range all {
					if routeInvolves(tp, me, pr.Src, pr.Dst) {
						want = append(want, pr)
					}
				}
				have := append([]core.PatchPair(nil), got[me].Pairs...)
				sortPairs(want)
				sortPairs(have)
				if len(have) != len(want) {
					t.Fatalf("rank %d: census returned %d pairs, want %d\nhave %+v\nwant %+v",
						me, len(have), len(want), have, want)
				}
				for i := range want {
					if have[i] != want[i] {
						t.Fatalf("rank %d pair %d: got %+v, want %+v", me, i, have[i], want[i])
					}
				}
			}
		})
	}
}

// TestDiscoverValidation exercises the local rejection paths — they fail
// before any frame is sent, so a single rank can probe them without the
// rest of the world participating.
func TestDiscoverValidation(t *testing.T) {
	tp, err := vpt.NewBalanced(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := chanpt.NewWorld(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	c0 := w.Comms()[0]
	cases := []struct {
		name  string
		delta dynamic.Delta
	}{
		{"dst-out-of-range", dynamic.Delta{Add: []dynamic.Announce{{Dst: 99, Size: 8}}}},
		{"dst-negative", dynamic.Delta{Remove: []int{-1}}},
		{"negative-size", dynamic.Delta{Add: []dynamic.Announce{{Dst: 1, Size: -8}}}},
		{"duplicate-add", dynamic.Delta{Add: []dynamic.Announce{{Dst: 1, Size: 8}, {Dst: 1, Size: 16}}}},
		{"duplicate-remove", dynamic.Delta{Remove: []int{1, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := dynamic.Discover(c0, tp, tc.delta); err == nil {
				t.Fatal("census accepted an invalid delta")
			}
		})
	}
	// World-size mismatch.
	small, err := vpt.NewBalanced(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dynamic.Discover(c0, small, dynamic.Delta{}); err == nil {
		t.Fatal("census accepted a topology smaller than the world")
	}
}
