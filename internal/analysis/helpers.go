package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method a call expression invokes, nil
// for calls through function-typed variables, built-ins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// builtinName returns the name of the built-in a call invokes ("" when the
// callee is not a built-in like len, cap, copy, append).
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isPkgFunc reports whether fn is a package-level function of a package
// whose import path ends in pathSuffix, with one of the given names.
func isPkgFunc(fn *types.Func, pathSuffix string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	if p != pathSuffix && !strings.HasSuffix(p, "/"+pathSuffix) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// usesObject reports whether the subtree contains an identifier resolving
// to obj. Function literals are included: a use inside a closure is still a
// use of the variable.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcBodies yields every function body of the files — declarations and
// function literals — with the enclosing declaration's name for messages.
func funcBodies(files []*ast.File, visit func(name string, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd.Name.Name, fd.Body)
		}
	}
}
