// Package analysis is a self-contained miniature of the go/analysis
// framework: typed Analyzer values run over parsed, type-checked packages
// and report position-anchored diagnostics. The repo pins its hot-path
// conventions — pooled frame ownership, nil-safe telemetry receivers,
// atomic-only counter fields, no blocking sends under locks — as analyzers
// in this package, and cmd/stfwlint is the multichecker that runs them
// over the tree (see DESIGN.md §9).
//
// The framework is hand-rolled on the standard library (go/ast, go/types,
// and a `go list -export` driver in load.go) rather than on
// golang.org/x/tools/go/analysis so the module stays dependency-free; the
// Analyzer/Pass surface deliberately mirrors the x/tools shape, so the
// analyzers could be ported to a real multichecker by swapping imports.
//
// Deliberate exceptions are annotated in the source under analysis with a
//
//	//stfw:ignore <analyzer> [<analyzer>...]
//
// directive on the flagged line or the line above it; Run drops matching
// diagnostics (see ignore.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check: a name (the //stfw:ignore key and the
// diagnostic suffix), a one-line contract, and the function that inspects a
// package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a valid identifier.
	Name string
	// Doc states the invariant the analyzer enforces, first line summary.
	Doc string
	// Run inspects one package through the pass and reports findings. A
	// non-nil error aborts the whole run (reserved for internal failures,
	// not findings).
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work: the package's syntax,
// type information, and the report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg    *Package
	report func(Diagnostic)
}

// Summaries returns the interprocedural function summaries for the package
// under analysis, computing them on first use and sharing them across the
// analyzers of the run (see summary.go).
func (p *Pass) Summaries() *SummarySet {
	if p.pkg.sums == nil {
		p.pkg.sums = computeSummaries(p.pkg)
	}
	return p.pkg.sums
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form the
// multichecker prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Report emits a finding at pos.
func (p *Pass) Report(pos token.Pos, message string) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  message,
	})
}

// Reportf emits a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// All returns every registered analyzer of the suite, in the order the
// multichecker runs them.
func All() []*Analyzer {
	return []*Analyzer{Framepool, Nilrecv, Atomicmix, Lockedsend, Tagspan, Goroleak}
}
