package analysis

import (
	"go/ast"
	"go/types"
)

// Package-level call graph. The summary engine (summary.go) needs every
// function's callees resolved before the function itself is summarized, so
// the graph is condensed into strongly connected components and emitted
// bottom-up: by the time an SCC is processed, every function it calls
// outside the component already has its final summary, and only the
// component's internal recursion needs a fixpoint.

// callGraph is the static same-package call graph of one loaded package:
// nodes are the package's declared functions and methods (those with
// bodies), edges point from caller to callee. Calls through function values
// and into other packages are not edges — the former are unresolvable
// statically, the latter are covered by export-data summaries
// (crossSummary) and never recurse back into this package's fixpoint.
type callGraph struct {
	// funcs lists the nodes in declaration order (file order, then position),
	// which keeps every downstream traversal deterministic.
	funcs   []*types.Func
	decls   map[*types.Func]*ast.FuncDecl
	callees map[*types.Func][]*types.Func
}

// buildCallGraph collects the package's function declarations and the
// same-package static calls inside them. Calls inside function literals and
// go statements count as edges too: a summary describes what a function may
// do, and code it defers or spawns is still code it owns for
// ownership-effect purposes (blocking-effect propagation filters those
// sites separately during summarization).
func buildCallGraph(pkg *Package) *callGraph {
	g := &callGraph{
		decls:   make(map[*types.Func]*ast.FuncDecl),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.funcs = append(g.funcs, fn)
			g.decls[fn] = fd
		}
	}
	for _, fn := range g.funcs {
		seen := make(map[*types.Func]bool)
		ast.Inspect(g.decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg.Info, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, declared := g.decls[callee]; declared {
				seen[callee] = true
				g.callees[fn] = append(g.callees[fn], callee)
			}
			return true
		})
	}
	return g
}

// sccs condenses the graph with Tarjan's algorithm and returns the
// components in bottom-up order: when a component is emitted, every edge
// leaving it targets an already-emitted component, so callees are always
// summarized before their callers.
func (g *callGraph) sccs() [][]*types.Func {
	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[*types.Func]*nodeState, len(g.funcs))
	var stack []*types.Func
	var out [][]*types.Func
	next := 0

	var strongconnect func(fn *types.Func)
	strongconnect = func(fn *types.Func) {
		st := &nodeState{index: next, lowlink: next, onStack: true}
		states[fn] = st
		next++
		stack = append(stack, fn)
		for _, callee := range g.callees[fn] {
			cs, visited := states[callee]
			if !visited {
				strongconnect(callee)
				if cl := states[callee].lowlink; cl < st.lowlink {
					st.lowlink = cl
				}
			} else if cs.onStack && cs.index < st.lowlink {
				st.lowlink = cs.index
			}
		}
		if st.lowlink == st.index {
			var comp []*types.Func
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[top].onStack = false
				comp = append(comp, top)
				if top == fn {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, fn := range g.funcs {
		if _, visited := states[fn]; !visited {
			strongconnect(fn)
		}
	}
	return out
}
