package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Interprocedural function summaries. The PR-5 analyzers classified every
// call by a package-boundary convention — same-package callees borrow their
// arguments, cross-package callees take ownership — which makes any helper
// function an analysis blind spot: a leak routed through a local
// mint-and-return helper, or a blocking send two frames deep under a held
// mutex, was invisible. A FuncSummary captures the caller-visible effects
// of one function so the analyzers can see through calls: what the callee
// does with each pooled-buffer parameter, whether any result carries a
// freshly minted pooled buffer the caller must own, whether the callee may
// block on transport progress, and whether it can run forever.
//
// Summaries are computed per package, bottom-up over the condensed call
// graph (callgraph.go): non-recursive callees are final before their
// callers are visited, and each recursive component iterates to a fixpoint
// from the optimistic bottom (all parameters borrowed, nothing blocks or
// diverges) of a finite lattice, so the iteration terminates. Calls that
// leave the package are summarized from the already-loaded export data by
// signature and import path (crossSummary) — the conservative static
// mirror of the msg frame-arena, udpnet PacketRing, and runtime.Comm
// contracts; unknown cross-package callees are assumed to take ownership
// and to terminate without blocking, matching the PR-5 conventions.

// ParamEffect classifies what a callee may do with a pooled buffer passed
// in one parameter position.
type ParamEffect int

const (
	// EffBorrow: the callee only reads the buffer; the caller still owns it.
	EffBorrow ParamEffect = iota
	// EffPassthrough: the buffer flows to the callee's result (append-shaped
	// builders, msg.Encode); the caller tracks the returned value instead.
	EffPassthrough
	// EffRelease: the callee recycles the buffer (msg.PutFrame or
	// PacketRing.Put) on some path; ownership is resolved at the call.
	EffRelease
	// EffEscape: the callee hands the buffer off — sends it, stores it, or
	// otherwise keeps it; ownership leaves the caller at the call.
	EffEscape
)

func (e ParamEffect) String() string {
	switch e {
	case EffBorrow:
		return "borrow"
	case EffPassthrough:
		return "passthrough"
	case EffRelease:
		return "release"
	case EffEscape:
		return "escape"
	}
	return "invalid"
}

// FuncSummary is the caller-visible abstract of one function.
type FuncSummary struct {
	// Params holds one effect per declared parameter (receiver excluded).
	// Only byte-slice parameters can carry pooled buffers; all others stay
	// EffBorrow.
	Params []ParamEffect
	// ReturnsOwned marks each result that carries a freshly minted pooled
	// buffer (GetFrame*/ring Get, possibly routed through further helpers):
	// the caller owns that result and must release or hand it off.
	ReturnsOwned []bool
	// MayBlock reports that the function can block on distributed progress:
	// a channel send, a Comm-shaped transport call (Send/Recv/RecvAnyOf/
	// Barrier), or a call to a function that may. Code inside `go`
	// statements and function literals does not count — it blocks some
	// later goroutine, not this call.
	MayBlock bool
	// Diverges reports that the function can enter an inescapable infinite
	// loop — `for {}` (or `for true {}`) with no return, no break out, no
	// goto, and no panic — directly or through a callee. goroleak uses it
	// to demand a visible termination path from spawned goroutines.
	Diverges bool
}

func (s *FuncSummary) equal(o *FuncSummary) bool {
	if s.MayBlock != o.MayBlock || s.Diverges != o.Diverges ||
		len(s.Params) != len(o.Params) || len(s.ReturnsOwned) != len(o.ReturnsOwned) {
		return false
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range s.ReturnsOwned {
		if s.ReturnsOwned[i] != o.ReturnsOwned[i] {
			return false
		}
	}
	return true
}

// effectAt returns the effect for argument position i of a call to fn,
// folding variadic tails onto the last declared parameter.
func (s *FuncSummary) effectAt(i int, fn *types.Func) ParamEffect {
	if i < 0 || len(s.Params) == 0 {
		return EffBorrow
	}
	if i >= len(s.Params) {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Variadic() {
			return s.Params[len(s.Params)-1]
		}
		return EffBorrow
	}
	return s.Params[i]
}

// SummarySet holds the computed summaries of one package plus the shared
// parent index the effect classifier climbs with.
type SummarySet struct {
	pkg     *Package
	decls   map[*types.Func]*ast.FuncDecl
	funcs   map[*types.Func]*FuncSummary
	sccOf   map[*types.Func]int
	order   []*types.Func // bottom-up summarization order (flattened SCCs)
	parents map[ast.Node]ast.Node
}

// Of returns the summary governing calls to fn: the computed summary for
// functions declared in the set's package, the export-data-derived
// crossSummary for known cross-package shapes, nil when nothing is known
// (callers fall back to the conservative PR-5 conventions).
func (s *SummarySet) Of(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	if sum, ok := s.funcs[fn]; ok {
		return sum
	}
	return crossSummary(fn)
}

// computeSummaries builds the package's call graph and summarizes every
// declared function bottom-up.
func computeSummaries(pkg *Package) *SummarySet {
	g := buildCallGraph(pkg)
	set := &SummarySet{
		pkg:     pkg,
		decls:   g.decls,
		funcs:   make(map[*types.Func]*FuncSummary, len(g.funcs)),
		sccOf:   make(map[*types.Func]int, len(g.funcs)),
		parents: make(map[ast.Node]ast.Node),
	}
	for _, f := range pkg.Files {
		for n, p := range buildParents(f) {
			set.parents[n] = p
		}
	}
	for ci, comp := range g.sccs() {
		for _, fn := range comp {
			set.funcs[fn] = freshSummary(fn)
			set.sccOf[fn] = ci
			set.order = append(set.order, fn)
		}
		// Non-recursive components converge in one pass; recursive ones
		// iterate from the optimistic bottom until stable.
		for changed := true; changed; {
			changed = false
			for _, fn := range comp {
				next := summarize(pkg, set, fn, g.decls[fn])
				if !next.equal(set.funcs[fn]) {
					set.funcs[fn] = next
					changed = true
				}
			}
		}
	}
	return set
}

func freshSummary(fn *types.Func) *FuncSummary {
	sig := fn.Type().(*types.Signature)
	return &FuncSummary{
		Params:       make([]ParamEffect, sig.Params().Len()),
		ReturnsOwned: make([]bool, sig.Results().Len()),
	}
}

// summarize recomputes fn's summary from its body under the set's current
// summaries (final for callees below fn, in-progress for SCC siblings).
func summarize(pkg *Package, set *SummarySet, fn *types.Func, fd *ast.FuncDecl) *FuncSummary {
	sig := fn.Type().(*types.Signature)
	s := &FuncSummary{
		Params:       make([]ParamEffect, sig.Params().Len()),
		ReturnsOwned: make([]bool, sig.Results().Len()),
	}
	for i := range s.Params {
		obj := sig.Params().At(i)
		if !isByteSlice(obj.Type()) {
			continue
		}
		eff := EffBorrow
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || pkg.Info.Uses[id] != obj {
				return true
			}
			if e := useEffect(pkg, set, id, obj); e > eff {
				eff = e
			}
			return true
		})
		s.Params[i] = eff
	}
	for _, ret := range ownReturns(fd.Body) {
		summarizeReturn(pkg, set, ret, s.ReturnsOwned)
	}
	s.MayBlock = mayBlockIn(pkg, set, fd.Body)
	s.Diverges = divergesIn(pkg, set, fd.Body)
	return s
}

// ownReturns collects the function's own return statements, skipping
// nested function literals (their returns belong to the literal).
func ownReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var rets []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			rets = append(rets, v)
		}
		return true
	})
	return rets
}

// summarizeReturn marks the results this return statement hands a freshly
// minted pooled buffer through.
func summarizeReturn(pkg *Package, set *SummarySet, ret *ast.ReturnStmt, owned []bool) {
	if len(ret.Results) == 0 || len(owned) == 0 {
		return
	}
	if len(ret.Results) == 1 && len(owned) > 1 {
		// Tuple forward: `return helper()` — propagate the callee's map.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if sum := set.Of(calleeFunc(pkg.Info, call)); sum != nil {
				for i := 0; i < len(owned) && i < len(sum.ReturnsOwned); i++ {
					owned[i] = owned[i] || sum.ReturnsOwned[i]
				}
			}
		}
		return
	}
	for i, e := range ret.Results {
		if i >= len(owned) || owned[i] {
			continue
		}
		if tv, ok := pkg.Info.Types[e]; !ok || !isByteSlice(tv.Type) {
			continue
		}
		if exprContainsMint(pkg, set, e) {
			owned[i] = true
		}
	}
}

// exprContainsMint reports whether evaluating the expression mints a pooled
// buffer: a direct GetFrame*/ring Get, or a call to a helper whose summary
// says it returns an owned buffer.
func exprContainsMint(pkg *Package, set *SummarySet, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isFrameSource(pkg.Info, call) {
			found = true
			return false
		}
		if sum := set.Of(calleeFunc(pkg.Info, call)); sum != nil {
			for _, o := range sum.ReturnsOwned {
				if o {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// useEffect classifies what one occurrence of a tracked byte-slice variable
// does to its ownership, from the callee's perspective. It mirrors
// framepool's caller-side classifyFrom but reports nothing and consults
// in-progress summaries, so it is usable during the fixpoint.
func useEffect(pkg *Package, set *SummarySet, start ast.Node, obj types.Object) ParamEffect {
	info := pkg.Info
	expr := start
	for { // climb parens and reslices: PutFrame(b[:0]) still releases b
		p := set.parents[expr]
		if pe, ok := p.(*ast.ParenExpr); ok {
			expr = pe
			continue
		}
		if se, ok := p.(*ast.SliceExpr); ok && ast.Unparen(se.X) == expr {
			expr = se
			continue
		}
		break
	}
	switch p := set.parents[expr].(type) {
	case *ast.CallExpr:
		idx := argIndex(p, expr)
		if idx < 0 {
			return EffBorrow // callee position or index expression
		}
		return callArgEffect(pkg, set, p, idx, obj)
	case *ast.SendStmt:
		if ast.Unparen(p.Value) == expr {
			return EffEscape
		}
		return EffBorrow
	case *ast.ReturnStmt:
		return EffPassthrough
	case *ast.CompositeLit, *ast.KeyValueExpr:
		return EffEscape
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != expr || i >= len(p.Lhs) {
				continue
			}
			if lhs, ok := p.Lhs[i].(*ast.Ident); ok && obj != nil && info.Uses[lhs] == obj {
				return EffBorrow // self reslice or regrow: b = b[:n]
			}
			return EffEscape // aliased or stored
		}
		return EffBorrow
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return EffEscape
		}
		return EffBorrow
	default:
		return EffBorrow
	}
}

// callArgEffect classifies passing the tracked buffer as argument idx of
// the call.
func callArgEffect(pkg *Package, set *SummarySet, call *ast.CallExpr, idx int, obj types.Object) ParamEffect {
	info := pkg.Info
	if isPutFrame(info, call) {
		return EffRelease
	}
	if isCommSend(info, call) {
		if idx == 2 {
			return EffEscape
		}
		return EffBorrow
	}
	switch builtinName(info, call) {
	case "len", "cap", "copy", "clear", "min", "max", "print", "println", "panic":
		return EffBorrow
	case "append":
		if idx == 0 {
			return useEffect(pkg, set, call, obj) // the grown alias's fate decides
		}
		if call.Ellipsis != token.NoPos {
			return EffBorrow // append(x, b...): bytes copied out
		}
		return EffEscape // append(frames, b): retained by the slice
	case "":
		// Not a builtin; classify through the callee's summary.
	default:
		return EffBorrow
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return EffEscape // call through a function value: assume it keeps it
	}
	if isPkgFunc(fn, "internal/msg", "Decode", "DecodeInto", "Float64View", "EncodedSize") {
		return EffBorrow // codec reads alias the buffer; ownership stays put
	}
	if sum := set.Of(fn); sum != nil {
		switch sum.effectAt(idx, fn) {
		case EffRelease:
			return EffRelease
		case EffEscape:
			return EffEscape
		case EffPassthrough:
			return useEffect(pkg, set, call, obj)
		default:
			return EffBorrow
		}
	}
	if fn.Pkg() == pkg.Types {
		return EffBorrow // declared here but bodyless (assembly): nothing known
	}
	return EffEscape // unknown cross-package call: assume ownership transfer
}

// argIndex returns which argument position the (climbed) expression
// occupies in the call, -1 if it is not an argument.
func argIndex(call *ast.CallExpr, arg ast.Node) int {
	for i, a := range call.Args {
		if ast.Unparen(a) == arg {
			return i
		}
	}
	return -1
}

// mayBlockIn reports whether executing the node can block on distributed
// progress: a channel send, a Comm-shaped call, or a callee that may block.
// Function literals and go statements are skipped (deferred execution), and
// a select with a default case never blocks in its communication clauses.
func mayBlockIn(pkg *Package, set *SummarySet, root ast.Node) bool {
	blocking := false
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		if blocking {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, c := range v.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							ast.Inspect(s, inspect)
						}
					}
				}
				return false
			}
		case *ast.SendStmt:
			blocking = true
			return false
		case *ast.CallExpr:
			fn := calleeFunc(pkg.Info, v)
			if blockingCommFunc(fn) != "" {
				blocking = true
				return false
			}
			if sum := set.Of(fn); sum != nil && sum.MayBlock {
				blocking = true
				return false
			}
		}
		return true
	}
	ast.Inspect(root, inspect)
	return blocking
}

// divergesIn reports whether executing the node can enter an inescapable
// infinite loop, directly or through a summarized callee. Function literals
// and go statements are skipped — they diverge some other goroutine.
func divergesIn(pkg *Package, set *SummarySet, root ast.Node) bool {
	diverges := false
	ast.Inspect(root, func(n ast.Node) bool {
		if diverges {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if loopInescapable(pkg, v) {
				diverges = true
				return false
			}
		case *ast.CallExpr:
			if sum := set.Of(calleeFunc(pkg.Info, v)); sum != nil && sum.Diverges {
				diverges = true
				return false
			}
		}
		return true
	})
	return diverges
}

// loopInescapable reports whether the for statement is an infinite loop
// (no condition, or a condition constant-true) with no way out: no return,
// no break targeting it, no goto, no panic.
func loopInescapable(pkg *Package, fs *ast.ForStmt) bool {
	if fs.Cond != nil {
		tv, ok := pkg.Info.Types[fs.Cond]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool || !constant.BoolVal(tv.Value) {
			return false
		}
	}
	return !stmtsEscapeLoop(pkg, fs.Body.List, 0)
}

// stmtsEscapeLoop reports whether the statements can transfer control out
// of the loop whose body they (transitively) form. depth counts enclosing
// break targets between a statement and the tracked loop: an unlabeled
// break only escapes at depth zero.
func stmtsEscapeLoop(pkg *Package, stmts []ast.Stmt, depth int) bool {
	for _, s := range stmts {
		if stmtEscapesLoop(pkg, s, depth) {
			return true
		}
	}
	return false
}

func stmtEscapesLoop(pkg *Package, s ast.Stmt, depth int) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch st.Tok {
		case token.GOTO:
			return true // conservatively assume the label is outside
		case token.BREAK:
			return st.Label != nil || depth == 0
		}
		return false
	case *ast.BlockStmt:
		return stmtsEscapeLoop(pkg, st.List, depth)
	case *ast.LabeledStmt:
		return stmtEscapesLoop(pkg, st.Stmt, depth)
	case *ast.IfStmt:
		if st.Init != nil && stmtEscapesLoop(pkg, st.Init, depth) {
			return true
		}
		if exprPanics(pkg, st.Cond) || stmtsEscapeLoop(pkg, st.Body.List, depth) {
			return true
		}
		return st.Else != nil && stmtEscapesLoop(pkg, st.Else, depth)
	case *ast.ForStmt:
		return stmtsEscapeLoop(pkg, st.Body.List, depth+1)
	case *ast.RangeStmt:
		return stmtsEscapeLoop(pkg, st.Body.List, depth+1)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			body = sw.Body
		case *ast.TypeSwitchStmt:
			body = sw.Body
		case *ast.SelectStmt:
			body = sw.Body
		}
		for _, c := range body.List {
			switch cl := c.(type) {
			case *ast.CaseClause:
				if stmtsEscapeLoop(pkg, cl.Body, depth+1) {
					return true
				}
			case *ast.CommClause:
				if stmtsEscapeLoop(pkg, cl.Body, depth+1) {
					return true
				}
			}
		}
		return false
	case *ast.GoStmt, *ast.DeferStmt:
		return false
	default:
		var e ast.Expr
		switch v := s.(type) {
		case *ast.ExprStmt:
			e = v.X
		default:
			return false
		}
		return exprPanics(pkg, e)
	}
}

// exprPanics reports whether the expression contains a direct panic call —
// a crash is a termination path for leak purposes.
func exprPanics(pkg *Package, e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && builtinName(pkg.Info, call) == "panic" {
			found = true
			return false
		}
		return true
	})
	return found
}

// crossSummary derives a conservative summary for a cross-package function
// from its export data: import path and signature shape. It mirrors the
// documented contracts of the msg frame arena, udpnet's PacketRing, and
// runtime.Comm; anything else returns nil and the callers fall back to
// assume-escape / assume-terminating.
func crossSummary(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	mk := func() *FuncSummary {
		return &FuncSummary{
			Params:       make([]ParamEffect, sig.Params().Len()),
			ReturnsOwned: make([]bool, sig.Results().Len()),
		}
	}
	switch {
	case isPkgFunc(fn, "internal/msg", "PutFrame"):
		s := mk()
		if len(s.Params) > 0 {
			s.Params[0] = EffRelease
		}
		return s
	case isPkgFunc(fn, "internal/msg", "Encode"):
		s := mk()
		if len(s.Params) > 0 {
			s.Params[0] = EffPassthrough
		}
		return s
	case isPkgFunc(fn, "internal/msg", "GetFrame", "GetFrameCap", "GetFrameLen"):
		s := mk()
		if len(s.ReturnsOwned) > 0 {
			s.ReturnsOwned[0] = true
		}
		return s
	case isRingMethod(fn, "Put"):
		s := mk()
		if len(s.Params) > 0 {
			s.Params[0] = EffRelease
		}
		return s
	case isRingMethod(fn, "Get"):
		s := mk()
		if len(s.ReturnsOwned) > 0 {
			s.ReturnsOwned[0] = true
		}
		return s
	case isPkgFunc(fn, "internal/runtime", "RecvAnyOf", "Run"):
		s := mk()
		s.MayBlock = true
		return s
	}
	if name := blockingCommFunc(fn); name != "" {
		s := mk()
		s.MayBlock = true
		if name == "Send" && len(s.Params) == 3 {
			s.Params[2] = EffEscape
		}
		return s
	}
	return nil
}
