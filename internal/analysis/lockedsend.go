package analysis

import (
	"go/ast"
	"go/types"
)

// Lockedsend flags blocking point-to-point communication performed while a
// mutex is held: channel sends and calls shaped like the runtime.Comm
// methods (Send, Recv, RecvAnyOf, Barrier). The stage engine's liveness
// argument assumes ranks always drain their inboxes; a rank that blocks in
// a transport call while holding a lock that the drain path needs is a
// distributed deadlock waiting for the right message order. Lock tracking
// is intraprocedural — sync.Mutex/RWMutex Lock/RLock pairs by receiver
// expression, with a deferred Unlock leaving the lock held for the rest of
// the function, which is exactly the window the checker guards — but the
// blocking side is interprocedural: a call to a same-package helper whose
// summary (summary.go) says it can reach a channel send or Comm call is
// flagged too, however deep the send is.
var Lockedsend = &Analyzer{
	Name: "lockedsend",
	Doc:  "no channel send or blocking Comm call while holding a mutex",
	Run:  runLockedsend,
}

func runLockedsend(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkLocked(pass, fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

// walkLocked abstractly executes a statement sequence, tracking which lock
// receivers are held. Branch bodies get a copy of the held set so an
// Unlock inside a branch does not clear the lock for the code after it.
func walkLocked(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if key, op := lockOp(pass.TypesInfo, st.X); key != "" {
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				continue
			}
			scanBlocking(pass, st, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() means the lock stays held through the rest
			// of the function — which is the window being checked — so the
			// held set is left alone. The deferred call itself runs after
			// the body; don't scan it.
			if key, op := lockOp(pass.TypesInfo, st.Call); key != "" && (op == "Unlock" || op == "RUnlock") {
				continue
			}
			scanBlocking(pass, st, held)
		case *ast.BlockStmt:
			walkLocked(pass, st.List, held)
		case *ast.LabeledStmt:
			walkLocked(pass, []ast.Stmt{st.Stmt}, held)
		case *ast.IfStmt:
			scanBlockingExpr(pass, st.Cond, held)
			walkLocked(pass, st.Body.List, copyHeld(held))
			if st.Else != nil {
				walkLocked(pass, []ast.Stmt{st.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if st.Cond != nil {
				scanBlockingExpr(pass, st.Cond, held)
			}
			walkLocked(pass, st.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			scanBlockingExpr(pass, st.X, held)
			walkLocked(pass, st.Body.List, copyHeld(held))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var body *ast.BlockStmt
			switch sw := st.(type) {
			case *ast.SwitchStmt:
				body = sw.Body
			case *ast.TypeSwitchStmt:
				body = sw.Body
			case *ast.SelectStmt:
				body = sw.Body
			}
			for _, c := range body.List {
				switch cl := c.(type) {
				case *ast.CaseClause:
					walkLocked(pass, cl.Body, copyHeld(held))
				case *ast.CommClause:
					if cl.Comm != nil {
						scanBlocking(pass, cl.Comm, held)
					}
					walkLocked(pass, cl.Body, copyHeld(held))
				}
			}
		case *ast.GoStmt:
			// The spawned goroutine does not inherit the caller's locks.
		default:
			scanBlocking(pass, s, held)
		}
	}
}

// scanBlocking reports every blocking communication inside the node while
// any lock is held. Function literals are skipped: they execute later,
// under whatever locks their caller holds then.
func scanBlocking(pass *Pass, n ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	lock := anyHeld(held)
	ast.Inspect(n, func(c ast.Node) bool {
		switch v := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(v.Arrow, "channel send while holding %s: a blocked send under a lock can deadlock the exchange", lock)
		case *ast.CallExpr:
			if name := blockingCommName(pass.TypesInfo, v); name != "" {
				pass.Reportf(v.Pos(), "Comm.%s while holding %s: transport calls block on remote progress and must not run under a lock", name, lock)
			} else if fn := calleeFunc(pass.TypesInfo, v); fn != nil && fn.Pkg() == pass.Pkg {
				// Interprocedural: a helper whose summary says it can reach
				// a channel send or Comm call blocks just the same, however
				// many frames deep the send is.
				if sum := pass.Summaries().Of(fn); sum != nil && sum.MayBlock {
					pass.Reportf(v.Pos(), "call to %s, which may block on a channel send or Comm call, while holding %s", fn.Name(), lock)
				}
			}
		}
		return true
	})
}

func scanBlockingExpr(pass *Pass, e ast.Expr, held map[string]bool) {
	scanBlocking(pass, &ast.ExprStmt{X: e}, held)
}

// lockOp matches mu.Lock / mu.RLock / mu.Unlock / mu.RUnlock calls on
// sync.Mutex and sync.RWMutex (including embedded ones) and returns the
// receiver expression as the lock key.
func lockOp(info *types.Info, e ast.Expr) (key, op string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k := range held {
		c[k] = true
	}
	return c
}

func anyHeld(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// blockingCommName matches calls shaped like the runtime.Comm transport
// methods and returns the method name, "" otherwise.
func blockingCommName(info *types.Info, call *ast.CallExpr) string {
	return blockingCommFunc(calleeFunc(info, call))
}

// blockingCommFunc matches a function shaped like a runtime.Comm transport
// method and returns the method name, "" otherwise.
func blockingCommFunc(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	p, r := sig.Params().Len(), sig.Results().Len()
	switch fn.Name() {
	case "Send":
		if p == 3 && r == 1 && isByteSlice(sig.Params().At(2).Type()) {
			return "Send"
		}
	case "Recv":
		if p == 2 && r == 2 && isByteSlice(sig.Results().At(0).Type()) {
			return "Recv"
		}
	case "RecvAnyOf":
		if p == 2 && r == 3 {
			return "RecvAnyOf"
		}
	case "Barrier":
		if p == 0 && r == 1 {
			return "Barrier"
		}
	}
	return ""
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && types.Identical(s.Elem(), types.Typ[types.Byte])
}
