package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"stfw/internal/core"
)

// Tagspan is the static complement of PR 9's construction-time
// runtime.TagReserver check: every named control-tag constant a transport
// sends or matches frames on must lie inside the half-open [lo, hi) span
// the transport's own ReservedTags method declares, and outside the
// application tag span (core.AppTagSpan: the direct-baseline, stage, and
// census tags, bounded above by hier.DefaultAppTagCeiling's 1<<20 policy).
// A control tag outside the declared span escapes the mux's disjointness
// check and can alias another sub-transport's traffic; a control tag inside
// the application span aliases a stage or census tag and cross-matches
// application frames — the exact hung-receive the TagReserver seam exists
// to prevent.
//
// The analyzer runs over the transport packages (internal/transport/...);
// a constant counts as a control tag when it is used as the tag argument of
// a Comm-shaped Send call, passed in a RecvAnyOf tag set, or compared
// against a tag-named expression (`c.tag == ctrlEnter`). Constants declared
// in test files are exempt — fixtures and tests exercise arbitrary tags —
// but usages *in* test files of production constants are still checked.
var Tagspan = &Analyzer{
	Name: "tagspan",
	Doc:  "transport control tags must lie inside the declared ReservedTags span and outside the application tag span",
	Run:  runTagspan,
}

// appTagCeiling bounds the application tag span the analyzer assumes.
// core.AppTagSpan's upper bound grows with the stage count; hier's
// DefaultAppTagCeiling pins the policy ceiling (1<<20) that every
// composite-transport collision check uses, and control tags must clear
// it for any realizable world. Mirrored here as a constant so the
// analysis package does not import the transport it lints.
const appTagCeiling = 1 << 20

func runTagspan(pass *Pass) error {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "internal/transport/") &&
		!strings.Contains(path, "testdata/tagspan") { // fixture packages
		return nil
	}
	// Consistency guard for the mirrored ceiling: if core's tag bases ever
	// grow past it, fail the run loudly instead of silently under-checking.
	if appLo, appHi := core.AppTagSpan(0); appLo < 0 || appHi > appTagCeiling {
		return fmt.Errorf("tagspan: core.AppTagSpan(0) = [%#x, %#x) exceeds the mirrored ceiling %#x; raise appTagCeiling", appLo, appHi, appTagCeiling)
	}

	lo, hi, declared := declaredReservedTags(pass)
	for _, use := range controlTagUses(pass) {
		v, ok := constIntValue(use.obj)
		if !ok {
			continue
		}
		if v >= 0 && v < appTagCeiling {
			pass.Reportf(use.pos, "control tag %s = %#x lies inside the application tag span [0, %#x): it aliases stage or census traffic", use.obj.Name(), v, appTagCeiling)
			continue
		}
		if !declared {
			pass.Reportf(use.pos, "control tag %s = %#x is used but the package declares no ReservedTags span (implement runtime.TagReserver)", use.obj.Name(), v)
			continue
		}
		if v < int64(lo) || v >= int64(hi) {
			pass.Reportf(use.pos, "control tag %s = %#x lies outside the declared ReservedTags span [%#x, %#x)", use.obj.Name(), v, lo, hi)
		}
	}
	return nil
}

// tagUse is one flagged-position use of a named control-tag constant.
type tagUse struct {
	obj *types.Const
	pos token.Pos
}

// controlTagUses collects every use of a package-level, non-test-file
// integer constant in a tag position: the tag argument of a Comm-shaped
// Send, an element of a RecvAnyOf tag set, or an equality comparison
// against a tag-named expression. Each constant is reported at most once,
// at its first use in file order.
func controlTagUses(pass *Pass) []tagUse {
	prodConsts := make(map[*types.Const]bool)
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if c, ok := pass.TypesInfo.Defs[name].(*types.Const); ok {
						prodConsts[c] = true
					}
				}
			}
		}
	}

	var uses []tagUse
	seen := make(map[*types.Const]bool)
	record := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		c, ok := pass.TypesInfo.Uses[id].(*types.Const)
		if !ok || !prodConsts[c] || seen[c] {
			return
		}
		seen[c] = true
		uses = append(uses, tagUse{obj: c, pos: id.Pos()})
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, v)
				switch blockingCommFunc(fn) {
				case "Send":
					if len(v.Args) == 3 {
						record(v.Args[1])
					}
				case "RecvAnyOf":
					if len(v.Args) == 2 {
						if cl, ok := ast.Unparen(v.Args[1]).(*ast.CompositeLit); ok {
							for _, el := range cl.Elts {
								record(el)
							}
						}
					}
				}
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				if isTagNamed(v.X) {
					record(v.Y)
				}
				if isTagNamed(v.Y) {
					record(v.X)
				}
			}
			return true
		})
	}
	return uses
}

// isTagNamed reports whether the expression is named like a frame tag: the
// identifier `tag` or a selector ending in .tag / .Tag.
func isTagNamed(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name == "tag"
	case *ast.SelectorExpr:
		return v.Sel.Name == "tag" || v.Sel.Name == "Tag"
	}
	return false
}

// declaredReservedTags extracts the [lo, hi) span from the package's
// ReservedTags method, requiring the return operands to be compile-time
// constants (they are, in every transport: spans are policy, not state).
func declaredReservedTags(pass *Pass) (lo, hi int64, ok bool) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Name.Name != "ReservedTags" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, isRet := n.(*ast.ReturnStmt)
				if !isRet || len(ret.Results) != 2 {
					return true
				}
				l, okL := constExprValue(pass.TypesInfo, ret.Results[0])
				h, okH := constExprValue(pass.TypesInfo, ret.Results[1])
				if okL && okH && l < h {
					// Several returns (nested spans) widen to the union.
					if !ok || l < lo {
						lo = l
					}
					if !ok || h > hi {
						hi = h
					}
					ok = true
				}
				return true
			})
		}
	}
	return lo, hi, ok
}

func constIntValue(c *types.Const) (int64, bool) {
	if c.Val().Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(c.Val())
}

func constExprValue(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
