// Package atomicmix is the analysistest fixture for the atomicmix
// analyzer: counters touched through sync/atomic anywhere must be touched
// through it everywhere.
package atomicmix

import "sync/atomic"

type counters struct {
	sends int64 // atomic
	bytes int64 // atomic
	plain int64 // never atomic: free to access directly
}

func (c *counters) countSend(n int) {
	atomic.AddInt64(&c.sends, 1)
	atomic.AddInt64(&c.bytes, int64(n))
	c.plain++
}

func (c *counters) snapshotAtomic() (int64, int64) {
	return atomic.LoadInt64(&c.sends), atomic.LoadInt64(&c.bytes)
}

func (c *counters) badPlainRead() int64 {
	return c.sends // want "plain access races"
}

func (c *counters) badPlainWrite() {
	c.bytes = 0 // want "plain access races"
}

func (c *counters) okPlainField() int64 {
	return c.plain
}

// newCounters shows the initialization exemption: composite literals run
// before the value is shared.
func newCounters() *counters {
	return &counters{sends: 0, bytes: 0, plain: 0}
}

// waived documents a deliberate single-threaded fast path.
func (c *counters) waived() int64 {
	return c.sends //stfw:ignore atomicmix
}
