// Package tagnodecl is the tagspan fixture for a transport that sends
// control frames without declaring a ReservedTags span: every control tag
// is flagged, because the mux has nothing to check disjointness against.
package tagnodecl

const ctrlPing = 0x7fffff80

type comm struct{}

func (c *comm) Send(to, tag int, payload []byte) error { return nil }

func (c *comm) ping() error {
	return c.Send(0, ctrlPing, nil) // want "declares no ReservedTags span"
}
