// Package tagfix is the analysistest fixture for the tagspan analyzer: a
// miniature transport with a declared ReservedTags span and control-tag
// constants used the three ways the analyzer recognizes — as a Send tag,
// in a RecvAnyOf tag set, and compared against a tag-named expression.
package tagfix

const (
	// ctrlBase anchors the declared span: well above the 1<<20 application
	// tag ceiling, mirroring udpnet's 0x7fffffxx control block.
	ctrlBase = 0x7fffff00

	ctrlEnter   = ctrlBase     // in span, used as Send tag: clean
	ctrlRelease = ctrlBase + 1 // in span, used in RecvAnyOf set: clean
	ctrlProbe   = ctrlBase + 2 // in span, used in a tag comparison: clean

	// ctrlAlias collides with application traffic: stage and census tags
	// live in [0, 1<<20).
	ctrlAlias = 0x42

	// ctrlStray clears the application ceiling but was never reserved: it
	// escapes the mux's disjointness check.
	ctrlStray = 0x7ffffe00
)

type comm struct{ tag int }

func (c *comm) Send(to, tag int, payload []byte) error { return nil }

func (c *comm) RecvAnyOf(from int, tags []int) (int, []byte, error) {
	return 0, nil, nil
}

// ReservedTags declares the half-open control span [ctrlBase, ctrlBase+16).
func (c *comm) ReservedTags() (lo, hi int) { return ctrlBase, ctrlBase + 16 }

func (c *comm) handshake() error {
	if err := c.Send(0, ctrlEnter, nil); err != nil {
		return err
	}
	if err := c.Send(0, ctrlAlias, nil); err != nil { // want "inside the application tag span"
		return err
	}
	if err := c.Send(0, ctrlStray, nil); err != nil { // want "outside the declared ReservedTags span"
		return err
	}
	_, _, err := c.RecvAnyOf(0, []int{ctrlRelease})
	return err
}

func (c *comm) dispatch() bool {
	return c.tag == ctrlProbe
}
