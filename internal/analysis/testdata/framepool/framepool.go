// Package framepool is the analysistest fixture for the framepool
// analyzer: each function is one positive (flagged, marked with a `want`
// comment) or negative (clean) ownership scenario. The package is under
// testdata so `./...` builds and lints skip it; the harness loads it by
// explicit import path.
package framepool

import (
	"stfw/internal/msg"
	"stfw/internal/transport/udpnet"
)

// comm has the transport Send shape ownership transfers through.
type comm struct{}

func (comm) Send(to, tag int, payload []byte) error { return nil }

// sink is a cross-package stand-in with a different shape: not a release.
var sink func([]byte)

// --- negative cases: the canonical disciplines must stay silent ---

func okPutAfterUse(n int) int {
	buf := msg.GetFrameLen(n)
	total := 0
	for _, b := range buf {
		total += int(b)
	}
	msg.PutFrame(buf)
	return total
}

func okSendThenConditionalPut(c comm, retains bool, n int) error {
	buf := msg.GetFrameCap(n)
	err := c.Send(1, 7, buf)
	if !retains {
		msg.PutFrame(buf)
	}
	return err
}

func okMintIntoSend(c comm, m *msg.Message) error {
	return c.Send(1, 7, msg.Encode(msg.GetFrameCap(msg.EncodedSize(m)), m))
}

func okReturnTransfersOwnership(n int) []byte {
	buf := msg.GetFrameLen(n)
	return buf
}

func okEscapeIntoStruct(n int) {
	type frameHolder struct{ b []byte }
	holders := []frameHolder{{b: msg.GetFrameLen(n)}}
	_ = holders
}

func okDeferredPut(n int) int {
	buf := msg.GetFrameLen(n)
	defer msg.PutFrame(buf)
	return len(buf)
}

func okReleaseInBothBranches(cond bool, n int) {
	buf := msg.GetFrameLen(n)
	if cond {
		msg.PutFrame(buf)
	} else {
		msg.PutFrame(buf)
	}
}

func okEscapeInCondition(push func([]byte) bool, n int) {
	buf := msg.GetFrameLen(n)
	if !push(buf) { // cross-package-shaped hand-off resolves ownership
		return
	}
}

// --- positive cases ---

func badNeverReleased(n int) int {
	buf := msg.GetFrameLen(n) // want "never released"
	return len(buf)
}

func badLeakOnEarlyReturn(fill func() error, n int) error {
	buf := msg.GetFrameLen(n)
	if err := fill(); err != nil {
		return err // want "leaks on this return path"
	}
	msg.PutFrame(buf)
	return nil
}

func badOneBranchOnly(cond bool, n int) {
	buf := msg.GetFrameLen(n) // want "not released on every path"
	if cond {
		msg.PutFrame(buf)
	}
}

func badUseAfterPut(n int) int {
	buf := msg.GetFrameLen(n)
	msg.PutFrame(buf)
	return len(buf) // want "after PutFrame"
}

func badDoublePut(n int) {
	buf := msg.GetFrameLen(n)
	msg.PutFrame(buf)
	msg.PutFrame(buf) // want "double PutFrame"
}

func badPutOfFrontReslice(n int) {
	buf := msg.GetFrameLen(n)
	msg.PutFrame(buf[4:]) // want "drops the buffer's front"
}

func badDroppedResult(n int) {
	_ = msg.GetFrameLen(n) // want "dropped without PutFrame"
}

// annotated: the directive keeps a deliberate exception quiet.
func okAnnotatedLeak(n int) int {
	buf := msg.GetFrameLen(n) //stfw:ignore framepool
	return len(buf)
}

// --- udpnet PacketRing: the same single-holder discipline ---

// appendShaped is the intra-package builder shape the mint tracking climbs
// through (udpnet's buildAck): the fresh buffer flows to the result.
func appendShaped(b []byte, v byte) []byte { return append(b, v) }

func okRingGetThenPut(r *udpnet.PacketRing) int {
	b := r.Get()
	b = append(b, 1, 2, 3)
	n := len(b)
	r.Put(b)
	return n
}

func okRingPutEmptyReslice(r *udpnet.PacketRing) {
	b := r.Get()
	r.Put(b[:0])
}

func okRingMintThroughBuilder(r *udpnet.PacketRing) {
	b := appendShaped(r.Get(), 7)
	r.Put(b)
}

func okRingEscapeIntoSlot(r *udpnet.PacketRing, slots [][]byte) {
	slots[0] = r.Get() // slot owner releases it later
}

func badRingNeverReleased(r *udpnet.PacketRing) int {
	b := r.Get() // want "never released"
	return len(b)
}

func badRingLeakOnEarlyReturn(r *udpnet.PacketRing, fill func() error) error {
	b := r.Get()
	if err := fill(); err != nil {
		return err // want "leaks on this return path"
	}
	r.Put(b)
	return nil
}

func badRingOneBranchOnly(r *udpnet.PacketRing, cond bool) {
	b := r.Get() // want "not released on every path"
	if cond {
		r.Put(b)
	}
}

func badRingUseAfterPut(r *udpnet.PacketRing) int {
	b := r.Get()
	r.Put(b)
	return len(b) // want "after PutFrame"
}

func badRingDoublePut(r *udpnet.PacketRing) {
	b := r.Get()
	r.Put(b)
	r.Put(b) // want "double PutFrame"
}

func badRingPutFrontReslice(r *udpnet.PacketRing) {
	b := r.Get()
	r.Put(b[2:]) // want "drops the buffer's front"
}

// --- hierarchical mux boundary (internal/transport/hier): a frame crossing
// the composite transport resolves ownership exactly once, whichever
// sub-transport the pair rule routes it to ---

// muxComm mirrors the hier endpoint shape: Send routes to one of two
// sub-transports by destination; for ownership the route taken is
// irrelevant — one Send is one hand-off.
type muxComm struct {
	inner, outer comm
	nodeOf       func(int) int
}

func (m *muxComm) Send(to, tag int, payload []byte) error {
	if m.nodeOf(to) == m.nodeOf(0) {
		return m.inner.Send(to, tag, payload)
	}
	return m.outer.Send(to, tag, payload)
}

// The caller's view: a Send through the mux transfers ownership like any
// transport Send (the retains answer is the union of the sub-transports').
func okSendThroughMux(m *muxComm, retains bool, n int) error {
	buf := msg.GetFrameCap(n)
	err := m.Send(1, 7, buf)
	if !retains {
		msg.PutFrame(buf)
	}
	return err
}

// The mux's view: both route branches hand the frame off, so a frame
// minted for either side is resolved on every path.
func okRouteEitherSubReleases(m *muxComm, intra bool, n int) error {
	buf := msg.GetFrameCap(n)
	if intra {
		return m.inner.Send(1, 7, buf)
	}
	return m.outer.Send(2, 7, buf)
}

// The cross-sub arbitration stash: a puller that parks a pulled frame in
// the shared stash escapes it — the stash owns it until a receiver claims
// it.
type arrivalStash struct{ frames [][]byte }

func okStashArrivalOwnsFrame(s *arrivalStash, n int) {
	buf := msg.GetFrameLen(n)
	s.frames = append(s.frames, buf)
}

// A mux Send that validates the destination before routing must not strand
// the frame on the rejection path.
func badMuxValidationLeaksFrame(m *muxComm, to, n int) error {
	buf := msg.GetFrameLen(n)
	if to < 0 {
		return nil // want "leaks on this return path"
	}
	return m.Send(to, 7, buf)
}

// A puller that only stashes on its success path drops the frame when the
// pull is cancelled.
func badPullerDropsFrameOnCancel(s *arrivalStash, cancelled bool, n int) {
	buf := msg.GetFrameLen(n) // want "not released on every path"
	if !cancelled {
		s.frames = append(s.frames, buf)
	}
}

// --- interprocedural: ownership routed through same-package helpers. The
// summary engine gives each helper a ParamEffect/ReturnsOwned summary, so
// minting, releasing, and double-releasing through a helper behave exactly
// like the direct calls above ---

// mintHelper returns a fresh pooled frame: its summary marks the result
// owned, and every caller inherits the release obligation.
func mintHelper(n int) []byte {
	return msg.GetFrameLen(n)
}

// mintHelperWithErr is the tuple-shaped mint (buf, err), the common
// transport constructor signature.
func mintHelperWithErr(n int) ([]byte, error) {
	return msg.GetFrameCap(n), nil
}

// releaseHelper returns its argument to the pool: summary EffRelease.
func releaseHelper(buf []byte) {
	msg.PutFrame(buf)
}

func okMintThroughHelper(n int) {
	buf := mintHelper(n)
	msg.PutFrame(buf)
}

func okReleaseThroughHelper(n int) {
	buf := msg.GetFrameLen(n)
	releaseHelper(buf)
}

func okTupleMintReleased(n int) {
	buf, _ := mintHelperWithErr(n)
	msg.PutFrame(buf)
}

// The seeded regression: a leak the per-function pass provably missed —
// the mint is hidden behind mintHelper, so no msg.GetFrame* call appears
// in this function at all.
func badLeakThroughMintHelper(n int) int {
	buf := mintHelper(n) // want "never released"
	return len(buf)
}

func badTupleMintLeaksOnErrPath(n int) error {
	buf, err := mintHelperWithErr(n)
	if err != nil {
		return err // want "leaks on this return path"
	}
	msg.PutFrame(buf)
	return nil
}

func badDoublePutThroughHelper(n int) {
	buf := msg.GetFrameLen(n)
	releaseHelper(buf)
	msg.PutFrame(buf) // want "double PutFrame"
}

func badHelperMintOneBranchOnly(cond bool, n int) {
	buf := mintHelper(n) // want "not released on every path"
	if cond {
		releaseHelper(buf)
	}
}
