// Package sumfix is the unit-test fixture for the interprocedural summary
// engine (summary.go): small functions with known ParamEffect,
// ReturnsOwned, MayBlock, and Diverges facts, including recursive and
// mutually recursive shapes that exercise the per-SCC fixpoint.
package sumfix

import "stfw/internal/msg"

// --- ownership effects ---

// mint returns a freshly minted pooled frame: ReturnsOwned[0].
func mint(n int) []byte {
	return msg.GetFrameLen(n)
}

// mintChain routes the mint through a helper: still ReturnsOwned[0].
func mintChain(n int) []byte {
	return mint(n)
}

// mintPair is the tuple shape: only the buffer result is owned.
func mintPair(n int) ([]byte, error) {
	return msg.GetFrameCap(n), nil
}

// release returns its argument to the pool: Params[0] = EffRelease.
func release(b []byte) {
	msg.PutFrame(b)
}

// releaseChain releases through the helper: still EffRelease.
func releaseChain(b []byte) {
	release(b)
}

// stamp flows its argument to its result: Params[0] = EffPassthrough.
func stamp(b []byte) []byte {
	return append(b, 0x5a)
}

// stash parks the buffer in a long-lived structure: Params[1] = EffEscape.
type store struct{ bufs [][]byte }

func stash(s *store, b []byte) {
	s.bufs = append(s.bufs, b)
}

// checksum only reads: Params[0] = EffBorrow.
func checksum(b []byte) int {
	total := 0
	for _, v := range b {
		total += int(v)
	}
	return total
}

// recycleLast releases through self-recursion: the fixpoint must conclude
// Params[0] = EffRelease even though the recursive call's summary starts
// at the optimistic bottom.
func recycleLast(b []byte, n int) {
	if n <= 0 {
		msg.PutFrame(b)
		return
	}
	recycleLast(b, n-1)
}

// --- blocking ---

// blockSend blocks on a channel send: MayBlock.
func blockSend(ch chan int) {
	ch <- 1
}

// blockIndirect blocks two frames deep: MayBlock is transitive.
func blockIndirect(ch chan int) {
	blockSend(ch)
}

// spawns only blocks inside a spawned goroutine: not MayBlock for the
// caller.
func spawns(ch chan int) {
	go func() {
		ch <- 1
	}()
}

// ping and pong are mutually recursive and block on the base case: one
// SCC, both MayBlock.
func ping(ch chan int, n int) {
	if n <= 0 {
		ch <- 0
		return
	}
	pong(ch, n-1)
}

func pong(ch chan int, n int) {
	ping(ch, n-1)
}

// --- divergence ---

// spin loops forever: Diverges.
func spin() {
	for {
	}
}

// spinIndirect diverges through the callee.
func spinIndirect() {
	spin()
}

// spinUntil leaves the loop: not Diverges.
func spinUntil(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
	}
}
