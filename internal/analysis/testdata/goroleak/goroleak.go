// Package gorofix is the analysistest fixture for the goroleak analyzer:
// goroutines with and without a visible termination path, spawned both as
// function literals and as named same-package callees.
package gorofix

func work()   {}
func onceFn() {}

// spinner loops forever with no exit: its Diverges summary marks any
// `go spinner()` site.
func spinner() {
	for {
		work()
	}
}

// worker loops but leaves when the close signal arrives.
func worker(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
			work()
		}
	}
}

// drain loops forever by design: the channel is closed by the owner, and a
// receive on a closed channel keeps yielding — the justified-waiver case.
func drain(ch chan int) {
	for range ch {
		work()
	}
}

func spawnAll(done chan struct{}, ch chan int) {
	go onceFn()     // bounded one-shot: clean
	go worker(done) // loop with close-signal return: clean

	go spinner() // want "goroutine running spinner has no visible termination path"

	go func() { // want "goroutine has no visible termination path"
		for {
			work()
		}
	}()

	go func() { // clean: the loop returns on the close signal
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()

	//stfw:ignore goroleak -- for-range over ch ends when the producer closes it
	go func() {
		for {
			work()
		}
	}()

	go drain(ch) // clean: for-range over a channel terminates on close
}
