// Package telemetry is the analysistest fixture for the nilrecv analyzer.
// The analyzer keys on the package name, so this testdata package shadows
// the real one's name; the import path keeps them apart.
package telemetry

// Registry mimics the real telemetry handle: nil disables instrumentation.
type Registry struct {
	n int
}

// Guarded is the required shape.
func (r *Registry) Guarded() int {
	if r == nil {
		return 0
	}
	return r.n
}

// GuardedOrChain guards through an || chain.
func (r *Registry) GuardedOrChain(stage int) int {
	if r == nil || stage < 0 {
		return 0
	}
	return r.n + stage
}

// Unguarded dereferences a possibly-nil receiver.
func (r *Registry) Unguarded() int { // want "must begin with"
	return r.n
}

// GuardedLate checks too late: a non-guard first statement means the nil
// case already slipped past.
func (r *Registry) GuardedLate() int { // want "must begin with"
	x := 1
	if r == nil {
		return 0
	}
	return r.n + x
}

// Waived is deliberately nil-safe by construction.
//
//stfw:ignore nilrecv
func (r *Registry) Waived() int {
	return callNilSafe(r)
}

func callNilSafe(r *Registry) int {
	if r == nil {
		return 0
	}
	return r.n
}

// unexportedMethod needs no guard: not part of the public surface.
func (r *Registry) unexportedMethod() int { return r.n }

// ValueRecv methods can't be called on nil; exempt.
func (r Registry) ValueRecv() int { return r.n }

// internalHandle is unexported: its methods are exempt.
type internalHandle struct{ n int }

func (h *internalHandle) Exported() int { return h.n }
