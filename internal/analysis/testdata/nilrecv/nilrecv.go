// Package telemetry is the analysistest fixture for the nilrecv analyzer.
// The analyzer keys on the package name, so this testdata package shadows
// the real one's name; the import path keeps them apart.
package telemetry

// Registry mimics the real telemetry handle: nil disables instrumentation.
type Registry struct {
	n int
}

// Guarded is the canonical required shape.
func (r *Registry) Guarded() int {
	if r == nil {
		return 0
	}
	return r.n
}

// GuardedOrChain guards through an || chain.
func (r *Registry) GuardedOrChain(stage int) int {
	if r == nil || stage < 0 {
		return 0
	}
	return r.n + stage
}

// Unguarded dereferences a possibly-nil receiver.
func (r *Registry) Unguarded() int { // want "must be nil-receiver-safe"
	return r.n
}

// DerefBeforeGuard dereferences the receiver before the guard: the nil
// case already crashed by the time the check runs.
func (r *Registry) DerefBeforeGuard() int { // want "must be nil-receiver-safe"
	x := r.n
	if r == nil {
		return 0
	}
	return r.n + x
}

// GuardedLate has a non-guard first statement, but the statement never
// touches the receiver — the flow derivation accepts what the old
// leading-guard syntax check rejected.
func (r *Registry) GuardedLate() int {
	x := 1
	if r == nil {
		return 0
	}
	return r.n + x
}

// Derived is nil-safe by delegation: callNilSafe guards its parameter, so
// the derivation proves Derived without an ignore waiver.
func (r *Registry) Derived() int {
	return callNilSafe(r)
}

func callNilSafe(r *Registry) int {
	if r == nil {
		return 0
	}
	return r.n
}

// DerivedChain delegates to a nil-safe sibling method — safety propagates
// through the method-summary fixpoint, not just through functions.
func (r *Registry) DerivedChain() int {
	return r.Guarded() + 1
}

// LeakToUnsafe passes the unguarded receiver to a function that
// dereferences its parameter without a guard.
func (r *Registry) LeakToUnsafe() int { // want "must be nil-receiver-safe"
	return callUnsafe(r)
}

func callUnsafe(r *Registry) int {
	return r.n
}

// ClosureGuarded captures the receiver in closures that each guard or
// delegate safely — the real Registry.Handler shape. Closures run at an
// unknown time, so the derivation re-checks them from scratch; here each
// use is individually safe.
func (r *Registry) ClosureGuarded() func() int {
	return func() int {
		if r == nil {
			return 0
		}
		return r.Guarded()
	}
}

// ClosureUnguarded captures the receiver and dereferences it inside the
// closure with no guard: the nil crash just moved to call time.
func (r *Registry) ClosureUnguarded() func() int { // want "must be nil-receiver-safe"
	return func() int {
		return r.n
	}
}

// unexportedMethod needs no guard: not part of the public surface.
func (r *Registry) unexportedMethod() int { return r.n }

// ValueRecv methods can't be called on nil; exempt.
func (r Registry) ValueRecv() int { return r.n }

// internalHandle is unexported: its methods are exempt.
type internalHandle struct{ n int }

func (h *internalHandle) Exported() int { return h.n }
