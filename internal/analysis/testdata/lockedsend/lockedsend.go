// Package lockedsend is the analysistest fixture for the lockedsend
// analyzer: no channel sends or blocking Comm-shaped transport calls while
// a mutex is held.
package lockedsend

import "sync"

// comm mirrors the runtime.Comm transport shape.
type comm struct{}

func (comm) Send(to, tag int, payload []byte) error             { return nil }
func (comm) Recv(from, tag int) ([]byte, error)                 { return nil, nil }
func (comm) RecvAnyOf(tag int, from []int) (int, []byte, error) { return 0, nil, nil }
func (comm) Barrier() error                                     { return nil }

type engine struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan []byte
	c  comm
	n  int
}

// --- negative cases ---

func (e *engine) okSendOutsideLock(b []byte) {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
	e.ch <- b
}

func (e *engine) okCommAfterUnlock(b []byte) error {
	e.mu.Lock()
	n := e.n
	e.mu.Unlock()
	return e.c.Send(n, 0, b)
}

func (e *engine) okUnlockedBranch(fast bool, b []byte) {
	e.mu.Lock()
	if fast {
		e.mu.Unlock()
		e.ch <- b // lock released on this path
		return
	}
	e.mu.Unlock()
}

func (e *engine) okGoroutineEscapesLock(b []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		e.ch <- b // runs without the caller's lock
	}()
}

// --- positive cases ---

func (e *engine) badSendUnderLock(b []byte) {
	e.mu.Lock()
	e.ch <- b // want "channel send while holding e.mu"
	e.mu.Unlock()
}

func (e *engine) badSendUnderDeferredUnlock(b []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.c.Send(0, 0, b) // want "Comm.Send while holding e.mu"
}

func (e *engine) badRecvUnderRLock() ([]byte, error) {
	e.rw.RLock()
	defer e.rw.RUnlock()
	return e.c.Recv(0, 0) // want "Comm.Recv while holding e.rw"
}

func (e *engine) badBarrierUnderLock() error {
	e.mu.Lock()
	err := e.c.Barrier() // want "Comm.Barrier while holding e.mu"
	e.mu.Unlock()
	return err
}

func (e *engine) badRecvAnyOfInSelect(from []int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, _, _ = e.c.RecvAnyOf(0, from) // want "Comm.RecvAnyOf while holding e.mu"
}

// waived: a documented exception.
func (e *engine) waivedSend(b []byte) {
	e.mu.Lock()
	e.ch <- b //stfw:ignore lockedsend
	e.mu.Unlock()
}

// --- interprocedural: blocking hidden behind same-package helpers. The
// MayBlock summary propagates through the call graph, so holding a mutex
// across a helper that (transitively) sends is flagged like the direct
// send above ---

// flush blocks on the channel: its summary is MayBlock.
func (e *engine) flush(b []byte) {
	e.ch <- b
}

// flushIndirect blocks two frames deep: MayBlock is transitive.
func (e *engine) flushIndirect(b []byte) {
	e.flush(b)
}

// bump is lock-free bookkeeping: not MayBlock.
func (e *engine) bump() { e.n++ }

func (e *engine) okNonBlockingHelperUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bump()
}

func (e *engine) okBlockingHelperAfterUnlock(b []byte) {
	e.mu.Lock()
	e.bump()
	e.mu.Unlock()
	e.flushIndirect(b)
}

func (e *engine) badHelperBlocksUnderLock(b []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flush(b) // want "may block on a channel send or Comm call, while holding e.mu"
}

func (e *engine) badHelperBlocksTwoFramesDeep(b []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flushIndirect(b) // want "may block on a channel send or Comm call, while holding e.mu"
}
