package analysis

import (
	"go/ast"
	"go/token"
)

// Nilrecv enforces the telemetry package's nil-off contract: a nil
// *Registry (and everything hanging off it) is the documented way to
// disable instrumentation, so every exported pointer-receiver method in the
// telemetry package must begin with a guard of the form
//
//	if r == nil { ... return ... }
//
// (possibly with further || conditions). Methods that are nil-safe by
// construction — e.g. they only pass the receiver on to nil-tolerant
// callees — carry a //stfw:ignore nilrecv annotation instead, which keeps
// the exception visible at the definition.
var Nilrecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "exported telemetry methods must start with a nil-receiver guard",
	Run:  runNilrecv,
}

func runNilrecv(pass *Pass) error {
	if pass.Pkg.Name() != "telemetry" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !isPointerReceiver(fd) || !exportedReceiverType(fd) {
				// Unexported receiver types (internal wrappers) are never
				// handed out nil; only the public handles need the guard.
				continue
			}
			recvName := receiverName(fd)
			if recvName == "" || recvName == "_" {
				pass.Reportf(fd.Pos(), "exported method %s has an unnamed receiver and so cannot guard against a nil receiver", fd.Name.Name)
				continue
			}
			if !startsWithNilGuard(fd.Body, recvName) {
				pass.Reportf(fd.Pos(), "exported method %s must begin with `if %s == nil` (nil telemetry handles disable instrumentation)", fd.Name.Name, recvName)
			}
		}
	}
	return nil
}

func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func isPointerReceiver(fd *ast.FuncDecl) bool {
	_, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	return ok
}

// exportedReceiverType reports whether the method's receiver base type is
// an exported name (e.g. *Registry, not *countedComm).
func exportedReceiverType(fd *ast.FuncDecl) bool {
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// startsWithNilGuard reports whether the body's first statement is an if
// whose condition checks the receiver against nil — either exactly
// `recv == nil` or an || chain containing that comparison.
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	return condChecksNil(ifs.Cond, recv)
}

func condChecksNil(cond ast.Expr, recv string) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LOR:
		return condChecksNil(be.X, recv) || condChecksNil(be.Y, recv)
	case token.EQL:
		return isIdentNamed(be.X, recv) && isNilIdent(be.Y) ||
			isIdentNamed(be.Y, recv) && isNilIdent(be.X)
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool {
	return isIdentNamed(e, "nil")
}
