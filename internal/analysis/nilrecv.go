package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilrecv enforces the telemetry package's nil-off contract: a nil
// *Registry (and everything hanging off it) is the documented way to
// disable instrumentation, so every exported pointer-receiver method on an
// exported type in the telemetry package must be provably nil-safe. The
// canonical shape is a leading guard,
//
//	if r == nil { ... return ... }
//
// (possibly with further || conditions), but the analysis is
// interprocedural and flow-aware: a method also passes when every use of
// its receiver is dominated by a nil check, compares the receiver against
// nil, returns it, or delegates to a same-package method or function that
// is itself nil-safe for that value — derived as a fixpoint over the
// package, so safety established by one method (or by a guarded helper
// function) carries to its callers. Methods that are nil-safe for reasons
// the derivation cannot see carry a //stfw:ignore nilrecv annotation.
var Nilrecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "exported telemetry methods must be provably nil-receiver-safe",
	Run:  runNilrecv,
}

func runNilrecv(pass *Pass) error {
	if pass.Pkg.Name() != "telemetry" {
		return nil
	}
	d := newNilDeriver(pass)
	d.solve()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !isPointerReceiver(fd) || !exportedReceiverType(fd) {
				// Unexported receiver types (internal wrappers) are never
				// handed out nil; only the public handles need the guard.
				continue
			}
			recvName := receiverName(fd)
			if recvName == "" || recvName == "_" {
				// An unnamed receiver cannot be dereferenced, so the method
				// is trivially nil-safe.
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || d.safeMethods[fn] {
				continue
			}
			pass.Reportf(fd.Pos(), "exported method %s must be nil-receiver-safe: begin with `if %s == nil` or delegate only to nil-safe callees (nil telemetry handles disable instrumentation)", fd.Name.Name, recvName)
		}
	}
	return nil
}

// nilDeriver computes, as a package-wide fixpoint, which pointer-receiver
// methods tolerate a nil receiver and which function parameters tolerate a
// nil argument. The derivation starts from nothing and only adds facts it
// can prove, so a cyclic delegation stays unsafe (conservative).
type nilDeriver struct {
	pass        *Pass
	parents     map[ast.Node]ast.Node
	safeMethods map[*types.Func]bool
	// safeParams[fn][i] means fn tolerates nil as its i-th argument.
	safeParams map[*types.Func][]bool
	methods    []*ast.FuncDecl // pointer-receiver methods with named receivers
	functions  []*ast.FuncDecl // package-level functions with parameters
}

func newNilDeriver(pass *Pass) *nilDeriver {
	d := &nilDeriver{
		pass:        pass,
		parents:     make(map[ast.Node]ast.Node),
		safeMethods: make(map[*types.Func]bool),
		safeParams:  make(map[*types.Func][]bool),
	}
	for _, file := range pass.Files {
		for n, p := range buildParents(file) {
			d.parents[n] = p
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil {
				if isPointerReceiver(fd) && receiverName(fd) != "" && receiverName(fd) != "_" {
					d.methods = append(d.methods, fd)
				}
				continue
			}
			d.functions = append(d.functions, fd)
		}
	}
	return d
}

// solve iterates the derivation to a fixpoint: each round re-examines every
// method receiver and function parameter under the facts proved so far and
// keeps going while new facts appear. Safety is monotone (facts are only
// added), so the loop terminates.
func (d *nilDeriver) solve() {
	for changed := true; changed; {
		changed = false
		for _, fd := range d.methods {
			fn, ok := d.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || d.safeMethods[fn] {
				continue
			}
			recv := d.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
			if recv == nil {
				continue
			}
			// A leading guard alone suffices — the method's contract is to
			// bail out before touching anything, and the rest of the body
			// runs with a non-nil receiver by construction.
			if d.hasLeadingGuard(fd.Body, recv) || d.varNilSafe(fd.Body, recv) {
				d.safeMethods[fn] = true
				changed = true
			}
		}
		for _, fd := range d.functions {
			fn, ok := d.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			safe := d.safeParams[fn]
			if safe == nil {
				safe = make([]bool, sig.Params().Len())
				d.safeParams[fn] = safe
			}
			for i := range safe {
				if safe[i] {
					continue
				}
				p := sig.Params().At(i)
				if isNilable(p.Type()) && (d.hasLeadingGuard(fd.Body, p) || d.varNilSafe(fd.Body, p)) {
					safe[i] = true
					changed = true
				}
			}
		}
	}
}

// isNilable reports whether nil is a value of the type (the only parameters
// a nil-safety fact is meaningful for).
func isNilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// varNilSafe reports whether every use of obj in the body is safe when obj
// may be nil.
func (d *nilDeriver) varNilSafe(body *ast.BlockStmt, obj types.Object) bool {
	safe, _ := d.stmtsNilSafe(body.List, obj, false)
	return safe
}

// stmtsNilSafe walks a statement sequence tracking whether obj is known
// non-nil at each point. It returns whether all uses were safe and whether
// obj is known non-nil after the sequence falls through.
func (d *nilDeriver) stmtsNilSafe(stmts []ast.Stmt, obj types.Object, known bool) (allSafe, knownAfter bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.IfStmt:
			if st.Init != nil && !d.usesSafe(st.Init, obj, known) {
				return false, known
			}
			switch {
			case st.Init == nil && d.condIsNilCheck(st.Cond, obj):
				// if obj == nil { ... }: obj may be nil inside the body,
				// and is non-nil afterwards when the body always leaves.
				if ok, _ := d.stmtsNilSafe(st.Body.List, obj, false); !ok {
					return false, known
				}
				if st.Else != nil && !d.usesSafe(st.Else, obj, true) {
					return false, known
				}
				if st.Else == nil && endsInReturn(st.Body) {
					known = true
				}
			case st.Init == nil && d.condIsNonNilCheck(st.Cond, obj):
				// if obj != nil { ... }: obj is non-nil inside the body.
				if ok, _ := d.stmtsNilSafe(st.Body.List, obj, true); !ok {
					return false, known
				}
				if st.Else != nil && !d.usesSafe(st.Else, obj, known) {
					return false, known
				}
			default:
				if !d.exprUsesSafe(st.Cond, obj, known) {
					return false, known
				}
				if ok, _ := d.stmtsNilSafe(st.Body.List, obj, known); !ok {
					return false, known
				}
				if st.Else != nil && !d.usesSafe(st.Else, obj, known) {
					return false, known
				}
			}
		case *ast.BlockStmt:
			ok, k := d.stmtsNilSafe(st.List, obj, known)
			if !ok {
				return false, known
			}
			known = k
		default:
			if !d.usesSafe(s, obj, known) {
				return false, known
			}
		}
	}
	return true, known
}

// hasLeadingGuard reports the canonical syntactic shape: the body's first
// statement is `if obj == nil { ... }` (possibly || further conditions).
func (d *nilDeriver) hasLeadingGuard(body *ast.BlockStmt, obj types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	return ok && ifs.Init == nil && d.condIsNilCheck(ifs.Cond, obj)
}

// endsInReturn reports whether the block's last statement is a return — the
// shape `if r == nil { ...; return ... }` that establishes non-nilness for
// the code after it.
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// condIsNilCheck matches `obj == nil`, possibly as the left disjunct of an
// || chain (short-circuiting keeps later disjuncts guarded).
func (d *nilDeriver) condIsNilCheck(cond ast.Expr, obj types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LOR:
		return d.condIsNilCheck(be.X, obj) ||
			!usesObject(d.pass.TypesInfo, be.X, obj) && d.condIsNilCheck(be.Y, obj)
	case token.EQL:
		return d.isObjVsNil(be, obj)
	}
	return false
}

// condIsNonNilCheck matches `obj != nil`, possibly as the left conjunct of
// an && chain.
func (d *nilDeriver) condIsNonNilCheck(cond ast.Expr, obj types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LAND:
		return d.condIsNonNilCheck(be.X, obj)
	case token.NEQ:
		return d.isObjVsNil(be, obj)
	}
	return false
}

func (d *nilDeriver) isObjVsNil(be *ast.BinaryExpr, obj types.Object) bool {
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && d.pass.TypesInfo.Uses[id] == obj
	}
	return isObj(be.X) && isNilIdent(be.Y) || isObj(be.Y) && isNilIdent(be.X)
}

// usesSafe reports whether every use of obj under the node is safe given
// the current knowledge. Function literals are re-analyzed from scratch
// with known=false: they run later, when the captured handle may be nil
// regardless of the guard in force at capture time.
func (d *nilDeriver) usesSafe(n ast.Node, obj types.Object, known bool) bool {
	safe := true
	ast.Inspect(n, func(c ast.Node) bool {
		if !safe {
			return false
		}
		if fl, ok := c.(*ast.FuncLit); ok {
			if ok2, _ := d.stmtsNilSafe(fl.Body.List, obj, false); !ok2 {
				safe = false
			}
			return false
		}
		if id, ok := c.(*ast.Ident); ok && d.pass.TypesInfo.Uses[id] == obj {
			if !known && !d.useContextSafe(id, obj) {
				safe = false
			}
		}
		return safe
	})
	return safe
}

func (d *nilDeriver) exprUsesSafe(e ast.Expr, obj types.Object, known bool) bool {
	return e == nil || d.usesSafe(&ast.ExprStmt{X: e}, obj, known)
}

// useContextSafe reports whether one occurrence of the possibly-nil obj is
// safe from its immediate context: a nil comparison, a return (the nil
// handle propagates to a caller bound by the same contract), a call to a
// derived-nil-safe method on it, or an argument position a same-package
// function is derived nil-safe for.
func (d *nilDeriver) useContextSafe(id *ast.Ident, obj types.Object) bool {
	info := d.pass.TypesInfo
	switch p := d.parents[id].(type) {
	case *ast.BinaryExpr:
		if (p.Op == token.EQL || p.Op == token.NEQ) &&
			(isNilIdent(p.X) || isNilIdent(p.Y)) {
			return true
		}
	case *ast.ReturnStmt:
		return true
	case *ast.SelectorExpr:
		if p.X != id {
			return false
		}
		if m, ok := info.Uses[p.Sel].(*types.Func); ok {
			return d.safeMethods[m]
		}
		return false // field access dereferences
	case *ast.CallExpr:
		fn := calleeFunc(info, p)
		if fn == nil {
			return false
		}
		if i := argIndex(p, id); i >= 0 {
			safe := d.safeParams[fn]
			return i < len(safe) && safe[i]
		}
	}
	return false
}

func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func isPointerReceiver(fd *ast.FuncDecl) bool {
	_, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	return ok
}

// exportedReceiverType reports whether the method's receiver base type is
// an exported name (e.g. *Registry, not *countedComm).
func exportedReceiverType(fd *ast.FuncDecl) bool {
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
