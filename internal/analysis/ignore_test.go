package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// testDirective is assembled at runtime so repo-wide directive audits
// (grep for the literal prefix) don't count this file's synthetic sources
// as live waivers.
var testDirective = "//stfw:" + "ignore"

func buildIndexFromSource(t *testing.T, src string) ignoreIndex {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return buildIgnoreIndex(fset, []*ast.File{f})
}

func at(line int) token.Position {
	return token.Position{Filename: "fix.go", Line: line}
}

// TestIgnoreSpanMultiLineCall is the regression test for the span rule: a
// directive above a call whose arguments continue on later lines must
// suppress diagnostics anchored inside those later lines, not just on the
// call's first line.
func TestIgnoreSpanMultiLineCall(t *testing.T) {
	src := strings.ReplaceAll(`package p

func emit(vs ...int) {}

func f(a, b, c int) {
	@DIR@ framepool
	emit(
		a,
		b,
		c,
	)
}
`, "@DIR@", testDirective)
	idx := buildIndexFromSource(t, src)
	// The call spans lines 7-11; the directive sits on line 6.
	for line := 7; line <= 11; line++ {
		if !idx.covers(at(line), "framepool") {
			t.Errorf("line %d of the annotated multi-line call not covered", line)
		}
	}
	if idx.covers(at(12), "framepool") {
		t.Errorf("coverage leaked past the call's closing paren")
	}
	if idx.covers(at(8), "nilrecv") {
		t.Errorf("directive for framepool also covered nilrecv")
	}
}

// TestIgnoreSpanMultiLineAssign covers the other common anchor: a
// multi-line composite literal bound by an assignment.
func TestIgnoreSpanMultiLineAssign(t *testing.T) {
	src := strings.ReplaceAll(`package p

func g() {
	@DIR@ lockedsend -- held across init only
	cfg := []int{
		1,
		2,
	}
	_ = cfg
}
`, "@DIR@", testDirective)
	idx := buildIndexFromSource(t, src)
	for line := 5; line <= 8; line++ {
		if !idx.covers(at(line), "lockedsend") {
			t.Errorf("line %d of the annotated multi-line assignment not covered", line)
		}
	}
	if idx.covers(at(9), "lockedsend") {
		t.Errorf("coverage leaked past the assignment")
	}
}

// TestIgnoreSpanStopsAtControlStatements: a directive above an if
// statement must not silence the statement's whole body — only the usual
// own-line/next-line window applies.
func TestIgnoreSpanStopsAtControlStatements(t *testing.T) {
	src := strings.ReplaceAll(`package p

func h(cond bool) int {
	@DIR@ framepool
	if cond {
		return 1
	}
	return 0
}
`, "@DIR@", testDirective)
	idx := buildIndexFromSource(t, src)
	if !idx.covers(at(5), "framepool") {
		t.Errorf("line below the directive not covered")
	}
	if idx.covers(at(6), "framepool") {
		t.Errorf("directive above an if statement silenced its body")
	}
}

// TestIgnoreJustificationSeparator: names after the -- separator are
// justification text, not analyzer names.
func TestIgnoreJustificationSeparator(t *testing.T) {
	src := strings.ReplaceAll(`package p

func j() {
	@DIR@ goroleak -- drained by Close on shutdown
	_ = 0
}
`, "@DIR@", testDirective)
	idx := buildIndexFromSource(t, src)
	if !idx.covers(at(5), "goroleak") {
		t.Errorf("directive with justification did not cover the next line")
	}
	for _, name := range []string{"--", "drained", "by", "Close"} {
		if idx.covers(at(5), name) {
			t.Errorf("justification word %q parsed as an analyzer name", name)
		}
	}
}

// TestIgnoreBareDirectiveSilencesNothing: blanket suppression is invalid.
func TestIgnoreBareDirectiveSilencesNothing(t *testing.T) {
	src := strings.ReplaceAll(`package p

func k() {
	@DIR@
	_ = 0
}
`, "@DIR@", testDirective)
	idx := buildIndexFromSource(t, src)
	for _, a := range []string{"framepool", "nilrecv", "atomicmix", "lockedsend", "tagspan", "goroleak"} {
		if idx.covers(at(5), a) {
			t.Errorf("bare directive silenced %s", a)
		}
	}
}
