package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Framepool enforces the frame-arena ownership discipline documented in
// internal/msg/pool.go: every buffer obtained from msg.GetFrame,
// msg.GetFrameCap, or msg.GetFrameLen has a single owner and must, on every
// path, either be recycled with msg.PutFrame or handed off — to a transport
// Send (ownership transfers to the transport or the receiving rank under
// the SendRetains contract), across a channel, into a longer-lived
// structure, or out of the function. It additionally flags uses after an
// unconditional PutFrame (including double puts) and PutFrame of a reslice
// that drops the buffer's front — cap shrinks, so the buffer re-enters the
// arena in a lower size class than it was allocated from.
//
// The ownership model is interprocedural within a package: every call to a
// same-package function is classified by that function's computed summary
// (summary.go) — the callee may release the buffer, hand it off, pass it
// through to its result, or merely borrow it — and helpers that mint and
// return pooled buffers are mint sites in their callers. Builtin reads
// (len, cap, copy) and msg codec calls borrow; unknown cross-package calls
// and stores into non-local memory take ownership. Deliberate exceptions
// are annotated //stfw:ignore framepool.
//
// The same single-holder discipline governs udpnet's packet-buffer ring
// (internal/transport/udpnet.PacketRing): buffers minted by Get must reach
// Put (or escape into the window/backlog structures) on every path, must
// not be used after Put, and must not be Put as a front-dropping reslice —
// the ring rejects buffers whose capacity changed. Get/Put sites are
// tracked with the same machinery as GetFrame*/PutFrame.
var Framepool = &Analyzer{
	Name: "framepool",
	Doc:  "check that every pooled buffer (msg frame arena, udpnet packet ring) is released or handed off on all paths",
	Run:  runFramepool,
}

type useKind int

const (
	useNeutral useKind = iota // borrow: the buffer stays owned here
	useRelease                // PutFrame or transport Send: ownership resolved
	useEscape                 // stored, sent, returned: owned elsewhere now
)

// frameUse is one classified occurrence of a tracked buffer variable.
type frameUse struct {
	id   *ast.Ident
	kind useKind
}

func runFramepool(pass *Pass) error {
	for _, file := range pass.Files {
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isFrameSource(pass.TypesInfo, call) {
				checkFrameSource(pass, parents, call, 0)
			} else if idx, ok := summaryMint(pass, call); ok {
				// A same-package helper whose summary says it returns a
				// freshly minted pooled buffer is a mint site too — the
				// exact shape the PR-5 hardcoded source set missed.
				checkFrameSource(pass, parents, call, idx)
			}
			return true
		})
	}
	return nil
}

// summaryMint reports whether the call returns an owned pooled buffer per
// the callee's summary, and at which result index. Calls that receive a
// mint among their own arguments are skipped: the inner mint site is
// already tracked and climbs through the call (passthrough).
func summaryMint(pass *Pass, call *ast.CallExpr) (int, bool) {
	sum := pass.Summaries().Of(calleeFunc(pass.TypesInfo, call))
	if sum == nil {
		return 0, false
	}
	idx := -1
	for i, o := range sum.ReturnsOwned {
		if o {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, false
	}
	for _, arg := range call.Args {
		if exprContainsMint(pass.pkg, pass.Summaries(), arg) {
			return 0, false
		}
	}
	return idx, true
}

// isFrameSource reports whether the call mints a pooled buffer: a msg
// frame-arena Get or a udpnet PacketRing.Get.
func isFrameSource(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return isPkgFunc(fn, "internal/msg", "GetFrame", "GetFrameCap", "GetFrameLen") ||
		isRingMethod(fn, "Get")
}

// isRingMethod reports whether fn is the named method on udpnet's
// PacketRing (pointer or value receiver).
func isRingMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	if p != "internal/transport/udpnet" && !strings.HasSuffix(p, "/internal/transport/udpnet") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "PacketRing"
}

// checkFrameSource follows one mint call (GetFrame*, ring Get, or a helper
// whose summary returns an owned buffer at result ownedIdx) to its binding
// and runs the ownership analysis on the bound variable.
func checkFrameSource(pass *Pass, parents map[ast.Node]ast.Node, src *ast.CallExpr, ownedIdx int) {
	info := pass.TypesInfo

	// The idiomatic mint-and-encode composition passes the fresh buffer
	// straight to a passthrough callee and binds the (possibly grown)
	// result:
	//     buf := msg.Encode(msg.GetFrameCap(n), &m)
	// The same holds for any call whose summary says the parameter flows to
	// the result (append-shaped builders). Track the outermost such
	// expression; reslices of the fresh buffer (GetFrameCap(n)[:n]) are
	// still the same buffer.
	expr := ast.Node(src)
	for {
		p := parents[expr]
		if pe, ok := p.(*ast.ParenExpr); ok {
			expr = pe
			continue
		}
		if se, ok := p.(*ast.SliceExpr); ok && ast.Unparen(se.X) == expr {
			expr = se
			continue
		}
		if c, ok := p.(*ast.CallExpr); ok {
			if i := argIndex(c, expr); i >= 0 {
				fn := calleeFunc(info, c)
				if sum := pass.Summaries().Of(fn); sum != nil && sum.effectAt(i, fn) == EffPassthrough {
					expr = c
					ownedIdx = 0 // passthrough callees have one []byte result
					continue
				}
			}
		}
		break
	}

	switch p := parents[expr].(type) {
	case *ast.AssignStmt:
		var target ast.Expr
		if len(p.Rhs) == 1 && len(p.Lhs) > 1 && ast.Unparen(p.Rhs[0]) == expr {
			// Tuple binding: buf, err := helper() — the owned result index
			// picks the variable to track.
			if ownedIdx < len(p.Lhs) {
				target = p.Lhs[ownedIdx]
			}
		} else {
			for i, rhs := range p.Rhs {
				if ast.Unparen(rhs) == expr && i < len(p.Lhs) {
					target = p.Lhs[i]
					break
				}
			}
		}
		if target == nil {
			return
		}
		id, ok := target.(*ast.Ident)
		if !ok {
			// Stored straight into a slice slot, field, or deref:
			// ownership moves into the structure.
			return
		}
		if id.Name == "_" {
			pass.Reportf(src.Pos(), "pooled frame is dropped without PutFrame")
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() != pass.Pkg.Scope() {
			analyzeFrameVar(pass, parents, v, p)
		}
		// Bound to a global or field: lifetime is managed elsewhere.
		return
	case *ast.ValueSpec:
		var name *ast.Ident
		if len(p.Values) == 1 && len(p.Names) > 1 && ast.Unparen(p.Values[0]) == expr {
			if ownedIdx < len(p.Names) {
				name = p.Names[ownedIdx]
			}
		} else {
			for i, val := range p.Values {
				if ast.Unparen(val) == expr && i < len(p.Names) {
					name = p.Names[i]
					break
				}
			}
		}
		if name == nil {
			return
		}
		if v, ok := info.Defs[name].(*types.Var); ok && !v.IsField() {
			analyzeFrameVar(pass, parents, v, declStmtFor(parents, p))
		}
		return
	case *ast.CallExpr:
		// Passed straight to a releasing or owning call:
		// c.Send(to, tag, msg.Encode(msg.GetFrameCap(n), &m)) — fine.
		if kind := classifyCallUse(pass, parents, p, expr); kind == useNeutral {
			pass.Reportf(src.Pos(), "pooled frame is passed to a borrowing call and never released")
		}
	case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		// Ownership leaves the function or moves into a structure.
	default:
		pass.Reportf(src.Pos(), "pooled frame is never released (PutFrame it, Send it, or annotate //stfw:ignore framepool)")
	}
}

// declStmtFor finds the DeclStmt wrapping a ValueSpec, nil for file-level
// declarations.
func declStmtFor(parents map[ast.Node]ast.Node, spec *ast.ValueSpec) ast.Stmt {
	gd, _ := parents[spec].(*ast.GenDecl)
	if gd == nil {
		return nil
	}
	ds, _ := parents[gd].(*ast.DeclStmt)
	return ds
}

// analyzeFrameVar runs the path-sensitive ownership analysis for one
// tracked buffer variable from its defining statement to the end of the
// enclosing block.
func analyzeFrameVar(pass *Pass, parents map[ast.Node]ast.Node, obj *types.Var, def ast.Stmt) {
	if def == nil {
		return
	}
	block := enclosingBlock(parents, def)
	if block == nil {
		return
	}
	start := -1
	for i, s := range block.List {
		if s == def {
			start = i
			break
		}
	}
	if start < 0 {
		return
	}
	region := block.List[start+1:]

	// Classify every use of the variable in the region.
	uses := make(map[*ast.Ident]useKind)
	anyResolved := false
	for _, s := range region {
		ast.Inspect(s, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				return true
			}
			k := classifyUse(pass, parents, id)
			uses[id] = k
			if k != useNeutral {
				anyResolved = true
			}
			return true
		})
	}
	if !anyResolved {
		pass.Reportf(def.Pos(), "pooled frame %s is never released: no PutFrame, Send, or ownership hand-off in scope", obj.Name())
		return
	}

	fa := &frameAnalysis{pass: pass, obj: obj, uses: uses}
	released := fa.evalSeq(region, false)
	if !released {
		pass.Reportf(def.Pos(), "pooled frame %s is not released on every path through this block", obj.Name())
	}
}

// enclosingBlock walks up to the nearest BlockStmt containing the node.
func enclosingBlock(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for p := parents[n]; p != nil; p = parents[p] {
		if b, ok := p.(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// classifyUse decides what one occurrence of the tracked variable does to
// its ownership.
func classifyUse(pass *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) useKind {
	return classifyFrom(pass, parents, id, pass.TypesInfo.Uses[id], id.Name)
}

// classifyFrom classifies the context of an expression standing for the
// tracked buffer — the identifier itself, or a call (append, builder)
// whose result is the same buffer.
func classifyFrom(pass *Pass, parents map[ast.Node]ast.Node, start ast.Node, obj types.Object, name string) useKind {
	info := pass.TypesInfo

	// Climb through parens and slicings: PutFrame(v[:0]) releases v. A
	// reslice that drops the front loses the pool size class — flagged at
	// the PutFrame below.
	expr := start
	slicedFront := false
	for {
		p := parents[expr]
		if pe, ok := p.(*ast.ParenExpr); ok {
			expr = pe
			continue
		}
		if se, ok := p.(*ast.SliceExpr); ok && ast.Unparen(se.X) == expr {
			if se.Low != nil && !isZeroLiteral(se.Low) {
				slicedFront = true
			}
			expr = se
			continue
		}
		break
	}

	switch p := parents[expr].(type) {
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if ast.Unparen(arg) == expr {
				kind := classifyCallUse(pass, parents, p, expr)
				if kind == useRelease && slicedFront && isPutFrame(info, p) {
					pass.Reportf(p.Pos(), "PutFrame of resliced %s drops the buffer's front and its pool size class; put the original slice", name)
				}
				return kind
			}
		}
		return useNeutral // v(...) or v as the callee: not an ownership event
	case *ast.SendStmt:
		if ast.Unparen(p.Value) == expr {
			return useEscape
		}
		return useNeutral
	case *ast.ReturnStmt:
		return useEscape
	case *ast.CompositeLit, *ast.KeyValueExpr:
		return useEscape
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != expr || i >= len(p.Lhs) {
				continue
			}
			switch lhs := p.Lhs[i].(type) {
			case *ast.Ident:
				if obj != nil && info.Uses[lhs] == obj {
					return useNeutral // self reslice or regrow: v = v[:n], v = append(v, ...)
				}
				return useEscape // aliased into another variable
			default:
				_ = lhs
				return useEscape // stored into a field, slot, or deref
			}
		}
		return useNeutral // v appears on the LHS or inside an index
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return useEscape // address taken
		}
		return useNeutral
	default:
		return useNeutral
	}
}

// classifyCallUse decides what passing the tracked buffer to this call does
// to its ownership. arg is the (climbed) argument expression.
func classifyCallUse(pass *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr, arg ast.Node) useKind {
	info := pass.TypesInfo
	if isPutFrame(info, call) {
		return useRelease
	}
	if isCommSend(info, call) {
		return useRelease
	}
	switch builtinName(info, call) {
	case "len", "cap", "copy", "clear", "min", "max", "print", "println":
		return useNeutral
	case "append":
		if len(call.Args) > 0 && ast.Unparen(call.Args[0]) == arg {
			// append(b, ...): the result is (a possibly regrown alias of)
			// the tracked buffer, so how the append call itself is used —
			// self-assigned, stored, returned — decides ownership.
			id := firstIdentIn(arg)
			if id == nil {
				return useEscape
			}
			return classifyFrom(pass, parents, call, info.Uses[id], id.Name)
		}
		if call.Ellipsis != token.NoPos {
			return useNeutral // append(x, v...): bytes are copied out
		}
		return useEscape // append(frames, v): retained by the slice
	case "":
		// Not a builtin; fall through to function classification.
	default:
		return useNeutral
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return useEscape // call through a function value: assume it keeps it
	}
	if isPkgFunc(fn, "internal/msg", "Decode", "DecodeInto", "Float64View", "EncodedSize") {
		// Codec reads alias the buffer but ownership stays here.
		return useNeutral
	}
	if sum := pass.Summaries().Of(fn); sum != nil {
		if idx := argIndex(call, arg); idx >= 0 {
			switch sum.effectAt(idx, fn) {
			case EffRelease:
				return useRelease
			case EffEscape:
				return useEscape
			case EffPassthrough:
				// The buffer flows to the callee's result (msg.Encode,
				// append-shaped builders): how the call's own value is
				// used decides ownership, exactly like append above.
				id := firstIdentIn(arg)
				if id == nil {
					return useEscape
				}
				return classifyFrom(pass, parents, call, info.Uses[id], id.Name)
			default:
				return useNeutral // summarized borrow: the buffer stays here
			}
		}
	}
	if fn.Pkg() == pass.Pkg {
		return useNeutral // bodyless same-package func: nothing to summarize
	}
	return useEscape // unknown cross-package call: assume ownership transfer
}

// firstIdentIn returns the first identifier inside the expression (the
// tracked variable for climbed slice/paren chains).
func firstIdentIn(n ast.Node) *ast.Ident {
	var id *ast.Ident
	ast.Inspect(n, func(c ast.Node) bool {
		if id != nil {
			return false
		}
		if i, ok := c.(*ast.Ident); ok {
			id = i
			return false
		}
		return true
	})
	return id
}

func isPutFrame(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return isPkgFunc(fn, "internal/msg", "PutFrame") || isRingMethod(fn, "Put")
}

// isCommSend matches the transport send shape of runtime.Comm:
// Send(to, tag int, payload []byte) error. Ownership of the payload
// transfers under the SendRetains contract.
func isCommSend(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Send" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	params := sig.Params()
	if params.Len() != 3 || sig.Results().Len() != 1 {
		return false
	}
	s, ok := params.At(2).Type().(*types.Slice)
	return ok && types.Identical(s.Elem(), types.Typ[types.Byte])
}

func isZeroLiteral(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}

// frameAnalysis is the path evaluator state for one tracked variable.
type frameAnalysis struct {
	pass *Pass
	obj  *types.Var
	uses map[*ast.Ident]useKind
}

// stmtResolves reports whether the statement's subtree contains a use that
// releases or escapes the buffer.
func (fa *frameAnalysis) stmtResolves(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && fa.uses[id] > useNeutral {
			found = true
		}
		return !found
	})
	return found
}

// exprResolves reports whether the expression contains a releasing or
// escaping use of the buffer.
func (fa *frameAnalysis) exprResolves(e ast.Expr) bool {
	return e != nil && fa.stmtResolves(&ast.ExprStmt{X: e})
}

// stmtUses reports whether the statement's subtree mentions the variable.
func (fa *frameAnalysis) stmtUses(s ast.Stmt) bool {
	return usesObject(fa.pass.TypesInfo, s, fa.obj)
}

// stmtIsPut reports whether the statement is an unconditional release of
// the tracked buffer — msg.PutFrame(v...) itself, or a call to a
// same-package helper whose summary releases the argument position the
// buffer occupies. Later uses are use-after-free either way.
func (fa *frameAnalysis) stmtIsPut(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok || !fa.stmtUses(s) {
		return false
	}
	if isPutFrame(fa.pass.TypesInfo, call) {
		return true
	}
	fn := calleeFunc(fa.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() != fa.pass.Pkg {
		return false
	}
	sum := fa.pass.Summaries().Of(fn)
	if sum == nil {
		return false
	}
	for i, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok &&
			fa.pass.TypesInfo.Uses[id] == types.Object(fa.obj) &&
			sum.effectAt(i, fn) == EffRelease {
			return true
		}
	}
	return false
}

// evalSeq abstractly executes a statement sequence. It returns whether the
// buffer is definitely released when the sequence falls through, and
// reports leaks on return paths and uses after an unconditional PutFrame.
func (fa *frameAnalysis) evalSeq(stmts []ast.Stmt, released bool) bool {
	putDone := false
	for _, s := range stmts {
		if putDone && fa.stmtUses(s) {
			if fa.stmtIsPut(s) {
				fa.pass.Reportf(s.Pos(), "double PutFrame of %s", fa.obj.Name())
			} else {
				fa.pass.Reportf(s.Pos(), "use of %s after PutFrame recycled it", fa.obj.Name())
			}
			continue
		}
		switch st := s.(type) {
		case *ast.ReturnStmt:
			if !released && !fa.stmtResolves(st) {
				fa.pass.Reportf(st.Pos(), "pooled frame %s leaks on this return path", fa.obj.Name())
			}
			return true // fallthrough below is unreachable
		case *ast.BlockStmt:
			released = fa.evalSeq(st.List, released)
		case *ast.LabeledStmt:
			released = fa.evalSeq([]ast.Stmt{st.Stmt}, released)
		case *ast.IfStmt:
			// An escape in the condition (e.g. `if !ib.push(frame)`)
			// resolves ownership before either branch runs.
			if st.Init != nil && fa.stmtResolves(st.Init) || fa.exprResolves(st.Cond) {
				released = true
			}
			thenR := fa.evalSeq(st.Body.List, released)
			elseR := released
			if st.Else != nil {
				elseR = fa.evalSeq([]ast.Stmt{st.Else}, released)
			}
			released = released || (thenR && elseR)
		case *ast.ForStmt:
			fa.evalSeq(st.Body.List, released) // report nested leaks; zero-trip loops release nothing
		case *ast.RangeStmt:
			fa.evalSeq(st.Body.List, released)
		case *ast.SwitchStmt:
			if st.Init != nil && fa.stmtResolves(st.Init) || st.Tag != nil && fa.exprResolves(st.Tag) {
				released = true
			}
			released = fa.evalClauses(st.Body, released)
		case *ast.TypeSwitchStmt:
			released = fa.evalClauses(st.Body, released)
		case *ast.SelectStmt:
			released = fa.evalClauses(st.Body, released)
		case *ast.DeferStmt:
			if fa.stmtResolves(st) {
				released = true
			}
		default:
			if fa.stmtResolves(s) {
				released = true
				putDone = fa.stmtIsPut(s)
			}
		}
	}
	return released
}

// evalClauses evaluates a switch/select body: the sequence releases on
// fallthrough only if every clause does and (for switches) a default exists.
func (fa *frameAnalysis) evalClauses(body *ast.BlockStmt, released bool) bool {
	if released {
		// Still walk for nested reporting.
		for _, c := range body.List {
			switch cl := c.(type) {
			case *ast.CaseClause:
				fa.evalSeq(cl.Body, released)
			case *ast.CommClause:
				fa.evalSeq(cl.Body, released)
			}
		}
		return true
	}
	all := true
	hasDefault := false
	for _, c := range body.List {
		switch cl := c.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			all = fa.evalSeq(cl.Body, released) && all
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			all = fa.evalSeq(cl.Body, released) && all
		}
	}
	return all && hasDefault
}

// buildParents records each node's syntactic parent for upward walks.
func buildParents(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
