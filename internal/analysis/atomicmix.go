package analysis

import (
	"go/ast"
	"go/types"
)

// Atomicmix flags struct fields that are accessed through sync/atomic in
// one place and through plain loads or stores in another. Mixing the two is
// a data race even when it "works": the plain access is invisible to the
// race detector's happens-before edges for the atomic side, and on weak
// memory models the plain read can observe a torn or stale value. A field
// that is ever touched atomically must be touched atomically everywhere
// (composite-literal initialization before the value is shared is exempt,
// matching the sync/atomic documentation).
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must not be read or written plainly elsewhere",
	Run:  runAtomicmix,
}

func runAtomicmix(pass *Pass) error {
	info := pass.TypesInfo

	// Phase 1: collect fields whose address is passed to a sync/atomic
	// function anywhere in the package.
	atomicFields := make(map[*types.Var]string) // field -> atomic func name seen
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if f := selectedField(info, ue.X); f != nil {
					if _, seen := atomicFields[f]; !seen {
						atomicFields[f] = fn.Name()
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Phase 2: flag plain accesses to those fields. An access is plain
	// unless the selector is the operand of & feeding a sync/atomic call.
	for _, file := range pass.Files {
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			if _, ok := n.(*ast.CompositeLit); ok {
				return false // initialization before sharing is exempt
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := selectedField(info, sel)
			if f == nil {
				return true
			}
			via, isAtomic := atomicFields[f]
			if !isAtomic || isAtomicOperand(info, parents, sel) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is accessed with sync/atomic.%s elsewhere; plain access races with it", f.Name(), via)
			return true
		})
	}
	return nil
}

// selectedField resolves expr to the struct field it selects, nil when expr
// is not a field selector.
func selectedField(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// isAtomicOperand reports whether the selector is used as &sel inside a
// sync/atomic call — the sanctioned access shape.
func isAtomicOperand(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	p := parents[sel]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			break
		}
		p = parents[pe]
	}
	ue, ok := p.(*ast.UnaryExpr)
	if !ok {
		return false
	}
	q := parents[ue]
	for {
		pe, ok := q.(*ast.ParenExpr)
		if !ok {
			break
		}
		q = parents[pe]
	}
	call, ok := q.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}
