package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The directive names the
// analyzers it silences:
//
//	//stfw:ignore framepool          — one analyzer
//	//stfw:ignore framepool nilrecv  — several
//
// A directive covers the findings of the named analyzers on its own line
// and on the line immediately below — so it works both as a trailing
// comment on the flagged line and as a standalone annotation above it.
// Every directive must name at least one analyzer; a bare //stfw:ignore
// silences nothing (blanket suppression would hide future analyzers'
// findings too).
const ignorePrefix = "//stfw:ignore"

// ignoreIndex maps file name → line → the analyzer names ignored there.
type ignoreIndex map[string]map[int][]string

// buildIgnoreIndex scans every comment of the files for ignore directives.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				names := strings.Fields(c.Text[len(ignorePrefix):])
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return idx
}

// covers reports whether a directive at the diagnostic's line names the
// analyzer.
func (idx ignoreIndex) covers(pos token.Position, analyzer string) bool {
	lines, ok := idx[pos.Filename]
	if !ok {
		return false
	}
	for _, name := range lines[pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}
