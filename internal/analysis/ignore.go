package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The directive names the
// analyzers it silences, optionally followed by a justification after a
// `--` separator:
//
//	//stfw:ignore framepool                      — one analyzer
//	//stfw:ignore framepool nilrecv              — several
//	//stfw:ignore goroleak -- drained by Close   — with justification
//
// A directive covers the findings of the named analyzers on its own line,
// on the line immediately below — so it works both as a trailing comment on
// the flagged line and as a standalone annotation above it — and across the
// whole source span of the expression or simple statement starting on the
// covered line, so an annotation above a multi-line call or composite also
// suppresses diagnostics anchored inside the expression's later lines.
// Control statements (if/for/switch/select) and declarations do not extend
// the span: a directive above an if statement must not silence its whole
// body. Every directive must name at least one analyzer; a bare
// //stfw:ignore silences nothing (blanket suppression would hide future
// analyzers' findings too).
const ignorePrefix = "//stfw:ignore"

// ignoreIndex maps file name → line → the analyzer names ignored there.
type ignoreIndex map[string]map[int][]string

// buildIgnoreIndex scans every comment of the files for ignore directives.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	add := func(file string, line int, names []string) {
		lines := idx[file]
		if lines == nil {
			lines = make(map[int][]string)
			idx[file] = lines
		}
		lines[line] = append(lines[line], names...)
	}
	for _, f := range files {
		// directives: line → analyzer names, for this file.
		directives := make(map[int][]string)
		var fileName string
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				names := strings.Fields(c.Text[len(ignorePrefix):])
				if i := indexOf(names, "--"); i >= 0 {
					names = names[:i] // the rest is the justification
				}
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				fileName = pos.Filename
				directives[pos.Line] = append(directives[pos.Line], names...)
				add(pos.Filename, pos.Line, names)
				add(pos.Filename, pos.Line+1, names)
			}
		}
		if len(directives) == 0 {
			continue
		}
		// Span extension: an expression or simple statement whose first line
		// is covered by a directive extends the directive over its whole
		// source span, so multi-line calls and composites are suppressed on
		// every line.
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || !spanExtendable(n) {
				return true
			}
			start := fset.Position(n.Pos()).Line
			end := fset.Position(n.End()).Line
			if end <= start {
				return true
			}
			names := append(append([]string(nil), directives[start]...), directives[start-1]...)
			if len(names) == 0 {
				return true
			}
			for line := start + 1; line <= end; line++ {
				add(fileName, line, names)
			}
			return true
		})
	}
	return idx
}

// spanExtendable reports whether a directive covering the node's first line
// should cover its whole span: expressions and simple statements, yes;
// control statements, blocks, and function declarations, no — their span
// contains arbitrary code the directive's author never looked at.
func spanExtendable(n ast.Node) bool {
	switch n.(type) {
	case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.DeclStmt, *ast.ValueSpec,
		*ast.CallExpr, *ast.CompositeLit:
		return true
	}
	return false
}

func indexOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}

// covers reports whether a directive at the diagnostic's line names the
// analyzer.
func (idx ignoreIndex) covers(pos token.Position, analyzer string) bool {
	lines, ok := idx[pos.Filename]
	if !ok {
		return false
	}
	for _, name := range lines[pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}
