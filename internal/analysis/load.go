package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked target package plus the per-file
// ignore-directive index built from its comments.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ignores ignoreIndex
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Name       string
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	DepOnly    bool
}

// Load resolves the patterns with the go command and returns the matched
// packages parsed and type-checked from source. Dependencies — standard
// library and intra-module alike — are imported from compiler export data
// (`go list -export` compiles them into the build cache as needed), so a
// load touches the source of only the packages under analysis and works
// fully offline.
//
// dir is the directory the patterns are resolved in (the module root or any
// directory inside it); "" means the current directory. Test files are not
// loaded: the invariants the suite enforces are production-path properties,
// and keeping external-test packages out keeps the loader simple.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Name,ImportPath,Dir,GoFiles,Standard,Export,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var roots []listedPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.Standard && !lp.DepOnly && len(lp.GoFiles) > 0 {
			roots = append(roots, lp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range roots {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:    lp.ImportPath,
			Name:    lp.Name,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			ignores: buildIgnoreIndex(fset, files),
		})
	}
	return pkgs, nil
}

// Run executes the analyzers over the loaded packages and returns the
// surviving diagnostics, sorted by position. Findings on a line covered by
// a matching //stfw:ignore directive are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				if pkg.ignores.covers(d.Pos, a.Name) {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
