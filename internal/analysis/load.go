package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked target package plus the per-file
// ignore-directive index built from its comments.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ignores ignoreIndex
	sums    *SummarySet // lazily built per-package function summaries
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Name       string
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	DepOnly    bool
	ForTest    string
}

// LoadConfig configures Load beyond the defaults.
type LoadConfig struct {
	// Dir is the directory the patterns are resolved in (the module root or
	// any directory inside it); "" means the current directory.
	Dir string
	// Tests includes test files: each matched package is analyzed as its
	// test variant (production + in-package _test.go files type-checked
	// together, exactly as `go test` compiles them) and external _test
	// packages become roots of their own. The lifetime and protocol
	// invariants the suite enforces bind test harnesses too — a goroutine
	// leaked by a test fixture or a frame dropped on a test error path is
	// still a defect.
	Tests bool
}

// Load resolves the patterns with the go command and returns the matched
// packages parsed and type-checked from source. Dependencies — standard
// library and intra-module alike — are imported from compiler export data
// (`go list -export` compiles them into the build cache as needed), so a
// load touches the source of only the packages under analysis and works
// fully offline.
//
// dir is the directory the patterns are resolved in (the module root or any
// directory inside it); "" means the current directory. Test files are not
// loaded by this entry point; use LoadPackages with Tests set.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadPackages(LoadConfig{Dir: dir}, patterns...)
}

// LoadPackages is Load with explicit configuration.
func LoadPackages(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := []string{"list", "-export", "-deps"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args,
		"-json=Name,ImportPath,Dir,GoFiles,Standard,Export,DepOnly,ForTest")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var roots []listedPackage
	exports := make(map[string]string)
	hasTestVariant := make(map[string]bool) // plain import path -> a "[pkg.test]" variant was listed
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Standard || lp.DepOnly || len(lp.GoFiles) == 0 {
			continue
		}
		if strings.HasSuffix(lp.ImportPath, ".test") {
			continue // the synthesized test-main package: generated, not ours
		}
		if lp.ForTest != "" && lp.ForTest == lp.ImportPath {
			// "pkg [pkg.test]": the package recompiled with its in-package
			// test files. Its GoFiles are a superset of the plain package's,
			// so the plain root is dropped below.
			hasTestVariant[lp.ForTest] = true
		}
		roots = append(roots, lp)
	}

	// Analyze each package once: when its test variant was listed, the plain
	// root is a strict subset of the same files and would double-report.
	if cfg.Tests {
		kept := roots[:0]
		for _, lp := range roots {
			if lp.ForTest == "" && hasTestVariant[lp.ImportPath] {
				continue
			}
			kept = append(kept, lp)
		}
		roots = kept
	}
	// Check under-test variants before their external _test packages, so an
	// xtest package's import of the package under test resolves against the
	// export data the variant was compiled into (see lookup below).
	sort.SliceStable(roots, func(i, j int) bool {
		return xtestRank(roots[i]) < xtestRank(roots[j])
	})

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range roots {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		// Every package gets its own importer instance so the import graph
		// each type-check sees is internally consistent: an external _test
		// package must resolve the package under test to its test-variant
		// export data (the compilation `go test` links against, which may
		// export extra test helpers), while every other consumer sees the
		// plain package. Sharing one cache across both mappings would hand
		// out clashing identities for the same import path.
		forTest := ""
		if lp.ForTest != "" && lp.ForTest != lp.ImportPath {
			forTest = lp.ForTest // xtest: "pkg_test [pkg.test]"
		}
		lookup := func(path string) (io.ReadCloser, error) {
			if path == forTest {
				if f, ok := exports[path+" ["+path+".test]"]; ok {
					return os.Open(f)
				}
			}
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("analysis: no export data for %q", path)
			}
			return os.Open(f)
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
		path := plainImportPath(lp.ImportPath)
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:    path,
			Name:    lp.Name,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			ignores: buildIgnoreIndex(fset, files),
		})
	}
	return pkgs, nil
}

// xtestRank orders roots so under-test variants precede external _test
// packages (plain packages sort with the variants; their order among
// themselves is preserved).
func xtestRank(lp listedPackage) int {
	if lp.ForTest != "" && lp.ForTest != lp.ImportPath {
		return 1
	}
	return 0
}

// plainImportPath strips go list's test-variant suffix:
// "pkg [pkg.test]" -> "pkg". Diagnostics and -only filters use the plain
// path; which variant produced a finding is visible from the file name.
func plainImportPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// Run executes the analyzers over the loaded packages and returns the
// surviving diagnostics, sorted by position. Findings on a line covered by
// a matching //stfw:ignore directive are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				pkg:       pkg,
			}
			pass.report = func(d Diagnostic) {
				if pkg.ignores.covers(d.Pos, a.Name) {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
