package analysis

import (
	"go/ast"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The testdata packages under testdata/<analyzer>/ are analysistest-style
// fixtures: each flagged line carries a
//
//	// want "substring"
//
// comment naming a substring of the expected diagnostic, and clean lines
// carry none. The harness loads the fixture through the same loader the
// multichecker uses (testdata directories are invisible to ./... patterns
// but loadable by explicit import path), runs one analyzer, and requires
// the diagnostics and expectations to match exactly — so every positive
// case is a test that fails without its check, and every negative case is
// a false-positive regression guard.

var wantRe = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

type expectation struct {
	file string
	line int
	want string
}

func loadFixture(t *testing.T, name string) (*Package, []expectation) {
	t.Helper()
	pkgs, err := Load("", "stfw/internal/analysis/testdata/"+name)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", name, len(pkgs))
	}
	pkg := pkgs[0]
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				text, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("fixture %s: bad want comment %q: %v", name, c.Text, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, expectation{file: pos.Filename, line: pos.Line, want: text})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want expectations; positive cases are required", name)
	}
	return pkg, wants
}

func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg, wants := loadFixture(t, name)
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.want) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected a diagnostic containing %q, got none", w.file, w.line, w.want)
		}
	}
}

func TestFramepoolFixture(t *testing.T)  { runFixture(t, Framepool, "framepool") }
func TestNilrecvFixture(t *testing.T)    { runFixture(t, Nilrecv, "nilrecv") }
func TestAtomicmixFixture(t *testing.T)  { runFixture(t, Atomicmix, "atomicmix") }
func TestLockedsendFixture(t *testing.T) { runFixture(t, Lockedsend, "lockedsend") }
func TestTagspanFixture(t *testing.T)    { runFixture(t, Tagspan, "tagspan") }
func TestTagspanNoDecl(t *testing.T)     { runFixture(t, Tagspan, "tagspan_nodecl") }
func TestGoroleakFixture(t *testing.T)   { runFixture(t, Goroleak, "goroleak") }

// TestIgnoreDirective checks the suppression machinery itself: a synthetic
// diagnostic on an annotated line is dropped, one analyzer name does not
// silence another, and the directive reaches one line below itself.
func TestIgnoreDirective(t *testing.T) {
	pkg, _ := loadFixture(t, "framepool")
	probe := &Analyzer{
		Name: "framepool",
		Doc:  "probe",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if c, ok := n.(*ast.CallExpr); ok {
						p.Report(c.Pos(), "probe finding")
					}
					return true
				})
			}
			return nil
		},
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		line := fileLine(t, pkg, d)
		if strings.Contains(line, "//stfw:ignore framepool") {
			t.Errorf("diagnostic on an annotated line survived: %s", d)
		}
	}

	other := *probe
	other.Name = "otherchecker"
	odiags, err := Run([]*Package{pkg}, []*Analyzer{&other})
	if err != nil {
		t.Fatal(err)
	}
	if len(odiags) <= len(diags) {
		t.Errorf("directive for framepool also silenced otherchecker: %d vs %d findings", len(odiags), len(diags))
	}
}

// fileLine returns the source text of the diagnostic's line.
func fileLine(t *testing.T, pkg *Package, d Diagnostic) string {
	t.Helper()
	data, err := os.ReadFile(d.Pos.Filename)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if d.Pos.Line < 1 || d.Pos.Line > len(lines) {
		return ""
	}
	return lines[d.Pos.Line-1]
}
