package analysis

import (
	"go/types"
	"testing"
)

// loadSummaryFixture loads testdata/summary and computes its summaries.
func loadSummaryFixture(t *testing.T) (*Package, *SummarySet) {
	t.Helper()
	pkgs, err := Load("", "stfw/internal/analysis/testdata/summary")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0], computeSummaries(pkgs[0])
}

// fnOf resolves a package-level function by name.
func fnOf(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("no function %q in fixture (got %v)", name, obj)
	}
	return fn
}

func TestSummaryParamEffects(t *testing.T) {
	pkg, set := loadSummaryFixture(t)
	cases := []struct {
		fn   string
		idx  int
		want ParamEffect
	}{
		{"release", 0, EffRelease},
		{"releaseChain", 0, EffRelease},
		{"stamp", 0, EffPassthrough},
		{"stash", 1, EffEscape},
		{"checksum", 0, EffBorrow},
		{"recycleLast", 0, EffRelease}, // through self-recursion
	}
	for _, c := range cases {
		sum := set.Of(fnOf(t, pkg, c.fn))
		if sum == nil {
			t.Errorf("%s: no summary", c.fn)
			continue
		}
		if got := sum.Params[c.idx]; got != c.want {
			t.Errorf("%s param %d: got %v, want %v", c.fn, c.idx, got, c.want)
		}
	}
}

func TestSummaryReturnsOwned(t *testing.T) {
	pkg, set := loadSummaryFixture(t)
	cases := []struct {
		fn   string
		want []bool
	}{
		{"mint", []bool{true}},
		{"mintChain", []bool{true}}, // through the helper
		{"mintPair", []bool{true, false}},
		{"stamp", []bool{false}}, // passthrough, not a mint
	}
	for _, c := range cases {
		sum := set.Of(fnOf(t, pkg, c.fn))
		if sum == nil {
			t.Errorf("%s: no summary", c.fn)
			continue
		}
		if len(sum.ReturnsOwned) != len(c.want) {
			t.Errorf("%s: %d results, want %d", c.fn, len(sum.ReturnsOwned), len(c.want))
			continue
		}
		for i, w := range c.want {
			if sum.ReturnsOwned[i] != w {
				t.Errorf("%s result %d: owned=%v, want %v", c.fn, i, sum.ReturnsOwned[i], w)
			}
		}
	}
}

func TestSummaryMayBlockAndDiverges(t *testing.T) {
	pkg, set := loadSummaryFixture(t)
	cases := []struct {
		fn       string
		mayBlock bool
		diverges bool
	}{
		{"blockSend", true, false},
		{"blockIndirect", true, false},
		{"spawns", false, false}, // goroutine bodies don't block the caller
		{"ping", true, false},    // mutual recursion, blocking base case
		{"pong", true, false},
		{"spin", false, true},
		{"spinIndirect", false, true},
		{"spinUntil", false, false},
		{"checksum", false, false},
	}
	for _, c := range cases {
		sum := set.Of(fnOf(t, pkg, c.fn))
		if sum == nil {
			t.Errorf("%s: no summary", c.fn)
			continue
		}
		if sum.MayBlock != c.mayBlock || sum.Diverges != c.diverges {
			t.Errorf("%s: MayBlock=%v Diverges=%v, want %v/%v",
				c.fn, sum.MayBlock, sum.Diverges, c.mayBlock, c.diverges)
		}
	}
}

// TestSummarySCCOrder checks the bottom-up traversal: a callee's component
// is summarized before its caller's, and mutual recursion shares one
// component.
func TestSummarySCCOrder(t *testing.T) {
	pkg, set := loadSummaryFixture(t)
	orderIdx := make(map[*types.Func]int, len(set.order))
	for i, fn := range set.order {
		orderIdx[fn] = i
	}
	calleeBeforeCaller := [][2]string{
		{"mint", "mintChain"},
		{"release", "releaseChain"},
		{"blockSend", "blockIndirect"},
		{"spin", "spinIndirect"},
	}
	for _, pair := range calleeBeforeCaller {
		callee, caller := fnOf(t, pkg, pair[0]), fnOf(t, pkg, pair[1])
		if orderIdx[callee] >= orderIdx[caller] {
			t.Errorf("%s summarized at %d, after its caller %s at %d",
				pair[0], orderIdx[callee], pair[1], orderIdx[caller])
		}
		if set.sccOf[callee] == set.sccOf[caller] {
			t.Errorf("%s and %s share an SCC; they are not mutually recursive", pair[0], pair[1])
		}
	}
	ping, pong := fnOf(t, pkg, "ping"), fnOf(t, pkg, "pong")
	if set.sccOf[ping] != set.sccOf[pong] {
		t.Errorf("mutually recursive ping/pong in distinct SCCs %d and %d",
			set.sccOf[ping], set.sccOf[pong])
	}
	rec := fnOf(t, pkg, "recycleLast")
	if _, ok := set.sccOf[rec]; !ok {
		t.Errorf("recycleLast missing from the SCC index")
	}
}

// TestCrossSummary checks the export-data fallback: functions outside the
// summarized package resolve to the conservative shape table.
func TestCrossSummary(t *testing.T) {
	pkg, set := loadSummaryFixture(t)
	msgPkg := func() *types.Package {
		for _, imp := range pkg.Types.Imports() {
			if imp.Path() == "stfw/internal/msg" {
				return imp
			}
		}
		t.Fatal("fixture does not import stfw/internal/msg")
		return nil
	}()
	lookup := func(name string) *types.Func {
		fn, ok := msgPkg.Scope().Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("msg.%s not found", name)
		}
		return fn
	}

	if sum := set.Of(lookup("PutFrame")); sum == nil || sum.effectAt(0, lookup("PutFrame")) != EffRelease {
		t.Errorf("msg.PutFrame: want EffRelease on param 0, got %+v", sum)
	}
	if sum := set.Of(lookup("GetFrameLen")); sum == nil || len(sum.ReturnsOwned) == 0 || !sum.ReturnsOwned[0] {
		t.Errorf("msg.GetFrameLen: want ReturnsOwned[0], got %+v", sum)
	}
	if sum := set.Of(lookup("Encode")); sum == nil || sum.effectAt(0, lookup("Encode")) != EffPassthrough {
		t.Errorf("msg.Encode: want EffPassthrough on param 0, got %+v", sum)
	}
	// A function with no cross-summary entry yields nil: callers fall back
	// to the conservative conventions.
	if sum := set.Of(lookup("EncodedSize")); sum != nil {
		t.Errorf("msg.EncodedSize: want nil (unknown cross-package), got %+v", sum)
	}
}
