package analysis

import (
	"go/ast"
	"strings"
)

// Goroleak enforces the transports' "no steady-state goroutines" rule at
// lint time, complementing tptest's runtime leak polling: every `go`
// statement in internal/transport/... and internal/runtime must have a
// visible termination path. A spawned body terminates visibly when it is a
// bounded one-shot (no infinite loop), or when each of its infinite loops
// can leave — a return reached from a select/receive on a close-signal
// channel, a break out, a goto, or a panic all count. What the analyzer
// flags is the remainder: a goroutine that, per its own body and the
// summaries of everything it calls (summary.go), can spin forever with no
// exit — the exact shape that outlives Close and leaks.
//
// Cross-package and dynamically dispatched callees are assumed to
// terminate: their lifetime contracts are their own packages' to check.
// Deliberate steady-state goroutines carry a
//
//	//stfw:ignore goroleak -- <why the lifetime is bounded anyway>
//
// directive with a justification after the `--` separator.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "every transport/runtime goroutine must have a visible termination path",
	Run:  runGoroleak,
}

func runGoroleak(pass *Pass) error {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "internal/transport/") &&
		!strings.HasSuffix(path, "internal/runtime") &&
		!strings.Contains(path, "testdata/goroleak") { // fixture packages
		return nil
	}
	sums := pass.Summaries()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				if divergesIn(pass.pkg, sums, fun.Body) {
					pass.Reportf(gs.Pos(), "goroutine has no visible termination path: its loop can spin forever (add a close-signal select/return, or annotate //stfw:ignore goroleak -- <justification>)")
				}
			default:
				fn := calleeFunc(pass.TypesInfo, gs.Call)
				if sum := sums.Of(fn); sum != nil && sum.Diverges {
					pass.Reportf(gs.Pos(), "goroutine running %s has no visible termination path: the callee can spin forever (add a close-signal select/return, or annotate //stfw:ignore goroleak -- <justification>)", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
