// Fault-injection conformance: the differential suite re-run under the
// tptest fault injector. Each fault class is applied exactly where it is
// contract-preserving (see tptest/fault.go):
//
//   - delay everywhere, both engines — timing-only, must be invisible;
//   - reorder on the arrival-order paths — the engines shrink their
//     candidate lists (RecvPolicy, the replay's pending list), so any
//     legal service order must produce identical output;
//   - duplicate in single-exchange cells on the pipelined engine — the
//     extra frame stays queued behind the matched one;
//   - drop only as a liveness check over TCP: the engine must block until
//     the world closes and then surface an error, never wrong data.
package core_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/tcpnet"
	"stfw/internal/transport/tptest"
	"stfw/internal/transport/udpnet"
	"stfw/internal/vpt"
)

// faultTopologies is the reduced shape set for fault cells: each cell runs a
// full conformance exchange with perturbed timing, so one multi-stage shape
// per K suffices.
func faultTopologies(t *testing.T) []*vpt.Topology {
	t.Helper()
	var tps []*vpt.Topology
	for _, K := range []int{8, 16} {
		tp, err := vpt.NewBalanced(K, vpt.MaxDim(K))
		if err != nil {
			t.Fatal(err)
		}
		tps = append(tps, tp)
	}
	return tps
}

// faultWorld builds a transport world wrapped by a fresh injector; cleanup
// is registered on t.
func faultWorld(t *testing.T, transport string, K, buffer int, cfg tptest.FaultConfig) ([]runtime.Comm, *tptest.Injector) {
	t.Helper()
	var comms []runtime.Comm
	switch transport {
	case "chanpt":
		w, err := chanpt.NewWorld(K, buffer)
		if err != nil {
			t.Fatal(err)
		}
		comms = w.Comms()
	case "tcpnet":
		w, err := tcpnet.NewWorld(K)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		comms = w.Comms()
	case "udpnet":
		w, err := udpnet.NewWorld(K)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		comms = w.Comms()
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	inj := tptest.NewInjector(cfg)
	return inj.WrapAll(comms), inj
}

// TestConformanceFaultDelay runs the exchange, persistent, and compiled
// suites with every send randomly delayed, on both engines and transports.
// Output must be bit-identical to the fault-free reference.
func TestConformanceFaultDelay(t *testing.T) {
	cfg := tptest.FaultConfig{Seed: 11, Delay: 0.5, MaxDelay: 100 * time.Microsecond}
	for _, transport := range []string{"chanpt", "tcpnet", "udpnet"} {
		for _, tp := range faultTopologies(t) {
			if transport != "chanpt" && testing.Short() && tp.Size() > 8 {
				continue
			}
			for _, ordered := range []bool{false, true} {
				tp, transport, ordered := tp, transport, ordered
				t.Run(fmt.Sprintf("%s/K=%d/%s", transport, tp.Size(), engineName(ordered)), func(t *testing.T) {
					if transport == "chanpt" {
						t.Parallel()
					}
					comms, inj := faultWorld(t, transport, tp.Size(), 2, cfg)
					dests := confSendSets(int64(tp.Size()), tp.Size())
					var opts []core.ExchangeOpt
					if ordered {
						opts = append(opts, core.Ordered())
					}
					runConformance(t, comms, tp, dests, opts...)
					runPersistentConformance(t, comms, tp, dests, opts...)
					if st := inj.Stats(); st.Delayed == 0 {
						t.Fatalf("delay fault never fired: %+v", st)
					}
				})
			}
		}
	}
}

// TestConformanceFaultReorder runs the arrival-order paths (pipelined
// exchange, persistent replay, compiled replay) with receives served in
// adversarial random order. The engines track outstanding senders, so any
// service order over the candidate set is legal and the output must not
// change.
func TestConformanceFaultReorder(t *testing.T) {
	cfg := tptest.FaultConfig{Seed: 23, Reorder: 0.75}
	// Wide-radix shapes: reorder needs multi-candidate receive rounds, and a
	// radix-2 dimension has a single neighbor per stage.
	var wide []*vpt.Topology
	for _, c := range []struct{ K, n int }{{8, 1}, {16, 2}} {
		tp, err := vpt.NewBalanced(c.K, c.n)
		if err != nil {
			t.Fatal(err)
		}
		wide = append(wide, tp)
	}
	for _, transport := range []string{"chanpt", "tcpnet", "udpnet"} {
		for _, tp := range wide {
			if transport != "chanpt" && testing.Short() && tp.Size() > 8 {
				continue
			}
			tp, transport := tp, transport
			t.Run(fmt.Sprintf("%s/K=%d", transport, tp.Size()), func(t *testing.T) {
				if transport == "chanpt" {
					t.Parallel()
				}
				comms, inj := faultWorld(t, transport, tp.Size(), 2, cfg)
				dests := confSendSets(int64(tp.Size()), tp.Size())
				runConformance(t, comms, tp, dests)
				runPersistentConformance(t, comms, tp, dests)
				runReplayConformance(t, comms, tp, dests)
				if st := inj.Stats(); st.Reordered == 0 {
					t.Fatalf("reorder fault never fired: %+v", st)
				}
			})
		}
	}
}

// TestConformanceFaultDuplicate runs single-exchange cells on the pipelined
// engine with frames randomly duplicated. A duplicate within one exchange
// stays queued behind the matched frame (the engines shrink candidate
// lists, and arrival-order receives skip stale-tag frames), so deliveries
// must still be bit-identical. The chanpt buffer is sized so leftover
// duplicates can never exhaust per-pair matcher capacity.
func TestConformanceFaultDuplicate(t *testing.T) {
	cfg := tptest.FaultConfig{Seed: 31, Duplicate: 0.5}
	for _, transport := range []string{"chanpt", "tcpnet", "udpnet"} {
		for _, tp := range faultTopologies(t) {
			if transport != "chanpt" && testing.Short() && tp.Size() > 8 {
				continue
			}
			tp, transport := tp, transport
			t.Run(fmt.Sprintf("%s/K=%d", transport, tp.Size()), func(t *testing.T) {
				if transport == "chanpt" {
					t.Parallel()
				}
				comms, inj := faultWorld(t, transport, tp.Size(), 4*tp.N()+4, cfg)
				dests := confSendSets(int64(tp.Size()), tp.Size())
				runConformance(t, comms, tp, dests)
				if st := inj.Stats(); st.Duplicated == 0 {
					t.Fatalf("duplicate fault never fired: %+v", st)
				}
			})
		}
	}
}

// TestFaultDropLivenessTCP proves the fail-stop property under frame loss:
// with sends randomly dropped, no rank may ever deliver wrong data — ranks
// either complete with bit-identical output (possible only when no frame
// they transitively depend on was dropped) or block until the world closes
// and then return an error. The test closes the world once progress has
// provably stalled and requires the collective run to fail.
func TestFaultDropLivenessTCP(t *testing.T) {
	tp, err := vpt.NewBalanced(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := tcpnet.NewWorld(tp.Size())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	inj := tptest.NewInjector(tptest.FaultConfig{Seed: 47, Drop: 0.3})
	comms := inj.WrapAll(w.Comms())
	dests := confSendSets(int64(tp.Size()), tp.Size())

	var completed atomic.Int64
	got := make([]*core.Delivered, tp.Size())
	runErr := make(chan error, 1)
	go func() {
		runErr <- runtime.Run(comms, func(c runtime.Comm) error {
			payloads := map[int][]byte{}
			for _, dst := range dests[c.Rank()] {
				payloads[dst] = confPayload(c.Rank(), dst)
			}
			d, err := core.Exchange(c, tp, payloads)
			if err != nil {
				return err
			}
			got[c.Rank()] = d
			completed.Add(1)
			return nil
		})
	}()

	// Wait until at least one frame was provably dropped (with drop=0.3
	// over dozens of frames this is near-instant), give in-flight receives
	// a moment, then close the world to unblock the stalled ranks.
	deadline := time.After(10 * time.Second)
	for inj.Stats().Dropped == 0 {
		select {
		case <-deadline:
			t.Fatal("drop fault never fired")
		case <-time.After(time.Millisecond):
		}
	}
	time.Sleep(50 * time.Millisecond)
	w.Close()

	select {
	case err := <-runErr:
		if err == nil {
			t.Fatalf("exchange completed despite %d dropped frames", inj.Stats().Dropped)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ranks still blocked 30s after world close")
	}

	// Fail-stop, not fail-wrong: any rank that did complete received every
	// frame it expected, so its deliveries must match the reference exactly.
	ref := refDeliveries(tp.Size(), dests)
	for q, d := range got {
		if d == nil {
			continue
		}
		if len(d.Subs) != len(ref[q]) {
			t.Fatalf("completed rank %d: %d deliveries, want %d", q, len(d.Subs), len(ref[q]))
		}
		for i, sub := range d.Subs {
			wnt := ref[q][i]
			if sub.Src != wnt.Src || sub.Dst != wnt.Dst || string(sub.Data) != string(wnt.Data) {
				t.Fatalf("completed rank %d delivery %d: got (%d->%d), want (%d->%d)",
					q, i, sub.Src, sub.Dst, wnt.Src, wnt.Dst)
			}
		}
	}
	t.Logf("drop liveness: %d ranks completed, %d frames dropped", completed.Load(), inj.Stats().Dropped)
}
