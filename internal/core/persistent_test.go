package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// runPersistent learns a pattern on every rank, replays it iters times with
// varying payloads, and checks each replay delivers exactly what a fresh
// Exchange would.
func runPersistent(t *testing.T, tp *vpt.Topology, s *SendSets, iters int) {
	t.Helper()
	K := tp.Size()
	recv := s.RecvSets()
	w, err := chanpt.NewWorld(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		me := c.Rank()
		mkPayloads := func(round int) map[int][]byte {
			out := map[int][]byte{}
			for _, pr := range s.Sets[me] {
				// Payload varies per round (and per pair), size varies too.
				n := int(pr.Words) + round%3
				buf := make([]byte, n)
				for i := range buf {
					buf[i] = byte(me ^ pr.Dst ^ round ^ i)
				}
				out[pr.Dst] = buf
			}
			return out
		}
		check := func(round int, d *Delivered) error {
			want := recv[me]
			if len(d.Subs) != len(want) {
				return fmt.Errorf("round %d rank %d: %d deliveries, want %d", round, me, len(d.Subs), len(want))
			}
			for i, pr := range want {
				sub := d.Subs[i]
				if sub.Src != pr.Dst {
					return fmt.Errorf("round %d rank %d: delivery %d from %d, want %d", round, me, i, sub.Src, pr.Dst)
				}
				n := int(pr.Words) + round%3
				wantData := make([]byte, n)
				for j := range wantData {
					wantData[j] = byte(sub.Src ^ me ^ round ^ j)
				}
				if !bytes.Equal(sub.Data, wantData) {
					return fmt.Errorf("round %d rank %d: payload from %d corrupted", round, me, sub.Src)
				}
			}
			return nil
		}

		p, first, err := NewPersistent(c, tp, mkPayloads(0))
		if err != nil {
			return err
		}
		if err := check(0, first); err != nil {
			return err
		}
		for round := 1; round <= iters; round++ {
			d, err := p.Run(c, mkPayloads(round))
			if err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
			if err := check(round, d); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentReplaysPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, dims := range [][]int{{4, 4}, {2, 2, 2, 2}, {8, 2}, {16}} {
		tp := vpt.MustNew(dims...)
		s := randomSendSets(rng, tp.Size(), 2, 3, 4)
		runPersistent(t, tp, s, 4)
	}
}

func TestPersistentMatchesExchangeDeliveries(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	tp := vpt.MustNew(4, 2, 2)
	s := randomSendSets(rng, 16, 1, 2, 3)
	// Learning run itself must equal a plain Exchange (both validated
	// against RecvSets by runPersistent and checkDeliveries).
	runPersistent(t, tp, s, 1)
	got, _ := runExchange(t, tp, s)
	checkDeliveries(t, s, got)
}

func TestPersistentRejectsPatternDrift(t *testing.T) {
	tp := vpt.MustNew(2, 2)
	w, _ := chanpt.NewWorld(4, 2)
	err := w.Run(func(c runtime.Comm) error {
		me := c.Rank()
		payloads := map[int][]byte{(me + 1) % 4: {1}}
		p, _, err := NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		// Wrong destination set: replaced destination.
		if _, err := p.Run(c, map[int][]byte{(me + 2) % 4: {1}}); err == nil {
			return fmt.Errorf("rank %d: drifted destination accepted", me)
		}
		// Wrong destination count.
		if _, err := p.Run(c, map[int][]byte{}); err == nil {
			return fmt.Errorf("rank %d: missing destination accepted", me)
		}
		// A correct replay still works afterwards (failed validations must
		// not consume traffic).
		d, err := p.Run(c, map[int][]byte{(me + 1) % 4: {9}})
		if err != nil {
			return err
		}
		if len(d.Subs) != 1 || d.Subs[0].Data[0] != 9 {
			return fmt.Errorf("rank %d: replay after rejects broken: %+v", me, d.Subs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentDestinations(t *testing.T) {
	tp := vpt.MustNew(2, 2)
	w, _ := chanpt.NewWorld(4, 2)
	err := w.Run(func(c runtime.Comm) error {
		me := c.Rank()
		payloads := map[int][]byte{(me + 1) % 4: {1}, (me + 2) % 4: {2}}
		p, _, err := NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		ds := p.Destinations()
		if len(ds) != 2 {
			return fmt.Errorf("rank %d: destinations %v", me, ds)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentSelfSend(t *testing.T) {
	tp := vpt.MustNew(2, 2)
	w, _ := chanpt.NewWorld(4, 2)
	err := w.Run(func(c runtime.Comm) error {
		p, first, err := NewPersistent(c, tp, map[int][]byte{c.Rank(): []byte("self")})
		if err != nil {
			return err
		}
		if len(first.Subs) != 1 || string(first.Subs[0].Data) != "self" {
			return fmt.Errorf("learning self-send lost")
		}
		d, err := p.Run(c, map[int][]byte{c.Rank(): []byte("again")})
		if err != nil {
			return err
		}
		if len(d.Subs) != 1 || string(d.Subs[0].Data) != "again" {
			return fmt.Errorf("replayed self-send lost: %+v", d.Subs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPersistentVsExchange(b *testing.B) {
	tp, _ := vpt.NewBalanced(64, 3)
	rng := rand.New(rand.NewSource(71))
	s := randomSendSets(rng, 64, 2, 3, 4)
	payloadsFor := func(me int) map[int][]byte {
		out := map[int][]byte{}
		for _, pr := range s.Sets[me] {
			out[pr.Dst] = make([]byte, pr.Words*8)
		}
		return out
	}
	b.Run("exchange", func(b *testing.B) {
		w, _ := chanpt.NewWorld(64, 2)
		comms := w.Comms()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := runtime.Run(comms, func(c runtime.Comm) error {
				_, err := Exchange(c, tp, payloadsFor(c.Rank()))
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("persistent", func(b *testing.B) {
		w, _ := chanpt.NewWorld(64, 2)
		comms := w.Comms()
		ps := make([]*Persistent, 64)
		err := runtime.Run(comms, func(c runtime.Comm) error {
			p, _, err := NewPersistent(c, tp, payloadsFor(c.Rank()))
			ps[c.Rank()] = p
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := runtime.Run(comms, func(c runtime.Comm) error {
				_, err := ps[c.Rank()].Run(c, payloadsFor(c.Rank()))
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
