package core

import (
	"testing"

	"stfw/internal/vpt"
)

// TestPaperFigure4Scenario reproduces the structure of the paper's Figure 4
// on T3(4,4,4), translated to 0-based digits (the paper writes coordinate
// tuples as (P3, P2, P1) with dimension 1 rightmost and communicates
// dimension 1 in stage 1):
//
//   - a source P_a whose SendSet lies entirely behind a single dimension-1
//     neighbor P_g, so its stage-1 message M_ag aggregates all three
//     submessages;
//   - at P_g, one submessage is forwarded in stage 2 and the others in
//     stage 3 (the scattering of Figure 5);
//   - a second source P_b whose submessage for the same destination joins
//     P_a's at the intermediate process and travels in the *same* stage-3
//     frame (the merge property Algorithm 1's buffers create).
func TestPaperFigure4Scenario(t *testing.T) {
	tp := vpt.MustNew(4, 4, 4)
	coords := func(d0, d1, d2 int) int { return tp.Rank([]int{d0, d1, d2}) }

	a := coords(0, 1, 1) // P_a: differs from g in dimension 0 only
	g := coords(2, 1, 1) // P_g: the stage-1 relay
	e := coords(2, 3, 1) // dest reached from g by a stage-2 hop
	c := coords(2, 1, 3) // dest reached from g by a stage-3 hop
	d := coords(2, 1, 2) // dest reached from g by a stage-3 hop
	b := coords(2, 0, 1) // P_b: reaches g in stage 2, also sends to c

	sends := NewSendSets(tp.Size())
	sends.Add(a, c, 1)
	sends.Add(a, d, 1)
	sends.Add(a, e, 1)
	sends.Add(b, c, 1)
	if err := sends.Normalize(); err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(tp, sends)
	if err != nil {
		t.Fatal(err)
	}

	frame := func(stage, from, to int) *Frame {
		for i := range plan.Stages[stage] {
			f := &plan.Stages[stage][i]
			if f.From == from && f.To == to {
				return f
			}
		}
		return nil
	}

	// Stage 1 (paper's first dimension): M_ag carries all three of P_a's
	// submessages in one direct message.
	mag := frame(0, a, g)
	if mag == nil || mag.Subs != 3 || mag.Words != 3 {
		t.Fatalf("M_ag = %+v, want 3 submessages", mag)
	}
	// P_a sends exactly one message in total: everything is aggregated.
	if plan.SentMsgs[a] != 1 {
		t.Errorf("P_a sent %d messages, want 1", plan.SentMsgs[a])
	}

	// Stage 2: P_g forwards only the submessage for e; P_b's message for c
	// arrives at g in the same stage.
	mge := frame(1, g, e)
	if mge == nil || mge.Subs != 1 {
		t.Fatalf("M_ge = %+v, want 1 submessage", mge)
	}
	mbg := frame(1, b, g)
	if mbg == nil || mbg.Subs != 1 {
		t.Fatalf("M_bg = %+v, want 1 submessage", mbg)
	}

	// Stage 3: the frame g -> c carries BOTH P_a's and P_b's submessages —
	// submessages with distinct sources but the same destination travel in
	// the same message once they meet (the paper's key aggregation point).
	mgc := frame(2, g, c)
	if mgc == nil || mgc.Subs != 2 || mgc.Words != 2 {
		t.Fatalf("M_gc = %+v, want the merged 2-submessage frame", mgc)
	}
	mgd := frame(2, g, d)
	if mgd == nil || mgd.Subs != 1 {
		t.Fatalf("M_gd = %+v, want 1 submessage", mgd)
	}

	// Dual property: P_a's submessages for distinct destinations c and d
	// leave g in distinct messages.
	if mgc == mgd {
		t.Fatal("frames for distinct destinations must differ")
	}

	// Forward counts match Hamming distances: each submessage is forwarded
	// Hamming(src, dst) times; total frames = 5 (ag, bg, ge, gc, gd).
	if plan.TotalMsgs != 5 {
		t.Errorf("total frames = %d, want 5", plan.TotalMsgs)
	}
	wantVolume := int64(tp.Hamming(a, c) + tp.Hamming(a, d) + tp.Hamming(a, e) + tp.Hamming(b, c))
	if plan.TotalWords != wantVolume {
		t.Errorf("total volume = %d, want sum of Hamming distances %d", plan.TotalWords, wantVolume)
	}

	// And the live execution delivers everything (validated against the
	// plan by the shared machinery).
	got, cc := runExchange(t, tp, sends)
	checkDeliveries(t, sends, got)
	if cc.sentMsgs[a] != 1 || cc.sentMsgs[g] != 3 {
		t.Errorf("executed counts: P_a=%d (want 1), P_g=%d (want 3)", cc.sentMsgs[a], cc.sentMsgs[g])
	}
}
