package core

import (
	"fmt"
	"strings"
	"testing"

	"stfw/internal/msg"
)

// learnScriptedPersistent performs a learning run on a rank-0 scriptComm for
// T3(2,2,2) whose inbound traffic includes one nonempty frame: rank 2
// forwards the submessage 6->0 in stage 1. The learned pattern therefore has
// a nonempty inbound slot layout that replays can violate.
func learnScriptedPersistent(t *testing.T) (*Persistent, *scriptComm) {
	t.Helper()
	sc, tp := scriptedWorld()
	learned := msg.Encode(nil, &msg.Message{
		From: 2, To: 0,
		Subs: []msg.Submessage{{Src: 6, Dst: 0, Data: []byte("hi")}},
	})
	sc.recvs[fmt.Sprintf("2/%d", tagBase+1)] = [][]byte{learned}
	p, d, err := NewPersistent(sc, tp, map[int][]byte{7: []byte("seed-payload")})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subs) != 1 || d.Subs[0].Src != 6 || string(d.Subs[0].Data) != "hi" {
		t.Fatalf("learning deliveries: %+v", d.Subs)
	}
	sc.sent = nil
	return p, sc
}

// queueReplayFrames loads a fresh round of scripted inbound frames for one
// Persistent.Run replay: empty frames from ranks 1 and 4, and the stage-1
// frame from rank 2 supplied by the caller.
func queueReplayFrames(sc *scriptComm, fromTwo []msg.Submessage) {
	sc.queue(1, 0, emptyFrame(1, 0))
	sc.queue(2, 1, msg.Encode(nil, &msg.Message{From: 2, To: 0, Subs: fromTwo}))
	sc.queue(4, 2, emptyFrame(4, 0))
}

func TestPersistentReplayDeliversScriptedSubmessage(t *testing.T) {
	p, sc := learnScriptedPersistent(t)
	queueReplayFrames(sc, []msg.Submessage{{Src: 6, Dst: 0, Data: []byte("yo")}})
	d, err := p.Run(sc, map[int][]byte{7: []byte("new-payload!")})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subs) != 1 || d.Subs[0].Src != 6 || d.Subs[0].Dst != 0 || string(d.Subs[0].Data) != "yo" {
		t.Errorf("replay deliveries: %+v", d.Subs)
	}
	// The replay must emit the learned frames: the 0->7 payload to rank 1
	// in stage 0, then empty frames to ranks 2 and 4.
	if len(sc.sent) != 3 {
		t.Fatalf("sent %d frames, want 3", len(sc.sent))
	}
	first := sc.sent[0]
	if first.To != 1 || len(first.Subs) != 1 || first.Subs[0].Dst != 7 {
		t.Errorf("stage-0 frame: %+v", first)
	}
}

// A replayed frame whose submessage keys deviate from the learned slot
// layout must be rejected, not silently staged into the store. The seed
// executor accepted such frames and delivered the impostor payload under the
// learned key; this locks the validation in.
func TestPersistentReplayRejectsMisroutedSubmessage(t *testing.T) {
	p, sc := learnScriptedPersistent(t)
	// Learned slot is 6->0; the frame carries 5->0 instead.
	queueReplayFrames(sc, []msg.Submessage{{Src: 5, Dst: 0, Data: []byte("yo")}})
	_, err := p.Run(sc, map[int][]byte{7: []byte("new-payload!")})
	if err == nil {
		t.Fatal("misrouted submessage not detected")
	}
	if !strings.Contains(err.Error(), "misrouted") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPersistentReplayRejectsWrongDestination(t *testing.T) {
	p, sc := learnScriptedPersistent(t)
	// Right source, wrong destination: 6->3 instead of 6->0.
	queueReplayFrames(sc, []msg.Submessage{{Src: 6, Dst: 3, Data: []byte("yo")}})
	_, err := p.Run(sc, map[int][]byte{7: []byte("new-payload!")})
	if err == nil {
		t.Fatal("wrong-destination submessage not detected")
	}
	if !strings.Contains(err.Error(), "misrouted") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPersistentReplayRejectsSlotCountMismatch(t *testing.T) {
	p, sc := learnScriptedPersistent(t)
	queueReplayFrames(sc, []msg.Submessage{
		{Src: 6, Dst: 0, Data: []byte("yo")},
		{Src: 6, Dst: 4, Data: []byte("extra")},
	})
	_, err := p.Run(sc, map[int][]byte{7: []byte("new-payload!")})
	if err == nil {
		t.Fatal("slot-count mismatch not detected")
	}
	if !strings.Contains(err.Error(), "learned layout") {
		t.Errorf("unexpected error: %v", err)
	}
}

// A failed replay must not poison the Persistent: the next correct replay
// still succeeds (the store is re-staged from scratch each Run).
func TestPersistentReplayRecoversAfterFault(t *testing.T) {
	p, sc := learnScriptedPersistent(t)
	queueReplayFrames(sc, []msg.Submessage{{Src: 5, Dst: 0, Data: []byte("bad")}})
	if _, err := p.Run(sc, map[int][]byte{7: []byte("new-payload!")}); err == nil {
		t.Fatal("misrouted submessage not detected")
	}
	sc.recvs = nil
	sc.sent = nil
	queueReplayFrames(sc, []msg.Submessage{{Src: 6, Dst: 0, Data: []byte("ok")}})
	d, err := p.Run(sc, map[int][]byte{7: []byte("new-payload!")})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subs) != 1 || string(d.Subs[0].Data) != "ok" {
		t.Errorf("recovered deliveries: %+v", d.Subs)
	}
}
