package core

import (
	"fmt"
	"strings"
	"testing"

	"stfw/internal/msg"
	"stfw/internal/vpt"
)

// scriptComm is a single-rank mock Comm that records sends and serves
// scripted receive frames, letting fault tests exercise the executor's
// defensive checks deterministically and without a live world (where an
// erroring rank would deadlock its neighbors).
type scriptComm struct {
	rank, size int
	recvs      map[string][][]byte // "from/tag" -> queued frames
	sent       []msg.Message
}

func (s *scriptComm) Rank() int { return s.rank }
func (s *scriptComm) Size() int { return s.size }

func (s *scriptComm) Send(to, tag int, payload []byte) error {
	m, err := msg.Decode(payload)
	if err != nil {
		return err
	}
	s.sent = append(s.sent, *m)
	return nil
}

func (s *scriptComm) Recv(from, tag int) ([]byte, error) {
	key := fmt.Sprintf("%d/%d", from, tag)
	q := s.recvs[key]
	if len(q) == 0 {
		return nil, fmt.Errorf("script exhausted for %s", key)
	}
	f := q[0]
	s.recvs[key] = q[1:]
	return f, nil
}

func (s *scriptComm) Barrier() error { return nil }

// queue registers a frame to be served for (from, stage).
func (s *scriptComm) queue(from, stage int, frame []byte) {
	if s.recvs == nil {
		s.recvs = map[string][][]byte{}
	}
	key := fmt.Sprintf("%d/%d", from, tagBase+stage)
	s.recvs[key] = append(s.recvs[key], frame)
}

// emptyFrame builds a well-formed empty frame from -> to.
func emptyFrame(from, to int) []byte {
	return msg.Encode(nil, &msg.Message{From: from, To: to})
}

// scriptedWorld prepares a rank-0 scriptComm for T3(2,2,2) with clean empty
// frames from all three neighbors (ranks 1, 2, 4), which the test then
// corrupts selectively.
func scriptedWorld() (*scriptComm, *vpt.Topology) {
	tp := vpt.MustNew(2, 2, 2)
	sc := &scriptComm{rank: 0, size: 8}
	sc.queue(1, 0, emptyFrame(1, 0))
	sc.queue(2, 1, emptyFrame(2, 0))
	sc.queue(4, 2, emptyFrame(4, 0))
	return sc, tp
}

func TestExchangeCleanScript(t *testing.T) {
	sc, tp := scriptedWorld()
	d, err := Exchange(sc, tp, map[int][]byte{7: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subs) != 0 {
		t.Errorf("unexpected deliveries: %+v", d.Subs)
	}
	// Rank 0 sends exactly one nonempty frame (stage 0 toward digit 1) and
	// two empty ones.
	nonempty := 0
	for _, m := range sc.sent {
		if len(m.Subs) > 0 {
			nonempty++
		}
	}
	if len(sc.sent) != 3 || nonempty != 1 {
		t.Errorf("sent %d frames, %d nonempty", len(sc.sent), nonempty)
	}
}

func TestExchangeDetectsTruncatedFrame(t *testing.T) {
	sc, tp := scriptedWorld()
	full := emptyFrame(1, 0)
	sc.recvs[fmt.Sprintf("1/%d", tagBase)] = [][]byte{full[:len(full)-2]}
	_, err := Exchange(sc, tp, nil)
	if err == nil {
		t.Fatal("truncated frame not detected")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestExchangeDetectsMisroutedFrame(t *testing.T) {
	sc, tp := scriptedWorld()
	// Frame claims to be 1 -> 3 but arrives at rank 0 from rank 1.
	sc.recvs[fmt.Sprintf("1/%d", tagBase)] = [][]byte{emptyFrame(1, 3)}
	_, err := Exchange(sc, tp, nil)
	if err == nil {
		t.Fatal("misrouted frame not detected")
	}
	if !strings.Contains(err.Error(), "misrouted") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestExchangeDetectsWrongSender(t *testing.T) {
	sc, tp := scriptedWorld()
	// Frame claims From=5 but is served on the link from rank 1.
	sc.recvs[fmt.Sprintf("1/%d", tagBase)] = [][]byte{emptyFrame(5, 0)}
	_, err := Exchange(sc, tp, nil)
	if err == nil {
		t.Fatal("wrong sender not detected")
	}
}

func TestExchangeDetectsUnforwardableSubmessage(t *testing.T) {
	sc, tp := scriptedWorld()
	// A submessage arriving in stage 2 (last dimension) destined for a
	// rank that differs from rank 0 only in an earlier dimension can never
	// be forwarded: the routing invariant is violated.
	bad := msg.Encode(nil, &msg.Message{
		From: 4, To: 0,
		Subs: []msg.Submessage{{Src: 4, Dst: 1, Data: []byte("zz")}},
	})
	sc.recvs[fmt.Sprintf("4/%d", tagBase+2)] = [][]byte{bad}
	_, err := Exchange(sc, tp, nil)
	if err == nil {
		t.Fatal("unforwardable submessage not detected")
	}
	if !strings.Contains(err.Error(), "cannot be forwarded") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestExchangeDeliversScriptedSubmessage(t *testing.T) {
	sc, tp := scriptedWorld()
	// A legitimate forwarded submessage arriving in stage 1 for rank 0.
	good := msg.Encode(nil, &msg.Message{
		From: 2, To: 0,
		Subs: []msg.Submessage{{Src: 6, Dst: 0, Data: []byte("hi")}},
	})
	sc.recvs[fmt.Sprintf("2/%d", tagBase+1)] = [][]byte{good}
	d, err := Exchange(sc, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subs) != 1 || d.Subs[0].Src != 6 || string(d.Subs[0].Data) != "hi" {
		t.Errorf("deliveries: %+v", d.Subs)
	}
}

// A submessage that still needs a later-stage forward must be placed in the
// right buffer and sent onward.
func TestExchangeForwardsScriptedSubmessage(t *testing.T) {
	sc, tp := scriptedWorld()
	// Arrives at stage 0 from rank 1, destined for rank 4 (differs from
	// rank 0 in dimension 2) -> must be forwarded in stage 2 to rank 4.
	fwd := msg.Encode(nil, &msg.Message{
		From: 1, To: 0,
		Subs: []msg.Submessage{{Src: 1, Dst: 4, Data: []byte("fw")}},
	})
	sc.recvs[fmt.Sprintf("1/%d", tagBase)] = [][]byte{fwd}
	if _, err := Exchange(sc, tp, nil); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, m := range sc.sent {
		for _, sub := range m.Subs {
			if sub.Dst == 4 && string(sub.Data) == "fw" {
				if m.To != 4 {
					t.Errorf("forwarded to %d, want 4", m.To)
				}
				found = true
			}
		}
	}
	if !found {
		t.Error("submessage was not forwarded")
	}
}
