// Incremental schedule patching: the dynamic-sparsity half of the learned
// tier. A Persistent freezes the pattern of its learning run; when the
// application's sparsity mutates (a dynamic graph gains an edge, a mesh
// refines, a rank's fanout changes), relearning from scratch costs a full
// payload-routing exchange plus a complete re-lowering. Patch applies a
// PatchDelta — the pairs transiting this rank, as discovered by the
// dynamic.Discover census — directly to the recorded layout, and
// PatchCompiled re-lowers only the dirty frames of an existing Replay.
//
// Correctness rests on one structural property of learned schedules: every
// stage sends a (possibly empty) frame to every dimension-d neighbor and
// expects one back, so pattern churn never changes the stage skeleton —
// only frame occupancy. The canonical mutation rule keeps sender and
// receiver bit-compatible without any extra communication: removals delete
// a slot in place, additions append in ascending (src, dst) order. Both
// endpoints of a frame see the same delta pairs (both lie on the pairs'
// dimension-ordered routes), so they derive identical wire layouts
// independently.
package core

import (
	"fmt"
	"sort"
	"time"

	"stfw/internal/msg"
	"stfw/internal/vpt"
)

// PatchPair is one mutation of a learned pattern: the (Src, Dst) payload
// pair being added, removed, or — as a remove plus an add of the same pair
// — resized. Size is the new payload byte length (ignored for removals).
type PatchPair struct {
	Src, Dst int
	Size     int
	Remove   bool
}

// PatchDelta is the set of pattern mutations that transit one rank. It is
// what dynamic.Discover returns: every pair whose dimension-ordered route
// touches the rank as origin, forwarder, or destination. A delta may list
// at most one removal and one addition per (Src, Dst) pair; listing both
// resizes the pair.
type PatchDelta struct {
	Pairs []PatchPair
}

// frameRef addresses one frame of the learned layout: stage d, slot j (the
// index into nbrFrames[d] for outbound frames, into inFrom[d] for inbound).
type frameRef struct{ d, j int }

// PatchStats reports what a Patch touched; PatchCompiled uses it to decide
// which compiled frames must be rebuilt versus merely refreshed.
type PatchStats struct {
	// Added and Removed count applied pair mutations (a resize counts once
	// in each).
	Added, Removed int
	// DirtyStages counts stages with at least one touched frame.
	DirtyStages int
	// TouchedOutFrames and TouchedInFrames count frames whose slot lists
	// changed, on the send and receive side respectively.
	TouchedOutFrames, TouchedInFrames int
	// Elapsed is the wall-clock duration of the Patch call.
	Elapsed time.Duration

	dirtyOut map[frameRef]bool
	dirtyIn  map[frameRef]bool
	// haloDirty records whether any applied pair is delivered to this rank:
	// those mutations shift the halo layout, so PatchCompiled must rebuild
	// delivery offsets (and self-scatter bindings) everywhere instead of
	// taking the frame-local fast path.
	haloDirty bool
}

// patchHops is rank me's involvement in the dimension-ordered route of one
// (src, dst) pair: whether me originates or receives the payload, and the
// stage/peer of the hop that leaves (sendD/sendTo) or enters (recvD/
// recvFrom) this rank. A dimension index of -1 means no such hop.
type patchHops struct {
	origin, deliver bool
	sendD, sendTo   int
	recvD, recvFrom int
}

// routeHops walks the digit-correction route of (src, dst) — the exact path
// the stage machine forwards the payload along — and extracts rank me's
// hops. The second result reports whether the route involves me at all.
func routeHops(t *vpt.Topology, me, src, dst int) (patchHops, bool) {
	h := patchHops{origin: src == me, deliver: dst == me, sendD: -1, recvD: -1}
	involved := h.origin || h.deliver
	cur := src
	for d := 0; d < t.N(); d++ {
		next := t.RouteNext(cur, dst, d)
		if next == cur {
			continue
		}
		if cur == me {
			h.sendD, h.sendTo = d, next
			involved = true
		}
		if next == me {
			h.recvD, h.recvFrom = d, cur
			involved = true
		}
		cur = next
	}
	return h, involved
}

// outFrameIndex returns the index into nbrFrames[d] (equivalently, into the
// learned schedule's stage-d send slots) of the frame sent to `to`.
func (p *Persistent) outFrameIndex(d, to int) int {
	for j := range p.nbrFrames[d] {
		if p.nbrFrames[d][j].to == to {
			return j
		}
	}
	return -1
}

// inFrameIndex returns the index into inFrom[d]/inLayout[d] of the frame
// received from `from`.
func (p *Persistent) inFrameIndex(d, from int) int {
	for j, f := range p.inFrom[d] {
		if f == from {
			return j
		}
	}
	return -1
}

func containsSlot(slots []slotKey, k slotKey) bool {
	for _, s := range slots {
		if s == k {
			return true
		}
	}
	return false
}

func removeSlot(slots []slotKey, k slotKey) []slotKey {
	for i, s := range slots {
		if s == k {
			return append(slots[:i], slots[i+1:]...)
		}
	}
	return slots
}

func lessSlot(a, b slotKey) bool {
	if a.src != b.src {
		return a.src < b.src
	}
	return a.dst < b.dst
}

// patchOp is one validated mutation with its precomputed route involvement.
type patchOp struct {
	k    slotKey
	size int
	h    patchHops
}

// Patch applies a delta to the learned pattern in place: frame slot lists,
// inbound wire layouts, the delivery list, the destination set, and the
// recorded sizes are all updated, and the cached schedule is rebuilt on
// next use with the new occupancy counts. The stage skeleton (who exchanges
// a frame with whom, per stage) is provably unchanged — learned schedules
// send a frame to every dimension-d neighbor whether or not it carries
// payload — so a patched world needs no re-coordination: every rank patches
// independently from the delta the census delivered to it.
//
// Validation happens before any mutation; on error the Persistent is
// unchanged. A patch is rejected if any pair's route does not transit this
// rank, a removal names a pair the pattern does not carry, or an addition
// names a pair it already does (without a paired removal). After a
// successful Patch, Run replays the mutated pattern and PatchCompiled
// re-lowers an existing Replay; the patched world should be re-gated
// through VerifyWorld/VerifyLearnedWorld (see the dynamic package's
// harness), which the stage skeleton's invariance makes cheap.
func (p *Persistent) Patch(delta *PatchDelta) (*PatchStats, error) {
	start := time.Now()
	if p.nbrFrames == nil {
		return nil, fmt.Errorf("core: patch: persistent has no learned pattern")
	}
	if delta == nil {
		return nil, fmt.Errorf("core: patch: nil delta")
	}
	me, t := p.rank, p.topo
	K := t.Size()

	// Validation pass: every mutation must be in range, transit this rank,
	// dedupe cleanly, and match the current pattern (removals present,
	// additions absent). Nothing is mutated until the whole delta is vetted.
	var removes, adds []patchOp
	removed := make(map[slotKey]bool)
	added := make(map[slotKey]bool)
	for _, pr := range delta.Pairs {
		if !pr.Remove {
			continue
		}
		if pr.Src < 0 || pr.Src >= K || pr.Dst < 0 || pr.Dst >= K {
			return nil, fmt.Errorf("core: patch: pair %d->%d out of range [0,%d)", pr.Src, pr.Dst, K)
		}
		k := slotKey{src: int32(pr.Src), dst: int32(pr.Dst)}
		if removed[k] {
			return nil, fmt.Errorf("core: patch: duplicate removal of %d->%d", pr.Src, pr.Dst)
		}
		removed[k] = true
		h, ok := routeHops(t, me, pr.Src, pr.Dst)
		if !ok {
			return nil, fmt.Errorf("core: patch: pair %d->%d does not transit rank %d", pr.Src, pr.Dst, me)
		}
		if _, have := p.sizes[k]; !have {
			return nil, fmt.Errorf("core: patch: removal of %d->%d, which the pattern does not carry", pr.Src, pr.Dst)
		}
		if h.sendD >= 0 {
			j := p.outFrameIndex(h.sendD, h.sendTo)
			if j < 0 || p.nbrFrames[h.sendD][j].f == nil || !containsSlot(p.nbrFrames[h.sendD][j].f.slots, k) {
				return nil, fmt.Errorf("core: patch: removal of %d->%d: slot missing from the stage-%d frame to %d",
					pr.Src, pr.Dst, h.sendD, h.sendTo)
			}
		}
		if h.recvD >= 0 {
			j := p.inFrameIndex(h.recvD, h.recvFrom)
			if j < 0 || !containsSlot(p.inLayout[h.recvD][j], k) {
				return nil, fmt.Errorf("core: patch: removal of %d->%d: slot missing from the stage-%d frame from %d",
					pr.Src, pr.Dst, h.recvD, h.recvFrom)
			}
		}
		removes = append(removes, patchOp{k: k, h: h})
	}
	for _, pr := range delta.Pairs {
		if pr.Remove {
			continue
		}
		if pr.Src < 0 || pr.Src >= K || pr.Dst < 0 || pr.Dst >= K {
			return nil, fmt.Errorf("core: patch: pair %d->%d out of range [0,%d)", pr.Src, pr.Dst, K)
		}
		if pr.Size < 0 {
			return nil, fmt.Errorf("core: patch: pair %d->%d has negative size %d", pr.Src, pr.Dst, pr.Size)
		}
		k := slotKey{src: int32(pr.Src), dst: int32(pr.Dst)}
		if added[k] {
			return nil, fmt.Errorf("core: patch: duplicate addition of %d->%d", pr.Src, pr.Dst)
		}
		added[k] = true
		h, ok := routeHops(t, me, pr.Src, pr.Dst)
		if !ok {
			return nil, fmt.Errorf("core: patch: pair %d->%d does not transit rank %d", pr.Src, pr.Dst, me)
		}
		if _, have := p.sizes[k]; have && !removed[k] {
			return nil, fmt.Errorf("core: patch: addition of %d->%d, which the pattern already carries (resize needs a paired removal)",
				pr.Src, pr.Dst)
		}
		adds = append(adds, patchOp{k: k, size: pr.Size, h: h})
	}

	// Apply pass, infallible by construction. Removals first, so a resize
	// lands its slot at the frame tail on sender and receiver alike.
	st := &PatchStats{dirtyOut: make(map[frameRef]bool), dirtyIn: make(map[frameRef]bool)}
	for _, o := range removes {
		delete(p.sizes, o.k)
		if o.h.origin {
			delete(p.dests, int(o.k.dst))
		}
		if o.h.deliver {
			p.deliver = removeSlot(p.deliver, o.k)
			st.haloDirty = true
		}
		if o.h.sendD >= 0 {
			j := p.outFrameIndex(o.h.sendD, o.h.sendTo)
			nf := &p.nbrFrames[o.h.sendD][j]
			nf.f.slots = removeSlot(nf.f.slots, o.k)
			st.dirtyOut[frameRef{o.h.sendD, j}] = true
		}
		if o.h.recvD >= 0 {
			j := p.inFrameIndex(o.h.recvD, o.h.recvFrom)
			p.inLayout[o.h.recvD][j] = removeSlot(p.inLayout[o.h.recvD][j], o.k)
			st.dirtyIn[frameRef{o.h.recvD, j}] = true
		}
		st.Removed++
	}

	// Additions are grouped per frame and appended in ascending (src, dst)
	// order — the canonical rule both endpoints apply independently.
	outAdds := make(map[frameRef][]slotKey)
	inAdds := make(map[frameRef][]slotKey)
	for _, o := range adds {
		p.sizes[o.k] = o.size
		if o.h.origin {
			p.dests[int(o.k.dst)] = struct{}{}
		}
		if o.h.deliver {
			p.deliver = append(p.deliver, o.k)
			st.haloDirty = true
		}
		if o.h.sendD >= 0 {
			j := p.outFrameIndex(o.h.sendD, o.h.sendTo)
			ref := frameRef{o.h.sendD, j}
			outAdds[ref] = append(outAdds[ref], o.k)
			st.dirtyOut[ref] = true
		}
		if o.h.recvD >= 0 {
			j := p.inFrameIndex(o.h.recvD, o.h.recvFrom)
			ref := frameRef{o.h.recvD, j}
			inAdds[ref] = append(inAdds[ref], o.k)
			st.dirtyIn[ref] = true
		}
		st.Added++
	}
	for ref, ks := range outAdds {
		sort.Slice(ks, func(i, j int) bool { return lessSlot(ks[i], ks[j]) })
		nf := &p.nbrFrames[ref.d][ref.j]
		if nf.f == nil {
			nf.f = &pFrame{to: nf.to}
		}
		nf.f.slots = append(nf.f.slots, ks...)
	}
	for ref, ks := range inAdds {
		sort.Slice(ks, func(i, j int) bool { return lessSlot(ks[i], ks[j]) })
		p.inLayout[ref.d][ref.j] = append(p.inLayout[ref.d][ref.j], ks...)
	}

	// Normalize the touched frames: a drained frame reverts to the empty
	// marker (nil, matching what a learning run records), and the replay
	// scratch is re-sized to the new slot count.
	for ref := range st.dirtyOut {
		nf := &p.nbrFrames[ref.d][ref.j]
		if nf.f != nil && len(nf.f.slots) == 0 {
			nf.f, nf.subs = nil, nil
		} else if nf.f != nil {
			nf.subs = make([]msg.Submessage, len(nf.f.slots))
		}
	}

	// Derived state: the delivery order and destination list stay sorted,
	// and the cached schedule is dropped so the next Run sees the new
	// occupancy counts (Reserve values) — the stage skeleton is identical.
	sort.Slice(p.deliver, func(i, j int) bool { return lessSlot(p.deliver[i], p.deliver[j]) })
	p.destList = p.destList[:0]
	for dst := range p.dests {
		p.destList = append(p.destList, dst)
	}
	sort.Ints(p.destList)
	p.sched = nil
	p.traffic = nil // learned byte sizes changed; Traffic rebuilds on demand
	if err := validateSchedule(p.Schedule(), me, K); err != nil {
		return nil, fmt.Errorf("core: patch: patched schedule invalid: %w", err)
	}

	dirty := make(map[int]bool, t.N())
	for ref := range st.dirtyOut {
		dirty[ref.d] = true
	}
	for ref := range st.dirtyIn {
		dirty[ref.d] = true
	}
	st.DirtyStages = len(dirty)
	st.TouchedOutFrames = len(st.dirtyOut)
	st.TouchedInFrames = len(st.dirtyIn)
	st.Elapsed = time.Since(start)
	p.tele.CountPatch(st.DirtyStages, st.Elapsed)
	return st, nil
}

// PatchCompiled re-lowers an existing Replay after a Patch, rebuilding only
// what the patch dirtied: frames whose slot lists changed get fresh
// templates (the expensive part — allocation, header encoding, payload
// zeroing), while clean frames keep their templates. When no delivery to
// this rank changed (the common transit-only case) the re-lowering is fully
// incremental: only dirty inbound frames have their offsets and retained-
// frame locations recomputed, and only clean frames that forward out of a
// dirty inbound frame have their copy-op tables re-pointed. A patch that
// touches the halo layout (a pair delivered here was added, removed, or
// resized), changes xlen, or meets a pre-cache Replay falls back to a full
// refresh walk. The receive structure (who sends what frame when, and each
// frame's retention index) is invariant under patching, so the Replay's
// steady-state allocation profile is unchanged: replaying a patched
// schedule still allocates nothing.
//
// The Replay must have been compiled from this Persistent (the stage
// skeleton and tags are cross-checked); xlen and gather carry the same
// contract as Compile, with one addition the incremental path relies on:
// gather lists for destinations untouched by the patch must be equivalent
// (same indices) to the ones the Replay currently holds — frames none of
// the patch dirtied keep their existing gather bindings. The caller
// re-sizes its halo slice to the new HaloWords. stats must come from the
// Patch call that dirtied the Replay; passing stats from an older patch (or
// patching twice without re-lowering) leaves the Replay stale — re-lower
// after every Patch.
func (p *Persistent) PatchCompiled(r *Replay, xlen int, gather map[int][]int32, stats *PatchStats) error {
	me := p.rank
	if r == nil {
		return fmt.Errorf("core: patch: nil replay")
	}
	if stats == nil {
		return fmt.Errorf("core: patch: nil patch stats")
	}
	if r.me != me || r.size != p.topo.Size() {
		return fmt.Errorf("core: patch: replay bound to rank %d of %d, persistent is rank %d of %d",
			r.me, r.size, me, p.topo.Size())
	}
	if err := p.checkGather(xlen, gather); err != nil {
		return err
	}
	sched := p.Schedule()
	if len(sched.Stages) != len(r.stages) {
		return fmt.Errorf("core: patch: replay has %d stages, schedule has %d", len(r.stages), len(sched.Stages))
	}
	if !stats.haloDirty && xlen == r.xlen && r.inLoc != nil {
		if err := p.patchCompiledFast(r, sched, gather, stats); err != nil {
			return err
		}
		r.traffic = r.computeTraffic()
		return nil
	}

	// Halo layout and self ops: delivery offsets shift whenever any
	// delivered payload is added, removed, or resized, so both are rebuilt.
	haloOff := make(map[slotKey]int32, len(p.deliver))
	bound := make(map[slotKey]bool, len(p.deliver))
	off := int32(0)
	r.selfs = r.selfs[:0]
	for _, k := range p.deliver {
		n := p.sizes[k]
		if n%8 != 0 {
			return fmt.Errorf("core: patch: delivery %d->%d has %d bytes, compiled replays require word-sized payloads", k.src, k.dst, n)
		}
		haloOff[k] = off
		off += int32(n / 8)
		if k.src == int32(me) {
			r.selfs = append(r.selfs, selfOp{idx: gather[int(k.dst)], haloOff: haloOff[k]})
			bound[k] = true
		}
	}
	r.haloWords = int(off)
	r.xlen = xlen

	inLoc := make(map[slotKey]slotLoc)
	for d := range r.stages {
		stg := &r.stages[d]
		ss := &sched.Stages[d]
		if stg.tag != ss.Tag || len(stg.frames) != len(ss.Sends) || len(stg.recvFrom) != len(ss.RecvFrom) {
			return fmt.Errorf("core: patch: replay stage %d does not match the learned schedule (was it compiled from this pattern?)", d)
		}
		for j := range ss.Sends {
			var slots []slotKey
			if nf := p.nbrFrames[d][j]; nf.f != nil {
				slots = nf.f.slots
			}
			if stats.dirtyOut[frameRef{d, j}] {
				f, err := p.compileFrame(me, ss.Sends[j].To, slots, gather, inLoc)
				if err != nil {
					return fmt.Errorf("core: patch: stage %d frame to %d: %w", d, ss.Sends[j].To, err)
				}
				stg.frames[j] = f
			} else if err := p.refreshFrameOps(&stg.frames[j], slots, gather, inLoc); err != nil {
				return fmt.Errorf("core: patch: stage %d frame to %d: %w", d, ss.Sends[j].To, err)
			}
		}
		for j := range ss.RecvFrom {
			slots := p.inLayout[d][j]
			stg.inNsubs[j] = int32(len(slots))
			stg.delivers[j] = stg.delivers[j][:0]
			fo := int32(msg.MsgHeaderLen)
			for _, k := range slots {
				n := int32(p.sizes[k])
				payloadOff := fo + msg.SubHeaderLen
				if k.dst == int32(me) {
					stg.delivers[j] = append(stg.delivers[j], deliverOp{srcOff: payloadOff, haloOff: haloOff[k], words: n / 8})
					bound[k] = true
				} else {
					inLoc[k] = slotLoc{frame: stg.inIdx[j], off: payloadOff}
				}
				fo = payloadOff + n
			}
			stg.inSize[j] = fo
		}
	}
	for _, k := range p.deliver {
		if !bound[k] {
			return fmt.Errorf("core: patch: delivery %d->%d has no inbound frame slot", k.src, k.dst)
		}
	}
	r.inLoc = inLoc
	r.traffic = r.computeTraffic()
	return nil
}

// patchCompiledFast is the transit-only re-lowering: no delivery to this
// rank changed, so the halo layout, self-scatter ops, and every clean
// inbound frame's metadata are already correct. Dirty inbound frames get
// their interior offsets (and inLoc cache entries) recomputed; outbound
// frames are recompiled when dirty and re-pointed only when they forward
// payload out of an inbound frame whose interior shifted. Everything else
// is untouched — the whole walk is O(dirty frames), not O(pattern).
func (p *Persistent) patchCompiledFast(r *Replay, sched *StageSchedule, gather map[int][]int32, stats *PatchStats) error {
	me := p.rank
	// Halo offsets are unchanged (no delivered pair mutated), but dirty
	// inbound frames still carry deliver ops whose in-frame source offsets
	// may have shifted; rebuild the offset map to re-point them.
	haloOff := make(map[slotKey]int32, len(p.deliver))
	off := int32(0)
	for _, k := range p.deliver {
		haloOff[k] = off
		off += int32(p.sizes[k] / 8)
	}
	dirtyFrames := make(map[int32]bool, len(stats.dirtyIn))
	for d := range r.stages {
		stg := &r.stages[d]
		ss := &sched.Stages[d]
		if stg.tag != ss.Tag || len(stg.frames) != len(ss.Sends) || len(stg.recvFrom) != len(ss.RecvFrom) {
			return fmt.Errorf("core: patch: replay stage %d does not match the learned schedule (was it compiled from this pattern?)", d)
		}
		for j := range ss.RecvFrom {
			if !stats.dirtyIn[frameRef{d, j}] {
				continue
			}
			slots := p.inLayout[d][j]
			stg.inNsubs[j] = int32(len(slots))
			stg.delivers[j] = stg.delivers[j][:0]
			fo := int32(msg.MsgHeaderLen)
			for _, k := range slots {
				n := int32(p.sizes[k])
				payloadOff := fo + msg.SubHeaderLen
				if k.dst == int32(me) {
					stg.delivers[j] = append(stg.delivers[j], deliverOp{srcOff: payloadOff, haloOff: haloOff[k], words: n / 8})
				} else {
					r.inLoc[k] = slotLoc{frame: stg.inIdx[j], off: payloadOff}
				}
				fo = payloadOff + n
			}
			stg.inSize[j] = fo
			dirtyFrames[stg.inIdx[j]] = true
		}
	}
	for d := range r.stages {
		stg := &r.stages[d]
		ss := &sched.Stages[d]
		for j := range ss.Sends {
			var slots []slotKey
			if nf := p.nbrFrames[d][j]; nf.f != nil {
				slots = nf.f.slots
			}
			if stats.dirtyOut[frameRef{d, j}] {
				f, err := p.compileFrame(me, ss.Sends[j].To, slots, gather, r.inLoc)
				if err != nil {
					return fmt.Errorf("core: patch: stage %d frame to %d: %w", d, ss.Sends[j].To, err)
				}
				stg.frames[j] = f
			} else if fwdsFromDirty(&stg.frames[j], dirtyFrames) {
				if err := p.refreshFrameOps(&stg.frames[j], slots, gather, r.inLoc); err != nil {
					return fmt.Errorf("core: patch: stage %d frame to %d: %w", d, ss.Sends[j].To, err)
				}
			}
		}
	}
	return nil
}

// fwdsFromDirty reports whether a clean outbound frame copies payload out
// of any inbound frame the patch shifted — the only reason a clean frame's
// op table can go stale.
func fwdsFromDirty(f *rFrame, dirty map[int32]bool) bool {
	if len(dirty) == 0 {
		return false
	}
	for i := range f.fwds {
		if dirty[f.fwds[i].frame] {
			return true
		}
	}
	return false
}

// refreshFrameOps rewrites a clean frame's payload-fill op tables in place:
// the template bytes are untouched (the frame's own wire layout did not
// change), but gather ops must re-point at the caller's current gather
// lists and forward ops at the new inbound offsets — an earlier inbound
// frame that was patched shifts the source regions of everything forwarded
// out of it. The final offset is checked against the template length, so a
// stale stats object (marking a dirtied frame clean) is caught here rather
// than corrupting payload.
func (p *Persistent) refreshFrameOps(f *rFrame, slots []slotKey, gather map[int][]int32, inLoc map[slotKey]slotLoc) error {
	me := int32(p.rank)
	f.gathers = f.gathers[:0]
	f.fwds = f.fwds[:0]
	fo := int32(msg.MsgHeaderLen)
	for _, k := range slots {
		n := int32(p.sizes[k])
		payloadOff := fo + msg.SubHeaderLen
		if k.src == me {
			f.gathers = append(f.gathers, gatherOp{off: payloadOff, idx: gather[int(k.dst)]})
		} else {
			l, ok := inLoc[k]
			if !ok {
				return fmt.Errorf("forwarded slot %d->%d not received in an earlier stage", k.src, k.dst)
			}
			f.fwds = append(f.fwds, fwdOp{dstOff: payloadOff, frame: l.frame, srcOff: l.off, n: n})
		}
		fo = payloadOff + n
	}
	if int(fo) != len(f.tmpl) {
		return fmt.Errorf("clean frame's slots lay out %d bytes, template has %d (stale patch stats?)", fo, len(f.tmpl))
	}
	return nil
}
