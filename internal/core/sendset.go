// Package core implements the paper's primary contribution: the
// store-and-forward (STFW) algorithm that realizes an arbitrary set of
// point-to-point messages on a virtual process topology (Algorithm 1), the
// direct baseline exchange (BL), a static router that computes the exact
// per-stage communication of a run without executing it, and the closed-form
// analysis of Section 4.
package core

import (
	"fmt"
	"sort"

	"stfw/internal/vpt"
)

// Pair is one entry of a process's send list: Words words of payload
// destined for rank Dst. The paper measures volume in words; the library
// treats a word as 8 bytes when real payloads are materialized.
type Pair struct {
	Dst   int
	Words int64
}

// SendSets is the global communication requirement: Sets[i] lists the
// destinations (and message sizes) of rank i, i.e. SendSet(P_i). Each list
// is sorted by destination and contains no duplicates or self-sends once
// Normalize has run.
type SendSets struct {
	K    int
	Sets [][]Pair
}

// NewSendSets creates empty send sets for K ranks.
func NewSendSets(K int) *SendSets {
	return &SendSets{K: K, Sets: make([][]Pair, K)}
}

// Add records that rank src sends words words to rank dst. Repeated Adds for
// the same pair accumulate.
func (s *SendSets) Add(src, dst int, words int64) {
	s.Sets[src] = append(s.Sets[src], Pair{Dst: dst, Words: words})
}

// Normalize sorts each send list, merges duplicate destinations, and drops
// self-sends and zero-size entries. It returns an error on out-of-range
// ranks or negative sizes.
func (s *SendSets) Normalize() error {
	for src := range s.Sets {
		set := s.Sets[src]
		for _, p := range set {
			if p.Dst < 0 || p.Dst >= s.K {
				return fmt.Errorf("core: rank %d sends to out-of-range rank %d", src, p.Dst)
			}
			if p.Words < 0 {
				return fmt.Errorf("core: rank %d sends negative volume to %d", src, p.Dst)
			}
		}
		sort.Slice(set, func(i, j int) bool { return set[i].Dst < set[j].Dst })
		out := set[:0]
		for _, p := range set {
			if p.Dst == src || p.Words == 0 {
				continue
			}
			if n := len(out); n > 0 && out[n-1].Dst == p.Dst {
				out[n-1].Words += p.Words
			} else {
				out = append(out, p)
			}
		}
		s.Sets[src] = out
	}
	return nil
}

// TotalWords returns the sum of all message sizes (the volume of the direct
// baseline exchange).
func (s *SendSets) TotalWords() int64 {
	var n int64
	for _, set := range s.Sets {
		for _, p := range set {
			n += p.Words
		}
	}
	return n
}

// TotalMessages returns the total number of point-to-point messages
// requested.
func (s *SendSets) TotalMessages() int {
	n := 0
	for _, set := range s.Sets {
		n += len(set)
	}
	return n
}

// RecvSets returns the transpose: RecvSets()[j] lists the (src, words) pairs
// rank j receives, sorted by source. The direct baseline needs this to know
// how many messages to expect; in applications (e.g. SpMV) the receive sets
// are known from the data distribution.
func (s *SendSets) RecvSets() [][]Pair {
	recv := make([][]Pair, s.K)
	for src, set := range s.Sets {
		for _, p := range set {
			recv[p.Dst] = append(recv[p.Dst], Pair{Dst: src, Words: p.Words})
		}
	}
	for j := range recv {
		sort.Slice(recv[j], func(a, b int) bool { return recv[j][a].Dst < recv[j][b].Dst })
	}
	return recv
}

// Complete returns the worst-case scenario of Section 4: every rank sends
// words words to every other rank.
func Complete(K int, words int64) *SendSets {
	s := NewSendSets(K)
	for i := 0; i < K; i++ {
		set := make([]Pair, 0, K-1)
		for j := 0; j < K; j++ {
			if j != i {
				set = append(set, Pair{Dst: j, Words: words})
			}
		}
		s.Sets[i] = set
	}
	return s
}

// ValidateTopology checks that the send sets and topology agree on K.
func (s *SendSets) ValidateTopology(t *vpt.Topology) error {
	if t.Size() != s.K {
		return fmt.Errorf("core: topology size %d != world size %d", t.Size(), s.K)
	}
	return nil
}
