package core

import (
	"fmt"
	"sort"

	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/vpt"
)

// Persistent is a reusable store-and-forward exchange for a *fixed*
// communication pattern — the common case in iterative applications, where
// the same SpMV exchange repeats every iteration. The first (learning) run
// executes Algorithm 1 normally while recording, per stage, the exact frame
// layout this rank sends: which neighbors receive a frame and, inside each
// frame, the ordered (src, dst) submessage slots. Subsequent runs replay
// the layout with fresh payload bytes, skipping all routing decisions and
// forward-buffer bookkeeping. This mirrors MPI's persistent (neighborhood)
// collectives.
//
// A Persistent is owned by one rank and is not safe for concurrent use.
type Persistent struct {
	topo *vpt.Topology
	rank int
	// layout[d] lists the nonempty frames of stage d in send order.
	layout [][]pFrame
	// deliver lists the (src) ranks whose payloads end up at this rank, in
	// the order Exchange returns them (sorted by src, then dst).
	deliver []slotKey
	// dests is the set of destinations the pattern was learned with; replay
	// payloads must match it exactly.
	dests map[int]struct{}
}

type slotKey struct{ src, dst int32 }

type pFrame struct {
	to    int
	slots []slotKey
}

// NewPersistent performs the learning run: it executes the exchange for
// payloads and returns the deliveries along with a Persistent that can
// replay the same pattern. It is collective, like Exchange.
func NewPersistent(c runtime.Comm, t *vpt.Topology, payloads map[int][]byte) (*Persistent, *Delivered, error) {
	me := c.Rank()
	if t.Size() != c.Size() {
		return nil, nil, fmt.Errorf("core: topology size %d != communicator size %d", t.Size(), c.Size())
	}
	p := &Persistent{
		topo:   t,
		rank:   me,
		layout: make([][]pFrame, t.N()),
		dests:  make(map[int]struct{}, len(payloads)),
	}
	for dst := range payloads {
		p.dests[dst] = struct{}{}
	}

	fb := msg.NewForwardBuffers(t.Dims())
	out := &Delivered{}
	for dst, data := range payloads {
		if dst < 0 || dst >= t.Size() {
			return nil, nil, fmt.Errorf("core: rank %d: destination %d out of range", me, dst)
		}
		if dst == me {
			out.Subs = append(out.Subs, msg.Submessage{Src: me, Dst: me, Data: data})
			continue
		}
		d := t.FirstDiff(me, dst)
		fb.Put(d, t.Digit(dst, d), msg.Submessage{Src: me, Dst: dst, Data: data})
	}

	var encodeBuf []byte
	for d := 0; d < t.N(); d++ {
		tag := StageTag(d)
		myDigit := t.Digit(me, d)
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			to := t.WithDigit(me, d, x)
			subs := fb.Take(d, x)
			if len(subs) > 0 {
				frame := pFrame{to: to, slots: make([]slotKey, len(subs))}
				for i, s := range subs {
					frame.slots[i] = slotKey{src: int32(s.Src), dst: int32(s.Dst)}
				}
				p.layout[d] = append(p.layout[d], frame)
			}
			m := msg.Message{From: me, To: to, Subs: subs}
			encodeBuf = msg.Encode(encodeBuf[:0], &m)
			if err := c.Send(to, tag, append([]byte(nil), encodeBuf...)); err != nil {
				return nil, nil, fmt.Errorf("core: rank %d stage %d send to %d: %w", me, d, to, err)
			}
		}
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			from := t.WithDigit(me, d, x)
			raw, err := c.Recv(from, tag)
			if err != nil {
				return nil, nil, fmt.Errorf("core: rank %d stage %d recv from %d: %w", me, d, from, err)
			}
			m, err := msg.Decode(raw)
			if err != nil {
				return nil, nil, fmt.Errorf("core: rank %d stage %d frame from %d: %w", me, d, from, err)
			}
			if m.From != from || m.To != me {
				return nil, nil, fmt.Errorf("core: rank %d stage %d: misrouted frame %d->%d from %d", me, d, m.From, m.To, from)
			}
			for _, sub := range m.Subs {
				if sub.Dst == me {
					out.Subs = append(out.Subs, sub)
					continue
				}
				c2 := t.NextDiff(me, sub.Dst, d)
				if c2 < 0 {
					return nil, nil, fmt.Errorf("core: rank %d stage %d: submessage for %d cannot be forwarded", me, d, sub.Dst)
				}
				fb.Put(c2, t.Digit(sub.Dst, c2), sub)
			}
		}
	}
	if left := fb.SubCount(); left != 0 {
		return nil, nil, fmt.Errorf("core: rank %d: %d submessages left undelivered", me, left)
	}
	msg.SortSubs(out.Subs)
	for _, s := range out.Subs {
		p.deliver = append(p.deliver, slotKey{src: int32(s.Src), dst: int32(s.Dst)})
	}
	return p, out, nil
}

// Run replays the learned pattern with new payload bytes. The destination
// set must equal the learning run's exactly (payload sizes may differ). It
// is collective: every rank of the original world must call Run the same
// number of times.
func (p *Persistent) Run(c runtime.Comm, payloads map[int][]byte) (*Delivered, error) {
	me := p.rank
	if c.Rank() != me || c.Size() != p.topo.Size() {
		return nil, fmt.Errorf("core: persistent exchange bound to rank %d of %d", me, p.topo.Size())
	}
	if len(payloads) != len(p.dests) {
		return nil, fmt.Errorf("core: persistent pattern has %d destinations, got %d", len(p.dests), len(payloads))
	}
	for dst := range payloads {
		if _, ok := p.dests[dst]; !ok {
			return nil, fmt.Errorf("core: destination %d not in the learned pattern", dst)
		}
	}

	// store holds payload bytes by (src, dst): own payloads plus whatever
	// arrived in earlier stages.
	store := make(map[slotKey][]byte, len(payloads))
	for dst, data := range payloads {
		store[slotKey{src: int32(me), dst: int32(dst)}] = data
	}

	var encodeBuf []byte
	t := p.topo
	for d := 0; d < t.N(); d++ {
		tag := StageTag(d)
		myDigit := t.Digit(me, d)
		// Send the learned nonempty frames plus empty frames to the other
		// dimension-d neighbors (receive counts stay deterministic).
		nonempty := map[int]*pFrame{}
		for i := range p.layout[d] {
			nonempty[p.layout[d][i].to] = &p.layout[d][i]
		}
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			to := t.WithDigit(me, d, x)
			m := msg.Message{From: me, To: to}
			if f := nonempty[to]; f != nil {
				m.Subs = make([]msg.Submessage, len(f.slots))
				for i, k := range f.slots {
					data, ok := store[k]
					if !ok {
						return nil, fmt.Errorf("core: rank %d stage %d: missing payload %d->%d for learned slot",
							me, d, k.src, k.dst)
					}
					m.Subs[i] = msg.Submessage{Src: int(k.src), Dst: int(k.dst), Data: data}
					delete(store, k)
				}
			}
			encodeBuf = msg.Encode(encodeBuf[:0], &m)
			if err := c.Send(to, tag, append([]byte(nil), encodeBuf...)); err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d send to %d: %w", me, d, to, err)
			}
		}
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			from := t.WithDigit(me, d, x)
			raw, err := c.Recv(from, tag)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d recv from %d: %w", me, d, from, err)
			}
			m, err := msg.Decode(raw)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d frame from %d: %w", me, d, from, err)
			}
			for _, sub := range m.Subs {
				store[slotKey{src: int32(sub.Src), dst: int32(sub.Dst)}] = sub.Data
			}
		}
	}

	out := &Delivered{Subs: make([]msg.Submessage, len(p.deliver))}
	for i, k := range p.deliver {
		data, ok := store[k]
		if !ok {
			return nil, fmt.Errorf("core: rank %d: learned delivery %d->%d did not arrive", me, k.src, k.dst)
		}
		out.Subs[i] = msg.Submessage{Src: int(k.src), Dst: int(k.dst), Data: data}
	}
	return out, nil
}

// Destinations returns the learned destination set, sorted.
func (p *Persistent) Destinations() []int {
	out := make([]int, 0, len(p.dests))
	for d := range p.dests {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}
