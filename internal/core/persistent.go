package core

import (
	"fmt"
	"sort"

	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/vpt"
)

// Persistent is a reusable store-and-forward exchange for a *fixed*
// communication pattern — the common case in iterative applications, where
// the same SpMV exchange repeats every iteration. The first (learning) run
// executes Algorithm 1 normally while recording, per stage, the exact frame
// layout this rank sends and receives: which neighbors exchange a frame
// and, inside each frame, the ordered (src, dst) submessage slots with
// their payload sizes. Subsequent runs replay the layout with fresh payload
// bytes, skipping all routing decisions and forward-buffer bookkeeping.
// This mirrors MPI's persistent (neighborhood) collectives.
//
// Both the learning run and the replays execute on the same stage machine
// as Exchange: learning is the dynamic schedule front-end with a recorder
// attached, and Run is the learned schedule front-end (see Schedule). Run
// replays with map-based payloads of possibly varying sizes; Compile
// lowers the learned schedule further into a Replay whose iteration is
// fully indexed (fixed sizes, no maps, no steady-state allocation).
//
// A Persistent is owned by one rank and is not safe for concurrent use.
type Persistent struct {
	topo *vpt.Topology
	rank int
	// layout[d] lists the nonempty frames of stage d in send order, as the
	// learning run recorded them. It only feeds indexNeighborFrames; after
	// that (and in particular after any Patch, which may point nbrFrames at
	// frames the learning run never saw) nbrFrames is the sole authority on
	// outbound frame contents.
	layout [][]pFrame
	// nbrFrames[d][j] pairs the j-th dimension-d neighbor (fixed learning
	// send order) with its learned nonempty frame, nil when the frame to
	// that neighbor is empty, plus a reusable submessage scratch sized to
	// the frame. Precomputed once so replays neither rebuild a per-stage
	// map nor allocate per-frame submessage slices. Patch mutates the slot
	// lists in place (and re-sizes the scratch) when the pattern changes.
	nbrFrames [][]nbrFrame
	// deliver lists the (src, dst) ranks whose payloads end up at this
	// rank, in the order Exchange returns them (sorted by src, then dst).
	deliver []slotKey
	// dests is the set of destinations the pattern was learned with; replay
	// payloads must match it exactly. destList is the same set sorted,
	// cached for Destinations.
	dests    map[int]struct{}
	destList []int
	// sizes records the payload byte length of every slot that passed
	// through this rank during the learning run (own sends, forwarded
	// submessages, and deliveries). Compile assumes these sizes hold for
	// every compiled iteration.
	sizes map[slotKey]int
	// inLayout[d][j] lists the slots of the frame received from the j-th
	// dimension-d neighbor (inFrom[d][j]), in wire order. Run validates
	// every inbound frame against it; Compile uses it to turn receives
	// into precomputed offset copies.
	inLayout [][][]slotKey
	// inFrom[d] lists the dimension-d neighbors in learning receive order.
	inFrom [][]int
	// store is the replay's payload staging table, hoisted out of Run so
	// repeated replays reuse one map (cleared, not reallocated).
	store map[slotKey][]byte
	// sched is the learned StageSchedule, built lazily from the recorded
	// pattern and executed by every Run.
	sched *StageSchedule
	// traffic caches the learned transport hint (Traffic): the schedule
	// skeleton's frame counts with exact learned wire bytes. Patch resets
	// it, since slot surgery changes the byte sizes.
	traffic []runtime.StageTraffic
	// tele, when set, records one stage-scoped span per Run stage.
	tele *telemetry.Rank
}

// Instrument attaches a live telemetry collector: Run records one span per
// communication stage. A nil collector detaches.
func (p *Persistent) Instrument(t *telemetry.Rank) { p.tele = t }

type slotKey struct{ src, dst int32 }

type pFrame struct {
	to    int
	slots []slotKey
}

type nbrFrame struct {
	to   int
	f    *pFrame          // nil: send an empty frame to keep receive counts deterministic
	subs []msg.Submessage // replay scratch, len(f.slots); nil when f is nil
}

// NewPersistent performs the learning run: it executes the exchange for
// payloads and returns the deliveries along with a Persistent that can
// replay the same pattern. The learning run rides the stage machine's
// ordered discipline — deterministic send and receive order makes the
// recorded layout reproducible — with recording hooks layered over the
// dynamic router. It is collective, like Exchange.
func NewPersistent(c runtime.Comm, t *vpt.Topology, payloads map[int][]byte) (*Persistent, *Delivered, error) {
	me := c.Rank()
	if t.Size() != c.Size() {
		return nil, nil, fmt.Errorf("core: topology size %d != communicator size %d", t.Size(), c.Size())
	}
	p := &Persistent{
		topo:     t,
		rank:     me,
		layout:   make([][]pFrame, t.N()),
		dests:    make(map[int]struct{}, len(payloads)),
		sizes:    make(map[slotKey]int, len(payloads)),
		inLayout: make([][][]slotKey, t.N()),
		inFrom:   make([][]int, t.N()),
	}
	for dst, data := range payloads {
		p.dests[dst] = struct{}{}
		p.destList = append(p.destList, dst)
		p.sizes[slotKey{src: int32(me), dst: int32(dst)}] = len(data)
	}
	sort.Ints(p.destList)

	fb := msg.NewForwardBuffers(t.Dims())
	out := &Delivered{}
	for dst, data := range payloads {
		if dst < 0 || dst >= t.Size() {
			return nil, nil, fmt.Errorf("core: rank %d: destination %d out of range", me, dst)
		}
		if dst == me {
			out.Subs = append(out.Subs, msg.Submessage{Src: me, Dst: me, Data: data})
			continue
		}
		d := t.FirstDiff(me, dst)
		fb.Put(d, t.Digit(dst, d), msg.Submessage{Src: me, Dst: dst, Data: data})
	}

	learnSched := buildTopologySchedule(t, me)
	sm := &stageMachine{
		sched:   learnSched,
		ordered: true,
		traffic: learnSched.Traffic(),
		outSubs: func(d, _ int, slot SendSlot) ([]msg.Submessage, error) {
			subs := fb.Take(d, t.Digit(slot.To, d))
			if len(subs) > 0 {
				frame := pFrame{to: slot.To, slots: make([]slotKey, len(subs))}
				for i, s := range subs {
					frame.slots[i] = slotKey{src: int32(s.Src), dst: int32(s.Dst)}
				}
				p.layout[d] = append(p.layout[d], frame)
			}
			return subs, nil
		},
		onFrame: func(d, from int, subs []msg.Submessage) (int, error) {
			inSlots := make([]slotKey, len(subs))
			for i, sub := range subs {
				k := slotKey{src: int32(sub.Src), dst: int32(sub.Dst)}
				inSlots[i] = k
				p.sizes[k] = len(sub.Data)
			}
			p.inFrom[d] = append(p.inFrom[d], from)
			p.inLayout[d] = append(p.inLayout[d], inSlots)
			return scatterFrame(t, me, d, fb, out, subs, nil)
		},
		finish: func(bool) error {
			if left := fb.SubCount(); left != 0 {
				return fmt.Errorf("core: rank %d: %d submessages left undelivered", me, left)
			}
			msg.SortSubs(out.Subs)
			return nil
		},
	}
	if err := sm.run(c, me); err != nil {
		return nil, nil, err
	}
	for _, s := range out.Subs {
		p.deliver = append(p.deliver, slotKey{src: int32(s.Src), dst: int32(s.Dst)})
	}
	p.indexNeighborFrames()
	return p, out, nil
}

// indexNeighborFrames builds nbrFrames from the learned layout: per stage,
// the fixed neighbor send order annotated with the nonempty frame sent to
// each neighbor (or nil) and a reusable submessage scratch for it. Replays
// iterate this slice instead of rebuilding a destination-keyed map — and
// fill the scratch instead of allocating — per call.
func (p *Persistent) indexNeighborFrames() {
	t := p.topo
	me := p.rank
	p.nbrFrames = make([][]nbrFrame, t.N())
	for d := 0; d < t.N(); d++ {
		myDigit := t.Digit(me, d)
		row := make([]nbrFrame, 0, t.Dim(d)-1)
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			nf := nbrFrame{to: t.WithDigit(me, d, x)}
			for i := range p.layout[d] {
				if p.layout[d][i].to == nf.to {
					nf.f = &p.layout[d][i]
					nf.subs = make([]msg.Submessage, len(nf.f.slots))
					break
				}
			}
			row = append(row, nf)
		}
		p.nbrFrames[d] = row
	}
}

// Schedule returns the learned StageSchedule — the IR every Run executes
// and Compile lowers. Send slots follow the learning send order with the
// learned frame occupancy; the inbound sender sets are the learning run's.
// The schedule is cached inside the Persistent and must be treated as
// read-only.
func (p *Persistent) Schedule() *StageSchedule {
	if p.sched != nil {
		return p.sched
	}
	t := p.topo
	sched := &StageSchedule{Stages: make([]ScheduleStage, t.N())}
	for d := 0; d < t.N(); d++ {
		st := &sched.Stages[d]
		st.Tag = StageTag(d)
		st.Dim = d
		st.Sends = make([]SendSlot, len(p.nbrFrames[d]))
		for j, nf := range p.nbrFrames[d] {
			reserve := 0
			if nf.f != nil {
				reserve = len(nf.f.slots)
			}
			st.Sends[j] = SendSlot{To: nf.to, Reserve: reserve}
		}
		st.RecvFrom = p.inFrom[d]
	}
	p.sched = sched
	return sched
}

// learnedInSlots returns the learned wire layout of the frame the given
// stage receives from the given sender.
func (p *Persistent) learnedInSlots(d, from int) ([]slotKey, bool) {
	for j, f := range p.inFrom[d] {
		if f == from {
			return p.inLayout[d][j], true
		}
	}
	return nil, false
}

// Run replays the learned pattern with new payload bytes. The destination
// set must equal the learning run's exactly (payload sizes may differ). It
// is collective: every rank of the original world must call Run the same
// number of times, with the same options. For fixed payload sizes, the
// compiled Replay (see Compile) iterates strictly faster.
//
// Run is the learned-schedule front-end of the stage machine, so by
// default an iteration gets the pipelined discipline: sends stream from a
// worker goroutine through pooled frame buffers (no per-frame copies), and
// inbound frames are served in arrival order. Every inbound submessage is
// validated against the learned slot layout of its frame; a frame whose
// slots deviate from the pattern is rejected rather than silently staged.
// Ordered() restores the learning run's serial discipline.
func (p *Persistent) Run(c runtime.Comm, payloads map[int][]byte, opts ...ExchangeOpt) (*Delivered, error) {
	var opt exchangeOptions
	for _, o := range opts {
		o(&opt)
	}
	me := p.rank
	if c.Rank() != me || c.Size() != p.topo.Size() {
		return nil, fmt.Errorf("core: persistent exchange bound to rank %d of %d", me, p.topo.Size())
	}
	if len(payloads) != len(p.dests) {
		return nil, fmt.Errorf("core: persistent pattern has %d destinations, got %d", len(p.dests), len(payloads))
	}
	for dst := range payloads {
		if _, ok := p.dests[dst]; !ok {
			return nil, fmt.Errorf("core: destination %d not in the learned pattern", dst)
		}
	}

	// store holds payload bytes by (src, dst): own payloads plus whatever
	// arrived in earlier stages. It persists across replays (cleared, not
	// reallocated) so steady-state iterations reuse its buckets.
	if p.store == nil {
		p.store = make(map[slotKey][]byte, len(payloads))
	} else {
		clear(p.store)
	}
	store := p.store
	for dst, data := range payloads {
		store[slotKey{src: int32(me), dst: int32(dst)}] = data
	}

	tele := p.tele
	if opt.tele != nil {
		tele = opt.tele
	}
	out := &Delivered{}
	sm := &stageMachine{
		sched:   p.Schedule(),
		ordered: opt.ordered,
		// A replay's frames are precomputed slot fills — too cheap to be
		// worth a worker handoff per stage — so issue the pooled sends
		// inline and keep the pipelining on the receive side.
		inlineSend: true,
		tele:       tele,
		traffic:    p.Traffic(),
		// Fill the learned frame's slot list from the store; slots are
		// consumed (deleted) so a payload forwarded in a later stage cannot
		// be sent twice.
		outSubs: func(d, j int, _ SendSlot) ([]msg.Submessage, error) {
			nf := &p.nbrFrames[d][j]
			if nf.f == nil {
				return nil, nil
			}
			for i, k := range nf.f.slots {
				data, ok := store[k]
				if !ok {
					return nil, fmt.Errorf("core: rank %d stage %d: missing payload %d->%d for learned slot",
						me, d, k.src, k.dst)
				}
				nf.subs[i] = msg.Submessage{Src: int(k.src), Dst: int(k.dst), Data: data}
				delete(store, k)
			}
			return nf.subs, nil
		},
		// Stage every inbound submessage, but only after checking it against
		// the learned wire layout: a replayed pattern is a contract, and a
		// frame that deviates from it is a routing fault, not new data.
		onFrame: func(d, from int, subs []msg.Submessage) (int, error) {
			slots, ok := p.learnedInSlots(d, from)
			if !ok {
				return 0, fmt.Errorf("core: rank %d stage %d: frame from %d not in the learned pattern", me, d, from)
			}
			if len(subs) != len(slots) {
				return 0, fmt.Errorf("core: rank %d stage %d: frame from %d carries %d submessages, learned layout has %d",
					me, d, from, len(subs), len(slots))
			}
			delivered := 0
			for i, sub := range subs {
				k := slotKey{src: int32(sub.Src), dst: int32(sub.Dst)}
				if k != slots[i] {
					return 0, fmt.Errorf("core: rank %d stage %d: misrouted submessage %d->%d in frame from %d (learned slot %d->%d)",
						me, d, sub.Src, sub.Dst, from, slots[i].src, slots[i].dst)
				}
				store[k] = sub.Data
				if sub.Dst == me {
					delivered += len(sub.Data)
				}
			}
			return delivered, nil
		},
		finish: func(pooled bool) error {
			out.Subs = make([]msg.Submessage, len(p.deliver))
			for i, k := range p.deliver {
				data, ok := store[k]
				if !ok {
					return fmt.Errorf("core: rank %d: learned delivery %d->%d did not arrive", me, k.src, k.dst)
				}
				out.Subs[i] = msg.Submessage{Src: int(k.src), Dst: int(k.dst), Data: data}
			}
			if pooled {
				msg.CompactSubs(out.Subs)
			}
			return nil
		},
	}
	if err := sm.run(c, me); err != nil {
		return nil, err
	}
	return out, nil
}

// Destinations returns the learned destination set, sorted. The returned
// slice is cached inside the Persistent and must be treated as read-only.
func (p *Persistent) Destinations() []int { return p.destList }
