package core

import (
	"fmt"
	"sort"
	"time"

	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/vpt"
)

// Persistent is a reusable store-and-forward exchange for a *fixed*
// communication pattern — the common case in iterative applications, where
// the same SpMV exchange repeats every iteration. The first (learning) run
// executes Algorithm 1 normally while recording, per stage, the exact frame
// layout this rank sends and receives: which neighbors exchange a frame
// and, inside each frame, the ordered (src, dst) submessage slots with
// their payload sizes. Subsequent runs replay the layout with fresh payload
// bytes, skipping all routing decisions and forward-buffer bookkeeping.
// This mirrors MPI's persistent (neighborhood) collectives.
//
// Run replays with map-based payloads of possibly varying sizes; Compile
// specializes further into a Replay whose iteration is fully indexed
// (fixed sizes, no maps, no steady-state allocation).
//
// A Persistent is owned by one rank and is not safe for concurrent use.
type Persistent struct {
	topo *vpt.Topology
	rank int
	// layout[d] lists the nonempty frames of stage d in send order.
	layout [][]pFrame
	// nbrFrames[d][j] pairs the j-th dimension-d neighbor (fixed learning
	// send order) with its learned nonempty frame, nil when the frame to
	// that neighbor is empty. Precomputed once so replays do not rebuild a
	// per-stage map on every call.
	nbrFrames [][]nbrFrame
	// deliver lists the (src, dst) ranks whose payloads end up at this
	// rank, in the order Exchange returns them (sorted by src, then dst).
	deliver []slotKey
	// dests is the set of destinations the pattern was learned with; replay
	// payloads must match it exactly. destList is the same set sorted,
	// cached for Destinations.
	dests    map[int]struct{}
	destList []int
	// sizes records the payload byte length of every slot that passed
	// through this rank during the learning run (own sends, forwarded
	// submessages, and deliveries). Compile assumes these sizes hold for
	// every compiled iteration.
	sizes map[slotKey]int
	// inLayout[d][j] lists the slots of the frame received from the j-th
	// dimension-d neighbor (inFrom[d][j]), in wire order. Compile uses it
	// to turn receives into precomputed offset copies.
	inLayout [][][]slotKey
	// inFrom[d] lists the dimension-d neighbors in learning receive order.
	inFrom [][]int
	// store is the legacy replay's payload staging table, hoisted out of
	// Run so repeated replays reuse one map (cleared, not reallocated).
	store map[slotKey][]byte
	// tele, when set, records one stage-scoped span per Run stage.
	tele *telemetry.Rank
}

// Instrument attaches a live telemetry collector: Run records one span per
// communication stage. A nil collector detaches.
func (p *Persistent) Instrument(t *telemetry.Rank) { p.tele = t }

type slotKey struct{ src, dst int32 }

type pFrame struct {
	to    int
	slots []slotKey
}

type nbrFrame struct {
	to int
	f  *pFrame // nil: send an empty frame to keep receive counts deterministic
}

// NewPersistent performs the learning run: it executes the exchange for
// payloads and returns the deliveries along with a Persistent that can
// replay the same pattern. It is collective, like Exchange.
func NewPersistent(c runtime.Comm, t *vpt.Topology, payloads map[int][]byte) (*Persistent, *Delivered, error) {
	me := c.Rank()
	if t.Size() != c.Size() {
		return nil, nil, fmt.Errorf("core: topology size %d != communicator size %d", t.Size(), c.Size())
	}
	p := &Persistent{
		topo:     t,
		rank:     me,
		layout:   make([][]pFrame, t.N()),
		dests:    make(map[int]struct{}, len(payloads)),
		sizes:    make(map[slotKey]int, len(payloads)),
		inLayout: make([][][]slotKey, t.N()),
		inFrom:   make([][]int, t.N()),
	}
	for dst, data := range payloads {
		p.dests[dst] = struct{}{}
		p.destList = append(p.destList, dst)
		p.sizes[slotKey{src: int32(me), dst: int32(dst)}] = len(data)
	}
	sort.Ints(p.destList)

	fb := msg.NewForwardBuffers(t.Dims())
	out := &Delivered{}
	for dst, data := range payloads {
		if dst < 0 || dst >= t.Size() {
			return nil, nil, fmt.Errorf("core: rank %d: destination %d out of range", me, dst)
		}
		if dst == me {
			out.Subs = append(out.Subs, msg.Submessage{Src: me, Dst: me, Data: data})
			continue
		}
		d := t.FirstDiff(me, dst)
		fb.Put(d, t.Digit(dst, d), msg.Submessage{Src: me, Dst: dst, Data: data})
	}

	var encodeBuf []byte
	for d := 0; d < t.N(); d++ {
		tag := StageTag(d)
		myDigit := t.Digit(me, d)
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			to := t.WithDigit(me, d, x)
			subs := fb.Take(d, x)
			if len(subs) > 0 {
				frame := pFrame{to: to, slots: make([]slotKey, len(subs))}
				for i, s := range subs {
					frame.slots[i] = slotKey{src: int32(s.Src), dst: int32(s.Dst)}
				}
				p.layout[d] = append(p.layout[d], frame)
			}
			m := msg.Message{From: me, To: to, Subs: subs}
			encodeBuf = msg.Encode(encodeBuf[:0], &m)
			if err := c.Send(to, tag, append([]byte(nil), encodeBuf...)); err != nil {
				return nil, nil, fmt.Errorf("core: rank %d stage %d send to %d: %w", me, d, to, err)
			}
		}
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			from := t.WithDigit(me, d, x)
			raw, err := c.Recv(from, tag)
			if err != nil {
				return nil, nil, fmt.Errorf("core: rank %d stage %d recv from %d: %w", me, d, from, err)
			}
			m, err := msg.Decode(raw)
			if err != nil {
				return nil, nil, fmt.Errorf("core: rank %d stage %d frame from %d: %w", me, d, from, err)
			}
			if m.From != from || m.To != me {
				return nil, nil, fmt.Errorf("core: rank %d stage %d: misrouted frame %d->%d from %d", me, d, m.From, m.To, from)
			}
			inSlots := make([]slotKey, len(m.Subs))
			for i, sub := range m.Subs {
				k := slotKey{src: int32(sub.Src), dst: int32(sub.Dst)}
				inSlots[i] = k
				p.sizes[k] = len(sub.Data)
				if sub.Dst == me {
					out.Subs = append(out.Subs, sub)
					continue
				}
				c2 := t.NextDiff(me, sub.Dst, d)
				if c2 < 0 {
					return nil, nil, fmt.Errorf("core: rank %d stage %d: submessage for %d cannot be forwarded", me, d, sub.Dst)
				}
				fb.Put(c2, t.Digit(sub.Dst, c2), sub)
			}
			p.inFrom[d] = append(p.inFrom[d], from)
			p.inLayout[d] = append(p.inLayout[d], inSlots)
		}
	}
	if left := fb.SubCount(); left != 0 {
		return nil, nil, fmt.Errorf("core: rank %d: %d submessages left undelivered", me, left)
	}
	msg.SortSubs(out.Subs)
	for _, s := range out.Subs {
		p.deliver = append(p.deliver, slotKey{src: int32(s.Src), dst: int32(s.Dst)})
	}
	p.indexNeighborFrames()
	return p, out, nil
}

// indexNeighborFrames builds nbrFrames from the learned layout: per stage,
// the fixed neighbor send order annotated with the nonempty frame sent to
// each neighbor (or nil). Replays iterate this slice instead of rebuilding
// a destination-keyed map per call.
func (p *Persistent) indexNeighborFrames() {
	t := p.topo
	me := p.rank
	p.nbrFrames = make([][]nbrFrame, t.N())
	for d := 0; d < t.N(); d++ {
		myDigit := t.Digit(me, d)
		row := make([]nbrFrame, 0, t.Dim(d)-1)
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			nf := nbrFrame{to: t.WithDigit(me, d, x)}
			for i := range p.layout[d] {
				if p.layout[d][i].to == nf.to {
					nf.f = &p.layout[d][i]
					break
				}
			}
			row = append(row, nf)
		}
		p.nbrFrames[d] = row
	}
}

// Run replays the learned pattern with new payload bytes. The destination
// set must equal the learning run's exactly (payload sizes may differ). It
// is collective: every rank of the original world must call Run the same
// number of times. For fixed payload sizes, the compiled Replay (see
// Compile) iterates strictly faster.
func (p *Persistent) Run(c runtime.Comm, payloads map[int][]byte) (*Delivered, error) {
	me := p.rank
	if c.Rank() != me || c.Size() != p.topo.Size() {
		return nil, fmt.Errorf("core: persistent exchange bound to rank %d of %d", me, p.topo.Size())
	}
	if len(payloads) != len(p.dests) {
		return nil, fmt.Errorf("core: persistent pattern has %d destinations, got %d", len(p.dests), len(payloads))
	}
	for dst := range payloads {
		if _, ok := p.dests[dst]; !ok {
			return nil, fmt.Errorf("core: destination %d not in the learned pattern", dst)
		}
	}

	// store holds payload bytes by (src, dst): own payloads plus whatever
	// arrived in earlier stages. It persists across replays (cleared, not
	// reallocated) so steady-state iterations reuse its buckets.
	if p.store == nil {
		p.store = make(map[slotKey][]byte, len(payloads))
	} else {
		clear(p.store)
	}
	store := p.store
	for dst, data := range payloads {
		store[slotKey{src: int32(me), dst: int32(dst)}] = data
	}

	var encodeBuf []byte
	var stageStart time.Time
	if p.tele != nil {
		stageStart = time.Now()
	}
	t := p.topo
	for d := 0; d < t.N(); d++ {
		tag := StageTag(d)
		myDigit := t.Digit(me, d)
		// Send the learned nonempty frames plus empty frames to the other
		// dimension-d neighbors (receive counts stay deterministic).
		for _, nf := range p.nbrFrames[d] {
			m := msg.Message{From: me, To: nf.to}
			if nf.f != nil {
				m.Subs = make([]msg.Submessage, len(nf.f.slots))
				for i, k := range nf.f.slots {
					data, ok := store[k]
					if !ok {
						return nil, fmt.Errorf("core: rank %d stage %d: missing payload %d->%d for learned slot",
							me, d, k.src, k.dst)
					}
					m.Subs[i] = msg.Submessage{Src: int(k.src), Dst: int(k.dst), Data: data}
					delete(store, k)
				}
			}
			encodeBuf = msg.Encode(encodeBuf[:0], &m)
			if err := c.Send(nf.to, tag, append([]byte(nil), encodeBuf...)); err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d send to %d: %w", me, d, nf.to, err)
			}
		}
		for x := 0; x < t.Dim(d); x++ {
			if x == myDigit {
				continue
			}
			from := t.WithDigit(me, d, x)
			raw, err := c.Recv(from, tag)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d recv from %d: %w", me, d, from, err)
			}
			m, err := msg.Decode(raw)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d frame from %d: %w", me, d, from, err)
			}
			for _, sub := range m.Subs {
				store[slotKey{src: int32(sub.Src), dst: int32(sub.Dst)}] = sub.Data
			}
		}
		if p.tele != nil {
			stageStart = p.tele.SpanMark(telemetry.KStage, d, stageStart)
		}
	}

	out := &Delivered{Subs: make([]msg.Submessage, len(p.deliver))}
	for i, k := range p.deliver {
		data, ok := store[k]
		if !ok {
			return nil, fmt.Errorf("core: rank %d: learned delivery %d->%d did not arrive", me, k.src, k.dst)
		}
		out.Subs[i] = msg.Submessage{Src: int(k.src), Dst: int(k.dst), Data: data}
	}
	return out, nil
}

// Destinations returns the learned destination set, sorted. The returned
// slice is cached inside the Persistent and must be treated as read-only.
func (p *Persistent) Destinations() []int { return p.destList }
