package core

import (
	"math/rand"
	"testing"

	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

func synthTopology(t *testing.T, K, n int) *vpt.Topology {
	t.Helper()
	tp, err := vpt.NewBalanced(K, n)
	if err != nil {
		tp, err = vpt.NewFactored(K, n) // non-power-of-two K
	}
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// synthBasePairs builds a seeded irregular pattern with word-aligned sizes
// (so the same base works for compiled-replay tests).
func synthBasePairs(seed int64, K int) map[synthPair]int {
	rng := rand.New(rand.NewSource(seed))
	pairs := map[synthPair]int{}
	for src := 0; src < K; src++ {
		fan := 1 + rng.Intn(4)
		for i := 0; i < fan; i++ {
			dst := rng.Intn(K)
			pairs[synthPair{src, dst}] = 8 * (1 + rng.Intn(6))
		}
	}
	return pairs
}

// TestSynthWorldMatchesLearned anchors the synthetic ground truth to the
// real learning run: a world learned over chanpt must carry exactly the
// slots, sizes, deliveries, and destinations synthWorld computes locally.
// (Within-frame slot order may differ — learning order is the forward
// buffer's, synth order is canonical — so frames compare as sets.)
func TestSynthWorldMatchesLearned(t *testing.T) {
	for _, c := range []struct{ K, n int }{{8, 3}, {16, 2}, {12, 2}} {
		tp := synthTopology(t, c.K, c.n)
		pairs := synthBasePairs(int64(c.K), c.K)
		synth := synthWorld(tp, pairs)

		w, err := chanpt.NewWorld(c.K, 2)
		if err != nil {
			t.Fatal(err)
		}
		learned := make([]*Persistent, c.K)
		err = runtime.Run(w.Comms(), func(cm runtime.Comm) error {
			payloads := map[int][]byte{}
			for pr, size := range pairs {
				if pr.src == cm.Rank() {
					payloads[pr.dst] = make([]byte, size)
				}
			}
			p, _, err := NewPersistent(cm, tp, payloads)
			if err != nil {
				return err
			}
			learned[cm.Rank()] = p
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyLearnedWorld(synth); err != nil {
			t.Fatalf("K=%d: synth world fails verification: %v", c.K, err)
		}
		if err := VerifyLearnedWorld(learned); err != nil {
			t.Fatalf("K=%d: learned world fails verification: %v", c.K, err)
		}
		for me := 0; me < c.K; me++ {
			sp, lp := synth[me], learned[me]
			if len(sp.sizes) != len(lp.sizes) {
				t.Fatalf("K=%d rank %d: synth records %d sizes, learned %d", c.K, me, len(sp.sizes), len(lp.sizes))
			}
			for k, n := range sp.sizes {
				if ln, ok := lp.sizes[k]; !ok || ln != n {
					t.Fatalf("K=%d rank %d: size of %d->%d synth %d, learned %d", c.K, me, k.src, k.dst, n, ln)
				}
			}
			if !slotsEqual(sp.deliver, lp.deliver) {
				t.Fatalf("K=%d rank %d: deliver synth %v, learned %v", c.K, me, sp.deliver, lp.deliver)
			}
			for d := range sp.nbrFrames {
				for _, nf := range sp.nbrFrames[d] {
					var ss, ls []slotKey
					if nf.f != nil {
						ss = nf.f.slots
					}
					if li := lp.outFrameIndex(d, nf.to); li >= 0 && lp.nbrFrames[d][li].f != nil {
						ls = lp.nbrFrames[d][li].f.slots
					}
					if !slotsEqual(slotSet(ss), slotSet(ls)) {
						t.Fatalf("K=%d rank %d stage %d frame to %d: synth %v, learned %v", c.K, me, d, nf.to, ss, ls)
					}
				}
				for j, from := range sp.inFrom[d] {
					ls, ok := lp.learnedInSlots(d, from)
					if !ok {
						t.Fatalf("K=%d rank %d stage %d: learned world has no frame from %d", c.K, me, d, from)
					}
					if !slotsEqual(slotSet(sp.inLayout[d][j]), slotSet(ls)) {
						t.Fatalf("K=%d rank %d stage %d frame from %d: synth %v, learned %v",
							c.K, me, d, from, sp.inLayout[d][j], ls)
					}
				}
			}
		}
	}
}

// synthMutations derives a seeded mutation list from a base pattern:
// removals of existing pairs, additions of absent ones, and resizes.
func synthMutations(seed int64, K int, pairs map[synthPair]int) []PatchPair {
	rng := rand.New(rand.NewSource(seed))
	var muts []PatchPair
	removed := map[synthPair]bool{}
	for pr := range pairs {
		switch rng.Intn(4) {
		case 0: // remove
			muts = append(muts, PatchPair{Src: pr.src, Dst: pr.dst, Remove: true})
			removed[pr] = true
		case 1: // resize
			muts = append(muts, PatchPair{Src: pr.src, Dst: pr.dst, Remove: true})
			muts = append(muts, PatchPair{Src: pr.src, Dst: pr.dst, Size: 8 * (1 + rng.Intn(6))})
			removed[pr] = true
		}
	}
	for i := 0; i < K; i++ {
		pr := synthPair{rng.Intn(K), rng.Intn(K)}
		if _, exists := pairs[pr]; exists && !removed[pr] {
			continue
		}
		if removed[pr] {
			continue // keep the mutation list one-op-per-pair beyond resizes
		}
		already := false
		for _, m := range muts {
			if !m.Remove && m.Src == pr.src && m.Dst == pr.dst {
				already = true
				break
			}
		}
		if already {
			continue
		}
		muts = append(muts, PatchPair{Src: pr.src, Dst: pr.dst, Size: 8 * (1 + rng.Intn(6))})
	}
	return muts
}

// TestPatchMatchesSynth is the core equivalence theorem, structurally: for
// seeded mutation batches over several topologies, patching every rank of
// synthWorld(base) yields exactly synthWorld(mutated) — same slots per
// frame, sizes, deliveries, destinations — and the patched world passes
// both whole-world verifiers.
func TestPatchMatchesSynth(t *testing.T) {
	for _, c := range []struct{ K, n int }{{8, 3}, {8, 1}, {16, 2}, {16, 4}, {12, 2}} {
		for seed := int64(1); seed <= 3; seed++ {
			tp := synthTopology(t, c.K, c.n)
			base := synthBasePairs(seed, c.K)
			muts := synthMutations(seed*100, c.K, base)
			world := synthWorld(tp, base)
			deltas := synthDeltas(tp, muts)
			for me, p := range world {
				st, err := p.Patch(deltas[me])
				if err != nil {
					t.Fatalf("K=%d n=%d seed=%d rank %d: patch rejected: %v", c.K, c.n, seed, me, err)
				}
				if st.Added+st.Removed != len(deltas[me].Pairs) {
					t.Fatalf("K=%d rank %d: stats count %d+%d ops, delta has %d",
						c.K, me, st.Added, st.Removed, len(deltas[me].Pairs))
				}
				if st.DirtyStages > tp.N() {
					t.Fatalf("K=%d rank %d: %d dirty stages of %d", c.K, me, st.DirtyStages, tp.N())
				}
			}
			want := synthWorld(tp, applyMutations(base, muts))
			for me := range world {
				if err := comparePersistent(world[me], want[me], false); err != nil {
					t.Fatalf("K=%d n=%d seed=%d: patched world differs from relearned: %v", c.K, c.n, seed, err)
				}
			}
			if err := VerifyWorld(LearnedWorldSchedules(world)); err != nil {
				t.Fatalf("K=%d n=%d seed=%d: patched world fails VerifyWorld: %v", c.K, c.n, seed, err)
			}
			if err := VerifyLearnedWorld(world); err != nil {
				t.Fatalf("K=%d n=%d seed=%d: patched world fails VerifyLearnedWorld: %v", c.K, c.n, seed, err)
			}
			// Reserve counts in the rebuilt schedule must equal the new slot
			// counts — stale counts would under-reserve replay frames.
			for me, p := range world {
				sched := p.Schedule()
				for d, ss := range sched.Stages {
					for j, s := range ss.Sends {
						n := 0
						if p.nbrFrames[d][j].f != nil {
							n = len(p.nbrFrames[d][j].f.slots)
						}
						if s.Reserve != n {
							t.Fatalf("K=%d rank %d stage %d: Reserve %d for %d slots", c.K, me, d, s.Reserve, n)
						}
					}
				}
			}
		}
	}
}

// TestPatchRejectLeavesUnchanged drives every rejection path and proves the
// Persistent is bit-identical to an untouched twin afterwards — Patch
// validates the whole delta before mutating anything.
func TestPatchRejectLeavesUnchanged(t *testing.T) {
	tp := synthTopology(t, 8, 3)
	base := synthBasePairs(1, 8)
	// Pick an existing pair and an absent one for the scenarios.
	var have synthPair
	for pr := range base {
		if pr.src != pr.dst {
			have = pr
			break
		}
	}
	absent := synthPair{-1, -1}
	for s := 0; s < 8 && absent.src < 0; s++ {
		for d := 0; d < 8; d++ {
			if _, ok := base[synthPair{s, d}]; !ok && s != d {
				absent = synthPair{s, d}
				break
			}
		}
	}
	cases := []struct {
		name  string
		rank  int
		delta PatchDelta
	}{
		{"remove-absent", absent.src, PatchDelta{Pairs: []PatchPair{{Src: absent.src, Dst: absent.dst, Remove: true}}}},
		{"add-existing", have.src, PatchDelta{Pairs: []PatchPair{{Src: have.src, Dst: have.dst, Size: 8}}}},
		{"dup-remove", have.src, PatchDelta{Pairs: []PatchPair{
			{Src: have.src, Dst: have.dst, Remove: true}, {Src: have.src, Dst: have.dst, Remove: true}}}},
		{"dup-add", absent.src, PatchDelta{Pairs: []PatchPair{
			{Src: absent.src, Dst: absent.dst, Size: 8}, {Src: absent.src, Dst: absent.dst, Size: 16}}}},
		{"out-of-range", 0, PatchDelta{Pairs: []PatchPair{{Src: 0, Dst: 99, Size: 8}}}},
		{"negative-size", absent.src, PatchDelta{Pairs: []PatchPair{{Src: absent.src, Dst: absent.dst, Size: -8}}}},
		// A mixed delta: one valid removal plus one invalid op. The valid
		// half must NOT be applied.
		{"valid-plus-invalid", have.src, PatchDelta{Pairs: []PatchPair{
			{Src: have.src, Dst: have.dst, Remove: true}, {Src: 0, Dst: 99, Size: 8}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			world := synthWorld(tp, base)
			fresh := synthWorld(tp, base)
			p := world[tc.rank]
			if _, err := p.Patch(&tc.delta); err == nil {
				t.Fatalf("patch accepted an invalid delta")
			}
			if err := comparePersistent(p, fresh[tc.rank], true); err != nil {
				t.Fatalf("rejected patch mutated state: %v", err)
			}
			// The cached schedule must still replay-validate.
			if err := validateSchedule(p.Schedule(), tc.rank, 8); err != nil {
				t.Fatalf("schedule after rejected patch: %v", err)
			}
		})
	}

	// Not-transiting: find a pair and a rank off its route.
	t.Run("not-transiting", func(t *testing.T) {
		world := synthWorld(tp, base)
		fresh := synthWorld(tp, base)
		for me := 0; me < 8; me++ {
			if _, involved := routeHops(tp, me, absent.src, absent.dst); involved {
				continue
			}
			p := world[me]
			if _, err := p.Patch(&PatchDelta{Pairs: []PatchPair{{Src: absent.src, Dst: absent.dst, Size: 8}}}); err == nil {
				t.Fatalf("rank %d accepted a pair whose route does not transit it", me)
			}
			if err := comparePersistent(p, fresh[me], true); err != nil {
				t.Fatalf("rejected patch mutated state: %v", err)
			}
			return
		}
		t.Skip("every rank lies on the route for this shape")
	})
}

// TestPatchResizeAppendsAtTail pins the canonical resize rule: a paired
// remove+add lands the slot at the tail of the frame on both endpoints of
// every hop, with the new size recorded.
func TestPatchResizeAppendsAtTail(t *testing.T) {
	tp := synthTopology(t, 8, 3)
	base := synthBasePairs(2, 8)
	// Find a pair that actually rides a frame (src != dst).
	var pr synthPair
	for cand := range base {
		if cand.src != cand.dst {
			pr = cand
			break
		}
	}
	world := synthWorld(tp, base)
	muts := []PatchPair{
		{Src: pr.src, Dst: pr.dst, Remove: true},
		{Src: pr.src, Dst: pr.dst, Size: 8 * 7},
	}
	deltas := synthDeltas(tp, muts)
	k := slotKey{src: int32(pr.src), dst: int32(pr.dst)}
	for me, p := range world {
		if len(deltas[me].Pairs) == 0 {
			continue
		}
		if _, err := p.Patch(deltas[me]); err != nil {
			t.Fatalf("rank %d: %v", me, err)
		}
		if got := p.sizes[k]; got != 8*7 {
			t.Fatalf("rank %d: resized pair records %d bytes, want %d", me, got, 8*7)
		}
		h, _ := routeHops(tp, me, pr.src, pr.dst)
		if h.sendD >= 0 {
			slots := p.nbrFrames[h.sendD][p.outFrameIndex(h.sendD, h.sendTo)].f.slots
			if slots[len(slots)-1] != k {
				t.Fatalf("rank %d: resized slot not at tail of outbound frame: %v", me, slots)
			}
		}
		if h.recvD >= 0 {
			slots := p.inLayout[h.recvD][p.inFrameIndex(h.recvD, h.recvFrom)]
			if slots[len(slots)-1] != k {
				t.Fatalf("rank %d: resized slot not at tail of inbound layout: %v", me, slots)
			}
		}
	}
	if err := VerifyLearnedWorld(world); err != nil {
		t.Fatal(err)
	}
}

// equalReplay compares two compiled replays structurally: templates,
// op tables, inbound metadata, halo shape.
func equalReplay(t *testing.T, label string, a, b *Replay) {
	t.Helper()
	if a.haloWords != b.haloWords || a.xlen != b.xlen {
		t.Fatalf("%s: halo %d/%d words, xlen %d/%d", label, a.haloWords, b.haloWords, a.xlen, b.xlen)
	}
	if len(a.selfs) != len(b.selfs) {
		t.Fatalf("%s: %d self ops vs %d", label, len(a.selfs), len(b.selfs))
	}
	for i := range a.selfs {
		if a.selfs[i].haloOff != b.selfs[i].haloOff || len(a.selfs[i].idx) != len(b.selfs[i].idx) {
			t.Fatalf("%s: self op %d differs", label, i)
		}
	}
	if len(a.stages) != len(b.stages) {
		t.Fatalf("%s: %d stages vs %d", label, len(a.stages), len(b.stages))
	}
	for d := range a.stages {
		as, bs := &a.stages[d], &b.stages[d]
		if as.tag != bs.tag || len(as.frames) != len(bs.frames) {
			t.Fatalf("%s: stage %d shape differs", label, d)
		}
		for j := range as.frames {
			af, bf := &as.frames[j], &bs.frames[j]
			if af.to != bf.to {
				t.Fatalf("%s: stage %d frame %d to %d vs %d", label, d, j, af.to, bf.to)
			}
			if string(af.tmpl) != string(bf.tmpl) {
				t.Fatalf("%s: stage %d frame to %d: templates differ (%d vs %d bytes)", label, d, af.to, len(af.tmpl), len(bf.tmpl))
			}
			if len(af.gathers) != len(bf.gathers) || len(af.fwds) != len(bf.fwds) {
				t.Fatalf("%s: stage %d frame to %d: op tables differ", label, d, af.to)
			}
			for i := range af.gathers {
				if af.gathers[i].off != bf.gathers[i].off || len(af.gathers[i].idx) != len(bf.gathers[i].idx) {
					t.Fatalf("%s: stage %d frame to %d: gather op %d differs", label, d, af.to, i)
				}
			}
			for i := range af.fwds {
				if af.fwds[i] != bf.fwds[i] {
					t.Fatalf("%s: stage %d frame to %d: fwd op %d differs", label, d, af.to, i)
				}
			}
		}
		if len(as.recvFrom) != len(bs.recvFrom) {
			t.Fatalf("%s: stage %d inbound shape differs", label, d)
		}
		for j := range as.recvFrom {
			if as.recvFrom[j] != bs.recvFrom[j] || as.inSize[j] != bs.inSize[j] || as.inNsubs[j] != bs.inNsubs[j] {
				t.Fatalf("%s: stage %d inbound frame %d metadata differs", label, d, j)
			}
			if len(as.delivers[j]) != len(bs.delivers[j]) {
				t.Fatalf("%s: stage %d inbound frame %d deliver ops differ", label, d, j)
			}
			for i := range as.delivers[j] {
				if as.delivers[j][i] != bs.delivers[j][i] {
					t.Fatalf("%s: stage %d inbound frame %d deliver op %d differs", label, d, j, i)
				}
			}
		}
	}
}

// TestPatchCompiledMatchesRecompile proves the incremental lowering exact:
// after a Patch, PatchCompiled must leave the Replay structurally identical
// to compiling the patched Persistent from scratch — and clean frames must
// keep their template backing arrays (the incremental part is real, not a
// hidden recompile).
func TestPatchCompiledMatchesRecompile(t *testing.T) {
	const xlen = 128
	for _, c := range []struct{ K, n int }{{8, 3}, {16, 2}, {12, 2}} {
		tp := synthTopology(t, c.K, c.n)
		base := synthBasePairs(int64(c.K)+10, c.K)
		muts := synthMutations(int64(c.K)*7, c.K, base)
		world := synthWorld(tp, base)
		deltas := synthDeltas(tp, muts)
		for me, p := range world {
			gather := synthGather(p, xlen)
			rep, err := p.Compile(xlen, gather)
			if err != nil {
				t.Fatalf("K=%d rank %d: compile: %v", c.K, me, err)
			}
			// Remember each frame's template backing array.
			type fkey struct{ d, j int }
			tmplPtr := map[fkey]*byte{}
			for d := range rep.stages {
				for j := range rep.stages[d].frames {
					if tm := rep.stages[d].frames[j].tmpl; len(tm) > 0 {
						tmplPtr[fkey{d, j}] = &tm[0]
					}
				}
			}
			st, err := p.Patch(deltas[me])
			if err != nil {
				t.Fatalf("K=%d rank %d: patch: %v", c.K, me, err)
			}
			gather = synthGather(p, xlen) // destinations may have changed
			if err := p.PatchCompiled(rep, xlen, gather, st); err != nil {
				t.Fatalf("K=%d rank %d: patch-compile: %v", c.K, me, err)
			}
			fresh, err := p.Compile(xlen, gather)
			if err != nil {
				t.Fatalf("K=%d rank %d: recompile: %v", c.K, me, err)
			}
			equalReplay(t, "patched vs recompiled", rep, fresh)
			// Clean frames must still point at their original templates.
			reused, rebuilt := 0, 0
			for d := range rep.stages {
				for j := range rep.stages[d].frames {
					ptr, had := tmplPtr[fkey{d, j}]
					tm := rep.stages[d].frames[j].tmpl
					if st.dirtyOut[frameRef{d, j}] {
						rebuilt++
						continue
					}
					if had && len(tm) > 0 && &tm[0] != ptr {
						t.Fatalf("K=%d rank %d: clean frame (stage %d, slot %d) lost its template", c.K, me, d, j)
					}
					if had {
						reused++
					}
				}
			}
			if reused == 0 && rebuilt == 0 && len(tmplPtr) > 0 {
				t.Fatalf("K=%d rank %d: no frames accounted for", c.K, me)
			}
		}
	}
}

// TestPatchTelemetry checks the patch counters land on the rank collector
// and survive a snapshot.
func TestPatchTelemetry(t *testing.T) {
	tp := synthTopology(t, 8, 3)
	base := synthBasePairs(5, 8)
	world := synthWorld(tp, base)
	reg, err := telemetry.New(telemetry.Config{Ranks: 8, Stages: tp.N()})
	if err != nil {
		t.Fatal(err)
	}
	var pr synthPair
	for cand := range base {
		if cand.src != cand.dst {
			pr = cand
			break
		}
	}
	muts := []PatchPair{{Src: pr.src, Dst: pr.dst, Remove: true}}
	deltas := synthDeltas(tp, muts)
	patched := 0
	for me, p := range world {
		p.Instrument(reg.Rank(me))
		if len(deltas[me].Pairs) == 0 {
			continue
		}
		if _, err := p.Patch(deltas[me]); err != nil {
			t.Fatalf("rank %d: %v", me, err)
		}
		patched++
	}
	snap := reg.Snapshot()
	var patches, dirty int64
	for _, r := range snap.Ranks {
		patches += r.Patches
		dirty += r.PatchDirtyStages
	}
	if patches != int64(patched) {
		t.Fatalf("snapshot records %d patches, want %d", patches, patched)
	}
	if dirty == 0 {
		t.Fatal("snapshot records zero dirty stages across all patches")
	}
	// The nil collector must stay a no-op.
	var nilRank *telemetry.Rank
	nilRank.CountPatch(3, 0)
}
