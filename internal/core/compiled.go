// Compiled iteration programs: the second specialization tier above
// Persistent. A Persistent replay still pays per-call maps, per-frame
// copies, and a per-value byte codec; Compile turns the learned pattern
// into a fully indexed program under the assumption that payload *sizes*
// are fixed across iterations (the iterative-solver case: one float64 per
// matrix column shipped, every iteration, to the same ranks). The program
// owns precomputed frame templates and slot offsets, so an iteration is:
//
//   - gather: write x[idx] float64s straight into pooled frame buffers at
//     precomputed offsets (zero-copy view when alignment allows),
//   - forward: memcpy payload regions from retained inbound frames into
//     outgoing frames — forwarded bytes are never decoded or re-encoded,
//   - scatter: copy delivered payload regions straight into the caller's
//     halo slice at precomputed word offsets.
//
// No maps are consulted and nothing is allocated in steady state: frame
// buffers come from the msg arena and every error path is off the happy
// path. This is the moral equivalent of MPI_Start on a persistent
// neighborhood collective built once with MPIX_Neighbor_alltoallv_init.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
)

// Replay is a compiled iteration program for one rank: a fixed schedule of
// frame builds, sends, receives, and copies. Obtain one from
// Persistent.Compile (store-and-forward) or NewDirectReplay (baseline).
// A Replay is bound to the rank and world it was compiled for and is not
// safe for concurrent use.
type Replay struct {
	me, size  int
	xlen      int // required len(x) in Run
	haloWords int // required len(halo) in Run
	selfs     []selfOp
	stages    []rStage
	// inFrames retains received frames until the iteration ends: later
	// stages memcpy forwarded payloads out of them. Entries are recycled
	// into the frame arena at the end of every Run.
	inFrames [][]byte
	pending  []int // scratch for arrival-order receives, reused across runs
	// inLoc caches each forwarded slot's retained-frame location, so
	// PatchCompiled can re-lower dirty frames without re-deriving the
	// locations of slots in clean inbound frames. Entries for removed slots
	// go stale harmlessly: nothing forwards them, and re-adding a slot
	// dirties its inbound frame, which recomputes the entry first.
	inLoc map[slotKey]slotLoc
	// tele, when set, records per-stage gather/forward/deliver spans and
	// forwarded byte counts; see Instrument.
	tele *telemetry.Rank
	// traffic is the compiled schedule's transport hint (computeTraffic),
	// offered to the transport at the top of every Run. Cached so the
	// steady-state iteration stays allocation-free; PatchCompiled rebuilds
	// it when re-lowering changes frame sizes.
	traffic []runtime.StageTraffic
}

// Instrument attaches a live telemetry collector to the replay: every Run
// records one gather span (the self-delivery scatter) plus, per stage, a
// forward span (frame build and send: gather ops, forward memcpys, Send)
// and a deliver span (arrival-order receives and halo scatter), and counts
// forwarded submessage bytes. A nil collector detaches. The hooks cost two
// clock reads per stage and allocate nothing, preserving the replay's
// zero-allocation steady state.
func (r *Replay) Instrument(t *telemetry.Rank) { r.tele = t }

// rStage is one communication stage: the frames sent to this stage's
// neighbors and the receive schedule for the frames arriving from them.
type rStage struct {
	tag      int
	dim      int // VPT dimension the stage traverses (ScheduleStage.Dim)
	frames   []rFrame
	recvFrom []int   // expected senders, learning receive order
	inIdx    []int32 // retention slot per sender (index into inFrames)
	inSize   []int32 // expected frame byte length per sender
	inNsubs  []int32 // expected submessage count per sender
	delivers [][]deliverOp
}

// rFrame is one outgoing frame: a byte template (header and submessage
// headers pre-encoded) plus the copy operations that fill its payload
// regions each iteration.
type rFrame struct {
	to      int
	tmpl    []byte
	gathers []gatherOp
	fwds    []fwdOp
}

// gatherOp writes x[idx[i]] as little-endian float64s at frame offset off.
type gatherOp struct {
	off int32
	idx []int32
}

// fwdOp copies n payload bytes from retained inbound frame `frame` at
// srcOff into the outgoing frame at dstOff.
type fwdOp struct {
	dstOff, srcOff, n int32
	frame             int32
}

// deliverOp copies `words` float64s from an inbound frame at srcOff into
// halo[haloOff:].
type deliverOp struct {
	srcOff, haloOff, words int32
}

// selfOp scatters this rank's own payload to itself: halo[haloOff+i] =
// x[idx[i]], no bytes involved.
type selfOp struct {
	idx     []int32
	haloOff int32
}

type slotLoc struct {
	frame, off int32
}

// Compile lowers the learned StageSchedule (Persistent.Schedule — the same
// IR the stage machine executes in Run) into a Replay, under the added
// assumption of fixed payload sizes: destination dst's payload is always
// the float64s x[gather[dst][0]], x[gather[dst][1]], ... read from the x
// slice passed to Run. The lowering keeps the schedule's stage skeleton —
// tags, send slots in send order, inbound sender sets — and specializes
// every slot into precomputed byte offsets: frame templates replace
// encoding, memcpys replace the store, and halo offsets replace the
// delivery map. gather must cover exactly the learned destinations, and
// each list's byte size (8 per index) must equal the learning run's
// payload size for that destination; every payload routed through this
// rank must be word-sized. The gather lists are retained by the Replay and
// must not be mutated afterwards.
//
// Deliveries are scattered into Run's halo slice in the learned delivery
// order (sorted by source rank), one contiguous word block per source.
func (p *Persistent) Compile(xlen int, gather map[int][]int32) (*Replay, error) {
	me := p.rank
	if err := p.checkGather(xlen, gather); err != nil {
		return nil, err
	}

	r := &Replay{me: me, size: p.topo.Size(), xlen: xlen}

	// Halo layout: one contiguous word block per delivery slot, in the
	// learned (sorted-by-source) order. Self deliveries come straight from
	// x; everything else is bound to an inbound frame region below.
	haloOff := make(map[slotKey]int32, len(p.deliver))
	bound := make(map[slotKey]bool, len(p.deliver))
	off := int32(0)
	for _, k := range p.deliver {
		n := p.sizes[k]
		if n%8 != 0 {
			return nil, fmt.Errorf("core: compile: delivery %d->%d has %d bytes, compiled replays require word-sized payloads", k.src, k.dst, n)
		}
		haloOff[k] = off
		off += int32(n / 8)
		if k.src == int32(me) {
			r.selfs = append(r.selfs, selfOp{idx: gather[int(k.dst)], haloOff: haloOff[k]})
			bound[k] = true
		}
	}
	r.haloWords = int(off)

	inLoc := make(map[slotKey]slotLoc)
	nextFrame := int32(0)
	maxNbrs := 0
	sched := p.Schedule()
	r.stages = make([]rStage, len(sched.Stages))
	for d := range r.stages {
		st := &r.stages[d]
		ss := &sched.Stages[d]
		st.tag = ss.Tag
		st.dim = ss.Dim

		// Outgoing frames follow the schedule's send slots (learning send
		// order, empty frames included); each slot's learned wire layout
		// becomes a pre-encoded template.
		st.frames = make([]rFrame, 0, len(ss.Sends))
		for j, slot := range ss.Sends {
			var slots []slotKey
			if nf := p.nbrFrames[d][j]; nf.f != nil {
				slots = nf.f.slots
			}
			f, err := p.compileFrame(me, slot.To, slots, gather, inLoc)
			if err != nil {
				return nil, fmt.Errorf("core: compile: stage %d frame to %d: %w", d, slot.To, err)
			}
			st.frames = append(st.frames, f)
		}

		// Inbound frames: register forwarded slots for later stages and
		// bind deliveries to their frame regions.
		st.delivers = make([][]deliverOp, len(ss.RecvFrom))
		for j, from := range ss.RecvFrom {
			slots := p.inLayout[d][j]
			st.recvFrom = append(st.recvFrom, from)
			st.inIdx = append(st.inIdx, nextFrame)
			st.inNsubs = append(st.inNsubs, int32(len(slots)))
			fo := int32(msg.MsgHeaderLen)
			for _, k := range slots {
				n := int32(p.sizes[k])
				payloadOff := fo + msg.SubHeaderLen
				if k.dst == int32(me) {
					st.delivers[j] = append(st.delivers[j], deliverOp{srcOff: payloadOff, haloOff: haloOff[k], words: n / 8})
					bound[k] = true
				} else {
					inLoc[k] = slotLoc{frame: nextFrame, off: payloadOff}
				}
				fo = payloadOff + n
			}
			st.inSize = append(st.inSize, fo)
			nextFrame++
		}
		if len(st.recvFrom) > maxNbrs {
			maxNbrs = len(st.recvFrom)
		}
	}
	for _, k := range p.deliver {
		if !bound[k] {
			return nil, fmt.Errorf("core: compile: delivery %d->%d has no inbound frame slot", k.src, k.dst)
		}
	}
	r.inFrames = make([][]byte, nextFrame)
	r.pending = make([]int, 0, maxNbrs)
	r.inLoc = inLoc
	r.traffic = r.computeTraffic()
	return r, nil
}

// checkGather validates a gather map against the (current) learned
// pattern: exactly one list per destination, each list's byte size equal
// to the pattern's payload size, every index inside x. Shared by Compile
// and PatchCompiled so both lowerings enforce the same contract.
func (p *Persistent) checkGather(xlen int, gather map[int][]int32) error {
	me := p.rank
	if len(gather) != len(p.dests) {
		return fmt.Errorf("core: compile: %d gather lists for %d learned destinations", len(gather), len(p.dests))
	}
	for dst, idx := range gather {
		if _, ok := p.dests[dst]; !ok {
			return fmt.Errorf("core: compile: destination %d not in the learned pattern", dst)
		}
		want := p.sizes[slotKey{src: int32(me), dst: int32(dst)}]
		if 8*len(idx) != want {
			return fmt.Errorf("core: compile: destination %d gathers %d words, learned payload is %d bytes",
				dst, len(idx), want)
		}
		for _, g := range idx {
			if int(g) < 0 || int(g) >= xlen {
				return fmt.Errorf("core: compile: gather index %d out of x range [0,%d)", g, xlen)
			}
		}
	}
	return nil
}

// compileFrame builds one outgoing frame program: the wire template with
// header and submessage headers pre-encoded, plus the payload fill ops.
func (p *Persistent) compileFrame(me, to int, slots []slotKey, gather map[int][]int32, inLoc map[slotKey]slotLoc) (rFrame, error) {
	size := msg.MsgHeaderLen
	for _, k := range slots {
		size += msg.SubHeaderLen + p.sizes[k]
	}
	f := rFrame{to: to, tmpl: make([]byte, 0, size)}
	f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(me))
	f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(to))
	f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(len(slots)))
	for _, k := range slots {
		n := p.sizes[k]
		f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(k.src))
		f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(k.dst))
		f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(n))
		payloadOff := int32(len(f.tmpl))
		f.tmpl = append(f.tmpl, make([]byte, n)...)
		if k.src == int32(me) {
			f.gathers = append(f.gathers, gatherOp{off: payloadOff, idx: gather[int(k.dst)]})
		} else {
			l, ok := inLoc[k]
			if !ok {
				return rFrame{}, fmt.Errorf("forwarded slot %d->%d not received in an earlier stage", k.src, k.dst)
			}
			f.fwds = append(f.fwds, fwdOp{dstOff: payloadOff, frame: l.frame, srcOff: l.off, n: int32(n)})
		}
	}
	return f, nil
}

// NewDirectReplay compiles the baseline (BL) iteration for one rank: one
// direct frame per destination carrying the float64s x[gather[dst]], and
// one expected frame from every source in srcWords (mapping source rank to
// its payload word count). Deliveries land in Run's halo slice sorted by
// source rank, matching the store-and-forward Replay's halo layout for the
// same pattern. A self payload is declared via gather[me] only; srcWords
// must not list the rank itself. Collective with the other ranks' replays,
// like DirectExchange.
func NewDirectReplay(me, size, xlen int, gather map[int][]int32, srcWords map[int]int) (*Replay, error) {
	if me < 0 || me >= size {
		return nil, fmt.Errorf("core: direct replay rank %d out of range [0,%d)", me, size)
	}
	r := &Replay{me: me, size: size, xlen: xlen}
	dests := make([]int, 0, len(gather))
	for dst, idx := range gather {
		if dst < 0 || dst >= size {
			return nil, fmt.Errorf("core: direct replay destination %d out of range [0,%d)", dst, size)
		}
		for _, g := range idx {
			if int(g) < 0 || int(g) >= xlen {
				return nil, fmt.Errorf("core: direct replay gather index %d out of x range [0,%d)", g, xlen)
			}
		}
		dests = append(dests, dst)
	}
	sort.Ints(dests)

	// Delivery order: sorted source ranks, self included via gather[me].
	srcs := make([]int, 0, len(srcWords)+1)
	for src := range srcWords {
		if src == me {
			return nil, fmt.Errorf("core: direct replay: self source is declared via gather[%d], not srcWords", me)
		}
		if src < 0 || src >= size {
			return nil, fmt.Errorf("core: direct replay source %d out of range [0,%d)", src, size)
		}
		srcs = append(srcs, src)
	}
	if _, ok := gather[me]; ok {
		srcs = append(srcs, me)
	}
	sort.Ints(srcs)

	st := rStage{tag: tagBase - 1, dim: 0}
	haloAt := int32(0)
	for _, src := range srcs {
		if src == me {
			r.selfs = append(r.selfs, selfOp{idx: gather[me], haloOff: haloAt})
			haloAt += int32(len(gather[me]))
			continue
		}
		words := int32(srcWords[src])
		st.recvFrom = append(st.recvFrom, src)
		st.inIdx = append(st.inIdx, int32(len(st.recvFrom)-1))
		st.inNsubs = append(st.inNsubs, 1)
		st.inSize = append(st.inSize, int32(msg.MsgHeaderLen+msg.SubHeaderLen)+8*words)
		st.delivers = append(st.delivers, []deliverOp{{srcOff: msg.MsgHeaderLen + msg.SubHeaderLen, haloOff: haloAt, words: words}})
		haloAt += words
	}
	r.haloWords = int(haloAt)

	for _, dst := range dests {
		if dst == me {
			continue // self payload never touches the transport
		}
		idx := gather[dst]
		n := 8 * len(idx)
		f := rFrame{to: dst, tmpl: make([]byte, 0, msg.MsgHeaderLen+msg.SubHeaderLen+n)}
		f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(me))
		f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(dst))
		f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, 1)
		f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(me))
		f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(dst))
		f.tmpl = binary.LittleEndian.AppendUint32(f.tmpl, uint32(n))
		f.gathers = append(f.gathers, gatherOp{off: int32(len(f.tmpl)), idx: idx})
		f.tmpl = append(f.tmpl, make([]byte, n)...)
		st.frames = append(st.frames, f)
	}
	r.stages = []rStage{st}
	r.inFrames = make([][]byte, len(st.recvFrom))
	r.pending = make([]int, 0, len(st.recvFrom))
	r.traffic = r.computeTraffic()
	return r, nil
}

// HaloWords returns the number of float64s Run scatters into its halo
// argument (the sum of all delivered payload word counts, in delivery
// order).
func (r *Replay) HaloWords() int { return r.haloWords }

// Run executes one compiled iteration: it builds and sends every learned
// frame with payload float64s gathered from x, receives this rank's
// inbound frames in arrival order, and scatters the delivered payloads
// into halo (which must have exactly HaloWords entries). Collective across
// the world the program was compiled in; steady-state calls perform no
// allocation on zero-copy transports.
func (r *Replay) Run(c runtime.Comm, x []float64, halo []float64) error {
	if c.Rank() != r.me || c.Size() != r.size {
		return fmt.Errorf("core: replay bound to rank %d of %d", r.me, r.size)
	}
	if len(x) != r.xlen {
		return fmt.Errorf("core: replay compiled for len(x)=%d, got %d", r.xlen, len(x))
	}
	if len(halo) != r.haloWords {
		return fmt.Errorf("core: replay delivers %d words, halo has %d", r.haloWords, len(halo))
	}
	runtime.HintTraffic(c, r.traffic)
	defer r.release()

	var mark time.Time
	if r.tele != nil {
		mark = time.Now()
	}
	for _, s := range r.selfs {
		dst := halo[s.haloOff : int(s.haloOff)+len(s.idx)]
		for i, g := range s.idx {
			dst[i] = x[g]
		}
	}
	if r.tele != nil {
		mark = r.tele.SpanMark(telemetry.KGather, -1, mark)
	}

	retains := runtime.SendRetains(c)
	for si := range r.stages {
		st := &r.stages[si]
		fwdSubs, fwdBytes := 0, 0
		for fi := range st.frames {
			f := &st.frames[fi]
			buf := msg.GetFrameLen(len(f.tmpl))
			copy(buf, f.tmpl)
			for _, g := range f.gathers {
				gatherFloats(buf[g.off:int(g.off)+8*len(g.idx)], x, g.idx)
			}
			for _, fw := range f.fwds {
				copy(buf[fw.dstOff:fw.dstOff+fw.n], r.inFrames[fw.frame][fw.srcOff:fw.srcOff+fw.n])
				fwdSubs++
				fwdBytes += int(fw.n)
			}
			err := c.Send(f.to, st.tag, buf)
			if !retains {
				msg.PutFrame(buf)
			}
			if err != nil {
				return fmt.Errorf("core: rank %d replay stage %d send to %d: %w", r.me, si, f.to, err)
			}
		}
		if r.tele != nil {
			if fwdSubs > 0 {
				r.tele.CountForward(si, fwdSubs, fwdBytes)
			}
			mark = r.tele.SpanMark(telemetry.KForward, si, mark)
		}

		pending := append(r.pending[:0], st.recvFrom...)
		for len(pending) > 0 {
			from, raw, err := runtime.RecvAnyOf(c, st.tag, pending)
			if err != nil {
				return fmt.Errorf("core: rank %d replay stage %d recv: %w", r.me, si, err)
			}
			j := -1
			for i, p := range pending {
				if p == from {
					pending = append(pending[:i], pending[i+1:]...)
					break
				}
			}
			for i, p := range st.recvFrom {
				if p == from {
					j = i
					break
				}
			}
			if j < 0 {
				msg.PutFrame(raw)
				return fmt.Errorf("core: rank %d replay stage %d: frame from unexpected sender %d", r.me, si, from)
			}
			r.inFrames[st.inIdx[j]] = raw
			if err := checkFrameHeader(raw, from, r.me, st.inSize[j], st.inNsubs[j]); err != nil {
				return fmt.Errorf("core: rank %d replay stage %d frame from %d: %w", r.me, si, from, err)
			}
			for _, dv := range st.delivers[j] {
				scatterFloats(halo[dv.haloOff:dv.haloOff+dv.words], raw[dv.srcOff:dv.srcOff+8*dv.words])
			}
		}
		if r.tele != nil {
			mark = r.tele.SpanMark(telemetry.KDeliver, si, mark)
		}
	}
	return nil
}

// release recycles the retained inbound frames into the arena and clears
// the retention table for the next iteration.
func (r *Replay) release() {
	for i, b := range r.inFrames {
		if b != nil {
			msg.PutFrame(b)
			r.inFrames[i] = nil
		}
	}
}

// checkFrameHeader validates the fixed parts of a compiled inbound frame:
// total length, endpoints, and submessage count. The per-slot layout is
// trusted — it is pinned by the sender's compiled template.
func checkFrameHeader(raw []byte, from, to int, size, nsubs int32) error {
	if int32(len(raw)) != size {
		return fmt.Errorf("frame has %d bytes, compiled layout expects %d", len(raw), size)
	}
	if got := int(binary.LittleEndian.Uint32(raw[0:])); got != from {
		return fmt.Errorf("frame claims sender %d, transport delivered from %d", got, from)
	}
	if got := int(binary.LittleEndian.Uint32(raw[4:])); got != to {
		return fmt.Errorf("misrouted frame for rank %d", got)
	}
	if got := int32(binary.LittleEndian.Uint32(raw[8:])); got != nsubs {
		return fmt.Errorf("frame carries %d submessages, compiled layout expects %d", got, nsubs)
	}
	return nil
}

// gatherFloats writes x[idx[i]] as little-endian float64s into dst
// (len(dst) == 8*len(idx)), through a zero-copy view when dst is aligned.
func gatherFloats(dst []byte, x []float64, idx []int32) {
	if v, ok := msg.Float64View(dst); ok {
		for i, g := range idx {
			v[i] = x[g]
		}
		return
	}
	for i, g := range idx {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(x[g]))
	}
}

// scatterFloats copies little-endian float64 payload bytes into dst
// (len(src) == 8*len(dst)), through a zero-copy view when src is aligned.
func scatterFloats(dst []float64, src []byte) {
	if v, ok := msg.Float64View(src); ok {
		copy(dst, v)
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}
