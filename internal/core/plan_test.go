package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stfw/internal/vpt"
)

func TestSendSetsNormalize(t *testing.T) {
	s := NewSendSets(8)
	s.Add(0, 3, 5)
	s.Add(0, 3, 2) // duplicate, accumulates
	s.Add(0, 1, 4)
	s.Add(0, 0, 9) // self-send dropped
	s.Add(2, 7, 0) // zero dropped
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(s.Sets[0]) != 2 || s.Sets[0][0] != (Pair{1, 4}) || s.Sets[0][1] != (Pair{3, 7}) {
		t.Errorf("Sets[0] = %+v", s.Sets[0])
	}
	if len(s.Sets[2]) != 0 {
		t.Errorf("Sets[2] = %+v", s.Sets[2])
	}
	if s.TotalWords() != 11 || s.TotalMessages() != 2 {
		t.Errorf("totals = %d words, %d msgs", s.TotalWords(), s.TotalMessages())
	}
}

func TestSendSetsNormalizeErrors(t *testing.T) {
	s := NewSendSets(4)
	s.Add(0, 4, 1)
	if err := s.Normalize(); err == nil {
		t.Error("out-of-range destination accepted")
	}
	s2 := NewSendSets(4)
	s2.Add(0, 1, -3)
	if err := s2.Normalize(); err == nil {
		t.Error("negative volume accepted")
	}
}

func TestRecvSetsTranspose(t *testing.T) {
	s := NewSendSets(4)
	s.Add(0, 1, 10)
	s.Add(0, 2, 20)
	s.Add(3, 1, 30)
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	recv := s.RecvSets()
	if len(recv[1]) != 2 || recv[1][0] != (Pair{0, 10}) || recv[1][1] != (Pair{3, 30}) {
		t.Errorf("recv[1] = %+v", recv[1])
	}
	if len(recv[2]) != 1 || recv[2][0] != (Pair{0, 20}) {
		t.Errorf("recv[2] = %+v", recv[2])
	}
	if len(recv[0]) != 0 || len(recv[3]) != 0 {
		t.Errorf("recv = %+v", recv)
	}
}

func TestCompleteSendSets(t *testing.T) {
	s := Complete(8, 3)
	if s.TotalMessages() != 8*7 {
		t.Errorf("messages = %d", s.TotalMessages())
	}
	if s.TotalWords() != 8*7*3 {
		t.Errorf("words = %d", s.TotalWords())
	}
}

// randomSendSets builds sparse irregular send sets: a few heavy senders plus
// light background traffic, like the paper's latency-bound instances.
func randomSendSets(rng *rand.Rand, K, heavy, lightDeg int, words int64) *SendSets {
	s := NewSendSets(K)
	for h := 0; h < heavy; h++ {
		src := rng.Intn(K)
		for dst := 0; dst < K; dst++ {
			if dst != src && rng.Intn(4) != 0 {
				s.Add(src, dst, 1+rng.Int63n(words))
			}
		}
	}
	for src := 0; src < K; src++ {
		for l := 0; l < lightDeg; l++ {
			dst := rng.Intn(K)
			if dst != src {
				s.Add(src, dst, 1+rng.Int63n(words))
			}
		}
	}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

func TestDirectPlanEqualsT1Plan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := randomSendSets(rng, 16, 2, 3, 8)
	direct, err := BuildDirectPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := BuildPlan(vpt.MustNew(16), s)
	if err != nil {
		t.Fatal(err)
	}
	if direct.TotalMsgs != t1.TotalMsgs || direct.TotalWords != t1.TotalWords {
		t.Fatalf("direct (%d msgs, %d words) != T1 plan (%d msgs, %d words)",
			direct.TotalMsgs, direct.TotalWords, t1.TotalMsgs, t1.TotalWords)
	}
	for p := 0; p < 16; p++ {
		if direct.SentMsgs[p] != t1.SentMsgs[p] || direct.SentWords[p] != t1.SentWords[p] {
			t.Errorf("rank %d: direct %d/%d vs T1 %d/%d", p,
				direct.SentMsgs[p], direct.SentWords[p], t1.SentMsgs[p], t1.SentWords[p])
		}
	}
	if len(direct.Stages) != 1 || len(t1.Stages) != 1 {
		t.Error("both plans must have exactly one stage")
	}
}

func TestPlanDeliversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][]int{{16}, {4, 4}, {2, 2, 2, 2}, {8, 2}, {2, 8}} {
		tp := vpt.MustNew(dims...)
		s := randomSendSets(rng, tp.Size(), 1, 2, 5)
		p, err := BuildPlan(tp, s)
		if err != nil {
			t.Fatal(err)
		}
		if p.DeliveredWords != s.TotalWords() {
			t.Errorf("%v: delivered %d, want %d", dims, p.DeliveredWords, s.TotalWords())
		}
		// Conservation: what is sent in total equals what is received.
		var sentW, recvW int64
		var sentM, recvM int
		for q := 0; q < tp.Size(); q++ {
			sentW += p.SentWords[q]
			recvW += p.RecvWords[q]
			sentM += p.SentMsgs[q]
			recvM += p.RecvMsgs[q]
		}
		if sentW != recvW || sentW != p.TotalWords {
			t.Errorf("%v: volume not conserved: sent %d recv %d total %d", dims, sentW, recvW, p.TotalWords)
		}
		if sentM != recvM || sentM != p.TotalMsgs {
			t.Errorf("%v: message counts not conserved", dims)
		}
	}
}

func TestPlanRespectsNeighborhood(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tp := vpt.MustNew(4, 2, 4)
	s := randomSendSets(rng, tp.Size(), 2, 3, 6)
	p, err := BuildPlan(tp, s)
	if err != nil {
		t.Fatal(err)
	}
	for d, stage := range p.Stages {
		for _, f := range stage {
			if tp.FirstDiff(f.From, f.To) != d || tp.Hamming(f.From, f.To) != 1 {
				t.Fatalf("stage %d frame %d->%d is not a dimension-%d neighbor pair", d, f.From, f.To, d)
			}
			if f.Words <= 0 || f.Subs <= 0 {
				t.Fatalf("stage %d has an empty frame %+v", d, f)
			}
		}
	}
}

func TestPlanMessageCountBound(t *testing.T) {
	// Worst case: complete exchange. Message counts must reach exactly the
	// bound sum(k_d - 1) at every process.
	for _, dims := range [][]int{{4, 4}, {2, 2, 2, 2}, {8, 2}} {
		tp := vpt.MustNew(dims...)
		s := Complete(tp.Size(), 1)
		p, err := BuildPlan(tp, s)
		if err != nil {
			t.Fatal(err)
		}
		bound := MaxMessageBound(tp)
		for q := 0; q < tp.Size(); q++ {
			if p.SentMsgs[q] != bound {
				t.Errorf("%v rank %d: sent %d msgs, bound %d", dims, q, p.SentMsgs[q], bound)
			}
		}
	}
}

func TestPlanVolumeMatchesClosedForm(t *testing.T) {
	// Section 4: total forwarded volume for the complete exchange on a
	// uniform k^n topology is K * s * sum_l (k-1)^l C(n,l) l.
	for _, c := range []struct{ k, n int }{{4, 2}, {2, 4}, {4, 3}, {8, 2}, {16, 1}} {
		dims := make([]int, c.n)
		for i := range dims {
			dims[i] = c.k
		}
		tp := vpt.MustNew(dims...)
		const s = 3
		plan, err := BuildPlan(tp, Complete(tp.Size(), s))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(tp.Size()) * ExactForwardVolume(c.k, c.n, s)
		if got := float64(plan.TotalWords); math.Abs(got-want) > 0.5 {
			t.Errorf("k=%d n=%d: routed volume %v, closed form %v", c.k, c.n, got, want)
		}
	}
}

func TestPlanBufferBound(t *testing.T) {
	// Section 4: at most s*(K-1) words resident at any process.
	for _, c := range []struct{ k, n int }{{4, 2}, {2, 4}, {4, 3}} {
		dims := make([]int, c.n)
		for i := range dims {
			dims[i] = c.k
		}
		tp := vpt.MustNew(dims...)
		const s = 2
		plan, err := BuildPlan(tp, Complete(tp.Size(), s))
		if err != nil {
			t.Fatal(err)
		}
		bound := BufferBound(tp.Size(), s)
		for q := 0; q < tp.Size(); q++ {
			if plan.MaxBufferWords[q] > bound {
				t.Errorf("k=%d n=%d rank %d: buffer %d exceeds bound %d",
					c.k, c.n, q, plan.MaxBufferWords[q], bound)
			}
		}
		// The bound is tight for the complete exchange.
		if plan.MaxBufferWords[0] != bound {
			t.Errorf("k=%d n=%d: buffer %d, expected tight bound %d",
				c.k, c.n, plan.MaxBufferWords[0], bound)
		}
	}
}

func TestPlanVolumeMonotoneInDimension(t *testing.T) {
	// Increasing VPT dimension (for fixed K) must not decrease volume and
	// must not increase the message bound.
	rng := rand.New(rand.NewSource(3))
	K := 64
	s := randomSendSets(rng, K, 3, 4, 10)
	var prevVol int64 = -1
	prevBound := 1 << 30
	for n := 1; n <= vpt.MaxDim(K); n++ {
		tp, err := vpt.NewBalanced(K, n)
		if err != nil {
			t.Fatal(err)
		}
		p, err := BuildPlan(tp, s)
		if err != nil {
			t.Fatal(err)
		}
		if p.TotalWords < prevVol {
			t.Errorf("n=%d: volume decreased from %d to %d", n, prevVol, p.TotalWords)
		}
		if b := MaxMessageBound(tp); b > prevBound {
			t.Errorf("n=%d: message bound increased from %d to %d", n, prevBound, b)
		} else {
			prevBound = b
		}
		prevVol = p.TotalWords
	}
}

func TestPlanTopologySizeMismatch(t *testing.T) {
	s := NewSendSets(8)
	if _, err := BuildPlan(vpt.MustNew(4, 4), s); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestPlanEmptySendSets(t *testing.T) {
	tp := vpt.MustNew(4, 4)
	p, err := BuildPlan(tp, NewSendSets(16))
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalMsgs != 0 || p.TotalWords != 0 {
		t.Errorf("empty send sets produced traffic: %+v", p)
	}
}

func TestAnalysisClosedForms(t *testing.T) {
	// Values from Section 4 for K = 256: blowup ratios 3.01 (T4), 4.02
	// (T8), 1.88 (T2) vs loose bounds 4, 8, 2.
	for _, c := range []struct {
		k, n  int
		want  float64
		loose float64
	}{
		{4, 4, 3.01, 4},
		{2, 8, 4.02, 8},
		{16, 2, 1.88, 2},
	} {
		got := VolumeBlowup(c.k, c.n)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("VolumeBlowup(%d,%d) = %.3f, paper says %.2f", c.k, c.n, got, c.want)
		}
		loose := LooseForwardVolume(c.k, c.n, 1) / DirectVolume(256, 1)
		if math.Abs(loose-c.loose) > 1e-9 {
			t.Errorf("loose ratio = %v, want %v", loose, c.loose)
		}
	}
}

func TestBinomial(t *testing.T) {
	for _, c := range []struct {
		n, k int
		want float64
	}{
		{4, 2, 6}, {8, 0, 1}, {8, 8, 1}, {8, 3, 56}, {5, 6, 0}, {5, -1, 0},
	} {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestExpectedForwards(t *testing.T) {
	// For the hypercube T_lgK(2,...,2) with K=4: destinations at distance
	// 1,1,2 -> mean 4/3.
	if got, want := ExpectedForwards(2, 2), 4.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedForwards(2,2) = %v, want %v", got, want)
	}
	// Direct topology: every destination is one hop.
	if got := ExpectedForwards(16, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("ExpectedForwards(16,1) = %v, want 1", got)
	}
}

func TestTopologyVolumeBlowupMatchesUniform(t *testing.T) {
	for _, c := range []struct{ k, n int }{{4, 2}, {2, 4}, {4, 4}} {
		dims := make([]int, c.n)
		for i := range dims {
			dims[i] = c.k
		}
		tp := vpt.MustNew(dims...)
		a := TopologyVolumeBlowup(tp)
		b := VolumeBlowup(c.k, c.n)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("k=%d n=%d: TopologyVolumeBlowup %v != VolumeBlowup %v", c.k, c.n, a, b)
		}
	}
}

func TestMaxMessageBoundValues(t *testing.T) {
	if got := MaxMessageBound(vpt.MustNew(64)); got != 63 {
		t.Errorf("T1(64) bound = %d", got)
	}
	if got := MaxMessageBound(vpt.MustNew(8, 8)); got != 14 {
		t.Errorf("T2(8,8) bound = %d", got)
	}
	if got := MaxMessageBound(vpt.MustNew(2, 2, 2, 2, 2, 2)); got != 6 {
		t.Errorf("T6 bound = %d", got)
	}
	tp := vpt.MustNew(4, 2, 4)
	if got := StageMessageBound(tp, 1); got != 1 {
		t.Errorf("stage bound = %d", got)
	}
}

func BenchmarkBuildPlanComplete256T4(b *testing.B) {
	tp, _ := vpt.NewBalanced(256, 4)
	s := Complete(256, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPlan(tp, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPlanSparse4096T6(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randomSendSets(rng, 4096, 4, 8, 16)
	tp, _ := vpt.NewBalanced(4096, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPlan(tp, s); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: for random small topologies and send sets, the plan conserves
// volume (sent = received = routed), respects the per-process bound, and
// its total volume equals the Hamming-weighted send sets.
func TestQuickPlanConservation(t *testing.T) {
	f := func(seed int64, dimSel uint8) bool {
		dimChoices := [][]int{{8}, {2, 4}, {4, 2}, {2, 2, 2}, {3, 3}, {2, 3}}
		dims := dimChoices[int(dimSel)%len(dimChoices)]
		tp := vpt.MustNew(dims...)
		K := tp.Size()
		rng := rand.New(rand.NewSource(seed))
		s := NewSendSets(K)
		for i := 0; i < K; i++ {
			for j := 0; j < 2; j++ {
				dst := rng.Intn(K)
				if dst != i {
					s.Add(i, dst, int64(1+rng.Intn(5)))
				}
			}
		}
		if err := s.Normalize(); err != nil {
			return false
		}
		p, err := BuildPlan(tp, s)
		if err != nil {
			return false
		}
		var sent, recv, hamming int64
		for q := 0; q < K; q++ {
			sent += p.SentWords[q]
			recv += p.RecvWords[q]
			if p.SentMsgs[q] > MaxMessageBound(tp) {
				return false
			}
		}
		for src, set := range s.Sets {
			for _, pr := range set {
				hamming += pr.Words * int64(tp.Hamming(src, pr.Dst))
			}
		}
		return sent == recv && sent == p.TotalWords && p.TotalWords == hamming &&
			p.DeliveredWords == s.TotalWords()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
