package core

import (
	"fmt"
	"time"

	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
)

// stageMachine is the one engine behind every exchange path: it executes a
// StageSchedule stage by stage — send the stage's frames, receive the
// stage's expected frames, repeat — and delegates everything front-end
// specific to four hooks. The machine owns frame encoding/decoding, the
// From/To misroute check, frame-buffer lifetime, the receive policy, and
// the per-stage telemetry span; the hooks own routing semantics:
//
//   - outSubs(d, j, slot) supplies the submessages of the j-th outbound
//     frame of stage d (Exchange drains a forward buffer, Persistent fills
//     its learned slot list, DirectExchange wraps one payload);
//   - onFrame(d, from, subs) consumes a validated inbound frame (Exchange
//     scatters into later-stage buffers, Persistent stages into its store,
//     DirectExchange appends the delivery). It returns the payload bytes
//     delivered to this rank in the frame, feeding the stage probe;
//   - onStage(d, deliveredBytes), optional, fires at each stage boundary
//     (the occupancy probe of WithStageProbe);
//   - finish(pooled) runs after the last stage, before pooled frames are
//     recycled; pooled reports whether inbound payloads alias pooled frame
//     buffers and must be copied out (msg.CompactSubs) to survive the call.
//
// Two execution disciplines share the loop, selected by ordered:
//
//   - ordered (the legacy engine, kept for paper-reproduction runs): sends
//     issued inline with one fresh frame copy each, receives in the
//     schedule's fixed sender order, inbound frames never pooled;
//   - pipelined (default): a worker goroutine drains a FIFO of stage send
//     batches encoded into pooled arena frames, receives are served in
//     arrival order (runtime.RecvPolicy over RecvAnyOf), and inbound
//     frames are retained until the exchange ends — onFrame's submessages
//     alias them — then recycled after finish copies deliveries out.
type stageMachine struct {
	sched      *StageSchedule
	ordered    bool
	inlineSend bool // pipelined only: issue pooled sends inline instead of via the worker
	tele       *telemetry.Rank
	// traffic, when set, is the schedule's per-stage traffic summary,
	// offered to the transport (runtime.HintTraffic) before the first
	// stage so schedule-aware transports can run zero-speculation flow
	// control. Front-ends pass a cached slice, keeping repeat runs
	// allocation-free.
	traffic []runtime.StageTraffic
	outSubs func(stage, slot int, s SendSlot) ([]msg.Submessage, error)
	onFrame func(stage, from int, subs []msg.Submessage) (deliveredBytes int, err error)
	onStage func(stage, deliveredBytes int)
	finish  func(pooled bool) error
}

// run executes the schedule on this rank's communicator. It is the only
// stage loop in the package: Exchange, DirectExchange, Persistent (learning
// and replay) all pass through here, and Replay.Run is the compiled
// specialization of the same structure.
func (sm *stageMachine) run(c runtime.Comm, me int) error {
	runtime.HintTraffic(c, sm.traffic)
	var (
		sw        *sendWorker
		retained  [][]byte     // pipelined: received pooled frames, recycled on return
		frameArr  []stageFrame // pipelined: backing array for all stages' send batches
		encodeBuf []byte       // ordered: reused encode scratch
		decoded   msg.Message  // pipelined: DecodeInto scratch, reused across frames
		retains   bool         // pipelined inline sends: transport retains frames
		pol       runtime.RecvPolicy
	)
	if !sm.ordered {
		retains = runtime.SendRetains(c)
		sends, recvs := 0, 0
		for i := range sm.sched.Stages {
			sends += len(sm.sched.Stages[i].Sends)
			recvs += len(sm.sched.Stages[i].RecvFrom)
		}
		frameArr = make([]stageFrame, 0, sends)
		retained = make([][]byte, 0, recvs)
		defer func() {
			for _, b := range retained {
				msg.PutFrame(b)
			}
		}()
		if !sm.inlineSend {
			sw = startSendWorker(c, me, len(sm.sched.Stages))
			defer sw.join()
		}
		pol.Arrival = true
	}

	var stageStart time.Time
	for d := range sm.sched.Stages {
		st := &sm.sched.Stages[d]
		if sm.tele != nil {
			stageStart = time.Now()
		}

		// Emit the stage's outbound frames in slot order. The ordered
		// discipline sends inline; the pipelined one hands the batch to the
		// worker (which owns its subslice from then on; stages use disjoint
		// regions of the shared backing array) and overlaps it with the
		// receives below.
		if sm.ordered {
			for j := range st.Sends {
				slot := st.Sends[j]
				subs, err := sm.outSubs(d, j, slot)
				if err != nil {
					return err
				}
				m := msg.Message{From: me, To: slot.To, Subs: subs}
				encodeBuf = msg.Encode(encodeBuf[:0], &m)
				frame := append([]byte(nil), encodeBuf...)
				if err := c.Send(slot.To, st.Tag, frame); err != nil {
					return fmt.Errorf("core: rank %d stage %d send to %d: %w", me, d, slot.To, err)
				}
			}
		} else if sm.inlineSend {
			for j := range st.Sends {
				slot := st.Sends[j]
				subs, err := sm.outSubs(d, j, slot)
				if err != nil {
					return err
				}
				if err := sendPooledFrame(c, me, slot.To, st.Tag, subs, retains); err != nil {
					return fmt.Errorf("core: rank %d stage %d send to %d: %w", me, d, slot.To, err)
				}
			}
		} else {
			outs := frameArr[len(frameArr) : len(frameArr) : len(frameArr)+len(st.Sends)]
			for j := range st.Sends {
				slot := st.Sends[j]
				subs, err := sm.outSubs(d, j, slot)
				if err != nil {
					return err
				}
				outs = append(outs, stageFrame{to: slot.To, subs: subs})
			}
			frameArr = frameArr[:len(frameArr)+len(outs)]
			sw.enqueue(st.Tag, outs)
		}

		// Receive one frame per expected sender, in the order the policy
		// dictates. The expected sender comes from the policy/matcher, never
		// from loop position, so the misroute check is valid under any
		// delivery order.
		pol.Reset(st.RecvFrom)
		stageDelivered := 0
		for pol.Outstanding() > 0 {
			from, raw, err := pol.Next(c, st.Tag)
			if err != nil {
				if from >= 0 {
					return fmt.Errorf("core: rank %d stage %d recv from %d: %w", me, d, from, err)
				}
				return fmt.Errorf("core: rank %d stage %d recv: %w", me, d, err)
			}
			if sm.ordered {
				m, derr := msg.Decode(raw)
				if derr != nil {
					return fmt.Errorf("core: rank %d stage %d frame from %d: %w", me, d, from, derr)
				}
				decoded = *m
			} else {
				retained = append(retained, raw)
				if derr := msg.DecodeInto(&decoded, raw); derr != nil {
					return fmt.Errorf("core: rank %d stage %d frame from %d: %w", me, d, from, derr)
				}
			}
			if decoded.From != from || decoded.To != me {
				return fmt.Errorf("core: rank %d stage %d: misrouted frame %d->%d arrived from %d",
					me, d, decoded.From, decoded.To, from)
			}
			delivered, err := sm.onFrame(d, from, decoded.Subs)
			if err != nil {
				return err
			}
			stageDelivered += delivered
		}
		if sm.onStage != nil {
			sm.onStage(d, stageDelivered)
		}
		if sm.tele != nil {
			stageStart = sm.tele.SpanMark(telemetry.KStage, d, stageStart)
		}
	}
	if sw != nil {
		if err := sw.join(); err != nil {
			return err
		}
	}
	// finish runs before the deferred frame recycle: delivered payloads that
	// alias retained frames are still intact here.
	return sm.finish(!sm.ordered)
}

// sendPooledFrame encodes one frame into a pooled arena buffer and hands it
// to the transport, recycling the buffer immediately when the transport does
// not retain it (runtime.SendRetains); on retaining transports the receiving
// rank recycles it instead.
func sendPooledFrame(c runtime.Comm, me, to, tag int, subs []msg.Submessage, retains bool) error {
	m := msg.Message{From: me, To: to, Subs: subs}
	buf := msg.Encode(msg.GetFrameCap(msg.EncodedSize(&m)), &m)
	err := c.Send(to, tag, buf)
	if !retains {
		msg.PutFrame(buf)
	}
	return err
}

type stageFrame struct {
	to   int
	subs []msg.Submessage
}

type stageBatch struct {
	tag  int
	outs []stageFrame
}

// sendWorker is the per-exchange send goroutine of the pipelined
// discipline: it drains stage batches in FIFO order, encoding every frame
// into a pooled buffer and handing it to the transport. On retaining
// transports the receiving rank recycles the buffer; otherwise the worker
// does, right after Send returns. After the first send error the worker
// drains (and drops) remaining batches so the enqueueing side never blocks;
// join surfaces the error.
type sendWorker struct {
	ch     chan stageBatch
	done   chan struct{}
	err    error // written by the worker, read after <-done
	joined bool
}

func startSendWorker(c runtime.Comm, me, stages int) *sendWorker {
	sw := &sendWorker{ch: make(chan stageBatch, stages), done: make(chan struct{})}
	retains := runtime.SendRetains(c)
	go func() {
		defer close(sw.done)
		for batch := range sw.ch {
			if sw.err != nil {
				continue
			}
			for _, of := range batch.outs {
				if err := sendPooledFrame(c, me, of.to, batch.tag, of.subs, retains); err != nil {
					sw.err = fmt.Errorf("core: rank %d send to %d (tag %d): %w", me, of.to, batch.tag, err)
					break
				}
			}
		}
	}()
	return sw
}

func (sw *sendWorker) enqueue(tag int, outs []stageFrame) { sw.ch <- stageBatch{tag: tag, outs: outs} }

// join closes the batch queue, waits for the worker to finish, and returns
// its first error. Safe to call twice (the engine joins on the happy path
// and again via defer).
func (sw *sendWorker) join() error {
	if !sw.joined {
		sw.joined = true
		close(sw.ch)
	}
	<-sw.done
	return sw.err
}
