package core

import (
	"fmt"
	"sort"

	"stfw/internal/vpt"
)

// synthPair identifies one (src, dst) payload pair of a synthetic pattern.
type synthPair struct{ src, dst int }

// synthWorld constructs every rank's Persistent directly from a global pair
// list — the same state a learning run over a real transport would record,
// but computed locally: each pair's dimension-ordered route is walked and
// its slot recorded at every hop, with slots within a frame in ascending
// (src, dst) order (the canonical order Patch also appends in). This gives
// the patch tests a fast, deterministic ground truth: synthWorld(mutated)
// is what Patch-ing synthWorld(base) must be equivalent to.
func synthWorld(t *vpt.Topology, pairs map[synthPair]int) []*Persistent {
	K := t.Size()
	sorted := make([]synthPair, 0, len(pairs))
	for pr := range pairs {
		sorted = append(sorted, pr)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].src != sorted[j].src {
			return sorted[i].src < sorted[j].src
		}
		return sorted[i].dst < sorted[j].dst
	})

	ps := make([]*Persistent, K)
	for me := 0; me < K; me++ {
		p := &Persistent{
			topo:     t,
			rank:     me,
			layout:   make([][]pFrame, t.N()),
			dests:    map[int]struct{}{},
			sizes:    map[slotKey]int{},
			inLayout: make([][][]slotKey, t.N()),
			inFrom:   make([][]int, t.N()),
		}
		// Slot sets per outbound (stage, neighbor) and inbound (stage,
		// sender) frame; ascending pair iteration yields canonical order.
		out := make([]map[int][]slotKey, t.N())
		in := make([]map[int][]slotKey, t.N())
		for d := range out {
			out[d] = map[int][]slotKey{}
			in[d] = map[int][]slotKey{}
		}
		for _, pr := range sorted {
			size := pairs[pr]
			k := slotKey{src: int32(pr.src), dst: int32(pr.dst)}
			h, involved := routeHops(t, me, pr.src, pr.dst)
			if !involved {
				continue
			}
			p.sizes[k] = size
			if h.origin {
				p.dests[pr.dst] = struct{}{}
				p.destList = append(p.destList, pr.dst)
			}
			if h.deliver {
				p.deliver = append(p.deliver, k)
			}
			if h.sendD >= 0 {
				out[h.sendD][h.sendTo] = append(out[h.sendD][h.sendTo], k)
			}
			if h.recvD >= 0 {
				in[h.recvD][h.recvFrom] = append(in[h.recvD][h.recvFrom], k)
			}
		}
		// Frame skeleton: every dimension-d neighbor in digit order, on both
		// sides, exactly like a learning run records (empty frames included
		// on the receive side; empty outbound frames are the nil marker).
		for d := 0; d < t.N(); d++ {
			myDigit := t.Digit(me, d)
			for x := 0; x < t.Dim(d); x++ {
				if x == myDigit {
					continue
				}
				nbr := t.WithDigit(me, d, x)
				if slots := out[d][nbr]; len(slots) > 0 {
					p.layout[d] = append(p.layout[d], pFrame{to: nbr, slots: slots})
				}
				p.inFrom[d] = append(p.inFrom[d], nbr)
				p.inLayout[d] = append(p.inLayout[d], in[d][nbr])
			}
		}
		p.indexNeighborFrames()
		ps[me] = p
	}
	return ps
}

// synthDeltas splits a global mutation list into per-rank PatchDeltas the
// way the dynamic census would: each rank receives exactly the pairs whose
// route involves it. Out-of-range pairs are handed to every rank (their
// route is undefined; Patch must reject them before routing).
func synthDeltas(t *vpt.Topology, muts []PatchPair) []*PatchDelta {
	K := t.Size()
	deltas := make([]*PatchDelta, K)
	for me := 0; me < K; me++ {
		deltas[me] = &PatchDelta{}
	}
	for _, m := range muts {
		if m.Src < 0 || m.Src >= K || m.Dst < 0 || m.Dst >= K {
			for me := 0; me < K; me++ {
				deltas[me].Pairs = append(deltas[me].Pairs, m)
			}
			continue
		}
		for me := 0; me < K; me++ {
			if _, involved := routeHops(t, me, m.Src, m.Dst); involved {
				deltas[me].Pairs = append(deltas[me].Pairs, m)
			}
		}
	}
	return deltas
}

// applyMutations produces the mutated global pair map (removes first, then
// adds — the resize convention). It assumes the mutation list is globally
// valid; callers only use it after every rank accepted its delta.
func applyMutations(pairs map[synthPair]int, muts []PatchPair) map[synthPair]int {
	out := make(map[synthPair]int, len(pairs))
	for pr, size := range pairs {
		out[pr] = size
	}
	for _, m := range muts {
		if m.Remove {
			delete(out, synthPair{m.Src, m.Dst})
		}
	}
	for _, m := range muts {
		if !m.Remove {
			out[synthPair{m.Src, m.Dst}] = m.Size
		}
	}
	return out
}

// slotSet renders a slot list as a sorted copy for order-insensitive
// comparison (Patch appends additions at the tail, synthWorld sorts).
func slotSet(slots []slotKey) []slotKey {
	out := append([]slotKey(nil), slots...)
	sortSlotKeys(out)
	return out
}

func slotsEqual(a, b []slotKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// comparePersistent checks structural equivalence of two ranks' learned
// state. exact=true demands identical slot sequences everywhere (used to
// prove a rejected Patch mutated nothing); exact=false compares frames as
// slot sets (a patched world and a from-scratch world order slots
// differently within a frame, but must carry the same slots, sizes,
// deliveries, and destinations).
func comparePersistent(a, b *Persistent, exact bool) error {
	if a.rank != b.rank {
		return fmt.Errorf("rank %d vs %d", a.rank, b.rank)
	}
	if len(a.sizes) != len(b.sizes) {
		return fmt.Errorf("rank %d: %d recorded sizes vs %d", a.rank, len(a.sizes), len(b.sizes))
	}
	for k, n := range a.sizes {
		if bn, ok := b.sizes[k]; !ok || bn != n {
			return fmt.Errorf("rank %d: size of %d->%d is %d vs %d", a.rank, k.src, k.dst, n, b.sizes[k])
		}
	}
	if !slotsEqual(a.deliver, b.deliver) {
		return fmt.Errorf("rank %d: deliver %v vs %v", a.rank, a.deliver, b.deliver)
	}
	if len(a.destList) != len(b.destList) {
		return fmt.Errorf("rank %d: destinations %v vs %v", a.rank, a.destList, b.destList)
	}
	for i := range a.destList {
		if a.destList[i] != b.destList[i] {
			return fmt.Errorf("rank %d: destinations %v vs %v", a.rank, a.destList, b.destList)
		}
	}
	norm := func(s []slotKey) []slotKey {
		if exact {
			return append([]slotKey(nil), s...)
		}
		return slotSet(s)
	}
	for d := range a.nbrFrames {
		if len(a.nbrFrames[d]) != len(b.nbrFrames[d]) {
			return fmt.Errorf("rank %d stage %d: %d neighbors vs %d", a.rank, d, len(a.nbrFrames[d]), len(b.nbrFrames[d]))
		}
		for j := range a.nbrFrames[d] {
			af, bf := a.nbrFrames[d][j], b.nbrFrames[d][j]
			if af.to != bf.to {
				return fmt.Errorf("rank %d stage %d slot %d: neighbor %d vs %d", a.rank, d, j, af.to, bf.to)
			}
			var as, bs []slotKey
			if af.f != nil {
				as = af.f.slots
			}
			if bf.f != nil {
				bs = bf.f.slots
			}
			if !slotsEqual(norm(as), norm(bs)) {
				return fmt.Errorf("rank %d stage %d frame to %d: slots %v vs %v", a.rank, d, af.to, as, bs)
			}
			if af.f != nil && len(af.subs) != len(af.f.slots) {
				return fmt.Errorf("rank %d stage %d frame to %d: scratch sized %d for %d slots",
					a.rank, d, af.to, len(af.subs), len(af.f.slots))
			}
		}
		if len(a.inFrom[d]) != len(b.inFrom[d]) {
			return fmt.Errorf("rank %d stage %d: %d inbound frames vs %d", a.rank, d, len(a.inFrom[d]), len(b.inFrom[d]))
		}
		for j := range a.inFrom[d] {
			if a.inFrom[d][j] != b.inFrom[d][j] {
				return fmt.Errorf("rank %d stage %d: inbound sender %d vs %d", a.rank, d, a.inFrom[d][j], b.inFrom[d][j])
			}
			if !slotsEqual(norm(a.inLayout[d][j]), norm(b.inLayout[d][j])) {
				return fmt.Errorf("rank %d stage %d frame from %d: slots %v vs %v",
					a.rank, d, a.inFrom[d][j], a.inLayout[d][j], b.inLayout[d][j])
			}
		}
	}
	return nil
}

// synthGather builds word-aligned gather lists for a rank's destinations,
// matching the sizes the pattern records for its own pairs.
func synthGather(p *Persistent, xlen int) map[int][]int32 {
	g := make(map[int][]int32, len(p.destList))
	for _, dst := range p.destList {
		words := p.sizes[slotKey{src: int32(p.rank), dst: int32(dst)}] / 8
		idx := make([]int32, words)
		for i := range idx {
			idx[i] = int32((dst*11 + i*3) % xlen)
		}
		g[dst] = idx
	}
	return g
}
