// Differential conformance suite: the ordered and pipelined exchange
// engines must produce byte-identical deliveries on every supported
// transport, for every topology shape. Each cell of the (transport, engine,
// topology) table runs a seeded exchange and compares the full Delivered
// payloads of every rank against a reference computed directly from the
// send sets — so the two engines are also proven identical to each other.
package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"stfw/internal/core"
	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/hier"
	"stfw/internal/transport/tcpnet"
	"stfw/internal/transport/udpnet"
	"stfw/internal/vpt"
)

// confTelemetry switches the whole suite to run with the live telemetry
// layer attached (wrapped comms + exchange span hooks). The CI telemetry
// job sets STFW_TELEMETRY=1 and runs the suite under -race, proving the
// instrumentation neither perturbs results nor races with the engines.
var confTelemetry = os.Getenv("STFW_TELEMETRY") != ""

// confInstrument wraps the world's comms in counting wrappers when
// STFW_TELEMETRY is set and returns the registry (nil when disabled —
// core.WithTelemetry(reg.Rank(r)) then wires a nil, disabled collector).
func confInstrument(t *testing.T, comms []runtime.Comm, stages int) *telemetry.Registry {
	t.Helper()
	if !confTelemetry {
		return nil
	}
	reg, err := telemetry.New(telemetry.Config{Ranks: len(comms), Stages: stages})
	if err != nil {
		t.Fatal(err)
	}
	reg.WrapComms(comms, func(tag int) (int, bool) {
		return core.TagStage(tag, stages)
	})
	return reg
}

// confCheckTelemetry asserts the collectors saw the run and that the span
// rings export a structurally valid Perfetto trace.
func confCheckTelemetry(t *testing.T, reg *telemetry.Registry) {
	t.Helper()
	if reg == nil {
		return
	}
	s := reg.Snapshot()
	if tot := s.Totals(); tot.Sends == 0 || tot.Recvs == 0 {
		t.Fatalf("telemetry recorded no traffic: %+v", tot)
	}
	var buf bytes.Buffer
	if err := reg.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// confPayload derives a deterministic, per-(src,dst) payload with a length
// that is intentionally not a multiple of 8, exercising the codec on
// unaligned data.
func confPayload(src, dst int) []byte {
	n := 1 + (src*31+dst*7)%45
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(src*17 + dst*29 + i*13)
	}
	return b
}

// confSendSets builds a seeded irregular pattern: a few heavy ranks with
// near-complete send lists plus light random traffic, mirroring the
// hot-spot patterns of the paper's experiments.
func confSendSets(seed int64, K int) map[int][]int {
	rng := rand.New(rand.NewSource(seed))
	dests := make(map[int][]int, K)
	for h := 0; h < 2; h++ {
		src := rng.Intn(K)
		for dst := 0; dst < K; dst++ {
			if dst != src && rng.Intn(4) != 0 {
				dests[src] = append(dests[src], dst)
			}
		}
	}
	for src := 0; src < K; src++ {
		for l := 0; l < 2; l++ {
			if dst := rng.Intn(K); dst != src {
				dests[src] = append(dests[src], dst)
			}
		}
	}
	for src, ds := range dests { // dedup
		seen := map[int]bool{}
		out := ds[:0]
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
		dests[src] = out
	}
	return dests
}

// refDeliveries computes what every rank must receive, sorted the way
// Exchange sorts (by Src, then Dst — Dst is constant per rank here).
func refDeliveries(K int, dests map[int][]int) [][]msg.Submessage {
	ref := make([][]msg.Submessage, K)
	for src := 0; src < K; src++ { // ascending src = sorted order
		for _, dst := range dests[src] {
			ref[dst] = append(ref[dst], msg.Submessage{Src: src, Dst: dst, Data: confPayload(src, dst)})
		}
	}
	return ref
}

// runConformance executes one table cell over the given communicators and
// checks byte-identical deliveries.
func runConformance(t *testing.T, comms []runtime.Comm, tp *vpt.Topology, dests map[int][]int, opts ...core.ExchangeOpt) {
	t.Helper()
	K := len(comms)
	reg := confInstrument(t, comms, tp.N())
	got := make([]*core.Delivered, K)
	err := runtime.Run(comms, func(c runtime.Comm) error {
		payloads := map[int][]byte{}
		for _, dst := range dests[c.Rank()] {
			payloads[dst] = confPayload(c.Rank(), dst)
		}
		rankOpts := append(opts[:len(opts):len(opts)], core.WithTelemetry(reg.Rank(c.Rank())))
		d, err := core.Exchange(c, tp, payloads, rankOpts...)
		if err != nil {
			return err
		}
		got[c.Rank()] = d
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	confCheckTelemetry(t, reg)
	ref := refDeliveries(K, dests)
	for q := 0; q < K; q++ {
		if len(got[q].Subs) != len(ref[q]) {
			t.Fatalf("rank %d: %d deliveries, want %d", q, len(got[q].Subs), len(ref[q]))
		}
		for i, sub := range got[q].Subs {
			w := ref[q][i]
			if sub.Src != w.Src || sub.Dst != w.Dst || !bytes.Equal(sub.Data, w.Data) {
				t.Fatalf("rank %d delivery %d: got (%d->%d, %x), want (%d->%d, %x)",
					q, i, sub.Src, sub.Dst, sub.Data, w.Src, w.Dst, w.Data)
			}
		}
	}
}

// conformanceTopologies enumerates the VPT shapes of the suite: every
// balanced dimension for the power-of-two sizes, plus mixed-radix factored
// topologies for non-power-of-two K.
func conformanceTopologies(t *testing.T) []*vpt.Topology {
	t.Helper()
	var tps []*vpt.Topology
	for _, K := range []int{8, 16, 64} {
		for n := 1; n <= vpt.MaxDim(K); n++ {
			tp, err := vpt.NewBalanced(K, n)
			if err != nil {
				t.Fatal(err)
			}
			tps = append(tps, tp)
		}
	}
	for _, c := range []struct{ K, n int }{{12, 2}, {18, 2}, {60, 3}} {
		tp, err := vpt.NewFactored(c.K, c.n)
		if err != nil {
			t.Fatal(err)
		}
		tps = append(tps, tp)
	}
	return tps
}

func engineName(ordered bool) string {
	if ordered {
		return "ordered"
	}
	return "pipelined"
}

func TestConformanceChanpt(t *testing.T) {
	for _, tp := range conformanceTopologies(t) {
		for _, ordered := range []bool{false, true} {
			tp := tp
			ordered := ordered
			t.Run(fmt.Sprintf("K=%d/dims=%v/%s", tp.Size(), tp.Dims(), engineName(ordered)), func(t *testing.T) {
				t.Parallel()
				w, err := chanpt.NewWorld(tp.Size(), 2)
				if err != nil {
					t.Fatal(err)
				}
				dests := confSendSets(int64(tp.Size()), tp.Size())
				var opts []core.ExchangeOpt
				if ordered {
					opts = append(opts, core.Ordered())
				}
				runConformance(t, w.Comms(), tp, dests, opts...)
			})
		}
	}
}

func TestConformanceTCP(t *testing.T) {
	for _, tp := range conformanceTopologies(t) {
		if tp.Size() >= 64 && tp.N() == 1 {
			// The 1-dimensional VPT at K=64 is a full mesh: ~K^2 loopback
			// sockets, enough to trip default fd limits. The mesh case is
			// covered at K=8 and K=16.
			continue
		}
		if testing.Short() && tp.Size() > 16 {
			continue
		}
		for _, ordered := range []bool{false, true} {
			tp := tp
			ordered := ordered
			t.Run(fmt.Sprintf("K=%d/dims=%v/%s", tp.Size(), tp.Dims(), engineName(ordered)), func(t *testing.T) {
				w, err := tcpnet.NewWorld(tp.Size())
				if err != nil {
					t.Fatal(err)
				}
				defer w.Close()
				dests := confSendSets(int64(tp.Size()), tp.Size())
				var opts []core.ExchangeOpt
				if ordered {
					opts = append(opts, core.Ordered())
				}
				runConformance(t, w.Comms(), tp, dests, opts...)
			})
		}
	}
}

// TestConformanceUDP runs the full differential suite over udpnet's
// batched-datagram transport. Unlike tcpnet, the K=64 mesh is kept: udpnet
// opens one socket per rank regardless of radix, so fd pressure never
// scales with K^2. Every world is VerifyWorld-gated so a schedule bug is
// reported as such, not as a transport failure.
func TestConformanceUDP(t *testing.T) {
	for _, tp := range conformanceTopologies(t) {
		if testing.Short() && tp.Size() > 16 {
			continue
		}
		for _, ordered := range []bool{false, true} {
			tp := tp
			ordered := ordered
			t.Run(fmt.Sprintf("K=%d/dims=%v/%s", tp.Size(), tp.Dims(), engineName(ordered)), func(t *testing.T) {
				if err := core.VerifyWorld(core.WorldSchedules(tp)); err != nil {
					t.Fatalf("schedule world invalid before transport test: %v", err)
				}
				w, err := udpnet.NewWorld(tp.Size())
				if err != nil {
					t.Fatal(err)
				}
				defer w.Close()
				dests := confSendSets(int64(tp.Size()), tp.Size())
				var opts []core.ExchangeOpt
				if ordered {
					opts = append(opts, core.Ordered())
				}
				runConformance(t, w.Comms(), tp, dests, opts...)
			})
		}
	}
}

// TestConformanceHier runs the full differential suite over the
// hierarchical composite transport: chanpt carrying intra-node pairs and
// udpnet carrying inter-node pairs, under a two-node split of every
// conformance world (K∈{8,16,64} balanced shapes plus the mixed-radix
// sizes). Every world is VerifyWorld-gated, and the node boundary is
// deliberately *not* aligned with a VPT digit split for most shapes, so
// single stages carry frames on both sub-transports and the cross-sub
// arbitration path runs under both engines.
func TestConformanceHier(t *testing.T) {
	for _, tp := range conformanceTopologies(t) {
		if testing.Short() && tp.Size() > 16 {
			continue
		}
		for _, ordered := range []bool{false, true} {
			tp := tp
			ordered := ordered
			t.Run(fmt.Sprintf("K=%d/dims=%v/%s", tp.Size(), tp.Dims(), engineName(ordered)), func(t *testing.T) {
				if err := core.VerifyWorld(core.WorldSchedules(tp)); err != nil {
					t.Fatalf("schedule world invalid before transport test: %v", err)
				}
				K := tp.Size()
				cw, err := chanpt.NewWorld(K, 2)
				if err != nil {
					t.Fatal(err)
				}
				defer cw.Close()
				uw, err := udpnet.NewWorld(K)
				if err != nil {
					t.Fatal(err)
				}
				defer uw.Close()
				half := (K + 1) / 2
				hw, err := hier.New(hier.Config{
					Inner:  cw.Comms(),
					Outer:  uw.Comms(),
					NodeOf: func(r int) int { return r / half },
				})
				if err != nil {
					t.Fatal(err)
				}
				dests := confSendSets(int64(K), K)
				var opts []core.ExchangeOpt
				if ordered {
					opts = append(opts, core.Ordered())
				}
				runConformance(t, hw.Comms(), tp, dests, opts...)
			})
		}
	}
}

// TestConformanceDirect runs the same differential check for the baseline
// DirectExchange on both engines over both transports.
func TestConformanceDirect(t *testing.T) {
	const K = 16
	dests := confSendSets(99, K)
	recvFrom := make([][]int, K)
	for src, ds := range dests {
		for _, dst := range ds {
			recvFrom[dst] = append(recvFrom[dst], src)
		}
	}
	ref := refDeliveries(K, dests)

	run := func(t *testing.T, comms []runtime.Comm, opts ...core.ExchangeOpt) {
		reg := confInstrument(t, comms, 1)
		got := make([]*core.Delivered, K)
		err := runtime.Run(comms, func(c runtime.Comm) error {
			payloads := map[int][]byte{}
			for _, dst := range dests[c.Rank()] {
				payloads[dst] = confPayload(c.Rank(), dst)
			}
			rankOpts := append(opts[:len(opts):len(opts)], core.WithTelemetry(reg.Rank(c.Rank())))
			d, err := core.DirectExchange(c, payloads, recvFrom[c.Rank()], rankOpts...)
			if err != nil {
				return err
			}
			got[c.Rank()] = d
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		confCheckTelemetry(t, reg)
		for q := 0; q < K; q++ {
			if len(got[q].Subs) != len(ref[q]) {
				t.Fatalf("rank %d: %d deliveries, want %d", q, len(got[q].Subs), len(ref[q]))
			}
			for i, sub := range got[q].Subs {
				w := ref[q][i]
				if sub.Src != w.Src || !bytes.Equal(sub.Data, w.Data) {
					t.Fatalf("rank %d delivery %d differs", q, i)
				}
			}
		}
	}

	for _, ordered := range []bool{false, true} {
		var opts []core.ExchangeOpt
		if ordered {
			opts = append(opts, core.Ordered())
		}
		t.Run("chanpt/"+engineName(ordered), func(t *testing.T) {
			w, err := chanpt.NewWorld(K, K)
			if err != nil {
				t.Fatal(err)
			}
			run(t, w.Comms(), opts...)
		})
		t.Run("tcpnet/"+engineName(ordered), func(t *testing.T) {
			w, err := tcpnet.NewWorld(K)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			run(t, w.Comms(), opts...)
		})
		t.Run("udpnet/"+engineName(ordered), func(t *testing.T) {
			w, err := udpnet.NewWorld(K)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			run(t, w.Comms(), opts...)
		})
	}
}

// forceOrdered hides the transport's arrival-order matcher: RecvAnyOf
// reports ErrNoRecvAny, so runtime.RecvAnyOf degrades to fixed-order
// targeted receives. The Replay conformance cells use it to pin the compiled
// engine's receive order without a dedicated engine option, while frame
// ownership (SendRetains) still reflects the underlying transport.
type forceOrdered struct{ runtime.Comm }

func (f forceOrdered) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	return -1, nil, runtime.ErrNoRecvAny
}

func (f forceOrdered) SendRetains() bool { return runtime.SendRetains(f.Comm) }

func forceOrderedComms(comms []runtime.Comm) []runtime.Comm {
	out := make([]runtime.Comm, len(comms))
	for i, c := range comms {
		out[i] = forceOrdered{c}
	}
	return out
}

// confRoundPayload derives a per-round payload of the same length as
// confPayload(src, dst): replay rounds ship fresh bytes through the learned
// pattern, proving the replay moves data rather than echoing the learning
// run.
func confRoundPayload(src, dst, round int) []byte {
	b := confPayload(src, dst)
	for i := range b {
		b[i] += byte(round * 101)
	}
	return b
}

// persistentConformanceTopologies is the (smaller) shape set of the
// Persistent/Replay conformance cells: each cell runs a learning exchange
// plus multiple replays, so the suite trades a few large shapes for rounds.
func persistentConformanceTopologies(t *testing.T, tcp bool) []*vpt.Topology {
	t.Helper()
	var tps []*vpt.Topology
	for _, K := range []int{8, 16} {
		for n := 1; n <= vpt.MaxDim(K); n++ {
			tp, err := vpt.NewBalanced(K, n)
			if err != nil {
				t.Fatal(err)
			}
			tps = append(tps, tp)
		}
	}
	tp, err := vpt.NewFactored(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	tps = append(tps, tp)
	if !tcp {
		tp, err := vpt.NewBalanced(64, 3)
		if err != nil {
			t.Fatal(err)
		}
		tps = append(tps, tp)
	}
	return tps
}

// runPersistentConformance learns the pattern once per rank, then replays it
// twice with fresh per-round payloads, checking every round's deliveries
// byte-for-byte against the independently computed reference (the same
// ground truth the seed ordered engine is checked against).
func runPersistentConformance(t *testing.T, comms []runtime.Comm, tp *vpt.Topology, dests map[int][]int, opts ...core.ExchangeOpt) {
	t.Helper()
	K := len(comms)
	const rounds = 2
	got := make([][][]msg.Submessage, rounds+1) // round 0 = learning run
	for r := range got {
		got[r] = make([][]msg.Submessage, K)
	}
	err := runtime.Run(comms, func(c runtime.Comm) error {
		me := c.Rank()
		payloads := map[int][]byte{}
		for _, dst := range dests[me] {
			payloads[dst] = confRoundPayload(me, dst, 0)
		}
		p, d, err := core.NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		got[0][me] = d.Subs
		for r := 1; r <= rounds; r++ {
			for _, dst := range dests[me] {
				payloads[dst] = confRoundPayload(me, dst, r)
			}
			d, err := p.Run(c, payloads, opts...)
			if err != nil {
				return err
			}
			got[r][me] = d.Subs
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= rounds; r++ {
		for q := 0; q < K; q++ {
			var ref []msg.Submessage
			for src := 0; src < K; src++ {
				for _, dst := range dests[src] {
					if dst == q {
						ref = append(ref, msg.Submessage{Src: src, Dst: q, Data: confRoundPayload(src, q, r)})
					}
				}
			}
			if len(got[r][q]) != len(ref) {
				t.Fatalf("round %d rank %d: %d deliveries, want %d", r, q, len(got[r][q]), len(ref))
			}
			for i, sub := range got[r][q] {
				w := ref[i]
				if sub.Src != w.Src || sub.Dst != w.Dst || !bytes.Equal(sub.Data, w.Data) {
					t.Fatalf("round %d rank %d delivery %d: got (%d->%d, %x), want (%d->%d, %x)",
						r, q, i, sub.Src, sub.Dst, sub.Data, w.Src, w.Dst, w.Data)
				}
			}
		}
	}
}

// TestConformancePersistent checks the learned-schedule front-end on both
// transports under both receive disciplines: every replay's deliveries are
// bit-identical to the reference the seed ordered engine is held to.
func TestConformancePersistent(t *testing.T) {
	for _, transport := range []string{"chanpt", "tcpnet", "udpnet"} {
		for _, tp := range persistentConformanceTopologies(t, transport == "tcpnet") {
			if transport != "chanpt" && testing.Short() && tp.Size() > 8 {
				continue
			}
			for _, ordered := range []bool{false, true} {
				tp := tp
				ordered := ordered
				transport := transport
				t.Run(fmt.Sprintf("%s/K=%d/dims=%v/%s", transport, tp.Size(), tp.Dims(), engineName(ordered)), func(t *testing.T) {
					var comms []runtime.Comm
					switch transport {
					case "chanpt":
						t.Parallel()
						w, err := chanpt.NewWorld(tp.Size(), 2)
						if err != nil {
							t.Fatal(err)
						}
						comms = w.Comms()
					case "tcpnet":
						w, err := tcpnet.NewWorld(tp.Size())
						if err != nil {
							t.Fatal(err)
						}
						defer w.Close()
						comms = w.Comms()
					case "udpnet":
						w, err := udpnet.NewWorld(tp.Size())
						if err != nil {
							t.Fatal(err)
						}
						defer w.Close()
						comms = w.Comms()
					}
					dests := confSendSets(int64(tp.Size()), tp.Size())
					var opts []core.ExchangeOpt
					if ordered {
						opts = append(opts, core.Ordered())
					}
					runPersistentConformance(t, comms, tp, dests, opts...)
				})
			}
		}
	}
}

// confWords is the word count of the compiled-replay payload src ships to
// dst; same variety as confPayload's byte lengths.
func confWords(src, dst int) int { return 1 + (src*31+dst*7)%45 }

const confXLen = 256

// confGather builds rank src's gather lists: one index list per destination,
// deterministic so the reference halo is computable without executing.
func confGather(src int, dests []int) map[int][]int32 {
	g := make(map[int][]int32, len(dests))
	for _, dst := range dests {
		idx := make([]int32, confWords(src, dst))
		for i := range idx {
			idx[i] = int32((dst*13 + i*7) % confXLen)
		}
		g[dst] = idx
	}
	return g
}

// confX is rank src's local vector for compiled-replay rounds.
func confX(src, round int) []float64 {
	x := make([]float64, confXLen)
	for i := range x {
		x[i] = float64(src*confXLen+i) + float64(round)*0.25
	}
	return x
}

// runReplayConformance compiles the learned pattern on every rank and runs
// two compiled iterations, checking each halo float-for-float against the
// reference (delivery blocks sorted by source, gathered from the sender's
// local vector).
func runReplayConformance(t *testing.T, comms []runtime.Comm, tp *vpt.Topology, dests map[int][]int) {
	t.Helper()
	K := len(comms)
	const rounds = 2
	halos := make([][][]float64, rounds)
	for r := range halos {
		halos[r] = make([][]float64, K)
	}
	err := runtime.Run(comms, func(c runtime.Comm) error {
		me := c.Rank()
		gather := confGather(me, dests[me])
		payloads := make(map[int][]byte, len(gather))
		for dst, idx := range gather {
			payloads[dst] = make([]byte, 8*len(idx))
		}
		p, _, err := core.NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		rep, err := p.Compile(confXLen, gather)
		if err != nil {
			return err
		}
		halo := make([]float64, rep.HaloWords())
		for r := 0; r < rounds; r++ {
			if err := rep.Run(c, confX(me, r), halo); err != nil {
				return err
			}
			halos[r][me] = append([]float64(nil), halo...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		for q := 0; q < K; q++ {
			var ref []float64
			for src := 0; src < K; src++ {
				for _, dst := range dests[src] {
					if dst != q {
						continue
					}
					x := confX(src, r)
					for _, g := range confGather(src, dests[src])[q] {
						ref = append(ref, x[g])
					}
				}
			}
			if len(halos[r][q]) != len(ref) {
				t.Fatalf("round %d rank %d: halo has %d words, want %d", r, q, len(halos[r][q]), len(ref))
			}
			for i := range ref {
				if halos[r][q][i] != ref[i] {
					t.Fatalf("round %d rank %d halo[%d] = %v, want %v", r, q, i, halos[r][q][i], ref[i])
				}
			}
		}
	}
}

// TestConformanceReplay checks the compiled lowering of the learned schedule
// on both transports, in arrival order and (via forceOrdered) in fixed
// receive order: the halos must match the reference exactly in every round.
func TestConformanceReplay(t *testing.T) {
	for _, transport := range []string{"chanpt", "tcpnet", "udpnet"} {
		for _, tp := range persistentConformanceTopologies(t, transport == "tcpnet") {
			if transport != "chanpt" && testing.Short() && tp.Size() > 8 {
				continue
			}
			for _, ordered := range []bool{false, true} {
				tp := tp
				ordered := ordered
				transport := transport
				t.Run(fmt.Sprintf("%s/K=%d/dims=%v/%s", transport, tp.Size(), tp.Dims(), engineName(ordered)), func(t *testing.T) {
					var comms []runtime.Comm
					switch transport {
					case "chanpt":
						t.Parallel()
						w, err := chanpt.NewWorld(tp.Size(), 2)
						if err != nil {
							t.Fatal(err)
						}
						comms = w.Comms()
					case "tcpnet":
						w, err := tcpnet.NewWorld(tp.Size())
						if err != nil {
							t.Fatal(err)
						}
						defer w.Close()
						comms = w.Comms()
					case "udpnet":
						w, err := udpnet.NewWorld(tp.Size())
						if err != nil {
							t.Fatal(err)
						}
						defer w.Close()
						comms = w.Comms()
					}
					if ordered {
						comms = forceOrderedComms(comms)
					}
					dests := confSendSets(int64(tp.Size()), tp.Size())
					runReplayConformance(t, comms, tp, dests)
				})
			}
		}
	}
}
