package core

import (
	"errors"
	"fmt"
	"sort"

	"stfw/internal/vpt"
)

// This file is the whole-world schedule verifier: where validateSchedule
// (schedule.go) sanity-checks one rank's program in isolation, VerifyWorld
// cross-checks the programs of all K ranks against each other — the
// property the stage machine's liveness actually depends on. A world of
// individually-valid schedules can still deadlock or drop payload if rank a
// sends a frame rank b never expects, or rank b waits for a frame nobody
// sends. Tests run it over every schedule front-end (dynamic, plan-driven,
// learned, direct), and `stfwbench -verify` sweeps it over conformance
// topologies from the command line.

// maxVerifyErrors bounds how many findings a verification reports before
// summarizing the rest; a structurally broken world would otherwise produce
// O(K^2) repetitive errors.
const maxVerifyErrors = 8

// verifyErrs accumulates findings up to the cap.
type verifyErrs struct {
	errs       []error
	suppressed int
}

func (v *verifyErrs) addf(format string, args ...any) {
	if len(v.errs) >= maxVerifyErrors {
		v.suppressed++
		return
	}
	v.errs = append(v.errs, fmt.Errorf(format, args...))
}

func (v *verifyErrs) join() error {
	if v.suppressed > 0 {
		v.errs = append(v.errs, fmt.Errorf("core: verify: %d further findings suppressed", v.suppressed))
	}
	return errors.Join(v.errs...)
}

// VerifyWorld cross-checks the per-rank schedules of a K-rank world
// (scheds[r] is rank r's program). It verifies that:
//
//   - every rank has the same stage count and per-stage tag (the stage
//     machines advance in lockstep, keyed by tag);
//   - every send and receive slot names a valid, non-self rank;
//   - no stage has duplicate send destinations or duplicate expected
//     senders on one rank (each neighbor pair exchanges exactly one frame
//     per stage);
//   - sends and receives match pairwise: rank a lists b as a stage-d
//     destination if and only if rank b lists a as a stage-d expected
//     sender. An unmatched send is a frame the receiver never drains; an
//     unmatched expected sender (an orphan) blocks the receiver forever.
//
// A nil error means the world's programs are mutually consistent; the stage
// machine can execute them without unmatched traffic in either direction.
func VerifyWorld(scheds []*StageSchedule) error {
	var v verifyErrs
	K := len(scheds)
	if K == 0 {
		return errors.New("core: verify: empty world")
	}
	for r, s := range scheds {
		if s == nil {
			v.addf("core: verify: rank %d has no schedule", r)
		}
	}
	if len(v.errs) > 0 {
		return v.join()
	}

	// Lockstep structure: stage counts, tags, and dimensions must agree
	// across ranks. The dimension is routing metadata consumed below the
	// schedule layer (composite transports pick a sub-transport by it), so a
	// per-rank disagreement would silently split one stage's frames across
	// transports.
	ref := scheds[0]
	for r, s := range scheds {
		if len(s.Stages) != len(ref.Stages) {
			v.addf("core: verify: rank %d has %d stages, rank 0 has %d", r, len(s.Stages), len(ref.Stages))
			continue
		}
		for d := range s.Stages {
			if s.Stages[d].Tag != ref.Stages[d].Tag {
				v.addf("core: verify: stage %d: rank %d uses tag %#x, rank 0 uses %#x", d, r, s.Stages[d].Tag, ref.Stages[d].Tag)
			}
			if dim := s.Stages[d].Dim; dim < 0 || dim >= len(s.Stages) {
				v.addf("core: verify: stage %d: rank %d declares dimension %d, outside [0,%d)", d, r, dim, len(s.Stages))
			} else if dim != ref.Stages[d].Dim {
				v.addf("core: verify: stage %d: rank %d routes dimension %d, rank 0 routes %d", d, r, dim, ref.Stages[d].Dim)
			}
		}
	}
	if len(v.errs) > 0 {
		return v.join()
	}

	// Per-rank slot validity and per-stage slot uniqueness.
	for r, s := range scheds {
		if err := validateSchedule(s, r, K); err != nil {
			v.addf("core: verify: rank %d: %v", r, err)
		}
		for d := range s.Stages {
			st := &s.Stages[d]
			seenTo := make(map[int]bool, len(st.Sends))
			for _, slot := range st.Sends {
				if seenTo[slot.To] {
					v.addf("core: verify: stage %d: rank %d has duplicate send slot to %d", d, r, slot.To)
				}
				seenTo[slot.To] = true
			}
			seenFrom := make(map[int]bool, len(st.RecvFrom))
			for _, from := range st.RecvFrom {
				if seenFrom[from] {
					v.addf("core: verify: stage %d: rank %d expects duplicate frame from %d", d, r, from)
				}
				seenFrom[from] = true
			}
		}
	}
	if len(v.errs) > 0 {
		return v.join()
	}

	// Pairwise matching per stage.
	for d := range ref.Stages {
		type pair struct{ from, to int }
		sends := make(map[pair]bool)
		recvs := make(map[pair]bool)
		for r, s := range scheds {
			for _, slot := range s.Stages[d].Sends {
				sends[pair{r, slot.To}] = true
			}
			for _, from := range s.Stages[d].RecvFrom {
				recvs[pair{from, r}] = true
			}
		}
		for p := range sends {
			if !recvs[p] {
				v.addf("core: verify: stage %d: rank %d sends to %d, which does not expect a frame from it", d, p.from, p.to)
			}
		}
		for p := range recvs {
			if !sends[p] {
				v.addf("core: verify: stage %d: rank %d expects a frame from %d, which never sends one (orphan sender)", d, p.to, p.from)
			}
		}
	}
	return v.join()
}

// VerifyWorldAgainstPlan runs VerifyWorld and then checks submessage
// conservation against the plan: per stage, every annotated send slot's
// Reserve must equal the Subs of the plan's (From, To) frame, every
// nonempty plan frame must be carried by exactly that slot, and no slot may
// reserve capacity for a frame the plan does not contain. Together with the
// plan's own construction invariant (every submessage routed exactly once)
// this pins the schedules to the plan's exact traffic.
func VerifyWorldAgainstPlan(scheds []*StageSchedule, p *Plan) error {
	if err := VerifyWorld(scheds); err != nil {
		return err
	}
	var v verifyErrs
	if len(scheds[0].Stages) != len(p.Stages) {
		return fmt.Errorf("core: verify: schedules have %d stages, plan has %d", len(scheds[0].Stages), len(p.Stages))
	}
	type pair struct{ from, to int }
	for d := range p.Stages {
		want := make(map[pair]int, len(p.Stages[d]))
		for _, f := range p.Stages[d] {
			if f.Subs > 0 {
				want[pair{f.From, f.To}] = f.Subs
			}
		}
		covered := make(map[pair]bool, len(want))
		for r, s := range scheds {
			for _, slot := range s.Stages[d].Sends {
				key := pair{r, slot.To}
				subs, inPlan := want[key]
				switch {
				case slot.Reserve == 0 && inPlan:
					v.addf("core: verify: stage %d: plan routes %d submessages %d->%d but the schedule slot reserves none", d, subs, r, slot.To)
				case slot.Reserve != 0 && !inPlan:
					v.addf("core: verify: stage %d: schedule reserves %d submessages %d->%d, a frame the plan does not contain", d, slot.Reserve, r, slot.To)
				case slot.Reserve != subs:
					v.addf("core: verify: stage %d: frame %d->%d reserves %d submessages, plan says %d", d, r, slot.To, slot.Reserve, subs)
				default:
					covered[key] = true
				}
			}
		}
		for key, subs := range want {
			if !covered[key] {
				v.addf("core: verify: stage %d: plan frame %d->%d (%d submessages) has no schedule slot", d, key.from, key.to, subs)
			}
		}
	}
	return v.join()
}

// LearnedWorldSchedules returns every rank's learned (or patched) schedule
// — the programs Persistent.Run executes — for gating a whole learned
// world through VerifyWorld. Typical use after a patch round: run
// VerifyWorld over these plus VerifyLearnedWorld over the Persistents
// themselves.
func LearnedWorldSchedules(ps []*Persistent) []*StageSchedule {
	scheds := make([]*StageSchedule, len(ps))
	for r, p := range ps {
		if p != nil {
			scheds[r] = p.Schedule()
		}
	}
	return scheds
}

// VerifyLearnedWorld cross-checks a world of learned (or patched)
// Persistents far more deeply than the schedule-level VerifyWorld can: a
// learned schedule sends a frame to every neighbor whether or not it
// carries payload, so pattern churn never changes the schedule skeleton
// and a structurally clean world could still carry misrouted slots. This
// verifier checks the payload plane itself:
//
//   - wire symmetry: the exact slot sequence of every frame a rank sends
//     equals the receiving rank's recorded inbound layout, and both ends
//     record the same payload size per slot;
//   - route completeness: re-deriving every (src, dst) payload's
//     dimension-ordered route from the world's own declared destination
//     sets, each pair occupies exactly the frames on its route — and no
//     frame carries a slot that no declared payload justifies;
//   - delivery: each rank's delivery list is exactly the declared pairs
//     destined for it, in sorted (src, dst) order.
//
// Every patched world should pass this; the dynamic-sparsity property
// suite runs it after every mutation round.
func VerifyLearnedWorld(ps []*Persistent) error {
	var v verifyErrs
	K := len(ps)
	if K == 0 {
		return errors.New("core: verify: empty world")
	}
	for r, p := range ps {
		if p == nil {
			v.addf("core: verify: rank %d has no persistent", r)
		} else if p.rank != r {
			v.addf("core: verify: slot %d holds rank %d's persistent", r, p.rank)
		} else if !p.topo.Equal(ps[0].topo) {
			v.addf("core: verify: rank %d learned on topology %v, rank 0 on %v", r, p.topo, ps[0].topo)
		}
	}
	if len(v.errs) > 0 {
		return v.join()
	}
	if ps[0].topo.Size() != K {
		v.addf("core: verify: %d persistents for a %d-rank topology", K, ps[0].topo.Size())
		return v.join()
	}
	t := ps[0].topo

	// Wire symmetry: sender slot sequences versus receiver inbound layouts.
	for r, p := range ps {
		for d := range p.nbrFrames {
			for _, nf := range p.nbrFrames[d] {
				var sent []slotKey
				if nf.f != nil {
					sent = nf.f.slots
				}
				got, ok := ps[nf.to].learnedInSlots(d, r)
				if !ok {
					v.addf("core: verify: stage %d: rank %d sends to %d, which has no inbound layout for it", d, r, nf.to)
					continue
				}
				if len(sent) != len(got) {
					v.addf("core: verify: stage %d: frame %d->%d carries %d slots, receiver expects %d",
						d, r, nf.to, len(sent), len(got))
					continue
				}
				for i := range sent {
					if sent[i] != got[i] {
						v.addf("core: verify: stage %d: frame %d->%d slot %d is %d->%d on the sender, %d->%d on the receiver",
							d, r, nf.to, i, sent[i].src, sent[i].dst, got[i].src, got[i].dst)
						break
					}
					if ss, rs := p.sizes[sent[i]], ps[nf.to].sizes[sent[i]]; ss != rs {
						v.addf("core: verify: stage %d: slot %d->%d sized %d on sender %d, %d on receiver %d",
							d, sent[i].src, sent[i].dst, ss, r, rs, nf.to)
						break
					}
				}
			}
		}
	}
	if len(v.errs) > 0 {
		return v.join()
	}

	// Route completeness: replay every declared payload's route and demand
	// exact set equality with the frames the world actually carries.
	type worldFrame struct{ rank, d, to int }
	expectOut := make(map[worldFrame]map[slotKey]bool)
	expectDeliver := make([][]slotKey, K)
	for src, p := range ps {
		for _, dst := range p.destList {
			k := slotKey{src: int32(src), dst: int32(dst)}
			expectDeliver[dst] = append(expectDeliver[dst], k)
			cur := src
			for d := 0; d < t.N(); d++ {
				next := t.RouteNext(cur, dst, d)
				if next == cur {
					continue
				}
				wf := worldFrame{cur, d, next}
				if expectOut[wf] == nil {
					expectOut[wf] = make(map[slotKey]bool)
				}
				expectOut[wf][k] = true
				cur = next
			}
		}
	}
	for r, p := range ps {
		for d := range p.nbrFrames {
			for _, nf := range p.nbrFrames[d] {
				want := expectOut[worldFrame{r, d, nf.to}]
				var slots []slotKey
				if nf.f != nil {
					slots = nf.f.slots
				}
				if len(slots) != len(want) {
					v.addf("core: verify: stage %d: frame %d->%d carries %d slots, the declared pattern routes %d through it",
						d, r, nf.to, len(slots), len(want))
					continue
				}
				for _, k := range slots {
					if !want[k] {
						v.addf("core: verify: stage %d: frame %d->%d carries slot %d->%d, which no declared payload routes through it",
							d, r, nf.to, k.src, k.dst)
					}
				}
			}
		}
		want := expectDeliver[r]
		sortSlotKeys(want)
		if len(want) != len(p.deliver) {
			v.addf("core: verify: rank %d delivers %d payloads, the declared pattern sends it %d", r, len(p.deliver), len(want))
			continue
		}
		for i := range want {
			if want[i] != p.deliver[i] {
				v.addf("core: verify: rank %d delivery %d is %d->%d, declared pattern says %d->%d",
					r, i, p.deliver[i].src, p.deliver[i].dst, want[i].src, want[i].dst)
				break
			}
		}
	}
	return v.join()
}

func sortSlotKeys(ks []slotKey) {
	sort.Slice(ks, func(i, j int) bool { return lessSlot(ks[i], ks[j]) })
}

// WorldSchedules returns the dynamic front-end's schedule for every rank of
// the topology — the programs Exchange executes when no plan is given.
func WorldSchedules(t *vpt.Topology) []*StageSchedule {
	scheds := make([]*StageSchedule, t.Size())
	for r := range scheds {
		scheds[r] = buildTopologySchedule(t, r)
	}
	return scheds
}

// WorldSchedules returns the plan-driven schedule for every rank, from the
// same cache Exchange(WithPlan) uses.
func (p *Plan) WorldSchedules() []*StageSchedule {
	scheds := make([]*StageSchedule, p.Topo.Size())
	for r := range scheds {
		scheds[r] = p.scheduleFor(r)
	}
	return scheds
}

// DirectWorldSchedules returns the direct-baseline schedule for every rank
// implied by the send sets: rank r sends one frame to each destination in
// its (normalized) send set and expects one frame from each source in the
// transpose — exactly the programs DirectExchange builds at run time.
func DirectWorldSchedules(s *SendSets) []*StageSchedule {
	recv := s.RecvSets()
	scheds := make([]*StageSchedule, s.K)
	for r := range scheds {
		dests := make([]int, 0, len(s.Sets[r]))
		for _, pr := range s.Sets[r] {
			dests = append(dests, pr.Dst)
		}
		from := make([]int, 0, len(recv[r]))
		for _, pr := range recv[r] {
			from = append(from, pr.Dst)
		}
		scheds[r] = buildDirectSchedule(r, dests, from)
	}
	return scheds
}
