package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// shuffleComm is a regression harness for the old engine's silent
// fixed-order assumption: its misroute check compared a frame's From header
// against the neighbor the loop *expected*, which only worked because
// receives were issued in fixed digit order. shuffleComm implements
// runtime.AnyReceiver by picking a random pending sender and issuing a
// targeted Recv for it on the wrapped transport — legal because every
// candidate sends exactly one frame per stage tag — so the engine sees
// deliveries in an order that has nothing to do with digit order.
type shuffleComm struct {
	runtime.Comm
	mu  *sync.Mutex
	rng *rand.Rand
}

func (s *shuffleComm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	s.mu.Lock()
	pick := from[s.rng.Intn(len(from))]
	s.mu.Unlock()
	payload, err := s.Comm.Recv(pick, tag)
	return pick, payload, err
}

func TestExchangeShuffledDeliveryOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, dims := range [][]int{{16}, {4, 4}, {2, 2, 2, 2}} {
		tp := vpt.MustNew(dims...)
		s := randomSendSets(rng, tp.Size(), 2, 3, 4)
		w, err := chanpt.NewWorld(tp.Size(), 2)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]*Delivered, tp.Size())
		comms := w.Comms()
		wrapped := make([]runtime.Comm, len(comms))
		mu := &sync.Mutex{}
		shufRng := rand.New(rand.NewSource(62))
		for i, c := range comms {
			wrapped[i] = &shuffleComm{Comm: c, mu: mu, rng: shufRng}
		}
		err = runtime.Run(wrapped, func(c runtime.Comm) error {
			payloads := map[int][]byte{}
			for _, pr := range s.Sets[c.Rank()] {
				payloads[pr.Dst] = payloadWords(c.Rank(), pr.Dst, pr.Words)
			}
			d, err := Exchange(c, tp, payloads)
			if err != nil {
				return err
			}
			got[c.Rank()] = d
			return nil
		})
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		checkDeliveries(t, s, got)
	}
}

// scriptAnyComm extends scriptComm with a scripted arrival-order matcher
// that always serves the LAST pending candidate first — the exact reverse
// of the digit order the old engine assumed.
type scriptAnyComm struct {
	*scriptComm
}

func (s *scriptAnyComm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	pick := from[len(from)-1]
	payload, err := s.scriptComm.Recv(pick, tag)
	return pick, payload, err
}

// reverseScriptedWorld is scriptedWorld for T2(4,4) at rank 0, where stage
// 0 has three neighbors (ranks 1, 2, 3) and reverse-order delivery is
// actually observable.
func reverseScriptedWorld() (*scriptAnyComm, *vpt.Topology) {
	tp := vpt.MustNew(4, 4)
	sc := &scriptAnyComm{scriptComm: &scriptComm{rank: 0, size: 16}}
	for _, nb := range []int{1, 2, 3} {
		sc.queue(nb, 0, emptyFrame(nb, 0))
	}
	for _, nb := range []int{4, 8, 12} {
		sc.queue(nb, 1, emptyFrame(nb, 0))
	}
	return sc, tp
}

func TestExchangeAcceptsReverseArrivalOrder(t *testing.T) {
	sc, tp := reverseScriptedWorld()
	d, err := Exchange(sc, tp, map[int][]byte{5: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subs) != 0 {
		t.Errorf("unexpected deliveries: %+v", d.Subs)
	}
}

// The misroute check must validate the decoded From header against the
// sender the MATCHER reported, not against any assumed receive order: a
// frame whose header claims a different origin than the link it arrived on
// is a protocol error in every delivery order.
func TestExchangeDetectsMisrouteUnderArrivalOrder(t *testing.T) {
	sc, tp := reverseScriptedWorld()
	// The matcher serves candidates in reverse order, so rank 3 is matched
	// first in stage 0. Replace its frame with one claiming From=2: the
	// engine must flag the mismatch even though rank 2 is also a legitimate
	// stage-0 neighbor.
	sc.recvs[fmt.Sprintf("3/%d", tagBase)] = [][]byte{emptyFrame(2, 0)}
	_, err := Exchange(sc, tp, nil)
	if err == nil {
		t.Fatal("misrouted frame not detected under arrival-order receive")
	}
	if !strings.Contains(err.Error(), "misrouted") {
		t.Errorf("unexpected error: %v", err)
	}
}

// A frame addressed to a different receiver must be caught regardless of
// matcher order as well.
func TestExchangeDetectsWrongReceiverUnderArrivalOrder(t *testing.T) {
	sc, tp := reverseScriptedWorld()
	sc.recvs[fmt.Sprintf("3/%d", tagBase)] = [][]byte{emptyFrame(3, 7)}
	_, err := Exchange(sc, tp, nil)
	if err == nil {
		t.Fatal("wrongly addressed frame not detected")
	}
	if !strings.Contains(err.Error(), "misrouted") {
		t.Errorf("unexpected error: %v", err)
	}
}
