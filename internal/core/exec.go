package core

import (
	"fmt"
	"time"

	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/vpt"
)

// Delivered is what a rank gets out of an exchange: the original payloads
// destined for it, tagged with their source ranks.
type Delivered struct {
	Subs []msg.Submessage
}

// tagBase separates store-and-forward stage tags from other traffic on the
// same communicator.
const tagBase = 0x5747 // "WG"

// StageTag returns the transport tag the exchange uses for stage d;
// instrumentation (internal/trace) uses it to attribute frames to stages.
func StageTag(d int) int { return tagBase + d }

// TagStage inverts StageTag: it returns the stage of a tag and whether the
// tag belongs to the store-and-forward exchange at all (maxStages bounds
// the topology dimension).
func TagStage(tag, maxStages int) (int, bool) {
	d := tag - tagBase
	if d >= 0 && d < maxStages {
		return d, true
	}
	if tag == tagBase-1 {
		return 0, true // the direct-exchange tag maps to a single stage
	}
	return 0, false
}

// ExchangeOpt configures an Exchange or DirectExchange call. All ranks of a
// collective call must pass the same options.
type ExchangeOpt func(*exchangeOptions)

type exchangeOptions struct {
	ordered bool
	plan    *Plan
	probe   func(stage, residentPayloadBytes int)
	tele    *telemetry.Rank
}

// Ordered selects the legacy stage engine: sends issued inline from the
// main loop (one fresh frame copy each) and frames received in fixed
// neighbor order. The paper-reproduction experiments use it to stay
// bit-identical with the original executor; the default engine is the
// pipelined one.
func Ordered() ExchangeOpt { return func(o *exchangeOptions) { o.ordered = true } }

// WithPlan pre-sizes the rank's forward buffers from the static plan's
// exact per-frame occupancy (the submessages of the stage-d frame this rank
// sends to a neighbor are exactly the final contents of the corresponding
// buffer). The plan must have been built for the topology and send sets
// being executed; a plan for a different topology is ignored.
func WithPlan(p *Plan) ExchangeOpt { return func(o *exchangeOptions) { o.plan = p } }

// WithStageProbe installs an observer invoked once per completed stage with
// the payload bytes resident at this rank at the stage boundary: forward
// buffer contents plus the payloads the stage delivered. The value is
// directly comparable to 8*Plan.MaxBufferWords, which tests use to check
// that a live execution never exceeds the static occupancy bound.
func WithStageProbe(f func(stage, residentPayloadBytes int)) ExchangeOpt {
	return func(o *exchangeOptions) { o.probe = f }
}

// WithTelemetry attaches this rank's live telemetry collector: the engine
// records one stage-scoped span per communication stage and counts the
// submessages it stores and forwards. Frame-level send/recv counters come
// from wrapping the communicator (telemetry.Registry.WrapComm), which works
// for both engines without their cooperation; this option adds the parts
// only the engine can see. A nil collector is a no-op.
func WithTelemetry(t *telemetry.Rank) ExchangeOpt {
	return func(o *exchangeOptions) { o.tele = t }
}

// Exchange runs Algorithm 1 on one rank: it injects this rank's outgoing
// payloads into the forward buffers, executes the n communication stages of
// the topology (talking only to dimension-d neighbors in stage d), stores
// and forwards submessages of other ranks, and returns the submessages
// destined for this rank.
//
// payloads maps destination rank to the data this rank wants delivered
// there. A frame is sent to every dimension-d neighbor each stage (possibly
// empty) so receive counts are deterministic; the paper's message-count
// metrics ignore empty frames, and so does the Plan this call is validated
// against.
//
// By default the pipelined stage engine runs: a worker goroutine issues the
// stage's sends from pooled frame buffers while the main loop receives
// frames in arrival order (runtime.RecvAnyOf), scattering each as it lands.
// Ordered() restores the legacy fixed-order engine.
//
// Exchange is collective: every rank of the communicator must call it with
// the same topology and options.
func Exchange(c runtime.Comm, t *vpt.Topology, payloads map[int][]byte, opts ...ExchangeOpt) (*Delivered, error) {
	var opt exchangeOptions
	for _, o := range opts {
		o(&opt)
	}
	me := c.Rank()
	if t.Size() != c.Size() {
		return nil, fmt.Errorf("core: topology size %d != communicator size %d", t.Size(), c.Size())
	}
	fb := msg.NewForwardBuffers(t.Dims())
	if opt.plan != nil && opt.plan.Topo.Equal(t) {
		reservePlanOccupancy(fb, t, opt.plan, me)
	}
	out := &Delivered{}

	// Lines 4-6: scatter my send list into the forward buffers, keyed by
	// the first differing digit.
	for dst, data := range payloads {
		if dst < 0 || dst >= t.Size() {
			return nil, fmt.Errorf("core: rank %d: destination %d out of range", me, dst)
		}
		if dst == me {
			out.Subs = append(out.Subs, msg.Submessage{Src: me, Dst: me, Data: data})
			continue
		}
		d := t.FirstDiff(me, dst)
		fb.Put(d, t.Digit(dst, d), msg.Submessage{Src: me, Dst: dst, Data: data})
	}

	if opt.ordered {
		return exchangeOrdered(c, t, me, fb, out, &opt)
	}
	return exchangePipelined(c, t, me, fb, out, &opt)
}

// reservePlanOccupancy pre-sizes the rank's forward buffers with the exact
// submessage counts of the plan's frames: buffer fwbuf[d][x] is emptied
// into the single stage-d frame sent to the neighbor with digit x, so that
// frame's Subs count is the buffer's peak occupancy.
func reservePlanOccupancy(fb *msg.ForwardBuffers, t *vpt.Topology, p *Plan, me int) {
	for d, stage := range p.Stages {
		if d >= t.N() {
			return
		}
		for _, f := range stage {
			if f.From == me {
				fb.Reserve(d, t.Digit(f.To, d), f.Subs)
			}
		}
	}
}

// exchangeOrdered is the legacy engine, kept verbatim (modulo the probe
// hook) so paper-reproduction experiments execute exactly as before:
// serial sends with a fresh copy per frame, then receives in fixed
// neighbor order.
func exchangeOrdered(c runtime.Comm, t *vpt.Topology, me int, fb *msg.ForwardBuffers, out *Delivered, opt *exchangeOptions) (*Delivered, error) {
	var encodeBuf []byte
	var stageStart time.Time
	if opt.tele != nil {
		stageStart = time.Now()
	}
	for d := 0; d < t.N(); d++ {
		tag := tagBase + d
		myDigit := t.Digit(me, d)
		kd := t.Dim(d)

		// Lines 9-12: send one frame to each neighbor in dimension d. The
		// frame may be empty; emptiness is cheap on both transports and
		// makes the number of receives deterministic.
		for x := 0; x < kd; x++ {
			if x == myDigit {
				continue
			}
			to := t.WithDigit(me, d, x)
			m := msg.Message{From: me, To: to, Subs: fb.Take(d, x)}
			encodeBuf = msg.Encode(encodeBuf[:0], &m)
			frame := append([]byte(nil), encodeBuf...)
			if err := c.Send(to, tag, frame); err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d send to %d: %w", me, d, to, err)
			}
		}

		// Lines 13-17: receive one frame from each neighbor and scatter its
		// submessages into later-stage buffers (or deliver them).
		stageDelivered := 0
		for x := 0; x < kd; x++ {
			if x == myDigit {
				continue
			}
			from := t.WithDigit(me, d, x)
			raw, err := c.Recv(from, tag)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d recv from %d: %w", me, d, from, err)
			}
			m, err := msg.Decode(raw)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d frame from %d: %w", me, d, from, err)
			}
			if m.From != from || m.To != me {
				return nil, fmt.Errorf("core: rank %d stage %d: misrouted frame %d->%d arrived from %d",
					me, d, m.From, m.To, from)
			}
			delivered, err := scatterFrame(t, me, d, fb, out, m.Subs, opt.tele)
			if err != nil {
				return nil, err
			}
			stageDelivered += delivered
		}
		if opt.probe != nil {
			opt.probe(d, fb.PayloadBytes()+stageDelivered)
		}
		if opt.tele != nil {
			stageStart = opt.tele.SpanMark(telemetry.KStage, d, stageStart)
		}
	}
	if left := fb.SubCount(); left != 0 {
		return nil, fmt.Errorf("core: rank %d: %d submessages left undelivered", me, left)
	}
	msg.SortSubs(out.Subs)
	return out, nil
}

// exchangePipelined is the pipelined stage engine: one persistent worker
// goroutine issues every stage's sends (encoded into pooled frame buffers)
// while the main loop receives frames in arrival order, scattering each as
// it lands. Stages need no send/receive barrier on the send side — stage
// d+1's outgoing frames are complete as soon as stage d's receives are
// scattered, so the worker drains a FIFO of stage batches and the engine
// joins it only once, at exchange end. Received frames are retained until
// the exchange completes — forwarded submessages alias their bytes — then
// recycled into the frame arena after the delivered payloads are copied
// out.
func exchangePipelined(c runtime.Comm, t *vpt.Topology, me int, fb *msg.ForwardBuffers, out *Delivered, opt *exchangeOptions) (*Delivered, error) {
	nbrs := 0 // Σ (k_d - 1): frames sent (= received) over the whole exchange
	for d := 0; d < t.N(); d++ {
		nbrs += t.Dim(d) - 1
	}
	retained := make([][]byte, 0, nbrs) // received frames, recycled on return
	defer func() {
		for _, b := range retained {
			msg.PutFrame(b)
		}
	}()

	sw := startSendWorker(c, me, t.N())
	defer sw.join()

	var (
		decoded    msg.Message // DecodeInto scratch, reused across frames
		pending    []int
		frameArr   = make([]stageFrame, 0, nbrs) // backing array for all stages' batches
		stageStart time.Time
	)
	for d := 0; d < t.N(); d++ {
		tag := tagBase + d
		myDigit := t.Digit(me, d)
		kd := t.Dim(d)
		if opt.tele != nil {
			stageStart = time.Now()
		}

		// Drain this stage's buffers in deterministic neighbor order and
		// hand the batch to the worker (which owns its subslice from then
		// on; stages use disjoint regions of the shared backing array).
		outs := frameArr[len(frameArr) : len(frameArr) : len(frameArr)+kd-1]
		pending = pending[:0]
		for x := 0; x < kd; x++ {
			if x == myDigit {
				continue
			}
			to := t.WithDigit(me, d, x)
			outs = append(outs, stageFrame{to: to, subs: fb.Take(d, x)})
			pending = append(pending, to)
		}
		frameArr = frameArr[:len(frameArr)+len(outs)]
		sw.enqueue(tag, outs)

		// Receive one frame per neighbor in arrival order; the expected
		// sender comes from the frame matcher, not loop order.
		stageDelivered := 0
		for len(pending) > 0 {
			from, raw, err := runtime.RecvAnyOf(c, tag, pending)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d recv: %w", me, d, err)
			}
			for i, p := range pending {
				if p == from {
					pending = append(pending[:i], pending[i+1:]...)
					break
				}
			}
			retained = append(retained, raw)
			if err := msg.DecodeInto(&decoded, raw); err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d frame from %d: %w", me, d, from, err)
			}
			if decoded.From != from || decoded.To != me {
				return nil, fmt.Errorf("core: rank %d stage %d: misrouted frame %d->%d arrived from %d",
					me, d, decoded.From, decoded.To, from)
			}
			delivered, err := scatterFrame(t, me, d, fb, out, decoded.Subs, opt.tele)
			if err != nil {
				return nil, err
			}
			stageDelivered += delivered
		}
		if opt.probe != nil {
			opt.probe(d, fb.PayloadBytes()+stageDelivered)
		}
		if opt.tele != nil {
			stageStart = opt.tele.SpanMark(telemetry.KStage, d, stageStart)
		}
	}
	if err := sw.join(); err != nil {
		return nil, err
	}
	if left := fb.SubCount(); left != 0 {
		return nil, fmt.Errorf("core: rank %d: %d submessages left undelivered", me, left)
	}
	msg.SortSubs(out.Subs)
	copyDelivered(out)
	return out, nil
}

type stageFrame struct {
	to   int
	subs []msg.Submessage
}

type stageBatch struct {
	tag  int
	outs []stageFrame
}

// sendWorker is the per-exchange send goroutine: it drains stage batches in
// FIFO order, encoding every frame into a pooled buffer and handing it to
// the transport. On retaining transports the receiving rank recycles the
// buffer; otherwise the worker does, right after Send returns. After the
// first send error the worker drains (and drops) remaining batches so the
// enqueueing side never blocks; join surfaces the error.
type sendWorker struct {
	ch     chan stageBatch
	done   chan struct{}
	err    error // written by the worker, read after <-done
	joined bool
}

func startSendWorker(c runtime.Comm, me, stages int) *sendWorker {
	sw := &sendWorker{ch: make(chan stageBatch, stages), done: make(chan struct{})}
	retains := runtime.SendRetains(c)
	go func() {
		defer close(sw.done)
		for batch := range sw.ch {
			if sw.err != nil {
				continue
			}
			for _, of := range batch.outs {
				m := msg.Message{From: me, To: of.to, Subs: of.subs}
				buf := msg.Encode(msg.GetFrameCap(msg.EncodedSize(&m)), &m)
				err := c.Send(of.to, batch.tag, buf)
				if !retains {
					msg.PutFrame(buf)
				}
				if err != nil {
					sw.err = fmt.Errorf("core: rank %d send to %d (tag %d): %w", me, of.to, batch.tag, err)
					break
				}
			}
		}
	}()
	return sw
}

func (sw *sendWorker) enqueue(tag int, outs []stageFrame) { sw.ch <- stageBatch{tag: tag, outs: outs} }

// join closes the batch queue, waits for the worker to finish, and returns
// its first error. Safe to call twice (the engine joins on the happy path
// and again via defer).
func (sw *sendWorker) join() error {
	if !sw.joined {
		sw.joined = true
		close(sw.ch)
	}
	<-sw.done
	return sw.err
}

// scatterFrame routes one received frame's submessages: deliveries append
// to out (returning their payload byte count), everything else goes to the
// forward buffer of its next stage. Forwarded submessages are counted into
// the stage's telemetry (one batched update per frame).
func scatterFrame(t *vpt.Topology, me, d int, fb *msg.ForwardBuffers, out *Delivered, subs []msg.Submessage, tele *telemetry.Rank) (int, error) {
	delivered := 0
	fwdSubs, fwdBytes := 0, 0
	for _, sub := range subs {
		if sub.Dst == me {
			out.Subs = append(out.Subs, sub)
			delivered += len(sub.Data)
			continue
		}
		c2 := t.NextDiff(me, sub.Dst, d)
		if c2 < 0 {
			// The routing invariant guarantees digits 0..d of the holder
			// match the destination after stage d; a submessage that
			// matches in all digits but is not for us indicates a
			// corrupted frame.
			return delivered, fmt.Errorf("core: rank %d stage %d: submessage for %d cannot be forwarded",
				me, d, sub.Dst)
		}
		fb.Put(c2, t.Digit(sub.Dst, c2), sub)
		fwdSubs++
		fwdBytes += len(sub.Data)
	}
	if fwdSubs > 0 {
		tele.CountForward(d, fwdSubs, fwdBytes)
	}
	return delivered, nil
}

// copyDelivered moves the delivered payloads out of the retained (pooled)
// frame buffers into one contiguous allocation, so the Delivered result
// stays valid after the frames return to the arena. Self-sent submessages
// alias caller-owned payloads and would not need the copy, but SortSubs has
// interleaved them, so all payloads are copied uniformly.
func copyDelivered(out *Delivered) {
	total := 0
	for _, s := range out.Subs {
		total += len(s.Data)
	}
	if total == 0 {
		return
	}
	arena := make([]byte, 0, total)
	for i := range out.Subs {
		if len(out.Subs[i].Data) == 0 {
			continue
		}
		start := len(arena)
		arena = append(arena, out.Subs[i].Data...)
		out.Subs[i].Data = arena[start:len(arena):len(arena)]
	}
}

// DirectExchange is the baseline scheme BL: every rank sends its payloads
// straight to their destinations and receives from the ranks listed in
// recvFrom (which the application knows, e.g. from its data distribution;
// use SendSets.RecvSets or CountExchange to obtain it). Like Exchange it
// runs the pipelined engine by default — sends from a worker goroutine,
// receives in arrival order — with Ordered() restoring the legacy serial
// path.
func DirectExchange(c runtime.Comm, payloads map[int][]byte, recvFrom []int, opts ...ExchangeOpt) (*Delivered, error) {
	var opt exchangeOptions
	for _, o := range opts {
		o(&opt)
	}
	me := c.Rank()
	const tag = tagBase - 1
	out := &Delivered{}
	var start time.Time
	if opt.tele != nil {
		start = time.Now()
	}
	var err error
	if opt.ordered {
		out, err = directOrdered(c, me, payloads, recvFrom, out)
	} else {
		out, err = directPipelined(c, me, payloads, recvFrom, out)
	}
	if err == nil && opt.tele != nil {
		// The baseline is a single-stage schedule; its one span lands on
		// stage 0, matching TagStage's mapping of the direct tag.
		opt.tele.SpanSince(telemetry.KStage, 0, start)
	}
	return out, err
}

// directOrdered is the legacy baseline path, kept verbatim.
func directOrdered(c runtime.Comm, me int, payloads map[int][]byte, recvFrom []int, out *Delivered) (*Delivered, error) {
	const tag = tagBase - 1
	for dst, data := range payloads {
		if dst < 0 || dst >= c.Size() {
			return nil, fmt.Errorf("core: rank %d: destination %d out of range", me, dst)
		}
		if dst == me {
			out.Subs = append(out.Subs, msg.Submessage{Src: me, Dst: me, Data: data})
			continue
		}
		m := msg.Message{From: me, To: dst, Subs: []msg.Submessage{{Src: me, Dst: dst, Data: data}}}
		if err := c.Send(dst, tag, msg.Encode(nil, &m)); err != nil {
			return nil, fmt.Errorf("core: rank %d direct send to %d: %w", me, dst, err)
		}
	}
	for _, from := range recvFrom {
		if from == me {
			continue
		}
		raw, err := c.Recv(from, tag)
		if err != nil {
			return nil, fmt.Errorf("core: rank %d direct recv from %d: %w", me, from, err)
		}
		m, err := msg.Decode(raw)
		if err != nil {
			return nil, err
		}
		if m.From != from || m.To != me || len(m.Subs) != 1 {
			return nil, fmt.Errorf("core: rank %d: malformed direct frame from %d", me, from)
		}
		out.Subs = append(out.Subs, m.Subs[0])
	}
	msg.SortSubs(out.Subs)
	return out, nil
}

// directPipelined overlaps the baseline's sends and receives: a worker
// goroutine streams the sends from pooled buffers while the main loop
// accepts frames from the expected senders in arrival order.
func directPipelined(c runtime.Comm, me int, payloads map[int][]byte, recvFrom []int, out *Delivered) (*Delivered, error) {
	const tag = tagBase - 1
	for dst := range payloads {
		if dst < 0 || dst >= c.Size() {
			return nil, fmt.Errorf("core: rank %d: destination %d out of range", me, dst)
		}
	}
	if data, ok := payloads[me]; ok {
		out.Subs = append(out.Subs, msg.Submessage{Src: me, Dst: me, Data: data})
	}

	retainsSends := runtime.SendRetains(c)
	sendDone := make(chan error, 1)
	go func() {
		for dst, data := range payloads {
			if dst == me {
				continue
			}
			m := msg.Message{From: me, To: dst, Subs: []msg.Submessage{{Src: me, Dst: dst, Data: data}}}
			buf := msg.Encode(msg.GetFrameCap(msg.EncodedSize(&m)), &m)
			err := c.Send(dst, tag, buf)
			if !retainsSends {
				msg.PutFrame(buf)
			}
			if err != nil {
				sendDone <- fmt.Errorf("core: rank %d direct send to %d: %w", me, dst, err)
				return
			}
		}
		sendDone <- nil
	}()

	pending := make([]int, 0, len(recvFrom))
	for _, from := range recvFrom {
		if from != me {
			pending = append(pending, from)
		}
	}
	var retained [][]byte
	defer func() {
		for _, b := range retained {
			msg.PutFrame(b)
		}
	}()
	var decoded msg.Message
	for len(pending) > 0 {
		from, raw, err := runtime.RecvAnyOf(c, tag, pending)
		if err != nil {
			<-sendDone
			return nil, fmt.Errorf("core: rank %d direct recv: %w", me, err)
		}
		for i, p := range pending {
			if p == from {
				pending = append(pending[:i], pending[i+1:]...)
				break
			}
		}
		retained = append(retained, raw)
		if err := msg.DecodeInto(&decoded, raw); err != nil {
			<-sendDone
			return nil, err
		}
		if decoded.From != from || decoded.To != me || len(decoded.Subs) != 1 {
			<-sendDone
			return nil, fmt.Errorf("core: rank %d: malformed direct frame from %d", me, from)
		}
		out.Subs = append(out.Subs, decoded.Subs[0])
	}
	if err := <-sendDone; err != nil {
		return nil, err
	}
	msg.SortSubs(out.Subs)
	copyDelivered(out)
	return out, nil
}

// CountExchange lets each rank learn which ranks will send to it without
// global knowledge, using a hypercube-style regularized exchange of count
// vectors (the same trick the STFW scheme itself uses for data). It returns
// the sorted list of source ranks that have this rank in their send set.
// K must match the communicator size; the call is collective.
func CountExchange(c runtime.Comm, dests []int) ([]int, error) {
	K := c.Size()
	me := c.Rank()
	t, err := bestEffortTopology(K)
	if err != nil {
		return nil, err
	}
	payloads := make(map[int][]byte, len(dests))
	for _, dst := range dests {
		payloads[dst] = []byte{} // empty announcement: "I will send to you"
	}
	got, err := Exchange(c, t, payloads)
	if err != nil {
		return nil, err
	}
	srcs := make([]int, 0, len(got.Subs))
	for _, sub := range got.Subs {
		if sub.Src != me {
			srcs = append(srcs, sub.Src)
		}
	}
	return srcs, nil
}

// bestEffortTopology returns the highest-dimensional balanced VPT for K
// when K is a power of two, and the direct topology otherwise.
func bestEffortTopology(K int) (*vpt.Topology, error) {
	if K >= 2 && K&(K-1) == 0 {
		return vpt.NewBalanced(K, vpt.MaxDim(K))
	}
	return vpt.Direct(K)
}
