package core

import (
	"fmt"

	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/vpt"
)

// Delivered is what a rank gets out of an exchange: the original payloads
// destined for it, tagged with their source ranks.
type Delivered struct {
	Subs []msg.Submessage
}

// tagBase separates store-and-forward stage tags from other traffic on the
// same communicator.
const tagBase = 0x5747 // "WG"

// StageTag returns the transport tag the exchange uses for stage d;
// instrumentation (internal/trace) uses it to attribute frames to stages.
func StageTag(d int) int { return tagBase + d }

// TagStage inverts StageTag: it returns the stage of a tag and whether the
// tag belongs to the store-and-forward exchange at all (maxStages bounds
// the topology dimension).
func TagStage(tag, maxStages int) (int, bool) {
	d := tag - tagBase
	if d >= 0 && d < maxStages {
		return d, true
	}
	if tag == tagBase-1 {
		return 0, true // the direct-exchange tag maps to a single stage
	}
	return 0, false
}

// Exchange runs Algorithm 1 on one rank: it injects this rank's outgoing
// payloads into the forward buffers, executes the n communication stages of
// the topology (talking only to dimension-d neighbors in stage d), stores
// and forwards submessages of other ranks, and returns the submessages
// destined for this rank.
//
// payloads maps destination rank to the data this rank wants delivered
// there. A frame is sent to every dimension-d neighbor each stage (possibly
// empty) so receive counts are deterministic; the paper's message-count
// metrics ignore empty frames, and so does the Plan this call is validated
// against.
//
// Exchange is collective: every rank of the communicator must call it with
// the same topology.
func Exchange(c runtime.Comm, t *vpt.Topology, payloads map[int][]byte) (*Delivered, error) {
	me := c.Rank()
	if t.Size() != c.Size() {
		return nil, fmt.Errorf("core: topology size %d != communicator size %d", t.Size(), c.Size())
	}
	fb := msg.NewForwardBuffers(t.Dims())
	out := &Delivered{}

	// Lines 4-6: scatter my send list into the forward buffers, keyed by
	// the first differing digit.
	for dst, data := range payloads {
		if dst < 0 || dst >= t.Size() {
			return nil, fmt.Errorf("core: rank %d: destination %d out of range", me, dst)
		}
		if dst == me {
			out.Subs = append(out.Subs, msg.Submessage{Src: me, Dst: me, Data: data})
			continue
		}
		d := t.FirstDiff(me, dst)
		fb.Put(d, t.Digit(dst, d), msg.Submessage{Src: me, Dst: dst, Data: data})
	}

	var encodeBuf []byte
	for d := 0; d < t.N(); d++ {
		tag := tagBase + d
		myDigit := t.Digit(me, d)
		kd := t.Dim(d)

		// Lines 9-12: send one frame to each neighbor in dimension d. The
		// frame may be empty; emptiness is cheap on both transports and
		// makes the number of receives deterministic.
		for x := 0; x < kd; x++ {
			if x == myDigit {
				continue
			}
			to := t.WithDigit(me, d, x)
			m := msg.Message{From: me, To: to, Subs: fb.Take(d, x)}
			encodeBuf = msg.Encode(encodeBuf[:0], &m)
			frame := append([]byte(nil), encodeBuf...)
			if err := c.Send(to, tag, frame); err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d send to %d: %w", me, d, to, err)
			}
		}

		// Lines 13-17: receive one frame from each neighbor and scatter its
		// submessages into later-stage buffers (or deliver them).
		for x := 0; x < kd; x++ {
			if x == myDigit {
				continue
			}
			from := t.WithDigit(me, d, x)
			raw, err := c.Recv(from, tag)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d recv from %d: %w", me, d, from, err)
			}
			m, err := msg.Decode(raw)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d stage %d frame from %d: %w", me, d, from, err)
			}
			if m.From != from || m.To != me {
				return nil, fmt.Errorf("core: rank %d stage %d: misrouted frame %d->%d arrived from %d",
					me, d, m.From, m.To, from)
			}
			for _, sub := range m.Subs {
				if sub.Dst == me {
					out.Subs = append(out.Subs, sub)
					continue
				}
				c2 := t.NextDiff(me, sub.Dst, d)
				if c2 < 0 {
					// The routing invariant guarantees digits 0..d of the
					// holder match the destination after stage d; a
					// submessage that matches in all digits but is not for
					// us indicates a corrupted frame.
					return nil, fmt.Errorf("core: rank %d stage %d: submessage for %d cannot be forwarded",
						me, d, sub.Dst)
				}
				fb.Put(c2, t.Digit(sub.Dst, c2), sub)
			}
		}
	}
	if left := fb.SubCount(); left != 0 {
		return nil, fmt.Errorf("core: rank %d: %d submessages left undelivered", me, left)
	}
	msg.SortSubs(out.Subs)
	return out, nil
}

// DirectExchange is the baseline scheme BL: every rank sends its payloads
// straight to their destinations and receives from the ranks listed in
// recvFrom (which the application knows, e.g. from its data distribution;
// use SendSets.RecvSets or CountExchange to obtain it).
func DirectExchange(c runtime.Comm, payloads map[int][]byte, recvFrom []int) (*Delivered, error) {
	me := c.Rank()
	const tag = tagBase - 1
	out := &Delivered{}
	for dst, data := range payloads {
		if dst < 0 || dst >= c.Size() {
			return nil, fmt.Errorf("core: rank %d: destination %d out of range", me, dst)
		}
		if dst == me {
			out.Subs = append(out.Subs, msg.Submessage{Src: me, Dst: me, Data: data})
			continue
		}
		m := msg.Message{From: me, To: dst, Subs: []msg.Submessage{{Src: me, Dst: dst, Data: data}}}
		if err := c.Send(dst, tag, msg.Encode(nil, &m)); err != nil {
			return nil, fmt.Errorf("core: rank %d direct send to %d: %w", me, dst, err)
		}
	}
	for _, from := range recvFrom {
		if from == me {
			continue
		}
		raw, err := c.Recv(from, tag)
		if err != nil {
			return nil, fmt.Errorf("core: rank %d direct recv from %d: %w", me, from, err)
		}
		m, err := msg.Decode(raw)
		if err != nil {
			return nil, err
		}
		if m.From != from || m.To != me || len(m.Subs) != 1 {
			return nil, fmt.Errorf("core: rank %d: malformed direct frame from %d", me, from)
		}
		out.Subs = append(out.Subs, m.Subs[0])
	}
	msg.SortSubs(out.Subs)
	return out, nil
}

// CountExchange lets each rank learn which ranks will send to it without
// global knowledge, using a hypercube-style regularized exchange of count
// vectors (the same trick the STFW scheme itself uses for data). It returns
// the sorted list of source ranks that have this rank in their send set.
// K must match the communicator size; the call is collective.
func CountExchange(c runtime.Comm, dests []int) ([]int, error) {
	K := c.Size()
	me := c.Rank()
	t, err := bestEffortTopology(K)
	if err != nil {
		return nil, err
	}
	payloads := make(map[int][]byte, len(dests))
	for _, dst := range dests {
		payloads[dst] = []byte{} // empty announcement: "I will send to you"
	}
	got, err := Exchange(c, t, payloads)
	if err != nil {
		return nil, err
	}
	srcs := make([]int, 0, len(got.Subs))
	for _, sub := range got.Subs {
		if sub.Src != me {
			srcs = append(srcs, sub.Src)
		}
	}
	return srcs, nil
}

// bestEffortTopology returns the highest-dimensional balanced VPT for K
// when K is a power of two, and the direct topology otherwise.
func bestEffortTopology(K int) (*vpt.Topology, error) {
	if K >= 2 && K&(K-1) == 0 {
		return vpt.NewBalanced(K, vpt.MaxDim(K))
	}
	return vpt.Direct(K)
}
