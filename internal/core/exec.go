package core

import (
	"fmt"
	"sort"

	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/vpt"
)

// Delivered is what a rank gets out of an exchange: the original payloads
// destined for it, tagged with their source ranks.
type Delivered struct {
	Subs []msg.Submessage
}

// tagBase separates store-and-forward stage tags from other traffic on the
// same communicator.
const tagBase = 0x5747 // "WG"

// StageTag returns the transport tag the exchange uses for stage d;
// instrumentation (internal/trace) uses it to attribute frames to stages.
func StageTag(d int) int { return tagBase + d }

// TagStage inverts StageTag: it returns the stage of a tag and whether the
// tag belongs to the store-and-forward exchange at all (maxStages bounds
// the topology dimension).
func TagStage(tag, maxStages int) (int, bool) {
	d := tag - tagBase
	if d >= 0 && d < maxStages {
		return d, true
	}
	if tag == tagBase-1 {
		return 0, true // the direct-exchange tag maps to a single stage
	}
	return 0, false
}

// censusTagBase offsets the dynamic-discovery census (dynamic.Discover)
// into its own tag range, disjoint from every StageTag and from the direct
// tag, so a census can interleave with payload exchanges on the same
// communicator without cross-matching frames. The offset leaves room for
// any realistic dimension count (StageTag grows by 1 per stage and
// topologies cap out near lg2 K stages).
const censusTagBase = tagBase + 0x100

// CensusTag returns the transport tag stage d of the dynamic-discovery
// census travels under. TagStage deliberately does not map these tags:
// census frames carry announcements, not payload, and stage-scoped
// telemetry should not attribute them to data stages.
func CensusTag(d int) int { return censusTagBase + d }

// AppTagSpan returns the half-open tag range [lo, hi) every exchange path
// draws from for a world of at most maxStages stages: the direct-baseline
// tag, the stage tags, and the census tags. Transports that reserve tags
// for their own control traffic (runtime.TagReserver) must reserve outside
// this span; composite transports check the two never overlap.
func AppTagSpan(maxStages int) (lo, hi int) {
	return tagBase - 1, censusTagBase + maxStages
}

// ExchangeOpt configures an Exchange, DirectExchange, or Persistent.Run
// call. All ranks of a collective call must pass the same options.
type ExchangeOpt func(*exchangeOptions)

type exchangeOptions struct {
	ordered bool
	plan    *Plan
	probe   func(stage, residentPayloadBytes int)
	tele    *telemetry.Rank
}

// Ordered selects the stage machine's legacy discipline: sends issued
// inline from the main loop (one fresh frame copy each) and frames received
// in fixed neighbor order. The paper-reproduction experiments use it to
// stay bit-identical with the original executor; the default discipline is
// the pipelined one.
func Ordered() ExchangeOpt { return func(o *exchangeOptions) { o.ordered = true } }

// WithPlan switches Exchange onto the plan-driven schedule front-end: the
// per-rank StageSchedule is derived once from the static plan's route
// entries (and cached inside the Plan), and its exact per-frame occupancy
// pre-sizes the rank's forward buffers, so repeated planned exchanges skip
// both per-call schedule construction and append growth. The plan must have
// been built for the topology being executed; a plan for a different
// topology is ignored.
func WithPlan(p *Plan) ExchangeOpt { return func(o *exchangeOptions) { o.plan = p } }

// WithStageProbe installs an observer invoked once per completed stage with
// the payload bytes resident at this rank at the stage boundary: forward
// buffer contents plus the payloads the stage delivered. The value is
// directly comparable to 8*Plan.MaxBufferWords, which tests use to check
// that a live execution never exceeds the static occupancy bound.
func WithStageProbe(f func(stage, residentPayloadBytes int)) ExchangeOpt {
	return func(o *exchangeOptions) { o.probe = f }
}

// WithTelemetry attaches this rank's live telemetry collector: the engine
// records one stage-scoped span per communication stage and counts the
// submessages it stores and forwards. Frame-level send/recv counters come
// from wrapping the communicator (telemetry.Registry.WrapComm), which works
// without the engine's cooperation; this option adds the parts only the
// engine can see. A nil collector is a no-op.
func WithTelemetry(t *telemetry.Rank) ExchangeOpt {
	return func(o *exchangeOptions) { o.tele = t }
}

// Exchange runs Algorithm 1 on one rank: it injects this rank's outgoing
// payloads into the forward buffers, executes the n communication stages of
// the topology (talking only to dimension-d neighbors in stage d), stores
// and forwards submessages of other ranks, and returns the submessages
// destined for this rank.
//
// payloads maps destination rank to the data this rank wants delivered
// there. A frame is sent to every dimension-d neighbor each stage (possibly
// empty) so receive counts are deterministic; the paper's message-count
// metrics ignore empty frames, and so does the Plan this call is validated
// against.
//
// Exchange is the dynamic front-end of the stage machine: it builds a
// StageSchedule from the topology alone (or takes the plan-derived one via
// WithPlan) and routes each submessage as frames land. By default the
// machine runs its pipelined discipline — a worker goroutine issues the
// stage's sends from pooled frame buffers while the main loop receives
// frames in arrival order (runtime.RecvAnyOf), scattering each as it lands.
// Ordered() restores the legacy fixed-order discipline.
//
// Exchange is collective: every rank of the communicator must call it with
// the same topology and options.
func Exchange(c runtime.Comm, t *vpt.Topology, payloads map[int][]byte, opts ...ExchangeOpt) (*Delivered, error) {
	var opt exchangeOptions
	for _, o := range opts {
		o(&opt)
	}
	me := c.Rank()
	if t.Size() != c.Size() {
		return nil, fmt.Errorf("core: topology size %d != communicator size %d", t.Size(), c.Size())
	}
	fb := msg.NewForwardBuffers(t.Dims())
	var sched *StageSchedule
	if opt.plan != nil && opt.plan.Topo.Equal(t) {
		sched = opt.plan.scheduleFor(me)
		for d := range sched.Stages {
			for _, s := range sched.Stages[d].Sends {
				if s.Reserve > 0 {
					fb.Reserve(d, t.Digit(s.To, d), s.Reserve)
				}
			}
		}
	} else {
		sched = buildTopologySchedule(t, me)
	}
	out := &Delivered{}

	// Lines 4-6: scatter my send list into the forward buffers, keyed by
	// the first differing digit.
	for dst, data := range payloads {
		if dst < 0 || dst >= t.Size() {
			return nil, fmt.Errorf("core: rank %d: destination %d out of range", me, dst)
		}
		if dst == me {
			out.Subs = append(out.Subs, msg.Submessage{Src: me, Dst: me, Data: data})
			continue
		}
		d := t.FirstDiff(me, dst)
		fb.Put(d, t.Digit(dst, d), msg.Submessage{Src: me, Dst: dst, Data: data})
	}

	sm := &stageMachine{
		sched:   sched,
		ordered: opt.ordered,
		tele:    opt.tele,
		traffic: sched.Traffic(),
		// Lines 9-12: each outbound frame drains the forward buffer keyed by
		// the destination's dimension-d digit.
		outSubs: func(d, _ int, slot SendSlot) ([]msg.Submessage, error) {
			return fb.Take(d, t.Digit(slot.To, d)), nil
		},
		// Lines 13-17: scatter received submessages into later-stage buffers
		// or deliver them.
		onFrame: func(d, _ int, subs []msg.Submessage) (int, error) {
			return scatterFrame(t, me, d, fb, out, subs, opt.tele)
		},
		finish: func(pooled bool) error {
			if left := fb.SubCount(); left != 0 {
				return fmt.Errorf("core: rank %d: %d submessages left undelivered", me, left)
			}
			msg.SortSubs(out.Subs)
			if pooled {
				msg.CompactSubs(out.Subs)
			}
			return nil
		},
	}
	if opt.probe != nil {
		sm.onStage = func(d, delivered int) { opt.probe(d, fb.PayloadBytes()+delivered) }
	}
	if err := sm.run(c, me); err != nil {
		return nil, err
	}
	return out, nil
}

// scatterFrame routes one received frame's submessages: deliveries append
// to out (returning their payload byte count), everything else goes to the
// forward buffer of its next stage. Forwarded submessages are counted into
// the stage's telemetry (one batched update per frame).
func scatterFrame(t *vpt.Topology, me, d int, fb *msg.ForwardBuffers, out *Delivered, subs []msg.Submessage, tele *telemetry.Rank) (int, error) {
	delivered := 0
	fwdSubs, fwdBytes := 0, 0
	for _, sub := range subs {
		if sub.Dst == me {
			out.Subs = append(out.Subs, sub)
			delivered += len(sub.Data)
			continue
		}
		c2 := t.NextDiff(me, sub.Dst, d)
		if c2 < 0 {
			// The routing invariant guarantees digits 0..d of the holder
			// match the destination after stage d; a submessage that
			// matches in all digits but is not for us indicates a
			// corrupted frame.
			return delivered, fmt.Errorf("core: rank %d stage %d: submessage for %d cannot be forwarded",
				me, d, sub.Dst)
		}
		fb.Put(c2, t.Digit(sub.Dst, c2), sub)
		fwdSubs++
		fwdBytes += len(sub.Data)
	}
	if fwdSubs > 0 {
		tele.CountForward(d, fwdSubs, fwdBytes)
	}
	return delivered, nil
}

// DirectExchange is the baseline scheme BL: every rank sends its payloads
// straight to their destinations and receives from the ranks listed in
// recvFrom (which the application knows, e.g. from its data distribution;
// use SendSets.RecvSets or CountExchange to obtain it). It is the stage
// machine's single-stage front-end — one frame per destination, one
// expected frame per source — and like Exchange it runs the pipelined
// discipline by default, with Ordered() restoring the legacy serial path.
func DirectExchange(c runtime.Comm, payloads map[int][]byte, recvFrom []int, opts ...ExchangeOpt) (*Delivered, error) {
	var opt exchangeOptions
	for _, o := range opts {
		o(&opt)
	}
	me := c.Rank()
	out := &Delivered{}
	dests := make([]int, 0, len(payloads))
	for dst := range payloads {
		if dst < 0 || dst >= c.Size() {
			return nil, fmt.Errorf("core: rank %d: destination %d out of range", me, dst)
		}
		if dst == me {
			out.Subs = append(out.Subs, msg.Submessage{Src: me, Dst: me, Data: payloads[me]})
			continue
		}
		dests = append(dests, dst)
	}
	sort.Ints(dests) // deterministic send order (the schedule is ordered data, not map iteration)

	// One submessage per outbound frame, backed by a single array so the
	// send worker can alias slices of it until the exchange ends.
	subArr := make([]msg.Submessage, 0, len(dests))
	sched := buildDirectSchedule(me, dests, recvFrom)
	if err := validateSchedule(sched, me, c.Size()); err != nil {
		return nil, err
	}
	sm := &stageMachine{
		sched:   sched,
		ordered: opt.ordered,
		tele:    opt.tele,
		traffic: sched.Traffic(),
		outSubs: func(_, _ int, slot SendSlot) ([]msg.Submessage, error) {
			subArr = append(subArr, msg.Submessage{Src: me, Dst: slot.To, Data: payloads[slot.To]})
			return subArr[len(subArr)-1:], nil
		},
		onFrame: func(_, from int, subs []msg.Submessage) (int, error) {
			if len(subs) != 1 || subs[0].Src != from || subs[0].Dst != me {
				return 0, fmt.Errorf("core: rank %d: malformed direct frame from %d", me, from)
			}
			out.Subs = append(out.Subs, subs[0])
			return len(subs[0].Data), nil
		},
		finish: func(pooled bool) error {
			msg.SortSubs(out.Subs)
			if pooled {
				msg.CompactSubs(out.Subs)
			}
			return nil
		},
	}
	if err := sm.run(c, me); err != nil {
		return nil, err
	}
	return out, nil
}

// CountExchange lets each rank learn which ranks will send to it without
// global knowledge, using a hypercube-style regularized exchange of count
// vectors (the same trick the STFW scheme itself uses for data). It returns
// the sorted list of source ranks that have this rank in their send set.
// K must match the communicator size; the call is collective.
func CountExchange(c runtime.Comm, dests []int) ([]int, error) {
	K := c.Size()
	me := c.Rank()
	t, err := bestEffortTopology(K)
	if err != nil {
		return nil, err
	}
	payloads := make(map[int][]byte, len(dests))
	for _, dst := range dests {
		payloads[dst] = []byte{} // empty announcement: "I will send to you"
	}
	got, err := Exchange(c, t, payloads)
	if err != nil {
		return nil, err
	}
	srcs := make([]int, 0, len(got.Subs))
	for _, sub := range got.Subs {
		if sub.Src != me {
			srcs = append(srcs, sub.Src)
		}
	}
	return srcs, nil
}

// bestEffortTopology returns the highest-dimensional balanced VPT for K
// when K is a power of two, and the direct topology otherwise.
func bestEffortTopology(K int) (*vpt.Topology, error) {
	if K >= 2 && K&(K-1) == 0 {
		return vpt.NewBalanced(K, vpt.MaxDim(K))
	}
	return vpt.Direct(K)
}
