// StageSchedule is the intermediate representation behind every exchange
// path: a per-rank program of n communication stages, each listing the
// outbound frame slots (destination, in send order, with the expected
// submessage occupancy when a front-end knows it) and the expected inbound
// sender set. One stage machine (engine.go) executes the IR under a
// configurable receive policy and frame-sourcing discipline; what differs
// between the public APIs is only which front-end builds the schedule:
//
//   - dynamic    — from the topology alone (Exchange without a plan):
//     every dimension-d neighbor is both a send and a receive slot, and
//     routing decisions are made per submessage as frames land;
//   - plan-driven — from a static Plan's route entries (Exchange with
//     WithPlan): the same stage structure annotated with each outbound
//     frame's exact submessage count, so the rank's forward buffers are
//     sized once instead of grown per call. The schedule is built once per
//     (plan, rank) and cached inside the Plan;
//   - learned    — from a Persistent's recorded pattern (Persistent.Run):
//     send slots carry the learned frame layouts, and the inbound sender
//     set is the learning run's;
//   - compiled   — Persistent.Compile lowers the learned schedule further
//     into a Replay: the same stage skeleton with every frame pre-encoded
//     as a byte template and every copy turned into a fixed-offset op (see
//     compiled.go).
//
// This is the persistent/isomorphic-collective framing: a communication
// pattern is data (a schedule), and executing it is one generic machine.
package core

import (
	"fmt"
	"sync"

	"stfw/internal/runtime"
	"stfw/internal/vpt"
)

// SendSlot is one outbound frame of a schedule stage: the destination rank
// and, when the front-end knows it, the exact number of submessages the
// frame will carry (0 = unknown; used to pre-size forward buffers).
type SendSlot struct {
	To      int
	Reserve int
}

// ScheduleStage is one communication stage of the IR.
type ScheduleStage struct {
	// Tag is the transport tag all frames of the stage travel under.
	Tag int
	// Dim is the VPT dimension the stage traverses — the routing digit its
	// frames advance. Historically this was implicit in the tag layout
	// (Tag == StageTag(Dim)); it is explicit so that consumers below the
	// schedule layer (composite transports, telemetry attribution) route by
	// dimension metadata instead of reversing tag arithmetic. The direct
	// baseline's single stage uses Dim 0. Every front-end populates it and
	// VerifyWorld checks it stays in lockstep across ranks.
	Dim int
	// Sends lists the outbound frames in send order. A slot produces a
	// frame even when it carries no submessages: empty frames keep every
	// rank's receive count deterministic.
	Sends []SendSlot
	// RecvFrom is the set of ranks that send this rank a frame in the
	// stage. The receive policy (fixed-order vs arrival-order) chooses the
	// order in which they are served.
	RecvFrom []int
}

// StageSchedule is the per-rank IR the stage machine executes.
type StageSchedule struct {
	Stages []ScheduleStage

	// traffic caches the transport hint built by Traffic. Safe to cache
	// even under dynamic patching: Patch changes slot occupancies, never
	// the stage/frame skeleton the summary describes.
	trafficOnce sync.Once
	traffic     []runtime.StageTraffic
}

// buildTopologySchedule is the dynamic front-end: stage d talks to every
// dimension-d neighbor, in digit order, with no occupancy annotations.
func buildTopologySchedule(t *vpt.Topology, me int) *StageSchedule {
	sched := &StageSchedule{Stages: make([]ScheduleStage, t.N())}
	for d := 0; d < t.N(); d++ {
		st := &sched.Stages[d]
		st.Tag = StageTag(d)
		st.Dim = d
		myDigit := t.Digit(me, d)
		kd := t.Dim(d)
		st.Sends = make([]SendSlot, 0, kd-1)
		st.RecvFrom = make([]int, 0, kd-1)
		for x := 0; x < kd; x++ {
			if x == myDigit {
				continue
			}
			nbr := t.WithDigit(me, d, x)
			st.Sends = append(st.Sends, SendSlot{To: nbr})
			st.RecvFrom = append(st.RecvFrom, nbr)
		}
	}
	return sched
}

// buildPlanSchedule is the plan-driven front-end: the dynamic stage
// structure annotated with the plan's exact per-frame submessage counts
// (the submessages of the stage-d frame this rank sends to a neighbor are
// exactly the final contents of the corresponding forward buffer). Empty
// frames keep their slots — receive counts stay deterministic — with
// Reserve left 0.
func buildPlanSchedule(p *Plan, me int) *StageSchedule {
	t := p.Topo
	sched := buildTopologySchedule(t, me)
	for d, stage := range p.Stages {
		if d >= len(sched.Stages) {
			break
		}
		for _, f := range stage {
			if f.From != me {
				continue
			}
			for i := range sched.Stages[d].Sends {
				if sched.Stages[d].Sends[i].To == f.To {
					sched.Stages[d].Sends[i].Reserve = f.Subs
					break
				}
			}
		}
	}
	return sched
}

// scheduleFor returns the cached per-rank schedule of the plan, building it
// on first use. Plans are shared by every rank of a world, so the cache is
// guarded: each rank pays the schedule construction once per plan instead
// of once per Exchange call.
func (p *Plan) scheduleFor(me int) *StageSchedule {
	p.schedMu.Lock()
	defer p.schedMu.Unlock()
	if p.schedCache == nil {
		p.schedCache = make(map[int]*StageSchedule)
	}
	if s, ok := p.schedCache[me]; ok {
		return s
	}
	s := buildPlanSchedule(p, me)
	p.schedCache[me] = s
	return s
}

// buildDirectSchedule is the single-stage baseline schedule: one frame per
// destination (send order = ascending rank) and one expected frame per
// source.
func buildDirectSchedule(me int, dests []int, recvFrom []int) *StageSchedule {
	st := ScheduleStage{Tag: tagBase - 1, Dim: 0}
	for _, dst := range dests {
		if dst == me {
			continue
		}
		st.Sends = append(st.Sends, SendSlot{To: dst, Reserve: 1})
	}
	for _, from := range recvFrom {
		if from == me {
			continue
		}
		st.RecvFrom = append(st.RecvFrom, from)
	}
	return &StageSchedule{Stages: []ScheduleStage{st}}
}

// validateSchedule sanity-checks a schedule against a world size.
func validateSchedule(sched *StageSchedule, me, size int) error {
	for d := range sched.Stages {
		st := &sched.Stages[d]
		for _, s := range st.Sends {
			if s.To < 0 || s.To >= size || s.To == me {
				return fmt.Errorf("core: schedule stage %d: send slot to %d invalid for rank %d of %d", d, s.To, me, size)
			}
		}
		for _, f := range st.RecvFrom {
			if f < 0 || f >= size || f == me {
				return fmt.Errorf("core: schedule stage %d: recv slot from %d invalid for rank %d of %d", d, f, me, size)
			}
		}
	}
	return nil
}

// schedCacheState is embedded in Plan (see plan.go fields) — declared here
// to keep every schedule front-end in one file.
type schedCacheState struct {
	schedMu    sync.Mutex
	schedCache map[int]*StageSchedule
}
