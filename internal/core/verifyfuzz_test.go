package core

import (
	"testing"
)

// fuzzWorld decodes an arbitrary byte string into a small world of
// schedules (K in 2..8, 1..3 stages). The decoder deliberately produces
// out-of-range ranks, self-sends, duplicate slots, tag skew, and ragged
// stage counts — the verifier must diagnose all of it without panicking.
func fuzzWorld(data []byte) []*StageSchedule {
	i := 0
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := data[i%len(data)]
		i++
		return int(b)
	}
	K := 2 + next()%7
	stages := 1 + next()%3
	scheds := make([]*StageSchedule, K)
	for r := range scheds {
		ns := stages
		if next()%16 == 0 {
			ns = 1 + next()%3 // ragged stage count
		}
		s := &StageSchedule{Stages: make([]ScheduleStage, ns)}
		for d := range s.Stages {
			st := &s.Stages[d]
			st.Tag = StageTag(d)
			if next()%16 == 0 {
				st.Tag += 1 + next()%3 // tag skew
			}
			for n := next() % 4; n > 0; n-- {
				st.Sends = append(st.Sends, SendSlot{
					To:      next()%(K+2) - 1, // allows -1 and K: out of range
					Reserve: next() % 3,
				})
			}
			for n := next() % 4; n > 0; n-- {
				st.RecvFrom = append(st.RecvFrom, next()%(K+2)-1)
			}
		}
		scheds[r] = s
	}
	return scheds
}

// coherentFrom rebuilds a well-formed world from the fuzzed one: it keeps
// each rank's in-range, non-self, deduplicated send slots, unifies tags and
// stage counts, and derives every RecvFrom set as the exact transpose of
// the kept sends. By construction such a world is pairwise consistent, so
// the verifier must accept it — the completeness direction of the fuzz.
func coherentFrom(scheds []*StageSchedule) []*StageSchedule {
	K := len(scheds)
	stages := len(scheds[0].Stages)
	out := make([]*StageSchedule, K)
	for r := range out {
		out[r] = &StageSchedule{Stages: make([]ScheduleStage, stages)}
		for d := range out[r].Stages {
			out[r].Stages[d].Tag = StageTag(d)
		}
	}
	for r, s := range scheds {
		for d := 0; d < stages && d < len(s.Stages); d++ {
			seen := map[int]bool{}
			for _, slot := range s.Stages[d].Sends {
				if slot.To < 0 || slot.To >= K || slot.To == r || seen[slot.To] {
					continue
				}
				seen[slot.To] = true
				out[r].Stages[d].Sends = append(out[r].Stages[d].Sends, SendSlot{To: slot.To})
				out[slot.To].Stages[d].RecvFrom = append(out[slot.To].Stages[d].RecvFrom, r)
			}
		}
	}
	return out
}

// FuzzVerifyWorld feeds adversarial schedule worlds to the verifier and
// checks three properties: it never panics, a nil verdict is sound (every
// send really is matched by a receive expectation and vice versa, all slots
// in range), and it accepts every world rebuilt into coherent form.
func FuzzVerifyWorld(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{7, 2, 1, 3, 2, 1, 0, 9, 200, 17})
	f.Add([]byte{3, 1, 16, 16, 5, 4, 3, 2, 1, 0, 255, 254, 8, 8})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		scheds := fuzzWorld(data)
		K := len(scheds)
		for r, s := range scheds {
			_ = validateSchedule(s, r, K) // must not panic on any input
		}
		if err := VerifyWorld(scheds); err == nil {
			// Soundness: a clean verdict means real pairwise consistency.
			for r, s := range scheds {
				for d := range s.Stages {
					for _, slot := range s.Stages[d].Sends {
						if slot.To < 0 || slot.To >= K || slot.To == r {
							t.Fatalf("verified world has invalid send %d->%d in stage %d", r, slot.To, d)
						}
						if !contains(scheds[slot.To].Stages[d].RecvFrom, r) {
							t.Fatalf("verified world: send %d->%d in stage %d has no matching expectation", r, slot.To, d)
						}
					}
					for _, from := range s.Stages[d].RecvFrom {
						if !sendsTo(scheds, from, r, d) {
							t.Fatalf("verified world: rank %d expects %d in stage %d but it never sends", r, from, d)
						}
					}
				}
			}
		}
		// Completeness: the coherent rebuild must always verify.
		if err := VerifyWorld(coherentFrom(scheds)); err != nil {
			t.Fatalf("coherent world rejected: %v", err)
		}
	})
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func sendsTo(scheds []*StageSchedule, from, to, d int) bool {
	if from < 0 || from >= len(scheds) || d >= len(scheds[from].Stages) {
		return false
	}
	for _, slot := range scheds[from].Stages[d].Sends {
		if slot.To == to {
			return true
		}
	}
	return false
}
