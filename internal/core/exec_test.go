package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// countingComm wraps a Comm and tallies nonempty frames per (rank, stage) so
// executions can be validated against the static Plan.
type countingComm struct {
	runtime.Comm
	mu        *sync.Mutex
	sentMsgs  []int   // per rank, nonempty frames
	sentWords []int64 // per rank, payload words (8-byte words of submessage data)
}

func newCounting(size int) *countingComm {
	return &countingComm{
		mu:        &sync.Mutex{},
		sentMsgs:  make([]int, size),
		sentWords: make([]int64, size),
	}
}

func (cc *countingComm) wrap(c runtime.Comm) runtime.Comm {
	return &countingEndpoint{Comm: c, shared: cc}
}

type countingEndpoint struct {
	runtime.Comm
	shared *countingComm
}

func (ce *countingEndpoint) Send(to, tag int, payload []byte) error {
	m, err := msg.Decode(payload)
	if err == nil && len(m.Subs) > 0 {
		var words int64
		for _, s := range m.Subs {
			words += int64(len(s.Data) / 8)
		}
		ce.shared.mu.Lock()
		ce.shared.sentMsgs[ce.Rank()]++
		ce.shared.sentWords[ce.Rank()] += words
		ce.shared.mu.Unlock()
	}
	return ce.Comm.Send(to, tag, payload)
}

// payloadWord encodes (src, dst, salt) into one 8-byte word so every
// submessage payload is unique and checkable.
func payloadWord(src, dst, salt int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b[0:], uint32(src*65536+dst))
	binary.LittleEndian.PutUint32(b[4:], uint32(salt))
	return b
}

// payloadWords returns words 8-byte words derived from (src, dst).
func payloadWords(src, dst int, words int64) []byte {
	b := make([]byte, 0, words*8)
	for w := int64(0); w < words; w++ {
		b = append(b, payloadWord(src, dst, int(w))...)
	}
	return b
}

// runExchange executes Exchange on every rank of a fresh channel world and
// returns the deliveries, plus actual per-rank nonempty message counts.
func runExchange(t *testing.T, tp *vpt.Topology, s *SendSets) ([]*Delivered, *countingComm) {
	t.Helper()
	w, err := chanpt.NewWorld(tp.Size(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cc := newCounting(tp.Size())
	got := make([]*Delivered, tp.Size())
	comms := w.Comms()
	wrapped := make([]runtime.Comm, len(comms))
	for i, c := range comms {
		wrapped[i] = cc.wrap(c)
	}
	err = runtime.Run(wrapped, func(c runtime.Comm) error {
		payloads := map[int][]byte{}
		for _, pr := range s.Sets[c.Rank()] {
			payloads[pr.Dst] = payloadWords(c.Rank(), pr.Dst, pr.Words)
		}
		d, err := Exchange(c, tp, payloads)
		if err != nil {
			return err
		}
		got[c.Rank()] = d
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, cc
}

// checkDeliveries verifies that every rank received exactly the payloads the
// send sets say it should, intact and exactly once.
func checkDeliveries(t *testing.T, s *SendSets, got []*Delivered) {
	t.Helper()
	recv := s.RecvSets()
	for dst := 0; dst < s.K; dst++ {
		want := recv[dst]
		subs := got[dst].Subs
		if len(subs) != len(want) {
			t.Fatalf("rank %d: got %d deliveries, want %d", dst, len(subs), len(want))
		}
		for i, pr := range want {
			sub := subs[i] // both sorted by source
			if sub.Src != pr.Dst {
				t.Fatalf("rank %d delivery %d: src %d, want %d", dst, i, sub.Src, pr.Dst)
			}
			if sub.Dst != dst {
				t.Fatalf("rank %d delivery %d: dst %d", dst, i, sub.Dst)
			}
			if wantData := payloadWords(sub.Src, dst, pr.Words); !bytes.Equal(sub.Data, wantData) {
				t.Fatalf("rank %d delivery from %d: payload corrupted", dst, sub.Src)
			}
		}
	}
}

func TestExchangeDeliversAllTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][]int{{16}, {4, 4}, {2, 8}, {8, 2}, {2, 2, 2, 2}, {4, 2, 2}} {
		tp := vpt.MustNew(dims...)
		s := randomSendSets(rng, tp.Size(), 2, 3, 4)
		got, _ := runExchange(t, tp, s)
		checkDeliveries(t, s, got)
	}
}

func TestExchangeCompleteExchange(t *testing.T) {
	tp := vpt.MustNew(4, 4)
	s := Complete(16, 2)
	got, cc := runExchange(t, tp, s)
	checkDeliveries(t, s, got)
	// In the complete exchange every rank sends exactly the bound.
	for q := 0; q < 16; q++ {
		if cc.sentMsgs[q] != MaxMessageBound(tp) {
			t.Errorf("rank %d sent %d msgs, want bound %d", q, cc.sentMsgs[q], MaxMessageBound(tp))
		}
	}
}

func TestExchangeMatchesPlanCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, dims := range [][]int{{4, 4}, {2, 2, 2, 2}, {4, 2, 2}, {16}} {
		tp := vpt.MustNew(dims...)
		s := randomSendSets(rng, tp.Size(), 2, 3, 5)
		plan, err := BuildPlan(tp, s)
		if err != nil {
			t.Fatal(err)
		}
		_, cc := runExchange(t, tp, s)
		for q := 0; q < tp.Size(); q++ {
			if cc.sentMsgs[q] != plan.SentMsgs[q] {
				t.Errorf("%v rank %d: executed %d msgs, plan says %d", dims, q, cc.sentMsgs[q], plan.SentMsgs[q])
			}
			if cc.sentWords[q] != plan.SentWords[q] {
				t.Errorf("%v rank %d: executed %d words, plan says %d", dims, q, cc.sentWords[q], plan.SentWords[q])
			}
		}
	}
}

func TestExchangeSelfSend(t *testing.T) {
	tp := vpt.MustNew(2, 2)
	w, _ := chanpt.NewWorld(4, 2)
	err := w.Run(func(c runtime.Comm) error {
		d, err := Exchange(c, tp, map[int][]byte{c.Rank(): []byte("self")})
		if err != nil {
			return err
		}
		if len(d.Subs) != 1 || d.Subs[0].Src != c.Rank() || string(d.Subs[0].Data) != "self" {
			return fmt.Errorf("rank %d: self payload lost: %+v", c.Rank(), d.Subs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeEmptyPayloads(t *testing.T) {
	tp := vpt.MustNew(2, 2, 2)
	w, _ := chanpt.NewWorld(8, 2)
	err := w.Run(func(c runtime.Comm) error {
		d, err := Exchange(c, tp, nil)
		if err != nil {
			return err
		}
		if len(d.Subs) != 0 {
			return fmt.Errorf("rank %d got %d phantom deliveries", c.Rank(), len(d.Subs))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeZeroLengthData(t *testing.T) {
	// Zero-byte payloads (used by CountExchange) must be routed and
	// delivered like any other submessage.
	tp := vpt.MustNew(2, 2)
	w, _ := chanpt.NewWorld(4, 2)
	err := w.Run(func(c runtime.Comm) error {
		dst := (c.Rank() + 3) % 4
		d, err := Exchange(c, tp, map[int][]byte{dst: {}})
		if err != nil {
			return err
		}
		if len(d.Subs) != 1 {
			return fmt.Errorf("rank %d: %d deliveries, want 1", c.Rank(), len(d.Subs))
		}
		if want := (c.Rank() + 1) % 4; d.Subs[0].Src != want {
			return fmt.Errorf("rank %d: delivery from %d, want %d", c.Rank(), d.Subs[0].Src, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeTopologyMismatch(t *testing.T) {
	tp := vpt.MustNew(2, 2) // size 4, world size 2
	w, _ := chanpt.NewWorld(2, 1)
	err := w.Run(func(c runtime.Comm) error {
		_, err := Exchange(c, tp, nil)
		if err == nil {
			return fmt.Errorf("size mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeBadDestination(t *testing.T) {
	tp := vpt.MustNew(2, 2)
	w, _ := chanpt.NewWorld(4, 2)
	errs := make([]error, 4)
	_ = runtime.Run(w.Comms(), func(c runtime.Comm) error {
		if c.Rank() == 0 {
			_, err := Exchange(c, tp, map[int][]byte{99: []byte("x")})
			errs[0] = err
			return nil // do not abort: other ranks would block otherwise
		}
		return nil
	})
	if errs[0] == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestDirectExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	K := 16
	s := randomSendSets(rng, K, 2, 3, 4)
	recv := s.RecvSets()
	w, _ := chanpt.NewWorld(K, K)
	got := make([]*Delivered, K)
	err := w.Run(func(c runtime.Comm) error {
		payloads := map[int][]byte{}
		for _, pr := range s.Sets[c.Rank()] {
			payloads[pr.Dst] = payloadWords(c.Rank(), pr.Dst, pr.Words)
		}
		recvFrom := make([]int, 0, len(recv[c.Rank()]))
		for _, pr := range recv[c.Rank()] {
			recvFrom = append(recvFrom, pr.Dst)
		}
		d, err := DirectExchange(c, payloads, recvFrom)
		if err != nil {
			return err
		}
		got[c.Rank()] = d
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checkDeliveries(t, s, got)
}

func TestDirectAndSTFWAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	K := 32
	s := randomSendSets(rng, K, 3, 2, 3)
	recv := s.RecvSets()
	tp, _ := vpt.NewBalanced(K, 5)

	gotSTFW, _ := runExchange(t, tp, s)

	w, _ := chanpt.NewWorld(K, K)
	gotBL := make([]*Delivered, K)
	err := w.Run(func(c runtime.Comm) error {
		payloads := map[int][]byte{}
		for _, pr := range s.Sets[c.Rank()] {
			payloads[pr.Dst] = payloadWords(c.Rank(), pr.Dst, pr.Words)
		}
		var recvFrom []int
		for _, pr := range recv[c.Rank()] {
			recvFrom = append(recvFrom, pr.Dst)
		}
		d, err := DirectExchange(c, payloads, recvFrom)
		if err != nil {
			return err
		}
		gotBL[c.Rank()] = d
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < K; q++ {
		a, b := gotSTFW[q].Subs, gotBL[q].Subs
		if len(a) != len(b) {
			t.Fatalf("rank %d: STFW delivered %d, BL %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i].Src != b[i].Src || !bytes.Equal(a[i].Data, b[i].Data) {
				t.Fatalf("rank %d delivery %d differs between schemes", q, i)
			}
		}
	}
}

func TestCountExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, K := range []int{8, 16, 7} { // include a non-power-of-two world
		s := randomSendSets(rng, K, 1, 2, 1)
		recv := s.RecvSets()
		w, _ := chanpt.NewWorld(K, K)
		err := w.Run(func(c runtime.Comm) error {
			var dests []int
			for _, pr := range s.Sets[c.Rank()] {
				dests = append(dests, pr.Dst)
			}
			srcs, err := CountExchange(c, dests)
			if err != nil {
				return err
			}
			sort.Ints(srcs)
			var want []int
			for _, pr := range recv[c.Rank()] {
				want = append(want, pr.Dst)
			}
			if len(srcs) != len(want) {
				return fmt.Errorf("rank %d: got %v, want %v", c.Rank(), srcs, want)
			}
			for i := range want {
				if srcs[i] != want[i] {
					return fmt.Errorf("rank %d: got %v, want %v", c.Rank(), srcs, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("K=%d: %v", K, err)
		}
	}
}

func TestExchangeLargeWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("large world")
	}
	rng := rand.New(rand.NewSource(53))
	tp, _ := vpt.NewBalanced(512, 3)
	s := randomSendSets(rng, 512, 4, 2, 2)
	got, cc := runExchange(t, tp, s)
	checkDeliveries(t, s, got)
	plan, _ := BuildPlan(tp, s)
	for q := 0; q < 512; q++ {
		if cc.sentMsgs[q] != plan.SentMsgs[q] {
			t.Fatalf("rank %d: executed %d != plan %d", q, cc.sentMsgs[q], plan.SentMsgs[q])
		}
	}
}

func BenchmarkExchange64T3(b *testing.B) {
	tp, _ := vpt.NewBalanced(64, 3)
	rng := rand.New(rand.NewSource(1))
	s := randomSendSets(rng, 64, 2, 3, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := chanpt.NewWorld(64, 2)
		err := w.Run(func(c runtime.Comm) error {
			payloads := map[int][]byte{}
			for _, pr := range s.Sets[c.Rank()] {
				payloads[pr.Dst] = payloadWords(c.Rank(), pr.Dst, pr.Words)
			}
			_, err := Exchange(c, tp, payloads)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// The store-and-forward executor and router work for any mixed-radix
// topology, not just powers of two: the paper's "easily extended" case via
// vpt.NewFactored.
func TestExchangeNonPowerOfTwoK(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, c := range []struct{ K, n int }{{12, 2}, {60, 3}, {18, 2}, {100, 2}} {
		tp, err := vpt.NewFactored(c.K, c.n)
		if err != nil {
			t.Fatal(err)
		}
		s := randomSendSets(rng, c.K, 1, 2, 3)
		plan, err := BuildPlan(tp, s)
		if err != nil {
			t.Fatal(err)
		}
		got, cc := runExchange(t, tp, s)
		checkDeliveries(t, s, got)
		for q := 0; q < c.K; q++ {
			if cc.sentMsgs[q] != plan.SentMsgs[q] {
				t.Fatalf("K=%d n=%d rank %d: executed %d msgs != plan %d",
					c.K, c.n, q, cc.sentMsgs[q], plan.SentMsgs[q])
			}
			if plan.SentMsgs[q] > MaxMessageBound(tp) {
				t.Fatalf("K=%d: rank %d exceeded bound", c.K, q)
			}
		}
	}
}
