package core

import (
	"sort"

	"stfw/internal/vpt"
)

// Frame is one direct message of the schedule: From sends Words words of
// submessage payload to To (a dimension-d neighbor) in some stage.
type Frame struct {
	From  int
	To    int
	Words int64
	Subs  int // number of submessages aggregated in the frame
}

// Plan is the exact communication schedule the store-and-forward scheme
// produces for given send sets on a given topology, computed without
// executing anything. Because routing is deterministic (dimension-ordered
// digit fixing), the plan is ground truth: the executing runtime performs
// exactly these frames. The netsim package prices a Plan on a machine
// profile; the metrics package summarizes it.
type Plan struct {
	Topo   *vpt.Topology
	Stages [][]Frame // Stages[d] = frames of communication stage d, sorted (From, To)

	// schedCacheState caches the per-rank StageSchedules derived from the
	// plan (see schedule.go): executing ranks share one Plan, and each pays
	// the schedule construction once instead of once per Exchange call.
	schedCacheState

	// Per-rank totals over all stages. Only nonempty frames are counted,
	// matching the paper's measured message counts (its bound sum(k_d - 1)
	// is attained only when every neighbor buffer is nonempty).
	SentMsgs  []int
	SentWords []int64
	RecvMsgs  []int
	RecvWords []int64

	// MaxBufferWords[p] is the peak number of payload words resident at
	// rank p at any stage boundary: words held in forward buffers plus
	// words received in the stage. The paper's buffer-size metric also
	// counts the application's original send/receive buffers; callers add
	// those (see metrics.BufferSizes).
	MaxBufferWords []int64

	// TotalWords is the sum of Words over all frames: the forwarded volume
	// the paper's vavg metric averages over ranks.
	TotalWords int64
	// TotalMsgs is the number of nonempty frames across all stages.
	TotalMsgs int
	// DeliveredWords is the payload that reached destinations; equals the
	// send sets' TotalWords (every submessage is delivered exactly once).
	DeliveredWords int64
}

// routeEntry is an aggregated bundle of payload currently resident at a
// holder and destined for a single rank. Submessages with the same (holder,
// dst) travel together for the rest of the schedule, so aggregation is
// lossless for counts and volumes.
type routeEntry struct {
	holder int32
	dst    int32
	words  int64
	subs   int32
}

// BuildPlan routes the send sets through the topology and returns the exact
// schedule. Send sets should be Normalized first. For the direct topology
// T_1(K) the plan degenerates to the baseline: one stage holding exactly the
// original messages.
func BuildPlan(t *vpt.Topology, s *SendSets) (*Plan, error) {
	if err := s.ValidateTopology(t); err != nil {
		return nil, err
	}
	K := t.Size()
	n := t.N()
	p := &Plan{
		Topo:           t,
		Stages:         make([][]Frame, n),
		SentMsgs:       make([]int, K),
		SentWords:      make([]int64, K),
		RecvMsgs:       make([]int, K),
		RecvWords:      make([]int64, K),
		MaxBufferWords: make([]int64, K),
	}

	// Live routing state: one entry per (holder, dst) bundle.
	var entries []routeEntry
	for src, set := range s.Sets {
		for _, pr := range set {
			if pr.Dst == src || pr.Words == 0 {
				p.DeliveredWords += pr.Words
				continue
			}
			entries = append(entries, routeEntry{holder: int32(src), dst: int32(pr.Dst), words: pr.Words, subs: 1})
			p.DeliveredWords += pr.Words
		}
	}

	held := make([]int64, K) // payload words resident per rank (in fwbuf)
	for _, e := range entries {
		held[e.holder] += e.words
	}
	for q := 0; q < K; q++ {
		p.MaxBufferWords[q] = held[q]
	}

	for d := 0; d < n; d++ {
		// Group the entries that move in this stage by (from, to) frame.
		type key struct{ from, to int32 }
		frames := map[key]*Frame{}
		for i := range entries {
			e := &entries[i]
			next := t.RouteNext(int(e.holder), int(e.dst), d)
			if next == int(e.holder) {
				continue // stored, not forwarded, this stage
			}
			k := key{e.holder, int32(next)}
			f := frames[k]
			if f == nil {
				f = &Frame{From: int(e.holder), To: next}
				frames[k] = f
			}
			f.Words += e.words
			f.Subs += int(e.subs)
			held[e.holder] -= e.words
			held[next] += e.words
			e.holder = int32(next)
		}
		// Merge bundles that landed on the same (holder, dst); keeps the
		// entry count bounded by the number of live (holder, dst) pairs.
		entries = mergeEntries(entries)

		stage := make([]Frame, 0, len(frames))
		for _, f := range frames {
			stage = append(stage, *f)
		}
		sort.Slice(stage, func(i, j int) bool {
			if stage[i].From != stage[j].From {
				return stage[i].From < stage[j].From
			}
			return stage[i].To < stage[j].To
		})
		p.Stages[d] = stage
		for _, f := range stage {
			p.SentMsgs[f.From]++
			p.SentWords[f.From] += f.Words
			p.RecvMsgs[f.To]++
			p.RecvWords[f.To] += f.Words
			p.TotalWords += f.Words
			p.TotalMsgs++
		}
		// Residency at the end of the stage, with delivered bundles still
		// in the buffers, is the per-stage peak.
		for q := 0; q < K; q++ {
			if held[q] > p.MaxBufferWords[q] {
				p.MaxBufferWords[q] = held[q]
			}
		}

		// Drop delivered bundles (holder == dst) from the live set.
		live := entries[:0]
		for _, e := range entries {
			if e.holder == e.dst {
				held[e.holder] -= e.words
				continue
			}
			live = append(live, e)
		}
		entries = live
	}
	return p, nil
}

// mergeEntries combines bundles with identical (holder, dst).
func mergeEntries(entries []routeEntry) []routeEntry {
	if len(entries) < 2 {
		return entries
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].holder != entries[j].holder {
			return entries[i].holder < entries[j].holder
		}
		return entries[i].dst < entries[j].dst
	})
	out := entries[:1]
	for _, e := range entries[1:] {
		last := &out[len(out)-1]
		if last.holder == e.holder && last.dst == e.dst {
			last.words += e.words
			last.subs += e.subs
		} else {
			out = append(out, e)
		}
	}
	return out
}

// BuildDirectPlan returns the baseline (BL) plan: the single-stage schedule
// of the direct topology T_1(K), in which every original message is one
// frame. It is equivalent to BuildPlan on vpt.Direct(K) but cheaper.
func BuildDirectPlan(s *SendSets) (*Plan, error) {
	t, err := vpt.Direct(s.K)
	if err != nil {
		return nil, err
	}
	K := s.K
	p := &Plan{
		Topo:           t,
		Stages:         make([][]Frame, 1),
		SentMsgs:       make([]int, K),
		SentWords:      make([]int64, K),
		RecvMsgs:       make([]int, K),
		RecvWords:      make([]int64, K),
		MaxBufferWords: make([]int64, K),
	}
	var stage []Frame
	for src, set := range s.Sets {
		for _, pr := range set {
			if pr.Dst == src || pr.Words == 0 {
				p.DeliveredWords += pr.Words
				continue
			}
			stage = append(stage, Frame{From: src, To: pr.Dst, Words: pr.Words, Subs: 1})
			p.SentMsgs[src]++
			p.SentWords[src] += pr.Words
			p.RecvMsgs[pr.Dst]++
			p.RecvWords[pr.Dst] += pr.Words
			p.TotalWords += pr.Words
			p.TotalMsgs++
			p.DeliveredWords += pr.Words
		}
	}
	sort.Slice(stage, func(i, j int) bool {
		if stage[i].From != stage[j].From {
			return stage[i].From < stage[j].From
		}
		return stage[i].To < stage[j].To
	})
	p.Stages[0] = stage
	// The baseline has no store-and-forward buffers; its buffer footprint
	// is only the original send/receive payloads, which metrics.Summarize
	// accounts separately. MaxBufferWords stays zero.
	return p, nil
}
