package core_test

import (
	"strings"
	"testing"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// confWorldSendSets lifts the conformance dest-lists into normalized
// SendSets (one unit-word submessage per (src, dst) pair, exactly how the
// conformance payload maps drive the executors).
func confWorldSendSets(t *testing.T, K int, dests map[int][]int) *core.SendSets {
	t.Helper()
	s := core.NewSendSets(K)
	for src, ds := range dests {
		for _, dst := range ds {
			s.Add(src, dst, 1)
		}
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestVerifyWorldFrontends runs the whole-world verifier over the three
// statically-buildable schedule front-ends on every conformance topology:
// dynamic (topology only), plan-driven (with conservation against the
// plan), and the single-stage direct baseline (against the direct plan).
func TestVerifyWorldFrontends(t *testing.T) {
	for _, tp := range conformanceTopologies(t) {
		K := tp.Size()
		dests := confSendSets(int64(K), K)
		sends := confWorldSendSets(t, K, dests)

		if err := core.VerifyWorld(core.WorldSchedules(tp)); err != nil {
			t.Errorf("dynamic front-end, K=%d dims=%v: %v", K, tp.Dims(), err)
		}

		plan, err := core.BuildPlan(tp, sends)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.VerifyWorldAgainstPlan(plan.WorldSchedules(), plan); err != nil {
			t.Errorf("plan front-end, K=%d dims=%v: %v", K, tp.Dims(), err)
		}

		dplan, err := core.BuildDirectPlan(sends)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.VerifyWorldAgainstPlan(core.DirectWorldSchedules(sends), dplan); err != nil {
			t.Errorf("direct front-end, K=%d: %v", K, err)
		}
	}
}

// TestVerifyWorldLearned runs a real learning exchange per topology and
// checks that the learned schedules verify — and conserve submessages
// against the independently computed static plan, pinning the learned
// occupancy to the router's ground truth.
func TestVerifyWorldLearned(t *testing.T) {
	for _, tp := range conformanceTopologies(t) {
		tp := tp
		t.Run(tp.String(), func(t *testing.T) {
			t.Parallel()
			K := tp.Size()
			dests := confSendSets(int64(K), K)
			w, err := chanpt.NewWorld(K, 2)
			if err != nil {
				t.Fatal(err)
			}
			scheds := make([]*core.StageSchedule, K)
			err = runtime.Run(w.Comms(), func(c runtime.Comm) error {
				me := c.Rank()
				payloads := map[int][]byte{}
				for _, dst := range dests[me] {
					payloads[dst] = confPayload(me, dst)
				}
				p, _, err := core.NewPersistent(c, tp, payloads)
				if err != nil {
					return err
				}
				scheds[me] = p.Schedule()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := core.VerifyWorld(scheds); err != nil {
				t.Errorf("learned front-end, K=%d dims=%v: %v", K, tp.Dims(), err)
			}
			plan, err := core.BuildPlan(tp, confWorldSendSets(t, K, dests))
			if err != nil {
				t.Fatal(err)
			}
			if err := core.VerifyWorldAgainstPlan(scheds, plan); err != nil {
				t.Errorf("learned schedules do not conserve the plan's traffic, K=%d dims=%v: %v", K, tp.Dims(), err)
			}
		})
	}
}

// copyWorld deep-copies schedules so mutations don't poison the plan's
// shared schedule cache.
func copyWorld(scheds []*core.StageSchedule) []*core.StageSchedule {
	out := make([]*core.StageSchedule, len(scheds))
	for r, s := range scheds {
		cs := &core.StageSchedule{Stages: make([]core.ScheduleStage, len(s.Stages))}
		for d, st := range s.Stages {
			cs.Stages[d] = core.ScheduleStage{
				Tag:      st.Tag,
				Dim:      st.Dim,
				Sends:    append([]core.SendSlot(nil), st.Sends...),
				RecvFrom: append([]int(nil), st.RecvFrom...),
			}
		}
		out[r] = cs
	}
	return out
}

// TestVerifyWorldRejectsMutations hand-mutates a verified world one defect
// at a time and checks each is caught, with a recognizable message.
func TestVerifyWorldRejectsMutations(t *testing.T) {
	tp, err := vpt.NewFactored(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	K := tp.Size()
	dests := confSendSets(int64(K), K)
	sends := confWorldSendSets(t, K, dests)
	plan, err := core.BuildPlan(tp, sends)
	if err != nil {
		t.Fatal(err)
	}
	base := plan.WorldSchedules()
	if err := core.VerifyWorldAgainstPlan(base, plan); err != nil {
		t.Fatalf("baseline world must verify: %v", err)
	}

	cases := []struct {
		name   string
		mutate func([]*core.StageSchedule)
		want   string // substring of the expected error
	}{
		{
			name: "dropped expected sender",
			mutate: func(w []*core.StageSchedule) {
				rf := w[3].Stages[0].RecvFrom
				w[3].Stages[0].RecvFrom = rf[:len(rf)-1]
			},
			want: "does not expect a frame",
		},
		{
			name: "orphan expected sender",
			mutate: func(w []*core.StageSchedule) {
				s0 := &w[0].Stages[0]
				s0.Sends = s0.Sends[:len(s0.Sends)-1]
			},
			want: "orphan sender",
		},
		{
			name: "tag skew",
			mutate: func(w []*core.StageSchedule) {
				w[5].Stages[1].Tag++
			},
			want: "uses tag",
		},
		{
			name: "dimension skew",
			mutate: func(w []*core.StageSchedule) {
				w[5].Stages[1].Dim = 0
			},
			want: "routes dimension",
		},
		{
			name: "dimension out of range",
			mutate: func(w []*core.StageSchedule) {
				w[1].Stages[0].Dim = len(w[1].Stages)
			},
			want: "outside",
		},
		{
			name: "stage count skew",
			mutate: func(w []*core.StageSchedule) {
				w[2].Stages = w[2].Stages[:1]
			},
			want: "stages",
		},
		{
			name: "self send",
			mutate: func(w []*core.StageSchedule) {
				w[4].Stages[0].Sends[0].To = 4
			},
			want: "invalid for rank",
		},
		{
			name: "duplicate send slot",
			mutate: func(w []*core.StageSchedule) {
				s0 := &w[0].Stages[0]
				s0.Sends = append(s0.Sends, s0.Sends[0])
			},
			want: "duplicate send slot",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := copyWorld(base)
			tc.mutate(w)
			err := core.VerifyWorld(w)
			if err == nil {
				t.Fatalf("mutation %q verified cleanly", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("mutation %q: error %q does not mention %q", tc.name, err, tc.want)
			}
		})
	}

	planCases := []struct {
		name   string
		mutate func([]*core.StageSchedule)
		want   string
	}{
		{
			name: "inflated reserve",
			mutate: func(w []*core.StageSchedule) {
			outer:
				for _, s := range w {
					for d := range s.Stages {
						for i := range s.Stages[d].Sends {
							if s.Stages[d].Sends[i].Reserve > 0 {
								s.Stages[d].Sends[i].Reserve++
								break outer
							}
						}
					}
				}
			},
			want: "plan says",
		},
		{
			name: "zeroed reserve",
			mutate: func(w []*core.StageSchedule) {
			outer:
				for _, s := range w {
					for d := range s.Stages {
						for i := range s.Stages[d].Sends {
							if s.Stages[d].Sends[i].Reserve > 0 {
								s.Stages[d].Sends[i].Reserve = 0
								break outer
							}
						}
					}
				}
			},
			want: "reserves none",
		},
	}
	for _, tc := range planCases {
		t.Run(tc.name, func(t *testing.T) {
			w := copyWorld(base)
			tc.mutate(w)
			if err := core.VerifyWorld(w); err != nil {
				t.Fatalf("reserve mutation must still pass VerifyWorld, got %v", err)
			}
			err := core.VerifyWorldAgainstPlan(w, plan)
			if err == nil {
				t.Fatalf("mutation %q conserved the plan", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("mutation %q: error %q does not mention %q", tc.name, err, tc.want)
			}
		})
	}
}
