package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// compiledHarness holds one rank's gather layout for the compiled tests:
// x is a flat slice whose index ranges map to destinations, so the same
// values can be shipped either as legacy payload bytes or through a
// compiled Replay's gather lists.
type compiledHarness struct {
	xlen   int
	gather map[int][]int32
}

// buildHarness lays out a gather range per destination pair (plus an
// optional self range) and returns the harness.
func buildHarness(pairs []Pair, selfWords int, me int) *compiledHarness {
	h := &compiledHarness{gather: map[int][]int32{}}
	add := func(dst, words int) {
		idx := make([]int32, words)
		for i := range idx {
			idx[i] = int32(h.xlen + i)
		}
		h.gather[dst] = idx
		h.xlen += words
	}
	for _, pr := range pairs {
		add(pr.Dst, int(pr.Words))
	}
	if selfWords > 0 {
		add(me, selfWords)
	}
	return h
}

// fill populates x so that the value shipped from me to dst at position i
// is testVal(me, dst, round, i).
func (h *compiledHarness) fill(x []float64, me, round int) {
	for dst, idx := range h.gather {
		for i, g := range idx {
			x[g] = testVal(me, dst, round, i)
		}
	}
}

// payloadBytes renders the same values as legacy payload byte slices.
func (h *compiledHarness) payloadBytes(me, round int) map[int][]byte {
	out := make(map[int][]byte, len(h.gather))
	for dst, idx := range h.gather {
		b := make([]byte, 8*len(idx))
		for i := range idx {
			putF64(b[8*i:], testVal(me, dst, round, i))
		}
		out[dst] = b
	}
	return out
}

func testVal(src, dst, round, i int) float64 {
	return float64(src+1)*1e6 + float64(dst+1)*1e3 + float64(round)*10 + float64(i) + 0.5
}

func putF64(b []byte, v float64) {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(bits)
}

// checkHaloMatches compares a compiled halo against legacy deliveries
// (both are ordered by source, then destination).
func checkHaloMatches(d *Delivered, halo []float64) error {
	at := 0
	for _, sub := range d.Subs {
		words := len(sub.Data) / 8
		if at+words > len(halo) {
			return fmt.Errorf("halo too short: %d words, need %d+%d", len(halo), at, words)
		}
		for i := 0; i < words; i++ {
			want := getF64(sub.Data[8*i:])
			if math.Float64bits(halo[at+i]) != math.Float64bits(want) {
				return fmt.Errorf("delivery %d->%d word %d: halo %v, legacy %v", sub.Src, sub.Dst, i, halo[at+i], want)
			}
		}
		at += words
	}
	if at != len(halo) {
		return fmt.Errorf("halo has %d words, legacy delivered %d", len(halo), at)
	}
	return nil
}

// TestCompiledMatchesPersistent replays several topologies (including a
// non-power-of-two factored one) both through the legacy map-based Run and
// the compiled Replay, with identical values, and requires bit-identical
// deliveries. Even ranks also self-send to cover the selfOp path.
func TestCompiledMatchesPersistent(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, dims := range [][]int{{4, 4}, {2, 2, 2, 2}, {3, 4}, {16}} {
		tp := vpt.MustNew(dims...)
		K := tp.Size()
		s := randomSendSets(rng, K, 2, 3, 4)
		w, err := chanpt.NewWorld(K, 2)
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c runtime.Comm) error {
			me := c.Rank()
			selfWords := 0
			if me%2 == 0 {
				selfWords = 2
			}
			h := buildHarness(s.Sets[me], selfWords, me)
			p, _, err := NewPersistent(c, tp, h.payloadBytes(me, 0))
			if err != nil {
				return err
			}
			r, err := p.Compile(h.xlen, h.gather)
			if err != nil {
				return fmt.Errorf("rank %d compile: %w", me, err)
			}
			x := make([]float64, h.xlen)
			halo := make([]float64, r.HaloWords())
			for round := 1; round <= 3; round++ {
				// Legacy first, compiled second: distinct collective calls,
				// same values.
				legacy, err := p.Run(c, h.payloadBytes(me, round))
				if err != nil {
					return err
				}
				h.fill(x, me, round)
				if err := r.Run(c, x, halo); err != nil {
					return fmt.Errorf("rank %d round %d compiled run: %w", me, round, err)
				}
				if err := checkHaloMatches(legacy, halo); err != nil {
					return fmt.Errorf("dims %v rank %d round %d: %w", dims, me, round, err)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestDirectReplayMatchesDirectExchange does the same comparison for the
// baseline scheme: compiled direct frames against DirectExchange.
func TestDirectReplayMatchesDirectExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	K := 12
	s := randomSendSets(rng, K, 2, 3, 4)
	recv := s.RecvSets()
	w, err := chanpt.NewWorld(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		me := c.Rank()
		selfWords := 0
		if me%3 == 0 {
			selfWords = 1
		}
		h := buildHarness(s.Sets[me], selfWords, me)
		srcWords := map[int]int{}
		recvFrom := make([]int, 0, len(recv[me]))
		for _, pr := range recv[me] {
			srcWords[pr.Dst] = int(pr.Words)
			recvFrom = append(recvFrom, pr.Dst)
		}
		r, err := NewDirectReplay(me, K, h.xlen, h.gather, srcWords)
		if err != nil {
			return fmt.Errorf("rank %d direct compile: %w", me, err)
		}
		x := make([]float64, h.xlen)
		halo := make([]float64, r.HaloWords())
		for round := 0; round < 3; round++ {
			legacy, err := DirectExchange(c, h.payloadBytes(me, round), recvFrom)
			if err != nil {
				return err
			}
			h.fill(x, me, round)
			if err := r.Run(c, x, halo); err != nil {
				return fmt.Errorf("rank %d round %d direct replay: %w", me, round, err)
			}
			if err := checkHaloMatches(legacy, halo); err != nil {
				return fmt.Errorf("rank %d round %d: %w", me, round, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCompileValidation exercises the compile- and run-time error paths on
// a single rank's view of a tiny world.
func TestCompileValidation(t *testing.T) {
	tp := vpt.MustNew(2, 2)
	w, _ := chanpt.NewWorld(4, 2)
	err := w.Run(func(c runtime.Comm) error {
		me := c.Rank()
		dst := (me + 1) % 4
		p, _, err := NewPersistent(c, tp, map[int][]byte{dst: make([]byte, 16)})
		if err != nil {
			return err
		}
		if _, err := p.Compile(2, map[int][]int32{}); err == nil {
			return fmt.Errorf("rank %d: missing destination accepted", me)
		}
		if _, err := p.Compile(2, map[int][]int32{(me + 2) % 4: {0, 1}}); err == nil {
			return fmt.Errorf("rank %d: unknown destination accepted", me)
		}
		if _, err := p.Compile(2, map[int][]int32{dst: {0}}); err == nil {
			return fmt.Errorf("rank %d: wrong gather size accepted", me)
		}
		if _, err := p.Compile(2, map[int][]int32{dst: {0, 7}}); err == nil {
			return fmt.Errorf("rank %d: out-of-range gather index accepted", me)
		}
		r, err := p.Compile(2, map[int][]int32{dst: {1, 0}})
		if err != nil {
			return fmt.Errorf("rank %d: valid compile rejected: %w", me, err)
		}
		if err := r.Run(c, make([]float64, 3), make([]float64, r.HaloWords())); err == nil {
			return fmt.Errorf("rank %d: wrong x length accepted", me)
		}
		if err := r.Run(c, make([]float64, 2), make([]float64, r.HaloWords()+1)); err == nil {
			return fmt.Errorf("rank %d: wrong halo length accepted", me)
		}
		// Validation failures consume no traffic: a correct collective run
		// still succeeds afterwards.
		x := []float64{float64(me), float64(me) + 0.25}
		halo := make([]float64, r.HaloWords())
		if err := r.Run(c, x, halo); err != nil {
			return fmt.Errorf("rank %d: run after rejects: %w", me, err)
		}
		// gather order {1, 0} reverses the two words on the wire.
		src := (me + 3) % 4
		if want := []float64{float64(src) + 0.25, float64(src)}; halo[0] != want[0] || halo[1] != want[1] {
			return fmt.Errorf("rank %d: halo %v, want %v", me, halo, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCompileRejectsOddSizedDeliveries checks that a pattern learned with
// non-word-sized payloads cannot be compiled.
func TestCompileRejectsOddSizedDeliveries(t *testing.T) {
	tp := vpt.MustNew(2, 2)
	w, _ := chanpt.NewWorld(4, 2)
	err := w.Run(func(c runtime.Comm) error {
		me := c.Rank()
		dst := (me + 1) % 4
		p, _, err := NewPersistent(c, tp, map[int][]byte{dst: make([]byte, 7)})
		if err != nil {
			return err
		}
		if _, err := p.Compile(1, map[int][]int32{dst: {0}}); err == nil {
			return fmt.Errorf("rank %d: 7-byte payload compiled", me)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
