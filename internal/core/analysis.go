package core

import (
	"math"

	"stfw/internal/vpt"
)

// Analysis of Section 4: worst-case bounds for the store-and-forward scheme
// under the complete-exchange assumption (|SendSet| = K-1, uniform message
// size s, uniform dimension size k, K = k^n).

// MaxMessageBound returns the per-process per-run upper bound on sent
// message count for a topology: sum_d (k_d - 1). For T_1(K) this is K-1; for
// the hypercube T_lgK(2,...,2) it is lg K.
func MaxMessageBound(t *vpt.Topology) int { return t.NumNeighbors() }

// StageMessageBound returns the per-process message bound of stage d alone,
// k_d - 1.
func StageMessageBound(t *vpt.Topology, d int) int { return t.Dim(d) - 1 }

// Binomial returns C(n, k) as a float64 (exact for the small n used by VPT
// analysis).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// ExactForwardVolume returns the exact volume (in words) incurred in
// communicating the messages originating from a single process in the
// worst-case scenario on a uniform topology with dimension size k and n
// dimensions, message size s:
//
//	V = s * sum_{l=1..n} (k-1)^l * C(n, l) * l
//
// (each of the (k-1)^l*C(n,l) destinations at Hamming distance l costs l
// forwards). For n = 1 this is the direct volume s*(K-1).
func ExactForwardVolume(k, n int, s int64) float64 {
	var v float64
	for l := 1; l <= n; l++ {
		v += math.Pow(float64(k-1), float64(l)) * Binomial(n, l) * float64(l)
	}
	return float64(s) * v
}

// LooseForwardVolume returns the paper's loose upper bound n*V where
// V = s*(K-1) is the direct-communication volume.
func LooseForwardVolume(k, n int, s int64) float64 {
	K := math.Pow(float64(k), float64(n))
	return float64(n) * float64(s) * (K - 1)
}

// DirectVolume returns s*(K-1), the volume of the messages originating from
// one process under direct communication.
func DirectVolume(K int, s int64) float64 { return float64(s) * float64(K-1) }

// VolumeBlowup returns the ratio of the exact store-and-forward volume to
// the direct volume for a uniform k^n topology. Section 4 reports 3.01 for
// T_4 at K=256, 4.02 for T_8 and 1.88 for T_2.
func VolumeBlowup(k, n int) float64 {
	K := int(math.Round(math.Pow(float64(k), float64(n))))
	return ExactForwardVolume(k, n, 1) / DirectVolume(K, 1)
}

// ExpectedForwards returns the average number of hops (forwards) per
// submessage for a uniform k^n topology under the complete exchange: the
// mean Hamming distance over all K-1 destinations, n*(k-1)/k scaled to
// exclude the self rank.
func ExpectedForwards(k, n int) float64 {
	K := math.Pow(float64(k), float64(n))
	// Sum of Hamming distances to all ranks (including self, distance 0)
	// is K * n * (k-1)/k.
	return K * float64(n) * (float64(k-1) / float64(k)) / (K - 1)
}

// BufferBound returns the Section 4 bound on the number of payload words
// resident at any process at any communication stage in the worst case:
// s*(K-1).
func BufferBound(K int, s int64) int64 { return s * int64(K-1) }

// TopologyVolumeBlowup generalizes VolumeBlowup to non-uniform topologies:
// the exact mean number of forwards per unit of volume for a complete
// exchange on t, i.e. (sum over ordered pairs of Hamming distance) /
// (K*(K-1)) times ... and multiplied by (K-1) gives per-process volume. It
// returns total forwarded volume / direct volume.
func TopologyVolumeBlowup(t *vpt.Topology) float64 {
	// The Hamming distance distribution is a product over dimensions:
	// digit d differs with probability (k_d-1)/k_d across all K^2 ordered
	// pairs. Expected distance per ordered pair = sum_d (k_d-1)/k_d.
	K := float64(t.Size())
	var mean float64
	for d := 0; d < t.N(); d++ {
		k := float64(t.Dim(d))
		mean += (k - 1) / k
	}
	// Over all K^2 ordered pairs the total distance is K^2 * mean; the
	// K self-pairs contribute 0, so over the K*(K-1) real pairs the mean
	// is K*mean/(K-1).
	return K * mean / (K - 1)
}
