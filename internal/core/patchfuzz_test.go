package core

import (
	"testing"

	"stfw/internal/vpt"
)

// fuzzPatchTopology maps a selector byte onto a fixed shape set — small
// enough to keep per-input cost low, varied enough to cover single-stage
// meshes, multi-stage cubes, and mixed-radix factorizations.
func fuzzPatchTopology(sel byte) *vpt.Topology {
	var tp *vpt.Topology
	var err error
	switch sel % 4 {
	case 0:
		tp, err = vpt.NewBalanced(8, 3)
	case 1:
		tp, err = vpt.NewBalanced(8, 1)
	case 2:
		tp, err = vpt.NewBalanced(16, 2)
	default:
		tp, err = vpt.NewFactored(12, 2)
	}
	if err != nil {
		panic(err) // fixed shapes, cannot fail
	}
	return tp
}

// decodePatchMutations turns raw fuzz bytes into a mutation list, 4 bytes
// per op. Ranks are decoded over [-1, K] so out-of-range pairs are probed,
// and sizes over a window that includes negatives and zero.
func decodePatchMutations(data []byte, K int) []PatchPair {
	if len(data) > 64 {
		data = data[:64]
	}
	var muts []PatchPair
	for i := 0; i+4 <= len(data); i += 4 {
		muts = append(muts, PatchPair{
			Src:    int(data[i])%(K+2) - 1,
			Dst:    int(data[i+1])%(K+2) - 1,
			Size:   (int(data[i+2]) - 32) * 8,
			Remove: data[i+3]&1 == 1,
		})
	}
	return muts
}

// FuzzPatchSchedule drives Patch with arbitrary deltas over arbitrary
// worlds and checks its two safety contracts:
//
//  1. A rejected patch is a no-op: the rank's learned state stays
//     bit-identical (validate-then-apply, never partial application).
//  2. When every rank accepts, the patched world is structurally identical
//     to a world built from scratch on the mutated pattern, passes both
//     whole-world verifiers, and the incrementally re-lowered Replay equals
//     a from-scratch compile.
//
// And, implicitly: no input may panic.
func FuzzPatchSchedule(f *testing.F) {
	f.Add(byte(0), int64(1), []byte{})
	f.Add(byte(0), int64(1), []byte{0, 1, 40, 0})              // plausible add
	f.Add(byte(1), int64(2), []byte{1, 2, 0, 1})               // plausible remove
	f.Add(byte(2), int64(3), []byte{200, 200, 10, 0})          // out of range
	f.Add(byte(3), int64(4), []byte{0, 1, 5, 0, 0, 1, 5, 1})   // add+remove same pair
	f.Add(byte(0), int64(5), []byte{3, 3, 16, 0, 2, 6, 0, 16}) // self pair + zero-ish size

	f.Fuzz(func(t *testing.T, sel byte, seed int64, data []byte) {
		tp := fuzzPatchTopology(sel)
		K := tp.Size()
		base := synthBasePairs(seed%16, K)
		muts := decodePatchMutations(data, K)

		world := synthWorld(tp, base)
		pristine := synthWorld(tp, base)
		deltas := synthDeltas(tp, muts)

		const xlen = 64
		reps := make([]*Replay, K)
		for me, p := range world {
			rep, err := p.Compile(xlen, synthGather(p, xlen))
			if err != nil {
				t.Fatalf("rank %d: base compile: %v", me, err)
			}
			reps[me] = rep
		}

		stats := make([]*PatchStats, K)
		allAccepted := true
		for me, p := range world {
			st, err := p.Patch(deltas[me])
			if err != nil {
				allAccepted = false
				if cmpErr := comparePersistent(p, pristine[me], true); cmpErr != nil {
					t.Fatalf("rank %d: rejected patch (%v) mutated state: %v", me, err, cmpErr)
				}
				continue
			}
			stats[me] = st
			if st.Added+st.Removed != len(deltas[me].Pairs) {
				t.Fatalf("rank %d: stats account for %d ops, delta has %d", me, st.Added+st.Removed, len(deltas[me].Pairs))
			}
		}
		if !allAccepted {
			return
		}

		// Everyone accepted ⇒ the mutation list was globally valid; the
		// patched world must equal the from-scratch world on the mutated
		// pattern and pass the whole-world gates.
		want := synthWorld(tp, applyMutations(base, muts))
		for me := range world {
			if err := comparePersistent(world[me], want[me], false); err != nil {
				t.Fatalf("patched world differs from from-scratch world: %v", err)
			}
		}
		if err := VerifyWorld(LearnedWorldSchedules(world)); err != nil {
			t.Fatalf("patched world fails VerifyWorld: %v", err)
		}
		if err := VerifyLearnedWorld(world); err != nil {
			t.Fatalf("patched world fails VerifyLearnedWorld: %v", err)
		}
		for me, p := range world {
			gather := synthGather(p, xlen)
			if err := p.PatchCompiled(reps[me], xlen, gather, stats[me]); err != nil {
				t.Fatalf("rank %d: patch-compile: %v", me, err)
			}
			fresh, err := p.Compile(xlen, gather)
			if err != nil {
				t.Fatalf("rank %d: recompile: %v", me, err)
			}
			equalReplay(t, "fuzz patched vs recompiled", reps[me], fresh)
		}
	})
}
