package core

import (
	"stfw/internal/msg"
	"stfw/internal/runtime"
)

// Per-stage traffic summaries: the schedule IR already states, per rank,
// which frames every stage sends and expects — this file exports that
// knowledge in the transport-facing runtime.StageTraffic form so a
// schedule-aware transport (internal/transport/udpnet) can run
// zero-speculation flow control: it learns exactly when a peer's stage
// inbound set is complete and acknowledges at stage boundaries instead of
// guessing an ack cadence. All four front-ends produce a summary: the
// dynamic and plan-driven schedules know frame counts, the learned pattern
// (Persistent) and the compiled Replay additionally know exact wire bytes.

// Traffic returns the schedule's per-stage traffic summary: one outbound
// entry per send slot and one inbound entry per expected sender, each with
// an exact frame count of 1 (a slot produces a frame even when empty —
// receive counts are deterministic by construction). Byte sizes are 0
// (unknown at this level; see Persistent.Traffic for learned sizes). The
// summary is built once and cached; the returned slice is shared and must
// be treated as read-only.
func (s *StageSchedule) Traffic() []runtime.StageTraffic {
	s.trafficOnce.Do(func() {
		out := make([]runtime.StageTraffic, len(s.Stages))
		for d := range s.Stages {
			st := &s.Stages[d]
			tr := runtime.StageTraffic{Tag: st.Tag, Dim: st.Dim}
			if len(st.Sends) > 0 {
				tr.Sends = make([]runtime.PeerTraffic, len(st.Sends))
				for j, sl := range st.Sends {
					tr.Sends[j] = runtime.PeerTraffic{Peer: sl.To, Frames: 1}
				}
			}
			if len(st.RecvFrom) > 0 {
				tr.Recvs = make([]runtime.PeerTraffic, len(st.RecvFrom))
				for j, f := range st.RecvFrom {
					tr.Recvs[j] = runtime.PeerTraffic{Peer: f, Frames: 1}
				}
			}
			out[d] = tr
		}
		s.traffic = out
	})
	return s.traffic
}

// learnedFrameBytes returns the encoded wire size of a learned frame with
// the given slots: the frame header, one submessage header per slot, and
// the learned payload bytes of each slot.
func (p *Persistent) learnedFrameBytes(slots []slotKey) int {
	n := msg.MsgHeaderLen + len(slots)*msg.SubHeaderLen
	for _, k := range slots {
		n += p.sizes[k]
	}
	return n
}

// Traffic returns the learned pattern's per-stage traffic summary — the
// schedule skeleton's frame counts annotated with the exact wire bytes the
// learning run recorded (empty frames cost a bare header). The summary is
// cached across replays and rebuilt after a Patch, whose slot surgery
// changes byte sizes but never the frame skeleton. Read-only for callers.
func (p *Persistent) Traffic() []runtime.StageTraffic {
	if p.traffic != nil {
		return p.traffic
	}
	sched := p.Schedule()
	out := make([]runtime.StageTraffic, len(sched.Stages))
	for d := range sched.Stages {
		st := &sched.Stages[d]
		tr := runtime.StageTraffic{Tag: st.Tag, Dim: st.Dim}
		tr.Sends = make([]runtime.PeerTraffic, len(st.Sends))
		for j, nf := range p.nbrFrames[d] {
			var slots []slotKey
			if nf.f != nil {
				slots = nf.f.slots
			}
			tr.Sends[j] = runtime.PeerTraffic{Peer: nf.to, Frames: 1, Bytes: p.learnedFrameBytes(slots)}
		}
		tr.Recvs = make([]runtime.PeerTraffic, len(p.inFrom[d]))
		for j, from := range p.inFrom[d] {
			tr.Recvs[j] = runtime.PeerTraffic{Peer: from, Frames: 1, Bytes: p.learnedFrameBytes(p.inLayout[d][j])}
		}
		out[d] = tr
	}
	p.traffic = out
	return out
}

// computeTraffic derives the compiled program's traffic summary straight
// from its lowered stages: outbound frame bytes are template lengths,
// inbound ones the expected receive sizes. Called at Compile/NewDirectReplay
// time and again after PatchCompiled re-lowers frames.
func (r *Replay) computeTraffic() []runtime.StageTraffic {
	out := make([]runtime.StageTraffic, len(r.stages))
	for d := range r.stages {
		st := &r.stages[d]
		tr := runtime.StageTraffic{Tag: st.tag, Dim: st.dim}
		if len(st.frames) > 0 {
			tr.Sends = make([]runtime.PeerTraffic, len(st.frames))
			for j := range st.frames {
				f := &st.frames[j]
				tr.Sends[j] = runtime.PeerTraffic{Peer: f.to, Frames: 1, Bytes: len(f.tmpl)}
			}
		}
		if len(st.recvFrom) > 0 {
			tr.Recvs = make([]runtime.PeerTraffic, len(st.recvFrom))
			for j, from := range st.recvFrom {
				tr.Recvs[j] = runtime.PeerTraffic{Peer: from, Frames: 1, Bytes: int(st.inSize[j])}
			}
		}
		out[d] = tr
	}
	return out
}
