// Package partition assigns matrix rows to processes. The paper partitions
// its matrices with the PaToH hypergraph partitioner to reduce
// communication before applying STFW; this package provides a block
// partitioner, a random partitioner, and a Fennel-style streaming greedy
// partitioner with a connectivity objective that serves as the PaToH
// stand-in (see DESIGN.md).
package partition

import (
	"fmt"
	"math"
	"math/rand"

	"stfw/internal/sparse"
)

// Partition maps each row (and conformally each vector entry) to a part in
// [0, K).
type Partition struct {
	K    int
	Part []int32 // Part[i] = owner of row i
}

// Validate checks the partition against a row count.
func (p *Partition) Validate(rows int) error {
	if len(p.Part) != rows {
		return fmt.Errorf("partition: %d assignments for %d rows", len(p.Part), rows)
	}
	for i, q := range p.Part {
		if q < 0 || int(q) >= p.K {
			return fmt.Errorf("partition: row %d assigned to invalid part %d", i, q)
		}
	}
	return nil
}

// PartRows returns the rows of each part, in increasing row order.
func (p *Partition) PartRows() [][]int {
	out := make([][]int, p.K)
	for i, q := range p.Part {
		out[q] = append(out[q], i)
	}
	return out
}

// Sizes returns the number of rows per part.
func (p *Partition) Sizes() []int {
	s := make([]int, p.K)
	for _, q := range p.Part {
		s[q]++
	}
	return s
}

// Imbalance returns max part load / average part load, where load is the
// nonzero count (the SpMV work measure); 1.0 is perfect.
func Imbalance(m *sparse.CSR, p *Partition) float64 {
	load := make([]int64, p.K)
	for i := 0; i < m.Rows; i++ {
		load[p.Part[i]] += int64(m.RowDegree(i))
	}
	var max, sum int64
	for _, l := range load {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(p.K) / float64(sum)
}

// Block assigns contiguous equal-count row ranges: rows
// [i*rows/K, (i+1)*rows/K) go to part i. Good for banded matrices, blind to
// irregular structure.
func Block(rows, K int) (*Partition, error) {
	if K < 1 || rows < 0 {
		return nil, fmt.Errorf("partition: Block(%d, %d)", rows, K)
	}
	p := &Partition{K: K, Part: make([]int32, rows)}
	for i := 0; i < rows; i++ {
		q := i * K / rows
		p.Part[i] = int32(q)
	}
	return p, nil
}

// BlockRCM reorders the rows with reverse Cuthill-McKee and then assigns
// contiguous ranges of the *reordered* sequence: a locality-aware
// partitioner for mesh-like matrices that costs one BFS. The returned
// partition is expressed in the original row numbering.
func BlockRCM(m *sparse.CSR, K int) (*Partition, error) {
	if K < 1 {
		return nil, fmt.Errorf("partition: BlockRCM K=%d", K)
	}
	order, err := sparse.RCM(m)
	if err != nil {
		return nil, err
	}
	p := &Partition{K: K, Part: make([]int32, m.Rows)}
	for pos, old := range order {
		p.Part[old] = int32(pos * K / m.Rows)
	}
	return p, nil
}

// Random assigns rows to parts uniformly at random (deterministic in seed).
// It is the worst case for communication volume and serves as a baseline
// in partitioner comparisons.
func Random(rows, K int, seed int64) (*Partition, error) {
	if K < 1 || rows < 0 {
		return nil, fmt.Errorf("partition: Random(%d, %d)", rows, K)
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Partition{K: K, Part: make([]int32, rows)}
	for i := range p.Part {
		p.Part[i] = int32(rng.Intn(K))
	}
	return p, nil
}

// Greedy is the PaToH stand-in: a single-pass streaming partitioner in the
// style of Fennel [Tsourakakis et al., WSDM'14] over the symmetrized
// structure. Rows are streamed in natural order; each row goes to the part
// with the most structural neighbors already placed, discounted by a load
// penalty so parts stay balanced within the slack factor.
//
// The objective mirrors hypergraph connectivity reduction: co-locating a
// row with the rows its column couples it to removes that column from the
// communication volume.
type GreedyOptions struct {
	// Slack is the allowed load imbalance (max part nonzeros over average);
	// 1.05 means 5%. Values below 1 are rejected.
	Slack float64
	// Gamma is the Fennel load-penalty exponent; 1.5 is the canonical
	// choice.
	Gamma float64
}

// DefaultGreedy returns the options used throughout the evaluation.
func DefaultGreedy() GreedyOptions { return GreedyOptions{Slack: 1.10, Gamma: 1.5} }

// Greedy partitions the rows of a structurally square matrix into K parts.
func Greedy(m *sparse.CSR, K int, opt GreedyOptions) (*Partition, error) {
	if K < 1 {
		return nil, fmt.Errorf("partition: Greedy K=%d", K)
	}
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("partition: Greedy needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	if opt.Slack < 1 {
		return nil, fmt.Errorf("partition: slack %.3f < 1", opt.Slack)
	}
	if opt.Gamma <= 0 {
		opt.Gamma = 1.5
	}
	p := &Partition{K: K, Part: make([]int32, m.Rows)}
	for i := range p.Part {
		p.Part[i] = -1
	}
	load := make([]float64, K) // nonzeros placed per part
	totalNNZ := float64(m.NNZ())
	capPerPart := opt.Slack * totalNNZ / float64(K)
	// Fennel balance term: alpha * gamma * load^(gamma-1); alpha chosen so
	// the penalty is commensurate with edge gains.
	alpha := totalNNZ * math.Pow(float64(K), opt.Gamma-1) / math.Pow(totalNNZ+1, opt.Gamma)

	gain := make([]float64, K)
	touched := make([]int32, 0, 64)
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		// Count already-placed neighbors per part.
		for _, c := range cols {
			if q := p.Part[c]; q >= 0 {
				if gain[q] == 0 {
					touched = append(touched, q)
				}
				gain[q]++
			}
		}
		w := float64(m.RowDegree(i))
		best, bestScore := -1, math.Inf(-1)
		// Prefer parts with neighbors; fall back to the least loaded.
		for _, q := range touched {
			if load[q]+w > capPerPart {
				continue
			}
			score := gain[q] - alpha*opt.Gamma*math.Pow(load[q], opt.Gamma-1)
			if score > bestScore {
				best, bestScore = int(q), score
			}
		}
		if best < 0 {
			// No feasible neighbor part: least-loaded feasible part.
			minLoad := math.Inf(1)
			for q := 0; q < K; q++ {
				if load[q] < minLoad {
					best, minLoad = q, load[q]
				}
			}
		}
		p.Part[i] = int32(best)
		load[best] += w
		for _, q := range touched {
			gain[q] = 0
		}
		touched = touched[:0]
	}
	return p, nil
}

// CutColumns returns the number of columns whose rows span more than one
// part (each such column forces at least one message in row-parallel SpMV)
// and the total connectivity-1 sum, the hypergraph metric proportional to
// communication volume.
func CutColumns(m *sparse.CSR, p *Partition) (cut int, connectivity int64) {
	t := m.Transpose()
	seen := make([]bool, p.K)
	for j := 0; j < t.Rows; j++ {
		rows, _ := t.Row(j)
		parts := 0
		for _, r := range rows {
			q := p.Part[r]
			if !seen[q] {
				seen[q] = true
				parts++
			}
		}
		for _, r := range rows {
			seen[p.Part[r]] = false
		}
		if parts > 1 {
			cut++
			connectivity += int64(parts - 1)
		}
	}
	return cut, connectivity
}
