package partition

import (
	mrand "math/rand"
	"testing"

	"stfw/internal/sparse"
)

func genTest(t testing.TB, rows, nnz, maxDeg int) *sparse.CSR {
	t.Helper()
	m, err := sparse.Generate(sparse.GenParams{
		Name: "ptest", Rows: rows, TargetNNZ: nnz, MaxDegree: maxDeg,
		HubRows: 2, Band: 5, TailFrac: 0.25, TailSkew: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBlock(t *testing.T) {
	p, err := Block(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	sizes := p.Sizes()
	if sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Fatalf("sizes %v", sizes)
	}
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Errorf("block sizes unbalanced: %v", sizes)
		}
	}
	// Contiguity.
	for i := 1; i < 10; i++ {
		if p.Part[i] < p.Part[i-1] {
			t.Error("block partition not monotone")
		}
	}
	if _, err := Block(5, 0); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestBlockMoreParts(t *testing.T) {
	// More parts than rows: some parts empty, assignments still valid.
	p, err := Block(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(3); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(100, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Random(100, 4, 7)
	for i := range a.Part {
		if a.Part[i] != b.Part[i] {
			t.Fatal("Random not deterministic in seed")
		}
	}
	c, _ := Random(100, 4, 8)
	same := true
	for i := range a.Part {
		if a.Part[i] != c.Part[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical partition")
	}
	if err := a.Validate(100); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyValidBalanced(t *testing.T) {
	m := genTest(t, 2000, 20000, 200)
	p, err := Greedy(m, 16, DefaultGreedy())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(m.Rows); err != nil {
		t.Fatal(err)
	}
	if imb := Imbalance(m, p); imb > 1.35 {
		t.Errorf("greedy imbalance %.3f too high", imb)
	}
}

func TestGreedyBeatsRandomOnConnectivity(t *testing.T) {
	m := genTest(t, 3000, 30000, 100)
	K := 16
	g, err := Greedy(m, K, DefaultGreedy())
	if err != nil {
		t.Fatal(err)
	}
	r, _ := Random(m.Rows, K, 1)
	_, connG := CutColumns(m, g)
	_, connR := CutColumns(m, r)
	if connG >= connR {
		t.Errorf("greedy connectivity %d not better than random %d", connG, connR)
	}
}

func TestGreedyErrors(t *testing.T) {
	m := genTest(t, 100, 600, 20)
	if _, err := Greedy(m, 0, DefaultGreedy()); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Greedy(m, 4, GreedyOptions{Slack: 0.5}); err == nil {
		t.Error("slack < 1 accepted")
	}
	rect, _ := sparse.FromTriples(2, 3, []sparse.Triple{{Row: 0, Col: 0, Val: 1}})
	if _, err := Greedy(rect, 2, DefaultGreedy()); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

func TestGreedyDefaultGammaApplied(t *testing.T) {
	m := genTest(t, 500, 3000, 40)
	p, err := Greedy(m, 4, GreedyOptions{Slack: 1.2}) // Gamma 0 -> default
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(m.Rows); err != nil {
		t.Fatal(err)
	}
}

func TestCutColumns(t *testing.T) {
	// 4 rows, column 0 touched by rows 0,1,2,3; column 1 only by row 1.
	ts := []sparse.Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 0, Val: 1}, {Row: 3, Col: 0, Val: 1},
		{Row: 1, Col: 1, Val: 1},
	}
	m, err := sparse.FromTriples(4, 4, ts)
	if err != nil {
		t.Fatal(err)
	}
	p := &Partition{K: 2, Part: []int32{0, 0, 1, 1}}
	cut, conn := CutColumns(m, p)
	if cut != 1 {
		t.Errorf("cut = %d, want 1", cut)
	}
	if conn != 1 { // column 0 spans 2 parts -> connectivity-1 = 1
		t.Errorf("connectivity = %d, want 1", conn)
	}
	all := &Partition{K: 4, Part: []int32{0, 1, 2, 3}}
	cut, conn = CutColumns(m, all)
	if cut != 1 || conn != 3 {
		t.Errorf("cut=%d conn=%d, want 1, 3", cut, conn)
	}
}

func TestImbalancePerfect(t *testing.T) {
	ts := []sparse.Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
		{Row: 2, Col: 2, Val: 1}, {Row: 3, Col: 3, Val: 1},
	}
	m, _ := sparse.FromTriples(4, 4, ts)
	p := &Partition{K: 2, Part: []int32{0, 0, 1, 1}}
	if imb := Imbalance(m, p); imb != 1 {
		t.Errorf("imbalance = %v, want 1", imb)
	}
}

func TestPartRows(t *testing.T) {
	p := &Partition{K: 2, Part: []int32{0, 1, 0, 1, 0}}
	rows := p.PartRows()
	if len(rows[0]) != 3 || len(rows[1]) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != 0 || rows[0][1] != 2 || rows[0][2] != 4 {
		t.Errorf("part 0 rows %v", rows[0])
	}
}

func TestValidateCatchesBadParts(t *testing.T) {
	p := &Partition{K: 2, Part: []int32{0, 5}}
	if err := p.Validate(2); err == nil {
		t.Error("invalid part accepted")
	}
	if err := p.Validate(3); err == nil {
		t.Error("wrong length accepted")
	}
}

func BenchmarkGreedy(b *testing.B) {
	m := genTest(b, 20000, 200000, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(m, 64, DefaultGreedy()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBlockRCMLocalityBeatsBlockOnShuffled(t *testing.T) {
	// A banded matrix with shuffled labels: plain Block sees no locality,
	// BlockRCM recovers it.
	m := genTest(t, 2000, 14000, 60)
	// Shuffle the labels via a random symmetric permutation.
	order := make([]int, m.Rows)
	for i := range order {
		order[i] = i
	}
	rng := newTestRand(9)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	shuffled, err := sparse.Permute(m, order)
	if err != nil {
		t.Fatal(err)
	}
	K := 16
	plain, err := Block(shuffled.Rows, K)
	if err != nil {
		t.Fatal(err)
	}
	rcm, err := BlockRCM(shuffled, K)
	if err != nil {
		t.Fatal(err)
	}
	if err := rcm.Validate(shuffled.Rows); err != nil {
		t.Fatal(err)
	}
	_, connPlain := CutColumns(shuffled, plain)
	_, connRCM := CutColumns(shuffled, rcm)
	if connRCM >= connPlain {
		t.Errorf("BlockRCM connectivity %d not below Block %d on shuffled banded matrix", connRCM, connPlain)
	}
}

func TestBlockRCMValidation(t *testing.T) {
	m := genTest(t, 100, 600, 20)
	if _, err := BlockRCM(m, 0); err == nil {
		t.Error("K=0 accepted")
	}
}

func newTestRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
