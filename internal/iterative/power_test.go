package iterative

import (
	"math"
	"testing"

	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// serialPower is the single-process reference.
func serialPower(a *sparse.CSR, maxIter int, tol float64) (float64, []float64) {
	n := a.Rows
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	normalize := func(v []float64) {
		var s float64
		for _, e := range v {
			s += e * e
		}
		s = 1 / math.Sqrt(s)
		for i := range v {
			v[i] *= s
		}
	}
	normalize(x)
	prev := math.Inf(1)
	lambda := 0.0
	for it := 0; it < maxIter; it++ {
		y, _ := a.MulVec(nil, x)
		var l float64
		for i := range x {
			l += x[i] * y[i]
		}
		lambda = l
		copy(x, y)
		normalize(x)
		if math.Abs(lambda-prev) < tol {
			break
		}
		prev = lambda
	}
	return lambda, x
}

func runPower(t *testing.T, a *sparse.CSR, K int, opt spmv.Options) *PowerResult {
	t.Helper()
	part, err := partition.Greedy(a, K, partition.DefaultGreedy())
	if err != nil {
		t.Fatal(err)
	}
	pat, err := spmv.BuildPattern(a, part)
	if err != nil {
		t.Fatal(err)
	}
	w, err := chanpt.NewWorld(K, K)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*PowerResult, K)
	err = w.Run(func(c runtime.Comm) error {
		res, err := PowerIteration(c, a, part, pat, PowerOptions{Tol: 1e-11, Comm: opt})
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < K; r++ {
		if results[r].Value != results[0].Value || results[r].Iters != results[0].Iters {
			t.Fatalf("ranks disagree: %+v vs %+v", results[r], results[0])
		}
	}
	return results[0]
}

func TestPowerIterationMatchesSerial(t *testing.T) {
	a := spdMatrix(t, 300) // SPD: dominant eigenvalue is real and positive
	wantVal, _ := serialPower(a, 2000, 1e-11)
	tp, _ := vpt.NewBalanced(16, 4)
	for _, opt := range []spmv.Options{
		{Method: spmv.BL},
		{Method: spmv.STFW, Topo: tp},
	} {
		res := runPower(t, a, 16, opt)
		if !res.Converged {
			t.Fatalf("%v: did not converge: %+v", opt.Method, res)
		}
		if math.Abs(res.Value-wantVal) > 1e-6*math.Abs(wantVal) {
			t.Errorf("%v: lambda %v, serial %v", opt.Method, res.Value, wantVal)
		}
	}
}

func TestPowerIterationEigenpairResidual(t *testing.T) {
	a := spdMatrix(t, 200)
	res := runPower(t, a, 8, spmv.Options{Method: spmv.BL})
	// The assembled eigenvector must satisfy ||A v - lambda v|| small.
	part, _ := partition.Greedy(a, 8, partition.DefaultGreedy())
	_ = part
	// res.Vec from rank 0 has only rank-0 entries; rebuild via a second
	// collective run instead: simpler here, verify the Rayleigh identity on
	// the serial eigenvector.
	wantVal, vec := serialPower(a, 2000, 1e-12)
	av, _ := a.MulVec(nil, vec)
	var num float64
	for i := range vec {
		d := av[i] - wantVal*vec[i]
		num += d * d
	}
	if math.Sqrt(num) > 1e-5*math.Abs(wantVal) {
		t.Errorf("serial eigenpair residual too large: %g", math.Sqrt(num))
	}
	if math.Abs(res.Value-wantVal) > 1e-6*math.Abs(wantVal) {
		t.Errorf("distributed lambda %v vs serial %v", res.Value, wantVal)
	}
}

func TestPowerIterationValidation(t *testing.T) {
	rect, _ := sparse.FromTriples(2, 3, []sparse.Triple{{Row: 0, Col: 0, Val: 1}})
	part, _ := partition.Block(2, 2)
	w, _ := chanpt.NewWorld(2, 2)
	err := w.Run(func(c runtime.Comm) error {
		if _, err := PowerIteration(c, rect, part, nil, PowerOptions{}); err == nil {
			return errBadLen
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
