// Package iterative implements a distributed conjugate gradient solver on
// top of the row-parallel SpMV and the collectives — the iterative-solver
// setting the paper's line of work targets (irregular SpMV communication
// repeated every iteration is exactly where regularizing the exchange pays
// off, since the pattern is fixed and the latency cost recurs).
//
// Vectors are distributed conformally with the matrix rows: each rank holds
// full-length slices but only its owned entries are meaningful. The SpMV
// exchange (BL or STFW) moves the halo entries; dot products reduce owned
// partial sums with an allreduce.
package iterative

import (
	"fmt"
	"math"

	"stfw/internal/collectives"
	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
)

// CGOptions configures the solver.
type CGOptions struct {
	// MaxIter bounds the iteration count; 0 means 10 * sqrt(n) + 100.
	MaxIter int
	// Tol is the relative residual target ||r|| / ||b||; 0 means 1e-10.
	Tol float64
	// Comm selects the exchange scheme of the SpMV (BL or STFW+topology).
	Comm spmv.Options
}

// CGResult reports the outcome on each rank. X holds the full-length
// solution vector with this rank's owned entries filled; assemble the
// global solution with spmv.Reduce.
type CGResult struct {
	X         []float64
	Iters     int
	Residual  float64 // final relative residual
	Converged bool
}

// CG solves A x = b for a symmetric positive definite A, collectively
// across all ranks of c. Every rank passes the same replicated A, partition,
// pattern and right-hand side; the returned X carries the rank's owned
// entries.
func CG(c runtime.Comm, a *sparse.CSR, part *partition.Partition, pat *spmv.Pattern, b []float64, opt CGOptions) (*CGResult, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("iterative: matrix must be square")
	}
	if len(b) != n {
		return nil, fmt.Errorf("iterative: b length %d != n %d", len(b), n)
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10*int(math.Sqrt(float64(n))) + 100
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	// A session reuses the exchange pattern across iterations; under STFW
	// the store-and-forward frame layout is learned once, then compiled and
	// replayed. The session also caches the owned-row list.
	sess, err := spmv.NewSession(c, a, part, pat, opt.Comm)
	if err != nil {
		return nil, err
	}
	owned := sess.OwnedRows()

	dot := func(u, v []float64) (float64, error) {
		var local float64
		for _, i := range owned {
			local += u[i] * v[i]
		}
		return collectives.AllreduceScalar(c, local, collectives.Sum)
	}

	x := make([]float64, n)
	r := make([]float64, n)
	p := make([]float64, n)
	for _, i := range owned {
		r[i] = b[i] // x0 = 0 -> r = b
		p[i] = b[i]
	}
	bNorm2, err := dot(b, b)
	if err != nil {
		return nil, err
	}
	if bNorm2 == 0 {
		return &CGResult{X: x, Converged: true}, nil
	}
	rs, err := dot(r, r)
	if err != nil {
		return nil, err
	}

	res := &CGResult{X: x}
	for it := 0; it < opt.MaxIter; it++ {
		q, err := sess.Multiply(p)
		if err != nil {
			return nil, fmt.Errorf("iterative: iteration %d SpMV: %w", it, err)
		}
		pq, err := dot(p, q)
		if err != nil {
			return nil, err
		}
		if pq <= 0 {
			return nil, fmt.Errorf("iterative: p.Ap = %g <= 0 at iteration %d (matrix not SPD?)", pq, it)
		}
		alpha := rs / pq
		for _, i := range owned {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rsNew, err := dot(r, r)
		if err != nil {
			return nil, err
		}
		res.Iters = it + 1
		res.Residual = math.Sqrt(rsNew / bNorm2)
		if res.Residual < opt.Tol {
			res.Converged = true
			return res, nil
		}
		beta := rsNew / rs
		for _, i := range owned {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return res, nil
}

// SerialCG is the single-process reference implementation used to validate
// the distributed solver.
func SerialCG(a *sparse.CSR, b []float64, maxIter int, tol float64) ([]float64, int, error) {
	n := a.Rows
	if maxIter <= 0 {
		maxIter = 10*int(math.Sqrt(float64(n))) + 100
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	dot := func(u, v []float64) float64 {
		var s float64
		for i := range u {
			s += u[i] * v[i]
		}
		return s
	}
	bNorm2 := dot(b, b)
	if bNorm2 == 0 {
		return x, 0, nil
	}
	rs := dot(r, r)
	for it := 0; it < maxIter; it++ {
		q, err := a.MulVec(nil, p)
		if err != nil {
			return nil, 0, err
		}
		pq := dot(p, q)
		if pq <= 0 {
			return nil, 0, fmt.Errorf("iterative: serial CG: matrix not SPD")
		}
		alpha := rs / pq
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rsNew := dot(r, r)
		if math.Sqrt(rsNew/bNorm2) < tol {
			return x, it + 1, nil
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x, maxIter, nil
}
