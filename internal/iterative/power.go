package iterative

import (
	"fmt"
	"math"

	"stfw/internal/collectives"
	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
)

// PowerOptions configures the distributed power iteration.
type PowerOptions struct {
	// MaxIter bounds the iterations; 0 means 1000.
	MaxIter int
	// Tol is the eigenvalue convergence threshold |lambda_k - lambda_{k-1}|;
	// 0 means 1e-10.
	Tol float64
	// Comm selects the SpMV exchange scheme.
	Comm spmv.Options
}

// PowerResult reports the dominant eigenpair estimate on each rank. Vec
// holds the rank's owned entries of the (2-normalized) eigenvector.
type PowerResult struct {
	Value     float64
	Vec       []float64
	Iters     int
	Converged bool
}

// PowerIteration estimates the dominant eigenvalue/eigenvector of a square
// matrix by repeated distributed SpMV with normalization — the
// graph-analytics workload (PageRank-style centrality on the co-authorship
// and citation matrices) whose per-superstep exchange the paper's scheme
// regularizes. Collective across all ranks of c.
func PowerIteration(c runtime.Comm, a *sparse.CSR, part *partition.Partition, pat *spmv.Pattern, opt PowerOptions) (*PowerResult, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("iterative: matrix must be square")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 1000
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	sess, err := spmv.NewSession(c, a, part, pat, opt.Comm)
	if err != nil {
		return nil, err
	}
	// The session caches the owned-row list; the returned slice is
	// read-only shared state, which the solver only iterates.
	owned := sess.OwnedRows()
	dot := func(u, v []float64) (float64, error) {
		var local float64
		for _, i := range owned {
			local += u[i] * v[i]
		}
		return collectives.AllreduceScalar(c, local, collectives.Sum)
	}

	// Deterministic non-degenerate start vector.
	x := make([]float64, n)
	for _, i := range owned {
		x[i] = 1 + float64(i%7)/7
	}
	norm2, err := dot(x, x)
	if err != nil {
		return nil, err
	}
	scale := 1 / math.Sqrt(norm2)
	for _, i := range owned {
		x[i] *= scale
	}

	res := &PowerResult{Vec: x}
	prev := math.Inf(1)
	for it := 0; it < opt.MaxIter; it++ {
		y, err := sess.Multiply(x)
		if err != nil {
			return nil, fmt.Errorf("iterative: power iteration %d: %w", it, err)
		}
		// Rayleigh quotient lambda = x.Ax (x is unit norm).
		lambda, err := dot(x, y)
		if err != nil {
			return nil, err
		}
		norm2, err := dot(y, y)
		if err != nil {
			return nil, err
		}
		if norm2 == 0 {
			return nil, fmt.Errorf("iterative: power iteration degenerated to zero vector")
		}
		scale := 1 / math.Sqrt(norm2)
		for _, i := range owned {
			x[i] = y[i] * scale
		}
		res.Iters = it + 1
		res.Value = lambda
		if math.Abs(lambda-prev) < opt.Tol {
			res.Converged = true
			break
		}
		prev = lambda
	}
	res.Vec = x
	return res, nil
}
