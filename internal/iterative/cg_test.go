package iterative

import (
	"math"
	"math/rand"
	"testing"

	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// spdMatrix builds a random symmetric positive definite test matrix.
func spdMatrix(t testing.TB, rows int) *sparse.CSR {
	t.Helper()
	base, err := sparse.Generate(sparse.GenParams{
		Name: "cgtest", Rows: rows, TargetNNZ: rows * 8, MaxDegree: rows / 4,
		HubRows: 2, Band: 3, TailFrac: 0.2, TailSkew: 1.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sparse.DiagonallyDominant(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func rhs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

func residualNorm(a *sparse.CSR, x, b []float64) float64 {
	ax, _ := a.MulVec(nil, x)
	var rr, bb float64
	for i := range b {
		d := b[i] - ax[i]
		rr += d * d
		bb += b[i] * b[i]
	}
	return math.Sqrt(rr / bb)
}

func TestDiagonallyDominantIsSPDish(t *testing.T) {
	a := spdMatrix(t, 200)
	// Diagonal strictly dominates every row.
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		var diag, off float64
		for k, c := range cols {
			if int(c) == i {
				diag = vals[k]
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not dominant: diag %g vs off %g", i, diag, off)
		}
	}
	if !a.IsSymmetricPattern() {
		t.Fatal("pattern not symmetric")
	}
}

func TestSerialCGConverges(t *testing.T) {
	a := spdMatrix(t, 300)
	b := rhs(a.Rows, 1)
	x, iters, err := SerialCG(a, b, 0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if res := residualNorm(a, x, b); res > 1e-8 {
		t.Errorf("serial CG residual %g after %d iters", res, iters)
	}
}

// runCG executes the distributed CG over a channel world and assembles the
// solution.
func runCG(t *testing.T, a *sparse.CSR, part *partition.Partition, b []float64, opt CGOptions) ([]float64, *CGResult) {
	t.Helper()
	pat, err := spmv.BuildPattern(a, part)
	if err != nil {
		t.Fatal(err)
	}
	w, err := chanpt.NewWorld(part.K, part.K)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*CGResult, part.K)
	err = w.Run(func(c runtime.Comm) error {
		res, err := CG(c, a, part, pat, b, opt)
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, part.K)
	for r, res := range results {
		xs[r] = res.X
		if res.Iters != results[0].Iters || res.Converged != results[0].Converged {
			t.Fatalf("ranks disagree on outcome: %+v vs %+v", res, results[0])
		}
	}
	x, err := spmv.Reduce(part, xs)
	if err != nil {
		t.Fatal(err)
	}
	return x, results[0]
}

func TestDistributedCGMatchesSerialBL(t *testing.T) {
	a := spdMatrix(t, 400)
	b := rhs(a.Rows, 2)
	part, err := partition.Greedy(a, 8, partition.DefaultGreedy())
	if err != nil {
		t.Fatal(err)
	}
	x, res := runCG(t, a, part, b, CGOptions{Comm: spmv.Options{Method: spmv.BL}})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if got := residualNorm(a, x, b); got > 1e-8 {
		t.Errorf("residual %g", got)
	}
}

func TestDistributedCGMatchesSerialSTFW(t *testing.T) {
	a := spdMatrix(t, 400)
	b := rhs(a.Rows, 3)
	for _, c := range []struct{ K, dim int }{{16, 2}, {16, 4}, {32, 5}} {
		part, err := partition.Greedy(a, c.K, partition.DefaultGreedy())
		if err != nil {
			t.Fatal(err)
		}
		tp, err := vpt.NewBalanced(c.K, c.dim)
		if err != nil {
			t.Fatal(err)
		}
		x, res := runCG(t, a, part, b, CGOptions{
			Comm: spmv.Options{Method: spmv.STFW, Topo: tp},
		})
		if !res.Converged {
			t.Fatalf("K=%d dim=%d did not converge: %+v", c.K, c.dim, res)
		}
		if got := residualNorm(a, x, b); got > 1e-8 {
			t.Errorf("K=%d dim=%d residual %g", c.K, c.dim, got)
		}
	}
}

func TestCGSchemesAgreeIterForIter(t *testing.T) {
	// BL and STFW move identical values, so the iterates are bit-for-bit
	// comparable up to floating-point reduction order; with the same
	// deterministic reduction order (allreduce tree identical), iteration
	// counts must match exactly.
	a := spdMatrix(t, 300)
	b := rhs(a.Rows, 4)
	part, err := partition.Greedy(a, 16, partition.DefaultGreedy())
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := vpt.NewBalanced(16, 4)
	_, resBL := runCG(t, a, part, b, CGOptions{Comm: spmv.Options{Method: spmv.BL}})
	_, resST := runCG(t, a, part, b, CGOptions{Comm: spmv.Options{Method: spmv.STFW, Topo: tp}})
	if resBL.Iters != resST.Iters {
		t.Errorf("BL took %d iters, STFW %d", resBL.Iters, resST.Iters)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := spdMatrix(t, 100)
	part, _ := partition.Block(a.Rows, 4)
	x, res := runCG(t, a, part, make([]float64, a.Rows), CGOptions{Comm: spmv.Options{Method: spmv.BL}})
	if !res.Converged || res.Iters != 0 {
		t.Errorf("zero rhs: %+v", res)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestCGValidation(t *testing.T) {
	a := spdMatrix(t, 64)
	part, _ := partition.Block(a.Rows, 4)
	pat, _ := spmv.BuildPattern(a, part)
	w, _ := chanpt.NewWorld(4, 4)
	err := w.Run(func(c runtime.Comm) error {
		if _, err := CG(c, a, part, pat, make([]float64, 5), CGOptions{}); err == nil {
			return errBadLen
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

var errBadLen = &validationErr{}

type validationErr struct{}

func (*validationErr) Error() string { return "bad b length accepted" }

func TestCGNonSPDFails(t *testing.T) {
	// An indefinite matrix must be rejected via the p.Ap check.
	ts := []sparse.Triple{
		{Row: 0, Col: 0, Val: -5}, {Row: 1, Col: 1, Val: 1},
	}
	a, err := sparse.FromTriples(2, 2, ts)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := partition.Block(2, 2)
	pat, _ := spmv.BuildPattern(a, part)
	w, _ := chanpt.NewWorld(2, 2)
	errs := make([]error, 2)
	_ = w.Run(func(c runtime.Comm) error {
		_, errs[c.Rank()] = CG(c, a, part, pat, []float64{1, 1}, CGOptions{})
		return nil
	})
	if errs[0] == nil || errs[1] == nil {
		t.Error("indefinite matrix accepted")
	}
}

func BenchmarkDistributedCG16(b *testing.B) {
	a := spdMatrix(b, 500)
	vec := rhs(a.Rows, 5)
	part, _ := partition.Greedy(a, 16, partition.DefaultGreedy())
	pat, _ := spmv.BuildPattern(a, part)
	tp, _ := vpt.NewBalanced(16, 4)
	opt := CGOptions{Comm: spmv.Options{Method: spmv.STFW, Topo: tp}, Tol: 1e-8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := chanpt.NewWorld(16, 16)
		err := w.Run(func(c runtime.Comm) error {
			_, err := CG(c, a, part, pat, vec, opt)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
