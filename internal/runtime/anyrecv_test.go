package runtime_test

import (
	"testing"

	"stfw/internal/transport/tptest"
)

// TestRecvAnyOfHelperSemantics delegates to the shared harness
// (internal/transport/tptest): fallback to fixed-order receives on plain
// Comms, fallback on the ErrNoRecvAny sentinel, native matcher passthrough,
// empty-candidate rejection, and the SendRetains retain-by-default rule.
func TestRecvAnyOfHelperSemantics(t *testing.T) {
	tptest.RunHelperSemantics(t)
}
