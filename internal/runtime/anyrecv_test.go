package runtime

import (
	"fmt"
	"testing"
)

// recvOnlyComm is a plain Comm without arrival-order support; RecvAnyOf
// must fall back to a targeted Recv on the first candidate.
type recvOnlyComm struct {
	fakeComm
	recvCalls []int
}

func (r *recvOnlyComm) Recv(from, tag int) ([]byte, error) {
	r.recvCalls = append(r.recvCalls, from)
	return []byte(fmt.Sprintf("%d/%d", from, tag)), nil
}

func TestRecvAnyOfFallsBackToFixedOrder(t *testing.T) {
	c := &recvOnlyComm{fakeComm: fakeComm{rank: 0, size: 4}}
	from, payload, err := RecvAnyOf(c, 9, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if from != 2 || string(payload) != "2/9" {
		t.Fatalf("fallback matched from=%d payload=%q, want targeted Recv(2, 9)", from, payload)
	}
	if len(c.recvCalls) != 1 || c.recvCalls[0] != 2 {
		t.Fatalf("fallback issued %v, want a single Recv from the first candidate", c.recvCalls)
	}
}

// optOutComm advertises AnyReceiver but reports ErrNoRecvAny (the conforming
// answer for a wrapper whose inner transport lacks a matcher); the helper
// must then fall back, not surface the sentinel.
type optOutComm struct {
	recvOnlyComm
	anyCalls int
}

func (o *optOutComm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	o.anyCalls++
	return -1, nil, ErrNoRecvAny
}

func TestRecvAnyOfSentinelTriggersFallback(t *testing.T) {
	c := &optOutComm{recvOnlyComm: recvOnlyComm{fakeComm: fakeComm{rank: 0, size: 4}}}
	from, _, err := RecvAnyOf(c, 5, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.anyCalls != 1 {
		t.Fatalf("native matcher consulted %d times, want 1", c.anyCalls)
	}
	if from != 3 || len(c.recvCalls) != 1 || c.recvCalls[0] != 3 {
		t.Fatalf("fallback not taken: from=%d recvCalls=%v", from, c.recvCalls)
	}
}

// nativeComm has a working matcher; the helper must use it directly.
type nativeComm struct {
	recvOnlyComm
}

func (n *nativeComm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	last := from[len(from)-1]
	return last, []byte("native"), nil
}

func TestRecvAnyOfUsesNativeMatcher(t *testing.T) {
	c := &nativeComm{recvOnlyComm: recvOnlyComm{fakeComm: fakeComm{rank: 0, size: 4}}}
	from, payload, err := RecvAnyOf(c, 5, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if from != 2 || string(payload) != "native" {
		t.Fatalf("native matcher bypassed: from=%d payload=%q", from, payload)
	}
	if len(c.recvCalls) != 0 {
		t.Fatalf("fallback Recv issued despite native matcher: %v", c.recvCalls)
	}
}

func TestRecvAnyOfRejectsEmptyCandidates(t *testing.T) {
	c := &recvOnlyComm{fakeComm: fakeComm{rank: 0, size: 4}}
	if _, _, err := RecvAnyOf(c, 1, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

// retainComm opts out of buffer retention; plain comms default to retain
// (the safe assumption for unknown transports).
type retainComm struct {
	fakeComm
	retains bool
}

func (r *retainComm) SendRetains() bool { return r.retains }

func TestSendRetainsDefaultsAndPassthrough(t *testing.T) {
	if !SendRetains(&fakeComm{}) {
		t.Error("unknown transports must default to retaining sends")
	}
	if SendRetains(&retainComm{retains: false}) {
		t.Error("SendRetainer answer not forwarded")
	}
	if !SendRetains(&retainComm{retains: true}) {
		t.Error("SendRetainer answer not forwarded")
	}
}
