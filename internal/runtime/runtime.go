// Package runtime provides the message-passing substrate the paper assumes
// from MPI: a set of K ranks that exchange tagged point-to-point frames and
// synchronize on barriers. The store-and-forward executor and the baseline
// exchange are written against the Comm interface, so they run unchanged on
// the in-process channel transport (tests, examples, benchmarks) and on the
// TCP transport (multi-socket runs).
package runtime

import (
	"fmt"
	"sync"
)

// Comm is one rank's endpoint into a world of Size() ranks. Implementations
// must allow concurrent Send and Recv from the owning rank's goroutine; a
// Comm value is used by exactly one rank.
//
// Tag semantics follow MPI: a frame sent with tag t is only matched by a
// Recv with the same tag, and frames between a fixed (sender, receiver, tag)
// triple are delivered in send order.
type Comm interface {
	// Rank returns this process's identity in [0, Size()).
	Rank() int
	// Size returns the number of ranks in the world, K.
	Size() int
	// Send delivers payload to rank `to` under `tag`. The payload may be
	// retained by the transport; callers must not mutate it afterwards.
	Send(to, tag int, payload []byte) error
	// Recv blocks until a frame with `tag` arrives from rank `from` and
	// returns its payload.
	Recv(from, tag int) ([]byte, error)
	// Barrier blocks until every rank in the world has entered it.
	Barrier() error
}

// RankFunc is the body executed by each rank, analogous to an MPI program's
// main. The returned error aborts the world run.
type RankFunc func(c Comm) error

// Run spawns one goroutine per rank over the given communicators (one per
// rank, index = rank) and waits for all of them. It returns the first
// non-nil error by rank order, wrapped with the rank that produced it.
func Run(comms []Comm, fn RankFunc) error {
	errs := make([]error, len(comms))
	var wg sync.WaitGroup
	for r, c := range comms {
		wg.Add(1)
		go func(r int, c Comm) {
			defer wg.Done()
			errs[r] = fn(c)
		}(r, c)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// Barrier is a reusable K-party barrier usable by transport implementations.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase uint64
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until n parties have called it (per phase).
func (b *Barrier) Await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
}
