// Package runtime provides the message-passing substrate the paper assumes
// from MPI: a set of K ranks that exchange tagged point-to-point frames and
// synchronize on barriers. The store-and-forward executor and the baseline
// exchange are written against the Comm interface, so they run unchanged on
// the in-process channel transport (tests, examples, benchmarks) and on the
// TCP transport (multi-socket runs).
package runtime

import (
	"errors"
	"fmt"
	"sync"
)

// Comm is one rank's endpoint into a world of Size() ranks. Implementations
// must allow concurrent Send and Recv from the owning rank's goroutine; a
// Comm value is used by exactly one rank.
//
// Tag semantics follow MPI: a frame sent with tag t is only matched by a
// Recv with the same tag, and frames between a fixed (sender, receiver, tag)
// triple are delivered in send order.
type Comm interface {
	// Rank returns this process's identity in [0, Size()).
	Rank() int
	// Size returns the number of ranks in the world, K.
	Size() int
	// Send delivers payload to rank `to` under `tag`. The payload may be
	// retained by the transport; callers must not mutate it afterwards.
	Send(to, tag int, payload []byte) error
	// Recv blocks until a frame with `tag` arrives from rank `from` and
	// returns its payload.
	Recv(from, tag int) ([]byte, error)
	// Barrier blocks until every rank in the world has entered it.
	Barrier() error
}

// AnyReceiver is an optional Comm extension for arrival-order receives: the
// pipelined exchange engine uses it to process whichever neighbor's frame
// lands first instead of blocking on a fixed neighbor order. Transports that
// can match frames out of sender order implement it; for everything else
// RecvAnyOf degrades to a conforming fixed-order fallback.
type AnyReceiver interface {
	// RecvAnyOf blocks until a frame carrying tag from any of the listed
	// ranks arrives, and returns the sender together with the payload.
	// Frames from ranks not in the list (or with other tags) are left
	// queued for later matching, and among deliverable frames the earliest
	// arrival is returned. Implementations that cannot provide the
	// operation (e.g. wrappers over an unknown Comm) return ErrNoRecvAny.
	RecvAnyOf(tag int, from []int) (sender int, payload []byte, err error)
}

// ErrNoRecvAny is returned by AnyReceiver implementations (typically
// wrappers) whose underlying transport cannot match frames in arrival
// order; RecvAnyOf then falls back to a fixed-order Recv.
var ErrNoRecvAny = errors.New("runtime: transport does not support arrival-order receive")

// RecvAnyOf receives a tagged frame from any of the given candidate
// senders: in arrival order when c supports it, and from the first listed
// candidate otherwise (the fixed-order fallback is conforming because every
// candidate is guaranteed to send exactly one frame with the tag). The
// candidate list must be non-empty.
func RecvAnyOf(c Comm, tag int, from []int) (int, []byte, error) {
	if len(from) == 0 {
		return -1, nil, errors.New("runtime: RecvAnyOf with no candidate senders")
	}
	if ar, ok := c.(AnyReceiver); ok {
		sender, payload, err := ar.RecvAnyOf(tag, from)
		if err == nil || !errors.Is(err, ErrNoRecvAny) {
			return sender, payload, err
		}
	}
	payload, err := c.Recv(from[0], tag)
	return from[0], payload, err
}

// RecvPolicy tracks the outstanding senders of one receive round and hands
// out frames under a fixed discipline: with Arrival set it serves whichever
// expected frame lands first (RecvAnyOf, falling back transparently on
// transports without a matcher), otherwise it issues targeted Recvs in the
// listed order. The stage engine resets one policy per stage, so receive
// ordering is decided in exactly one place instead of per engine variant.
// Reset reuses the policy's backing storage; a zero RecvPolicy is ready for
// use.
type RecvPolicy struct {
	// Arrival selects arrival-order matching; false means fixed listed order.
	Arrival bool
	buf     []int
	pending []int
}

// Reset starts a receive round over the given senders. The slice is copied;
// the caller may reuse it.
func (p *RecvPolicy) Reset(from []int) {
	p.buf = append(p.buf[:0], from...)
	p.pending = p.buf
}

// Outstanding returns how many expected frames have not been received yet.
func (p *RecvPolicy) Outstanding() int { return len(p.pending) }

// Next receives one frame from an outstanding sender under the policy's
// discipline and removes that sender from the round. On error the returned
// sender is the rank the targeted Recv was issued to, or -1 when the
// arrival-order matcher failed before attributing a sender.
func (p *RecvPolicy) Next(c Comm, tag int) (int, []byte, error) {
	if len(p.pending) == 0 {
		return -1, nil, errors.New("runtime: RecvPolicy.Next with no outstanding senders")
	}
	if !p.Arrival {
		from := p.pending[0]
		payload, err := c.Recv(from, tag)
		if err != nil {
			return from, nil, err
		}
		p.pending = p.pending[1:]
		return from, payload, nil
	}
	from, payload, err := RecvAnyOf(c, tag, p.pending)
	if err != nil {
		return -1, nil, err
	}
	for i, q := range p.pending {
		if q == from {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			break
		}
	}
	return from, payload, nil
}

// SendRetainer is an optional Comm extension declaring whether Send retains
// the payload slice after returning. Zero-copy transports (in-process
// channels handing the slice to the receiver) retain it; wire transports
// that serialize the bytes before Send returns do not. Engines that pool
// their send buffers use this to decide when a buffer may be reused.
type SendRetainer interface {
	// SendRetains reports whether payloads passed to Send remain referenced
	// by the transport (or the receiving rank) after Send returns.
	SendRetains() bool
}

// SendRetains reports whether c may retain payload slices passed to Send.
// Unknown transports are assumed to retain them — the safe default under
// the Comm contract.
func SendRetains(c Comm) bool {
	if r, ok := c.(SendRetainer); ok {
		return r.SendRetains()
	}
	return true
}

// RankFunc is the body executed by each rank, analogous to an MPI program's
// main. The returned error aborts the world run.
type RankFunc func(c Comm) error

// Run spawns one goroutine per rank over the given communicators (one per
// rank, index = rank) and waits for all of them. It returns the first
// non-nil error by rank order, wrapped with the rank that produced it.
func Run(comms []Comm, fn RankFunc) error {
	errs := make([]error, len(comms))
	var wg sync.WaitGroup
	for r, c := range comms {
		wg.Add(1)
		go func(r int, c Comm) {
			defer wg.Done()
			errs[r] = fn(c)
		}(r, c)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// Barrier is a reusable K-party barrier usable by transport implementations.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase uint64
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until n parties have called it (per phase).
func (b *Barrier) Await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
}
