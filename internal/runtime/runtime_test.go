package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeComm is a minimal Comm for exercising Run without a transport.
type fakeComm struct {
	rank, size int
}

func (f *fakeComm) Rank() int                     { return f.rank }
func (f *fakeComm) Size() int                     { return f.size }
func (f *fakeComm) Send(int, int, []byte) error   { return nil }
func (f *fakeComm) Recv(int, int) ([]byte, error) { return nil, nil }
func (f *fakeComm) Barrier() error                { return nil }

func fakeWorld(n int) []Comm {
	cs := make([]Comm, n)
	for i := range cs {
		cs[i] = &fakeComm{rank: i, size: n}
	}
	return cs
}

func TestRunExecutesEveryRank(t *testing.T) {
	var count int32
	seen := make([]int32, 8)
	err := Run(fakeWorld(8), func(c Comm) error {
		atomic.AddInt32(&count, 1)
		atomic.AddInt32(&seen[c.Rank()], 1)
		if c.Size() != 8 {
			return errors.New("wrong size")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("ran %d ranks", count)
	}
	for r, n := range seen {
		if n != 1 {
			t.Errorf("rank %d ran %d times", r, n)
		}
	}
}

func TestRunReturnsFirstErrorByRank(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := Run(fakeWorld(4), func(c Comm) error {
		switch c.Rank() {
		case 1:
			return errB
		case 3:
			return errA
		}
		return nil
	})
	if err == nil || !errors.Is(err, errB) {
		t.Fatalf("err = %v, want wrapped %v (lowest rank)", err, errB)
	}
}

func TestBarrierAllPhases(t *testing.T) {
	const N = 10
	b := NewBarrier(N)
	var phase0, phase1 int32
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt32(&phase0, 1)
			b.Await()
			if got := atomic.LoadInt32(&phase0); got != N {
				t.Errorf("passed barrier with %d arrivals", got)
			}
			atomic.AddInt32(&phase1, 1)
			b.Await()
			if got := atomic.LoadInt32(&phase1); got != N {
				t.Errorf("passed second barrier with %d arrivals", got)
			}
		}()
	}
	wg.Wait()
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 3; i++ {
		b.Await() // must never block
	}
}
