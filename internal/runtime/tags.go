package runtime

// Control-tag reservations: some transports piggyback their own control
// traffic on the same tagged-frame plane the application uses (udpnet's
// barrier runs over two reserved tags). That is invisible while a Comm is
// the whole world, but a composite transport that multiplexes several
// sub-transports must know which tag ranges each sub-transport claims for
// itself: a control tag that aliases an application stage tag on another
// sub-transport would cross-match frames. TagReserver makes the claim
// explicit so a mux can verify disjointness at construction time instead
// of discovering the collision as a hung receive.

// TagReserver is an optional Comm extension declaring the half-open tag
// range [lo, hi) the transport reserves for internal control traffic.
// Applications (and wrappers) must not send or receive frames with tags in
// the reserved range. Transports with no control tags simply do not
// implement the interface.
type TagReserver interface {
	// ReservedTags returns the half-open [lo, hi) tag range the transport
	// claims. lo >= hi means no reservation.
	ReservedTags() (lo, hi int)
}

// ReservedTagsOf returns c's reserved control-tag range and whether the
// transport declares one.
func ReservedTagsOf(c Comm) (lo, hi int, ok bool) {
	r, isRes := c.(TagReserver)
	if !isRes {
		return 0, 0, false
	}
	lo, hi = r.ReservedTags()
	if lo >= hi {
		return 0, 0, false
	}
	return lo, hi, true
}
