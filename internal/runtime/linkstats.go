package runtime

// Per-link wire observability: the transport-level counterpart of the
// telemetry package's per-stage counters. A wire transport that keeps
// reliability state per directed link (internal/transport/udpnet's
// seq+SACK windows, tcpnet's coalescing streams) exposes what each link
// actually did — packets, resends, repairs, stalls, round trips — through
// the LinkStatsSource seam, so the telemetry registry can fold live wire
// behaviour into its per-rank snapshots without this package (or the
// telemetry package) importing any transport.
//
// The seam is read-only and snapshot-shaped: transports maintain their
// counters with whatever discipline their hot path needs (atomics under
// udpnet's link locks, plain adds under tcpnet's conn locks) and
// materialize plain values only when LinkStats is called. Hot paths never
// see this interface.

// LinkStats is a plain-value snapshot of one directed peer relationship
// (both directions: this rank -> Peer sends, Peer -> this rank receives)
// as observed by the transport's wire machinery. Fields a transport does
// not track stay zero; Zero reports whether the link saw any traffic at
// all, so sparse worlds can be summarized without K dense rows.
type LinkStats struct {
	// Peer is the remote rank of this directed link pair.
	Peer int `json:"peer"`

	// --- send direction (this rank -> Peer) ---

	// FramesSent counts transport frames handed to the link; BytesSent the
	// wire bytes that carried them (headers included where the transport
	// frames its own packets).
	FramesSent int64 `json:"frames_sent,omitempty"`
	BytesSent  int64 `json:"bytes_sent,omitempty"`
	// PktsSent counts first transmissions of wire packets (datagrams on
	// udpnet, buffered stream writes on tcpnet).
	PktsSent int64 `json:"pkts_sent,omitempty"`
	// TimeoutResends counts retransmissions triggered by the RTO scan;
	// GapResends counts retransmissions triggered by a SACK gap report.
	TimeoutResends int64 `json:"timeout_resends,omitempty"`
	GapResends     int64 `json:"gap_resends,omitempty"`
	// SackRepairs counts window slots released early by a selective ack —
	// packets that survived while a predecessor was lost.
	SackRepairs int64 `json:"sack_repairs,omitempty"`
	// WindowStalls counts drain passes that left sealed packets queued
	// because the peer's in-flight window was exhausted; BacklogHighWater
	// is the deepest the sealed-packet backlog ever got.
	WindowStalls     int64 `json:"window_stalls,omitempty"`
	BacklogHighWater int64 `json:"backlog_high_water,omitempty"`
	// SRTTNs is the smoothed round-trip time (EWMA, nanoseconds) measured
	// from data-packet send to the ack that covered it, Karn-filtered
	// (retransmitted packets never contribute a sample). RTTSamples counts
	// the round trips folded in; SRTTNs is meaningless while it is zero.
	SRTTNs     int64 `json:"srtt_ns,omitempty"`
	RTTSamples int64 `json:"rtt_samples,omitempty"`

	// --- receive direction (Peer -> this rank) ---

	// FramesRecvd counts transport frames delivered from the link;
	// BytesRecvd the wire bytes that carried them.
	FramesRecvd int64 `json:"frames_recvd,omitempty"`
	BytesRecvd  int64 `json:"bytes_recvd,omitempty"`
	// PktsRecvd counts wire packets processed in sequence; Dups counts
	// duplicate or out-of-window packets dropped.
	PktsRecvd int64 `json:"pkts_recvd,omitempty"`
	Dups      int64 `json:"dups,omitempty"`
	// Ack decisions, classified by what forced them: AcksSuppressed were
	// skipped because a TrafficHinter hint promised more frames for the
	// stage; StageAcks fired because a hinted stage's inbound set
	// completed (the zero-speculation path); LivenessAcks were forced by
	// the liveness rules (half-window credit pressure, a reorder gap, or
	// the max-delay clock) despite an unfinished hint; AcksSent is every
	// ack that hit the wire regardless of reason.
	AcksSent       int64 `json:"acks_sent,omitempty"`
	AcksSuppressed int64 `json:"acks_suppressed,omitempty"`
	StageAcks      int64 `json:"stage_acks,omitempty"`
	LivenessAcks   int64 `json:"liveness_acks,omitempty"`
}

// Zero reports whether the link saw no traffic in either direction.
func (l *LinkStats) Zero() bool {
	return l.FramesSent == 0 && l.FramesRecvd == 0 &&
		l.PktsSent == 0 && l.PktsRecvd == 0 &&
		l.AcksSent == 0 && l.AcksSuppressed == 0 && l.Dups == 0
}

// Add folds another link's counters into l (Peer is left alone); the
// fleet merge uses it to aggregate per-rank or per-world summaries. SRTT
// merges as a sample-weighted mean so aggregates stay in RTT units.
func (l *LinkStats) Add(o LinkStats) {
	if n := l.RTTSamples + o.RTTSamples; n > 0 {
		l.SRTTNs = (l.SRTTNs*l.RTTSamples + o.SRTTNs*o.RTTSamples) / n
		l.RTTSamples = n
	}
	l.FramesSent += o.FramesSent
	l.BytesSent += o.BytesSent
	l.PktsSent += o.PktsSent
	l.TimeoutResends += o.TimeoutResends
	l.GapResends += o.GapResends
	l.SackRepairs += o.SackRepairs
	l.WindowStalls += o.WindowStalls
	if o.BacklogHighWater > l.BacklogHighWater {
		l.BacklogHighWater = o.BacklogHighWater
	}
	l.FramesRecvd += o.FramesRecvd
	l.BytesRecvd += o.BytesRecvd
	l.PktsRecvd += o.PktsRecvd
	l.Dups += o.Dups
	l.AcksSent += o.AcksSent
	l.AcksSuppressed += o.AcksSuppressed
	l.StageAcks += o.StageAcks
	l.LivenessAcks += o.LivenessAcks
}

// Resends returns the total retransmissions regardless of trigger.
func (l *LinkStats) Resends() int64 { return l.TimeoutResends + l.GapResends }

// LinkStatsSource is an optional Comm extension: a transport that keeps
// per-link wire state implements it to expose a snapshot of every
// directed link this rank owns. Links that never saw traffic may be
// omitted. The returned slice is freshly built per call (it is a
// snapshot, not live state) and sorted by Peer.
type LinkStatsSource interface {
	LinkStats() []LinkStats
}

// LinkStatsOf returns c's per-link wire snapshot when the transport (or a
// forwarding wrapper) exposes one, and nil otherwise.
func LinkStatsOf(c Comm) []LinkStats {
	if s, ok := c.(LinkStatsSource); ok {
		return s.LinkStats()
	}
	return nil
}
