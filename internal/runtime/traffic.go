package runtime

// Traffic hints: an optional, advisory channel from a schedule-aware engine
// down to the transport. The store-and-forward executor knows, before a
// single byte moves, exactly which frames every stage will carry — the
// StageSchedule IR lists each stage's outbound slots and expected inbound
// senders. A transport that learns this ahead of time never has to
// speculate about flow-control state: it knows when a peer's per-stage
// inbound set is complete (acknowledge immediately, release the sender's
// credits at the stage boundary) and how much traffic a window must cover.
//
// Hints are strictly optional and advisory: a transport must stay correct
// (and live) without them, and must stay correct when the actual traffic
// deviates from a stale hint — the engine may patch a schedule between
// iterations (frame counts are invariant under core.Persistent.Patch, byte
// sizes are not), and wrappers may drop the hint entirely.

// PeerTraffic is the expected traffic between this rank and one peer within
// one stage, in one direction.
type PeerTraffic struct {
	// Peer is the remote rank.
	Peer int
	// Frames is the exact number of transport frames expected (empty
	// frames included — their arrival is part of the schedule).
	Frames int
	// Bytes is the expected total wire bytes of those frames (the payload
	// lengths passed to Send), 0 when the front-end does not know sizes
	// (only the learned and compiled front-ends do). Advisory only.
	Bytes int
}

// StageTraffic summarizes one schedule stage for the transport: the tag its
// frames travel under and the per-peer outbound/inbound frame counts.
type StageTraffic struct {
	// Tag is the transport tag all of the stage's frames carry.
	Tag int
	// Dim is the virtual-topology dimension the stage traverses, as recorded
	// in the schedule IR. Composite transports use it to attribute a stage to
	// the sub-transport that owns the dimension; like everything else in a
	// hint it is advisory and may not be relied on for correctness.
	Dim int
	// Sends lists expected outbound traffic per destination peer.
	Sends []PeerTraffic
	// Recvs lists expected inbound traffic per source peer.
	Recvs []PeerTraffic
}

// TrafficHinter is an optional Comm extension: a transport that implements
// it is told the full per-stage traffic summary of the schedule about to
// execute. Engines call it (through HintTraffic) once per run, before the
// first stage's sends; transports should treat a repeated hint with the
// same backing slice as a no-op so steady-state replays stay allocation
// free. Implementations must tolerate hints that do not match the traffic
// actually observed — hints may be stale or absent, never load-bearing for
// correctness.
type TrafficHinter interface {
	HintTraffic(stages []StageTraffic)
}

// HintTraffic forwards a schedule's traffic summary to the transport when
// it accepts hints, and is a no-op otherwise. A nil or empty summary is
// ignored.
func HintTraffic(c Comm, stages []StageTraffic) {
	if len(stages) == 0 {
		return
	}
	if h, ok := c.(TrafficHinter); ok {
		h.HintTraffic(stages)
	}
}
