package experiments

import (
	"fmt"
	"io"

	"stfw/internal/core"
	"stfw/internal/metrics"
	"stfw/internal/netsim"
	"stfw/internal/vpt"
)

// The stencil experiment is a negative control the paper's introduction
// implies: for communication that is already regular — a 2D 5-point halo
// exchange, where every process talks to exactly 4 neighbors — there is no
// latency imbalance to fix, so the store-and-forward scheme can only add
// forwarding. A faithful implementation must show STFW *not* helping here.

// StencilSendSets builds the 5-point halo exchange pattern on a px x py
// process grid (wrap-around, like a periodic domain): each rank sends
// `words` words to its four grid neighbors.
func StencilSendSets(px, py int, words int64) (*core.SendSets, error) {
	if px < 2 || py < 2 {
		return nil, fmt.Errorf("experiments: stencil grid %dx%d too small", px, py)
	}
	K := px * py
	s := core.NewSendSets(K)
	for y := 0; y < py; y++ {
		for x := 0; x < px; x++ {
			me := y*px + x
			neighbors := []int{
				y*px + (x+1)%px,
				y*px + (x-1+px)%px,
				((y+1)%py)*px + x,
				((y-1+py)%py)*px + x,
			}
			for _, nb := range neighbors {
				if nb != me {
					s.Add(me, nb, words)
				}
			}
		}
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// StencilRow is one scheme's metrics on the halo exchange.
type StencilRow struct {
	Scheme  string
	Summary metrics.Summary
}

// StencilControl evaluates BL and every STFW dimension on the regular halo
// exchange at K ranks (px = py = sqrt(K)), priced on BG/Q.
func StencilControl(K int, words int64) ([]StencilRow, error) {
	px := 1
	for px*px < K {
		px *= 2
	}
	if px*px != K {
		return nil, fmt.Errorf("experiments: stencil control needs a square power-of-two K, got %d", K)
	}
	sends, err := StencilSendSets(px, px, words)
	if err != nil {
		return nil, err
	}
	mach, err := netsim.BlueGeneQ(K)
	if err != nil {
		return nil, err
	}
	var out []StencilRow
	for _, n := range append([]int{1}, AllDims(K)...) {
		var plan *core.Plan
		if n == 1 {
			plan, err = core.BuildDirectPlan(sends)
		} else {
			var tp *vpt.Topology
			tp, err = vpt.NewBalanced(K, n)
			if err != nil {
				return nil, err
			}
			plan, err = core.BuildPlan(tp, sends)
		}
		if err != nil {
			return nil, err
		}
		sum, err := metrics.Summarize(SchemeName(n), plan, sends)
		if err != nil {
			return nil, err
		}
		sum.CommTime, err = netsim.CommTime(mach, plan)
		if err != nil {
			return nil, err
		}
		out = append(out, StencilRow{Scheme: SchemeName(n), Summary: sum})
	}
	return out, nil
}

// RenderStencilControl prints the control experiment.
func RenderStencilControl(w io.Writer, K int, rows []StencilRow) {
	fmt.Fprintf(w, "Stencil control: 5-point halo exchange at K=%d (already regular; STFW should NOT help)\n", K)
	fmt.Fprintf(w, "%-8s %8s %8s %9s %11s\n", "scheme", "mmax", "mavg", "vavg", "comm(us)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %8.1f %8.1f %9.0f %11.1f\n",
			r.Scheme, r.Summary.MMax, r.Summary.MAvg, r.Summary.VAvg,
			netsim.Microseconds(r.Summary.CommTime))
	}
}
