package experiments

import (
	"bytes"
	"strings"
	"testing"

	"stfw/internal/sparse"
)

// Small-scale configuration for tests: aggressive matrix shrink keeps each
// experiment driver under a second while preserving the regimes.
var testCfg = Config{Scale: 64}

func TestAllDims(t *testing.T) {
	got := AllDims(64)
	want := []int{2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("AllDims(64) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AllDims(64) = %v", got)
		}
	}
	if len(AllDims(4)) != 1 || AllDims(4)[0] != 2 {
		t.Errorf("AllDims(4) = %v", AllDims(4))
	}
}

func TestEvenDims(t *testing.T) {
	if got := EvenDims(32); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("EvenDims(32) = %v", got)
	}
	if got := EvenDims(512); len(got) != 4 || got[3] != 8 {
		t.Errorf("EvenDims(512) = %v", got)
	}
}

func TestLargeScaleDims(t *testing.T) {
	// Paper's selections: 16K -> {2,3,4,8,9,13,14}; 8K -> {2,3,4,7,8,12,13};
	// 4K -> {2,3,4,7,8,11,12}.
	check := func(K int, want []int) {
		t.Helper()
		got := LargeScaleDims(K)
		if len(got) != len(want) {
			t.Fatalf("LargeScaleDims(%d) = %v, want %v", K, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("LargeScaleDims(%d) = %v, want %v", K, got, want)
			}
		}
	}
	check(16384, []int{2, 3, 4, 8, 9, 13, 14})
	check(8192, []int{2, 3, 4, 7, 8, 12, 13})
	check(4096, []int{2, 3, 4, 7, 8, 11, 12})
}

func TestSchemeName(t *testing.T) {
	if SchemeName(1) != "BL" || SchemeName(4) != "STFW4" {
		t.Error("scheme names wrong")
	}
}

func TestMachineFor(t *testing.T) {
	for _, name := range []string{"bgq", "xk7", "xc40"} {
		if _, err := MachineFor(name, 128); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := MachineFor("summit", 128); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestPrepareCachesInstances(t *testing.T) {
	a, err := Prepare(testCfg, "cbuckle", 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Prepare(testCfg, "cbuckle", 32)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("instances not cached")
	}
	if a.K != 32 || a.Matrix != "cbuckle" || a.Sends.K != 32 {
		t.Errorf("instance fields wrong: %+v", a)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "gupta2") {
		t.Error("render missing matrices")
	}
}

// The central shape assertions of the reproduction: at any scale, STFW must
// (i) cut mmax and mavg drastically versus BL, (ii) increase vavg
// moderately, (iii) keep buffer below 2x BL (Section 6.2 observation), and
// (iv) win on communication time in the latency-bound geomean.
func TestTable2Shapes(t *testing.T) {
	blocks, err := table2Over(testCfg, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	rows := blocks[0].Rows
	bl := rows[0]
	if bl.Scheme != "BL" {
		t.Fatalf("first row %q", bl.Scheme)
	}
	for _, r := range rows[1:] {
		if r.MMax >= bl.MMax {
			t.Errorf("%s mmax %.1f not below BL %.1f", r.Scheme, r.MMax, bl.MMax)
		}
		if r.MAvg >= bl.MAvg {
			t.Errorf("%s mavg %.1f not below BL %.1f", r.Scheme, r.MAvg, bl.MAvg)
		}
		if r.VAvg <= bl.VAvg {
			t.Errorf("%s vavg %.0f not above BL %.0f", r.Scheme, r.VAvg, bl.VAvg)
		}
		if r.VAvg > 6*bl.VAvg {
			t.Errorf("%s vavg blowup %.1fx implausible", r.Scheme, r.VAvg/bl.VAvg)
		}
		// Section 6.2: STFW buffers exceed BL's (store-and-forward copies)
		// but stay under twice BL's size.
		if r.BufferBytes <= bl.BufferBytes {
			t.Errorf("%s buffer %.0f not above BL %.0f", r.Scheme, r.BufferBytes, bl.BufferBytes)
		}
		if r.BufferBytes > 2.5*bl.BufferBytes {
			t.Errorf("%s buffer %.0f more than 2.5x BL %.0f", r.Scheme, r.BufferBytes, bl.BufferBytes)
		}
	}
	// Message counts decrease monotonically with dimension.
	for i := 2; i < len(rows); i++ {
		if rows[i].MMax > rows[i-1].MMax {
			t.Errorf("mmax not monotone: %s %.1f > %s %.1f",
				rows[i].Scheme, rows[i].MMax, rows[i-1].Scheme, rows[i-1].MMax)
		}
	}
	// Some STFW dimension must beat BL on comm time.
	best := BestScheme(rows)
	if best.Scheme == "BL" {
		t.Errorf("no STFW dimension beat BL on comm time")
	}
	var buf bytes.Buffer
	RenderTable2(&buf, blocks)
	if !strings.Contains(buf.String(), "STFW2") {
		t.Error("render missing schemes")
	}
}

func TestFigure1(t *testing.T) {
	series, err := Figure1At(testCfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Counts) != 64 {
			t.Errorf("%s: %d counts", s.Matrix, len(s.Counts))
		}
		// The Figure-1 matrices are latency-bound: max far above average.
		if float64(s.Max) < 2*s.Avg {
			t.Errorf("%s: max %d not well above avg %.1f (not latency-bound)", s.Matrix, s.Max, s.Avg)
		}
	}
	var buf bytes.Buffer
	RenderFigure1(&buf, series)
	if !strings.Contains(buf.String(), "pkustk04") {
		t.Error("render missing series")
	}
}

func TestFigure6Normalization(t *testing.T) {
	rows, err := Figure6At(testCfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AllDims(64)) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MMax >= 1 || r.MAvg >= 1 {
			t.Errorf("T%d: normalized message counts must be < 1: %+v", r.Dim, r)
		}
		if r.VAvg <= 1 {
			t.Errorf("T%d: normalized volume must be > 1: %+v", r.Dim, r)
		}
	}
	var buf bytes.Buffer
	RenderFigure6(&buf, rows)
	if !strings.Contains(buf.String(), "mmax") {
		t.Error("render header missing")
	}
}

func TestFigure7Contrast(t *testing.T) {
	panels, err := Figure7At(testCfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		if len(p.Rows) != 1+len(AllDims(64)) {
			t.Errorf("%s: %d rows", p.Matrix, len(p.Rows))
		}
	}
	var buf bytes.Buffer
	RenderFigure7(&buf, panels)
	if !strings.Contains(buf.String(), "coAuthorsDBLP") {
		t.Error("render missing panel")
	}
}

func TestFigure8SeriesLayout(t *testing.T) {
	series, err := Figure8Over(testCfg, []string{"sparsine", "gupta2"}, []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	// Per matrix: BL, STFW2, STFW4 present at both K; STFW6 only at 64.
	byKey := map[string]Figure8Series{}
	for _, s := range series {
		byKey[s.Matrix+"/"+s.Scheme] = s
	}
	if s := byKey["sparsine/BL"]; len(s.Ks) != 2 {
		t.Errorf("BL series %v", s)
	}
	if s := byKey["sparsine/STFW6"]; len(s.Ks) != 1 || s.Ks[0] != 64 {
		t.Errorf("STFW6 series %+v", s)
	}
	var buf bytes.Buffer
	RenderFigure8(&buf, series)
	if !strings.Contains(buf.String(), "gupta2") {
		t.Error("render missing matrix")
	}
}

func TestFigure9NetworkContrast(t *testing.T) {
	bars, err := Figure9Over(testCfg, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	// 2 machines x (1 + 5 dims) bars.
	if len(bars) != 2*(1+len(AllDims(64))) {
		t.Fatalf("%d bars", len(bars))
	}
	// On both networks the best STFW must beat BL; the relative gain must
	// be at least as large on the more latency-bound XC40 (Section 6.4).
	gain := map[string]float64{}
	for _, machine := range []string{"BlueGene/Q (5D Torus)", "Cray XC40 (Dragonfly)"} {
		var bl, best float64
		for _, b := range bars {
			if b.Machine != machine {
				continue
			}
			if b.Scheme == "BL" {
				bl = b.CommUS
			} else if best == 0 || b.CommUS < best {
				best = b.CommUS
			}
		}
		if bl == 0 || best == 0 {
			t.Fatalf("%s: missing bars", machine)
		}
		if best >= bl {
			t.Errorf("%s: best STFW %.0f not below BL %.0f", machine, best, bl)
		}
		gain[machine] = bl / best
	}
	if gain["Cray XC40 (Dragonfly)"] < gain["BlueGene/Q (5D Torus)"] {
		t.Errorf("XC40 gain %.2f below BG/Q gain %.2f; expected the dragonfly profile to benefit more",
			gain["Cray XC40 (Dragonfly)"], gain["BlueGene/Q (5D Torus)"])
	}
	var buf bytes.Buffer
	RenderFigure9(&buf, bars)
	if !strings.Contains(buf.String(), "Dragonfly") {
		t.Error("render missing machine")
	}
}

func TestTable3SmallScale(t *testing.T) {
	blocks, err := Table3Over(testCfg, []Table3Spec{{Machine: "xk7", K: 512}})
	if err != nil {
		t.Fatal(err)
	}
	rows := blocks[0].Rows
	if rows[0].Scheme != "BL" || len(rows) != 1+len(LargeScaleDims(512)) {
		t.Fatalf("rows: %+v", rows)
	}
	bl := rows[0]
	best := BestScheme(rows)
	if best.Scheme == "BL" {
		t.Error("no STFW dim beat BL at large scale")
	}
	// Paper shape: the winner is a low-to-middle dimension, not the
	// extremes (highest dims over-forward).
	last := rows[len(rows)-1]
	if last.CommTime <= best.CommTime && last.Scheme != best.Scheme {
		t.Errorf("highest dimension %s unexpectedly optimal", last.Scheme)
	}
	if bl.MMax < 4*best.MMax {
		t.Errorf("mmax reduction too small: BL %.0f vs best %.0f", bl.MMax, best.MMax)
	}
	var buf bytes.Buffer
	RenderTable3(&buf, blocks)
	if !strings.Contains(buf.String(), "XK7") {
		t.Error("render missing machine")
	}
}

func TestFigure10SmallScale(t *testing.T) {
	rows, err := Figure10At(testCfg, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sparse.Bottom10Names()) {
		t.Fatalf("%d rows", len(rows))
	}
	wins := 0
	for _, r := range rows {
		if len(r.STFWus) != len(r.Dims) {
			t.Errorf("%s: bars/dims mismatch", r.Matrix)
		}
		best := r.STFWus[0]
		for _, v := range r.STFWus {
			if v < best {
				best = v
			}
		}
		if best < r.BLus {
			wins++
		}
		// Even where BL wins (regular instances at this small test scale
		// are not latency-bound), STFW must stay in the same ballpark.
		if best > 2*r.BLus {
			t.Errorf("%s: best STFW %.0f more than 2x BL %.0f", r.Matrix, best, r.BLus)
		}
	}
	if wins < len(rows)*7/10 {
		t.Errorf("STFW won on only %d of %d matrices", wins, len(rows))
	}
	var buf bytes.Buffer
	RenderFigure10(&buf, rows)
	if !strings.Contains(buf.String(), "BL:") {
		t.Error("render missing BL annotation")
	}
}

func TestSortSummaries(t *testing.T) {
	rows, _ := table2Over(testCfg, []int{64})
	rs := rows[0].Rows
	// Shuffle deterministically then sort.
	rs[0], rs[len(rs)-1] = rs[len(rs)-1], rs[0]
	SortSummaries(rs)
	if rs[0].Scheme != "BL" || rs[1].Scheme != "STFW2" {
		t.Errorf("sorted order wrong: %s %s", rs[0].Scheme, rs[1].Scheme)
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil, 10); s != "" {
		t.Errorf("empty sparkline = %q", s)
	}
	s := sparkline([]int{0, 1, 2, 3, 10}, 5)
	if len(s) != 5 {
		t.Errorf("width = %d", len(s))
	}
	if s[0] != ' ' || s[4] != '@' {
		t.Errorf("sparkline = %q", s)
	}
}
