package experiments

import "stfw/internal/sparse"

func top15() []string    { return sparse.Top15Names() }
func bottom10() []string { return sparse.Bottom10Names() }
