package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"stfw/internal/core"
	"stfw/internal/dynamic"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// The dynamic-sparsity sweep measures the claim the dynamic package exists
// for: when a fraction of an irregular pattern's pairs churn, discovering
// the change with the regularized census and incrementally patching the
// learned schedule (Discover → Patch → PatchCompiled) beats relearning the
// world from scratch (NewPersistent → Compile) — and the advantage grows as
// the mutate rate shrinks. Every patched round is gated through the full
// verifier stack (VerifyWorld, VerifyLearnedWorld, VerifyWorldAgainstPlan),
// so the numbers are for worlds proven equivalent, not merely plausible.

// DynamicRow is one (K, mutate-rate) cell of the sweep, measured on a live
// chanpt world.
type DynamicRow struct {
	K            int     `json:"k"`
	N            int     `json:"n"`
	Rate         float64 `json:"rate"`              // requested mutate rate (fraction of pairs churned per round)
	Pairs        int     `json:"pairs"`             // pattern pairs
	Mutated      int     `json:"mutated"`           // pairs actually churned per round
	RelearnNs    float64 `json:"relearn_ns"`        // whole-world NewPersistent+Compile, one collective
	PatchNs      float64 `json:"patch_ns"`          // whole-world Discover+Patch+PatchCompiled, averaged over rounds
	Speedup      float64 `json:"speedup"`           // RelearnNs / PatchNs
	DirtyStages  float64 `json:"dirty_stages"`      // mean dirty stages per rank per round (from telemetry)
	TotalPatches int64   `json:"patches_telemetry"` // telemetry patch count across the world (sanity: ranks × rounds)
}

// dynamicPattern builds the sweep's irregular pattern: every rank sends
// 32..256-word payloads to ~8 random destinations (the same shape
// BenchmarkPatchVsRelearn measures).
func dynamicPattern(rng *rand.Rand, K int) map[[2]int]int {
	pairs := map[[2]int]int{}
	for src := 0; src < K; src++ {
		for l := 0; l < 8; l++ {
			dst := rng.Intn(K)
			if dst == src {
				continue
			}
			pairs[[2]int{src, dst}] = 8 * (32 + rng.Intn(224))
		}
	}
	return pairs
}

// dynamicToggles picks an evenly spread `rate` fraction of the pattern to
// churn each round (at least one pair).
func dynamicToggles(pairs map[[2]int]int, rate float64) [][2]int {
	sorted := make([][2]int, 0, len(pairs))
	for pr := range pairs {
		sorted = append(sorted, pr)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	n := int(float64(len(sorted)) * rate)
	if n < 1 {
		n = 1
	}
	stride := len(sorted) / n
	var out [][2]int
	for i := 0; i < len(sorted) && len(out) < n; i += stride {
		out = append(out, sorted[i])
	}
	return out
}

func dynamicGather(me, xlen int, pairs map[[2]int]int) map[int][]int32 {
	g := map[int][]int32{}
	for pr, size := range pairs {
		if pr[0] != me {
			continue
		}
		idx := make([]int32, size/8)
		for i := range idx {
			idx[i] = int32((pr[0]*29 + pr[1]*13 + i*7) % xlen)
		}
		g[pr[1]] = idx
	}
	return g
}

// dynamicVerify gates a patched world through the full verifier stack,
// including conservation against an independently built static plan of the
// current pattern.
func dynamicVerify(tp *vpt.Topology, ps []*core.Persistent, pairs map[[2]int]int) error {
	scheds := core.LearnedWorldSchedules(ps)
	if err := core.VerifyWorld(scheds); err != nil {
		return fmt.Errorf("world: %w", err)
	}
	if err := core.VerifyLearnedWorld(ps); err != nil {
		return fmt.Errorf("learned world: %w", err)
	}
	ss := core.NewSendSets(tp.Size())
	for pr, size := range pairs {
		ss.Add(pr[0], pr[1], int64(size/8))
	}
	if err := ss.Normalize(); err != nil {
		return err
	}
	plan, err := core.BuildPlan(tp, ss)
	if err != nil {
		return err
	}
	if err := core.VerifyWorldAgainstPlan(scheds, plan); err != nil {
		return fmt.Errorf("against plan: %w", err)
	}
	return nil
}

// dynamicWorld keeps one goroutine per rank alive across measured
// collectives, so a timed op contains no goroutine startup — only the
// exchange under measurement.
type dynamicWorld struct {
	step []chan func(c runtime.Comm) error
	done []chan error
}

func startDynamicWorld(comms []runtime.Comm) *dynamicWorld {
	K := len(comms)
	dw := &dynamicWorld{
		step: make([]chan func(c runtime.Comm) error, K),
		done: make([]chan error, K),
	}
	for r, c := range comms {
		dw.step[r] = make(chan func(c runtime.Comm) error)
		dw.done[r] = make(chan error)
		go func(c runtime.Comm, step chan func(c runtime.Comm) error, done chan error) {
			for op := range step {
				done <- op(c)
			}
		}(c, dw.step[r], dw.done[r])
	}
	return dw
}

func (dw *dynamicWorld) collective(op func(c runtime.Comm) error) error {
	for _, ch := range dw.step {
		ch <- op
	}
	var first error
	for _, ch := range dw.done {
		if err := <-ch; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (dw *dynamicWorld) stop() {
	for _, ch := range dw.step {
		close(ch)
	}
}

// dynamicCell measures one (K, rate) cell: repeated timed relearn
// collectives, then `rounds` timed patch collectives alternating between
// removing and re-adding the toggle set, each verified before the clock
// moves on.
func dynamicCell(K, n, rounds int, rate float64) (DynamicRow, error) {
	row := DynamicRow{K: K, N: n, Rate: rate}
	tp, err := vpt.NewBalanced(K, n)
	if err != nil {
		return row, err
	}
	w, err := chanpt.NewWorld(K, 2)
	if err != nil {
		return row, err
	}
	comms := w.Comms()
	const xlen = 256
	rng := rand.New(rand.NewSource(int64(K)*17 + int64(rate*1000)))
	pairs := dynamicPattern(rng, K)
	toggles := dynamicToggles(pairs, rate)
	row.Pairs, row.Mutated = len(pairs), len(toggles)

	removed := map[[2]int]int{}
	for pr, size := range pairs {
		removed[pr] = size
	}
	for _, pr := range toggles {
		delete(removed, pr)
	}
	rmDeltas := make([]dynamic.Delta, K)
	addDeltas := make([]dynamic.Delta, K)
	for _, pr := range toggles {
		rmDeltas[pr[0]].Remove = append(rmDeltas[pr[0]].Remove, pr[1])
		addDeltas[pr[0]].Add = append(addDeltas[pr[0]].Add, dynamic.Announce{Dst: pr[1], Size: pairs[pr]})
	}
	// Gather lists are a pure function of the pattern; an application holds
	// them alongside its sparsity structure, so they stay out of the timed
	// region.
	fullGather := make([]map[int][]int32, K)
	rmGather := make([]map[int][]int32, K)
	for me := 0; me < K; me++ {
		fullGather[me] = dynamicGather(me, xlen, pairs)
		rmGather[me] = dynamicGather(me, xlen, removed)
	}

	// Relearn cost: repeat the learn+compile collective and average; single
	// sub-millisecond collectives are dominated by scheduling noise. The
	// first (untimed) repetition doubles as transport and scheduler warmup.
	reg := telemetry.MustNew(telemetry.Config{Ranks: K, Stages: n})
	ps := make([]*core.Persistent, K)
	reps := make([]*core.Replay, K)
	dw := startDynamicWorld(comms)
	defer dw.stop()
	relearn := func(c runtime.Comm) error {
		me := c.Rank()
		payloads := map[int][]byte{}
		for pr, size := range pairs {
			if pr[0] == me {
				payloads[pr[1]] = make([]byte, size)
			}
		}
		p, _, err := core.NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		p.Instrument(reg.Rank(me))
		r, err := p.Compile(xlen, fullGather[me])
		if err != nil {
			return err
		}
		ps[me], reps[me] = p, r
		return nil
	}
	const relearnReps = 5
	for rep := 0; rep <= relearnReps; rep++ {
		start := time.Now()
		if err := dw.collective(relearn); err != nil {
			return row, err
		}
		// The first (untimed) repetition doubles as transport warmup.
		if rep > 0 {
			row.RelearnNs += float64(time.Since(start).Nanoseconds())
		}
	}
	row.RelearnNs /= relearnReps

	var patchNs float64
	for round := 0; round < rounds; round++ {
		deltas, cur, gathers := rmDeltas, removed, rmGather
		if round%2 == 1 {
			deltas, cur, gathers = addDeltas, pairs, fullGather
		}
		start := time.Now()
		err := dw.collective(func(c runtime.Comm) error {
			me := c.Rank()
			pd, err := dynamic.Discover(c, tp, deltas[me])
			if err != nil {
				return err
			}
			st, err := ps[me].Patch(pd)
			if err != nil {
				return err
			}
			return ps[me].PatchCompiled(reps[me], xlen, gathers[me], st)
		})
		patchNs += float64(time.Since(start).Nanoseconds())
		if err != nil {
			return row, fmt.Errorf("round %d: %w", round, err)
		}
		if err := dynamicVerify(tp, ps, cur); err != nil {
			return row, fmt.Errorf("round %d: %w", round, err)
		}
	}
	row.PatchNs = patchNs / float64(rounds)
	row.Speedup = row.RelearnNs / row.PatchNs

	snap := reg.Snapshot()
	var dirty int64
	for _, r := range snap.Ranks {
		row.TotalPatches += r.Patches
		dirty += r.PatchDirtyStages
	}
	if row.TotalPatches != int64(K*rounds) {
		return row, fmt.Errorf("telemetry counted %d patches, want %d", row.TotalPatches, K*rounds)
	}
	row.DirtyStages = float64(dirty) / float64(row.TotalPatches)
	return row, nil
}

// DynamicSweep runs the mutate-rate × K sweep on live chanpt worlds. Every
// cell's patched worlds pass the full verifier stack; a verification
// failure fails the sweep.
func DynamicSweep(cfg Config) ([]DynamicRow, error) {
	cells := []struct {
		K, n int
	}{{16, 2}, {64, 3}}
	rates := []float64{0.01, 0.05, 0.20}
	const rounds = 16
	var rows []DynamicRow
	for _, c := range cells {
		for _, rate := range rates {
			row, err := dynamicCell(c.K, c.n, rounds, rate)
			if err != nil {
				return nil, fmt.Errorf("dynamic sweep K=%d rate=%.2f: %w", c.K, rate, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderDynamicSweep prints the sweep as a table.
func RenderDynamicSweep(w io.Writer, rows []DynamicRow) {
	fmt.Fprintf(w, "Dynamic sparsity: census+patch vs full relearn (chanpt, verified worlds)\n")
	fmt.Fprintf(w, "%6s %6s %7s %8s %9s %12s %12s %9s %12s\n",
		"K", "rate", "pairs", "mutated", "dirty/rk", "relearn", "patch", "speedup", "patches")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %5.0f%% %7d %8d %9.2f %10.0fus %10.0fus %8.1fx %12d\n",
			r.K, r.Rate*100, r.Pairs, r.Mutated, r.DirtyStages,
			r.RelearnNs/1e3, r.PatchNs/1e3, r.Speedup, r.TotalPatches)
	}
}
