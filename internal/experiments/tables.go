package experiments

import (
	"fmt"
	"io"
	"sort"

	"stfw/internal/metrics"
	"stfw/internal/netsim"
	"stfw/internal/sparse"
)

// Table1Row pairs a generated analog's measured statistics with the paper's
// reference values.
type Table1Row struct {
	Name  string
	Kind  string
	Stats sparse.Stats
	// Reference values from the paper's Table 1 (full-size originals).
	RefRows, RefNNZ, RefMax int
	RefCV, RefMaxDR         float64
}

// Table1 generates every catalog analog at the configured scale and reports
// its measured structure statistics next to the paper's.
func Table1(cfg Config) ([]Table1Row, error) {
	names := sparse.CatalogNames()
	rows := make([]Table1Row, 0, len(names))
	for _, name := range names {
		e, err := sparse.Lookup(name)
		if err != nil {
			return nil, err
		}
		m, err := cache.matrix(name, cfg.scale())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, Table1Row{
			Name: name, Kind: e.Kind, Stats: sparse.ComputeStats(m),
			RefRows: e.RefRows, RefNNZ: e.RefNNZ, RefMax: e.RefMax,
			RefCV: e.RefCV, RefMaxDR: e.RefMaxDR,
		})
	}
	return rows, nil
}

// RenderTable1 prints Table 1 with measured analog stats.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: catalog analogs (measured at current scale) vs paper reference\n")
	fmt.Fprintf(w, "%-18s %-22s %9s %10s %7s %6s %7s | %9s %10s %7s %6s %7s\n",
		"matrix", "kind", "rows", "nnz", "max", "cv", "maxdr", "ref rows", "ref nnz", "refmax", "refcv", "refmdr")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-22s %9d %10d %7d %6.2f %7.3f | %9d %10d %7d %6.2f %7.3f\n",
			r.Name, r.Kind, r.Stats.Rows, r.Stats.NNZ, r.Stats.MaxDegree, r.Stats.CV, r.Stats.MaxDR,
			r.RefRows, r.RefNNZ, r.RefMax, r.RefCV, r.RefMaxDR)
	}
}

// Table2Block is the Table 2 slab for one process count: BL plus every
// STFW dimension, geometric means over the top-15 matrices on BlueGene/Q.
type Table2Block struct {
	K    int
	Rows []metrics.Summary // Rows[0] = BL, then STFW2..STFWlgK
}

// Table2Ks are the process counts of Table 2.
var Table2Ks = []int{64, 128, 256, 512}

// Table2 reproduces Table 2: six metrics, four process counts, all schemes,
// geometric averages over the top-15 matrices, BG/Q cost model.
func Table2(cfg Config) ([]Table2Block, error) {
	return table2Over(cfg, Table2Ks)
}

// Table2Slice runs the Table 2 evaluation at a single process count.
func Table2Slice(cfg Config, K int) ([]Table2Block, error) { return table2Over(cfg, []int{K}) }

func table2Over(cfg Config, Ks []int) ([]Table2Block, error) {
	names := sparse.Top15Names()
	out := make([]Table2Block, 0, len(Ks))
	for _, K := range Ks {
		m, err := netsim.BlueGeneQ(K)
		if err != nil {
			return nil, err
		}
		block := Table2Block{K: K}
		for _, n := range append([]int{1}, AllDims(K)...) {
			agg, _, err := EvalSuite(cfg, names, K, m, n)
			if err != nil {
				return nil, err
			}
			block.Rows = append(block.Rows, agg)
		}
		out = append(out, block)
	}
	return out, nil
}

// RenderTable2 prints the Table 2 layout.
func RenderTable2(w io.Writer, blocks []Table2Block) {
	fmt.Fprintf(w, "Table 2: geometric means over top-15 matrices (BlueGene/Q model)\n")
	fmt.Fprintf(w, "%4s %-8s %8s %8s %9s %11s %11s %11s\n",
		"K", "scheme", "mmax", "mavg", "vavg", "comm(us)", "spmv(us)", "buffer(KB)")
	for _, b := range blocks {
		for _, r := range b.Rows {
			fmt.Fprintf(w, "%4d %-8s %8.1f %8.1f %9.0f %11.0f %11.0f %11.1f\n",
				b.K, r.Scheme, r.MMax, r.MAvg, r.VAvg,
				netsim.Microseconds(r.CommTime), netsim.Microseconds(r.SpMVTime),
				r.BufferBytes/1024)
		}
		fmt.Fprintln(w)
	}
}

// Table3Block is one machine/K slab of Table 3.
type Table3Block struct {
	Machine string // display name
	K       int
	Rows    []metrics.Summary
}

// Table3Spec names the three large-scale configurations of Section 6.5.
type Table3Spec struct {
	Machine string // "xk7" or "xc40"
	K       int
}

// Table3Specs are the paper's configurations: Cray XK7 at 8K and 16K
// processes, Cray XC40 at 4K.
var Table3Specs = []Table3Spec{
	{Machine: "xk7", K: 8192},
	{Machine: "xk7", K: 16384},
	{Machine: "xc40", K: 4096},
}

// Table3 reproduces the large-scale communication analysis: BL plus the
// seven selected VPT dimensions, geometric means over the bottom-10
// matrices (>10M nonzeros).
func Table3(cfg Config) ([]Table3Block, error) {
	return Table3Over(cfg, Table3Specs)
}

// Table3Over runs the Table 3 evaluation for custom specs (tests use
// smaller K).
func Table3Over(cfg Config, specs []Table3Spec) ([]Table3Block, error) {
	names := sparse.Bottom10Names()
	out := make([]Table3Block, 0, len(specs))
	for _, spec := range specs {
		m, err := MachineFor(spec.Machine, spec.K)
		if err != nil {
			return nil, err
		}
		block := Table3Block{Machine: m.Name, K: spec.K}
		for _, n := range append([]int{1}, LargeScaleDims(spec.K)...) {
			agg, _, err := EvalSuite(cfg, names, spec.K, m, n)
			if err != nil {
				return nil, err
			}
			block.Rows = append(block.Rows, agg)
		}
		out = append(out, block)
	}
	return out, nil
}

// RenderTable3 prints the Table 3 layout.
func RenderTable3(w io.Writer, blocks []Table3Block) {
	fmt.Fprintf(w, "Table 3: large-scale communication, geometric means over bottom-10 matrices\n")
	for _, b := range blocks {
		fmt.Fprintf(w, "\n%s, %d processes\n", b.Machine, b.K)
		fmt.Fprintf(w, "%-8s %8s %8s %9s %11s\n", "scheme", "mmax", "mavg", "vavg", "comm(us)")
		for _, r := range b.Rows {
			fmt.Fprintf(w, "%-8s %8.1f %8.1f %9.0f %11.0f\n",
				r.Scheme, r.MMax, r.MAvg, r.VAvg, netsim.Microseconds(r.CommTime))
		}
	}
}

// BestScheme returns the row with the lowest comm time in a slab, used for
// EXPERIMENTS.md shape checks.
func BestScheme(rows []metrics.Summary) metrics.Summary {
	best := rows[0]
	for _, r := range rows[1:] {
		if r.CommTime < best.CommTime {
			best = r
		}
	}
	return best
}

// SortSummaries orders rows BL-first then by ascending dimension, assuming
// scheme names produced by SchemeName.
func SortSummaries(rows []metrics.Summary) {
	order := func(s string) int {
		if s == "BL" {
			return 0
		}
		var n int
		fmt.Sscanf(s, "STFW%d", &n)
		return n
	}
	sort.SliceStable(rows, func(i, j int) bool { return order(rows[i].Scheme) < order(rows[j].Scheme) })
}
