package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestPartitionerAblation(t *testing.T) {
	rows, err := PartitionerAblation(testCfg, "GaAsH6", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 partitioners x {BL, STFWn}
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]PartitionerRow{}
	for _, r := range rows {
		byKey[r.Partitioner+"/"+r.Scheme] = r
	}
	// The greedy partitioner must beat random on volume under BL (that is
	// its whole point).
	if byKey["greedy/BL"].Summary.VAvg >= byKey["random/BL"].Summary.VAvg {
		t.Errorf("greedy BL vavg %.0f not below random %.0f",
			byKey["greedy/BL"].Summary.VAvg, byKey["random/BL"].Summary.VAvg)
	}
	// STFW must reduce mmax under every partitioner: the two compose.
	for _, p := range []string{"block", "random", "rcm", "greedy"} {
		bl := byKey[p+"/BL"].Summary
		st := byKey[p+"/STFW4"].Summary
		if st.MMax >= bl.MMax {
			t.Errorf("%s: STFW mmax %.1f not below BL %.1f", p, st.MMax, bl.MMax)
		}
	}
	var buf bytes.Buffer
	RenderPartitionerAblation(&buf, "GaAsH6", 64, rows)
	if !strings.Contains(buf.String(), "greedy") {
		t.Error("render missing partitioner")
	}
}

func TestSkewAblation(t *testing.T) {
	rows, err := SkewAblation(testCfg, "gupta2", 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Monotone trade-off: bound rises with skew, volume falls.
	for i := 1; i < len(rows); i++ {
		if rows[i].Bound < rows[i-1].Bound {
			t.Errorf("bound not monotone at skew %.2f", rows[i].Skew)
		}
		if rows[i].Summary.VAvg > rows[i-1].Summary.VAvg*1.001 {
			t.Errorf("volume rose with skew %.2f: %.0f > %.0f",
				rows[i].Skew, rows[i].Summary.VAvg, rows[i-1].Summary.VAvg)
		}
	}
	if rows[0].Bound >= rows[len(rows)-1].Bound {
		t.Error("skew had no effect on the bound")
	}
	if rows[0].Summary.VAvg <= rows[len(rows)-1].Summary.VAvg {
		t.Error("skew had no effect on volume")
	}
	var buf bytes.Buffer
	RenderSkewAblation(&buf, "gupta2", 256, 4, rows)
	if !strings.Contains(buf.String(), "topology") {
		t.Error("render header missing")
	}
}

func TestMappingAblation(t *testing.T) {
	rows, err := MappingAblation(testCfg, "coAuthorsDBLP", 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]MappingRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	id := byName["identity"]
	// The VPT mapping must not increase forwarded volume; the physical
	// mapping must not increase comm time.
	if byName["vpt-map"].VolWords > id.VolWords {
		t.Errorf("vpt mapping raised volume: %d vs %d", byName["vpt-map"].VolWords, id.VolWords)
	}
	if byName["phys-map"].CommUS > id.CommUS*1.0001 {
		t.Errorf("physical mapping raised comm time: %.1f vs %.1f", byName["phys-map"].CommUS, id.CommUS)
	}
	if byName["phys-map"].VolWords != id.VolWords {
		t.Error("physical mapping must not change the schedule volume")
	}
	var buf bytes.Buffer
	RenderMappingAblation(&buf, "coAuthorsDBLP", 64, 3, rows)
	if !strings.Contains(buf.String(), "identity") {
		t.Error("render missing strategy")
	}
}
