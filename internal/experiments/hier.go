package experiments

import (
	"fmt"
	"io"

	"stfw/internal/mapping"
	"stfw/internal/netsim"
	"stfw/internal/vpt"
)

// The hierarchical-transport experiment: the dimension-assignment planner
// (mapping.PlanDims) run over a real instance, reported as a table lining
// the default balanced assignment up against the planned one. The modeled
// columns are the planner's objective (netsim.CommTime of the exact plan on
// the placed machine) and the node-crossing word volume the split
// concentrates into the outer dimensions; cmd/stfwbench pairs the table
// with a measured replay over the real composite transport.

// HierAssignment is one row of the dimension-assignment table.
type HierAssignment struct {
	Label      string
	Dims       []int
	Split      int
	CrossWords int64
	CostSec    float64
}

// HierPlanTable prepares the (matrix, K) instance, prices the default
// assignment (balanced 2-dimensional VPT, linear packing), runs the planner,
// and returns both rows. The planner's never-worse property guarantees the
// second row's cost is bounded by the first.
func HierPlanTable(cfg Config, name string, K int, machine string) ([]HierAssignment, error) {
	inst, err := Prepare(cfg, name, K)
	if err != nil {
		return nil, err
	}
	m, err := MachineFor(machine, K)
	if err != nil {
		return nil, err
	}
	base, err := vpt.NewBalanced(K, 2)
	if err != nil {
		return nil, err
	}
	baseline, err := mapping.AssessDims(m, inst.Sends, base, nil)
	if err != nil {
		return nil, err
	}
	plan, err := mapping.PlanDims(m, inst.Sends, base, mapping.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return []HierAssignment{
		{Label: "base", Dims: baseline.Dims, Split: baseline.Split, CrossWords: baseline.CrossWords, CostSec: baseline.Cost},
		{Label: "planned", Dims: plan.Dims, Split: plan.Split, CrossWords: plan.CrossWords, CostSec: plan.Cost},
	}, nil
}

// RenderHierPlanTable writes the assignment table with a closing modeled-
// speedup line.
func RenderHierPlanTable(w io.Writer, name string, K int, machine string, rows []HierAssignment) {
	fmt.Fprintf(w, "hierarchical dimension assignment: %s, K=%d, machine %s\n", name, K, machine)
	fmt.Fprintf(w, "%-8s %-12s %5s %12s %10s\n", "plan", "dims", "split", "cross_words", "cost_us")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-12s %5d %12d %10.1f\n",
			r.Label, fmt.Sprint(r.Dims), r.Split, r.CrossWords, netsim.Microseconds(r.CostSec))
	}
	if len(rows) == 2 && rows[1].CostSec > 0 {
		fmt.Fprintf(w, "modeled speedup (planned over base): %.2fx\n", rows[0].CostSec/rows[1].CostSec)
	}
}
