package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestStencilSendSets(t *testing.T) {
	s, err := StencilSendSets(4, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.K != 16 {
		t.Fatalf("K = %d", s.K)
	}
	// Every rank sends to exactly 4 distinct neighbors.
	for i, set := range s.Sets {
		if len(set) != 4 {
			t.Errorf("rank %d has %d neighbors", i, len(set))
		}
	}
	if s.TotalWords() != 16*4*10 {
		t.Errorf("total words %d", s.TotalWords())
	}
	// 2x2 wrap-around: left and right neighbor coincide, so degree < 4.
	s2, err := StencilSendSets(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, set := range s2.Sets {
		if len(set) != 2 {
			t.Errorf("2x2 rank %d has %d neighbors", i, len(set))
		}
	}
	if _, err := StencilSendSets(1, 4, 1); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestStencilControlSTFWDoesNotHelp(t *testing.T) {
	rows, err := StencilControl(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	bl := rows[0]
	if bl.Scheme != "BL" {
		t.Fatalf("first row %s", bl.Scheme)
	}
	// The baseline is already regular: mmax = 4.
	if bl.Summary.MMax != 4 {
		t.Errorf("BL mmax = %.0f, want 4", bl.Summary.MMax)
	}
	// No STFW dimension should beat BL on this pattern (the negative
	// control): regular patterns gain nothing from regularization.
	for _, r := range rows[1:] {
		if r.Summary.CommTime < bl.Summary.CommTime {
			t.Errorf("%s unexpectedly beat BL on a regular stencil (%.1f vs %.1f us)",
				r.Scheme, r.Summary.CommTime*1e6, bl.Summary.CommTime*1e6)
		}
		if r.Summary.VAvg < bl.Summary.VAvg {
			t.Errorf("%s reduced volume on a stencil, impossible", r.Scheme)
		}
	}
	var buf bytes.Buffer
	RenderStencilControl(&buf, 64, rows)
	if !strings.Contains(buf.String(), "should NOT help") {
		t.Error("render missing control banner")
	}
}

func TestStencilControlValidation(t *testing.T) {
	if _, err := StencilControl(48, 8); err == nil {
		t.Error("non-square K accepted")
	}
}
