package experiments

import (
	"fmt"
	"io"

	"stfw/internal/core"
	"stfw/internal/metrics"
	"stfw/internal/netsim"
)

// Figure1Series is the per-process send count profile of one matrix under
// the direct scheme, the data behind Figure 1.
type Figure1Series struct {
	Matrix string
	K      int
	Counts []int
	Max    int
	Avg    float64
}

// Figure1Matrices are the three instances plotted in Figure 1.
var Figure1Matrices = []string{"pattern1", "pkustk04", "sparsine"}

// Figure1 computes the per-process message counts of the three Figure-1
// matrices at K=256 under the baseline.
func Figure1(cfg Config) ([]Figure1Series, error) {
	return Figure1At(cfg, 256)
}

// Figure1At is Figure1 at a custom process count.
func Figure1At(cfg Config, K int) ([]Figure1Series, error) {
	out := make([]Figure1Series, 0, len(Figure1Matrices))
	for _, name := range Figure1Matrices {
		inst, err := Prepare(cfg, name, K)
		if err != nil {
			return nil, err
		}
		plan, err := core.BuildDirectPlan(inst.Sends)
		if err != nil {
			return nil, err
		}
		counts, max, avg := metrics.Histogram(plan)
		out = append(out, Figure1Series{Matrix: name, K: K, Counts: counts, Max: max, Avg: avg})
	}
	return out, nil
}

// RenderFigure1 prints each series as a compact histogram summary plus an
// ASCII sparkline of the per-process counts.
func RenderFigure1(w io.Writer, series []Figure1Series) {
	fmt.Fprintf(w, "Figure 1: per-process send counts under BL\n")
	for _, s := range series {
		fmt.Fprintf(w, "\n%s (K=%d): max=%d avg=%.1f\n", s.Matrix, s.K, s.Max, s.Avg)
		fmt.Fprintf(w, "%s\n", sparkline(s.Counts, 128))
	}
}

// sparkline renders counts as a fixed-width ASCII profile.
func sparkline(counts []int, width int) string {
	if len(counts) == 0 {
		return ""
	}
	if width > len(counts) {
		width = len(counts)
	}
	levels := []byte(" .:-=+*#%@")
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	out := make([]byte, width)
	per := float64(len(counts)) / float64(width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		peak := 0
		for _, c := range counts[lo:hi] {
			if c > peak {
				peak = c
			}
		}
		idx := peak * (len(levels) - 1) / max
		out[i] = levels[idx]
	}
	return string(out)
}

// Figure6Row is one normalized bar group of Figure 6: every STFW metric
// divided by the BL value at K=256.
type Figure6Row struct {
	Dim                                  int
	CommTime, SpMVTime, VAvg, MMax, MAvg float64 // normalized to BL
}

// Figure6 normalizes the Table-2 metrics at K=256 to BL.
func Figure6(cfg Config) ([]Figure6Row, error) {
	return Figure6At(cfg, 256)
}

// Figure6At is Figure6 at a custom process count.
func Figure6At(cfg Config, K int) ([]Figure6Row, error) {
	blocks, err := table2Over(cfg, []int{K})
	if err != nil {
		return nil, err
	}
	rows := blocks[0].Rows
	bl := rows[0]
	out := make([]Figure6Row, 0, len(rows)-1)
	for i, r := range rows[1:] {
		out = append(out, Figure6Row{
			Dim:      i + 2,
			CommTime: r.CommTime / bl.CommTime,
			SpMVTime: r.SpMVTime / bl.SpMVTime,
			VAvg:     r.VAvg / bl.VAvg,
			MMax:     r.MMax / bl.MMax,
			MAvg:     r.MAvg / bl.MAvg,
		})
	}
	return out, nil
}

// RenderFigure6 prints the normalized metric table.
func RenderFigure6(w io.Writer, rows []Figure6Row) {
	fmt.Fprintf(w, "Figure 6: STFW metrics normalized to BL (y<1 means STFW is 1/y better)\n")
	fmt.Fprintf(w, "%-5s %9s %9s %9s %9s %9s\n", "dim", "comm", "spmv", "vavg", "mmax", "mavg")
	for _, r := range rows {
		fmt.Fprintf(w, "T%-4d %9.3f %9.3f %9.3f %9.3f %9.3f\n",
			r.Dim, r.CommTime, r.SpMVTime, r.VAvg, r.MMax, r.MAvg)
	}
}

// Figure7Panel is the per-matrix detail of Figure 7: all schemes on one
// matrix at K=256.
type Figure7Panel struct {
	Matrix string
	Rows   []metrics.Summary
}

// Figure7Matrices are the two contrasted instances.
var Figure7Matrices = []string{"GaAsH6", "coAuthorsDBLP"}

// Figure7 compares GaAsH6 (volume-heavier) and coAuthorsDBLP (more
// latency-bound) across all schemes at K=256 on BG/Q.
func Figure7(cfg Config) ([]Figure7Panel, error) {
	return Figure7At(cfg, 256)
}

// Figure7At is Figure7 at a custom process count.
func Figure7At(cfg Config, K int) ([]Figure7Panel, error) {
	m, err := netsim.BlueGeneQ(K)
	if err != nil {
		return nil, err
	}
	out := make([]Figure7Panel, 0, len(Figure7Matrices))
	for _, name := range Figure7Matrices {
		inst, err := Prepare(cfg, name, K)
		if err != nil {
			return nil, err
		}
		panel := Figure7Panel{Matrix: name}
		for _, n := range append([]int{1}, AllDims(K)...) {
			sum, err := EvalScheme(inst, m, n)
			if err != nil {
				return nil, err
			}
			panel.Rows = append(panel.Rows, sum)
		}
		out = append(out, panel)
	}
	return out, nil
}

// RenderFigure7 prints the four panels' data (volume, message counts, SpMV
// time) per matrix.
func RenderFigure7(w io.Writer, panels []Figure7Panel) {
	fmt.Fprintf(w, "Figure 7: detailed comparison at K=256 (BlueGene/Q model)\n")
	for _, p := range panels {
		fmt.Fprintf(w, "\n%s\n%-8s %9s %8s %8s %11s\n", p.Matrix, "scheme", "vavg", "mavg", "mmax", "spmv(us)")
		for _, r := range p.Rows {
			fmt.Fprintf(w, "%-8s %9.0f %8.1f %8.1f %11.0f\n",
				r.Scheme, r.VAvg, r.MAvg, r.MMax, netsim.Microseconds(r.SpMVTime))
		}
	}
}

// Figure8Series is one line of one Figure-8 subplot: SpMV time vs K for one
// scheme on one matrix.
type Figure8Series struct {
	Matrix string
	Scheme string
	Ks     []int
	SpMVus []float64 // microseconds, parallel SpMV time
}

// Figure8Matrices are the 12 instances plotted in Figure 8.
var Figure8Matrices = []string{
	"coAuthorsDBLP", "coPapersCiteseer", "fe_rotor", "GaAsH6",
	"gupta2", "human_gene2", "nd3k", "net125",
	"pattern1", "pkustk04", "sparsine", "TSOPF_FS_b300_c2",
}

// Figure8Ks are the strong-scaling process counts.
var Figure8Ks = []int{32, 64, 128, 256, 512}

// Figure8 produces the scalability lines: BL and the even STFW dimensions
// for each matrix across the five process counts on BG/Q.
func Figure8(cfg Config) ([]Figure8Series, error) {
	return Figure8Over(cfg, Figure8Matrices, Figure8Ks)
}

// Figure8Over runs Figure 8 on custom matrices/process counts.
func Figure8Over(cfg Config, names []string, Ks []int) ([]Figure8Series, error) {
	var out []Figure8Series
	for _, name := range names {
		// BL plus even dims; a scheme is present only at the K values that
		// admit it (STFW6 needs K >= 64, STFW8 needs K >= 256).
		series := map[int]*Figure8Series{}
		for _, K := range Ks {
			m, err := netsim.BlueGeneQ(K)
			if err != nil {
				return nil, err
			}
			inst, err := Prepare(cfg, name, K)
			if err != nil {
				return nil, err
			}
			for _, n := range append([]int{1}, EvenDims(K)...) {
				sum, err := EvalScheme(inst, m, n)
				if err != nil {
					return nil, err
				}
				sr := series[n]
				if sr == nil {
					sr = &Figure8Series{Matrix: name, Scheme: SchemeName(n)}
					series[n] = sr
				}
				sr.Ks = append(sr.Ks, K)
				sr.SpMVus = append(sr.SpMVus, netsim.Microseconds(sum.SpMVTime))
			}
		}
		for _, n := range []int{1, 2, 4, 6, 8} {
			if sr := series[n]; sr != nil {
				out = append(out, *sr)
			}
		}
	}
	return out, nil
}

// RenderFigure8 prints each matrix's runtime-vs-K lines.
func RenderFigure8(w io.Writer, series []Figure8Series) {
	fmt.Fprintf(w, "Figure 8: parallel SpMV runtime (us) vs K (BlueGene/Q model)\n")
	last := ""
	for _, s := range series {
		if s.Matrix != last {
			fmt.Fprintf(w, "\n%s\n", s.Matrix)
			last = s.Matrix
		}
		fmt.Fprintf(w, "  %-7s", s.Scheme)
		for i, K := range s.Ks {
			fmt.Fprintf(w, "  K=%d:%8.0f", K, s.SpMVus[i])
		}
		fmt.Fprintln(w)
	}
}

// Figure9Bar is one bar of Figure 9: the comm time of a scheme at K on a
// machine.
type Figure9Bar struct {
	Machine string
	K       int
	Scheme  string
	CommUS  float64
}

// Figure9Ks are the process counts compared across networks.
var Figure9Ks = []int{128, 512}

// Figure9 compares BL and every STFW dimension on the BG/Q torus and the
// XC40 dragonfly at 128 and 512 processes (geomean over top-15 matrices).
func Figure9(cfg Config) ([]Figure9Bar, error) {
	return Figure9Over(cfg, Figure9Ks)
}

// Figure9Over runs Figure 9 for custom process counts.
func Figure9Over(cfg Config, Ks []int) ([]Figure9Bar, error) {
	names := sparseTop15()
	var out []Figure9Bar
	for _, K := range Ks {
		for _, mach := range []string{"bgq", "xc40"} {
			m, err := MachineFor(mach, K)
			if err != nil {
				return nil, err
			}
			for _, n := range append([]int{1}, AllDims(K)...) {
				agg, _, err := EvalSuite(cfg, names, K, m, n)
				if err != nil {
					return nil, err
				}
				out = append(out, Figure9Bar{
					Machine: m.Name, K: K, Scheme: SchemeName(n),
					CommUS: netsim.Microseconds(agg.CommTime),
				})
			}
		}
	}
	return out, nil
}

// RenderFigure9 prints the grouped bars.
func RenderFigure9(w io.Writer, bars []Figure9Bar) {
	fmt.Fprintf(w, "Figure 9: communication time (us) on Torus vs Dragonfly\n")
	lastKey := ""
	for _, b := range bars {
		key := fmt.Sprintf("%d processes, %s", b.K, b.Machine)
		if key != lastKey {
			fmt.Fprintf(w, "\n%s\n", key)
			lastKey = key
		}
		fmt.Fprintf(w, "  %-8s %10.0f\n", b.Scheme, b.CommUS)
	}
}

// Figure10Row is one matrix's comm-time bars at 16K processes on the XK7.
type Figure10Row struct {
	Matrix string
	BLus   float64
	Dims   []int
	STFWus []float64
}

// Figure10 reports per-matrix communication times of all Section 6.5
// schemes at the largest scale (16K processes, Cray XK7).
func Figure10(cfg Config) ([]Figure10Row, error) {
	return Figure10At(cfg, 16384)
}

// Figure10At is Figure10 at a custom process count.
func Figure10At(cfg Config, K int) ([]Figure10Row, error) {
	m, err := MachineFor("xk7", K)
	if err != nil {
		return nil, err
	}
	names := sparseBottom10()
	dims := LargeScaleDims(K)
	out := make([]Figure10Row, 0, len(names))
	for _, name := range names {
		inst, err := Prepare(cfg, name, K)
		if err != nil {
			return nil, err
		}
		row := Figure10Row{Matrix: name, Dims: dims}
		bl, err := EvalScheme(inst, m, 1)
		if err != nil {
			return nil, err
		}
		row.BLus = netsim.Microseconds(bl.CommTime)
		for _, n := range dims {
			sum, err := EvalScheme(inst, m, n)
			if err != nil {
				return nil, err
			}
			row.STFWus = append(row.STFWus, netsim.Microseconds(sum.CommTime))
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFigure10 prints the per-matrix bars with BL as reference text, the
// way the figure annotates it.
func RenderFigure10(w io.Writer, rows []Figure10Row) {
	fmt.Fprintf(w, "Figure 10: communication times per matrix (Cray XK7 model)\n")
	for _, r := range rows {
		fmt.Fprintf(w, "\n%-18s BL: %.0f us\n", r.Matrix, r.BLus)
		for i, n := range r.Dims {
			fmt.Fprintf(w, "  %-8s %10.0f\n", SchemeName(n), r.STFWus[i])
		}
	}
}

// sparseTop15 and sparseBottom10 are tiny indirections to avoid an import
// cycle in future refactors and keep figure code free of sparse imports.
func sparseTop15() []string    { return top15() }
func sparseBottom10() []string { return bottom10() }
