// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): Table 1 (matrix properties), Figure 1 (per-process
// message counts), Table 2 and Figures 6-8 (metrics, normalized metrics,
// per-matrix detail, scalability on BlueGene/Q), Figure 9 (networks), and
// Table 3 / Figure 10 (large-scale analysis on Cray XK7 and XC40). Each
// experiment returns structured results and has a text renderer used by
// cmd/stfwbench and the root benchmark harness.
package experiments

import (
	"fmt"
	"math/bits"
	"sync"

	"stfw/internal/core"
	"stfw/internal/netsim"
	"stfw/internal/partition"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
)

// Config controls experiment fidelity.
type Config struct {
	// Scale shrinks every catalog matrix by this factor (see
	// sparse.ScaleParams); 1 reproduces full-size structures. The default
	// used by tests and benches is 8, which preserves the paper's regimes
	// while keeping single-machine runs fast.
	Scale int
}

// DefaultConfig is the fidelity used by the benchmark harness.
func DefaultConfig() Config { return Config{Scale: 8} }

func (c Config) scale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

// Instance is one prepared (matrix, K) problem: the partition-induced SpMV
// communication requirement plus the per-rank work.
type Instance struct {
	Matrix string
	K      int
	Sends  *core.SendSets
	NNZ    []int64
	Stats  sparse.Stats
}

// instanceCache avoids regenerating matrices and patterns across
// experiments; keyed by matrix/scale and matrix/scale/K.
type instanceCache struct {
	mu       sync.Mutex
	matrices map[string]*sparse.CSR
	inst     map[string]*Instance
}

var cache = &instanceCache{
	matrices: map[string]*sparse.CSR{},
	inst:     map[string]*Instance{},
}

// matrix returns the (possibly cached) scaled catalog matrix.
func (c *instanceCache) matrix(name string, scale int) (*sparse.CSR, error) {
	key := fmt.Sprintf("%s/%d", name, scale)
	c.mu.Lock()
	m := c.matrices[key]
	c.mu.Unlock()
	if m != nil {
		return m, nil
	}
	m, err := sparse.CatalogMatrix(name, scale)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.matrices[key] = m
	c.mu.Unlock()
	return m, nil
}

// Prepare builds (or fetches) the instance for one catalog matrix at K
// processes: generate the scaled analog, partition its rows with the greedy
// partitioner (the PaToH stand-in), and derive the SpMV send sets.
func Prepare(cfg Config, name string, K int) (*Instance, error) {
	key := fmt.Sprintf("%s/%d/%d", name, cfg.scale(), K)
	cache.mu.Lock()
	if inst := cache.inst[key]; inst != nil {
		cache.mu.Unlock()
		return inst, nil
	}
	cache.mu.Unlock()

	m, err := cache.matrix(name, cfg.scale())
	if err != nil {
		return nil, err
	}
	part, err := partition.Greedy(m, K, partition.DefaultGreedy())
	if err != nil {
		return nil, err
	}
	pat, err := spmv.BuildPattern(m, part)
	if err != nil {
		return nil, err
	}
	sends, err := pat.SendSets()
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		Matrix: name,
		K:      K,
		Sends:  sends,
		NNZ:    pat.NNZ,
		Stats:  sparse.ComputeStats(m),
	}
	cache.mu.Lock()
	cache.inst[key] = inst
	cache.mu.Unlock()
	return inst, nil
}

// ResetCache clears the instance cache (tests that measure generation cost
// use it; experiments share the cache otherwise).
func ResetCache() {
	cache.mu.Lock()
	cache.matrices = map[string]*sparse.CSR{}
	cache.inst = map[string]*Instance{}
	cache.mu.Unlock()
}

// MachineFor returns the machine profile by name ("bgq", "xk7", "xc40")
// sized for K ranks.
func MachineFor(name string, K int) (*netsim.Machine, error) {
	switch name {
	case "bgq":
		return netsim.BlueGeneQ(K)
	case "xk7":
		return netsim.CrayXK7(K)
	case "xc40":
		return netsim.CrayXC40(K)
	default:
		return nil, fmt.Errorf("experiments: unknown machine %q", name)
	}
}

// AllDims returns every VPT dimension the paper sweeps for K: 2..lg2(K).
func AllDims(K int) []int {
	lg := bits.Len(uint(K)) - 1
	dims := make([]int, 0, lg-1)
	for n := 2; n <= lg; n++ {
		dims = append(dims, n)
	}
	return dims
}

// EvenDims returns the even dimensions Figure 8 plots: {2,4,6,8} up to
// lg2(K).
func EvenDims(K int) []int {
	lg := bits.Len(uint(K)) - 1
	var dims []int
	for n := 2; n <= lg && n <= 8; n += 2 {
		dims = append(dims, n)
	}
	return dims
}

// LargeScaleDims returns the Section 6.5 selection for K: the lowest three
// dimensions (2,3,4), the middle two (floor(lgK/2)+1, floor(lgK/2)+2), and
// the highest two (lgK-1, lgK).
func LargeScaleDims(K int) []int {
	lg := bits.Len(uint(K)) - 1
	mid := lg / 2
	set := []int{2, 3, 4, mid + 1, mid + 2, lg - 1, lg}
	// Deduplicate while preserving order (small K could collide).
	seen := map[int]bool{}
	var out []int
	for _, n := range set {
		if n >= 2 && n <= lg && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
