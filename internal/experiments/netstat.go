package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"

	"stfw/internal/core"
	"stfw/internal/netsim"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/vpt"
)

// The netstat experiment: run a real learned-replay exchange over a wire
// transport with the full telemetry layer attached (per-stage spans,
// per-link wire counters), then confront the netsim cost model with what
// was measured. It is the observability counterpart of the model sweeps:
// instead of predicting a machine we never ran on, it calibrates the model
// against the machine we did run on (loopback) and reports, stage by
// stage, how far prediction and measurement diverge. The same code path
// serves the single-process run and the -procs multi-process fleet: each
// process runs NetstatRun over its rank slice, snapshots its registry, and
// the collector merges the snapshots before BuildNetstatReport.

// NetstatConfig fixes the world the netstat experiment measures. The
// default shape matches the udp multi-process loopback mode: K=64 over
// dims [8,8] (the wide-radix shape that stresses per-stage fan-out), every
// rank shipping 256-byte frames to 8 pseudo-random destinations.
type NetstatConfig struct {
	K     int // world size
	Dim   int // VPT dimension count (NewBalanced)
	Iters int // steady-state replay iterations
	Dests int // destinations per rank
	Bytes int // payload bytes per destination
}

// DefaultNetstat returns the standard netstat world.
func DefaultNetstat() NetstatConfig {
	return NetstatConfig{K: 64, Dim: 2, Iters: 200, Dests: 8, Bytes: 256}
}

// NetstatPayloads is the deterministic per-rank payload pattern: every
// process (and the model side) derives it independently from the same
// seed, so no cross-process coordination is needed and the plan built by
// NetstatPlan prices exactly the frames the runtime executes.
func NetstatPayloads(cfg NetstatConfig, rank int) map[int][]byte {
	rng := rand.New(rand.NewSource(int64(cfg.K)*11 + int64(rank)))
	m := map[int][]byte{}
	for len(m) < cfg.Dests {
		dst := rng.Intn(cfg.K)
		if dst == rank {
			continue
		}
		m[dst] = bytes.Repeat([]byte{byte(rank)}, cfg.Bytes)
	}
	return m
}

// NetstatTopology builds the experiment's VPT.
func NetstatTopology(cfg NetstatConfig) (*vpt.Topology, error) {
	return vpt.NewBalanced(cfg.K, cfg.Dim)
}

// NetstatPlan routes the payload pattern through the topology: the exact
// schedule the runtime will execute, priced by the model side of the
// divergence table. Payload sizes round up to 8-byte words, matching how
// the wire frames carry them.
func NetstatPlan(cfg NetstatConfig) (*core.Plan, error) {
	tp, err := NetstatTopology(cfg)
	if err != nil {
		return nil, err
	}
	sets := core.NewSendSets(cfg.K)
	for rank := 0; rank < cfg.K; rank++ {
		for dst, payload := range NetstatPayloads(cfg, rank) {
			sets.Add(rank, dst, int64((len(payload)+7)/8))
		}
	}
	if err := sets.Normalize(); err != nil {
		return nil, err
	}
	return core.BuildPlan(tp, sets)
}

// NetstatRun executes the experiment over the given comms (the full world
// in one process, or one process's rank slice in -procs mode): a learning
// exchange, then cfg.Iters instrumented steady-state replays. The registry
// collects per-stage spans (via Persistent.Instrument), per-stage frame
// counters (via WrapComms), and per-link wire stats (via the transport's
// LinkStatsSource seam); the caller snapshots it afterwards.
func NetstatRun(cfg NetstatConfig, reg *telemetry.Registry, comms []runtime.Comm) error {
	tp, err := NetstatTopology(cfg)
	if err != nil {
		return err
	}
	stages := tp.N()
	wrapped := reg.WrapComms(comms, func(tag int) (int, bool) {
		return core.TagStage(tag, stages)
	})
	return runtime.Run(wrapped, func(c runtime.Comm) error {
		payloads := NetstatPayloads(cfg, c.Rank())
		p, _, err := core.NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		// Spans cover only the steady-state replays: the learning run's
		// ordered discipline has different timing and would skew the
		// per-stage measurement the model is compared against.
		p.Instrument(reg.Rank(c.Rank()))
		for i := 0; i < cfg.Iters; i++ {
			if _, err := p.Run(c, payloads); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
}

// NetstatReport is the assembled measured-vs-model view of one (possibly
// merged) netstat run.
type NetstatReport struct {
	Cfg        NetstatConfig              `json:"cfg"`
	Stragglers []telemetry.StageStraggler `json:"stragglers"`
	AlphaSec   float64                    `json:"alpha_sec"` // half the sample-weighted mean smoothed RTT
	RTTSamples int64                      `json:"rtt_samples"`
	Machine    *netsim.Machine            `json:"-"`
	Divergence []netsim.StageDivergence   `json:"divergence"`
	Snapshot   telemetry.Snapshot         `json:"-"`
}

// fleetAlpha extracts the measured one-way startup latency from a
// snapshot's link stats: the RTT-sample-weighted mean smoothed ack
// round-trip across every link in the world, halved. Zero (with zero
// samples) when the transport does not measure RTTs.
func fleetAlpha(s *telemetry.Snapshot) (alphaSec float64, samples int64) {
	var weighted float64
	for _, r := range s.Ranks {
		for _, l := range r.Links {
			if l.RTTSamples > 0 {
				weighted += float64(l.SRTTNs) * float64(l.RTTSamples)
				samples += l.RTTSamples
			}
		}
	}
	if samples == 0 {
		return 0, 0
	}
	return weighted / float64(samples) / 2 / 1e9, samples
}

// BuildNetstatReport turns a snapshot of a NetstatRun (merged across
// processes first, in fleet mode) into the divergence report: per-stage
// straggler table, wire-calibrated machine, and the measured-vs-model
// table. The measured per-stage time is the straggler maximum (the
// busiest rank's summed stage-span time) divided by the iteration count —
// the same "stage lasts as long as its busiest process" convention
// netsim.CommTime prices.
func BuildNetstatReport(cfg NetstatConfig, snap telemetry.Snapshot) (*NetstatReport, error) {
	plan, err := NetstatPlan(cfg)
	if err != nil {
		return nil, err
	}
	rep := &NetstatReport{Cfg: cfg, Snapshot: snap, Stragglers: snap.StageStragglers()}
	measured := make([]float64, len(plan.Stages))
	seen := make([]bool, len(plan.Stages))
	for _, sg := range rep.Stragglers {
		if sg.Stage < 0 || sg.Stage >= len(measured) {
			return nil, fmt.Errorf("netstat: straggler table has stage %d outside the %d-stage plan",
				sg.Stage, len(measured))
		}
		measured[sg.Stage] = float64(sg.MaxNs) / float64(cfg.Iters) / 1e9
		seen[sg.Stage] = true
	}
	for d, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("netstat: no spans recorded for stage %d (telemetry not attached?)", d)
		}
	}
	rep.AlphaSec, rep.RTTSamples = fleetAlpha(&snap)
	rep.Machine, err = netsim.CalibrateMachine("loopback (wire-calibrated)", cfg.K, rep.AlphaSec, plan, measured)
	if err != nil {
		return nil, err
	}
	rep.Divergence, err = netsim.CompareStageTimes(rep.Machine, plan, measured)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// RenderNetstatLinks writes the per-rank wire summary: each rank's link
// stats aggregated over its peers (SRTT sample-weighted). Ranks with no
// link stats (non-wire transports, or remote ranks absent from an
// unmerged snapshot) are skipped.
func RenderNetstatLinks(w io.Writer, s *telemetry.Snapshot) {
	fmt.Fprintf(w, "%5s %6s %9s %9s %8s %8s %6s %8s %9s %9s %9s %9s %7s\n",
		"rank", "links", "pkts_out", "pkts_in", "resends", "sack_rep", "dups",
		"srtt_us", "acks_out", "ack_supp", "stage_ack", "live_ack", "stalls")
	for _, r := range s.Ranks {
		if len(r.Links) == 0 {
			continue
		}
		var agg runtime.LinkStats
		for _, l := range r.Links {
			agg.Add(l)
		}
		srttUs := 0.0
		if agg.RTTSamples > 0 {
			srttUs = float64(agg.SRTTNs) / 1e3
		}
		fmt.Fprintf(w, "%5d %6d %9d %9d %8d %8d %6d %8.1f %9d %9d %9d %9d %7d\n",
			r.Rank, len(r.Links), agg.PktsSent, agg.PktsRecvd, agg.Resends(),
			agg.SackRepairs, agg.Dups, srttUs, agg.AcksSent, agg.AcksSuppressed,
			agg.StageAcks, agg.LivenessAcks, agg.WindowStalls)
	}
}

// RenderNetstat writes the full report: wire summary, straggler table,
// skew headline, and the measured-vs-model divergence table.
func RenderNetstat(w io.Writer, rep *NetstatReport) {
	fmt.Fprintf(w, "netstat: K=%d dim=%d, %d destinations x %dB per rank, %d replay iterations\n\n",
		rep.Cfg.K, rep.Cfg.Dim, rep.Cfg.Dests, rep.Cfg.Bytes, rep.Cfg.Iters)
	fmt.Fprintln(w, "per-rank wire stats (aggregated over links):")
	RenderNetstatLinks(w, &rep.Snapshot)
	fmt.Fprintln(w, "\nper-stage critical path (busy time summed over iterations):")
	telemetry.WriteStragglers(w, rep.Stragglers)
	skew := telemetry.SkewHistogram(rep.Stragglers)
	fmt.Fprintf(w, "stage skew (max-mean busy): mean %.1fus, p90 %.1fus over %d stages\n",
		skew.Mean()/1e3, float64(skew.Quantile(0.90))/1e3, skew.Count)
	fmt.Fprintf(w, "\nmeasured vs model (alpha from %d ack RTT samples):\n", rep.RTTSamples)
	netsim.WriteDivergence(w, rep.Machine, rep.Divergence)
}
