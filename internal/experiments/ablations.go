package experiments

import (
	"fmt"
	"io"

	"stfw/internal/core"
	"stfw/internal/mapping"
	"stfw/internal/metrics"
	"stfw/internal/netsim"
	"stfw/internal/partition"
	"stfw/internal/spmv"
	"stfw/internal/vpt"
)

// This file holds the ablation studies DESIGN.md calls out, beyond the
// paper's own tables: the effect of the partitioner (the paper simply uses
// PaToH; we quantify what the partitioner contributes), the skewed
// dimension-size trade-off Section 5 mentions but does not explore, and the
// Section 8 future-work mappings (process-to-VPT and process-to-physical).

// PartitionerRow reports the Table-2 metrics of one partitioner on one
// scheme.
type PartitionerRow struct {
	Partitioner string
	Scheme      string
	Summary     metrics.Summary
}

// PartitionerAblation compares block, random and greedy partitionings of
// one matrix at K ranks under BL and a mid-dimension STFW, pricing on
// BG/Q. It shows (i) a communication-aware partitioner reduces both volume
// and message count, and (ii) STFW's regularization helps under every
// partitioner — the two optimizations compose.
func PartitionerAblation(cfg Config, name string, K int) ([]PartitionerRow, error) {
	m, err := cache.matrix(name, cfg.scale())
	if err != nil {
		return nil, err
	}
	mach, err := netsim.BlueGeneQ(K)
	if err != nil {
		return nil, err
	}
	type pt struct {
		label string
		build func() (*partition.Partition, error)
	}
	parts := []pt{
		{"block", func() (*partition.Partition, error) { return partition.Block(m.Rows, K) }},
		{"random", func() (*partition.Partition, error) { return partition.Random(m.Rows, K, 1) }},
		{"rcm", func() (*partition.Partition, error) { return partition.BlockRCM(m, K) }},
		{"greedy", func() (*partition.Partition, error) { return partition.Greedy(m, K, partition.DefaultGreedy()) }},
	}
	dim := 4
	if max := vpt.MaxDim(K); dim > max {
		dim = max
	}
	var out []PartitionerRow
	for _, p := range parts {
		part, err := p.build()
		if err != nil {
			return nil, err
		}
		pat, err := spmv.BuildPattern(m, part)
		if err != nil {
			return nil, err
		}
		sends, err := pat.SendSets()
		if err != nil {
			return nil, err
		}
		inst := &Instance{Matrix: name, K: K, Sends: sends, NNZ: pat.NNZ}
		for _, n := range []int{1, dim} {
			sum, err := EvalScheme(inst, mach, n)
			if err != nil {
				return nil, err
			}
			out = append(out, PartitionerRow{Partitioner: p.label, Scheme: SchemeName(n), Summary: sum})
		}
	}
	return out, nil
}

// RenderPartitionerAblation prints the comparison.
func RenderPartitionerAblation(w io.Writer, name string, K int, rows []PartitionerRow) {
	fmt.Fprintf(w, "Partitioner ablation: %s at K=%d (BlueGene/Q model)\n", name, K)
	fmt.Fprintf(w, "%-10s %-8s %8s %8s %9s %11s\n", "partition", "scheme", "mmax", "mavg", "vavg", "comm(us)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %8.1f %8.1f %9.0f %11.1f\n",
			r.Partitioner, r.Scheme, r.Summary.MMax, r.Summary.MAvg, r.Summary.VAvg,
			netsim.Microseconds(r.Summary.CommTime))
	}
}

// SkewRow reports one skew setting of the fixed-dimension trade-off.
type SkewRow struct {
	Skew     float64
	Topology string
	Bound    int
	Summary  metrics.Summary
}

// SkewAblation explores the Section 5 trade-off at fixed dimension n:
// skewing the dimension sizes away from balanced raises the message-count
// bound but lowers forwarding volume.
func SkewAblation(cfg Config, name string, K, n int) ([]SkewRow, error) {
	inst, err := Prepare(cfg, name, K)
	if err != nil {
		return nil, err
	}
	mach, err := netsim.BlueGeneQ(K)
	if err != nil {
		return nil, err
	}
	var out []SkewRow
	for _, skew := range []float64{0, 0.25, 0.5, 0.75, 1} {
		tp, err := vpt.NewSkewed(K, n, skew)
		if err != nil {
			return nil, err
		}
		plan, err := core.BuildPlan(tp, inst.Sends)
		if err != nil {
			return nil, err
		}
		sum, err := metrics.Summarize(fmt.Sprintf("skew%.2f", skew), plan, inst.Sends)
		if err != nil {
			return nil, err
		}
		sum.CommTime, err = netsim.CommTime(mach, plan)
		if err != nil {
			return nil, err
		}
		out = append(out, SkewRow{
			Skew: skew, Topology: tp.String(), Bound: core.MaxMessageBound(tp), Summary: sum,
		})
	}
	return out, nil
}

// RenderSkewAblation prints the skew sweep.
func RenderSkewAblation(w io.Writer, name string, K, n int, rows []SkewRow) {
	fmt.Fprintf(w, "Skew ablation: %s at K=%d, fixed dimension n=%d\n", name, K, n)
	fmt.Fprintf(w, "%-6s %-22s %6s %8s %9s %11s\n", "skew", "topology", "bound", "mmax", "vavg", "comm(us)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6.2f %-22s %6d %8.1f %9.0f %11.1f\n",
			r.Skew, r.Topology, r.Bound, r.Summary.MMax, r.Summary.VAvg,
			netsim.Microseconds(r.Summary.CommTime))
	}
}

// MappingRow reports one placement strategy.
type MappingRow struct {
	Strategy string
	VolWords int64   // forwarded volume (VPT mapping objective)
	CommUS   float64 // priced communication time
}

// MappingAblation evaluates the Section 8 future-work mappings on one
// instance and a mid-dimension VPT: identity, the volume-aware VPT
// mapping, the physical placement, and both combined.
func MappingAblation(cfg Config, name string, K, n int) ([]MappingRow, error) {
	inst, err := Prepare(cfg, name, K)
	if err != nil {
		return nil, err
	}
	tp, err := vpt.NewBalanced(K, n)
	if err != nil {
		return nil, err
	}
	mach, err := netsim.CrayXK7(K)
	if err != nil {
		return nil, err
	}
	eval := func(strategy string, sends *core.SendSets, placed *netsim.Machine) (MappingRow, error) {
		plan, err := core.BuildPlan(tp, sends)
		if err != nil {
			return MappingRow{}, err
		}
		tm, err := netsim.CommTime(placed, plan)
		if err != nil {
			return MappingRow{}, err
		}
		return MappingRow{Strategy: strategy, VolWords: plan.TotalWords, CommUS: netsim.Microseconds(tm)}, nil
	}

	var out []MappingRow
	row, err := eval("identity", inst.Sends, mach)
	if err != nil {
		return nil, err
	}
	out = append(out, row)

	vperm, _, err := mapping.Greedy(tp, inst.Sends, mapping.DefaultOptions())
	if err != nil {
		return nil, err
	}
	vmapped, err := mapping.Apply(inst.Sends, vperm)
	if err != nil {
		return nil, err
	}
	row, err = eval("vpt-map", vmapped, mach)
	if err != nil {
		return nil, err
	}
	out = append(out, row)

	pperm, _, err := mapping.PhysicalGreedy(mach, inst.Sends, mapping.DefaultOptions())
	if err != nil {
		return nil, err
	}
	placed, err := mach.WithPlacement(pperm)
	if err != nil {
		return nil, err
	}
	row, err = eval("phys-map", inst.Sends, placed)
	if err != nil {
		return nil, err
	}
	out = append(out, row)

	// Combined: remap the send sets in the VPT, then place the remapped
	// ranks physically.
	pperm2, _, err := mapping.PhysicalGreedy(mach, vmapped, mapping.DefaultOptions())
	if err != nil {
		return nil, err
	}
	placed2, err := mach.WithPlacement(pperm2)
	if err != nil {
		return nil, err
	}
	row, err = eval("both", vmapped, placed2)
	if err != nil {
		return nil, err
	}
	out = append(out, row)
	return out, nil
}

// RenderMappingAblation prints the mapping comparison.
func RenderMappingAblation(w io.Writer, name string, K, n int, rows []MappingRow) {
	fmt.Fprintf(w, "Mapping ablation (Section 8 future work): %s at K=%d, T%d (Cray XK7 model)\n", name, K, n)
	fmt.Fprintf(w, "%-10s %14s %11s\n", "strategy", "volume(words)", "comm(us)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %14d %11.1f\n", r.Strategy, r.VolWords, r.CommUS)
	}
}
