package experiments

import (
	"fmt"

	"stfw/internal/core"
	"stfw/internal/metrics"
	"stfw/internal/netsim"
	"stfw/internal/vpt"
)

// SchemeName renders "BL" or "STFWn".
func SchemeName(n int) string {
	if n <= 1 {
		return "BL"
	}
	return fmt.Sprintf("STFW%d", n)
}

// EvalScheme routes one instance's send sets under the scheme (n <= 1 = BL,
// otherwise STFW with a balanced n-dimensional VPT), prices it on the
// machine, and returns the full Table-2-style summary.
func EvalScheme(inst *Instance, m *netsim.Machine, n int) (metrics.Summary, error) {
	var plan *core.Plan
	var err error
	if n <= 1 {
		plan, err = core.BuildDirectPlan(inst.Sends)
	} else {
		var tp *vpt.Topology
		tp, err = vpt.NewBalanced(inst.K, n)
		if err != nil {
			return metrics.Summary{}, err
		}
		plan, err = core.BuildPlan(tp, inst.Sends)
	}
	if err != nil {
		return metrics.Summary{}, err
	}
	sum, err := metrics.Summarize(SchemeName(n), plan, inst.Sends)
	if err != nil {
		return metrics.Summary{}, err
	}
	sum.CommTime, err = netsim.CommTime(m, plan)
	if err != nil {
		return metrics.Summary{}, err
	}
	sum.SpMVTime, err = netsim.SpMVTime(m, plan, inst.NNZ)
	if err != nil {
		return metrics.Summary{}, err
	}
	return sum, nil
}

// EvalSuite evaluates one scheme over a suite of matrices at fixed K and
// returns the geometric-mean aggregate plus the per-matrix rows.
func EvalSuite(cfg Config, names []string, K int, m *netsim.Machine, n int) (metrics.Summary, []metrics.Summary, error) {
	rows := make([]metrics.Summary, 0, len(names))
	for _, name := range names {
		inst, err := Prepare(cfg, name, K)
		if err != nil {
			return metrics.Summary{}, nil, fmt.Errorf("%s: %w", name, err)
		}
		sum, err := EvalScheme(inst, m, n)
		if err != nil {
			return metrics.Summary{}, nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, sum)
	}
	return metrics.Aggregate(SchemeName(n), rows), rows, nil
}
