package spmv

import (
	"fmt"
	"math"
	"testing"

	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

func TestSessionRepeatedMultiplies(t *testing.T) {
	a := testMatrix(t, 400, 3200, 60)
	part, err := partition.Greedy(a, 16, partition.DefaultGreedy())
	if err != nil {
		t.Fatal(err)
	}
	pat, err := BuildPattern(a, part)
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := vpt.NewBalanced(16, 4)
	for _, opt := range []Options{
		{Method: BL},
		{Method: STFW, Topo: tp},
	} {
		// Three different input vectors through one session per rank; each
		// result must match the serial multiply.
		xs := make([][]float64, 3)
		wants := make([][]float64, 3)
		for r := range xs {
			xs[r] = testVector(a.Cols, int64(100+r))
			wants[r], _ = a.MulVec(nil, xs[r])
		}
		w, _ := chanpt.NewWorld(16, 16)
		got := make([][][]float64, 3)
		for r := range got {
			got[r] = make([][]float64, 16)
		}
		err := w.Run(func(c runtime.Comm) error {
			sess, err := NewSession(c, a, part, pat, opt)
			if err != nil {
				return err
			}
			if len(sess.OwnedRows()) == 0 && a.Rows >= 16 {
				return fmt.Errorf("rank %d owns no rows", c.Rank())
			}
			for r := range xs {
				y, err := sess.Multiply(xs[r])
				if err != nil {
					return fmt.Errorf("round %d: %w", r, err)
				}
				// The compiled session reuses its result buffer across
				// multiplies; keep a copy per round.
				got[r][c.Rank()] = append([]float64(nil), y...)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", opt.Method, err)
		}
		for r := range xs {
			y, err := Reduce(part, got[r])
			if err != nil {
				t.Fatal(err)
			}
			for i := range y {
				if math.Abs(y[i]-wants[r][i]) > 1e-9*(1+math.Abs(wants[r][i])) {
					t.Fatalf("%v round %d: y[%d] = %v, want %v", opt.Method, r, i, y[i], wants[r][i])
				}
			}
		}
	}
}

func TestSessionValidation(t *testing.T) {
	a := testMatrix(t, 100, 700, 20)
	part, _ := partition.Block(a.Rows, 4)
	pat, _ := BuildPattern(a, part)
	w, _ := chanpt.NewWorld(4, 4)
	err := w.Run(func(c runtime.Comm) error {
		if _, err := NewSession(c, a, part, pat, Options{Method: STFW}); err == nil {
			return fmt.Errorf("missing topology accepted")
		}
		if _, err := NewSession(c, a, part, pat, Options{Method: Method(7)}); err == nil {
			return fmt.Errorf("bad method accepted")
		}
		sess, err := NewSession(c, a, part, pat, Options{Method: BL})
		if err != nil {
			return err
		}
		if _, err := sess.Multiply(make([]float64, 3)); err == nil {
			return fmt.Errorf("bad x length accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mismatched partition.
	bad := &partition.Partition{K: 8, Part: make([]int32, a.Rows)}
	w2, _ := chanpt.NewWorld(4, 4)
	err = w2.Run(func(c runtime.Comm) error {
		if _, err := NewSession(c, a, bad, pat, Options{Method: BL}); err == nil {
			return fmt.Errorf("K mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
