package spmv

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

func testMatrix(t testing.TB, rows, nnz, maxDeg int) *sparse.CSR {
	t.Helper()
	m, err := sparse.Generate(sparse.GenParams{
		Name: "spmvtest", Rows: rows, TargetNNZ: nnz, MaxDegree: maxDeg,
		HubRows: 2, Band: 4, TailFrac: 0.3, TailSkew: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestBuildPatternSmall(t *testing.T) {
	// 4x4 matrix, rows {0,1} on part 0, {2,3} on part 1.
	// Column 0 touched by rows 0 and 2 -> part 0 sends x[0] to part 1.
	// Column 3 touched by rows 1 and 3 -> part 1 sends x[3] to part 0.
	ts := []sparse.Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 2, Col: 0, Val: 1},
		{Row: 1, Col: 3, Val: 1}, {Row: 3, Col: 3, Val: 1},
		{Row: 1, Col: 1, Val: 1},
	}
	a, err := sparse.FromTriples(4, 4, ts)
	if err != nil {
		t.Fatal(err)
	}
	part := &partition.Partition{K: 2, Part: []int32{0, 0, 1, 1}}
	pat, err := BuildPattern(a, part)
	if err != nil {
		t.Fatal(err)
	}
	if got := pat.SendIdx[0][1]; len(got) != 1 || got[0] != 0 {
		t.Errorf("part 0 -> 1: %v", got)
	}
	if got := pat.SendIdx[1][0]; len(got) != 1 || got[0] != 3 {
		t.Errorf("part 1 -> 0: %v", got)
	}
	if got := pat.RecvIdx[1][0]; len(got) != 1 || got[0] != 0 {
		t.Errorf("recv 1 <- 0: %v", got)
	}
	if pat.NNZ[0] != 3 || pat.NNZ[1] != 2 {
		t.Errorf("nnz = %v", pat.NNZ)
	}
}

func TestBuildPatternNoSelfMessages(t *testing.T) {
	a := testMatrix(t, 400, 3000, 60)
	part, _ := partition.Block(a.Rows, 8)
	pat, err := BuildPattern(a, part)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 8; src++ {
		if _, ok := pat.SendIdx[src][src]; ok {
			t.Errorf("part %d sends to itself", src)
		}
		for dst, lst := range pat.SendIdx[src] {
			if len(lst) == 0 {
				t.Errorf("empty send list %d->%d", src, dst)
			}
			// Sender must own every index it sends.
			for _, j := range lst {
				if int(part.Part[j]) != src {
					t.Errorf("part %d sends unowned x[%d]", src, j)
				}
			}
		}
	}
}

func TestBuildPatternErrors(t *testing.T) {
	rect, _ := sparse.FromTriples(2, 3, []sparse.Triple{{Row: 0, Col: 0, Val: 1}})
	part := &partition.Partition{K: 1, Part: []int32{0, 0}}
	if _, err := BuildPattern(rect, part); err == nil {
		t.Error("rectangular matrix accepted")
	}
	sq, _ := sparse.FromTriples(3, 3, []sparse.Triple{{Row: 0, Col: 0, Val: 1}})
	bad := &partition.Partition{K: 2, Part: []int32{0, 5, 0}}
	if _, err := BuildPattern(sq, bad); err == nil {
		t.Error("invalid partition accepted")
	}
}

func TestSendSetsSizes(t *testing.T) {
	a := testMatrix(t, 300, 2500, 50)
	part, _ := partition.Block(a.Rows, 4)
	pat, _ := BuildPattern(a, part)
	s, err := pat.SendSets()
	if err != nil {
		t.Fatal(err)
	}
	// Total words must equal total indices across all send lists.
	var want int64
	for src := 0; src < 4; src++ {
		for _, lst := range pat.SendIdx[src] {
			want += int64(len(lst))
		}
	}
	if s.TotalWords() != want {
		t.Errorf("send set words %d, want %d", s.TotalWords(), want)
	}
}

// runParallel executes a full distributed SpMV on a channel world and
// reduces the result.
func runParallel(t *testing.T, a *sparse.CSR, part *partition.Partition, x []float64, opt Options) []float64 {
	t.Helper()
	pat, err := BuildPattern(a, part)
	if err != nil {
		t.Fatal(err)
	}
	w, err := chanpt.NewWorld(part.K, part.K)
	if err != nil {
		t.Fatal(err)
	}
	ys := make([][]float64, part.K)
	err = w.Run(func(c runtime.Comm) error {
		y, err := Run(c, a, part, pat, x, opt)
		if err != nil {
			return err
		}
		ys[c.Rank()] = y
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	y, err := Reduce(part, ys)
	if err != nil {
		t.Fatal(err)
	}
	return y
}

func assertVecEqual(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestParallelMatchesSerialBL(t *testing.T) {
	a := testMatrix(t, 500, 4000, 80)
	x := testVector(a.Cols, 1)
	want, _ := a.MulVec(nil, x)
	for _, K := range []int{2, 5, 16} {
		part, err := partition.Greedy(a, K, partition.DefaultGreedy())
		if err != nil {
			t.Fatal(err)
		}
		got := runParallel(t, a, part, x, Options{Method: BL})
		assertVecEqual(t, got, want)
	}
}

func TestParallelMatchesSerialSTFW(t *testing.T) {
	a := testMatrix(t, 500, 4000, 80)
	x := testVector(a.Cols, 2)
	want, _ := a.MulVec(nil, x)
	for _, c := range []struct{ K, n int }{{16, 2}, {16, 4}, {32, 5}, {64, 3}} {
		tp, err := vpt.NewBalanced(c.K, c.n)
		if err != nil {
			t.Fatal(err)
		}
		part, err := partition.Greedy(a, c.K, partition.DefaultGreedy())
		if err != nil {
			t.Fatal(err)
		}
		got := runParallel(t, a, part, x, Options{Method: STFW, Topo: tp})
		assertVecEqual(t, got, want)
	}
}

func TestParallelBlockAndRandomPartitions(t *testing.T) {
	a := testMatrix(t, 300, 2000, 40)
	x := testVector(a.Cols, 3)
	want, _ := a.MulVec(nil, x)
	bp, _ := partition.Block(a.Rows, 8)
	rp, _ := partition.Random(a.Rows, 8, 9)
	tp, _ := vpt.NewBalanced(8, 3)
	for _, part := range []*partition.Partition{bp, rp} {
		assertVecEqual(t, runParallel(t, a, part, x, Options{Method: BL}), want)
		assertVecEqual(t, runParallel(t, a, part, x, Options{Method: STFW, Topo: tp}), want)
	}
}

func TestRunValidation(t *testing.T) {
	a := testMatrix(t, 100, 600, 20)
	part, _ := partition.Block(a.Rows, 4)
	pat, _ := BuildPattern(a, part)
	w, _ := chanpt.NewWorld(4, 4)
	err := w.Run(func(c runtime.Comm) error {
		// Wrong x length.
		if _, err := Run(c, a, part, pat, make([]float64, 5), Options{Method: BL}); err == nil {
			return fmt.Errorf("bad x accepted")
		}
		// STFW without topology.
		if _, err := Run(c, a, part, pat, make([]float64, a.Cols), Options{Method: STFW}); err == nil {
			return fmt.Errorf("missing topology accepted")
		}
		// Unknown method.
		if _, err := Run(c, a, part, pat, make([]float64, a.Cols), Options{Method: Method(9)}); err == nil {
			return fmt.Errorf("unknown method accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMethodString(t *testing.T) {
	if BL.String() != "BL" || STFW.String() != "STFW" {
		t.Error("method names wrong")
	}
	if Method(7).String() != "Method(7)" {
		t.Error("unknown method name wrong")
	}
}

func TestReduceValidation(t *testing.T) {
	part := &partition.Partition{K: 2, Part: []int32{0, 1}}
	if _, err := Reduce(part, make([][]float64, 1)); err == nil {
		t.Error("wrong ys length accepted")
	}
}

func TestPatternMorePartsThanRows(t *testing.T) {
	// K larger than rows: legal; most parts idle.
	a := testMatrix(t, 100, 500, 30)
	part, _ := partition.Block(a.Rows, 128)
	pat, err := BuildPattern(a, part)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pat.SendSets()
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalWords() == 0 {
		t.Error("expected some communication")
	}
}

func BenchmarkBuildPattern(b *testing.B) {
	a := testMatrix(b, 20000, 200000, 800)
	part, _ := partition.Greedy(a, 256, partition.DefaultGreedy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPattern(a, part); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelSpMV64STFW(b *testing.B) {
	a := testMatrix(b, 2000, 16000, 300)
	part, _ := partition.Greedy(a, 64, partition.DefaultGreedy())
	pat, _ := BuildPattern(a, part)
	tp, _ := vpt.NewBalanced(64, 3)
	x := testVector(a.Cols, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := chanpt.NewWorld(64, 4)
		err := w.Run(func(c runtime.Comm) error {
			_, err := Run(c, a, part, pat, x, Options{Method: STFW, Topo: tp})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
