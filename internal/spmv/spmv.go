// Package spmv implements the paper's evaluation kernel: row-parallel
// sparse matrix-vector multiplication with a communication phase followed
// by a computation phase. Rows (and conformally the x and y vectors) are
// distributed by a partition; before the local multiply, the owner of x[j]
// sends it to every process that has a nonzero in column j. The resulting
// point-to-point pattern — irregular and latency-bound for matrices with
// dense rows — is exactly the workload STFW regularizes.
package spmv

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"stfw/internal/core"
	"stfw/internal/msg"
	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/telemetry"
	"stfw/internal/vpt"
)

// Pattern is the communication requirement of one distributed SpMV: which x
// entries every rank must ship to every other rank.
type Pattern struct {
	K int
	// SendIdx[src][dst] lists the global column indices whose x values src
	// sends to dst, sorted increasing. Entries absent = no message.
	SendIdx []map[int][]int32
	// RecvIdx[dst][src] mirrors SendIdx from the receiver's side.
	RecvIdx []map[int][]int32
	// NNZ[p] is the local nonzero count of rank p (its multiply work).
	NNZ []int64
}

// BuildPattern derives the communication pattern of A under part. A must be
// square (row-parallel SpMV with conformal vector distribution).
func BuildPattern(a *sparse.CSR, part *partition.Partition) (*Pattern, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spmv: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	if err := part.Validate(a.Rows); err != nil {
		return nil, err
	}
	K := part.K
	p := &Pattern{
		K:       K,
		SendIdx: make([]map[int][]int32, K),
		RecvIdx: make([]map[int][]int32, K),
		NNZ:     make([]int64, K),
	}
	for i := range p.SendIdx {
		p.SendIdx[i] = map[int][]int32{}
		p.RecvIdx[i] = map[int][]int32{}
	}
	for i := 0; i < a.Rows; i++ {
		p.NNZ[part.Part[i]] += int64(a.RowDegree(i))
	}
	// Column j (owned by part[j]) must reach every part with a nonzero in
	// column j. Walk rows once, deduplicating (col, part) pairs per column
	// via a per-column scratch set keyed by the transpose.
	at := a.Transpose()
	seen := make([]bool, K)
	for j := 0; j < at.Rows; j++ {
		owner := int(part.Part[j])
		rows, _ := at.Row(j)
		var touched []int
		for _, r := range rows {
			q := int(part.Part[r])
			if q != owner && !seen[q] {
				seen[q] = true
				touched = append(touched, q)
			}
		}
		for _, q := range touched {
			seen[q] = false
			p.SendIdx[owner][q] = append(p.SendIdx[owner][q], int32(j))
			p.RecvIdx[q][owner] = append(p.RecvIdx[q][owner], int32(j))
		}
	}
	// Column walk is in increasing j, so the lists are already sorted;
	// keep the invariant explicit against future changes.
	for i := 0; i < K; i++ {
		for _, lst := range p.SendIdx[i] {
			if !sort.SliceIsSorted(lst, func(a, b int) bool { return lst[a] < lst[b] }) {
				sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
			}
		}
	}
	return p, nil
}

// SendSets converts the pattern into the core representation (message sizes
// in 8-byte words: one word per x entry).
func (p *Pattern) SendSets() (*core.SendSets, error) {
	s := core.NewSendSets(p.K)
	for src := 0; src < p.K; src++ {
		for dst, lst := range p.SendIdx[src] {
			s.Add(src, dst, int64(len(lst)))
		}
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// Method selects the communication scheme of the exchange phase.
type Method int

const (
	// BL is the paper's baseline: direct point-to-point messages.
	BL Method = iota
	// STFW routes messages through the virtual process topology.
	STFW
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case BL:
		return "BL"
	case STFW:
		return "STFW"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a parallel SpMV run.
type Options struct {
	Method Method
	// Topo is the VPT used when Method == STFW; ignored for BL.
	Topo *vpt.Topology
	// Uncompiled keeps the original map-based iteration (per-call payload
	// maps, byte codec, halo map) instead of compiling the session into an
	// indexed program. The two paths are bit-identical; Uncompiled exists
	// as the differential baseline and for benchmarking the compile win.
	Uncompiled bool
	// Telemetry, when set, attaches each rank's session to the registry's
	// live collector: Multiply records gather/exchange/kernel phase spans
	// and the exchange records stage spans and forward counts. The hooks
	// are allocation-free, so the zero-alloc steady state holds with
	// telemetry enabled. Frame-level send/recv counters additionally
	// require wrapping the communicators (telemetry.Registry.WrapComm).
	Telemetry *telemetry.Registry
}

// Run executes one distributed SpMV y = A*x over the communicator: the
// exchange phase under the configured method, then the local multiply. Every
// rank passes the full (replicated) A, part, pattern, and x for simplicity
// of setup — only the owned rows are touched — and receives back the full y
// with its owned entries filled in (other entries zero).
//
// Run is collective across all ranks of c. Repeated multiplies with the
// same configuration should use a Session, which reuses the exchange
// pattern; Run builds a fresh one each call.
func Run(c runtime.Comm, a *sparse.CSR, part *partition.Partition, pat *Pattern, x []float64, opt Options) ([]float64, error) {
	sess, err := NewSession(c, a, part, pat, opt)
	if err != nil {
		return nil, err
	}
	return sess.Multiply(x)
}

// unpackHalo decodes the delivered payloads back into (global index ->
// value) using the receiver's RecvIdx lists, which mirror the sender's
// packing order.
func unpackHalo(me int, pat *Pattern, d *core.Delivered) (map[int32]float64, error) {
	halo := make(map[int32]float64)
	bySrc := map[int]msg.Submessage{}
	for _, sub := range d.Subs {
		bySrc[sub.Src] = sub
	}
	for src, lst := range pat.RecvIdx[me] {
		sub, ok := bySrc[src]
		if !ok {
			return nil, fmt.Errorf("spmv: rank %d expected x values from %d, got none", me, src)
		}
		if len(sub.Data) != 8*len(lst) {
			return nil, fmt.Errorf("spmv: rank %d: payload from %d has %d bytes, want %d",
				me, src, len(sub.Data), 8*len(lst))
		}
		for i, j := range lst {
			halo[j] = math.Float64frombits(binary.LittleEndian.Uint64(sub.Data[8*i:]))
		}
		delete(bySrc, src)
	}
	if len(bySrc) != 0 {
		return nil, fmt.Errorf("spmv: rank %d received %d unexpected payloads", me, len(bySrc))
	}
	return halo, nil
}

// localX resolves x[j] from the owned vector or the halo.
func localX(me int, part *partition.Partition, x []float64, halo map[int32]float64, j int) (float64, bool) {
	if int(part.Part[j]) == me {
		return x[j], true
	}
	v, ok := halo[int32(j)]
	return v, ok
}

// Reduce merges per-rank y vectors (each with only its owned entries set)
// into the full result.
func Reduce(part *partition.Partition, ys [][]float64) ([]float64, error) {
	if len(ys) != part.K {
		return nil, fmt.Errorf("spmv: %d partial vectors for K=%d", len(ys), part.K)
	}
	n := len(part.Part)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = ys[part.Part[i]][i]
	}
	return out, nil
}
