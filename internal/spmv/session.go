package spmv

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"stfw/internal/core"
	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/telemetry"
)

// Session is a per-rank handle for repeated SpMV with the same matrix,
// partition and communication pattern — the iterative-solver case.
//
// By default a session compiles itself into a fully indexed iteration
// program: the owned CSR rows are remapped once onto a contiguous
// [own | halo] local vector, and the exchange is a core.Replay that
// gathers payload floats straight from x and scatters deliveries straight
// into the halo tail. A steady-state Multiply then performs no map
// lookups and no allocations. Under STFW the first multiply is the
// learning run (it executes the seed path and compiles the learned
// layout); under BL the exchange compiles at session creation. Setting
// Options.Uncompiled keeps the original map-based path on every call —
// the two produce bit-identical results.
//
// Create one Session per rank inside the rank function and reuse it
// across iterations.
type Session struct {
	c    runtime.Comm
	a    *sparse.CSR
	part *partition.Partition
	pat  *Pattern
	opt  Options

	recvFrom []int            // BL seed path: cached receive sources
	persist  *core.Persistent // STFW: learned pattern, nil until first multiply
	ownRows  []int            // rows this rank owns, ascending
	prog     *program         // compiled iteration, nil when opt.Uncompiled
	tm       PhaseTimings
	tel      *telemetry.Rank // live collector for this rank; nil when disabled
}

// NewSession validates the configuration and prepares the per-rank state.
func NewSession(c runtime.Comm, a *sparse.CSR, part *partition.Partition, pat *Pattern, opt Options) (*Session, error) {
	if part.K != c.Size() {
		return nil, fmt.Errorf("spmv: partition K=%d != communicator size %d", part.K, c.Size())
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spmv: matrix must be square")
	}
	if opt.Method == STFW && opt.Topo == nil {
		return nil, fmt.Errorf("spmv: STFW requires a topology")
	}
	if opt.Method != STFW && opt.Method != BL {
		return nil, fmt.Errorf("spmv: unknown method %v", opt.Method)
	}
	s := &Session{c: c, a: a, part: part, pat: pat, opt: opt}
	me := c.Rank()
	s.tel = opt.Telemetry.Rank(me)
	for src := range pat.RecvIdx[me] {
		s.recvFrom = append(s.recvFrom, src)
	}
	sort.Ints(s.recvFrom)
	for i := 0; i < a.Rows; i++ {
		if int(part.Part[i]) == me {
			s.ownRows = append(s.ownRows, i)
		}
	}
	if !opt.Uncompiled {
		prog, err := compileProgram(me, a, part, pat, s.ownRows)
		if err != nil {
			return nil, err
		}
		s.prog = prog
		if opt.Method == BL {
			srcWords := make(map[int]int, len(pat.RecvIdx[me]))
			for src, lst := range pat.RecvIdx[me] {
				srcWords[src] = len(lst)
			}
			r, err := core.NewDirectReplay(me, c.Size(), a.Cols, pat.SendIdx[me], srcWords)
			if err != nil {
				return nil, err
			}
			if r.HaloWords() != prog.haloWords {
				return nil, fmt.Errorf("spmv: rank %d: exchange delivers %d halo words, kernel expects %d",
					me, r.HaloWords(), prog.haloWords)
			}
			r.Instrument(s.tel)
			prog.replay = r
		}
	}
	return s, nil
}

// Multiply computes y = A*x for this rank's owned rows (other entries of
// the returned vector are zero). Collective across all ranks that share the
// session configuration.
//
// On the compiled path the returned slice is owned by the session and
// overwritten by the next Multiply; copy it to keep it across iterations.
func (s *Session) Multiply(x []float64) ([]float64, error) {
	if len(x) != s.a.Cols {
		return nil, fmt.Errorf("spmv: x length %d != cols %d", len(x), s.a.Cols)
	}
	if s.prog == nil {
		return s.multiplySeed(x)
	}
	if s.prog.replay == nil {
		// STFW learning iteration: run the seed path (which performs the
		// learning exchange), then compile its layout for every later call.
		y, err := s.multiplySeed(x)
		if err != nil {
			return nil, err
		}
		r, err := s.persist.Compile(s.a.Cols, s.pat.SendIdx[s.c.Rank()])
		if err != nil {
			return nil, err
		}
		if r.HaloWords() != s.prog.haloWords {
			return nil, fmt.Errorf("spmv: rank %d: exchange delivers %d halo words, kernel expects %d",
				s.c.Rank(), r.HaloWords(), s.prog.haloWords)
		}
		r.Instrument(s.tel)
		s.prog.replay = r
		return y, nil
	}
	return s.multiplyCompiled(x)
}

// multiplyCompiled is the steady-state hot loop: gather, replay, straight
// CSR walk. No maps, no allocation.
func (s *Session) multiplyCompiled(x []float64) ([]float64, error) {
	p := s.prog
	t0 := time.Now()
	for i, g := range p.gatherIdx {
		p.xloc[i] = x[g]
	}
	t1 := time.Now()
	if err := p.replay.Run(s.c, x, p.xloc[p.nOwn:]); err != nil {
		return nil, err
	}
	t2 := time.Now()
	for r := range p.rowIDs {
		var sum float64
		for k := p.rp[r]; k < p.rp[r+1]; k++ {
			sum += p.v[k] * p.xloc[p.ci[k]]
		}
		p.y[p.rowIDs[r]] = sum
	}
	t3 := time.Now()
	s.tm.Gather += t1.Sub(t0)
	s.tm.Exchange += t2.Sub(t1)
	s.tm.Kernel += t3.Sub(t2)
	s.tm.Iters++
	s.spanPhases(t0, t1, t2, t3)
	return p.y, nil
}

// spanPhases mirrors the accumulated PhaseTimings instants into the live
// telemetry timeline (one gather/exchange/kernel slice per multiply). The
// same clock reads feed both, so the trace and Timings always agree.
func (s *Session) spanPhases(t0, t1, t2, t3 time.Time) {
	if s.tel == nil {
		return
	}
	s.tel.SpanBetween(telemetry.KGather, -1, t0, t1)
	s.tel.SpanBetween(telemetry.KExchange, -1, t1, t2)
	s.tel.SpanBetween(telemetry.KKernel, -1, t2, t3)
}

// multiplySeed is the original map-based path, kept as the differential
// baseline (Options.Uncompiled) and as the STFW learning iteration. It is
// not frozen at seed behavior: its exchanges ride the same core stage
// machine as everything else (DESIGN.md §8), so steady-state Persistent.Run
// replays here get arrival-order receives and pooled zero-copy frames —
// only the map staging and the per-value byte codec remain uncompiled.
func (s *Session) multiplySeed(x []float64) ([]float64, error) {
	me := s.c.Rank()
	t0 := time.Now()
	payloads := make(map[int][]byte, len(s.pat.SendIdx[me]))
	for dst, lst := range s.pat.SendIdx[me] {
		buf := make([]byte, 0, 8*len(lst))
		for _, j := range lst {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x[j]))
		}
		payloads[dst] = buf
	}
	t1 := time.Now()

	var delivered *core.Delivered
	var err error
	switch {
	case s.opt.Method == BL:
		delivered, err = core.DirectExchange(s.c, payloads, s.recvFrom, core.WithTelemetry(s.tel))
	case s.persist == nil:
		s.persist, delivered, err = core.NewPersistent(s.c, s.opt.Topo, payloads)
		if s.persist != nil {
			s.persist.Instrument(s.tel)
		}
	default:
		delivered, err = s.persist.Run(s.c, payloads)
	}
	if err != nil {
		return nil, err
	}
	t2 := time.Now()

	halo, err := unpackHalo(me, s.pat, delivered)
	if err != nil {
		return nil, err
	}
	y := make([]float64, s.a.Rows)
	for _, i := range s.ownRows {
		cols, vals := s.a.Row(i)
		var sum float64
		for k, j := range cols {
			xv, ok := localX(me, s.part, x, halo, int(j))
			if !ok {
				return nil, fmt.Errorf("spmv: rank %d missing x[%d] for row %d", me, j, i)
			}
			sum += vals[k] * xv
		}
		y[i] = sum
	}
	t3 := time.Now()
	s.tm.Gather += t1.Sub(t0)
	s.tm.Exchange += t2.Sub(t1)
	s.tm.Kernel += t3.Sub(t2)
	s.tm.Iters++
	s.spanPhases(t0, t1, t2, t3)
	return y, nil
}

// OwnedRows returns the rows this rank computes, ascending. The returned
// slice is cached inside the session and must be treated as read-only.
func (s *Session) OwnedRows() []int { return s.ownRows }

// Timings returns the accumulated per-phase wall time of this session's
// multiplies.
func (s *Session) Timings() PhaseTimings { return s.tm }
