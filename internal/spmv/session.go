package spmv

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"stfw/internal/core"
	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
)

// Session is a per-rank handle for repeated SpMV with the same matrix,
// partition and communication pattern — the iterative-solver case. Under
// STFW it learns the store-and-forward frame layout on the first multiply
// and replays it afterwards (core.Persistent); under BL it caches the
// receive list. Create one Session per rank inside the rank function and
// reuse it across iterations.
type Session struct {
	c    runtime.Comm
	a    *sparse.CSR
	part *partition.Partition
	pat  *Pattern
	opt  Options

	recvFrom []int            // BL: cached receive sources
	persist  *core.Persistent // STFW: learned pattern, nil until first multiply
	ownRows  []int            // rows this rank owns
}

// NewSession validates the configuration and prepares the per-rank state.
func NewSession(c runtime.Comm, a *sparse.CSR, part *partition.Partition, pat *Pattern, opt Options) (*Session, error) {
	if part.K != c.Size() {
		return nil, fmt.Errorf("spmv: partition K=%d != communicator size %d", part.K, c.Size())
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spmv: matrix must be square")
	}
	if opt.Method == STFW && opt.Topo == nil {
		return nil, fmt.Errorf("spmv: STFW requires a topology")
	}
	if opt.Method != STFW && opt.Method != BL {
		return nil, fmt.Errorf("spmv: unknown method %v", opt.Method)
	}
	s := &Session{c: c, a: a, part: part, pat: pat, opt: opt}
	me := c.Rank()
	for src := range pat.RecvIdx[me] {
		s.recvFrom = append(s.recvFrom, src)
	}
	sort.Ints(s.recvFrom)
	for i := 0; i < a.Rows; i++ {
		if int(part.Part[i]) == me {
			s.ownRows = append(s.ownRows, i)
		}
	}
	return s, nil
}

// Multiply computes y = A*x for this rank's owned rows (other entries of
// the returned vector are zero). Collective across all ranks that share the
// session configuration.
func (s *Session) Multiply(x []float64) ([]float64, error) {
	me := s.c.Rank()
	if len(x) != s.a.Cols {
		return nil, fmt.Errorf("spmv: x length %d != cols %d", len(x), s.a.Cols)
	}
	payloads := make(map[int][]byte, len(s.pat.SendIdx[me]))
	for dst, lst := range s.pat.SendIdx[me] {
		buf := make([]byte, 0, 8*len(lst))
		for _, j := range lst {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x[j]))
		}
		payloads[dst] = buf
	}

	var delivered *core.Delivered
	var err error
	switch {
	case s.opt.Method == BL:
		delivered, err = core.DirectExchange(s.c, payloads, s.recvFrom)
	case s.persist == nil:
		s.persist, delivered, err = core.NewPersistent(s.c, s.opt.Topo, payloads)
	default:
		delivered, err = s.persist.Run(s.c, payloads)
	}
	if err != nil {
		return nil, err
	}

	halo, err := unpackHalo(me, s.pat, delivered)
	if err != nil {
		return nil, err
	}
	y := make([]float64, s.a.Rows)
	for _, i := range s.ownRows {
		cols, vals := s.a.Row(i)
		var sum float64
		for k, j := range cols {
			xv, ok := localX(me, s.part, x, halo, int(j))
			if !ok {
				return nil, fmt.Errorf("spmv: rank %d missing x[%d] for row %d", me, j, i)
			}
			sum += vals[k] * xv
		}
		y[i] = sum
	}
	return y, nil
}

// OwnedRows returns the rows this rank computes.
func (s *Session) OwnedRows() []int { return append([]int(nil), s.ownRows...) }
