package spmv

import (
	"fmt"
	"sort"
	"time"

	"stfw/internal/core"
	"stfw/internal/partition"
	"stfw/internal/sparse"
)

// PhaseTimings accumulates the wall time a session spent in each phase of
// its multiplies, so regressions are attributable to gather, exchange, or
// compute.
type PhaseTimings struct {
	// Gather is the time spent assembling the local input vector: copying
	// owned x entries into the compiled local vector, or packing payload
	// bytes on the uncompiled path.
	Gather time.Duration
	// Exchange is the communication phase (BL or STFW).
	Exchange time.Duration
	// Kernel is the local multiply; the uncompiled path also counts halo
	// unpacking here.
	Kernel time.Duration
	// Iters is the number of multiplies accumulated.
	Iters int
}

// program is one rank's compiled SpMV iteration: the owned CSR rows with
// column indices remapped to positions in a contiguous local vector laid
// out as [own-gather | halo], plus the compiled exchange that scatters
// delivered halo values straight into that vector's tail. Once built, an
// iteration touches no maps and allocates nothing.
type program struct {
	rowIDs []int   // global ids of owned rows, ascending (= Session.ownRows)
	rp     []int64 // local row pointers, len(rowIDs)+1
	ci     []int32 // local column positions into xloc, CSR order preserved
	v      []float64

	// gatherIdx lists the referenced owned columns, ascending; iteration i
	// of the gather phase sets xloc[i] = x[gatherIdx[i]].
	gatherIdx []int32
	nOwn      int
	haloWords int
	xloc      []float64 // [own-gather | halo], halo tail filled by the replay
	y         []float64 // reusable result vector, only owned entries written

	// replay is the compiled exchange. BL sessions build it up front; STFW
	// sessions leave it nil until the learning multiply has run.
	replay *core.Replay
}

// compileProgram remaps the owned rows of a onto the [own | halo] local
// vector layout. The halo tail is ordered exactly like the compiled
// exchange's deliveries — source ranks ascending, each source's columns in
// RecvIdx order — so the replay can scatter into it directly.
func compileProgram(me int, a *sparse.CSR, part *partition.Partition, pat *Pattern, ownRows []int) (*program, error) {
	p := &program{rowIDs: ownRows}

	// pos maps a global column to its xloc position; -1 unused, -2 marks a
	// referenced owned column awaiting its ascending position.
	pos := make([]int32, a.Cols)
	for j := range pos {
		pos[j] = -1
	}
	nnz := 0
	for _, i := range ownRows {
		cols, _ := a.Row(i)
		nnz += len(cols)
		for _, j := range cols {
			if int(part.Part[j]) == me {
				pos[j] = -2
			}
		}
	}
	for j := 0; j < a.Cols; j++ {
		if pos[j] == -2 {
			pos[j] = int32(len(p.gatherIdx))
			p.gatherIdx = append(p.gatherIdx, int32(j))
		}
	}
	p.nOwn = len(p.gatherIdx)

	srcs := make([]int, 0, len(pat.RecvIdx[me]))
	for src := range pat.RecvIdx[me] {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	at := int32(p.nOwn)
	for _, src := range srcs {
		for _, j := range pat.RecvIdx[me][src] {
			if pos[j] != -1 {
				return nil, fmt.Errorf("spmv: rank %d: halo column %d from %d conflicts with local layout", me, j, src)
			}
			pos[j] = at
			at++
		}
	}
	p.haloWords = int(at) - p.nOwn

	p.rp = make([]int64, len(ownRows)+1)
	p.ci = make([]int32, 0, nnz)
	p.v = make([]float64, 0, nnz)
	for r, i := range ownRows {
		cols, vals := a.Row(i)
		for k, j := range cols {
			lp := pos[j]
			if lp < 0 {
				return nil, fmt.Errorf("spmv: rank %d: column %d of row %d is neither owned nor in the halo pattern", me, j, i)
			}
			p.ci = append(p.ci, lp)
			p.v = append(p.v, vals[k])
		}
		p.rp[r+1] = int64(len(p.ci))
	}
	p.xloc = make([]float64, at)
	p.y = make([]float64, a.Rows)
	return p, nil
}
