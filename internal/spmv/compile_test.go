package spmv

import (
	"fmt"
	"math"
	"testing"

	"stfw/internal/core"
	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/telemetry"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// diffConfig is one compiled-vs-seed differential configuration.
type diffConfig struct {
	name string
	opt  Options
	K    int
}

// runDifferential drives an uncompiled (seed) session and a compiled
// session side by side on the same world for three rounds and requires
// bit-identical owned results every round.
func runDifferential(t *testing.T, a *sparse.CSR, part *partition.Partition, cfg diffConfig) {
	t.Helper()
	pat, err := BuildPattern(a, part)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, 3)
	for r := range xs {
		xs[r] = testVector(a.Cols, int64(500+r))
	}
	w, err := chanpt.NewWorld(cfg.K, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		seedOpt := cfg.opt
		seedOpt.Uncompiled = true
		seed, err := NewSession(c, a, part, pat, seedOpt)
		if err != nil {
			return err
		}
		comp, err := NewSession(c, a, part, pat, cfg.opt)
		if err != nil {
			return err
		}
		for r, x := range xs {
			// Seed first, compiled second: two distinct collective calls
			// per round, same input.
			ys, err := seed.Multiply(x)
			if err != nil {
				return fmt.Errorf("seed round %d: %w", r, err)
			}
			yc, err := comp.Multiply(x)
			if err != nil {
				return fmt.Errorf("compiled round %d: %w", r, err)
			}
			for _, i := range comp.OwnedRows() {
				if math.Float64bits(ys[i]) != math.Float64bits(yc[i]) {
					return fmt.Errorf("round %d row %d: compiled %v != seed %v (rank %d)",
						r, i, yc[i], ys[i], c.Rank())
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s: %v", cfg.name, err)
	}
}

// TestCompiledMatchesSeedBitIdentical covers BL and STFW across K ∈
// {8, 16, 64} balanced topologies and a non-power-of-two factored T2(3,4).
func TestCompiledMatchesSeedBitIdentical(t *testing.T) {
	a := testMatrix(t, 640, 6400, 60)
	for _, K := range []int{8, 16, 64} {
		part, err := partition.Greedy(a, K, partition.DefaultGreedy())
		if err != nil {
			t.Fatal(err)
		}
		dim := 3
		if K == 16 {
			dim = 4
		}
		tp, err := vpt.NewBalanced(K, dim)
		if err != nil {
			t.Fatal(err)
		}
		runDifferential(t, a, part, diffConfig{name: fmt.Sprintf("BL/K=%d", K), opt: Options{Method: BL}, K: K})
		runDifferential(t, a, part, diffConfig{name: fmt.Sprintf("STFW/K=%d", K), opt: Options{Method: STFW, Topo: tp}, K: K})
	}
	// Non-power-of-two factored topology: K = 12 = 3*4.
	part, err := partition.Greedy(a, 12, partition.DefaultGreedy())
	if err != nil {
		t.Fatal(err)
	}
	runDifferential(t, a, part, diffConfig{name: "STFW/K=12(3x4)", opt: Options{Method: STFW, Topo: vpt.MustNew(3, 4)}, K: 12})
	runDifferential(t, a, part, diffConfig{name: "BL/K=12", opt: Options{Method: BL}, K: 12})
}

// TestCompiledEmptyHaloRank isolates rank 0 on a diagonal block so it
// neither sends nor receives halo values, and checks both paths still
// agree (the compiled session must handle zero-length gather, halo, and
// frame schedules).
func TestCompiledEmptyHaloRank(t *testing.T) {
	const n, K = 64, 4
	blk := n / K
	var ts []sparse.Triple
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triple{Row: i, Col: i, Val: float64(i%7) + 0.5})
		if i >= blk { // off-diagonal coupling only outside rank 0's block
			j := blk + (i+5)%(n-blk)
			if j != i {
				ts = append(ts, sparse.Triple{Row: i, Col: j, Val: 1.25})
			}
		}
	}
	a, err := sparse.FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Block(n, K)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := BuildPattern(a, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(pat.SendIdx[0]) != 0 || len(pat.RecvIdx[0]) != 0 {
		t.Fatalf("construction broken: rank 0 has halo traffic: send %v recv %v", pat.SendIdx[0], pat.RecvIdx[0])
	}
	tp, _ := vpt.NewBalanced(K, 2)
	runDifferential(t, a, part, diffConfig{name: "BL/empty-halo", opt: Options{Method: BL}, K: K})
	runDifferential(t, a, part, diffConfig{name: "STFW/empty-halo", opt: Options{Method: STFW, Topo: tp}, K: K})
}

// allocWorld runs one persistent goroutine per rank so AllocsPerRun can
// step all ranks through Multiply without spawning goroutines (goroutine
// startup allocates) inside the measured region.
type allocWorld struct {
	step []chan []float64
	done []chan error
}

func startAllocWorld(t *testing.T, a *sparse.CSR, part *partition.Partition, pat *Pattern, opt Options, K int) *allocWorld {
	t.Helper()
	w, err := chanpt.NewWorld(K, K)
	if err != nil {
		t.Fatal(err)
	}
	aw := &allocWorld{step: make([]chan []float64, K), done: make([]chan error, K)}
	comms := w.Comms()
	if opt.Telemetry != nil {
		// Full wiring: frame counters via the wrapped comms on top of the
		// session's phase/stage span hooks.
		stages := opt.Telemetry.Stages()
		opt.Telemetry.WrapComms(comms, func(tag int) (int, bool) {
			return core.TagStage(tag, stages)
		})
	}
	for r := 0; r < K; r++ {
		aw.step[r] = make(chan []float64)
		aw.done[r] = make(chan error)
		go func(c runtime.Comm, step chan []float64, done chan error) {
			sess, err := NewSession(c, a, part, pat, opt)
			if err != nil {
				for range step {
					done <- err
				}
				return
			}
			for x := range step {
				_, err := sess.Multiply(x)
				done <- err
			}
		}(comms[r], aw.step[r], aw.done[r])
	}
	return aw
}

func (aw *allocWorld) multiply(x []float64) error {
	for _, ch := range aw.step {
		ch <- x
	}
	var first error
	for _, ch := range aw.done {
		if err := <-ch; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (aw *allocWorld) stop() {
	for _, ch := range aw.step {
		close(ch)
	}
}

// TestSessionMultiplyZeroAlloc gates the headline claim: a steady-state
// compiled Multiply allocates nothing on the chanpt transport, under both
// BL and STFW.
func TestSessionMultiplyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; the gate runs in the non-race CI job")
	}
	const K = 8
	a := testMatrix(t, 400, 3600, 50)
	part, err := partition.Greedy(a, K, partition.DefaultGreedy())
	if err != nil {
		t.Fatal(err)
	}
	pat, err := BuildPattern(a, part)
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := vpt.NewBalanced(K, 3)
	x := testVector(a.Cols, 42)
	for _, cfg := range []struct {
		name string
		opt  Options
	}{
		{"BL", Options{Method: BL}},
		{"STFW", Options{Method: STFW, Topo: tp}},
		// The telemetry variants gate the overhead claim: counters, span
		// rings, and wrapped comms must not cost a single allocation in the
		// steady state.
		{"BL+telemetry", Options{Method: BL, Telemetry: telemetry.MustNew(telemetry.Config{Ranks: K, Stages: 1})}},
		{"STFW+telemetry", Options{Method: STFW, Topo: tp, Telemetry: telemetry.MustNew(telemetry.Config{Ranks: K, Stages: tp.N()})}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			aw := startAllocWorld(t, a, part, pat, cfg.opt, K)
			defer aw.stop()
			// Learning iteration (STFW) plus warmup to fill the frame arena
			// and the transport's high-water marks.
			for i := 0; i < 5; i++ {
				if err := aw.multiply(x); err != nil {
					t.Fatal(err)
				}
			}
			var stepErr error
			avg := testing.AllocsPerRun(20, func() {
				if err := aw.multiply(x); err != nil && stepErr == nil {
					stepErr = err
				}
			})
			if stepErr != nil {
				t.Fatal(stepErr)
			}
			if avg != 0 {
				t.Fatalf("steady-state Session.Multiply allocates %.2f times per op across %d ranks, want 0", avg, K)
			}
			if reg := cfg.opt.Telemetry; reg != nil {
				// The gate must not pass vacuously: the collectors saw the run.
				s := reg.Snapshot()
				tot := s.Totals()
				if tot.Sends == 0 || tot.SendBytes == 0 {
					t.Fatalf("telemetry recorded no frames: %+v", tot)
				}
				var spans int64
				for _, r := range s.Ranks {
					spans += r.SpanCount
				}
				if spans == 0 {
					t.Fatal("telemetry recorded no spans")
				}
			}
		})
	}
}
