//go:build !race

package spmv

const raceEnabled = false
