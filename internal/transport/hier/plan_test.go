package hier_test

import (
	"testing"

	"stfw/internal/core"
	"stfw/internal/mapping"
	"stfw/internal/netsim"
	"stfw/internal/transport/hier"
	"stfw/internal/vpt"
)

// TestPlanNodeOfMatchesPlacement checks the wrapper's contract: the NodeOf
// function Plan hands back agrees with the machine packed through the
// planned placement, stays in range, and the planned dims factor K.
func TestPlanNodeOfMatchesPlacement(t *testing.T) {
	const K = 64
	m, err := netsim.CrayXC40(K)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSendSets(K)
	for src := 0; src < K; src++ {
		s.Add(src, (src+1)%K, 100)
		s.Add(src, (src+K/2)%K, 10)
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	plan, nodeOf, err := hier.Plan(m, s, vpt.MustNew(8, 8), mapping.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := plan.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != K {
		t.Fatalf("planned dims %v do not factor %d", plan.Dims, K)
	}
	placed, err := m.WithPlacement(plan.Placement)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < K; r++ {
		n := nodeOf(r)
		if n != placed.Node(r) {
			t.Fatalf("nodeOf(%d) = %d, placed machine says %d", r, n, placed.Node(r))
		}
		if n < 0 || n >= m.Topo.Nodes() {
			t.Fatalf("nodeOf(%d) = %d outside [0,%d)", r, n, m.Topo.Nodes())
		}
	}
}
