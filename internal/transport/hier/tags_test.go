package hier_test

import (
	"strings"
	"testing"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/transport/hier"
	"stfw/internal/transport/udpnet"
	"stfw/internal/vpt"
)

// reservingComm is a fake sub-transport claiming a control-tag range.
type reservingComm struct {
	rank, size int
	lo, hi     int
}

func (c *reservingComm) Rank() int                     { return c.rank }
func (c *reservingComm) Size() int                     { return c.size }
func (c *reservingComm) Send(int, int, []byte) error   { return nil }
func (c *reservingComm) Recv(int, int) ([]byte, error) { return nil, nil }
func (c *reservingComm) Barrier() error                { return nil }
func (c *reservingComm) ReservedTags() (lo, hi int)    { return c.lo, c.hi }

func reservingWorld(size, lo, hi int) []runtime.Comm {
	comms := make([]runtime.Comm, size)
	for r := range comms {
		comms[r] = &reservingComm{rank: r, size: size, lo: lo, hi: hi}
	}
	return comms
}

// TestTagCollisionRejected is the tag-space regression test: a
// sub-transport whose reserved control tags alias the application tag span
// (here, the exact span the exchange paths draw stage tags from) must be
// rejected at construction, because an application frame routed over that
// sub-transport would cross-match a control frame.
func TestTagCollisionRejected(t *testing.T) {
	const size = 4
	appLo, appHi := core.AppTagSpan(vpt.MaxDim(size))
	clean := reservingWorld(size, 1<<30, 1<<30+2)
	colliding := reservingWorld(size, core.StageTag(0), core.StageTag(0)+1)

	if _, err := hier.New(hier.Config{
		Inner: clean, Outer: colliding, NodeOf: twoNodes(size),
		AppTagLo: appLo, AppTagHi: appHi,
	}); err == nil {
		t.Fatal("sub-transport reserving a stage tag accepted")
	} else if !strings.Contains(err.Error(), "reserves control tags") {
		t.Fatalf("unexpected rejection: %v", err)
	}

	// The same collision must also be caught under the default span, so a
	// caller that never names the core tag layout is still protected.
	if _, err := hier.New(hier.Config{
		Inner: colliding, Outer: clean, NodeOf: twoNodes(size),
	}); err == nil {
		t.Fatal("colliding reservation accepted under the default span")
	}

	// Disjoint reservations pass with the same checks enabled.
	if _, err := hier.New(hier.Config{
		Inner: clean, Outer: reservingWorld(size, 1<<31-256, 1<<31-254),
		NodeOf: twoNodes(size), AppTagLo: appLo, AppTagHi: appHi,
	}); err != nil {
		t.Fatalf("disjoint reservation rejected: %v", err)
	}
}

// TestMuxReservedTagsUnion: the mux endpoint re-exports its
// sub-transports' control-tag claims as their covering union, so an outer
// composite nesting this world (hier-of-hier) still sees the leaves'
// reservations in its own collision check.
func TestMuxReservedTagsUnion(t *testing.T) {
	const size = 4
	newWorld := func(inner, outer []runtime.Comm) runtime.Comm {
		t.Helper()
		w, err := hier.New(hier.Config{Inner: inner, Outer: outer, NodeOf: twoNodes(size)})
		if err != nil {
			t.Fatal(err)
		}
		return w.Comms()[0]
	}

	// Both sides reserve: the union covers both claims.
	c := newWorld(reservingWorld(size, 1<<30, 1<<30+2), reservingWorld(size, 1<<31-256, 1<<31-254))
	if lo, hi, ok := runtime.ReservedTagsOf(c); !ok || lo != 1<<30 || hi != 1<<31-254 {
		t.Fatalf("union of [1<<30,1<<30+2) and [1<<31-256,1<<31-254): got [%#x,%#x) ok=%v", lo, hi, ok)
	}

	// One side reserves: its claim passes through unchanged.
	c = newWorld(reservingWorld(size, 0, 0), reservingWorld(size, 1<<30, 1<<30+2))
	if lo, hi, ok := runtime.ReservedTagsOf(c); !ok || lo != 1<<30 || hi != 1<<30+2 {
		t.Fatalf("single-side reservation: got [%#x,%#x) ok=%v", lo, hi, ok)
	}

	// Neither side reserves: the mux declares nothing.
	c = newWorld(reservingWorld(size, 0, 0), reservingWorld(size, 0, 0))
	if lo, hi, ok := runtime.ReservedTagsOf(c); ok {
		t.Fatalf("tag-clean subs produced a reservation [%#x,%#x)", lo, hi)
	}

	// The payoff: an outer mux nesting this world rejects the hidden
	// collision the way it would reject the leaf itself.
	nested := make([]runtime.Comm, size)
	w, err := hier.New(hier.Config{Inner: reservingWorld(size, 0, 0), Outer: reservingWorld(size, 0, 0), NodeOf: twoNodes(size)})
	if err != nil {
		t.Fatal(err)
	}
	colliding, err := hier.New(hier.Config{
		Inner:  reservingWorld(size, core.StageTag(0), core.StageTag(0)+1),
		Outer:  reservingWorld(size, 0, 0),
		NodeOf: twoNodes(size),
		// Collision checks are span-vs-subs; the inner world itself is
		// built with an out-of-the-way span so construction succeeds and
		// the colliding claim surfaces one level up.
		AppTagLo: 1 << 28, AppTagHi: 1<<28 + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < size; r++ {
		nested[r] = colliding.Comms()[r]
	}
	if _, err := hier.New(hier.Config{Inner: nested, Outer: w.Comms(), NodeOf: twoNodes(size)}); err == nil {
		t.Fatal("outer mux accepted a nested world whose leaves reserve a stage tag")
	} else if !strings.Contains(err.Error(), "reserves control tags") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

// TestUDPControlTagsOutsideAppSpan ties the layers together: udpnet's
// declared control-tag reservation must lie outside both the core tag
// layout's span and hier's default application ceiling — the property the
// collision check enforces for arbitrary sub-transports.
func TestUDPControlTagsOutsideAppSpan(t *testing.T) {
	w, err := udpnet.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	lo, hi, ok := runtime.ReservedTagsOf(w.Comms()[0])
	if !ok {
		t.Fatal("udpnet does not declare its control tags")
	}
	appLo, appHi := core.AppTagSpan(16)
	if lo < appHi && appLo < hi {
		t.Fatalf("udpnet control tags [%#x,%#x) alias the core tag span [%#x,%#x)", lo, hi, appLo, appHi)
	}
	if lo < hier.DefaultAppTagCeiling {
		t.Fatalf("udpnet control tags [%#x,%#x) fall under the default application ceiling %#x",
			lo, hi, hier.DefaultAppTagCeiling)
	}
	if appHi > hier.DefaultAppTagCeiling {
		t.Fatalf("core tag span [%#x,%#x) exceeds the default application ceiling %#x",
			appLo, appHi, hier.DefaultAppTagCeiling)
	}
}
