package hier

// Cross-sub-transport receive arbitration. A RecvAnyOf whose candidate
// senders all route to one sub-transport delegates to that sub-transport's
// own matcher — the steady state under a planner-aligned placement, where
// every stage's senders live on one side. When candidates span both
// sub-transports the mux cannot block in either one alone, so it arbitrates:
//
//   - a puller goroutine per sub-transport issues the blocking sub-receive
//     for the candidates that side owns, deposits the result in the rank's
//     arrival stash, and exits;
//   - the calling rank waits on the stash and takes the earliest deposited
//     match.
//
// A puller retrieves exactly one frame and terminates: its candidate set is
// a subset of the stage's still-outstanding senders, each of which owes
// exactly one frame under the tag, so the sub-receive always completes
// within the stage. Outstanding pullers are tracked so later receives
// neither double-pull a sender (two pullers racing for one frame) nor
// bypass the stash while a puller could steal their frame. The rank's own
// goroutine only ever blocks in cond.Wait or inside a sub-transport receive
// with the mux lock released — the lock guards stash/pull bookkeeping only,
// never a blocking call (the lockedsend analyzer checks this).

import (
	"fmt"

	"stfw/internal/runtime"
)

// arrival is one frame (or sub-transport error) deposited by a puller and
// not yet claimed by the rank's receive loop.
type arrival struct {
	from    int
	tag     int
	payload []byte
	err     error
}

// pull is one outstanding puller goroutine: the sub-transport it blocks in
// and the candidate senders it may retrieve a frame from.
type pull struct {
	sub     runtime.Comm
	tag     int
	senders []int
}

func (p *pull) covers(from int) bool {
	for _, s := range p.senders {
		if s == from {
			return true
		}
	}
	return false
}

// wait blocks on the arbitration condition until a puller deposits.
func (c *comm) wait() { c.cond.Wait() }

// soleSub returns the single sub-transport owning every candidate, or false
// when they span both sides.
func (c *comm) soleSub(from []int) (runtime.Comm, bool) {
	sub := c.sub(from[0])
	for _, f := range from[1:] {
		if c.sub(f) != sub {
			return nil, false
		}
	}
	return sub, true
}

// tagQuiet reports whether no outstanding pull on the given sub-transport
// uses the tag — the condition under which a direct sub-receive cannot race
// a puller for the same frames.
func (c *comm) tagQuiet(tag int, sub runtime.Comm) bool {
	for _, p := range c.pulls {
		if p.tag == tag && p.sub == sub {
			return false
		}
	}
	return true
}

// takeLocked claims the earliest stashed arrival matching the tag and one
// of the candidate senders. Sub-transport errors deposited under the tag
// are claimed regardless of sender — the failure concerns the whole world,
// not one link.
func (c *comm) takeLocked(tag int, from []int) (int, []byte, bool, error) {
	for i := range c.stash {
		a := &c.stash[i]
		if a.tag != tag {
			continue
		}
		if a.err != nil {
			err := a.err
			sender := a.from
			c.stash = append(c.stash[:i], c.stash[i+1:]...)
			return sender, nil, true, err
		}
		for _, f := range from {
			if f == a.from {
				sender, payload := a.from, a.payload
				c.stash = append(c.stash[:i], c.stash[i+1:]...)
				return sender, payload, true, nil
			}
		}
	}
	return -1, nil, false, nil
}

// launchLocked starts a puller per sub-transport for the candidates not
// already covered by an outstanding same-tag pull on their side.
func (c *comm) launchLocked(tag int, from []int) {
	var innerNeed, outerNeed []int
cand:
	for _, f := range from {
		sub := c.sub(f)
		for _, p := range c.pulls {
			if p.tag == tag && p.sub == sub && p.covers(f) {
				continue cand
			}
		}
		if sub == c.inner {
			innerNeed = append(innerNeed, f)
		} else {
			outerNeed = append(outerNeed, f)
		}
	}
	if len(innerNeed) > 0 {
		c.startPullLocked(c.inner, tag, innerNeed)
	}
	if len(outerNeed) > 0 {
		c.startPullLocked(c.outer, tag, outerNeed)
	}
}

// startPullLocked registers and launches one puller. The blocking
// sub-receive runs outside the mux lock; the deposit re-acquires it.
func (c *comm) startPullLocked(sub runtime.Comm, tag int, senders []int) {
	p := &pull{sub: sub, tag: tag, senders: senders}
	c.pulls = append(c.pulls, p)
	go func() {
		from, payload, err := runtime.RecvAnyOf(sub, tag, senders)
		c.mu.Lock()
		for i, q := range c.pulls {
			if q == p {
				c.pulls = append(c.pulls[:i], c.pulls[i+1:]...)
				break
			}
		}
		c.stash = append(c.stash, arrival{from: from, tag: tag, payload: payload, err: err})
		c.cond.Broadcast()
		c.mu.Unlock()
	}()
}

// RecvAnyOf implements runtime.AnyReceiver across the mux.
func (c *comm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	if len(from) == 0 {
		return -1, nil, fmt.Errorf("hier: rank %d RecvAnyOf with no candidate senders", c.rank)
	}
	for _, f := range from {
		if f < 0 || f >= c.size {
			return -1, nil, fmt.Errorf("hier: recv from rank %d out of range [0,%d)", f, c.size)
		}
	}
	c.mu.Lock()
	if sender, payload, ok, err := c.takeLocked(tag, from); ok {
		c.mu.Unlock()
		return sender, payload, err
	}
	if sub, ok := c.soleSub(from); ok && c.tagQuiet(tag, sub) {
		// Fast path: every candidate on one side and no puller to race —
		// the sub-matcher's native arrival order applies directly.
		c.mu.Unlock()
		return runtime.RecvAnyOf(sub, tag, from)
	}
	defer c.mu.Unlock()
	for {
		c.launchLocked(tag, from)
		c.wait()
		if sender, payload, ok, err := c.takeLocked(tag, from); ok {
			return sender, payload, err
		}
	}
}

// Recv blocks for the exact (from, tag) frame. When an outstanding puller
// could retrieve that frame the receive is served through the stash;
// otherwise it goes straight to the owning sub-transport.
func (c *comm) Recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= c.size {
		return nil, fmt.Errorf("hier: recv from rank %d out of range [0,%d)", from, c.size)
	}
	sub := c.sub(from)
	c.mu.Lock()
	for {
		for i := range c.stash {
			a := &c.stash[i]
			if a.tag != tag {
				continue
			}
			if a.err == nil && a.from != from {
				continue
			}
			payload, err := a.payload, a.err
			c.stash = append(c.stash[:i], c.stash[i+1:]...)
			c.mu.Unlock()
			return payload, err
		}
		covered := false
		for _, p := range c.pulls {
			if p.tag == tag && p.sub == sub && p.covers(from) {
				covered = true
				break
			}
		}
		if !covered {
			c.mu.Unlock()
			return sub.Recv(from, tag)
		}
		c.wait()
	}
}
