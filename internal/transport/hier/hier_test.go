package hier_test

import (
	"bytes"
	"fmt"
	"testing"

	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/hier"
	"stfw/internal/transport/tcpnet"
	"stfw/internal/transport/tptest"
	"stfw/internal/transport/udpnet"
)

// twoNodes splits a world into two contiguous node halves (the smaller
// second when size is odd), so every suite size exercises both sides of
// the mux: size 2 is all-inter-node, sizes 3+ mix intra and inter pairs.
func twoNodes(size int) func(int) int {
	half := (size + 1) / 2
	return func(r int) int {
		if r < half {
			return 0
		}
		return 1
	}
}

func chanFactory(size int) ([]runtime.Comm, func(), error) {
	w, err := chanpt.NewWorld(size, 4)
	if err != nil {
		return nil, nil, err
	}
	return w.Comms(), w.Close, nil
}

func udpFactory(size int) ([]runtime.Comm, func(), error) {
	w, err := udpnet.NewWorld(size)
	if err != nil {
		return nil, nil, err
	}
	return w.Comms(), w.Close, nil
}

func tcpFactory(size int) ([]runtime.Comm, func(), error) {
	w, err := tcpnet.NewWorld(size)
	if err != nil {
		return nil, nil, err
	}
	return w.Comms(), w.Close, nil
}

// mux assembles hier endpoints over two sub-worlds under the twoNodes
// split; tptest.Composite turns it into a factory.
func mux(subs ...[]runtime.Comm) ([]runtime.Comm, error) {
	w, err := hier.New(hier.Config{Inner: subs[0], Outer: subs[1], NodeOf: twoNodes(len(subs[0]))})
	if err != nil {
		return nil, err
	}
	return w.Comms(), nil
}

// hier retains payloads (the inner chanpt side hands the slice to the
// receiver), validates candidate lists itself, and close (of the
// sub-worlds, in reverse order) wakes blocked receivers. Arrival order
// across two sub-transports is not deterministic, so the strict-order
// subtest stays off.
var muxOpts = tptest.Options{
	WantSendRetains: true,
	TestOutOfRange:  true,
	TestClose:       true,
}

// TestTransportConformance runs the shared matcher-contract suite over the
// composite transport in its canonical configuration: chanpt carrying
// intra-node pairs, udpnet carrying inter-node pairs.
func TestTransportConformance(t *testing.T) {
	tptest.Run(t, tptest.Composite(mux, chanFactory, udpFactory), muxOpts)
}

// TestTransportConformanceTCPOuter swaps the wire side for tcpnet: the mux
// must not care which transport owns which side.
func TestTransportConformanceTCPOuter(t *testing.T) {
	tptest.Run(t, tptest.Composite(mux, chanFactory, tcpFactory), muxOpts)
}

// TestTransportConformanceFaultDelay re-runs the contract suite with every
// send delayed — the contract-preserving fault class — so cross-sub
// arbitration is exercised under scrambled goroutine interleavings.
func TestTransportConformanceFaultDelay(t *testing.T) {
	factory := tptest.WithFaults(tptest.Composite(mux, chanFactory, udpFactory),
		tptest.FaultConfig{Seed: 1, Delay: 1})
	tptest.Run(t, factory, tptest.Options{
		WantSendRetains: true,
	})
}

// TestTransportConformanceFaultReorder runs the suite under adversarial
// receive service order on top of the mux.
func TestTransportConformanceFaultReorder(t *testing.T) {
	factory := tptest.WithFaults(tptest.Composite(mux, chanFactory, udpFactory),
		tptest.FaultConfig{Seed: 3, Reorder: 0.5})
	tptest.Run(t, factory, tptest.Options{
		WantSendRetains: true,
	})
}

// buildMixed assembles a size-rank composite world (chanpt inner, udpnet
// outer, twoNodes split) directly, for the targeted semantics tests below.
func buildMixed(t *testing.T, size int) ([]runtime.Comm, func()) {
	t.Helper()
	cw, err := chanpt.NewWorld(size, 4)
	if err != nil {
		t.Fatal(err)
	}
	uw, err := udpnet.NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	w, err := hier.New(hier.Config{Inner: cw.Comms(), Outer: uw.Comms(), NodeOf: twoNodes(size)})
	if err != nil {
		uw.Close()
		t.Fatal(err)
	}
	return w.Comms(), func() { uw.Close(); cw.Close() }
}

// TestCrossSubArbitration drives RecvAnyOf with candidates spanning both
// sub-transports and checks every frame is delivered exactly once with its
// payload intact, whichever side it traveled.
func TestCrossSubArbitration(t *testing.T) {
	const size = 6 // nodes {0,1,2} and {3,4,5}
	comms, done := buildMixed(t, size)
	defer done()
	senders := []int{1, 2, 3, 4, 5}
	for _, s := range senders {
		if err := comms[s].Send(0, 11, []byte{byte(s)}); err != nil {
			t.Fatal(err)
		}
	}
	got := map[int]bool{}
	for range senders {
		from, payload, err := runtime.RecvAnyOf(comms[0], 11, senders)
		if err != nil {
			t.Fatal(err)
		}
		if got[from] {
			t.Fatalf("sender %d delivered twice", from)
		}
		if len(payload) != 1 || payload[0] != byte(from) {
			t.Fatalf("payload %x from %d", payload, from)
		}
		got[from] = true
	}
}

// TestRecvServedThroughStash pins the puller-coverage rule: after a
// cross-sub RecvAnyOf leaves a puller parked on the inner side, a targeted
// Recv for a sender that puller covers must be served through the arrival
// stash (the puller owns the sub-receive), not by a racing direct receive.
func TestRecvServedThroughStash(t *testing.T) {
	const size = 4 // nodes {0,1} and {2,3}
	comms, done := buildMixed(t, size)
	defer done()
	// Only the outer-side sender has a frame queued; the mixed candidate
	// list forces a puller onto the inner side for rank 1.
	if err := comms[2].Send(0, 5, []byte("outer")); err != nil {
		t.Fatal(err)
	}
	from, payload, err := runtime.RecvAnyOf(comms[0], 5, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if from != 2 || string(payload) != "outer" {
		t.Fatalf("got %q from %d, want the outer frame", payload, from)
	}
	// The inner puller for rank 1 is still parked. Its frame must reach
	// both a targeted Recv and a frame sent later under another tag must
	// stay unaffected.
	if err := comms[1].Send(0, 5, []byte("inner")); err != nil {
		t.Fatal(err)
	}
	got, err := comms[0].Recv(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("inner")) {
		t.Fatalf("stash-served recv got %q", got)
	}
}

// TestWorldSemantics runs a small collective over the mux: a ring exchange
// crossing the node boundary twice plus a barrier, under runtime.Run.
func TestWorldSemantics(t *testing.T) {
	const size = 6
	comms, done := buildMixed(t, size)
	defer done()
	err := runtime.Run(comms, func(c runtime.Comm) error {
		right := (c.Rank() + 1) % size
		left := (c.Rank() + size - 1) % size
		if err := c.Send(right, 0, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		p, err := c.Recv(left, 0)
		if err != nil {
			return err
		}
		if int(p[0]) != left {
			return fmt.Errorf("got token %d from %d", p[0], left)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConfigValidation covers the constructor's shape checks.
func TestConfigValidation(t *testing.T) {
	cw, err := chanpt.NewWorld(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	cw2, err := chanpt.NewWorld(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cw2.Close()
	nodeOf := twoNodes(4)
	if _, err := hier.New(hier.Config{NodeOf: nodeOf}); err == nil {
		t.Error("empty inner world accepted")
	}
	if _, err := hier.New(hier.Config{Inner: cw.Comms(), Outer: cw2.Comms(), NodeOf: nodeOf}); err == nil {
		t.Error("mismatched world sizes accepted")
	}
	if _, err := hier.New(hier.Config{Inner: cw.Comms(), Outer: cw.Comms()}); err == nil {
		t.Error("nil NodeOf accepted")
	}
	if _, err := hier.New(hier.Config{Inner: cw.Comms(), Outer: cw.Comms(), NodeOf: nodeOf, AppTagLo: 5, AppTagHi: 5}); err == nil {
		t.Error("empty tag span accepted")
	}
	rev := cw.Comms()
	rev[0], rev[1] = rev[1], rev[0]
	if _, err := hier.New(hier.Config{Inner: rev, Outer: cw.Comms(), NodeOf: nodeOf}); err == nil {
		t.Error("permuted endpoint slice accepted")
	}
}

// hintRecorder is a fake sub-comm that records the traffic hints and sends
// routed to it.
type hintRecorder struct {
	rank, size int
	hints      [][]runtime.StageTraffic
	sent       []int
}

func (h *hintRecorder) Rank() int { return h.rank }
func (h *hintRecorder) Size() int { return h.size }
func (h *hintRecorder) Send(to, tag int, payload []byte) error {
	h.sent = append(h.sent, to)
	return nil
}
func (h *hintRecorder) Recv(from, tag int) ([]byte, error)        { return nil, nil }
func (h *hintRecorder) Barrier() error                            { return nil }
func (h *hintRecorder) HintTraffic(stages []runtime.StageTraffic) { h.hints = append(h.hints, stages) }

func fakeWorld(size int) ([]runtime.Comm, []*hintRecorder) {
	comms := make([]runtime.Comm, size)
	recs := make([]*hintRecorder, size)
	for r := range comms {
		recs[r] = &hintRecorder{rank: r, size: size}
		comms[r] = recs[r]
	}
	return comms, recs
}

// TestHintFanout checks the TrafficHinter seam composes: each stage's
// per-peer entries reach only the sub-transport owning those pairs, Tag
// and Dim survive, stages with no traffic on a side are dropped there, and
// a repeated hint with the same backing slice re-forwards the same split
// slices (so pointer-dedup in the sub-transport still works).
func TestHintFanout(t *testing.T) {
	const size = 4 // nodes {0,1} and {2,3}
	innerComms, innerRecs := fakeWorld(size)
	outerComms, outerRecs := fakeWorld(size)
	w, err := hier.New(hier.Config{Inner: innerComms, Outer: outerComms, NodeOf: twoNodes(size)})
	if err != nil {
		t.Fatal(err)
	}
	c0 := w.Comms()[0]
	stages := []runtime.StageTraffic{
		{Tag: 100, Dim: 0, // intra-node stage: rank 0 <-> rank 1
			Sends: []runtime.PeerTraffic{{Peer: 1, Frames: 1}},
			Recvs: []runtime.PeerTraffic{{Peer: 1, Frames: 1}}},
		{Tag: 101, Dim: 1, // inter-node stage: rank 0 <-> rank 2
			Sends: []runtime.PeerTraffic{{Peer: 2, Frames: 1, Bytes: 64}},
			Recvs: []runtime.PeerTraffic{{Peer: 2, Frames: 1}}},
	}
	runtime.HintTraffic(c0, stages)
	in, out := innerRecs[0], outerRecs[0]
	if len(in.hints) != 1 || len(out.hints) != 1 {
		t.Fatalf("hint calls inner=%d outer=%d, want 1 each", len(in.hints), len(out.hints))
	}
	if len(in.hints[0]) != 1 || in.hints[0][0].Tag != 100 || in.hints[0][0].Dim != 0 {
		t.Fatalf("inner hint %+v, want only the dim-0 stage", in.hints[0])
	}
	if len(out.hints[0]) != 1 || out.hints[0][0].Tag != 101 || out.hints[0][0].Dim != 1 {
		t.Fatalf("outer hint %+v, want only the dim-1 stage", out.hints[0])
	}
	if out.hints[0][0].Sends[0].Bytes != 64 {
		t.Fatalf("peer traffic not forwarded verbatim: %+v", out.hints[0][0].Sends[0])
	}
	// Repeated hint with the same backing slice: the sub-transports must
	// see the same backing slices again, or their pointer dedup breaks.
	runtime.HintTraffic(c0, stages)
	if len(in.hints) != 2 || &in.hints[0][0] != &in.hints[1][0] {
		t.Error("repeated hint did not re-forward the cached inner split")
	}
	if len(out.hints) != 2 || &out.hints[0][0] != &out.hints[1][0] {
		t.Error("repeated hint did not re-forward the cached outer split")
	}
}

// TestSendRouting checks the data plane's pair rule directly: intra-node
// destinations reach the inner fake, inter-node ones the outer fake.
func TestSendRouting(t *testing.T) {
	const size = 4
	innerComms, innerRecs := fakeWorld(size)
	outerComms, outerRecs := fakeWorld(size)
	w, err := hier.New(hier.Config{Inner: innerComms, Outer: outerComms, NodeOf: twoNodes(size)})
	if err != nil {
		t.Fatal(err)
	}
	c0 := w.Comms()[0]
	for to := 1; to < size; to++ {
		if err := c0.Send(to, 9, nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(innerRecs[0].sent) != 1 || innerRecs[0].sent[0] != 1 {
		t.Errorf("inner sends = %v, want [1]", innerRecs[0].sent)
	}
	if len(outerRecs[0].sent) != 2 || outerRecs[0].sent[0] != 2 || outerRecs[0].sent[1] != 3 {
		t.Errorf("outer sends = %v, want [2 3]", outerRecs[0].sent)
	}
	if err := c0.Send(size, 9, nil); err == nil {
		t.Error("out-of-range send accepted")
	}
}
