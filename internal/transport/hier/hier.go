// Package hier implements a hierarchical composite transport: one
// runtime.Comm multiplexer over two sub-transports, an "inner" one carrying
// intra-node traffic (typically chanpt's in-process matcher) and an "outer"
// one carrying inter-node traffic (typically udpnet or tcpnet). The paper's
// virtual process topology makes the split natural: stage d of the
// store-and-forward exchange only talks to dimension-d neighbors, so when
// the rank→node placement aligns the node boundary with a digit split of
// the VPT (see Plan), every inner-dimension stage runs entirely over shared
// memory and only the outer dimensions touch the wire.
//
// Routing is by endpoint pair, not by tag arithmetic: a frame between ranks
// a and b travels on the inner sub-transport exactly when NodeOf(a) ==
// NodeOf(b). The rule is total (stage tags, census tags, the direct tag and
// any future traffic all route the same way) and it preserves the Comm
// contract's per-(sender, receiver, tag) FIFO, because a fixed pair always
// uses exactly one sub-transport. The stage→dimension metadata surfaced by
// the schedule IR (core.ScheduleStage.Dim, runtime.StageTraffic.Dim) is
// what ties stages to sub-transports: the planner picks the factorization
// and placement so each dimension's pairs fall wholly on one side, and the
// traffic-hint fan-out forwards each stage's entries to the sub-transport
// that owns them, so a schedule-aware sub-transport (udpnet) sees exactly
// the frames it will carry — never the frames the other side carries.
//
// The optional runtime extensions compose across the mux:
//
//   - AnyReceiver: RecvAnyOf arbitrates across sub-transports when the
//     candidate senders span both — a puller goroutine per sub-transport
//     feeds a small arrival stash, and the caller takes the earliest
//     arrival (see recv.go). Candidates confined to one sub-transport
//     delegate directly, preserving the sub-matcher's native arrival order
//     at zero overhead (the planner-aligned steady state).
//   - SendRetainer: the mux retains payloads when either sub-transport
//     does, the conservative answer engines need for buffer reuse.
//   - TrafficHinter: hints fan out per sub-transport, filtered by the same
//     pair rule the data plane routes by.
//   - LinkStatsSource: per-link wire snapshots merge across sub-transports
//     (runtime.LinkStats.Add), so telemetry attribution survives the mux.
//
// Construction checks tag-space safety: a sub-transport that reserves
// control tags (runtime.TagReserver — udpnet's wire barrier) must reserve
// them outside the application tag span, otherwise an application frame
// routed over that sub-transport could alias a control frame.
package hier

import (
	"fmt"
	"sort"
	"sync"

	"stfw/internal/runtime"
)

// DefaultAppTagCeiling bounds the application tag span assumed when the
// Config does not declare one: every exchange-path tag (stage, census,
// direct — see core.AppTagSpan) lies far below it, and reserved transport
// control tags (udpnet's) lie far above.
const DefaultAppTagCeiling = 1 << 20

// Config assembles a composite world from two fully-built sub-worlds.
type Config struct {
	// Inner carries intra-node pairs; one endpoint per rank, index = rank,
	// spanning the full world size (the pair routing rule guarantees only
	// same-node pairs ever use it).
	Inner []runtime.Comm
	// Outer carries inter-node pairs (and the world barrier); same shape.
	Outer []runtime.Comm
	// NodeOf maps a rank to its node; pairs with equal nodes route inner.
	NodeOf func(rank int) int
	// AppTagLo/AppTagHi declare the half-open tag span application traffic
	// may use; both zero selects [0, DefaultAppTagCeiling). New fails if a
	// sub-transport reserves control tags inside the span.
	AppTagLo, AppTagHi int
}

// World is the composite world: one mux endpoint per rank.
type World struct {
	size  int
	comms []runtime.Comm
}

// New validates the configuration and builds the mux endpoints. The
// sub-worlds are not owned: closing them (and their sockets) stays the
// caller's responsibility, in reverse construction order.
func New(cfg Config) (*World, error) {
	size := len(cfg.Inner)
	if size == 0 {
		return nil, fmt.Errorf("hier: empty inner world")
	}
	if len(cfg.Outer) != size {
		return nil, fmt.Errorf("hier: inner world has %d ranks, outer has %d", size, len(cfg.Outer))
	}
	if cfg.NodeOf == nil {
		return nil, fmt.Errorf("hier: NodeOf is required")
	}
	appLo, appHi := cfg.AppTagLo, cfg.AppTagHi
	if appLo == 0 && appHi == 0 {
		appLo, appHi = 0, DefaultAppTagCeiling
	}
	if appLo >= appHi {
		return nil, fmt.Errorf("hier: empty application tag span [%#x,%#x)", appLo, appHi)
	}
	w := &World{size: size, comms: make([]runtime.Comm, size)}
	for r := 0; r < size; r++ {
		for _, s := range []struct {
			side string
			sub  runtime.Comm
		}{{"inner", cfg.Inner[r]}, {"outer", cfg.Outer[r]}} {
			side, sub := s.side, s.sub
			if sub == nil {
				return nil, fmt.Errorf("hier: rank %d has no %s endpoint", r, side)
			}
			if sub.Rank() != r || sub.Size() != size {
				return nil, fmt.Errorf("hier: rank %d %s endpoint reports rank %d of %d, want %d of %d",
					r, side, sub.Rank(), sub.Size(), r, size)
			}
			if lo, hi, ok := runtime.ReservedTagsOf(sub); ok && lo < appHi && appLo < hi {
				return nil, fmt.Errorf("hier: rank %d %s sub-transport reserves control tags [%#x,%#x), inside the application span [%#x,%#x)",
					r, side, lo, hi, appLo, appHi)
			}
		}
		c := &comm{
			rank:   r,
			size:   size,
			node:   cfg.NodeOf(r),
			nodeOf: cfg.NodeOf,
			inner:  cfg.Inner[r],
			outer:  cfg.Outer[r],
		}
		c.retains = runtime.SendRetains(c.inner) || runtime.SendRetains(c.outer)
		c.cond = sync.NewCond(&c.mu)
		w.comms[r] = c
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comms returns one mux endpoint per rank, index = rank.
func (w *World) Comms() []runtime.Comm { return w.comms }

// Run executes fn on every rank of this world.
func (w *World) Run(fn runtime.RankFunc) error { return runtime.Run(w.comms, fn) }

// comm is one rank's mux endpoint.
type comm struct {
	rank, size int
	node       int
	nodeOf     func(int) int
	inner      runtime.Comm
	outer      runtime.Comm
	retains    bool

	// Cross-sub arbitration state (recv.go): arrived-but-unclaimed frames
	// and the outstanding puller goroutines feeding them.
	mu    sync.Mutex
	cond  *sync.Cond
	stash []arrival
	pulls []*pull

	// Hint fan-out cache: a repeated HintTraffic with the same backing
	// slice re-forwards the same split slices, so sub-transports that dedup
	// by pointer (udpnet) see a no-op too.
	lastHintPtr *runtime.StageTraffic
	lastHintLen int
	hintInner   []runtime.StageTraffic
	hintOuter   []runtime.StageTraffic
}

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.size }

// sub returns the sub-transport that owns the pair (c.rank, peer).
func (c *comm) sub(peer int) runtime.Comm {
	if c.nodeOf(peer) == c.node {
		return c.inner
	}
	return c.outer
}

// SendRetains reports whether a payload handed to Send may stay referenced:
// true when either sub-transport retains (the route is per-destination, so
// only the union answer is safe for a caller that reuses buffers).
func (c *comm) SendRetains() bool { return c.retains }

func (c *comm) Send(to, tag int, payload []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("hier: send to rank %d out of range [0,%d)", to, c.size)
	}
	return c.sub(to).Send(to, tag, payload)
}

// Barrier delegates to the outer sub-transport, which spans all ranks (a
// world barrier on either side is a world barrier; the outer one is chosen
// so multi-process worlds synchronize over the wire).
func (c *comm) Barrier() error { return c.outer.Barrier() }

// ReservedTags implements runtime.TagReserver for the mux itself: the
// union of the sub-transports' reservations, as the smallest half-open
// span covering both. Without this, nesting one hier world inside another
// (hier-of-hier topologies) would hide the leaves' control tags from the
// outer mux's collision check — the inner mux is just another Comm there,
// and a non-reserving Comm is assumed tag-clean. Reservations sit far
// above the application ceiling, so covering the gap between two disjoint
// claims over-approximates harmlessly. lo >= hi (here 0, 0) means neither
// sub reserves.
func (c *comm) ReservedTags() (lo, hi int) {
	iLo, iHi, iOK := runtime.ReservedTagsOf(c.inner)
	oLo, oHi, oOK := runtime.ReservedTagsOf(c.outer)
	switch {
	case iOK && oOK:
		return min(iLo, oLo), max(iHi, oHi)
	case iOK:
		return iLo, iHi
	case oOK:
		return oLo, oHi
	}
	return 0, 0
}

// HintTraffic implements runtime.TrafficHinter: each stage's per-peer
// entries are filtered by the pair rule and forwarded to the sub-transport
// that will actually carry them, preserving the stage's Tag and Dim. Under
// a planner-aligned placement every stage lands wholly on the sub-transport
// owning its dimension; a misaligned placement splits a stage's entries but
// stays correct — each side still sees exactly the frames it will carry.
func (c *comm) HintTraffic(stages []runtime.StageTraffic) {
	if len(stages) == 0 {
		return
	}
	if c.lastHintPtr != &stages[0] || c.lastHintLen != len(stages) {
		c.hintInner = c.splitHint(stages, true)
		c.hintOuter = c.splitHint(stages, false)
		c.lastHintPtr, c.lastHintLen = &stages[0], len(stages)
	}
	runtime.HintTraffic(c.inner, c.hintInner)
	runtime.HintTraffic(c.outer, c.hintOuter)
}

// splitHint projects a traffic summary onto one side of the mux, dropping
// stages with no traffic there.
func (c *comm) splitHint(stages []runtime.StageTraffic, wantInner bool) []runtime.StageTraffic {
	var out []runtime.StageTraffic
	for _, st := range stages {
		f := runtime.StageTraffic{Tag: st.Tag, Dim: st.Dim}
		for _, pt := range st.Sends {
			if (c.nodeOf(pt.Peer) == c.node) == wantInner {
				f.Sends = append(f.Sends, pt)
			}
		}
		for _, pt := range st.Recvs {
			if (c.nodeOf(pt.Peer) == c.node) == wantInner {
				f.Recvs = append(f.Recvs, pt)
			}
		}
		if len(f.Sends) > 0 || len(f.Recvs) > 0 {
			out = append(out, f)
		}
	}
	return out
}

// LinkStats implements runtime.LinkStatsSource: the union of both
// sub-transports' per-link snapshots, folded per peer so a link that saw
// traffic on both sides (possible only under a placement change between
// snapshots) still reports one row.
func (c *comm) LinkStats() []runtime.LinkStats {
	byPeer := make(map[int]runtime.LinkStats)
	for _, side := range [2]runtime.Comm{c.inner, c.outer} {
		for _, ls := range runtime.LinkStatsOf(side) {
			got, ok := byPeer[ls.Peer]
			if !ok {
				byPeer[ls.Peer] = ls
				continue
			}
			got.Add(ls)
			byPeer[ls.Peer] = got
		}
	}
	if len(byPeer) == 0 {
		return nil
	}
	out := make([]runtime.LinkStats, 0, len(byPeer))
	for _, ls := range byPeer {
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
