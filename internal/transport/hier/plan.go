package hier

import (
	"stfw/internal/core"
	"stfw/internal/mapping"
	"stfw/internal/netsim"
	"stfw/internal/vpt"
)

// Plan runs the dimension-assignment planner (mapping.PlanDims) for a
// hierarchical deployment on machine m and returns the chosen plan together
// with the NodeOf function a Config needs: ranks are packed onto nodes
// through the planned placement, so the composite transport's notion of
// "same node" is exactly the one the model used to justify the split.
func Plan(m *netsim.Machine, s *core.SendSets, base *vpt.Topology, opt mapping.Options) (*mapping.DimPlan, func(int) int, error) {
	p, err := mapping.PlanDims(m, s, base, opt)
	if err != nil {
		return nil, nil, err
	}
	placed, err := m.WithPlacement(p.Placement)
	if err != nil {
		return nil, nil, err
	}
	return p, placed.Node, nil
}
