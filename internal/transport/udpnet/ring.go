package udpnet

import "sync"

// PacketRing is a preallocated pool of fixed-size packet buffers shared by
// a world's send, receive, and ack paths. Every datagram — outbound packets
// under construction, window slots awaiting acks, inbound recvmmsg
// buffers, out-of-order stash entries — lives in a ring buffer, so the
// steady state of a long exchange loop performs no per-packet allocation:
// buffers only get minted when the preallocated set is exhausted (a burst
// beyond the expected working set) and are retained afterwards.
//
// Ownership is single-holder, like the msg frame arena: Get transfers the
// buffer to the caller, and exactly one Put returns it. Using a buffer
// after Put, or releasing it twice, corrupts an unrelated packet — the
// stfwlint framepool analyzer checks the same discipline here as for
// msg.GetFrame/PutFrame.
type PacketRing struct {
	mu   sync.Mutex
	free [][]byte

	bufSize int
	minted  int // buffers ever created, preallocation included
	gets    int64
	puts    int64
}

// RingStats is a snapshot of a ring's allocation behaviour; tests assert
// Minted stays flat across steady-state iterations.
type RingStats struct {
	// Minted is the total number of buffers ever created.
	Minted int
	// Outstanding is the number of buffers currently held by callers.
	Outstanding int
	// Gets and Puts count ownership transfers.
	Gets, Puts int64
}

// NewPacketRing creates a ring of n preallocated buffers of bufSize bytes.
func NewPacketRing(n, bufSize int) *PacketRing {
	r := &PacketRing{free: make([][]byte, n), bufSize: bufSize, minted: n}
	backing := make([]byte, n*bufSize)
	for i := range r.free {
		r.free[i] = backing[i*bufSize : i*bufSize : (i+1)*bufSize]
	}
	return r
}

// Get transfers a zero-length buffer with the ring's full capacity to the
// caller. It never blocks: an empty free list mints a fresh buffer, which
// joins the ring on Put (the ring grows to the true working set and then
// stops allocating).
func (r *PacketRing) Get() []byte {
	r.mu.Lock()
	r.gets++
	if n := len(r.free); n > 0 {
		b := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		r.mu.Unlock()
		return b
	}
	r.minted++
	r.mu.Unlock()
	return make([]byte, 0, r.bufSize)
}

// Put returns a buffer obtained from Get. The caller must not retain any
// reference to it afterwards.
func (r *PacketRing) Put(b []byte) {
	if cap(b) != r.bufSize {
		// A foreign or truncated buffer would poison the ring; this only
		// happens on a caller bug, so fail loudly.
		panic("udpnet: PacketRing.Put of foreign buffer")
	}
	r.mu.Lock()
	r.puts++
	r.free = append(r.free, b[:0])
	r.mu.Unlock()
}

// Stats returns a snapshot of the ring counters.
func (r *PacketRing) Stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingStats{
		Minted:      r.minted,
		Outstanding: r.minted - len(r.free),
		Gets:        r.gets,
		Puts:        r.puts,
	}
}
