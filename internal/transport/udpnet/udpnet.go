// Package udpnet implements the runtime.Comm interface over UDP sockets
// with schedule-driven batching and zero-speculation flow control. It is
// the transport-level half of the paper's thesis: once communication is
// regularized into a schedule of per-stage neighbor frames, the transport
// no longer has to speculate — it knows exactly which frames a stage will
// move, so it can coalesce them into large datagrams, batch them through
// single syscalls (sendmmsg/recvmmsg where available), and acknowledge at
// stage completion instead of per packet.
//
// Reliability: UDP drops, duplicates, and reorders, so each directed link
// carries its own sequence-numbered packet stream under a fixed sliding
// window (credits). Receivers process packets strictly in sequence order,
// stash out-of-order arrivals, and report progress through cumulative acks
// with a selective-ack bitmap; senders retransmit on timeout or on a gap
// report. In-order packet processing plus per-link frame counters give the
// Comm contract's per-(sender, receiver, tag) FIFO for free.
//
// Flow control is zero-speculation when the engine shares its schedule:
// runtime.TrafficHinter installs per-stage expected frame counts per
// neighbor, and the receiver then suppresses acks until a stage's inbound
// set from that neighbor is complete (bounded by liveness rules: an ack is
// forced when half the window is unacked or a few milliseconds pass, so
// stale or missing hints degrade throughput, never correctness).
//
// All packet buffers come from a preallocated PacketRing, so the steady
// state of a long exchange loop allocates nothing on the packet path.
//
// A World may own every rank (NewWorld, single-process loopback) or a
// subset (NewGroup, multi-process runs driven by an external launcher
// that distributes sockets and addresses). The barrier runs over the
// reliable data path itself using reserved control tags, so it works
// across processes.
package udpnet

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"stfw/internal/msg"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
)

const (
	// rto is the retransmission timeout for unacked packets. Loopback
	// round trips are microseconds; 15ms keeps spurious resends rare
	// while bounding loss-recovery latency.
	rto = 15 * time.Millisecond
	// timerTick is the retransmit scan period.
	timerTick = 5 * time.Millisecond
	// ackMaxDelay bounds ack suppression: a dirty link acks at the next
	// receive batch once this much time passed since its last ack, so
	// hint-driven suppression can never stall a credit-blocked sender
	// past one resend interval.
	ackMaxDelay = 2 * time.Millisecond
	// fastResendGap suppresses duplicate gap-triggered resends from
	// consecutive acks carrying the same bitmap.
	fastResendGap = 2 * time.Millisecond

	// recvBatchMax is the recvmmsg batch width.
	recvBatchMax = 16
	// sendBatchMax is the sendmmsg batch width.
	sendBatchMax = 32
)

// Control tags reserved for the wire barrier. Application tags must stay
// below this range.
const (
	ctrlEnter   = 0x7fffff00
	ctrlRelease = 0x7fffff01
)

// Option configures a World.
type Option func(*options)

type options struct {
	loss        float64
	seed        int64
	noBatchIO   bool
	ringSize    int
	noLinkStats bool
}

// WithLoss injects packet loss: every outbound datagram (data and ack) is
// independently dropped with probability p before the socket write, from a
// per-rank PRNG derived from seed. The reliability layer must recover;
// tests use this to prove resend correctness.
func WithLoss(p float64, seed int64) Option {
	return func(o *options) { o.loss, o.seed = p, seed }
}

// WithoutBatchIO forces the portable one-datagram-per-syscall path even
// where sendmmsg/recvmmsg are available, so both code paths stay tested.
func WithoutBatchIO() Option {
	return func(o *options) { o.noBatchIO = true }
}

// WithRingSize overrides the packet ring preallocation (default 256).
func WithRingSize(n int) Option {
	return func(o *options) { o.ringSize = n }
}

// WithoutLinkStats disables the per-link wire metrics (on by default):
// every counter hook becomes a nil-receiver no-op and comm.LinkStats
// returns nil. Exists so the cost of the metrics themselves can be
// measured; there is no other reason to turn them off.
func WithoutLinkStats() Option {
	return func(o *options) { o.noLinkStats = true }
}

// Stats aggregates a world's transport counters across its local ranks.
type Stats struct {
	// Batches counts sender drain passes that hit the wire; BatchDgrams
	// counts the datagrams they carried. BatchDgrams/Batches is the
	// realized coalescing factor.
	Batches, BatchDgrams int64
	// DataSent counts first transmissions of data packets; Resends counts
	// retransmissions (timeout or gap-triggered).
	DataSent, Resends int64
	// AcksSent and AcksSuppressed count the receiver's ack decisions;
	// StageAcks is the subset of sent acks triggered by a hinted stage
	// completing (proof the zero-speculation path is active).
	AcksSent, AcksSuppressed, StageAcks int64
	// CreditStalls counts drain passes that left sealed packets queued
	// because the peer's window was exhausted.
	CreditStalls int64
	// Dups counts duplicate or out-of-window packets dropped; Malformed
	// counts datagrams that failed to parse.
	Dups, Malformed int64
	// InjectedDrops counts packets discarded by WithLoss; SendErrs counts
	// datagrams the socket refused (treated as drops, recovered by
	// resend).
	InjectedDrops, SendErrs int64
}

type worldStats struct {
	batches, batchDgrams, dataSent, resends           atomic.Int64
	acksSent, acksSuppressed, stageAcks, creditStalls atomic.Int64
	dups, malformed, injectedDrops, sendErrs          atomic.Int64
}

// inbox is one rank's receive-side matcher: undelivered frames in arrival
// order, same discipline as tcpnet's.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames []inFrame
	closed bool
}

type inFrame struct {
	from    int
	tag     int
	payload []byte
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(f inFrame) bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return false
	}
	ib.frames = append(ib.frames, f)
	ib.cond.Broadcast()
	return true
}

func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// pop removes frame i; the caller holds ib.mu.
func (ib *inbox) pop(i int) []byte {
	payload := ib.frames[i].payload
	ib.frames = append(ib.frames[:i], ib.frames[i+1:]...)
	return payload
}

// outItem is one entry in a rank's transmit queue: either a data packet
// identified by (link, seq) — revalidated against the window under the
// link lock at send time, so a stale entry for an acked packet is a no-op
// — or an ack flush request for a receive link.
type outItem struct {
	sl  *sendLink
	seq uint32
	rl  *recvLink
}

// outQueue feeds a rank's sender goroutine.
//
// Lock order: sendLink.mu / recvLink.mu before outQueue.mu. The sender
// copies the queue out under out.mu and releases it before touching any
// link, so enqueue paths may hold a link lock.
type outQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []outItem
	flush  []*sendLink
	closed bool
}

// barState is one local rank's wire-barrier progress. Rank 0 coordinates:
// every other rank sends a ctrlEnter frame and waits for a ctrlRelease;
// rank 0 waits for size-1 enters per phase, then its own application
// goroutine sends the releases (the receiver goroutine never sends, so it
// can never deadlock on flow control).
type barState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	enters   int // rank 0: total ctrlEnter frames received
	releases int // others: total ctrlRelease frames received
	phase    int // barriers completed by this rank
}

// rankState is everything one local rank owns: its socket, per-peer link
// state, inbox, transmit queue, and barrier progress.
type rankState struct {
	rank int
	conn *net.UDPConn
	rc   syscall.RawConn
	bio  *batchIO // nil selects the portable per-datagram path

	sl []*sendLink
	rl []*recvLink
	ib *inbox
	// lm holds the per-peer wire metrics blocks (peer-indexed, shared by
	// sl[p] and rl[p]); nil when the world runs WithoutLinkStats.
	lm []*linkMetrics

	bar barState
	out outQueue
	rng *rand.Rand // sender-goroutine-only loss injection
}

// World is a set of UDP-connected ranks, all or some of them local.
type World struct {
	size   int
	local  []*rankState
	byRank []*rankState // index rank → state, nil for remote ranks
	addrs  []*net.UDPAddr
	ring   *PacketRing
	opts   options

	reg   atomic.Pointer[telemetry.Registry]
	stats worldStats

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// GroupConfig describes one process's share of a multi-process world. The
// launcher binds one socket per rank, distributes them (e.g. via
// inherited file descriptors), and tells every process the full address
// list.
type GroupConfig struct {
	// Size is the world size K.
	Size int
	// Local lists the ranks this process runs.
	Local []int
	// Conns holds the bound sockets for the local ranks, parallel to
	// Local. The World takes ownership and closes them.
	Conns []*net.UDPConn
	// Addrs holds the UDP address of every rank, indexed by rank.
	Addrs []string
}

// Bind binds loopback UDP sockets for n ranks and returns them with their
// addresses — the launcher-side helper for assembling GroupConfigs.
func Bind(n int) ([]*net.UDPConn, []string, error) {
	conns := make([]*net.UDPConn, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, nil, fmt.Errorf("udpnet: bind rank %d: %w", i, err)
		}
		conns = append(conns, c)
		addrs = append(addrs, c.LocalAddr().String())
	}
	return conns, addrs, nil
}

// NewWorld creates a single-process world: all ranks local, each behind
// its own loopback UDP socket.
func NewWorld(size int, opts ...Option) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("udpnet: world size %d < 1", size)
	}
	conns, addrs, err := Bind(size)
	if err != nil {
		return nil, err
	}
	local := make([]int, size)
	for i := range local {
		local[i] = i
	}
	return NewGroup(GroupConfig{Size: size, Local: local, Conns: conns, Addrs: addrs}, opts...)
}

// NewGroup creates a world owning only the configured local ranks.
func NewGroup(cfg GroupConfig, opts ...Option) (*World, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("udpnet: world size %d < 1", cfg.Size)
	}
	if len(cfg.Local) != len(cfg.Conns) {
		return nil, fmt.Errorf("udpnet: %d local ranks, %d conns", len(cfg.Local), len(cfg.Conns))
	}
	if len(cfg.Addrs) != cfg.Size {
		return nil, fmt.Errorf("udpnet: %d addrs for world size %d", len(cfg.Addrs), cfg.Size)
	}
	o := options{ringSize: 256}
	for _, opt := range opts {
		opt(&o)
	}
	w := &World{
		size:   cfg.Size,
		byRank: make([]*rankState, cfg.Size),
		addrs:  make([]*net.UDPAddr, cfg.Size),
		ring:   NewPacketRing(o.ringSize, maxDatagram),
		opts:   o,
		closed: make(chan struct{}),
	}
	for r, s := range cfg.Addrs {
		a, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			return nil, fmt.Errorf("udpnet: rank %d addr %q: %w", r, s, err)
		}
		w.addrs[r] = a
	}
	for i, r := range cfg.Local {
		if r < 0 || r >= cfg.Size {
			return nil, fmt.Errorf("udpnet: local rank %d out of [0,%d)", r, cfg.Size)
		}
		if w.byRank[r] != nil {
			return nil, fmt.Errorf("udpnet: local rank %d listed twice", r)
		}
		rc, err := cfg.Conns[i].SyscallConn()
		if err != nil {
			return nil, fmt.Errorf("udpnet: rank %d raw conn: %w", r, err)
		}
		// Batch scratch (iovecs, mmsg headers) is per rank: each rank's
		// sender and receiver goroutines own disjoint halves of it.
		var bio *batchIO
		if !o.noBatchIO {
			bio = newBatchIO(w.addrs)
		}
		rs := &rankState{
			rank: r,
			conn: cfg.Conns[i],
			rc:   rc,
			bio:  bio,
			sl:   make([]*sendLink, cfg.Size),
			rl:   make([]*recvLink, cfg.Size),
			ib:   newInbox(),
			rng:  rand.New(rand.NewSource(o.seed + int64(r)*7919)),
		}
		if !o.noLinkStats {
			rs.lm = make([]*linkMetrics, cfg.Size)
			for p := 0; p < cfg.Size; p++ {
				rs.lm[p] = &linkMetrics{}
			}
		}
		for p := 0; p < cfg.Size; p++ {
			var m *linkMetrics
			if rs.lm != nil {
				m = rs.lm[p]
			}
			rs.sl[p] = newSendLink(p, m)
			rs.rl[p] = newRecvLink(p, m)
		}
		rs.out.cond = sync.NewCond(&rs.out.mu)
		rs.bar.cond = sync.NewCond(&rs.bar.mu)
		w.byRank[r] = rs
		w.local = append(w.local, rs)
	}
	for _, rs := range w.local {
		w.wg.Add(2)
		go w.senderLoop(rs)
		go w.receiverLoop(rs)
	}
	w.wg.Add(1)
	go w.retransmitLoop()
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Instrument attaches a telemetry registry: batch, resend, and
// credit-stall counters are credited to each local rank's collector.
func (w *World) Instrument(reg *telemetry.Registry) { w.reg.Store(reg) }

func (w *World) tele(rank int) *telemetry.Rank {
	reg := w.reg.Load()
	if reg == nil {
		return nil
	}
	return reg.Rank(rank)
}

// Stats returns a snapshot of the world's transport counters.
func (w *World) Stats() Stats {
	return Stats{
		Batches:        w.stats.batches.Load(),
		BatchDgrams:    w.stats.batchDgrams.Load(),
		DataSent:       w.stats.dataSent.Load(),
		Resends:        w.stats.resends.Load(),
		AcksSent:       w.stats.acksSent.Load(),
		AcksSuppressed: w.stats.acksSuppressed.Load(),
		StageAcks:      w.stats.stageAcks.Load(),
		CreditStalls:   w.stats.creditStalls.Load(),
		Dups:           w.stats.dups.Load(),
		Malformed:      w.stats.malformed.Load(),
		InjectedDrops:  w.stats.injectedDrops.Load(),
		SendErrs:       w.stats.sendErrs.Load(),
	}
}

// Ring exposes the world's packet ring for allocation-behaviour tests.
func (w *World) Ring() *PacketRing { return w.ring }

func (w *World) isClosed() bool {
	select {
	case <-w.closed:
		return true
	default:
		return false
	}
}

// Close shuts the world down: sockets close (unblocking the receiver
// goroutines), queues and waiters wake, goroutines drain, and retained
// packet buffers return to the ring.
func (w *World) Close() {
	w.closeOnce.Do(func() { close(w.closed) })
	for _, rs := range w.local {
		rs.conn.Close()
		rs.out.mu.Lock()
		rs.out.closed = true
		rs.out.cond.Broadcast()
		rs.out.mu.Unlock()
		rs.ib.close()
		rs.bar.mu.Lock()
		rs.bar.cond.Broadcast()
		rs.bar.mu.Unlock()
		for _, sl := range rs.sl {
			sl.mu.Lock()
			sl.cond.Broadcast()
			sl.mu.Unlock()
		}
	}
	w.wg.Wait()
	// All goroutines are gone; sweep retained buffers back to their pools
	// so ring accounting stays meaningful across worlds.
	for _, rs := range w.local {
		for _, sl := range rs.sl {
			if sl.open != nil {
				w.ring.Put(sl.open)
				sl.open = nil
			}
			for i := sl.backlogHead; i < len(sl.backlog); i++ {
				w.ring.Put(sl.backlog[i])
			}
			sl.backlog, sl.backlogHead = nil, 0
			for i := range sl.wnd {
				if b := sl.wnd[i].buf; b != nil {
					w.ring.Put(b)
					sl.wnd[i].buf = nil
				}
			}
		}
		for _, rl := range rs.rl {
			for i := range rl.pending {
				if b := rl.pending[i]; b != nil {
					w.ring.Put(b)
					rl.pending[i] = nil
				}
			}
			if rl.cur != nil {
				msg.PutFrame(rl.cur)
				rl.cur = nil
			}
		}
	}
}

// Comms returns one communicator per local rank, in rank order. For a
// NewWorld this is the full world (index = rank).
func (w *World) Comms() []runtime.Comm {
	cs := make([]runtime.Comm, len(w.local))
	for i, rs := range w.local {
		cs[i] = &comm{w: w, rs: rs}
	}
	return cs
}

// Run executes fn on every local rank and closes the world afterwards.
func (w *World) Run(fn runtime.RankFunc) error {
	defer w.Close()
	return runtime.Run(w.Comms(), fn)
}

// kick registers sl in the sender's flush set and wakes the sender.
func (rs *rankState) kick(sl *sendLink) {
	q := &rs.out
	q.mu.Lock()
	if !sl.inFlush {
		sl.inFlush = true
		q.flush = append(q.flush, sl)
	}
	q.cond.Signal()
	q.mu.Unlock()
}

// enqueue adds a transmit item and wakes the sender.
func (rs *rankState) enqueue(it outItem) {
	q := &rs.out
	q.mu.Lock()
	q.items = append(q.items, it)
	q.cond.Signal()
	q.mu.Unlock()
}

type comm struct {
	w  *World
	rs *rankState

	// Steady-state hint dedup: a repeated HintTraffic with the same
	// backing slice (the cached schedule summary) is a no-op.
	lastHintPtr *runtime.StageTraffic
	lastHintLen int
}

func (c *comm) Rank() int { return c.rs.rank }
func (c *comm) Size() int { return c.w.size }

// SendRetains reports false: the payload is copied into packet buffers
// before Send returns, so the caller may reuse it.
func (c *comm) SendRetains() bool { return false }

// ReservedTags implements runtime.TagReserver: the wire barrier's control
// frames (ctrlEnter, ctrlRelease) travel on the same tagged-frame plane as
// application traffic, so the range is declared for composite transports
// to check against their application tag span.
func (c *comm) ReservedTags() (lo, hi int) { return ctrlEnter, ctrlRelease + 1 }

func (c *comm) Send(to, tag int, payload []byte) error {
	if to < 0 || to >= c.w.size {
		return fmt.Errorf("udpnet: send to rank %d out of range [0,%d)", to, c.w.size)
	}
	return c.w.sendFrame(c.rs, to, tag, payload)
}

func (c *comm) Recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= c.w.size {
		return nil, fmt.Errorf("udpnet: recv from rank %d out of range [0,%d)", from, c.w.size)
	}
	ib := c.rs.ib
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i := range ib.frames {
			if ib.frames[i].from != from {
				continue
			}
			// Per-pair frames arrive in send order, so the oldest frame
			// from the sender must carry the expected tag.
			if got := ib.frames[i].tag; got != tag {
				return nil, fmt.Errorf("udpnet: rank %d received tag %d from %d, expected %d", c.rs.rank, got, from, tag)
			}
			return ib.pop(i), nil
		}
		if ib.closed {
			return nil, fmt.Errorf("udpnet: world closed while rank %d waits for %d", c.rs.rank, from)
		}
		ib.cond.Wait()
	}
}

// RecvAnyOf implements runtime.AnyReceiver: earliest-arrived queued frame
// carrying tag whose sender is listed; others stay queued.
func (c *comm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	if len(from) == 0 {
		return -1, nil, fmt.Errorf("udpnet: rank %d RecvAnyOf with no candidate senders", c.rs.rank)
	}
	for _, f := range from {
		if f < 0 || f >= c.w.size {
			return -1, nil, fmt.Errorf("udpnet: recv from rank %d out of range [0,%d)", f, c.w.size)
		}
	}
	ib := c.rs.ib
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i := range ib.frames {
			if ib.frames[i].tag != tag {
				continue
			}
			sender := ib.frames[i].from
			for _, f := range from {
				if f == sender {
					return sender, ib.pop(i), nil
				}
			}
		}
		if ib.closed {
			return -1, nil, fmt.Errorf("udpnet: world closed while rank %d waits for any of %v", c.rs.rank, from)
		}
		ib.cond.Wait()
	}
}

// HintTraffic implements runtime.TrafficHinter: the schedule's per-stage
// traffic summary becomes per-link expected frame counts per tag, and the
// receive side acks at stage completion instead of per batch. A repeated
// hint with the same backing slice is recognized and skipped, keeping the
// compiled replay's steady state allocation-free.
func (c *comm) HintTraffic(stages []runtime.StageTraffic) {
	if len(stages) == 0 {
		return
	}
	if len(stages) == c.lastHintLen && &stages[0] == c.lastHintPtr {
		return
	}
	c.lastHintPtr, c.lastHintLen = &stages[0], len(stages)
	per := make(map[int]map[int]int)
	for _, st := range stages {
		for _, r := range st.Recvs {
			if r.Peer < 0 || r.Peer >= c.w.size || r.Frames <= 0 {
				continue
			}
			m := per[r.Peer]
			if m == nil {
				m = make(map[int]int)
				per[r.Peer] = m
			}
			m[st.Tag] += r.Frames
		}
	}
	// Peers absent from the new schedule lose their old hints (a patched
	// topology may have dropped them); present peers get fresh counters.
	for p, rl := range c.rs.rl {
		rl.installHint(per[p])
	}
}

func (c *comm) Barrier() error {
	w, rs := c.w, c.rs
	if w.size == 1 {
		return nil
	}
	b := &rs.bar
	if rs.rank == 0 {
		b.mu.Lock()
		b.phase++
		need := b.phase * (w.size - 1)
		for b.enters < need && !w.isClosed() {
			b.cond.Wait()
		}
		closed := w.isClosed()
		b.mu.Unlock()
		if closed {
			return fmt.Errorf("udpnet: world closed in barrier")
		}
		// The coordinator's own application goroutine sends the releases,
		// so flow-control stalls here can never wedge the receiver.
		for r := 1; r < w.size; r++ {
			if err := w.sendFrame(rs, r, ctrlRelease, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := w.sendFrame(rs, 0, ctrlEnter, nil); err != nil {
		return err
	}
	b.mu.Lock()
	b.phase++
	for b.releases < b.phase && !w.isClosed() {
		b.cond.Wait()
	}
	closed := w.isClosed()
	b.mu.Unlock()
	if closed {
		return fmt.Errorf("udpnet: world closed in barrier")
	}
	return nil
}

// sendFrame fragments one frame into the link's open packet, sealing full
// packets into the backlog. Consecutive frames to the same peer coalesce
// into one datagram whenever the sender goroutine has not yet drained the
// link — under load, exactly when it matters. Blocks for backlog space
// (the bounded-memory equivalent of a full TCP socket buffer).
func (w *World) sendFrame(rs *rankState, to, tag int, payload []byte) error {
	sl := rs.sl[to]
	frameLen := len(payload)
	sl.mu.Lock()
	fid := sl.nextFrameID
	sl.nextFrameID++
	off := 0
	for first := true; first || off < frameLen; first = false {
		for len(sl.backlog)-sl.backlogHead >= backlogMax {
			if w.isClosed() {
				sl.mu.Unlock()
				return fmt.Errorf("udpnet: world closed")
			}
			sl.cond.Wait()
		}
		if w.isClosed() {
			sl.mu.Unlock()
			return fmt.Errorf("udpnet: world closed")
		}
		if sl.open == nil {
			b := w.ring.Get()[:dgramHdrLen]
			putDgramHeader(b, dgramHeader{kind: kindData, from: rs.rank})
			sl.open = b
			sl.openCount = 0
		}
		space := maxDatagram - len(sl.open) - chunkHdrLen
		rem := frameLen - off
		if space <= 0 || (space < rem && space < 256) {
			// No room, or only a sliver while more remains: seal and
			// start a fresh packet with full fragment space.
			w.sealLocked(sl)
			first = true // preserve the one-chunk guarantee for empty frames
			continue
		}
		frag := rem
		if frag > space {
			frag = space
		}
		sl.open = appendChunk(sl.open, tag, fid, uint32(frameLen), uint32(off), payload[off:off+frag])
		sl.openCount++
		binary.LittleEndian.PutUint16(sl.open[2:], uint16(sl.openCount))
		off += frag
		if maxDatagram-len(sl.open) < chunkHdrLen+64 {
			w.sealLocked(sl)
		}
	}
	sl.m.frameSent()
	sl.mu.Unlock()
	rs.kick(sl)
	return nil
}

// sealLocked moves the open packet into the backlog; the caller holds
// sl.mu.
func (w *World) sealLocked(sl *sendLink) {
	if sl.open == nil {
		return
	}
	if sl.backlogHead == len(sl.backlog) {
		sl.backlog = sl.backlog[:0]
		sl.backlogHead = 0
	}
	sl.backlog = append(sl.backlog, sl.open)
	sl.open = nil
	sl.openCount = 0
	sl.m.noteBacklog(len(sl.backlog) - sl.backlogHead)
}
