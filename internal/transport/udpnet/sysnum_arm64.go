//go:build linux

package udpnet

// Batched-I/O syscall numbers for linux/arm64.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
