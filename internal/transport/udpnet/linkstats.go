package udpnet

import (
	"sync/atomic"

	"stfw/internal/runtime"
)

// Per-link wire metrics: one atomic counter block per directed peer
// relationship of each local rank, shared by that rank's send link (this
// rank -> peer) and receive link (peer -> this rank). The hot paths —
// sendFrame, the sender drain, the receiver's sequencing loop, the ack
// machinery — touch these with single atomic adds under locks they already
// hold, so enabling the metrics costs no extra synchronization and no
// allocation; disabling them (WithoutLinkStats) swaps in nil receivers and
// every method collapses to one predictable branch.
//
// The block materializes into the transport-neutral runtime.LinkStats
// snapshot through comm.LinkStats, which is how telemetry.Registry.WrapComm
// folds live wire behaviour into per-rank snapshots (the LinkStatsSource
// seam).

// rttEWMAShift is the smoothing factor of the per-link RTT filter:
// srtt += (sample - srtt) >> rttEWMAShift, the classic 1/8 gain.
const rttEWMAShift = 3

// linkMetrics is the per-directed-link counter block. All methods are
// nil-receiver safe; a nil *linkMetrics is the disabled collector.
type linkMetrics struct {
	// send direction
	framesSent, bytesSent          atomic.Int64
	pktsSent                       atomic.Int64
	timeoutResends, gapResends     atomic.Int64
	sackRepairs                    atomic.Int64
	windowStalls, backlogHighWater atomic.Int64
	// srttNs is written only by the owning rank's receiver goroutine
	// (handleAck); concurrent readers see a coherent EWMA through the
	// atomic load/store pair.
	srttNs, rttSamples atomic.Int64

	// receive direction
	framesRecvd, bytesRecvd                           atomic.Int64
	pktsRecvd, dups                                   atomic.Int64
	acksSent, acksSuppressed, stageAcks, livenessAcks atomic.Int64
}

func (m *linkMetrics) frameSent() {
	if m == nil {
		return
	}
	m.framesSent.Add(1)
}

// pktSent records one first transmission of a data datagram and its wire
// length (headers included). Retransmissions are counted separately by
// resend and never re-add bytes.
func (m *linkMetrics) pktSent(bytes int) {
	if m == nil {
		return
	}
	m.pktsSent.Add(1)
	m.bytesSent.Add(int64(bytes))
}

// noteBacklog ratchets the backlog high-water mark. The caller holds the
// send link's lock, so load/store is single-writer.
func (m *linkMetrics) noteBacklog(depth int) {
	if m == nil {
		return
	}
	if int64(depth) > m.backlogHighWater.Load() {
		m.backlogHighWater.Store(int64(depth))
	}
}

func (m *linkMetrics) resend(timeout bool) {
	if m == nil {
		return
	}
	if timeout {
		m.timeoutResends.Add(1)
	} else {
		m.gapResends.Add(1)
	}
}

func (m *linkMetrics) sackRepair() {
	if m == nil {
		return
	}
	m.sackRepairs.Add(1)
}

func (m *linkMetrics) windowStall() {
	if m == nil {
		return
	}
	m.windowStalls.Add(1)
}

// rttSample folds one Karn-filtered ack round trip into the EWMA. Only the
// owning rank's receiver goroutine calls this, so the read-modify-write is
// single-writer.
func (m *linkMetrics) rttSample(ns int64) {
	if m == nil || ns < 0 {
		return
	}
	if n := m.rttSamples.Add(1); n == 1 {
		m.srttNs.Store(ns)
		return
	}
	srtt := m.srttNs.Load()
	m.srttNs.Store(srtt + ((ns - srtt) >> rttEWMAShift))
}

func (m *linkMetrics) pktRecvd(bytes int) {
	if m == nil {
		return
	}
	m.pktsRecvd.Add(1)
	m.bytesRecvd.Add(int64(bytes))
}

func (m *linkMetrics) dup() {
	if m == nil {
		return
	}
	m.dups.Add(1)
}

func (m *linkMetrics) frameRecvd() {
	if m == nil {
		return
	}
	m.framesRecvd.Add(1)
}

func (m *linkMetrics) ackSent() {
	if m == nil {
		return
	}
	m.acksSent.Add(1)
}

func (m *linkMetrics) ackSuppressed() {
	if m == nil {
		return
	}
	m.acksSuppressed.Add(1)
}

func (m *linkMetrics) stageAck() {
	if m == nil {
		return
	}
	m.stageAcks.Add(1)
}

func (m *linkMetrics) livenessAck() {
	if m == nil {
		return
	}
	m.livenessAcks.Add(1)
}

// snapshot materializes the counter block into the transport-neutral form.
func (m *linkMetrics) snapshot(peer int) runtime.LinkStats {
	if m == nil {
		return runtime.LinkStats{Peer: peer}
	}
	return runtime.LinkStats{
		Peer:             peer,
		FramesSent:       m.framesSent.Load(),
		BytesSent:        m.bytesSent.Load(),
		PktsSent:         m.pktsSent.Load(),
		TimeoutResends:   m.timeoutResends.Load(),
		GapResends:       m.gapResends.Load(),
		SackRepairs:      m.sackRepairs.Load(),
		WindowStalls:     m.windowStalls.Load(),
		BacklogHighWater: m.backlogHighWater.Load(),
		SRTTNs:           m.srttNs.Load(),
		RTTSamples:       m.rttSamples.Load(),
		FramesRecvd:      m.framesRecvd.Load(),
		BytesRecvd:       m.bytesRecvd.Load(),
		PktsRecvd:        m.pktsRecvd.Load(),
		Dups:             m.dups.Load(),
		AcksSent:         m.acksSent.Load(),
		AcksSuppressed:   m.acksSuppressed.Load(),
		StageAcks:        m.stageAcks.Load(),
		LivenessAcks:     m.livenessAcks.Load(),
	}
}

// LinkStats implements runtime.LinkStatsSource for one local rank: a
// snapshot of every directed link that saw traffic, sorted by peer (the
// metrics array is peer-indexed). Nil when the world runs WithoutLinkStats.
func (c *comm) LinkStats() []runtime.LinkStats {
	if c.rs.lm == nil {
		return nil
	}
	out := make([]runtime.LinkStats, 0, len(c.rs.lm))
	for peer, m := range c.rs.lm {
		if peer == c.rs.rank {
			continue
		}
		ls := m.snapshot(peer)
		if ls.Zero() {
			continue
		}
		out = append(out, ls)
	}
	return out
}

// RankLinkStats returns the per-link snapshot of one local rank without
// going through a Comm — the multi-process netstat driver reads stats
// after Run has returned the communicators to the pool. Nil for remote
// ranks or a WithoutLinkStats world.
func (w *World) RankLinkStats(rank int) []runtime.LinkStats {
	if rank < 0 || rank >= len(w.byRank) || w.byRank[rank] == nil {
		return nil
	}
	c := comm{w: w, rs: w.byRank[rank]}
	return c.LinkStats()
}
