package udpnet

import (
	"bytes"
	"testing"
)

// buildDataPacket assembles a well-formed data datagram for seeding.
func buildDataPacket(from int, seq uint32, chunks []chunk) []byte {
	b := make([]byte, dgramHdrLen, maxDatagram)
	putDgramHeader(b, dgramHeader{kind: kindData, count: len(chunks), from: from, seq: seq})
	for _, c := range chunks {
		b = appendChunk(b, c.tag, c.frameID, c.frameLen, c.off, c.frag)
	}
	return b
}

// FuzzParseDgram drives the datagram parsers with arbitrary bytes: they
// must never panic or over-read, truncated/corrupt-length inputs must
// error, and every accepted chunk's fragment must lie inside both the
// datagram and its declared frame — the exact properties the receive path
// relies on to drop garbage safely.
func FuzzParseDgram(f *testing.F) {
	f.Add([]byte{}, uint16(4))
	f.Add(buildDataPacket(1, 7, []chunk{{tag: 3, frameID: 0, frameLen: 5, off: 0, frag: []byte("hello")}}), uint16(4))
	f.Add(buildDataPacket(0, 0, []chunk{
		{tag: 1, frameID: 2, frameLen: 10, off: 0, frag: []byte("split")},
		{tag: 1, frameID: 2, frameLen: 10, off: 5, frag: []byte("frame")},
	}), uint16(8))
	f.Add(buildAck(make([]byte, 0, maxDatagram), 2, 99, 0xdeadbeef), uint16(4))
	trunc := buildDataPacket(1, 1, []chunk{{tag: 2, frameLen: 100, frag: make([]byte, 50)}})
	f.Add(trunc[:len(trunc)-10], uint16(4))
	lied := buildDataPacket(1, 1, []chunk{{tag: 2, frameLen: 8, frag: make([]byte, 8)}})
	lied[dgramHdrLen+16] = 0xff // fragLen claims more bytes than present
	f.Add(lied, uint16(4))

	f.Fuzz(func(t *testing.T, data []byte, size16 uint16) {
		size := int(size16%64) + 1
		h, body, err := parseDgram(data, size)
		if err != nil {
			return
		}
		if h.from < 0 || h.from >= size {
			t.Fatalf("accepted out-of-range rank %d (size %d)", h.from, size)
		}
		switch h.kind {
		case kindAck:
			if _, err := parseAck(body); err != nil {
				return
			}
			if len(body) != ackBodyLen {
				t.Fatalf("ack accepted with %d body bytes", len(body))
			}
		case kindData:
			for k := 0; k < h.count; k++ {
				c, rest, err := nextChunk(body)
				if err != nil {
					return
				}
				if c.frameLen > maxFrameLen {
					t.Fatalf("chunk accepted with frame length %d", c.frameLen)
				}
				if uint64(c.off)+uint64(len(c.frag)) > uint64(c.frameLen) {
					t.Fatalf("fragment [%d,%d) outside frame of %d bytes", c.off, int(c.off)+len(c.frag), c.frameLen)
				}
				// The fragment must alias the input, not memory beyond it.
				if len(c.frag) > len(body)-chunkHdrLen {
					t.Fatalf("fragment of %d bytes from %d available", len(c.frag), len(body)-chunkHdrLen)
				}
				body = rest
			}
		default:
			t.Fatalf("parseDgram accepted kind %d", h.kind)
		}
	})
}

// FuzzPacketRoundTrip checks encode→decode is the identity on structured
// inputs within wire-format bounds.
func FuzzPacketRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint32(2), []byte("payload"), uint32(0), uint32(7))
	f.Add(uint32(0), uint32(0), []byte{}, uint32(0), uint32(0))
	f.Add(uint32(99), uint32(1<<20), bytes.Repeat([]byte{0xAA}, 4000), uint32(500), uint32(5000))
	f.Fuzz(func(t *testing.T, seq, tag32 uint32, frag []byte, off, frameLen uint32) {
		if len(frag) > maxDatagram-dgramHdrLen-chunkHdrLen {
			frag = frag[:maxDatagram-dgramHdrLen-chunkHdrLen]
		}
		if frameLen > maxFrameLen {
			frameLen = maxFrameLen
		}
		if uint64(off)+uint64(len(frag)) > uint64(frameLen) {
			if uint64(len(frag)) > uint64(frameLen) {
				frag = frag[:frameLen]
			}
			off = frameLen - uint32(len(frag))
		}
		tag := int(tag32 & 0x7fffffff)
		pkt := buildDataPacket(2, seq, []chunk{{tag: tag, frameID: 11, frameLen: frameLen, off: off, frag: frag}})
		h, body, err := parseDgram(pkt, 4)
		if err != nil {
			t.Fatalf("well-formed packet rejected: %v", err)
		}
		if h.kind != kindData || h.from != 2 || h.seq != seq || h.count != 1 {
			t.Fatalf("header round trip: %+v", h)
		}
		c, rest, err := nextChunk(body)
		if err != nil {
			t.Fatalf("well-formed chunk rejected: %v", err)
		}
		if len(rest) != 0 || c.tag != tag || c.frameID != 11 || c.frameLen != frameLen || c.off != off || !bytes.Equal(c.frag, frag) {
			t.Fatalf("chunk round trip: %+v", c)
		}

		ack := buildAck(make([]byte, 0, maxDatagram), 3, seq, uint64(off)<<32|uint64(frameLen))
		ah, abody, err := parseDgram(ack, 4)
		if err != nil || ah.kind != kindAck || ah.seq != seq || ah.from != 3 {
			t.Fatalf("ack round trip: %+v %v", ah, err)
		}
		bm, err := parseAck(abody)
		if err != nil || bm != uint64(off)<<32|uint64(frameLen) {
			t.Fatalf("ack bitmap round trip: %x %v", bm, err)
		}
	})
}
