package udpnet

import (
	"bytes"
	"fmt"
	"testing"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/vpt"
)

// TestLinkMetricsNilReceiver pins the disabled-collector contract: every
// hot-path method on a nil *linkMetrics is a no-op, and a nil block
// snapshots to a Zero LinkStats carrying only the peer id.
func TestLinkMetricsNilReceiver(t *testing.T) {
	var m *linkMetrics
	m.frameSent()
	m.pktSent(100)
	m.noteBacklog(7)
	m.resend(true)
	m.resend(false)
	m.sackRepair()
	m.windowStall()
	m.rttSample(1000)
	m.pktRecvd(100)
	m.dup()
	m.frameRecvd()
	m.ackSent()
	m.ackSuppressed()
	m.stageAck()
	m.livenessAck()
	ls := m.snapshot(5)
	if ls.Peer != 5 {
		t.Fatalf("snapshot peer = %d, want 5", ls.Peer)
	}
	if !ls.Zero() {
		t.Fatalf("nil block snapshot not Zero: %+v", ls)
	}
}

// TestLinkMetricsRTTEWMA pins the smoothing discipline: the first sample
// is stored directly, later samples fold in with the classic 1/8 gain,
// and negative (clock-skew) samples are discarded.
func TestLinkMetricsRTTEWMA(t *testing.T) {
	m := &linkMetrics{}
	m.rttSample(-50) // discarded, does not become the first sample
	m.rttSample(1000)
	if got := m.srttNs.Load(); got != 1000 {
		t.Fatalf("first sample srtt = %d, want 1000", got)
	}
	m.rttSample(2000)
	// 1000 + (2000-1000)>>3 = 1125
	if got := m.srttNs.Load(); got != 1125 {
		t.Fatalf("after second sample srtt = %d, want 1125", got)
	}
	if got := m.rttSamples.Load(); got != 2 {
		t.Fatalf("rtt samples = %d, want 2", got)
	}
}

// TestLinkMetricsHotPathAllocs is the zero-allocation gate on the metric
// hooks themselves: enabling per-link stats must add atomic ops to the
// send/receive paths, never heap traffic. Both the live and the disabled
// (nil) collector are measured.
func TestLinkMetricsHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	live := &linkMetrics{}
	for name, m := range map[string]*linkMetrics{"live": live, "nil": nil} {
		allocs := testing.AllocsPerRun(200, func() {
			m.frameSent()
			m.pktSent(512)
			m.noteBacklog(3)
			m.resend(false)
			m.resend(true)
			m.sackRepair()
			m.windowStall()
			m.rttSample(1500)
			m.pktRecvd(512)
			m.dup()
			m.frameRecvd()
			m.ackSent()
			m.ackSuppressed()
			m.stageAck()
			m.livenessAck()
		})
		if allocs != 0 {
			t.Errorf("%s collector: %.1f allocs per hook sweep, want 0", name, allocs)
		}
	}
}

// TestLinkStatsConservation runs a clean hinted steady-state exchange and
// checks the conservation laws between the per-link counter blocks and
// the world-level stats: both are incremented at the same call sites, so
// the sums must agree exactly. It also checks per-directed-link frame
// symmetry (a's sends to b are b's receives from a — frames, unlike
// packets, are delivered exactly once) and RTT sanity.
func TestLinkStatsConservation(t *testing.T) {
	const K, iters = 8, 50
	tp, err := vpt.NewBalanced(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(K)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		buf := bytes.Repeat([]byte{byte(c.Rank())}, 96)
		payloads := map[int][]byte{(c.Rank() + 3) % K: buf}
		p, _, err := core.NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if _, err := p.Run(c, payloads); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()

	var sum runtime.LinkStats
	framesSent := map[[2]int]int64{} // (from, to) -> frames counted by the sender
	framesRecvd := map[[2]int]int64{}
	bytesSentF := map[[2]int]int64{}
	for r := 0; r < K; r++ {
		links := w.RankLinkStats(r)
		if len(links) == 0 {
			t.Fatalf("rank %d has no link stats after a full exchange", r)
		}
		for _, l := range links {
			if l.Peer == r {
				t.Fatalf("rank %d reports a self link", r)
			}
			sum.Add(l)
			framesSent[[2]int{r, l.Peer}] = l.FramesSent
			framesRecvd[[2]int{l.Peer, r}] = l.FramesRecvd
			bytesSentF[[2]int{r, l.Peer}] = l.BytesSent
			if l.RTTSamples > 0 && l.SRTTNs <= 0 {
				t.Errorf("link %d->%d: %d RTT samples but srtt %d", r, l.Peer, l.RTTSamples, l.SRTTNs)
			}
			if l.PktsSent > 0 && l.BytesSent == 0 {
				t.Errorf("link %d->%d: %d packets sent but zero bytes", r, l.Peer, l.PktsSent)
			}
		}
	}

	// World-vs-link conservation: each pair below is incremented at the
	// same call site, so equality is exact, not approximate.
	for _, c := range []struct {
		name        string
		world, link int64
	}{
		{"data packets", st.DataSent, sum.PktsSent},
		{"resends", st.Resends, sum.Resends()},
		{"acks sent", st.AcksSent, sum.AcksSent},
		{"acks suppressed", st.AcksSuppressed, sum.AcksSuppressed},
		{"stage acks", st.StageAcks, sum.StageAcks},
		{"dups", st.Dups, sum.Dups},
	} {
		if c.world != c.link {
			t.Errorf("%s: world %d != per-link sum %d", c.name, c.world, c.link)
		}
	}
	if sum.PktsSent == 0 || sum.FramesSent == 0 {
		t.Fatal("no traffic recorded by the per-link counters")
	}
	if sum.RTTSamples == 0 {
		t.Error("no ack round trips sampled over a steady-state run")
	}

	// Frame symmetry: every frame the sender counted was delivered and
	// counted exactly once by the receiver (packet counts may legitimately
	// differ under kernel drops; frames may not).
	for k, sent := range framesSent {
		if got := framesRecvd[k]; got != sent {
			t.Errorf("link %d->%d: sender counted %d frames, receiver %d", k[0], k[1], sent, got)
		}
	}
	for k, recvd := range framesRecvd {
		if framesSent[k] != recvd {
			t.Errorf("link %d->%d: receiver counted %d frames, sender %d", k[0], k[1], recvd, framesSent[k])
		}
	}
	for k, b := range bytesSentF {
		if b == 0 && framesSent[k] > 0 {
			t.Errorf("link %d->%d: frames without wire bytes", k[0], k[1])
		}
	}
}

// TestWithoutLinkStats pins the disabled mode: the world still moves
// traffic, the LinkStatsSource seam reports nil (not empty), and the
// world-level stats keep working.
func TestWithoutLinkStats(t *testing.T) {
	const K = 4
	w, err := NewWorld(K, WithoutLinkStats())
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		to, from := (c.Rank()+1)%K, (c.Rank()+K-1)%K
		if err := c.Send(to, 2, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		p, err := c.Recv(from, 2)
		if err != nil {
			return err
		}
		if len(p) != 1 || int(p[0]) != from {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), p, from)
		}
		if ls := runtime.LinkStatsOf(c); ls != nil {
			t.Errorf("rank %d: LinkStats = %v, want nil with stats disabled", c.Rank(), ls)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < K; r++ {
		if ls := w.RankLinkStats(r); ls != nil {
			t.Errorf("RankLinkStats(%d) = %v, want nil with stats disabled", r, ls)
		}
	}
	if st := w.Stats(); st.DataSent == 0 {
		t.Error("world stats stopped counting with link stats disabled")
	}
}
