//go:build !linux || (!amd64 && !arm64)

package udpnet

import (
	"net"
	"syscall"
)

// The portable build has no batched-syscall fast path: newBatchIO returns
// nil and the transport uses the one-datagram-per-syscall loop
// (WriteToUDP/ReadFromUDP). Coalescing and flow control are unaffected —
// only the syscall amortization is lost.
type batchIO struct{}

func newBatchIO(addrs []*net.UDPAddr) *batchIO { return nil }

func (b *batchIO) send(rc syscall.RawConn, batch []sendEntry) (errs int) {
	panic("udpnet: batch I/O unavailable on this platform")
}

func (b *batchIO) recv(rc syscall.RawConn, bufs [][]byte, lens []int) (int, error) {
	panic("udpnet: batch I/O unavailable on this platform")
}
