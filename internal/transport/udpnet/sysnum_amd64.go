//go:build linux

package udpnet

// The stdlib syscall number table predates sendmmsg on amd64, so the
// batched-I/O syscall numbers are pinned here per architecture.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
