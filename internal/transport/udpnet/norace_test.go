//go:build !race

package udpnet

const raceEnabled = false
