package udpnet

import "sync"

const (
	// window is the per-link sliding window: at most this many data
	// packets may be in flight (sent, unacked) on one directed link. 64
	// matches the ack bitmap width, so one ack describes the whole window.
	window = 64

	// backlogMax bounds sealed packets queued behind the window on one
	// link. App-side Send blocks when the backlog is full, which bounds
	// memory the way a TCP socket buffer does (backlogMax packets of
	// maxDatagram bytes ≈ 4 MiB per congested link, nothing when idle).
	backlogMax = 512
)

// pktSlot is one window entry on the send side: an in-flight data packet
// retained for retransmission until acked.
type pktSlot struct {
	buf []byte // ring buffer holding the encoded datagram; nil when free
	seq uint32

	acked  bool // selectively acked; buffer released, no resend needed
	queued bool // sitting in the sender's out queue (fresh send or resend)
	// resent marks a packet that has been queued for retransmission at
	// least once; Karn's rule excludes it from RTT sampling (the ack could
	// answer either transmission).
	resent bool
	// sending marks the buffer as pinned by an in-progress socket write.
	// An ack landing mid-write must not release the buffer under the
	// syscall — release is deferred via releaseAfterSend instead.
	sending          bool
	releaseAfterSend bool

	lastSend int64 // UnixNano of the last transmission attempt
}

// sendLink is the reliable outbound state for one directed (me → peer)
// link. Three parties touch it under mu: the application goroutine
// (Send appends chunks to the open packet and seals into the backlog),
// the sender goroutine (seals, claims window slots, transmits), and the
// receiver goroutine (processes acks, frees slots, reopens the window).
type sendLink struct {
	mu   sync.Mutex
	cond *sync.Cond // backlog-space waiters (application Send)

	peer int

	// open is the packet currently accepting chunks — the coalescing
	// point. Consecutive frames to the same peer land in one datagram
	// whenever the sender goroutine has not yet drained the link.
	open      []byte
	openCount int

	// backlog holds sealed packets awaiting a window slot, FIFO between
	// backlogHead and len(backlog) (the array is recycled once drained).
	backlog     [][]byte
	backlogHead int

	nextSeq uint32 // next sequence number to assign
	sndUna  uint32 // lowest unacked sequence number
	wnd     [window]pktSlot

	nextFrameID uint32 // per-link frame counter, stamped into chunks

	inFlush bool // registered in the sender's flush set (outQueue.mu)
	stalled bool // counted a credit stall since the last full drain

	// m is the per-peer wire metrics block shared with the matching
	// recvLink; nil when the world runs WithoutLinkStats.
	m *linkMetrics
}

func newSendLink(peer int, m *linkMetrics) *sendLink {
	l := &sendLink{peer: peer, m: m}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// inFlight reports the number of unacked packets, callers hold mu.
func (l *sendLink) inFlight() uint32 { return l.nextSeq - l.sndUna }

// slot returns the window slot for seq; callers hold mu and guarantee
// sndUna <= seq < nextSeq.
func (l *sendLink) slot(seq uint32) *pktSlot { return &l.wnd[seq%window] }

// recvLink is the inbound state for one directed (peer → me) link. The
// receiver goroutine owns the sequencing and reassembly fields outright;
// mu guards only the ack/hint state it shares with the sender goroutine
// (which encodes acks from it) and the application goroutine (which
// installs traffic hints).
type recvLink struct {
	peer int

	// --- receiver-goroutine-owned: packet sequencing ---

	expected uint32 // next in-order sequence number
	// pending stashes out-of-order packets (ring buffers, retained) at
	// seq%window until the gap before them fills.
	pending [window][]byte
	pendLen [window]int

	// --- receiver-goroutine-owned: frame reassembly ---
	// Packets are processed strictly in sequence order and the sender
	// fragments one frame at a time per link, so at most one frame is
	// ever partially assembled here.

	cur         []byte // frame under reassembly (msg arena), nil if none
	curGot      int
	curTag      int
	nextFrameID uint32

	mu sync.Mutex

	// --- under mu: ack state ---

	dirty         bool   // data arrived since the last ack decision
	ackQueued     bool   // an ack for this link sits in the out queue
	ackCum        uint32 // snapshot the sender goroutine encodes
	ackBm         uint64
	lastAckSent   uint32 // `expected` as of the last transmitted ack
	lastAckTime   int64  // UnixNano of the last transmitted ack
	stageComplete bool   // a hinted stage finished since the last ack

	// inDirty dedups the receiver's per-batch dirty list (receiver-owned).
	inDirty bool

	// --- under mu: schedule traffic hints ---

	// hint maps tag → frames expected from this peer for the stage using
	// that tag; nil means no schedule knowledge (ack per receive batch).
	hint map[int]int
	// hintGot counts delivered frames per tag, reset to zero as each
	// stage completes so repeated replays of the same schedule keep
	// working.
	hintGot map[int]int

	// m is the per-peer wire metrics block shared with the matching
	// sendLink; nil when the world runs WithoutLinkStats.
	m *linkMetrics
}

func newRecvLink(peer int, m *linkMetrics) *recvLink {
	return &recvLink{peer: peer, m: m}
}

// sackBitmap summarizes the out-of-order stash relative to expected: bit i
// set means packet expected+1+i has been received. Receiver goroutine only.
func (l *recvLink) sackBitmap() uint64 {
	var bm uint64
	for i := uint32(1); i < window; i++ {
		if l.pending[(l.expected+i)%window] != nil {
			bm |= 1 << (i - 1)
		}
	}
	return bm
}

// noteFrame records a delivered frame against the installed hint and
// reports whether it completed a hinted stage's inbound set from this
// peer. Called by the receiver goroutine with mu held.
func (l *recvLink) noteFrame(tag int) (completed bool) {
	if l.hint == nil {
		return false
	}
	want, ok := l.hint[tag]
	if !ok || want <= 0 {
		return false
	}
	l.hintGot[tag]++
	if l.hintGot[tag] < want {
		return false
	}
	l.hintGot[tag] = 0
	return true
}

// installHint swaps in a new per-tag expectation map, resetting progress.
func (l *recvLink) installHint(hint map[int]int) {
	l.mu.Lock()
	l.hint = hint
	if hint == nil {
		l.hintGot = nil
	} else {
		l.hintGot = make(map[int]int, len(hint))
	}
	l.mu.Unlock()
}
