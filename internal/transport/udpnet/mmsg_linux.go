//go:build linux && (amd64 || arm64)

// Batched socket I/O via sendmmsg/recvmmsg: a whole sender drain pass (or
// receive burst) crosses the kernel boundary in one syscall instead of
// one per datagram — the transport-level analogue of the paper's message
// regularization. The raw syscalls run through net's RawConn so the
// sockets stay registered with the Go netpoller: MSG_DONTWAIT plus the
// Read/Write ready-callbacks give blocking semantics without pinning OS
// threads.
package udpnet

import (
	"net"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
	_      [4]byte
}

// batchIO holds one rank's precomputed destination sockaddrs and syscall
// scratch. The sender goroutine owns the s* halves, the receiver the r*
// halves; they never touch each other's.
type batchIO struct {
	raddrs []syscall.RawSockaddrInet4
	shdrs  [sendBatchMax]mmsghdr
	siov   [sendBatchMax]syscall.Iovec
	rhdrs  [recvBatchMax]mmsghdr
	riov   [recvBatchMax]syscall.Iovec
}

// newBatchIO precomputes raw IPv4 sockaddrs for every rank. A non-IPv4
// address disables the fast path (nil return selects the portable loop).
func newBatchIO(addrs []*net.UDPAddr) *batchIO {
	b := &batchIO{raddrs: make([]syscall.RawSockaddrInet4, len(addrs))}
	for i, a := range addrs {
		ip := a.IP.To4()
		if ip == nil {
			return nil
		}
		sa := &b.raddrs[i]
		sa.Family = syscall.AF_INET
		// sin_port is network byte order (the build tags pin us to
		// little-endian hosts).
		sa.Port = uint16(a.Port>>8) | uint16(a.Port&0xff)<<8
		copy(sa.Addr[:], ip)
	}
	return b
}

// send transmits the batch with as few sendmmsg calls as possible and
// returns the number of datagrams the socket refused (dropped; the
// reliability layer recovers them).
func (b *batchIO) send(rc syscall.RawConn, batch []sendEntry) (errs int) {
	off := 0
	for off < len(batch) {
		n := len(batch) - off
		if n > sendBatchMax {
			n = sendBatchMax
		}
		for i := 0; i < n; i++ {
			e := &batch[off+i]
			b.siov[i].Base = &e.buf[0]
			b.siov[i].SetLen(len(e.buf))
			h := &b.shdrs[i]
			h.hdr = syscall.Msghdr{}
			h.hdr.Name = (*byte)(unsafe.Pointer(&b.raddrs[e.to]))
			h.hdr.Namelen = syscall.SizeofSockaddrInet4
			h.hdr.Iov = &b.siov[i]
			h.hdr.Iovlen = 1
			h.msgLen = 0
		}
		sent := 0
		werr := rc.Write(func(fd uintptr) bool {
			for sent < n {
				r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
					uintptr(unsafe.Pointer(&b.shdrs[sent])), uintptr(n-sent),
					syscall.MSG_DONTWAIT, 0, 0)
				switch errno {
				case 0:
					sent += int(r)
				case syscall.EINTR:
					// retry
				case syscall.EAGAIN:
					return false
				default:
					// sendmmsg only errors when its FIRST datagram fails
					// (ENOBUFS, ICMP-driven refusals during teardown):
					// skip that one and keep the rest of the batch moving.
					errs++
					sent++
				}
			}
			return true
		})
		if werr != nil {
			errs += len(batch) - off - sent
			return errs
		}
		off += n
	}
	return errs
}

// recv fills bufs with one recvmmsg batch, blocking (via the netpoller)
// until at least one datagram is available. lens[i] receives datagram i's
// byte length.
func (b *batchIO) recv(rc syscall.RawConn, bufs [][]byte, lens []int) (int, error) {
	n := len(bufs)
	if n > recvBatchMax {
		n = recvBatchMax
	}
	for i := 0; i < n; i++ {
		b.riov[i].Base = &bufs[i][0]
		b.riov[i].SetLen(len(bufs[i]))
		h := &b.rhdrs[i]
		h.hdr = syscall.Msghdr{}
		h.hdr.Iov = &b.riov[i]
		h.hdr.Iovlen = 1
		h.msgLen = 0
	}
	got := 0
	var serr error
	rerr := rc.Read(func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&b.rhdrs[0])), uintptr(n),
			syscall.MSG_DONTWAIT, 0, 0)
		switch errno {
		case 0:
			got = int(r)
			return true
		case syscall.EINTR, syscall.EAGAIN:
			return false
		case syscall.ECONNREFUSED:
			// Queued ICMP error from a peer mid-teardown; consume and go
			// back to the socket.
			return false
		default:
			serr = errno
			return true
		}
	})
	if rerr != nil {
		return 0, rerr // socket closed
	}
	if serr != nil {
		return 0, serr
	}
	for i := 0; i < got; i++ {
		lens[i] = int(b.rhdrs[i].msgLen)
	}
	return got, nil
}
