package udpnet

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/transport/tptest"
	"stfw/internal/vpt"
)

func factory(opts ...Option) tptest.Factory {
	return func(size int) ([]runtime.Comm, func(), error) {
		w, err := NewWorld(size, opts...)
		if err != nil {
			return nil, nil, err
		}
		return w.Comms(), w.Close, nil
	}
}

// udpnet is a wire transport with a native arrival-order matcher: frames
// are serialized before Send returns, close wakes receivers, and the
// matcher validates candidate lists itself. Delivery crosses goroutines
// and sockets, so strict earliest-arrival ordering is not deterministic.
var conformanceOpts = tptest.Options{
	WantSendRetains: false,
	TestClose:       true,
	TestOutOfRange:  true,
}

func TestConformance(t *testing.T) {
	tptest.Run(t, factory(), conformanceOpts)
}

// TestConformanceNoBatchIO pins the portable (per-datagram syscall) path,
// so both I/O paths stay covered regardless of platform.
func TestConformanceNoBatchIO(t *testing.T) {
	tptest.Run(t, factory(WithoutBatchIO()), conformanceOpts)
}

// TestConformanceUnderLoss runs the full conformance suite with 5% of all
// datagrams dropped before the socket: the selective-resend machinery must
// make the transport contract hold anyway.
func TestConformanceUnderLoss(t *testing.T) {
	tptest.Run(t, factory(WithLoss(0.05, 1)), conformanceOpts)
}

// TestConformanceUnderDelay layers the frame-level delay injector (the
// semantics-preserving fault class) over the transport.
func TestConformanceUnderDelay(t *testing.T) {
	tptest.Run(t, tptest.WithFaults(factory(), tptest.FaultConfig{
		Seed:  42,
		Delay: 0.3,
	}), conformanceOpts)
}

// TestLossRecoveredByResend proves packet loss is actually exercised and
// actually repaired: a lossy bulk exchange must deliver every byte intact
// while the stats show injected drops and resends.
func TestLossRecoveredByResend(t *testing.T) {
	const K, frames, sizeB = 4, 64, 3000
	w, err := NewWorld(K, WithLoss(0.08, 7))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		to := (c.Rank() + 1) % K
		from := (c.Rank() + K - 1) % K
		done := make(chan error, 1)
		go func() {
			for i := 0; i < frames; i++ {
				p := bytes.Repeat([]byte{byte(i)}, sizeB)
				if err := c.Send(to, 9, p); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		for i := 0; i < frames; i++ {
			p, err := c.Recv(from, 9)
			if err != nil {
				return err
			}
			if len(p) != sizeB || p[0] != byte(i) || p[sizeB-1] != byte(i) {
				return fmt.Errorf("rank %d frame %d corrupt (%d bytes, first %d)", c.Rank(), i, len(p), p[0])
			}
		}
		return <-done
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.InjectedDrops == 0 {
		t.Error("loss injection never fired")
	}
	if st.Resends == 0 {
		t.Error("no resends despite injected drops")
	}
	// The per-link counters must show the repairs directly, and agree with
	// the world totals (any drift means a resend path missed its metric
	// hook).
	var linkResends, timeouts, gaps, dups int64
	for r := 0; r < K; r++ {
		for _, l := range w.RankLinkStats(r) {
			linkResends += l.Resends()
			timeouts += l.TimeoutResends
			gaps += l.GapResends
			dups += l.Dups
			if l.FramesSent > 0 && l.PktsSent == 0 {
				t.Errorf("rank %d link %d: %d frames sent but no packets counted", r, l.Peer, l.FramesSent)
			}
		}
	}
	if linkResends != st.Resends {
		t.Errorf("per-link resends %d (timeout %d + gap %d) != world resends %d",
			linkResends, timeouts, gaps, st.Resends)
	}
	if linkResends == 0 {
		t.Error("per-link counters recorded no resends despite injected drops")
	}
	t.Logf("drops=%d resends=%d (timeout=%d gap=%d) dups=%d", st.InjectedDrops, linkResends, timeouts, gaps, dups)
}

func TestLargeFrameFragmentation(t *testing.T) {
	// A frame much larger than one datagram must fragment and reassemble
	// exactly, including under loss.
	for _, loss := range []float64{0, 0.05} {
		t.Run(fmt.Sprintf("loss=%v", loss), func(t *testing.T) {
			w, err := NewWorld(2, WithLoss(loss, 3))
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 300_000)
			for i := range payload {
				payload[i] = byte(i * 31)
			}
			err = w.Run(func(c runtime.Comm) error {
				if c.Rank() == 0 {
					return c.Send(1, 2, payload)
				}
				p, err := c.Recv(0, 2)
				if err != nil {
					return err
				}
				if !bytes.Equal(p, payload) {
					return fmt.Errorf("reassembled frame differs")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBarrierOverUDPWorld(t *testing.T) {
	w, err := NewWorld(8)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		for i := 0; i < 5; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSTFWExchangeOverUDP(t *testing.T) {
	// The full store-and-forward algorithm over UDP sockets.
	const K = 16
	tp, err := vpt.NewBalanced(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(K)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		payloads := map[int][]byte{
			(c.Rank() + 1) % K: {byte(c.Rank()), 1},
			(c.Rank() + 5) % K: {byte(c.Rank()), 5},
		}
		d, err := core.Exchange(c, tp, payloads)
		if err != nil {
			return err
		}
		if len(d.Subs) != 2 {
			return fmt.Errorf("rank %d got %d deliveries", c.Rank(), len(d.Subs))
		}
		for _, sub := range d.Subs {
			wantFrom := (c.Rank() + K - int(sub.Data[1])) % K
			if sub.Src != wantFrom || int(sub.Data[0]) != wantFrom {
				return fmt.Errorf("rank %d: bad delivery %+v", c.Rank(), sub)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.BatchDgrams == 0 {
		t.Error("no datagrams counted through the batch path")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewGroup(GroupConfig{Size: 2, Local: []int{0, 0}}); err == nil {
		t.Error("mismatched local/conns accepted")
	}
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	comms := w.Comms()
	if err := comms[0].Send(9, 0, nil); err == nil {
		t.Error("out-of-range send accepted")
	}
	if _, err := comms[0].Recv(-1, 0); err == nil {
		t.Error("out-of-range recv accepted")
	}
	if w.Size() != 2 {
		t.Error("size wrong")
	}
}

// TestHintedAcksSuppressSpeculation drives repeated hinted exchanges and
// asserts the zero-speculation path engaged: stage-completion acks fired
// and per-batch acks were suppressed while stages were in flight.
func TestHintedAcksSuppressSpeculation(t *testing.T) {
	const K, iters = 8, 50
	tp, err := vpt.NewBalanced(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(K)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		buf := bytes.Repeat([]byte{byte(c.Rank())}, 64)
		payloads := map[int][]byte{(c.Rank() + 3) % K: buf}
		p, _, err := core.NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if _, err := p.Run(c, payloads); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.StageAcks == 0 {
		t.Error("hints installed but no stage-completion acks fired")
	}
	// The per-link ack classification must agree with the world totals.
	var acksSent, suppressed, stage, liveness int64
	for r := 0; r < K; r++ {
		for _, l := range w.RankLinkStats(r) {
			acksSent += l.AcksSent
			suppressed += l.AcksSuppressed
			stage += l.StageAcks
			liveness += l.LivenessAcks
		}
	}
	if acksSent != st.AcksSent {
		t.Errorf("per-link acks sent %d != world %d", acksSent, st.AcksSent)
	}
	if suppressed != st.AcksSuppressed {
		t.Errorf("per-link acks suppressed %d != world %d", suppressed, st.AcksSuppressed)
	}
	if stage != st.StageAcks {
		t.Errorf("per-link stage acks %d != world %d", stage, st.StageAcks)
	}
	if stage == 0 {
		t.Error("stage-completion acks not visible in per-link counters")
	}
	t.Logf("stats: %+v (per-link: suppressed=%d liveness=%d)", st, suppressed, liveness)
}

// TestGroupTwoWorlds runs a 4-rank world split across two World instances
// in one process — the exact topology a multi-process launcher creates,
// without the exec.
func TestGroupTwoWorlds(t *testing.T) {
	const K = 4
	conns, addrs, err := Bind(K)
	if err != nil {
		t.Fatal(err)
	}
	wA, err := NewGroup(GroupConfig{Size: K, Local: []int{0, 1}, Conns: conns[:2], Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer wA.Close()
	wB, err := NewGroup(GroupConfig{Size: K, Local: []int{2, 3}, Conns: conns[2:], Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer wB.Close()

	comms := append(wA.Comms(), wB.Comms()...)
	err = runtime.Run(comms, func(c runtime.Comm) error {
		// Ring exchange plus a barrier, crossing the world boundary.
		to, from := (c.Rank()+1)%K, (c.Rank()+K-1)%K
		if err := c.Send(to, 1, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		p, err := c.Recv(from, 1)
		if err != nil {
			return err
		}
		if len(p) != 1 || int(p[0]) != from {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), p, from)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRingSteadyState proves the bounded-allocation claim: after a warmup
// exchange, further iterations mint no new packet buffers.
func TestRingSteadyState(t *testing.T) {
	const K = 4
	tp, err := vpt.NewBalanced(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(K)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	run := func(iters int) error {
		return runtime.Run(w.Comms(), func(c runtime.Comm) error {
			buf := bytes.Repeat([]byte{byte(c.Rank())}, 512)
			for i := 0; i < iters; i++ {
				if _, err := core.Exchange(c, tp, map[int][]byte{(c.Rank() + 1) % K: buf}); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := run(20); err != nil {
		t.Fatal(err)
	}
	minted := w.Ring().Stats().Minted
	if err := run(50); err != nil {
		t.Fatal(err)
	}
	after := w.Ring().Stats()
	if after.Minted != minted {
		t.Errorf("steady state minted buffers: %d -> %d", minted, after.Minted)
	}
	t.Logf("ring: %+v", after)
}

// TestSocketTeardown closes a world mid-traffic and checks goroutines and
// descriptors drain — the direct satellite check beyond the per-subtest
// checks tptest.Run performs.
func TestSocketTeardown(t *testing.T) {
	base := tptest.OpenFDs()
	for i := 0; i < 3; i++ {
		w, err := NewWorld(6)
		if err != nil {
			t.Fatal(err)
		}
		comms := w.Comms()
		done := make(chan struct{})
		go func() {
			defer close(done)
			comms[1].Recv(0, 0) // blocked until close
		}()
		if err := comms[0].Send(2, 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		w.Close()
		<-done
	}
	tptest.CheckNoLeakedFDs(t, base)
}
