//go:build race

package udpnet

// raceEnabled reports that the race detector instruments this build; its
// runtime allocates on synchronization edges, so allocation-count gates
// are meaningless under -race.
const raceEnabled = true
