package udpnet

import (
	"encoding/binary"
	"time"

	"stfw/internal/msg"
)

// sendEntry is one datagram staged for the wire in a sender drain pass.
type sendEntry struct {
	buf []byte
	to  int
	sl  *sendLink // non-nil: data packet, seq valid, slot pinned (sending)
	seq uint32
	ack bool // buf is an ack scratch buffer, returned to the ring after
}

// senderLoop drains one rank's transmit queue: it seals and window-claims
// flush-pending links, revalidates resend and ack items, and pushes the
// whole pass to the wire as one batch (one or a few sendmmsg calls on the
// fast path). Window slots touched by the pass are pinned with the
// `sending` flag, so an ack landing mid-syscall defers the buffer release
// instead of yanking it out from under the kernel.
func (w *World) senderLoop(rs *rankState) {
	defer w.wg.Done()
	q := &rs.out
	var items []outItem
	var flush []*sendLink
	var batch []sendEntry
	for {
		q.mu.Lock()
		for len(q.items) == 0 && len(q.flush) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		items, q.items = q.items, items[:0]
		flush, q.flush = q.flush, flush[:0]
		for _, sl := range flush {
			sl.inFlush = false
		}
		q.mu.Unlock()

		now := time.Now().UnixNano()
		batch = batch[:0]
		for _, it := range items {
			if it.rl != nil {
				batch = w.stageAck(rs, it.rl, batch)
				continue
			}
			batch = w.stageResend(it.sl, it.seq, now, batch)
		}
		for _, sl := range flush {
			batch = w.drainLink(rs, sl, now, batch)
		}
		w.transmit(rs, batch)
	}
}

// stageAck encodes the link's latest ack snapshot into a ring buffer.
func (w *World) stageAck(rs *rankState, rl *recvLink, batch []sendEntry) []sendEntry {
	rl.mu.Lock()
	cum, bm := rl.ackCum, rl.ackBm
	rl.ackQueued = false
	rl.mu.Unlock()
	buf := buildAck(w.ring.Get(), rs.rank, cum, bm)
	w.stats.acksSent.Add(1)
	rl.m.ackSent()
	return append(batch, sendEntry{buf: buf, to: rl.peer, ack: true})
}

// stageResend revalidates a queued (link, seq) against the window: acked
// or reused slots are stale no-ops.
func (w *World) stageResend(sl *sendLink, seq uint32, now int64, batch []sendEntry) []sendEntry {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	s := sl.slot(seq)
	s.queued = false
	if s.buf == nil || s.seq != seq || s.acked {
		return batch
	}
	s.sending = true
	s.resent = true // Karn: this seq's acks no longer yield RTT samples
	s.lastSend = now
	return append(batch, sendEntry{buf: s.buf, to: sl.peer, sl: sl, seq: seq})
}

// drainLink seals the link's open packet and promotes backlog packets into
// window slots while credits remain.
func (w *World) drainLink(rs *rankState, sl *sendLink, now int64, batch []sendEntry) []sendEntry {
	sl.mu.Lock()
	w.sealLocked(sl)
	for len(sl.backlog)-sl.backlogHead > 0 && sl.inFlight() < window {
		s := sl.slot(sl.nextSeq)
		if s.buf != nil || s.sending {
			break // release deferred behind an in-flight syscall
		}
		buf := sl.backlog[sl.backlogHead]
		sl.backlog[sl.backlogHead] = nil
		sl.backlogHead++
		seq := sl.nextSeq
		sl.nextSeq++
		binary.LittleEndian.PutUint32(buf[8:], seq)
		*s = pktSlot{buf: buf, seq: seq, sending: true, lastSend: now}
		w.stats.dataSent.Add(1)
		sl.m.pktSent(len(buf))
		batch = append(batch, sendEntry{buf: buf, to: sl.peer, sl: sl, seq: seq})
	}
	if len(sl.backlog)-sl.backlogHead > 0 {
		if !sl.stalled {
			sl.stalled = true
			w.stats.creditStalls.Add(1)
			sl.m.windowStall()
			w.tele(rs.rank).CountCreditStall()
		}
	} else {
		sl.stalled = false
	}
	sl.cond.Broadcast() // backlog space may have opened
	sl.mu.Unlock()
	return batch
}

// transmit pushes a staged batch to the wire, applying loss injection,
// then unpins the touched window slots and completes deferred releases.
func (w *World) transmit(rs *rankState, batch []sendEntry) {
	if len(batch) == 0 {
		return
	}
	w.stats.batches.Add(1)
	w.stats.batchDgrams.Add(int64(len(batch)))
	if t := w.tele(rs.rank); t != nil {
		t.CountBatch(len(batch))
		for _, e := range batch {
			t.ObserveDgram(len(e.buf))
		}
	}

	wire := batch
	if w.opts.loss > 0 {
		wire = make([]sendEntry, 0, len(batch))
		for _, e := range batch {
			if rs.rng.Float64() < w.opts.loss {
				w.stats.injectedDrops.Add(1)
				continue // "sent" as far as the window is concerned
			}
			wire = append(wire, e)
		}
	}
	w.sendPackets(rs, wire)

	for _, e := range batch {
		if e.ack {
			w.ring.Put(e.buf)
			continue
		}
		if e.sl == nil {
			continue
		}
		e.sl.mu.Lock()
		s := e.sl.slot(e.seq)
		if s.seq == e.seq && s.sending {
			s.sending = false
			if s.releaseAfterSend {
				s.releaseAfterSend = false
				if s.buf != nil {
					w.ring.Put(s.buf)
					s.buf = nil
				}
			}
		}
		needKick := len(e.sl.backlog)-e.sl.backlogHead > 0 && e.sl.inFlight() < window
		e.sl.mu.Unlock()
		if needKick {
			rs.kick(e.sl)
		}
	}
}

// sendPackets writes a batch of datagrams, preferring the platform's
// batched syscall. Socket-level refusals (ENOBUFS, ICMP-driven errors
// during teardown) are treated as drops: the reliability layer recovers.
func (w *World) sendPackets(rs *rankState, batch []sendEntry) {
	if len(batch) == 0 {
		return
	}
	if rs.bio != nil {
		if errs := rs.bio.send(rs.rc, batch); errs > 0 {
			w.stats.sendErrs.Add(int64(errs))
		}
		return
	}
	for _, e := range batch {
		if _, err := rs.conn.WriteToUDP(e.buf, w.addrs[e.to]); err != nil {
			w.stats.sendErrs.Add(1)
		}
	}
}

// receiverLoop pulls datagram batches off one rank's socket (recvmmsg on
// the fast path), feeds them through the per-link sequencing machinery,
// and makes the batch-end ack decisions.
func (w *World) receiverLoop(rs *rankState) {
	defer w.wg.Done()
	bufs := make([][]byte, recvBatchMax)
	lens := make([]int, recvBatchMax)
	for i := range bufs {
		bufs[i] = w.ring.Get()[:maxDatagram]
	}
	var dirty []*recvLink
	for {
		n, err := w.recvPackets(rs, bufs, lens)
		if err != nil {
			for _, b := range bufs {
				w.ring.Put(b[:0])
			}
			return
		}
		dirty = dirty[:0]
		for i := 0; i < n; i++ {
			kept, rl := w.handleDgram(rs, bufs[i], lens[i])
			if kept {
				bufs[i] = w.ring.Get()[:maxDatagram]
			}
			if rl != nil && !rl.inDirty {
				rl.inDirty = true
				dirty = append(dirty, rl)
			}
		}
		now := time.Now().UnixNano()
		for _, rl := range dirty {
			rl.inDirty = false
			w.maybeAck(rs, rl, now)
		}
	}
}

// recvPackets fills bufs with inbound datagrams, blocking for at least
// one. The portable path reads a single datagram per call.
func (w *World) recvPackets(rs *rankState, bufs [][]byte, lens []int) (int, error) {
	if rs.bio != nil {
		return rs.bio.recv(rs.rc, bufs, lens)
	}
	n, _, err := rs.conn.ReadFromUDP(bufs[0])
	if err != nil {
		return 0, err
	}
	lens[0] = n
	return 1, nil
}

// handleDgram routes one datagram. It reports whether the buffer was
// retained (stashed out-of-order packet) and which receive link, if any,
// needs an ack decision at batch end.
func (w *World) handleDgram(rs *rankState, buf []byte, n int) (kept bool, dirty *recvLink) {
	h, body, err := parseDgram(buf[:n], w.size)
	if err != nil {
		w.stats.malformed.Add(1)
		return false, nil
	}
	w.tele(rs.rank).ObserveDgram(n)
	if h.kind == kindAck {
		bm, err := parseAck(body)
		if err != nil {
			w.stats.malformed.Add(1)
			return false, nil
		}
		w.handleAck(rs, rs.sl[h.from], h.seq, bm)
		return false, nil
	}
	rl := rs.rl[h.from]
	switch d := h.seq - rl.expected; {
	case d == 0:
		rl.m.pktRecvd(n)
		w.processPacket(rs, rl, h, body)
		rl.expected++
		for {
			idx := rl.expected % window
			pb := rl.pending[idx]
			if pb == nil {
				break
			}
			rl.pending[idx] = nil
			ph, pbody, perr := parseDgram(pb[:rl.pendLen[idx]], w.size)
			if perr == nil {
				w.processPacket(rs, rl, ph, pbody)
			}
			w.ring.Put(pb[:0])
			rl.expected++
		}
	case d < window:
		idx := h.seq % window
		if rl.pending[idx] == nil {
			rl.pending[idx] = buf
			rl.pendLen[idx] = n
			rl.m.pktRecvd(n)
			kept = true // gap: batch-end ack carries the bitmap
		} else {
			w.stats.dups.Add(1)
			rl.m.dup()
		}
	default:
		// Old duplicate (or far future, impossible from a correct peer).
		// Still dirty: re-acking lets a peer that missed our ack advance.
		w.stats.dups.Add(1)
		rl.m.dup()
	}
	rl.mu.Lock()
	rl.dirty = true
	rl.mu.Unlock()
	return kept, rl
}

// processPacket walks the chunks of an in-sequence data packet, copying
// fragments into the frame under reassembly and delivering completed
// frames. Receiver goroutine only.
func (w *World) processPacket(rs *rankState, rl *recvLink, h dgramHeader, body []byte) {
	for k := 0; k < h.count; k++ {
		c, rest, err := nextChunk(body)
		if err != nil {
			w.stats.malformed.Add(1)
			return
		}
		body = rest
		if !w.deliverChunk(rs, rl, c) {
			w.stats.malformed.Add(1)
			return
		}
	}
	if len(body) != 0 {
		w.stats.malformed.Add(1)
	}
}

// deliverChunk applies one fragment. In-sequence processing means chunks
// arrive exactly as appended: sequential frame IDs, sequential offsets.
// Anything else is corruption and drops the rest of the packet.
func (w *World) deliverChunk(rs *rankState, rl *recvLink, c chunk) bool {
	if rl.cur == nil {
		if c.frameID != rl.nextFrameID || c.off != 0 {
			return false
		}
		rl.cur = msg.GetFrameLen(int(c.frameLen))
		rl.curGot = 0
		rl.curTag = c.tag
	} else if c.frameID != rl.nextFrameID || c.tag != rl.curTag || int(c.frameLen) != len(rl.cur) {
		return false
	}
	if int(c.off) != rl.curGot {
		return false
	}
	copy(rl.cur[c.off:], c.frag)
	rl.curGot += len(c.frag)
	if rl.curGot < len(rl.cur) {
		return true
	}
	payload := rl.cur
	rl.cur = nil
	rl.nextFrameID++
	rl.m.frameRecvd()
	if c.tag == ctrlEnter || c.tag == ctrlRelease {
		msg.PutFrame(payload)
		w.handleCtrl(rs, c.tag)
		return true
	}
	if !rs.ib.push(inFrame{from: rl.peer, tag: c.tag, payload: payload}) {
		msg.PutFrame(payload) // world closed
		return true
	}
	rl.mu.Lock()
	if rl.noteFrame(c.tag) {
		rl.stageComplete = true
	}
	rl.mu.Unlock()
	return true
}

// handleCtrl advances the wire barrier. The receiver goroutine only
// updates counters and wakes waiters — it never sends, so barrier
// progress can never deadlock against flow control.
func (w *World) handleCtrl(rs *rankState, tag int) {
	b := &rs.bar
	b.mu.Lock()
	if tag == ctrlEnter {
		b.enters++
	} else {
		b.releases++
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// maybeAck makes the batch-end ack decision for a link that saw traffic.
// Without hints every batch acks (the conservative default). With hints
// installed, acks wait for a hinted stage to complete, bounded by the
// liveness rules: half-window credit pressure, a reorder gap (the bitmap
// doubles as a fast-resend request), or ackMaxDelay since the last ack.
func (w *World) maybeAck(rs *rankState, rl *recvLink, now int64) {
	bm := rl.sackBitmap()
	rl.mu.Lock()
	if !rl.dirty && bm == 0 {
		rl.mu.Unlock()
		return
	}
	unacked := rl.expected - rl.lastAckSent
	force := rl.hint == nil ||
		rl.stageComplete ||
		bm != 0 ||
		unacked >= window/2 ||
		now-rl.lastAckTime > int64(ackMaxDelay)
	if !force {
		rl.mu.Unlock()
		w.stats.acksSuppressed.Add(1)
		rl.m.ackSuppressed()
		return
	}
	if rl.hint != nil {
		// Classify what broke the suppression: the zero-speculation path
		// (a hinted stage's inbound set completed) vs a liveness rule
		// forcing an early ack despite an unfinished hint.
		if rl.stageComplete {
			w.stats.stageAcks.Add(1)
			rl.m.stageAck()
		} else {
			rl.m.livenessAck()
		}
	}
	rl.ackCum = rl.expected
	rl.ackBm = bm
	rl.lastAckSent = rl.expected
	rl.lastAckTime = now
	rl.dirty = false
	rl.stageComplete = false
	queue := !rl.ackQueued
	rl.ackQueued = true
	rl.mu.Unlock()
	if queue {
		rs.enqueue(outItem{rl: rl})
	}
	rs.kick(rs.sl[rl.peer]) // piggyback: drain anything sealed for the peer
}

// handleAck applies a cumulative ack + selective bitmap to a send link:
// the acked prefix frees window slots (and their credits), selective acks
// release buffers early, and a reported gap triggers fast resend of the
// missing packets.
func (w *World) handleAck(rs *rankState, sl *sendLink, cum uint32, bm uint64) {
	now := time.Now().UnixNano()
	var resend []uint32
	sl.mu.Lock()
	if adv := int32(cum - sl.sndUna); adv > 0 {
		if uint32(adv) > sl.inFlight() {
			sl.mu.Unlock() // acking unsent packets: corrupt, ignore
			return
		}
		for seq := sl.sndUna; seq != cum; seq++ {
			w.freeSlotLocked(sl, seq, now)
		}
		sl.sndUna = cum
	}
	if bm != 0 {
		for i := 0; i < 64; i++ {
			if bm&(1<<uint(i)) == 0 {
				continue
			}
			seq := cum + 1 + uint32(i)
			if seq-sl.sndUna >= sl.inFlight() {
				continue
			}
			s := sl.slot(seq)
			if s.seq == seq && s.buf != nil && !s.acked {
				s.acked = true
				sl.m.sackRepair()
				if !s.resent {
					sl.m.rttSample(now - s.lastSend)
				}
				if s.sending {
					s.releaseAfterSend = true
				} else {
					w.ring.Put(s.buf)
					s.buf = nil
				}
			}
		}
		// The bitmap reports a gap: resend unacked packets below the
		// highest selectively-acked sequence without waiting for the RTO.
		high := cum + 1
		for i := 63; i >= 0; i-- {
			if bm&(1<<uint(i)) != 0 {
				high = cum + 2 + uint32(i)
				break
			}
		}
		for seq := sl.sndUna; int32(seq-high) < 0 && seq != sl.nextSeq; seq++ {
			s := sl.slot(seq)
			if s.seq != seq || s.buf == nil || s.acked || s.queued || s.sending {
				continue
			}
			if now-s.lastSend < int64(fastResendGap) {
				continue
			}
			s.queued = true
			resend = append(resend, seq)
		}
	}
	hasBacklog := len(sl.backlog)-sl.backlogHead > 0 || sl.open != nil
	sl.cond.Broadcast()
	sl.mu.Unlock()
	for _, seq := range resend {
		w.stats.resends.Add(1)
		sl.m.resend(false) // gap-triggered
		w.tele(rs.rank).CountResend()
		rs.enqueue(outItem{sl: sl, seq: seq})
	}
	if hasBacklog {
		rs.kick(sl)
	}
}

// freeSlotLocked releases the window slot for seq after the cumulative
// ack passed it; the caller holds sl.mu. now is the ack arrival time,
// used for the Karn-filtered RTT sample: a slot that was never resent and
// never selectively acked (an earlier sack would have sampled a stale
// round trip here) contributes ack-arrival minus last-send.
func (w *World) freeSlotLocked(sl *sendLink, seq uint32, now int64) {
	s := sl.slot(seq)
	if s.seq != seq {
		return
	}
	if !s.resent && !s.acked && s.buf != nil {
		sl.m.rttSample(now - s.lastSend)
	}
	if s.buf != nil {
		if s.sending {
			s.releaseAfterSend = true
			return // slot stays pinned until the syscall returns
		}
		w.ring.Put(s.buf)
		s.buf = nil
	}
	s.acked = false
	s.queued = false
	s.resent = false
}

// retransmitLoop periodically rescans every local link's window for
// packets past their RTO and queues them for resend.
func (w *World) retransmitLoop() {
	defer w.wg.Done()
	t := time.NewTicker(timerTick)
	defer t.Stop()
	for {
		select {
		case <-w.closed:
			return
		case <-t.C:
		}
		now := time.Now().UnixNano()
		for _, rs := range w.local {
			for _, sl := range rs.sl {
				var resend []uint32
				sl.mu.Lock()
				for seq := sl.sndUna; seq != sl.nextSeq; seq++ {
					s := sl.slot(seq)
					if s.seq != seq || s.buf == nil || s.acked || s.queued || s.sending {
						continue
					}
					if now-s.lastSend < int64(rto) {
						continue
					}
					s.queued = true
					resend = append(resend, seq)
				}
				sl.mu.Unlock()
				for _, seq := range resend {
					w.stats.resends.Add(1)
					sl.m.resend(true) // RTO scan
					w.tele(rs.rank).CountResend()
					rs.enqueue(outItem{sl: sl, seq: seq})
				}
			}
		}
	}
}
