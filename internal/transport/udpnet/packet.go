package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Datagram wire format (little-endian). One datagram is either a data
// packet — a batch of frame chunks coalesced onto one reliable per-link
// sequence number — or an ack reporting the receiver's cumulative progress
// plus a selective-ack bitmap:
//
//	datagram header (12 bytes):
//	  uint8  kind     — kindData or kindAck
//	  uint8  reserved — zero
//	  uint16 count    — data: number of chunks; ack: zero
//	  uint32 from     — sender rank
//	  uint32 seq      — data: per-link packet sequence number
//	                    ack:  cumulative ack (next expected seq; all
//	                          lower sequence numbers were received)
//
//	data chunk (20-byte header + fragment bytes):
//	  uint32 tag      — transport tag of the frame
//	  uint32 frameID  — per-link frame counter, assigned in send order
//	  uint32 frameLen — total frame byte length
//	  uint32 off      — fragment offset within the frame
//	  uint32 fragLen  — fragment byte length (0 only for empty frames)
//
//	ack payload (8 bytes):
//	  uint64 bitmap   — bit i set means seq cumAck+1+i was received
//	                    (selective acks beyond the cumulative prefix)
//
// Every parser below is total: arbitrary input bytes produce an error,
// never a panic or an over-read. The receive path depends on that (a
// corrupted or torn datagram must be droppable), and the fuzz target in
// fuzz_test.go enforces it.
const (
	dgramHdrLen = 12
	chunkHdrLen = 20
	ackBodyLen  = 8

	// maxDatagram is the packet buffer size: every datagram, headers
	// included, fits in one buffer. Well under the 64 KiB UDP limit, large
	// enough that header overhead on bulk frames stays below 1%.
	maxDatagram = 8192

	// maxFrameLen bounds a frame declared by a chunk header, mirroring
	// tcpnet's length-prefix sanity bound.
	maxFrameLen = 1 << 30
)

const (
	kindData = 1
	kindAck  = 2
)

// ErrMalformed reports a datagram that does not parse under the wire
// format. Receivers drop such packets; the reliability layer recovers.
var ErrMalformed = errors.New("udpnet: malformed datagram")

// dgramHeader is the decoded fixed header of one datagram.
type dgramHeader struct {
	kind  byte
	count int
	from  int
	seq   uint32
}

// putDgramHeader writes the header into b[0:dgramHdrLen].
func putDgramHeader(b []byte, h dgramHeader) {
	b[0] = h.kind
	b[1] = 0
	binary.LittleEndian.PutUint16(b[2:], uint16(h.count))
	binary.LittleEndian.PutUint32(b[4:], uint32(h.from))
	binary.LittleEndian.PutUint32(b[8:], h.seq)
}

// parseDgram decodes the datagram header and returns it with the body
// bytes. size is the world size, bounding the from field.
func parseDgram(b []byte, size int) (dgramHeader, []byte, error) {
	if len(b) < dgramHdrLen {
		return dgramHeader{}, nil, fmt.Errorf("%w: %d header bytes", ErrMalformed, len(b))
	}
	h := dgramHeader{
		kind:  b[0],
		count: int(binary.LittleEndian.Uint16(b[2:])),
		from:  int(binary.LittleEndian.Uint32(b[4:])),
		seq:   binary.LittleEndian.Uint32(b[8:]),
	}
	if h.kind != kindData && h.kind != kindAck {
		return dgramHeader{}, nil, fmt.Errorf("%w: kind %d", ErrMalformed, h.kind)
	}
	if b[1] != 0 {
		return dgramHeader{}, nil, fmt.Errorf("%w: nonzero reserved byte", ErrMalformed)
	}
	if h.from < 0 || h.from >= size {
		return dgramHeader{}, nil, fmt.Errorf("%w: rank %d out of [0,%d)", ErrMalformed, h.from, size)
	}
	return h, b[dgramHdrLen:], nil
}

// chunk is one decoded frame fragment. frag aliases the datagram buffer.
type chunk struct {
	tag      int
	frameID  uint32
	frameLen uint32
	off      uint32
	frag     []byte
}

// appendChunk appends one encoded chunk to the packet under construction
// and returns the extended slice. The caller guarantees capacity
// (chunkSpace) — packets are built inside fixed-size ring buffers.
func appendChunk(b []byte, tag int, frameID, frameLen, off uint32, frag []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(tag))
	b = binary.LittleEndian.AppendUint32(b, frameID)
	b = binary.LittleEndian.AppendUint32(b, frameLen)
	b = binary.LittleEndian.AppendUint32(b, off)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(frag)))
	return append(b, frag...)
}

// nextChunk decodes the chunk at the front of body, returning it and the
// remaining bytes. The fragment is validated against its frame geometry:
// declared lengths must be in range and the fragment must lie inside the
// frame, so a consumer can copy frag at off without further checks.
func nextChunk(body []byte) (chunk, []byte, error) {
	if len(body) < chunkHdrLen {
		return chunk{}, nil, fmt.Errorf("%w: %d chunk header bytes", ErrMalformed, len(body))
	}
	c := chunk{
		tag:      int(binary.LittleEndian.Uint32(body[0:])),
		frameID:  binary.LittleEndian.Uint32(body[4:]),
		frameLen: binary.LittleEndian.Uint32(body[8:]),
		off:      binary.LittleEndian.Uint32(body[12:]),
	}
	fragLen := binary.LittleEndian.Uint32(body[16:])
	body = body[chunkHdrLen:]
	if c.frameLen > maxFrameLen {
		return chunk{}, nil, fmt.Errorf("%w: frame length %d", ErrMalformed, c.frameLen)
	}
	if uint64(c.off)+uint64(fragLen) > uint64(c.frameLen) {
		return chunk{}, nil, fmt.Errorf("%w: fragment [%d,%d) outside frame of %d bytes",
			ErrMalformed, c.off, uint64(c.off)+uint64(fragLen), c.frameLen)
	}
	if uint64(fragLen) > uint64(len(body)) {
		return chunk{}, nil, fmt.Errorf("%w: fragment of %d bytes, %d remain", ErrMalformed, fragLen, len(body))
	}
	c.frag = body[:fragLen:fragLen]
	return c, body[fragLen:], nil
}

// buildAck encodes a complete ack datagram into b (which must have
// capacity dgramHdrLen+ackBodyLen) and returns the filled slice.
func buildAck(b []byte, from int, cumAck uint32, bitmap uint64) []byte {
	b = b[:dgramHdrLen+ackBodyLen]
	putDgramHeader(b, dgramHeader{kind: kindAck, from: from, seq: cumAck})
	binary.LittleEndian.PutUint64(b[dgramHdrLen:], bitmap)
	return b
}

// parseAck decodes an ack body. The cumulative ack itself travels in the
// datagram header's seq field.
func parseAck(body []byte) (bitmap uint64, err error) {
	if len(body) != ackBodyLen {
		return 0, fmt.Errorf("%w: ack body of %d bytes", ErrMalformed, len(body))
	}
	return binary.LittleEndian.Uint64(body), nil
}
