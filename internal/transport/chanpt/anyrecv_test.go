package chanpt

import (
	"testing"

	"stfw/internal/runtime"
)

// RecvAnyOf must hand out the earliest-arrived deliverable frame, in the
// order senders appended them — not in candidate-list order.
func TestRecvAnyOfArrivalOrder(t *testing.T) {
	w, err := NewWorld(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	comms := w.Comms()
	// Receiver is rank 0; enqueue from rank 2 first, then rank 1.
	if err := comms[2].Send(0, 7, []byte("from2")); err != nil {
		t.Fatal(err)
	}
	if err := comms[1].Send(0, 7, []byte("from1")); err != nil {
		t.Fatal(err)
	}
	from, payload, err := runtime.RecvAnyOf(comms[0], 7, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if from != 2 || string(payload) != "from2" {
		t.Fatalf("first match: from=%d payload=%q, want rank 2 (earliest arrival)", from, payload)
	}
	from, payload, err = runtime.RecvAnyOf(comms[0], 7, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 || string(payload) != "from1" {
		t.Fatalf("second match: from=%d payload=%q", from, payload)
	}
}

// Frames from ranks outside the candidate set must stay queued even when
// they arrived first — they belong to a different logical receive (e.g. the
// next exchange reusing the same stage tag).
func TestRecvAnyOfSenderFilter(t *testing.T) {
	w, err := NewWorld(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	comms := w.Comms()
	if err := comms[2].Send(0, 7, []byte("early-but-unlisted")); err != nil {
		t.Fatal(err)
	}
	if err := comms[1].Send(0, 7, []byte("listed")); err != nil {
		t.Fatal(err)
	}
	from, payload, err := runtime.RecvAnyOf(comms[0], 7, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 || string(payload) != "listed" {
		t.Fatalf("got from=%d payload=%q, want the listed sender", from, payload)
	}
	// The unlisted frame is still there for a targeted receive.
	got, err := comms[0].Recv(2, 7)
	if err != nil || string(got) != "early-but-unlisted" {
		t.Fatalf("queued frame lost: %q, %v", got, err)
	}
}

// Frames with other tags stay queued: a fast neighbor's next-stage frame
// must not be matched by the current stage's receive.
func TestRecvAnyOfTagFilter(t *testing.T) {
	w, err := NewWorld(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	comms := w.Comms()
	if err := comms[1].Send(0, 8, []byte("next-stage")); err != nil {
		t.Fatal(err)
	}
	if err := comms[1].Send(0, 7, []byte("this-stage")); err != nil {
		t.Fatal(err)
	}
	from, payload, err := runtime.RecvAnyOf(comms[0], 7, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 || string(payload) != "this-stage" {
		t.Fatalf("got %q from %d, want the tag-7 frame", payload, from)
	}
	got, err := comms[0].Recv(1, 8)
	if err != nil || string(got) != "next-stage" {
		t.Fatalf("tag-8 frame lost: %q, %v", got, err)
	}
}

func TestRecvAnyOfRejectsEmptyAndOutOfRange(t *testing.T) {
	w, err := NewWorld(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := w.Comms()[0].(*comm)
	if _, _, err := c.RecvAnyOf(1, nil); err == nil {
		t.Error("empty candidate list accepted")
	}
	if _, _, err := c.RecvAnyOf(1, []int{5}); err == nil {
		t.Error("out-of-range candidate accepted")
	}
}

func TestChanptSendRetains(t *testing.T) {
	w, err := NewWorld(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !runtime.SendRetains(w.Comms()[0]) {
		t.Error("chanpt hands payloads off zero-copy; SendRetains must be true")
	}
}
