package chanpt

import (
	"testing"

	"stfw/internal/runtime"
	"stfw/internal/transport/tptest"
)

// TestTransportConformance runs the shared matcher-contract suite
// (internal/transport/tptest) over the in-process channel transport.
// chanpt's matcher is deterministic — Send enqueues immediately in program
// order — so the strict arrival-order subtest applies, and payloads are
// handed to the receiver zero-copy (SendRetains true).
func TestTransportConformance(t *testing.T) {
	tptest.Run(t, func(size int) ([]runtime.Comm, func(), error) {
		w, err := NewWorld(size, 4)
		if err != nil {
			return nil, nil, err
		}
		return w.Comms(), w.Close, nil
	}, tptest.Options{
		WantSendRetains:    true,
		StrictArrivalOrder: true,
		TestOutOfRange:     true,
		TestClose:          true,
	})
}

// TestTransportConformanceFaultDelay re-runs the contract suite with the
// tptest fault injector delaying every send. Delay is the one fault class
// that is fully contract-preserving (per-pair FIFO survives, only timing
// shifts), so the whole suite must still pass — including strict arrival
// order, because the suite sequences cross-rank sends and a delayed Send
// still blocks the sender until the frame is enqueued.
func TestTransportConformanceFaultDelay(t *testing.T) {
	factory := tptest.WithFaults(func(size int) ([]runtime.Comm, func(), error) {
		w, err := NewWorld(size, 4)
		if err != nil {
			return nil, nil, err
		}
		return w.Comms(), nil, nil
	}, tptest.FaultConfig{Seed: 1, Delay: 1})
	tptest.Run(t, factory, tptest.Options{
		WantSendRetains:    true,
		StrictArrivalOrder: true,
		TestOutOfRange:     false, // range checks live in the inner transport, already covered above
	})
}
