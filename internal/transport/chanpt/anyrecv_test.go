package chanpt

import (
	"testing"

	"stfw/internal/runtime"
	"stfw/internal/transport/tptest"
)

// TestTransportConformance runs the shared matcher-contract suite
// (internal/transport/tptest) over the in-process channel transport.
// chanpt's matcher is deterministic — Send enqueues immediately in program
// order — so the strict arrival-order subtest applies, and payloads are
// handed to the receiver zero-copy (SendRetains true).
func TestTransportConformance(t *testing.T) {
	tptest.Run(t, func(size int) ([]runtime.Comm, func(), error) {
		w, err := NewWorld(size, 4)
		if err != nil {
			return nil, nil, err
		}
		return w.Comms(), nil, nil
	}, tptest.Options{
		WantSendRetains:    true,
		StrictArrivalOrder: true,
		TestOutOfRange:     true,
	})
}
