// Package chanpt implements the runtime.Comm interface with in-process Go
// channels: one buffered mailbox per ordered rank pair. It executes the real
// store-and-forward algorithm with real payloads entirely inside one OS
// process, which makes whole-world runs with thousands of ranks cheap enough
// for tests and benchmarks.
package chanpt

import (
	"fmt"

	"stfw/internal/runtime"
)

type frame struct {
	tag     int
	payload []byte
}

// World owns the mailboxes shared by all rank endpoints.
type World struct {
	size    int
	mailbox [][]chan frame // [from][to]
	barrier *runtime.Barrier
}

// NewWorld creates a world of size ranks. buffer is the per-pair mailbox
// capacity; the stage-synchronous store-and-forward schedule needs capacity
// 1 to avoid blocking sends, but larger values are accepted.
func NewWorld(size, buffer int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("chanpt: world size %d < 1", size)
	}
	if buffer < 1 {
		buffer = 1
	}
	w := &World{size: size, barrier: runtime.NewBarrier(size)}
	w.mailbox = make([][]chan frame, size)
	for i := range w.mailbox {
		w.mailbox[i] = make([]chan frame, size)
		for j := range w.mailbox[i] {
			w.mailbox[i][j] = make(chan frame, buffer)
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comms returns one communicator per rank, index = rank.
func (w *World) Comms() []runtime.Comm {
	cs := make([]runtime.Comm, w.size)
	for r := range cs {
		cs[r] = &comm{world: w, rank: r}
	}
	return cs
}

// Run executes fn on every rank of this world.
func (w *World) Run(fn runtime.RankFunc) error { return runtime.Run(w.Comms(), fn) }

type comm struct {
	world *World
	rank  int
}

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.world.size }

func (c *comm) Send(to, tag int, payload []byte) error {
	if to < 0 || to >= c.world.size {
		return fmt.Errorf("chanpt: send to rank %d out of range [0,%d)", to, c.world.size)
	}
	c.world.mailbox[c.rank][to] <- frame{tag: tag, payload: payload}
	return nil
}

func (c *comm) Recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= c.world.size {
		return nil, fmt.Errorf("chanpt: recv from rank %d out of range [0,%d)", from, c.world.size)
	}
	f := <-c.world.mailbox[from][c.rank]
	if f.tag != tag {
		return nil, fmt.Errorf("chanpt: rank %d received tag %d from %d, expected %d", c.rank, f.tag, from, tag)
	}
	return f.payload, nil
}

func (c *comm) Barrier() error {
	c.world.barrier.Await()
	return nil
}
