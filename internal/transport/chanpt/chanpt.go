// Package chanpt implements the runtime.Comm interface in-process: one
// receive-side frame matcher per rank, protected by a mutex, into which
// senders append frames in arrival order. It executes the real
// store-and-forward algorithm with real payloads entirely inside one OS
// process, which makes whole-world runs with thousands of ranks cheap enough
// for tests and benchmarks.
//
// The transport is zero-copy: Send hands the payload slice itself to the
// receiving rank (SendRetains reports true), and the matcher supports
// arrival-order receives (runtime.AnyReceiver), so the pipelined exchange
// engine can process whichever neighbor's frame lands first.
package chanpt

import (
	"fmt"
	"sync"

	"stfw/internal/runtime"
)

type frame struct {
	from    int
	tag     int
	payload []byte
}

// inbox is one rank's receive-side matcher: undelivered frames in arrival
// order, plus per-sender occupancy counts that bound how far a sender may
// run ahead (the world's buffer parameter, mirroring a bounded mailbox).
type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	frames  []frame
	queued  []int // queued[from] = frames currently buffered from that rank
	waiters int   // goroutines blocked in cond.Wait; skip Broadcast when 0
	closed  bool  // world torn down; blocked operations fail instead of waiting
}

// wait blocks on the matcher's condition, tracking the waiter count so
// state changes with nobody blocked skip the Broadcast entirely (the
// common case on the exchange hot path).
func (ib *inbox) wait() {
	ib.waiters++
	ib.cond.Wait()
	ib.waiters--
}

func (ib *inbox) wake() {
	if ib.waiters > 0 {
		ib.cond.Broadcast()
	}
}

func newInbox(worldSize int) *inbox {
	ib := &inbox{queued: make([]int, worldSize)}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

// pop removes frame i and wakes blocked senders and receivers.
func (ib *inbox) pop(i int) []byte {
	f := ib.frames[i]
	ib.frames = append(ib.frames[:i], ib.frames[i+1:]...)
	ib.queued[f.from]--
	ib.wake()
	return f.payload
}

// World owns the matchers shared by all rank endpoints.
type World struct {
	size    int
	buffer  int
	inboxes []*inbox
	barrier *runtime.Barrier
}

// NewWorld creates a world of size ranks. buffer is the per-sender-pair
// matcher capacity; the stage-synchronous store-and-forward schedule needs
// capacity 1 to avoid blocking sends, but larger values are accepted.
func NewWorld(size, buffer int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("chanpt: world size %d < 1", size)
	}
	if buffer < 1 {
		buffer = 1
	}
	w := &World{size: size, buffer: buffer, barrier: runtime.NewBarrier(size)}
	w.inboxes = make([]*inbox, size)
	for i := range w.inboxes {
		w.inboxes[i] = newInbox(size)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Close tears the world down: every operation that would block — a receive
// with no matching frame, a send against a full matcher — fails from now
// on, and currently blocked ones are woken with an error. Frames already
// queued stay receivable, so a closing world can still be drained. Close
// exists for composite transports (internal/transport/hier) whose helper
// goroutines may be parked in a receive when the world is torn down; a
// plain single-world run never needs it.
func (w *World) Close() {
	for _, ib := range w.inboxes {
		ib.mu.Lock()
		ib.closed = true
		ib.cond.Broadcast()
		ib.mu.Unlock()
	}
}

// Comms returns one communicator per rank, index = rank.
func (w *World) Comms() []runtime.Comm {
	cs := make([]runtime.Comm, w.size)
	for r := range cs {
		cs[r] = &comm{world: w, rank: r}
	}
	return cs
}

// Run executes fn on every rank of this world.
func (w *World) Run(fn runtime.RankFunc) error { return runtime.Run(w.Comms(), fn) }

type comm struct {
	world *World
	rank  int
}

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.world.size }

// SendRetains reports true: the payload slice is handed to the receiving
// rank without copying, which then owns it.
func (c *comm) SendRetains() bool { return true }

func (c *comm) Send(to, tag int, payload []byte) error {
	if to < 0 || to >= c.world.size {
		return fmt.Errorf("chanpt: send to rank %d out of range [0,%d)", to, c.world.size)
	}
	ib := c.world.inboxes[to]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for ib.queued[c.rank] >= c.world.buffer {
		if ib.closed {
			return fmt.Errorf("chanpt: send to rank %d on closed world", to)
		}
		ib.wait()
	}
	if ib.closed {
		return fmt.Errorf("chanpt: send to rank %d on closed world", to)
	}
	ib.frames = append(ib.frames, frame{from: c.rank, tag: tag, payload: payload})
	ib.queued[c.rank]++
	ib.wake()
	return nil
}

func (c *comm) Recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= c.world.size {
		return nil, fmt.Errorf("chanpt: recv from rank %d out of range [0,%d)", from, c.world.size)
	}
	ib := c.world.inboxes[c.rank]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i := range ib.frames {
			if ib.frames[i].from != from {
				continue
			}
			// Frames between a fixed pair are matched in send order, so a
			// tag mismatch on the oldest frame is a protocol error, not a
			// frame to skip.
			if got := ib.frames[i].tag; got != tag {
				return nil, fmt.Errorf("chanpt: rank %d received tag %d from %d, expected %d", c.rank, got, from, tag)
			}
			return ib.pop(i), nil
		}
		if ib.closed {
			return nil, fmt.Errorf("chanpt: rank %d recv from %d on closed world", c.rank, from)
		}
		ib.wait()
	}
}

// RecvAnyOf implements runtime.AnyReceiver: it returns the earliest-arrived
// queued frame carrying tag whose sender is in from, blocking until one
// exists. Frames with other tags or from other ranks stay queued (they
// belong to a later stage or a later exchange).
func (c *comm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	if len(from) == 0 {
		return -1, nil, fmt.Errorf("chanpt: rank %d RecvAnyOf with no candidate senders", c.rank)
	}
	for _, f := range from {
		if f < 0 || f >= c.world.size {
			return -1, nil, fmt.Errorf("chanpt: recv from rank %d out of range [0,%d)", f, c.world.size)
		}
	}
	ib := c.world.inboxes[c.rank]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i := range ib.frames {
			if ib.frames[i].tag != tag {
				continue
			}
			sender := ib.frames[i].from
			for _, f := range from {
				if f == sender {
					return sender, ib.pop(i), nil
				}
			}
		}
		if ib.closed {
			return -1, nil, fmt.Errorf("chanpt: rank %d RecvAnyOf on closed world", c.rank)
		}
		ib.wait()
	}
}

func (c *comm) Barrier() error {
	c.world.barrier.Await()
	return nil
}
