package chanpt

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"stfw/internal/runtime"
)

func TestPointToPoint(t *testing.T) {
	w, err := NewWorld(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(1, 42, []byte("ping"))
		case 1:
			p, err := c.Recv(0, 42)
			if err != nil {
				return err
			}
			if !bytes.Equal(p, []byte("ping")) {
				return fmt.Errorf("payload %q", p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, 1); err == nil {
		t.Error("zero-size world should fail")
	}
	w, _ := NewWorld(2, 0) // buffer clamped to 1
	err := w.Run(func(c runtime.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(5, 0, nil); err == nil {
				return fmt.Errorf("send out of range should fail")
			}
			if _, err := c.Recv(-1, 0); err == nil {
				return fmt.Errorf("recv out of range should fail")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchDetected(t *testing.T) {
	w, _ := NewWorld(2, 1)
	err := w.Run(func(c runtime.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []byte("x"))
		}
		_, err := c.Recv(0, 2)
		if err == nil {
			return fmt.Errorf("tag mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrderPerPair(t *testing.T) {
	w, _ := NewWorld(2, 8)
	err := w.Run(func(c runtime.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 8; i++ {
				if err := c.Send(1, 7, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 8; i++ {
			p, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if int(p[0]) != i {
				return fmt.Errorf("out of order: got %d want %d", p[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const K = 16
	w, _ := NewWorld(K, 1)
	var before, after int32
	err := w.Run(func(c runtime.Comm) error {
		atomic.AddInt32(&before, 1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := atomic.LoadInt32(&before); got != K {
			return fmt.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), got)
		}
		atomic.AddInt32(&after, 1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := atomic.LoadInt32(&after); got != K {
			return fmt.Errorf("reused barrier broken: %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllRing(t *testing.T) {
	const K = 32
	w, _ := NewWorld(K, 1)
	err := w.Run(func(c runtime.Comm) error {
		right := (c.Rank() + 1) % K
		left := (c.Rank() + K - 1) % K
		if err := c.Send(right, 0, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		p, err := c.Recv(left, 0)
		if err != nil {
			return err
		}
		if int(p[0]) != left {
			return fmt.Errorf("got token %d from %d", p[0], left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesRankError(t *testing.T) {
	w, _ := NewWorld(4, 1)
	err := w.Run(func(c runtime.Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := err.Error(); got != "rank 2: boom" {
		t.Errorf("error = %q", got)
	}
}

func BenchmarkSendRecv(b *testing.B) {
	w, _ := NewWorld(2, 1)
	comms := w.Comms()
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			if _, err := comms[1].Recv(0, 0); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		if err := comms[0].Send(1, 0, payload); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}
