package tcpnet

import (
	"bytes"
	"fmt"
	"testing"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/vpt"
)

func TestPointToPointOverTCP(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(1, 3, []byte("over the wire"))
		case 1:
			p, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if !bytes.Equal(p, []byte("over the wire")) {
				return fmt.Errorf("payload %q", p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("size 0 accepted")
	}
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	comms := w.Comms()
	if err := comms[0].Send(9, 0, nil); err == nil {
		t.Error("out-of-range send accepted")
	}
	if _, err := comms[0].Recv(-1, 0); err == nil {
		t.Error("out-of-range recv accepted")
	}
	if w.Size() != 2 {
		t.Error("size wrong")
	}
}

func TestEmptyPayload(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, nil)
		}
		p, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if len(p) != 0 {
			return fmt.Errorf("got %d bytes", len(p))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyFramesFIFO(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	const N = 50
	err = w.Run(func(c runtime.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < N; i++ {
				if err := c.Send(1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < N; i++ {
			p, err := c.Recv(0, 5)
			if err != nil {
				return err
			}
			if int(p[0]) != i {
				return fmt.Errorf("out of order at %d: %d", i, p[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSTFWExchangeOverTCP(t *testing.T) {
	// The full store-and-forward algorithm over real sockets.
	const K = 16
	tp, err := vpt.NewBalanced(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(K)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		// Each rank sends a tagged byte to rank+1 and rank+5 (mod K).
		payloads := map[int][]byte{
			(c.Rank() + 1) % K: {byte(c.Rank()), 1},
			(c.Rank() + 5) % K: {byte(c.Rank()), 5},
		}
		d, err := core.Exchange(c, tp, payloads)
		if err != nil {
			return err
		}
		if len(d.Subs) != 2 {
			return fmt.Errorf("rank %d got %d deliveries", c.Rank(), len(d.Subs))
		}
		for _, sub := range d.Subs {
			wantFrom := (c.Rank() + K - int(sub.Data[1])) % K
			if sub.Src != wantFrom || int(sub.Data[0]) != wantFrom {
				return fmt.Errorf("rank %d: bad delivery %+v", c.Rank(), sub)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOverTCPWorld(t *testing.T) {
	w, err := NewWorld(8)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c runtime.Comm) error {
		for i := 0; i < 3; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAfterCloseFails(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	comms := w.Comms()
	done := make(chan error, 1)
	go func() {
		_, err := comms[1].Recv(0, 0)
		done <- err
	}()
	w.Close()
	if err := <-done; err == nil {
		t.Error("recv should fail after close")
	}
}
