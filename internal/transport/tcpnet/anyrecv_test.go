package tcpnet

import (
	"testing"

	"stfw/internal/runtime"
)

// RecvAnyOf over TCP: a frame from a rank outside the candidate set stays
// queued (regardless of network interleaving), and targeted receives can
// pick it up afterwards.
func TestRecvAnyOfOverTCP(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	comms := w.Comms()
	if err := comms[2].Send(0, 7, []byte("unlisted")); err != nil {
		t.Fatal(err)
	}
	if err := comms[1].Send(0, 7, []byte("listed")); err != nil {
		t.Fatal(err)
	}
	from, payload, err := runtime.RecvAnyOf(comms[0], 7, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 || string(payload) != "listed" {
		t.Fatalf("got from=%d payload=%q, want the listed sender", from, payload)
	}
	got, err := comms[0].Recv(2, 7)
	if err != nil || string(got) != "unlisted" {
		t.Fatalf("queued frame lost: %q, %v", got, err)
	}
}

// RecvAnyOf must match any of several pending candidates and drain them
// all, whatever order the connections delivered them in.
func TestRecvAnyOfDrainsAllCandidates(t *testing.T) {
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	comms := w.Comms()
	for _, r := range []int{1, 2, 3} {
		if err := comms[r].Send(0, 9, []byte{byte(r)}); err != nil {
			t.Fatal(err)
		}
	}
	pending := map[int]bool{1: true, 2: true, 3: true}
	for len(pending) > 0 {
		from, payload, err := runtime.RecvAnyOf(comms[0], 9, []int{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if !pending[from] {
			t.Fatalf("sender %d matched twice or unexpected", from)
		}
		if len(payload) != 1 || payload[0] != byte(from) {
			t.Fatalf("payload %x does not match sender %d", payload, from)
		}
		delete(pending, from)
	}
}

// A closed world must wake a blocked RecvAnyOf with an error rather than
// leaving it waiting forever.
func TestRecvAnyOfAfterCloseFails(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c := w.Comms()[0]
	done := make(chan error, 1)
	go func() {
		_, _, err := runtime.RecvAnyOf(c, 3, []int{1})
		done <- err
	}()
	w.Close()
	if err := <-done; err == nil {
		t.Fatal("RecvAnyOf returned nil after world close")
	}
}

func TestTCPSendRetainsFalse(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if runtime.SendRetains(w.Comms()[0]) {
		t.Error("tcpnet serializes before Send returns; SendRetains must be false")
	}
}
