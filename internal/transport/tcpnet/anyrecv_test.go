package tcpnet

import (
	"testing"

	"stfw/internal/runtime"
	"stfw/internal/transport/tptest"
)

// TestTransportConformance runs the shared matcher-contract suite
// (internal/transport/tptest) over the TCP transport. Network interleaving
// makes cross-connection arrival order nondeterministic, so the strict
// arrival-order subtest is skipped; Close must wake blocked receivers, and
// payloads are serialized before Send returns (SendRetains false).
func TestTransportConformance(t *testing.T) {
	tptest.Run(t, func(size int) ([]runtime.Comm, func(), error) {
		w, err := NewWorld(size)
		if err != nil {
			return nil, nil, err
		}
		return w.Comms(), func() { w.Close() }, nil
	}, tptest.Options{
		WantSendRetains: false,
		TestClose:       true,
	})
}

// TestTransportConformanceFaultDelay re-runs the contract suite over TCP
// with the tptest fault injector delaying every send — the timing-only
// fault class every conforming transport must absorb.
func TestTransportConformanceFaultDelay(t *testing.T) {
	factory := tptest.WithFaults(func(size int) ([]runtime.Comm, func(), error) {
		w, err := NewWorld(size)
		if err != nil {
			return nil, nil, err
		}
		return w.Comms(), func() { w.Close() }, nil
	}, tptest.FaultConfig{Seed: 1, Delay: 1})
	tptest.Run(t, factory, tptest.Options{
		WantSendRetains: false,
		TestClose:       true,
	})
}
