package tcpnet

import (
	"sync/atomic"

	"stfw/internal/runtime"
)

// Per-link wire counters for the coalescing path. tcpnet has no
// reliability machinery of its own (the kernel's TCP does), so the
// interesting numbers are what the group-commit layer did: how many
// frames and wire bytes each directed link moved and how many buffered
// flushes carried them — Frames/Flushes is the realized coalescing
// factor, the stream analog of udpnet's datagram batching.
//
// The grid is dense (size × size cells of five atomics), indexed
// [local*size+peer]; one cell holds both directions of the (local, peer)
// relationship: sends counted by the local rank's Send, receives counted
// by the local rank's readLoop. Dense is fine at tcpnet's world sizes —
// the listeners and connections dwarf it.
type tcpLink struct {
	framesSent, bytesSent, flushes atomic.Int64
	framesRecvd, bytesRecvd        atomic.Int64
}

// cell returns the counter cell for (local, peer).
func (w *World) cell(local, peer int) *tcpLink {
	return &w.lm[local*w.size+peer]
}

// LinkStats implements runtime.LinkStatsSource for one rank: every
// directed link that saw traffic, sorted by peer. Wire bytes include the
// 8-byte frame headers; PktsSent counts buffered-writer flushes (the
// kernel-boundary crossings the group commit is there to minimize).
func (c *comm) LinkStats() []runtime.LinkStats {
	w := c.world
	out := make([]runtime.LinkStats, 0, w.size)
	for peer := 0; peer < w.size; peer++ {
		if peer == c.rank {
			continue
		}
		cell := w.cell(c.rank, peer)
		ls := runtime.LinkStats{
			Peer:        peer,
			FramesSent:  cell.framesSent.Load(),
			BytesSent:   cell.bytesSent.Load(),
			PktsSent:    cell.flushes.Load(),
			FramesRecvd: cell.framesRecvd.Load(),
			BytesRecvd:  cell.bytesRecvd.Load(),
		}
		if ls.Zero() {
			continue
		}
		out = append(out, ls)
	}
	return out
}
