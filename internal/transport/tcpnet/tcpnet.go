// Package tcpnet implements the runtime.Comm interface over real TCP
// sockets (stdlib net): each rank owns a listener on 127.0.0.1, connections
// are dialed lazily on first send, and frames are length-prefixed. It
// demonstrates that the store-and-forward algorithm runs unchanged over a
// wire transport; the barrier is process-local (all ranks of a World live
// in one OS process, each behind its own socket endpoints).
//
// Each rank's receive side is a frame matcher holding undelivered frames in
// arrival order, so the transport supports arrival-order receives
// (runtime.AnyReceiver) for the pipelined exchange engine. Receive buffers
// are drawn from the msg frame arena; the receiving exchange recycles them.
// Send serializes the payload out of the caller's buffer before returning
// (into the connection's buffered writer or straight onto the socket), so
// SendRetains reports false and senders may recycle their buffers. Writes
// coalesce: bursts of sends to one peer group-commit through a per-conn
// bufio.Writer, and the last sender of a burst flushes, so the stream
// never idles with bytes parked in user space.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"stfw/internal/msg"
	"stfw/internal/runtime"
)

// frame wire format: uint32 tag, uint32 payload length, payload bytes.
// A dialed connection starts with a uint32 hello carrying the dialer rank.
const headerLen = 8

// inbox is one rank's receive-side matcher: undelivered frames in arrival
// order across all inbound connections.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames []inFrame
	closed bool
}

type inFrame struct {
	from    int
	tag     int
	payload []byte
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(f inFrame) bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return false
	}
	ib.frames = append(ib.frames, f)
	ib.cond.Broadcast()
	return true
}

func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// pop removes frame i; the caller holds ib.mu.
func (ib *inbox) pop(i int) []byte {
	payload := ib.frames[i].payload
	ib.frames = append(ib.frames[:i], ib.frames[i+1:]...)
	return payload
}

// World is a set of TCP-connected ranks within this process.
type World struct {
	size      int
	listeners []net.Listener
	addrs     []string
	barrier   *runtime.Barrier
	inboxes   []*inbox

	mu    sync.Mutex
	conns map[connKey]*conn // send side: (from, to) -> dialed connection

	// lm is the per-directed-link counter grid, [local*size+peer]; see
	// linkstats.go.
	lm []tcpLink

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

type connKey struct{ from, to int }

// conn is one outbound connection. Writes go through a buffered writer
// with group commit: each Send announces itself in pending before taking
// the lock, and only the sender that decrements pending to zero flushes.
// A burst of stage sends to one peer thus crosses the kernel boundary in
// one write instead of two per frame, while the last sender of any burst
// always drains the buffer before returning — the stream is never left
// parked in user space once all Send calls have returned.
type conn struct {
	mu      sync.Mutex
	c       net.Conn
	bw      *bufio.Writer
	pending atomic.Int32
}

// NewWorld starts listeners for size ranks on loopback.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("tcpnet: world size %d < 1", size)
	}
	w := &World{
		size:    size,
		barrier: runtime.NewBarrier(size),
		conns:   map[connKey]*conn{},
		inboxes: make([]*inbox, size),
		lm:      make([]tcpLink, size*size),
		closed:  make(chan struct{}),
	}
	for r := range w.inboxes {
		w.inboxes[r] = newInbox()
	}
	for r := 0; r < size; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("tcpnet: listen rank %d: %w", r, err)
		}
		w.listeners = append(w.listeners, ln)
		w.addrs = append(w.addrs, ln.Addr().String())
		w.wg.Add(1)
		go w.acceptLoop(r, ln)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Close shuts down all listeners and connections and wakes blocked receives.
func (w *World) Close() {
	w.closeOnce.Do(func() { close(w.closed) })
	for _, ln := range w.listeners {
		ln.Close()
	}
	w.mu.Lock()
	for _, c := range w.conns {
		c.c.Close()
	}
	w.mu.Unlock()
	for _, ib := range w.inboxes {
		ib.close()
	}
	w.wg.Wait()
}

// Comms returns one communicator per rank.
func (w *World) Comms() []runtime.Comm {
	cs := make([]runtime.Comm, w.size)
	for r := range cs {
		cs[r] = &comm{world: w, rank: r}
	}
	return cs
}

// Run executes fn on every rank and closes the world afterwards.
func (w *World) Run(fn runtime.RankFunc) error {
	defer w.Close()
	return runtime.Run(w.Comms(), fn)
}

func (w *World) acceptLoop(rank int, ln net.Listener) {
	defer w.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.wg.Add(1)
		go w.readLoop(rank, c)
	}
}

// readLoop consumes frames from one inbound connection and routes them to
// the receiving rank's matcher.
func (w *World) readLoop(to int, c net.Conn) {
	defer w.wg.Done()
	defer c.Close()
	var hello [4]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		return
	}
	from := int(binary.LittleEndian.Uint32(hello[:]))
	if from < 0 || from >= w.size {
		return
	}
	ib := w.inboxes[to]
	var hdr [headerLen]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		tag := int(binary.LittleEndian.Uint32(hdr[0:]))
		n := binary.LittleEndian.Uint32(hdr[4:])
		if n > 1<<30 {
			return
		}
		payload := msg.GetFrameLen(int(n))
		if _, err := io.ReadFull(c, payload); err != nil {
			msg.PutFrame(payload)
			return
		}
		if !ib.push(inFrame{from: from, tag: tag, payload: payload}) {
			return // world closed
		}
		cell := w.cell(to, from)
		cell.framesRecvd.Add(1)
		cell.bytesRecvd.Add(int64(headerLen + int(n)))
	}
}

// dial returns (establishing if needed) the outbound connection from ->
// to.
func (w *World) dial(from, to int) (*conn, error) {
	k := connKey{from, to}
	w.mu.Lock()
	defer w.mu.Unlock()
	if c := w.conns[k]; c != nil {
		return c, nil
	}
	nc, err := net.Dial("tcp", w.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %d->%d: %w", from, to, err)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(from))
	if _, err := nc.Write(hello[:]); err != nil {
		nc.Close()
		return nil, err
	}
	c := &conn{c: nc, bw: bufio.NewWriterSize(nc, 64<<10)}
	w.conns[k] = c
	return c, nil
}

type comm struct {
	world *World
	rank  int
}

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.world.size }

// SendRetains reports false: the payload is fully serialized onto the
// socket before Send returns, so the caller may reuse the buffer.
func (c *comm) SendRetains() bool { return false }

func (c *comm) Send(to, tag int, payload []byte) error {
	if to < 0 || to >= c.world.size {
		return fmt.Errorf("tcpnet: send to rank %d out of range [0,%d)", to, c.world.size)
	}
	cn, err := c.world.dial(c.rank, to)
	if err != nil {
		return err
	}
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(tag))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	cn.pending.Add(1)
	cn.mu.Lock()
	defer cn.mu.Unlock()
	_, werr := cn.bw.Write(hdr[:])
	if werr == nil && len(payload) > 0 {
		// bufio copies the payload (or writes it through when it exceeds
		// the buffer), so SendRetains stays false either way.
		_, werr = cn.bw.Write(payload)
	}
	cell := c.world.cell(c.rank, to)
	cell.framesSent.Add(1)
	cell.bytesSent.Add(int64(headerLen + len(payload)))
	// Group commit: if another Send has already announced itself it will
	// write behind us under this lock and inherit the flush obligation;
	// otherwise we are the last of the burst and must drain.
	if cn.pending.Add(-1) == 0 {
		cell.flushes.Add(1)
		if ferr := cn.bw.Flush(); werr == nil {
			werr = ferr
		}
	}
	return werr
}

func (c *comm) Recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= c.world.size {
		return nil, fmt.Errorf("tcpnet: recv from rank %d out of range [0,%d)", from, c.world.size)
	}
	ib := c.world.inboxes[c.rank]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i := range ib.frames {
			if ib.frames[i].from != from {
				continue
			}
			// Per-pair frames arrive in send order, so the oldest frame
			// from the sender must carry the expected tag.
			if got := ib.frames[i].tag; got != tag {
				return nil, fmt.Errorf("tcpnet: rank %d received tag %d from %d, expected %d", c.rank, got, from, tag)
			}
			return ib.pop(i), nil
		}
		if ib.closed {
			return nil, fmt.Errorf("tcpnet: world closed while rank %d waits for %d", c.rank, from)
		}
		ib.cond.Wait()
	}
}

// RecvAnyOf implements runtime.AnyReceiver: it returns the earliest-arrived
// queued frame carrying tag whose sender is in from, blocking until one
// exists. Frames with other tags or from other ranks stay queued.
func (c *comm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	if len(from) == 0 {
		return -1, nil, fmt.Errorf("tcpnet: rank %d RecvAnyOf with no candidate senders", c.rank)
	}
	for _, f := range from {
		if f < 0 || f >= c.world.size {
			return -1, nil, fmt.Errorf("tcpnet: recv from rank %d out of range [0,%d)", f, c.world.size)
		}
	}
	ib := c.world.inboxes[c.rank]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i := range ib.frames {
			if ib.frames[i].tag != tag {
				continue
			}
			sender := ib.frames[i].from
			for _, f := range from {
				if f == sender {
					return sender, ib.pop(i), nil
				}
			}
		}
		if ib.closed {
			return -1, nil, fmt.Errorf("tcpnet: world closed while rank %d waits for any of %v", c.rank, from)
		}
		ib.cond.Wait()
	}
}

func (c *comm) Barrier() error {
	c.world.barrier.Await()
	return nil
}
