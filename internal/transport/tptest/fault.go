// Fault injection: a transport wrapper that perturbs delivery while (for
// the semantics-preserving fault classes) staying inside the Comm
// contract, so conformance suites can be re-run under adversarial timing
// and service order. Faults and their contract status:
//
//   - Delay: a random sleep before the inner Send. Frames between a fixed
//     (sender, receiver, tag) triple still leave in send order — FIFO per
//     triple is preserved — but cross-rank interleavings are scrambled.
//     Fully semantics-preserving; any correct engine must produce
//     bit-identical output under it.
//   - Reorder: an arrival-order receive (RecvAnyOf) is, with some
//     probability, served by a targeted Recv on a random candidate instead
//     of the earliest arrival. This is the adversarial-but-legal service
//     order: RecvAnyOf callers that track outstanding senders (the stage
//     machine's RecvPolicy, the compiled replay) must tolerate any order.
//     NOT safe for callers that pass already-served senders in the
//     candidate list and rely on arrival-order matching to skip them.
//   - Duplicate: the frame is sent, then an independent copy is sent
//     again under the same triple. The duplicate violates the one-frame-
//     per-neighbor-per-stage schedule contract; engines survive a
//     duplicate within one exchange (the extra frame stays queued behind
//     the matched one) but a subsequent exchange reusing the tag would
//     mis-match it. Use in single-exchange tests.
//   - Drop: the frame is silently discarded. Always contract-violating;
//     used to prove engines fail (block until world close, then error)
//     rather than deliver wrong data.
//
// All randomness comes from one seeded, locked PRNG per Injector, so a
// failing configuration is reproducible from its seed.
package tptest

import (
	"math/rand"
	"sync"
	"time"

	"stfw/internal/runtime"
)

// FaultConfig selects fault classes and their rates. Probabilities are in
// [0, 1]; zero disables the class.
type FaultConfig struct {
	// Seed initializes the injector's PRNG; the same seed replays the same
	// fault sequence for a fixed call order.
	Seed int64
	// Drop is the probability an outbound frame is silently discarded.
	Drop float64
	// Delay is the probability a Send sleeps before reaching the inner
	// transport; the sleep is uniform in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds the injected send delay. Zero with Delay > 0 means
	// 200 microseconds — enough to scramble goroutine interleavings
	// without slowing suites down.
	MaxDelay time.Duration
	// Duplicate is the probability a frame is sent twice (the second time
	// as an independent copy, so zero-copy transports see distinct
	// buffers).
	Duplicate float64
	// Reorder is the probability an arrival-order receive is served by a
	// targeted receive on a uniformly random candidate instead.
	Reorder float64
}

// FaultStats counts what the injector actually did — tests assert on these
// to prove the configured faults fired.
type FaultStats struct {
	Sent, Dropped, Delayed, Duplicated, Reordered int64
}

// Injector wraps communicators with a shared fault source. One Injector
// serves a whole world: the PRNG and counters are mutex-guarded, so
// concurrent sends from many ranks are safe (and serialize only for the
// coin flips, not for the inner transport calls).
type Injector struct {
	cfg   FaultConfig
	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
}

// NewInjector creates an injector for the given configuration.
func NewInjector(cfg FaultConfig) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a copy of the fault counters.
func (i *Injector) Stats() FaultStats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// roll draws a uniform float and reports whether it lands under p,
// returning auxiliary randomness for the fault's parameters.
func (i *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	i.mu.Lock()
	hit := i.rng.Float64() < p
	i.mu.Unlock()
	return hit
}

func (i *Injector) randDelay() time.Duration {
	max := i.cfg.MaxDelay
	if max <= 0 {
		max = 200 * time.Microsecond
	}
	i.mu.Lock()
	d := time.Duration(i.rng.Int63n(int64(max))) + 1
	i.mu.Unlock()
	return d
}

func (i *Injector) count(f func(*FaultStats)) {
	i.mu.Lock()
	f(&i.stats)
	i.mu.Unlock()
}

// Wrap returns a communicator that applies the injector's faults around c.
// The wrapper forwards SendRetains and implements AnyReceiver (delegating
// to the runtime helper over the inner transport), so engines see the same
// capability surface as the bare transport.
func (i *Injector) Wrap(c runtime.Comm) runtime.Comm {
	return &faultComm{inner: c, inj: i}
}

// WrapAll wraps every communicator of a world with the same injector.
func (i *Injector) WrapAll(comms []runtime.Comm) []runtime.Comm {
	out := make([]runtime.Comm, len(comms))
	for r, c := range comms {
		out[r] = i.Wrap(c)
	}
	return out
}

// WithFaults promotes a world factory into one whose comms inject the
// given faults — the opt-in every transport's conformance caller can use.
// Each world gets its own injector (fresh PRNG from cfg.Seed), keeping
// subtests independent and reproducible.
func WithFaults(newWorld Factory, cfg FaultConfig) Factory {
	return func(size int) ([]runtime.Comm, func(), error) {
		comms, closeWorld, err := newWorld(size)
		if err != nil {
			return nil, closeWorld, err
		}
		return NewInjector(cfg).WrapAll(comms), closeWorld, nil
	}
}

type faultComm struct {
	inner runtime.Comm
	inj   *Injector
}

func (f *faultComm) Rank() int { return f.inner.Rank() }
func (f *faultComm) Size() int { return f.inner.Size() }

func (f *faultComm) Send(to, tag int, payload []byte) error {
	i := f.inj
	if i.roll(i.cfg.Drop) {
		i.count(func(s *FaultStats) { s.Dropped++ })
		return nil
	}
	if i.roll(i.cfg.Delay) {
		i.count(func(s *FaultStats) { s.Delayed++ })
		time.Sleep(i.randDelay())
	}
	if err := f.inner.Send(to, tag, payload); err != nil {
		return err
	}
	i.count(func(s *FaultStats) { s.Sent++ })
	if i.roll(i.cfg.Duplicate) {
		i.count(func(s *FaultStats) { s.Duplicated++ })
		dup := append([]byte(nil), payload...)
		return f.inner.Send(to, tag, dup)
	}
	return nil
}

func (f *faultComm) Recv(from, tag int) ([]byte, error) { return f.inner.Recv(from, tag) }
func (f *faultComm) Barrier() error                     { return f.inner.Barrier() }
func (f *faultComm) SendRetains() bool                  { return runtime.SendRetains(f.inner) }

// HintTraffic forwards schedule traffic hints: the injector perturbs frame
// timing, not the schedule, so the inner transport's zero-speculation flow
// control stays sound under every semantics-preserving fault class. (Drop
// violates the schedule contract with or without hints.)
func (f *faultComm) HintTraffic(stages []runtime.StageTraffic) {
	runtime.HintTraffic(f.inner, stages)
}

// RecvAnyOf serves the receive in arrival order through the inner
// transport — unless the reorder fault fires, in which case it blocks on a
// uniformly random candidate. Either way exactly one listed candidate's
// frame is consumed, which is conforming for callers that shrink the
// candidate list as frames are served.
func (f *faultComm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	i := f.inj
	if len(from) > 1 && i.roll(i.cfg.Reorder) {
		i.mu.Lock()
		pick := from[i.rng.Intn(len(from))]
		i.mu.Unlock()
		i.count(func(s *FaultStats) { s.Reordered++ })
		payload, err := f.inner.Recv(pick, tag)
		return pick, payload, err
	}
	return runtime.RecvAnyOf(f.inner, tag, from)
}
