// Package tptest is the shared conformance harness for transport
// implementations of runtime.Comm and its optional extensions. Every
// transport must honor the same matcher contract — the stage machine's
// arrival-order receive discipline (runtime.RecvPolicy over RecvAnyOf) is
// only sound if frames from unlisted senders or with other tags stay queued
// — so the contract is tested in one place and each transport's test file is
// a thin caller passing a world factory and the transport's expected
// properties. The helper-semantics suite (RunHelperSemantics) covers the
// runtime.RecvAnyOf/SendRetains fallback logic itself, against in-memory
// fakes.
package tptest

import (
	"fmt"
	"net"
	"os"
	goruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"stfw/internal/runtime"
)

// Factory builds a fresh world of the given size for one subtest. comms has
// one endpoint per rank; closeWorld may be nil for worlds without teardown.
type Factory func(size int) (comms []runtime.Comm, closeWorld func(), err error)

// Composite promotes a transport that wraps other transports' worlds into
// a Factory the suite can run like any primitive transport: each sub-
// factory builds one sub-world, wrap assembles the composite endpoints
// from the sub-worlds' endpoint slices (in sub-factory order), and the
// composite's teardown closes the sub-worlds in reverse construction
// order. The leak checks then cover the whole stack — a composite that
// parks goroutines inside a sub-transport past teardown fails the same
// way a primitive transport would.
func Composite(wrap func(subs ...[]runtime.Comm) ([]runtime.Comm, error), subs ...Factory) Factory {
	return func(size int) ([]runtime.Comm, func(), error) {
		var cleanups []func()
		closeAll := func() {
			for i := len(cleanups) - 1; i >= 0; i-- {
				cleanups[i]()
			}
		}
		worlds := make([][]runtime.Comm, len(subs))
		for i, f := range subs {
			comms, closeWorld, err := f(size)
			if err != nil {
				closeAll()
				return nil, nil, err
			}
			if closeWorld != nil {
				cleanups = append(cleanups, closeWorld)
			}
			worlds[i] = comms
		}
		comms, err := wrap(worlds...)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		return comms, closeAll, nil
	}
}

// Options declares the properties the transport under test promises.
type Options struct {
	// WantSendRetains is the transport's expected SendRetains answer:
	// true for zero-copy transports that hand the payload slice to the
	// receiver, false for wire transports that serialize before Send returns.
	WantSendRetains bool
	// StrictArrivalOrder enables the earliest-arrival subtest, which is only
	// deterministic on in-process transports where Send enqueues immediately.
	StrictArrivalOrder bool
	// TestClose enables the close-wakes-receiver subtest; requires a
	// non-nil closeWorld from the factory.
	TestClose bool
	// TestOutOfRange enables the native-matcher validation subtest (empty
	// and out-of-range candidate lists rejected by the transport itself).
	TestOutOfRange bool
}

// transportGoroutines returns the stacks of live goroutines currently
// executing transport code, identified by the shared package path prefix.
func transportGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := goruntime.Stack(buf, true)
	var out []string
	for _, s := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(s, "stfw/internal/transport") {
			out = append(out, s)
		}
	}
	return out
}

// checkNoLeakedGoroutines fails the test if, after a world's teardown, more
// transport goroutines are alive than before it was created. Teardown is
// asynchronous on wire transports (reader loops exit when their connection
// errors out), so the check polls with a grace window before declaring a
// leak — a leaked goroutine never exits, so the window only delays failure,
// not success.
func checkNoLeakedGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		gs := transportGoroutines()
		if len(gs) <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("transport leaked %d goroutines after world close (baseline %d):\n%s",
				len(gs)-baseline, baseline, strings.Join(gs, "\n\n"))
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// primeNetpoller forces the Go runtime's network poller (and its
// process-lifetime descriptors: epoll instance, wakeup eventfd) into
// existence before an fd baseline is taken, so the first socket-creating
// subtest is not blamed for them.
var primeNetpoller = sync.OnceFunc(func() {
	if c, err := net.ListenPacket("udp", "127.0.0.1:0"); err == nil {
		c.Close()
	}
})

// OpenFDs counts this process's open file descriptors (via /proc/self/fd;
// -1 where that is unavailable). Socket-backed transports use it to prove
// world teardown releases every descriptor.
func OpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// CheckNoLeakedFDs fails the test if the process holds more file
// descriptors than the baseline after a world's teardown. Like the
// goroutine check it polls with a grace window, since descriptor release
// can trail the close call on wire transports.
func CheckNoLeakedFDs(t *testing.T, baseline int) {
	t.Helper()
	if baseline < 0 {
		return // no /proc on this platform
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := OpenFDs()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("transport leaked %d file descriptors after world close (baseline %d)", n-baseline, baseline)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Run executes the conformance suite against the transport.
func Run(t *testing.T, newWorld Factory, o Options) {
	world := func(t *testing.T, size int) ([]runtime.Comm, func()) {
		t.Helper()
		primeNetpoller()
		baseline := len(transportGoroutines())
		fdBaseline := OpenFDs()
		comms, closeWorld, err := newWorld(size)
		if err != nil {
			t.Fatal(err)
		}
		if closeWorld == nil {
			closeWorld = func() {}
		}
		done := func() {
			closeWorld()
			checkNoLeakedGoroutines(t, baseline)
			CheckNoLeakedFDs(t, fdBaseline)
		}
		return comms, done
	}

	t.Run("SendRetains", func(t *testing.T) {
		comms, done := world(t, 2)
		defer done()
		if got := runtime.SendRetains(comms[0]); got != o.WantSendRetains {
			t.Errorf("SendRetains = %v, transport promises %v", got, o.WantSendRetains)
		}
	})

	// Frames from ranks outside the candidate set must stay queued even when
	// they arrived first — they belong to a different logical receive (e.g.
	// the next exchange reusing the same stage tag).
	t.Run("SenderFilter", func(t *testing.T) {
		comms, done := world(t, 3)
		defer done()
		if err := comms[2].Send(0, 7, []byte("early-but-unlisted")); err != nil {
			t.Fatal(err)
		}
		if err := comms[1].Send(0, 7, []byte("listed")); err != nil {
			t.Fatal(err)
		}
		from, payload, err := runtime.RecvAnyOf(comms[0], 7, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		if from != 1 || string(payload) != "listed" {
			t.Fatalf("got from=%d payload=%q, want the listed sender", from, payload)
		}
		got, err := comms[0].Recv(2, 7)
		if err != nil || string(got) != "early-but-unlisted" {
			t.Fatalf("queued frame lost: %q, %v", got, err)
		}
	})

	// Frames with other tags stay queued: a fast neighbor's next-stage frame
	// must not be matched by the current stage's receive.
	t.Run("TagFilter", func(t *testing.T) {
		comms, done := world(t, 2)
		defer done()
		if err := comms[1].Send(0, 8, []byte("next-stage")); err != nil {
			t.Fatal(err)
		}
		if err := comms[1].Send(0, 7, []byte("this-stage")); err != nil {
			t.Fatal(err)
		}
		from, payload, err := runtime.RecvAnyOf(comms[0], 7, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		if from != 1 || string(payload) != "this-stage" {
			t.Fatalf("got %q from %d, want the tag-7 frame", payload, from)
		}
		got, err := comms[0].Recv(1, 8)
		if err != nil || string(got) != "next-stage" {
			t.Fatalf("tag-8 frame lost: %q, %v", got, err)
		}
	})

	// RecvAnyOf must match any of several pending candidates and drain them
	// all, whatever order the transport delivered them in.
	t.Run("DrainsAllCandidates", func(t *testing.T) {
		comms, done := world(t, 4)
		defer done()
		for _, r := range []int{1, 2, 3} {
			if err := comms[r].Send(0, 9, []byte{byte(r)}); err != nil {
				t.Fatal(err)
			}
		}
		pending := map[int]bool{1: true, 2: true, 3: true}
		for len(pending) > 0 {
			from, payload, err := runtime.RecvAnyOf(comms[0], 9, []int{1, 2, 3})
			if err != nil {
				t.Fatal(err)
			}
			if !pending[from] {
				t.Fatalf("sender %d matched twice or unexpected", from)
			}
			if len(payload) != 1 || payload[0] != byte(from) {
				t.Fatalf("payload %x does not match sender %d", payload, from)
			}
			delete(pending, from)
		}
	})

	if o.StrictArrivalOrder {
		// RecvAnyOf must hand out the earliest-arrived deliverable frame, in
		// the order senders appended them — not in candidate-list order.
		t.Run("ArrivalOrder", func(t *testing.T) {
			comms, done := world(t, 3)
			defer done()
			if err := comms[2].Send(0, 7, []byte("from2")); err != nil {
				t.Fatal(err)
			}
			if err := comms[1].Send(0, 7, []byte("from1")); err != nil {
				t.Fatal(err)
			}
			from, payload, err := runtime.RecvAnyOf(comms[0], 7, []int{1, 2})
			if err != nil {
				t.Fatal(err)
			}
			if from != 2 || string(payload) != "from2" {
				t.Fatalf("first match: from=%d payload=%q, want rank 2 (earliest arrival)", from, payload)
			}
			from, payload, err = runtime.RecvAnyOf(comms[0], 7, []int{1, 2})
			if err != nil {
				t.Fatal(err)
			}
			if from != 1 || string(payload) != "from1" {
				t.Fatalf("second match: from=%d payload=%q", from, payload)
			}
		})
	}

	if o.TestOutOfRange {
		// The transport's own matcher must reject malformed candidate lists
		// instead of blocking on a rank that cannot exist.
		t.Run("NativeMatcherValidation", func(t *testing.T) {
			comms, done := world(t, 2)
			defer done()
			ar, ok := comms[0].(runtime.AnyReceiver)
			if !ok {
				t.Fatal("transport does not implement AnyReceiver")
			}
			if _, _, err := ar.RecvAnyOf(1, nil); err == nil {
				t.Error("empty candidate list accepted")
			}
			if _, _, err := ar.RecvAnyOf(1, []int{5}); err == nil {
				t.Error("out-of-range candidate accepted")
			}
		})
	}

	if o.TestClose {
		// A closed world must wake a blocked RecvAnyOf with an error rather
		// than leaving it waiting forever.
		t.Run("CloseWakesReceiver", func(t *testing.T) {
			comms, done := world(t, 2)
			errCh := make(chan error, 1)
			go func() {
				_, _, err := runtime.RecvAnyOf(comms[0], 3, []int{1})
				errCh <- err
			}()
			done()
			if err := <-errCh; err == nil {
				t.Fatal("RecvAnyOf returned nil after world close")
			}
		})
	}
}

// fakeComm is a minimal Comm for the helper-semantics suite.
type fakeComm struct {
	rank, size int
}

func (f *fakeComm) Rank() int                     { return f.rank }
func (f *fakeComm) Size() int                     { return f.size }
func (f *fakeComm) Send(int, int, []byte) error   { return nil }
func (f *fakeComm) Recv(int, int) ([]byte, error) { return nil, nil }
func (f *fakeComm) Barrier() error                { return nil }

// recvOnlyComm is a plain Comm without arrival-order support; RecvAnyOf
// must fall back to a targeted Recv on the first candidate.
type recvOnlyComm struct {
	fakeComm
	recvCalls []int
}

func (r *recvOnlyComm) Recv(from, tag int) ([]byte, error) {
	r.recvCalls = append(r.recvCalls, from)
	return []byte(fmt.Sprintf("%d/%d", from, tag)), nil
}

// optOutComm advertises AnyReceiver but reports ErrNoRecvAny (the conforming
// answer for a wrapper whose inner transport lacks a matcher); the helper
// must then fall back, not surface the sentinel.
type optOutComm struct {
	recvOnlyComm
	anyCalls int
}

func (o *optOutComm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	o.anyCalls++
	return -1, nil, runtime.ErrNoRecvAny
}

// nativeComm has a working matcher; the helper must use it directly.
type nativeComm struct {
	recvOnlyComm
}

func (n *nativeComm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	last := from[len(from)-1]
	return last, []byte("native"), nil
}

// retainComm opts out of buffer retention; plain comms default to retain
// (the safe assumption for unknown transports).
type retainComm struct {
	fakeComm
	retains bool
}

func (r *retainComm) SendRetains() bool { return r.retains }

// RunHelperSemantics exercises the runtime.RecvAnyOf and runtime.SendRetains
// helpers against in-memory fakes: fallback on plain Comms, fallback on the
// ErrNoRecvAny sentinel, native matcher passthrough, empty-list rejection,
// and the SendRetains default.
func RunHelperSemantics(t *testing.T) {
	t.Run("FallsBackToFixedOrder", func(t *testing.T) {
		c := &recvOnlyComm{fakeComm: fakeComm{rank: 0, size: 4}}
		from, payload, err := runtime.RecvAnyOf(c, 9, []int{2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if from != 2 || string(payload) != "2/9" {
			t.Fatalf("fallback matched from=%d payload=%q, want targeted Recv(2, 9)", from, payload)
		}
		if len(c.recvCalls) != 1 || c.recvCalls[0] != 2 {
			t.Fatalf("fallback issued %v, want a single Recv from the first candidate", c.recvCalls)
		}
	})

	t.Run("SentinelTriggersFallback", func(t *testing.T) {
		c := &optOutComm{recvOnlyComm: recvOnlyComm{fakeComm: fakeComm{rank: 0, size: 4}}}
		from, _, err := runtime.RecvAnyOf(c, 5, []int{3, 1})
		if err != nil {
			t.Fatal(err)
		}
		if c.anyCalls != 1 {
			t.Fatalf("native matcher consulted %d times, want 1", c.anyCalls)
		}
		if from != 3 || len(c.recvCalls) != 1 || c.recvCalls[0] != 3 {
			t.Fatalf("fallback not taken: from=%d recvCalls=%v", from, c.recvCalls)
		}
	})

	t.Run("UsesNativeMatcher", func(t *testing.T) {
		c := &nativeComm{recvOnlyComm: recvOnlyComm{fakeComm: fakeComm{rank: 0, size: 4}}}
		from, payload, err := runtime.RecvAnyOf(c, 5, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if from != 2 || string(payload) != "native" {
			t.Fatalf("native matcher bypassed: from=%d payload=%q", from, payload)
		}
		if len(c.recvCalls) != 0 {
			t.Fatalf("fallback Recv issued despite native matcher: %v", c.recvCalls)
		}
	})

	t.Run("RejectsEmptyCandidates", func(t *testing.T) {
		c := &recvOnlyComm{fakeComm: fakeComm{rank: 0, size: 4}}
		if _, _, err := runtime.RecvAnyOf(c, 1, nil); err == nil {
			t.Fatal("empty candidate list accepted")
		}
	})

	t.Run("SendRetainsDefaultsAndPassthrough", func(t *testing.T) {
		if !runtime.SendRetains(&fakeComm{}) {
			t.Error("unknown transports must default to retaining sends")
		}
		if runtime.SendRetains(&retainComm{retains: false}) {
			t.Error("SendRetainer answer not forwarded")
		}
		if !runtime.SendRetains(&retainComm{retains: true}) {
			t.Error("SendRetainer answer not forwarded")
		}
	})
}
