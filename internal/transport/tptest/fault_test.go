package tptest_test

import (
	"bytes"
	"testing"
	"time"

	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/tptest"
)

func faultPair(t *testing.T, cfg tptest.FaultConfig) ([]runtime.Comm, *tptest.Injector) {
	t.Helper()
	w, err := chanpt.NewWorld(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	inj := tptest.NewInjector(cfg)
	return inj.WrapAll(w.Comms()), inj
}

// TestFaultDropDiscards proves Drop=1 silently swallows every frame: the
// send succeeds, the counter moves, and a sentinel frame sent fault-free
// afterwards is the only thing the receiver ever sees.
func TestFaultDropDiscards(t *testing.T) {
	w, err := chanpt.NewWorld(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	comms := w.Comms()
	inj := tptest.NewInjector(tptest.FaultConfig{Seed: 1, Drop: 1})
	faulty := inj.Wrap(comms[0])
	if err := faulty.Send(1, 7, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if st := inj.Stats(); st.Dropped != 1 || st.Sent != 0 {
		t.Fatalf("stats after dropped send: %+v", st)
	}
	if err := comms[0].Send(1, 7, []byte("kept")); err != nil { // bypass injector
		t.Fatal(err)
	}
	got, err := comms[1].Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("kept")) {
		t.Fatalf("receiver saw %q, want the fault-free sentinel", got)
	}
}

// TestFaultDuplicateCopies proves Duplicate=1 delivers the frame twice and
// that the second delivery is an independent copy — mutating the received
// original must not corrupt the duplicate (zero-copy transports hand the
// sender's buffer to the receiver).
func TestFaultDuplicateCopies(t *testing.T) {
	comms, inj := faultPair(t, tptest.FaultConfig{Seed: 1, Duplicate: 1})
	if err := comms[0].Send(1, 3, []byte("twice")); err != nil {
		t.Fatal(err)
	}
	first, err := comms[1].Recv(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		first[i] = 0
	}
	second, err := comms[1].Recv(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second, []byte("twice")) {
		t.Fatalf("duplicate frame is %q, want an unaliased copy of %q", second, "twice")
	}
	if st := inj.Stats(); st.Duplicated != 1 || st.Sent != 1 {
		t.Fatalf("stats after duplicated send: %+v", st)
	}
}

// TestFaultDelayPreservesFIFO proves delayed sends still leave in per-pair
// send order — delay perturbs timing, never ordering.
func TestFaultDelayPreservesFIFO(t *testing.T) {
	comms, inj := faultPair(t, tptest.FaultConfig{Seed: 1, Delay: 1, MaxDelay: 50 * time.Microsecond})
	for i := 0; i < 8; i++ {
		if err := comms[0].Send(1, 9, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		got, err := comms[1].Recv(0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("frame %d arrived as %v", i, got)
		}
	}
	if st := inj.Stats(); st.Delayed != 8 {
		t.Fatalf("stats after delayed sends: %+v", st)
	}
}

// TestFaultReorderTargets proves Reorder=1 turns an arrival-order receive
// into a targeted one: with frames queued from both senders, the wrapper
// still returns exactly one listed candidate's frame, and repeated receives
// drain both.
func TestFaultReorderTargets(t *testing.T) {
	w, err := chanpt.NewWorld(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	inj := tptest.NewInjector(tptest.FaultConfig{Seed: 42, Reorder: 1})
	comms := inj.WrapAll(w.Comms())
	if err := comms[0].Send(2, 5, []byte{0xa0}); err != nil {
		t.Fatal(err)
	}
	if err := comms[1].Send(2, 5, []byte{0xa1}); err != nil {
		t.Fatal(err)
	}
	seen := map[int]byte{}
	for len(seen) < 2 {
		from, payload, err := runtime.RecvAnyOf(comms[2], 5, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := seen[from]; dup {
			t.Fatalf("sender %d served twice", from)
		}
		seen[from] = payload[0]
	}
	if seen[0] != 0xa0 || seen[1] != 0xa1 {
		t.Fatalf("payloads misattributed: %v", seen)
	}
	if st := inj.Stats(); st.Reordered == 0 {
		t.Fatalf("reorder never fired: %+v", st)
	}
}

// TestWithFaultsFactory checks the factory combinator: the wrapped world
// still passes frames end to end under Delay=1, and the wrapper preserves
// the inner transport's capability surface (SendRetains, arrival-order
// receives).
func TestWithFaultsFactory(t *testing.T) {
	base := func(size int) ([]runtime.Comm, func(), error) {
		w, err := chanpt.NewWorld(size, 16)
		if err != nil {
			return nil, nil, err
		}
		return w.Comms(), nil, nil
	}
	factory := tptest.WithFaults(base, tptest.FaultConfig{Seed: 7, Delay: 1, MaxDelay: 20 * time.Microsecond})
	comms, closeWorld, err := factory(2)
	if err != nil {
		t.Fatal(err)
	}
	if closeWorld != nil {
		defer closeWorld()
	}
	if !runtime.SendRetains(comms[0]) {
		t.Fatal("wrapper lost chanpt's SendRetains capability")
	}
	if _, ok := comms[0].(runtime.AnyReceiver); !ok {
		t.Fatal("wrapper lost the AnyReceiver capability")
	}
	for r, c := range comms {
		if err := c.Send(1-r, 0, []byte{byte(10 + r)}); err != nil {
			t.Fatalf("rank %d send: %v", r, err)
		}
	}
	for r, c := range comms {
		got, err := c.Recv(1-r, 0)
		if err != nil {
			t.Fatalf("rank %d recv: %v", r, err)
		}
		if len(got) != 1 || got[0] != byte(10+1-r) {
			t.Fatalf("rank %d received %v", r, got)
		}
	}
}

// TestFaultSeedReproducible: two injectors from the same config produce the
// same fault decisions for the same call sequence.
func TestFaultSeedReproducible(t *testing.T) {
	cfg := tptest.FaultConfig{Seed: 99, Drop: 0.5}
	record := func() []int64 {
		w, err := chanpt.NewWorld(2, 64)
		if err != nil {
			t.Fatal(err)
		}
		inj := tptest.NewInjector(cfg)
		c := inj.Wrap(w.Comms()[0])
		var trace []int64
		for i := 0; i < 32; i++ {
			if err := c.Send(1, 0, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			trace = append(trace, inj.Stats().Dropped)
		}
		return trace
	}
	a, b := record(), record()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at send %d: %v vs %v", i, a, b)
		}
	}
	if final := a[len(a)-1]; final == 0 || final == 32 {
		t.Fatalf("drop=0.5 produced degenerate sequence (%d/32 dropped)", final)
	}
}
