package collectives

import (
	"bytes"
	"fmt"

	"sync/atomic"
	"testing"

	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
)

func world(t testing.TB, K int) *chanpt.World {
	t.Helper()
	w, err := chanpt.NewWorld(K, K)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBarrier(t *testing.T) {
	for _, K := range []int{1, 2, 3, 8, 13, 32} {
		var before int32
		w := world(t, K)
		err := w.Run(func(c runtime.Comm) error {
			atomic.AddInt32(&before, 1)
			if err := Barrier(c); err != nil {
				return err
			}
			if got := atomic.LoadInt32(&before); got != int32(K) {
				return fmt.Errorf("rank %d passed barrier with %d arrivals", c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("K=%d: %v", K, err)
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	payload := []byte("broadcast me, carefully")
	for _, K := range []int{1, 2, 3, 7, 8, 16, 20} {
		for root := 0; root < K; root += maxi(1, K/3) {
			w := world(t, K)
			err := w.Run(func(c runtime.Comm) error {
				var buf []byte
				if c.Rank() == root {
					buf = payload
				}
				got, err := Bcast(c, root, buf)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, payload) {
					return fmt.Errorf("rank %d got %q", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("K=%d root=%d: %v", K, root, err)
			}
		}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestBcastBadRoot(t *testing.T) {
	w := world(t, 2)
	err := w.Run(func(c runtime.Comm) error {
		if _, err := Bcast(c, 5, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherDoubles(t *testing.T) {
	for _, K := range []int{1, 2, 3, 8, 11} {
		w := world(t, K)
		err := w.Run(func(c runtime.Comm) error {
			mine := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
			all, err := AllgatherDoubles(c, mine)
			if err != nil {
				return err
			}
			if len(all) != K {
				return fmt.Errorf("got %d segments", len(all))
			}
			for r := 0; r < K; r++ {
				if len(all[r]) != 2 || all[r][0] != float64(r) || all[r][1] != float64(r*10) {
					return fmt.Errorf("rank %d: segment %d = %v", c.Rank(), r, all[r])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("K=%d: %v", K, err)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, K := range []int{1, 2, 4, 8, 16, 3, 6, 12} {
		w := world(t, K)
		wantSum := float64(K*(K-1)) / 2
		err := w.Run(func(c runtime.Comm) error {
			vec := []float64{float64(c.Rank()), 1}
			got, err := Allreduce(c, vec, Sum)
			if err != nil {
				return err
			}
			if got[0] != wantSum || got[1] != float64(K) {
				return fmt.Errorf("rank %d: got %v, want [%v %v]", c.Rank(), got, wantSum, float64(K))
			}
			// The input must not be clobbered.
			if vec[0] != float64(c.Rank()) {
				return fmt.Errorf("input mutated")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("K=%d: %v", K, err)
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	const K = 8
	w := world(t, K)
	err := w.Run(func(c runtime.Comm) error {
		v := float64(c.Rank())
		max, err := AllreduceScalar(c, v, Max)
		if err != nil {
			return err
		}
		min, err := AllreduceScalar(c, v, Min)
		if err != nil {
			return err
		}
		if max != K-1 || min != 0 {
			return fmt.Errorf("max=%v min=%v", max, min)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceLengthMismatch(t *testing.T) {
	w := world(t, 2)
	errs := make([]error, 2)
	_ = w.Run(func(c runtime.Comm) error {
		vec := make([]float64, 1+c.Rank()) // ranks disagree on length
		_, errs[c.Rank()] = Allreduce(c, vec, Sum)
		return nil
	})
	if errs[0] == nil && errs[1] == nil {
		t.Error("length mismatch not detected")
	}
}

func TestAlltoall(t *testing.T) {
	for _, K := range []int{1, 2, 4, 8, 3, 5, 9} {
		w := world(t, K)
		err := w.Run(func(c runtime.Comm) error {
			me := c.Rank()
			send := make([][]byte, K)
			for j := 0; j < K; j++ {
				send[j] = []byte{byte(me), byte(j)}
			}
			recv, err := Alltoall(c, send)
			if err != nil {
				return err
			}
			for i := 0; i < K; i++ {
				if len(recv[i]) != 2 || int(recv[i][0]) != i || int(recv[i][1]) != me {
					return fmt.Errorf("rank %d: recv[%d] = %v", me, i, recv[i])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("K=%d: %v", K, err)
		}
	}
}

func TestAlltoallValidation(t *testing.T) {
	w := world(t, 2)
	errs := make([]error, 2)
	_ = w.Run(func(c runtime.Comm) error {
		if c.Rank() == 0 {
			_, errs[0] = Alltoall(c, make([][]byte, 1)) // wrong length
			return nil
		}
		return nil
	})
	if errs[0] == nil {
		t.Error("wrong sendbuf length accepted")
	}
}

func BenchmarkAllreduce64(b *testing.B) {
	w := world(b, 64)
	comms := w.Comms()
	vec := make([]float64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := runtime.Run(comms, func(c runtime.Comm) error {
			_, err := Allreduce(c, vec, Sum)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarrier64(b *testing.B) {
	w := world(b, 64)
	comms := w.Comms()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runtime.Run(comms, Barrier); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGather(t *testing.T) {
	for _, K := range []int{1, 2, 5, 8} {
		for root := 0; root < K; root += maxi(1, K-1) {
			w := world(t, K)
			err := w.Run(func(c runtime.Comm) error {
				mine := []byte{byte(c.Rank() * 3)}
				got, err := Gather(c, root, mine)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if got != nil {
						return fmt.Errorf("non-root got data")
					}
					return nil
				}
				for r := 0; r < K; r++ {
					if len(got[r]) != 1 || got[r][0] != byte(r*3) {
						return fmt.Errorf("root: got[%d] = %v", r, got[r])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("K=%d root=%d: %v", K, root, err)
			}
		}
	}
	w := world(t, 2)
	err := w.Run(func(c runtime.Comm) error {
		if _, err := Gather(c, 9, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterDoubles(t *testing.T) {
	for _, K := range []int{2, 4, 3} {
		w := world(t, K)
		n := 2 * K
		err := w.Run(func(c runtime.Comm) error {
			vec := make([]float64, n)
			for i := range vec {
				vec[i] = float64(i)
			}
			// Sum over K ranks of the same vector = K * vec.
			got, err := ReduceScatterDoubles(c, vec, Sum)
			if err != nil {
				return err
			}
			me := c.Rank()
			lo := me * n / K
			if len(got) != (me+1)*n/K-lo {
				return fmt.Errorf("rank %d: block size %d", me, len(got))
			}
			for i, v := range got {
				if want := float64(K) * float64(lo+i); v != want {
					return fmt.Errorf("rank %d: got[%d] = %v, want %v", me, i, v, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("K=%d: %v", K, err)
		}
	}
}
