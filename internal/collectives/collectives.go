// Package collectives implements the classic regular collective operations
// the paper positions its work against (Section 7): barrier, broadcast,
// allgather, reduce-scatter, allreduce and all-to-all, built on the same
// runtime.Comm substrate as the store-and-forward scheme. They use the
// standard logarithmic algorithms (dissemination, binomial tree, recursive
// doubling, Bruck) so the repository contains the collective baseline an
// MPI distribution would offer, and so applications (e.g. the CG solver in
// internal/iterative) have the reductions they need.
//
// All operations are collective: every rank of the communicator must call
// them with compatible arguments. Tags are drawn from a reserved range so
// collectives can interleave with store-and-forward exchanges.
package collectives

import (
	"encoding/binary"
	"fmt"
	"math"

	"stfw/internal/runtime"
)

const (
	tagBarrier = 0x4342 + iota
	tagBcast
	tagAllgather
	tagReduceScatter
	tagAllreduce
	tagAlltoall
)

// Barrier synchronizes all ranks with the dissemination algorithm:
// ceil(lg K) rounds, one message per rank per round.
func Barrier(c runtime.Comm) error {
	K := c.Size()
	me := c.Rank()
	for round, dist := 0, 1; dist < K; round, dist = round+1, dist*2 {
		to := (me + dist) % K
		from := (me - dist%K + K) % K
		if err := c.Send(to, tagBarrier+round*16, nil); err != nil {
			return fmt.Errorf("collectives: barrier round %d: %w", round, err)
		}
		if _, err := c.Recv(from, tagBarrier+round*16); err != nil {
			return fmt.Errorf("collectives: barrier round %d: %w", round, err)
		}
	}
	return nil
}

// Bcast distributes root's buffer to every rank using a binomial tree:
// non-roots receive once, then forward to lg K - level children. It returns
// the broadcast payload (root's own buf on the root).
func Bcast(c runtime.Comm, root int, buf []byte) ([]byte, error) {
	K := c.Size()
	if root < 0 || root >= K {
		return nil, fmt.Errorf("collectives: bcast root %d out of range", root)
	}
	// Rotate ranks so the root is virtual rank 0.
	vrank := (c.Rank() - root + K) % K
	data := buf
	if vrank != 0 {
		// Receive from parent: clear lowest set bit.
		parent := (vrank&(vrank-1) + root) % K
		var err error
		data, err = c.Recv(parent, tagBcast)
		if err != nil {
			return nil, fmt.Errorf("collectives: bcast recv: %w", err)
		}
	}
	// Forward to children: set bits above the lowest set bit of vrank.
	low := vrank & (-vrank)
	if vrank == 0 {
		low = 1 << uint(bitsLen(K))
	}
	for d := low >> 1; d > 0; d >>= 1 {
		child := vrank | d
		if child != vrank && child < K {
			if err := c.Send((child+root)%K, tagBcast, data); err != nil {
				return nil, fmt.Errorf("collectives: bcast send: %w", err)
			}
		}
	}
	return data, nil
}

// bitsLen returns the number of bits needed to represent v-1 (ceil lg v).
func bitsLen(v int) int {
	n := 0
	for 1<<uint(n) < v {
		n++
	}
	return n
}

// AllgatherDoubles gathers one float64 slice from every rank into a
// [][]float64 indexed by rank, using the ring algorithm (works for any K;
// K-1 rounds, one message per rank per round — bandwidth-optimal).
func AllgatherDoubles(c runtime.Comm, mine []float64) ([][]float64, error) {
	K := c.Size()
	me := c.Rank()
	out := make([][]float64, K)
	out[me] = mine
	cur := mine
	curOwner := me
	right := (me + 1) % K
	left := (me - 1 + K) % K
	for round := 0; round < K-1; round++ {
		if err := c.Send(right, tagAllgather+round, encodeOwned(curOwner, cur)); err != nil {
			return nil, fmt.Errorf("collectives: allgather send: %w", err)
		}
		raw, err := c.Recv(left, tagAllgather+round)
		if err != nil {
			return nil, fmt.Errorf("collectives: allgather recv: %w", err)
		}
		owner, vals, err := decodeOwned(raw)
		if err != nil {
			return nil, err
		}
		if owner < 0 || owner >= K || out[owner] != nil && owner != me {
			return nil, fmt.Errorf("collectives: allgather duplicate segment from rank %d", owner)
		}
		out[owner] = vals
		cur, curOwner = vals, owner
	}
	return out, nil
}

func encodeOwned(owner int, vals []float64) []byte {
	buf := make([]byte, 0, 4+8*len(vals))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(owner))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func decodeOwned(raw []byte) (int, []float64, error) {
	if len(raw) < 4 || (len(raw)-4)%8 != 0 {
		return 0, nil, fmt.Errorf("collectives: malformed segment (%d bytes)", len(raw))
	}
	owner := int(binary.LittleEndian.Uint32(raw))
	vals := make([]float64, (len(raw)-4)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[4+8*i:]))
	}
	return owner, vals, nil
}

// Op is a reduction operator over float64.
type Op func(a, b float64) float64

// Sum, Max and Min are the standard reduction operators.
var (
	Sum Op = func(a, b float64) float64 { return a + b }
	Max Op = math.Max
	Min Op = math.Min
)

// Allreduce reduces the vectors elementwise across all ranks and returns
// the full result on every rank, using recursive doubling when K is a power
// of two and a ring fallback otherwise. All ranks must pass equal-length
// vectors.
func Allreduce(c runtime.Comm, vec []float64, op Op) ([]float64, error) {
	K := c.Size()
	me := c.Rank()
	acc := append([]float64(nil), vec...)
	if K&(K-1) == 0 {
		// Recursive doubling: lg K rounds of pairwise exchange.
		for round, dist := 0, 1; dist < K; round, dist = round+1, dist*2 {
			peer := me ^ dist
			if err := c.Send(peer, tagAllreduce+round, encodeOwned(me, acc)); err != nil {
				return nil, fmt.Errorf("collectives: allreduce send: %w", err)
			}
			raw, err := c.Recv(peer, tagAllreduce+round)
			if err != nil {
				return nil, fmt.Errorf("collectives: allreduce recv: %w", err)
			}
			_, theirs, err := decodeOwned(raw)
			if err != nil {
				return nil, err
			}
			if len(theirs) != len(acc) {
				return nil, fmt.Errorf("collectives: allreduce length mismatch %d vs %d", len(theirs), len(acc))
			}
			for i := range acc {
				acc[i] = op(acc[i], theirs[i])
			}
		}
		return acc, nil
	}
	// Non-power-of-two fallback: allgather everything and reduce locally.
	// O(K) messages per rank, always correct for any associative op.
	return allreduceViaGather(c, vec, op)
}

// allreduceViaGather is the simple correct fallback for non-power-of-two K:
// allgather everything, reduce locally. O(K) messages but always right.
func allreduceViaGather(c runtime.Comm, vec []float64, op Op) ([]float64, error) {
	all, err := AllgatherDoubles(c, vec)
	if err != nil {
		return nil, err
	}
	acc := append([]float64(nil), all[0]...)
	for r := 1; r < len(all); r++ {
		if len(all[r]) != len(acc) {
			return nil, fmt.Errorf("collectives: allreduce length mismatch at rank %d", r)
		}
		for i := range acc {
			acc[i] = op(acc[i], all[r][i])
		}
	}
	return acc, nil
}

// AllreduceScalar reduces a single value across all ranks.
func AllreduceScalar(c runtime.Comm, v float64, op Op) (float64, error) {
	out, err := Allreduce(c, []float64{v}, op)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Alltoall performs a dense personalized exchange: sendbuf[j] goes to rank
// j, and the returned slice holds recvbuf[i] = what rank i sent to this
// rank. It uses direct pairwise exchange in K-1 balanced rounds (the
// XOR/shift schedule), the dense counterpart of the paper's sparse
// exchange.
func Alltoall(c runtime.Comm, sendbuf [][]byte) ([][]byte, error) {
	K := c.Size()
	me := c.Rank()
	if len(sendbuf) != K {
		return nil, fmt.Errorf("collectives: alltoall sendbuf has %d entries for K=%d", len(sendbuf), K)
	}
	recv := make([][]byte, K)
	recv[me] = sendbuf[me]
	for round := 0; round < K; round++ {
		var peer int
		if K&(K-1) == 0 {
			peer = me ^ round // perfectly balanced pairwise schedule
		} else {
			// Pair ranks so a+b = round (mod K): symmetric and, over all
			// rounds 0..K-1, covers every ordered pair exactly once.
			peer = (round - me%K + K) % K
		}
		if peer == me {
			continue
		}
		if err := c.Send(peer, tagAlltoall+round, sendbuf[peer]); err != nil {
			return nil, fmt.Errorf("collectives: alltoall send round %d: %w", round, err)
		}
		raw, err := c.Recv(peer, tagAlltoall+round)
		if err != nil {
			return nil, fmt.Errorf("collectives: alltoall recv round %d: %w", round, err)
		}
		recv[peer] = raw
	}
	return recv, nil
}

// Gather collects one byte slice from every rank at the root (returned
// slice indexed by rank on the root, nil elsewhere), using direct sends —
// the inverse of Bcast's fan-out is rarely latency-critical at the sizes
// the solver uses, and root-side aggregation keeps it simple.
func Gather(c runtime.Comm, root int, mine []byte) ([][]byte, error) {
	K := c.Size()
	if root < 0 || root >= K {
		return nil, fmt.Errorf("collectives: gather root %d out of range", root)
	}
	me := c.Rank()
	if me != root {
		return nil, c.Send(root, tagAlltoall-1, mine)
	}
	out := make([][]byte, K)
	out[root] = mine
	for r := 0; r < K; r++ {
		if r == root {
			continue
		}
		raw, err := c.Recv(r, tagAlltoall-1)
		if err != nil {
			return nil, fmt.Errorf("collectives: gather recv from %d: %w", r, err)
		}
		out[r] = raw
	}
	return out, nil
}

// ReduceScatterDoubles reduces the vectors elementwise and leaves each rank
// with its block of the result: rank r gets elements [r*len/K, (r+1)*len/K)
// of the reduction. Built as allreduce + local slice; the simple form is
// correct for any K and any associative op.
func ReduceScatterDoubles(c runtime.Comm, vec []float64, op Op) ([]float64, error) {
	full, err := Allreduce(c, vec, op)
	if err != nil {
		return nil, err
	}
	K := c.Size()
	me := c.Rank()
	lo := me * len(full) / K
	hi := (me + 1) * len(full) / K
	out := make([]float64, hi-lo)
	copy(out, full[lo:hi])
	return out, nil
}
