package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"stfw/internal/core"
	"stfw/internal/vpt"
)

func TestTorusHops(t *testing.T) {
	tor, err := NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tor.Nodes() != 16 {
		t.Fatalf("nodes = %d", tor.Nodes())
	}
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},  // wrap-around in dim 0
		{0, 5, 2},  // (1,1)
		{0, 10, 4}, // (2,2) both distance 2
		{0, 15, 2}, // (3,3) wraps to (1,1)
	}
	for _, c := range cases {
		if got := tor.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTorusHopsSymmetric(t *testing.T) {
	tor, _ := NewTorus(4, 2, 8)
	f := func(a, b uint16) bool {
		x, y := int(a)%tor.Nodes(), int(b)%tor.Nodes()
		return tor.Hops(x, y) == tor.Hops(y, x) && tor.Hops(x, x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFitTorus(t *testing.T) {
	for _, c := range []struct{ nodes, ndims int }{{32, 5}, {1024, 3}, {1, 3}, {100, 3}} {
		tor, err := FitTorus(c.nodes, c.ndims)
		if err != nil {
			t.Fatal(err)
		}
		if tor.Nodes() < c.nodes {
			t.Errorf("FitTorus(%d,%d) only %d nodes", c.nodes, c.ndims, tor.Nodes())
		}
		if tor.Nodes() > 2*c.nodes {
			t.Errorf("FitTorus(%d,%d) oversized: %d nodes", c.nodes, c.ndims, tor.Nodes())
		}
	}
	if _, err := FitTorus(0, 3); err == nil {
		t.Error("FitTorus(0,3) should fail")
	}
}

func TestFitTorusBalanced(t *testing.T) {
	tor, _ := FitTorus(1024, 3)
	// 1024 = 2^10 over 3 dims -> dims in {8,16}; max/min <= 2.
	min, max := 1<<30, 0
	for _, d := range tor.dims {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max > 2*min {
		t.Errorf("unbalanced torus dims %v", tor.dims)
	}
}

func TestDragonflyHops(t *testing.T) {
	df, err := NewDragonfly(4, 2, 2) // 4 nodes/group
	if err != nil {
		t.Fatal(err)
	}
	if df.Nodes() != 16 {
		t.Fatalf("nodes = %d", df.Nodes())
	}
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1}, // same router
		{0, 2, 2}, // same group, different router
		{0, 4, 5}, // different group
		{5, 4, 1},
	}
	for _, c := range cases {
		if got := df.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFitDragonfly(t *testing.T) {
	df, err := FitDragonfly(128)
	if err != nil {
		t.Fatal(err)
	}
	if df.Nodes() < 128 {
		t.Errorf("nodes = %d", df.Nodes())
	}
	df1, _ := FitDragonfly(1)
	if df1.Nodes() < 1 {
		t.Error("FitDragonfly(1)")
	}
}

func TestMeanHops(t *testing.T) {
	tor, _ := NewTorus(4)
	// ring of 4: distances 1,2,1 -> mean 4/3
	if got, want := MeanHops(tor), 4.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanHops = %v, want %v", got, want)
	}
	single, _ := NewTorus(1)
	if MeanHops(single) != 0 {
		t.Error("MeanHops of 1 node must be 0")
	}
}

func TestMachineProfiles(t *testing.T) {
	for _, build := range []func(int) (*Machine, error){BlueGeneQ, CrayXK7, CrayXC40} {
		m, err := build(512)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(512); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if m.Alpha <= 0 || m.BetaWord <= 0 || m.FlopTime <= 0 {
			t.Errorf("%s: nonpositive constants", m.Name)
		}
		// Cost must grow with message size and be at least Alpha.
		if c := m.MsgCost(0, 1, 0, 0); c < m.Alpha {
			t.Errorf("%s: zero-size message cheaper than Alpha", m.Name)
		}
		if m.MsgCost(0, 100, 1000, 1) <= m.MsgCost(0, 100, 10, 1) {
			t.Errorf("%s: cost not increasing in size", m.Name)
		}
	}
}

func TestXC40MoreLatencyBound(t *testing.T) {
	// Section 6.4 attributes XC40's larger STFW gains to a larger
	// startup-to-per-word ratio; the profiles must encode that.
	bgq, _ := BlueGeneQ(512)
	xc, _ := CrayXC40(512)
	if xc.Alpha/xc.BetaWord <= bgq.Alpha/bgq.BetaWord {
		t.Errorf("XC40 ratio %.0f must exceed BG/Q ratio %.0f",
			xc.Alpha/xc.BetaWord, bgq.Alpha/bgq.BetaWord)
	}
}

func TestCommTimeDirectVsSTFW(t *testing.T) {
	// A single hot sender with K-1 small messages: STFW on a high-dim VPT
	// must be much cheaper than BL under any profile.
	K := 256
	s := core.NewSendSets(K)
	for j := 1; j < K; j++ {
		s.Add(0, j, 16)
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	bl, err := core.BuildDirectPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := vpt.NewBalanced(K, 8)
	st, err := core.BuildPlan(tp, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, build := range []func(int) (*Machine, error){BlueGeneQ, CrayXK7, CrayXC40} {
		m, _ := build(K)
		tBL, err := CommTime(m, bl)
		if err != nil {
			t.Fatal(err)
		}
		tST, err := CommTime(m, st)
		if err != nil {
			t.Fatal(err)
		}
		if tST >= tBL {
			t.Errorf("%s: STFW (%.1fus) not faster than BL (%.1fus) on hot-spot pattern",
				m.Name, Microseconds(tST), Microseconds(tBL))
		}
	}
}

func TestCommTimeAdditiveOverStages(t *testing.T) {
	K := 64
	s := core.Complete(K, 4)
	tp, _ := vpt.NewBalanced(K, 3)
	p, _ := core.BuildPlan(tp, s)
	m, _ := BlueGeneQ(K)
	total, err := CommTime(m, p)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := StageTimes(m, p)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, st := range stages {
		sum += st
	}
	if math.Abs(total-sum) > 1e-12 {
		t.Errorf("CommTime %v != sum of StageTimes %v", total, sum)
	}
	if len(stages) != 3 {
		t.Errorf("%d stages", len(stages))
	}
}

func TestComputeAndSpMVTime(t *testing.T) {
	K := 16
	s := core.Complete(K, 1)
	p, _ := core.BuildDirectPlan(s)
	m, _ := BlueGeneQ(K)
	nnz := make([]int64, K)
	for i := range nnz {
		nnz[i] = 1000
	}
	nnz[3] = 5000 // the busiest rank dictates
	spmv, err := SpMVTime(m, p, nnz)
	if err != nil {
		t.Fatal(err)
	}
	comm, _ := CommTime(m, p)
	wantCompute := float64(2*5000) * m.FlopTime
	if math.Abs(spmv-comm-wantCompute) > 1e-12 {
		t.Errorf("SpMVTime = %v, want comm %v + compute %v", spmv, comm, wantCompute)
	}
	if _, err := SpMVTime(m, p, nnz[:4]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCommTimeValidatesMachine(t *testing.T) {
	s := core.Complete(64, 1)
	p, _ := core.BuildDirectPlan(s)
	small, _ := NewTorus(1) // 1 node cannot host 64 ranks at 16/node
	m := &Machine{Name: "tiny", Topo: small, RanksPerNode: 16, Alpha: 1e-6, BetaWord: 1e-9, GammaHop: 0, FlopTime: 1e-9}
	if _, err := CommTime(m, p); err == nil {
		t.Error("undersized machine accepted")
	}
}

func BenchmarkCommTime(b *testing.B) {
	K := 1024
	s := core.Complete(K, 2)
	tp, _ := vpt.NewBalanced(K, 5)
	p, _ := core.BuildPlan(tp, s)
	m, _ := CrayXK7(K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CommTime(m, p); err != nil {
			b.Fatal(err)
		}
	}
}
