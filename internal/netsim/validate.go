package netsim

import (
	"fmt"
	"io"
	"sort"

	"stfw/internal/core"
)

// Measured-vs-model validation: confronting the alpha-beta cost model with
// what the wire transports actually measured. The telemetry layer produces
// per-stage wall-clock times (stage-scoped spans, straggler-maxed across
// ranks) and per-link counters (smoothed ack RTTs, byte and message
// volumes); this file turns those into a calibrated Machine and a per-stage
// divergence table. The question the table answers is not "does the XC40
// profile predict a loopback run" (it cannot) but "does a single (alpha,
// beta) pair explain every stage of the measured schedule" — if the model's
// shape is right, the calibrated prediction tracks the measurement across
// stages and the ratio column hovers near 1; a stage the model cannot
// explain shows up as a ratio far from its neighbors. That per-stage check
// is exactly the calibration substrate an autotuner needs before it can
// trust CommTime to rank candidate topologies.

// Loopback is the physical topology of a single-host multi-process run:
// every rank shares one node, so hop counts vanish and the cost model
// degenerates to pure alpha-beta.
type Loopback struct{}

// Nodes returns 1: the whole world lives on one host.
func (Loopback) Nodes() int { return 1 }

// Hops returns 0 for every pair: loopback traffic never leaves the host.
func (Loopback) Hops(a, b int) int { return 0 }

// Name identifies the topology for reports.
func (Loopback) Name() string { return "loopback (single host)" }

// stageLoad is the busiest-process load of one stage under the
// stage-synchronous model: the message and word bill of the rank that
// dominates the stage (send and receive sides both serialize at the NIC,
// mirroring CommTime's busy accounting).
type stageLoad struct {
	msgs  int64
	words int64
}

// stageLoads extracts each stage's busiest-rank (msgs, words) pair from a
// plan. The busiest rank is chosen by word volume (ties by message count):
// under any fixed (alpha, beta) the true argmax can differ, so the result
// is an estimate — good enough to seed calibration, and CompareStageTimes
// always prices the final machine with the exact max-of-sums.
func stageLoads(p *core.Plan) []stageLoad {
	K := len(p.SentMsgs)
	out := make([]stageLoad, len(p.Stages))
	msgs := make([]int64, K)
	words := make([]int64, K)
	for d, stage := range p.Stages {
		for i := 0; i < K; i++ {
			msgs[i], words[i] = 0, 0
		}
		for _, f := range stage {
			msgs[f.From]++
			msgs[f.To]++
			words[f.From] += f.Words
			words[f.To] += f.Words
		}
		best := 0
		for i := 1; i < K; i++ {
			if words[i] > words[best] || (words[i] == words[best] && msgs[i] > msgs[best]) {
				best = i
			}
		}
		out[d] = stageLoad{msgs: msgs[best], words: words[best]}
	}
	return out
}

// CalibrateMachine fits a loopback Machine to a measured run. Alpha comes
// straight from the wire — alphaSec should be half the mean smoothed ack
// round-trip the transport observed (one-way startup latency). BetaWord is
// estimated from the residual: for each stage with a nonzero busiest-rank
// word load, (measured - alpha*msgs) / words is one per-word cost estimate,
// and the median across stages is kept (robust against a straggler-skewed
// stage poisoning the fit). Negative residuals clamp to zero; a schedule
// with no word-carrying stage calibrates to BetaWord 0.
//
// SubCost and GammaHop stay zero: on loopback there are no hops, and the
// per-submessage scatter cost is folded into the effective BetaWord, which
// is what the measurement actually observes.
func CalibrateMachine(name string, K int, alphaSec float64, p *core.Plan, measuredSec []float64) (*Machine, error) {
	if len(measuredSec) != len(p.Stages) {
		return nil, fmt.Errorf("netsim: calibrate: %d measured stages for a %d-stage plan",
			len(measuredSec), len(p.Stages))
	}
	if alphaSec < 0 {
		return nil, fmt.Errorf("netsim: calibrate: negative alpha %g", alphaSec)
	}
	loads := stageLoads(p)
	var betas []float64
	for d, ld := range loads {
		if ld.words <= 0 {
			continue
		}
		beta := (measuredSec[d] - alphaSec*float64(ld.msgs)) / float64(ld.words)
		if beta < 0 {
			beta = 0
		}
		betas = append(betas, beta)
	}
	beta := 0.0
	if len(betas) > 0 {
		sort.Float64s(betas)
		beta = betas[len(betas)/2]
	}
	m := &Machine{
		Name:         name,
		Topo:         Loopback{},
		RanksPerNode: K,
		Alpha:        alphaSec,
		BetaWord:     beta,
	}
	return m, m.Validate(K)
}

// StageDivergence is one row of the measured-vs-model table: the calibrated
// model's stage prediction next to the measured stage wall-clock. Ratio is
// measured over predicted (1.0 = perfect agreement, 0 when the model
// predicts a zero-cost stage).
type StageDivergence struct {
	Stage        int     `json:"stage"`
	Frames       int     `json:"frames"`
	Words        int64   `json:"words"`
	PredictedSec float64 `json:"predicted_sec"`
	MeasuredSec  float64 `json:"measured_sec"`
	Ratio        float64 `json:"ratio"`
}

// CompareStageTimes prices the plan on m and lines each stage's prediction
// up against the measured wall-clock (seconds, same length as p.Stages).
func CompareStageTimes(m *Machine, p *core.Plan, measuredSec []float64) ([]StageDivergence, error) {
	if len(measuredSec) != len(p.Stages) {
		return nil, fmt.Errorf("netsim: compare: %d measured stages for a %d-stage plan",
			len(measuredSec), len(p.Stages))
	}
	pred, err := StageTimes(m, p)
	if err != nil {
		return nil, err
	}
	out := make([]StageDivergence, len(pred))
	for d := range pred {
		var words int64
		for _, f := range p.Stages[d] {
			words += f.Words
		}
		row := StageDivergence{
			Stage:        d,
			Frames:       len(p.Stages[d]),
			Words:        words,
			PredictedSec: pred[d],
			MeasuredSec:  measuredSec[d],
		}
		if pred[d] > 0 {
			row.Ratio = measuredSec[d] / pred[d]
		}
		out[d] = row
	}
	return out, nil
}

// TotalDivergence sums a divergence table into one (predicted, measured,
// ratio) line — the whole-schedule agreement headline.
func TotalDivergence(rows []StageDivergence) (predictedSec, measuredSec, ratio float64) {
	for _, r := range rows {
		predictedSec += r.PredictedSec
		measuredSec += r.MeasuredSec
	}
	if predictedSec > 0 {
		ratio = measuredSec / predictedSec
	}
	return predictedSec, measuredSec, ratio
}

// WriteDivergence renders the divergence table as aligned plain text, with
// a totals line.
func WriteDivergence(w io.Writer, m *Machine, rows []StageDivergence) {
	fmt.Fprintf(w, "model: %s  alpha=%.2fus  beta=%.3fns/word\n",
		m.Name, m.Alpha*1e6, m.BetaWord*1e9)
	fmt.Fprintf(w, "%5s %7s %9s %12s %12s %7s\n",
		"stage", "frames", "words", "pred_us", "meas_us", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d %7d %9d %12.1f %12.1f %7.2f\n",
			r.Stage, r.Frames, r.Words,
			Microseconds(r.PredictedSec), Microseconds(r.MeasuredSec), r.Ratio)
	}
	pred, meas, ratio := TotalDivergence(rows)
	fmt.Fprintf(w, "%5s %7s %9s %12.1f %12.1f %7.2f\n",
		"total", "", "", Microseconds(pred), Microseconds(meas), ratio)
}
