// Package netsim prices a communication schedule (a core.Plan) on a model
// of a physical machine: an (alpha, beta, gamma) cost model on top of a
// physical network topology with hop counts. It stands in for the paper's
// BlueGene/Q (5D torus), Cray XK7 (3D torus, Gemini) and Cray XC40
// (Dragonfly, Aries) testbeds. The absolute times it produces are not
// claimed to match the paper's; the latency/bandwidth ratios of the
// profiles are calibrated so that the relative behaviour — who wins, by
// what factor, where the best VPT dimension falls — reproduces the paper's.
package netsim

import "fmt"

// Topology models a physical interconnect at node granularity: the number
// of nodes and the hop distance between any two of them.
type Topology interface {
	// Nodes returns the number of nodes in the network.
	Nodes() int
	// Hops returns the number of network links a minimal route between
	// nodes a and b traverses; 0 when a == b.
	Hops(a, b int) int
	// Name identifies the topology for reports.
	Name() string
}

// Torus is an n-dimensional torus (wrap-around mesh), the topology of
// BlueGene/Q (5D) and Cray XK7 (3D). Hop distance is the Manhattan distance
// with wrap-around in each dimension.
type Torus struct {
	dims    []int
	strides []int
	nodes   int
}

// NewTorus builds a torus with the given dimension sizes.
func NewTorus(dims ...int) (*Torus, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("netsim: torus needs at least one dimension")
	}
	t := &Torus{dims: append([]int(nil), dims...)}
	n := 1
	for _, k := range dims {
		if k < 1 {
			return nil, fmt.Errorf("netsim: invalid torus dims %v", dims)
		}
		n *= k
	}
	t.nodes = n
	t.strides = make([]int, len(dims))
	s := 1
	for d, k := range dims {
		t.strides[d] = s
		s *= k
	}
	return t, nil
}

// FitTorus builds an n-dimensional torus with at least `nodes` nodes whose
// dimensions are as close to equal as possible. For power-of-two node
// counts the result has exactly `nodes` nodes.
func FitTorus(nodes, ndims int) (*Torus, error) {
	if nodes < 1 || ndims < 1 {
		return nil, fmt.Errorf("netsim: FitTorus(%d, %d)", nodes, ndims)
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Repeatedly double the smallest dimension until capacity suffices.
	cap := 1
	for cap < nodes {
		smallest := 0
		for d := 1; d < ndims; d++ {
			if dims[d] < dims[smallest] {
				smallest = d
			}
		}
		dims[smallest] *= 2
		cap *= 2
	}
	return NewTorus(dims...)
}

// Nodes implements Topology.
func (t *Torus) Nodes() int { return t.nodes }

// Name implements Topology.
func (t *Torus) Name() string { return fmt.Sprintf("%dD Torus %v", len(t.dims), t.dims) }

// Hops implements Topology: per-dimension shortest wrap-around distance.
func (t *Torus) Hops(a, b int) int {
	h := 0
	for d, k := range t.dims {
		ca := (a / t.strides[d]) % k
		cb := (b / t.strides[d]) % k
		diff := ca - cb
		if diff < 0 {
			diff = -diff
		}
		if wrap := k - diff; wrap < diff {
			diff = wrap
		}
		h += diff
	}
	return h
}

// Dragonfly is a two-level direct network in the style of Cray Aries: nodes
// attach to routers, routers form all-to-all connected groups, and groups
// are connected all-to-all by global links. Minimal routing costs at most
// one local, one global, and one local hop.
type Dragonfly struct {
	groups         int
	routersPer     int
	nodesPerRouter int
}

// NewDragonfly builds a dragonfly with the given shape.
func NewDragonfly(groups, routersPerGroup, nodesPerRouter int) (*Dragonfly, error) {
	if groups < 1 || routersPerGroup < 1 || nodesPerRouter < 1 {
		return nil, fmt.Errorf("netsim: invalid dragonfly (%d,%d,%d)", groups, routersPerGroup, nodesPerRouter)
	}
	return &Dragonfly{groups: groups, routersPer: routersPerGroup, nodesPerRouter: nodesPerRouter}, nil
}

// FitDragonfly builds a dragonfly with at least `nodes` nodes using a fixed
// group shape (16 routers x 4 nodes = 64 nodes per group, a scaled-down
// Cascade cabinet).
func FitDragonfly(nodes int) (*Dragonfly, error) {
	const routers, per = 16, 4
	groupSize := routers * per
	groups := (nodes + groupSize - 1) / groupSize
	if groups < 1 {
		groups = 1
	}
	return NewDragonfly(groups, routers, per)
}

// Nodes implements Topology.
func (d *Dragonfly) Nodes() int { return d.groups * d.routersPer * d.nodesPerRouter }

// Name implements Topology.
func (d *Dragonfly) Name() string {
	return fmt.Sprintf("Dragonfly %dg x %dr x %dn", d.groups, d.routersPer, d.nodesPerRouter)
}

// Hops implements Topology: 0 same node, 1 same router, 2 same group
// (local-local), 5 across groups (local, global, local plus endpoint
// links), matching minimal-path hop counts of two-level dragonflies.
func (d *Dragonfly) Hops(a, b int) int {
	if a == b {
		return 0
	}
	ra, rb := a/d.nodesPerRouter, b/d.nodesPerRouter
	if ra == rb {
		return 1
	}
	ga, gb := ra/d.routersPer, rb/d.routersPer
	if ga == gb {
		return 2
	}
	return 5
}

// MeanHops estimates the average hop distance of a topology by exact
// enumeration for small networks and sampling-free closed iteration rows
// for larger ones (it enumerates pairs from node 0 and a middle node, which
// is exact for vertex-transitive topologies like torus and dragonfly).
func MeanHops(t Topology) float64 {
	n := t.Nodes()
	if n <= 1 {
		return 0
	}
	var sum float64
	for b := 0; b < n; b++ {
		sum += float64(t.Hops(0, b))
	}
	return sum / float64(n-1)
}
