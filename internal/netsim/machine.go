package netsim

import "fmt"

// Machine is a cost-model profile of a parallel system: a physical topology,
// the process-to-node packing, and the constants of the communication and
// computation cost model.
//
// The message cost model is the classic postal/alpha-beta model extended
// with a per-hop term:
//
//	cost(m) = Alpha + Words(m) * BetaWord + Hops(node(src), node(dst)) * GammaHop
//
// Alpha is the message startup (injection + software) latency. BetaWord is
// the *effective* per-8-byte-word cost: wire transfer plus the CPU cost of
// packing submessages on the sender and scattering them into forward
// buffers on the receiver — the per-stage processing Section 3 describes,
// which is what makes excessive forwarding at high VPT dimensions
// expensive in the paper's Section 6.5. GammaHop is the per-link
// propagation cost. The paper's observation that the Cray XC40 is "more
// latency-bound" than BlueGene/Q is encoded as a larger Alpha/BetaWord
// ratio.
type Machine struct {
	Name         string
	Topo         Topology
	RanksPerNode int
	Alpha        float64 // seconds per message startup
	BetaWord     float64 // seconds per 8-byte word
	SubCost      float64 // seconds per submessage carried (header parse + scatter, lines 14-17 of Algorithm 1)
	GammaHop     float64 // seconds per network hop
	FlopTime     float64 // seconds per floating-point op in local SpMV (memory-bound effective rate)

	// placement optionally permutes ranks before node packing; nil means
	// linear packing (rank r on node r / RanksPerNode). Set WithPlacement.
	placement []int
}

// Node returns the physical node hosting a rank: linear packing, optionally
// through a rank placement permutation.
func (m *Machine) Node(rank int) int {
	if m.placement != nil {
		rank = m.placement[rank]
	}
	return rank / m.RanksPerNode
}

// WithPlacement returns a copy of m whose rank-to-node mapping routes
// through the permutation perm (rank r occupies the slot perm[r]). It
// implements the physical side of the paper's Section 8 future work:
// keeping heavily-communicating ranks close in the physical topology
// without touching the virtual topology or the routing.
func (m *Machine) WithPlacement(perm []int) (*Machine, error) {
	if perm == nil {
		cp := *m
		cp.placement = nil
		return &cp, nil
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return nil, fmt.Errorf("netsim: placement is not a permutation")
		}
		seen[p] = true
	}
	cp := *m
	cp.placement = append([]int(nil), perm...)
	return &cp, nil
}

// MsgCost prices one message of `words` 8-byte words aggregating `subs`
// submessages between two ranks. The per-submessage term models the
// receiver-side scatter of Algorithm 1 (each submessage's destination is
// inspected and the payload moved into a forward buffer) and the sender's
// gather; it is what makes excessive forwarding at very high VPT
// dimensions costly, as Section 6.5 observes.
func (m *Machine) MsgCost(from, to int, words, subs int64) float64 {
	return m.Alpha + float64(words)*m.BetaWord + float64(subs)*m.SubCost +
		float64(m.Topo.Hops(m.Node(from), m.Node(to)))*m.GammaHop
}

// Validate checks that the machine can host K ranks.
func (m *Machine) Validate(K int) error {
	if m.RanksPerNode < 1 {
		return fmt.Errorf("netsim: %s: RanksPerNode %d", m.Name, m.RanksPerNode)
	}
	need := (K + m.RanksPerNode - 1) / m.RanksPerNode
	if m.Topo.Nodes() < need {
		return fmt.Errorf("netsim: %s: %d nodes cannot host %d ranks at %d per node",
			m.Name, m.Topo.Nodes(), K, m.RanksPerNode)
	}
	return nil
}

// The three machine profiles of the paper's evaluation. The constants are
// calibrated to public latency/bandwidth figures of the respective
// interconnects (not to the paper's tables): BG/Q Torus ~2.5-5us MPI
// latency, ~1.8GB/s usable per-link bandwidth; Gemini ~1.5us, ~5GB/s; Aries
// ~1.3us hardware but a high software startup relative to its ~10GB/s
// bandwidth. What matters for reproducing the paper's shapes is that
// Alpha/BetaWord is largest on the XC40 profile, as Section 6.4 observes.

// BlueGeneQ returns the BG/Q profile sized for K ranks: 5D torus, 16 ranks
// per node.
func BlueGeneQ(K int) (*Machine, error) {
	const ranksPerNode = 16
	nodes := (K + ranksPerNode - 1) / ranksPerNode
	topo, err := FitTorus(nodes, 5)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Name:         "BlueGene/Q (5D Torus)",
		Topo:         topo,
		RanksPerNode: ranksPerNode,
		Alpha:        4.0e-6,
		BetaWord:     15.0e-9, // wire (~2 GB/s) + pack/scatter handling on the slow A2 core
		SubCost:      2.5e-7,  // per-submessage scatter on the 1.6 GHz A2
		GammaHop:     4.0e-8,
		FlopTime:     8.0e-9, // memory-bound SpMV on PowerPC A2
	}
	return m, m.Validate(K)
}

// CrayXK7 returns the XK7 profile sized for K ranks: 3D torus (Gemini), 16
// ranks per node.
func CrayXK7(K int) (*Machine, error) {
	const ranksPerNode = 16
	nodes := (K + ranksPerNode - 1) / ranksPerNode
	topo, err := FitTorus(nodes, 3)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Name:         "Cray XK7 (3D Torus)",
		Topo:         topo,
		RanksPerNode: ranksPerNode,
		Alpha:        3.0e-6,
		BetaWord:     22.0e-9, // wire (~5 GB/s) dominated by per-word handling on Interlagos
		SubCost:      3.0e-7,  // per-submessage scatter on Interlagos
		GammaHop:     1.0e-7,
		FlopTime:     6.0e-9,
	}
	return m, m.Validate(K)
}

// CrayXC40 returns the XC40 profile sized for K ranks: Dragonfly (Aries),
// 32 ranks per node (two 16-core Haswells).
func CrayXC40(K int) (*Machine, error) {
	const ranksPerNode = 32
	nodes := (K + ranksPerNode - 1) / ranksPerNode
	topo, err := FitDragonfly(nodes)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Name:         "Cray XC40 (Dragonfly)",
		Topo:         topo,
		RanksPerNode: ranksPerNode,
		Alpha:        2.6e-6,
		BetaWord:     5.0e-9, // wire (~10 GB/s) + handling on Haswell: highest alpha/beta ratio of the three
		SubCost:      1.0e-7, // per-submessage scatter on Haswell
		GammaHop:     3.0e-8,
		FlopTime:     2.0e-9,
	}
	return m, m.Validate(K)
}
