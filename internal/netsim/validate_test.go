package netsim

import (
	"math"
	"strings"
	"testing"

	"stfw/internal/core"
)

// starPlan builds a single-stage direct plan in which rank 0 sends `words`
// words to every other rank — rank 0 is unambiguously the busiest process
// under any nonnegative (alpha, beta), which makes calibration exact.
func starPlan(t *testing.T, K int, words int64) *core.Plan {
	t.Helper()
	sets := core.NewSendSets(K)
	for dst := 1; dst < K; dst++ {
		sets.Add(0, dst, words)
	}
	if err := sets.Normalize(); err != nil {
		t.Fatal(err)
	}
	p, err := core.BuildDirectPlan(sets)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoopbackTopology(t *testing.T) {
	var lb Loopback
	if lb.Nodes() != 1 {
		t.Fatalf("Nodes() = %d, want 1", lb.Nodes())
	}
	if h := lb.Hops(3, 9); h != 0 {
		t.Fatalf("Hops = %d, want 0", h)
	}
	m := &Machine{Name: "lb", Topo: lb, RanksPerNode: 64, Alpha: 1e-6}
	if err := m.Validate(64); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := m.Validate(65); err == nil {
		t.Fatal("Validate(65) on a 64-rank node should fail")
	}
}

// TestCalibrateRecoversBeta prices a plan with a known machine and checks
// that calibration against those "measurements" recovers BetaWord exactly:
// the busiest rank of the star plan is the true argmax, so the residual
// estimate is not an approximation here.
func TestCalibrateRecoversBeta(t *testing.T) {
	const K = 8
	const alpha, beta = 2e-6, 10e-9
	p := starPlan(t, K, 100)
	truth := &Machine{Name: "truth", Topo: Loopback{}, RanksPerNode: K, Alpha: alpha, BetaWord: beta}
	measured, err := StageTimes(truth, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := CalibrateMachine("cal", K, alpha, p, measured)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.BetaWord-beta)/beta > 1e-9 {
		t.Fatalf("calibrated BetaWord = %g, want %g", m.BetaWord, beta)
	}
	rows, err := CompareStageTimes(m, p, measured)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.Ratio-1) > 1e-9 {
			t.Fatalf("stage %d ratio = %g, want 1 (pred %g meas %g)",
				r.Stage, r.Ratio, r.PredictedSec, r.MeasuredSec)
		}
	}
	pred, meas, ratio := TotalDivergence(rows)
	if math.Abs(ratio-1) > 1e-9 || pred <= 0 || meas <= 0 {
		t.Fatalf("TotalDivergence = (%g, %g, %g), want ratio 1", pred, meas, ratio)
	}
}

// TestCalibrateClampsNegativeBeta: when alpha alone over-explains every
// stage (the loopback delayed-ack regime), the residual slope clamps to
// zero instead of going negative.
func TestCalibrateClampsNegativeBeta(t *testing.T) {
	const K = 8
	p := starPlan(t, K, 100)
	// Busiest rank pays 7 messages; measurements far below 7*alpha force
	// negative residuals.
	measured := []float64{1e-6}
	m, err := CalibrateMachine("cal", K, 1e-3, p, measured)
	if err != nil {
		t.Fatal(err)
	}
	if m.BetaWord != 0 {
		t.Fatalf("BetaWord = %g, want 0", m.BetaWord)
	}
}

func TestCalibrateRejectsBadInput(t *testing.T) {
	p := starPlan(t, 4, 10)
	if _, err := CalibrateMachine("cal", 4, 1e-6, p, nil); err == nil {
		t.Fatal("stage-count mismatch should fail")
	}
	if _, err := CalibrateMachine("cal", 4, -1e-6, p, []float64{1e-3}); err == nil {
		t.Fatal("negative alpha should fail")
	}
	m := &Machine{Name: "lb", Topo: Loopback{}, RanksPerNode: 4, Alpha: 1e-6}
	if _, err := CompareStageTimes(m, p, nil); err == nil {
		t.Fatal("CompareStageTimes stage-count mismatch should fail")
	}
}

func TestDivergenceRatioAgainstMiscalibratedModel(t *testing.T) {
	const K = 8
	p := starPlan(t, K, 100)
	truth := &Machine{Name: "truth", Topo: Loopback{}, RanksPerNode: K, Alpha: 2e-6, BetaWord: 10e-9}
	measured, err := StageTimes(truth, p)
	if err != nil {
		t.Fatal(err)
	}
	// A model with doubled constants predicts exactly 2x: ratio 0.5.
	double := &Machine{Name: "2x", Topo: Loopback{}, RanksPerNode: K, Alpha: 4e-6, BetaWord: 20e-9}
	rows, err := CompareStageTimes(double, p, measured)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rows[0].Ratio-0.5) > 1e-9 {
		t.Fatalf("ratio = %g, want 0.5", rows[0].Ratio)
	}
	if rows[0].Frames != K-1 || rows[0].Words != int64((K-1)*100) {
		t.Fatalf("row volume = (%d frames, %d words), want (%d, %d)",
			rows[0].Frames, rows[0].Words, K-1, (K-1)*100)
	}
	var sb strings.Builder
	WriteDivergence(&sb, double, rows)
	for _, want := range []string{"pred_us", "meas_us", "ratio", "total", "0.50"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("rendered table missing %q:\n%s", want, sb.String())
		}
	}
}
