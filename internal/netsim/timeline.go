package netsim

import (
	"fmt"

	"stfw/internal/core"
)

// CommTime prices a schedule on a machine. The model is stage-synchronous
// max-of-sums, the standard way to bound a BSP-like schedule: within a
// stage every process pays for the messages it sends and the messages it
// receives (send and receive sides serialize at the NIC), the stage lasts
// as long as its busiest process, and stages execute back to back because
// stage d+1's sends depend on stage d's receives.
//
//	T = sum_d max_p [ sum_{m sent by p in d} cost(m) + sum_{m recvd by p in d} cost(m) ]
//
// For the single-stage direct baseline this degenerates to the busiest
// process's total send+receive bill, which is how a maximum message count
// near K renders an application latency-bound.
func CommTime(m *Machine, p *core.Plan) (float64, error) {
	if err := m.Validate(len(p.SentMsgs)); err != nil {
		return 0, err
	}
	K := len(p.SentMsgs)
	busy := make([]float64, K)
	var total float64
	for _, stage := range p.Stages {
		for i := range busy {
			busy[i] = 0
		}
		for _, f := range stage {
			c := m.MsgCost(f.From, f.To, f.Words, int64(f.Subs))
			busy[f.From] += c
			busy[f.To] += c
		}
		stageTime := 0.0
		for _, b := range busy {
			if b > stageTime {
				stageTime = b
			}
		}
		total += stageTime
	}
	return total, nil
}

// StageTimes returns the per-stage times of the schedule, useful for
// diagnosing which stage dominates.
func StageTimes(m *Machine, p *core.Plan) ([]float64, error) {
	if err := m.Validate(len(p.SentMsgs)); err != nil {
		return nil, err
	}
	K := len(p.SentMsgs)
	out := make([]float64, len(p.Stages))
	busy := make([]float64, K)
	for d, stage := range p.Stages {
		for i := range busy {
			busy[i] = 0
		}
		for _, f := range stage {
			c := m.MsgCost(f.From, f.To, f.Words, int64(f.Subs))
			busy[f.From] += c
			busy[f.To] += c
		}
		for _, b := range busy {
			if b > out[d] {
				out[d] = b
			}
		}
	}
	return out, nil
}

// ComputeTime prices the computation phase of a bulk-synchronous kernel:
// the busiest process's flop count times the machine's effective flop time.
func ComputeTime(m *Machine, flopsPerRank []int64) float64 {
	var max int64
	for _, f := range flopsPerRank {
		if f > max {
			max = f
		}
	}
	return float64(max) * m.FlopTime
}

// SpMVTime prices one iteration of the paper's row-parallel SpMV: the
// communication phase (the plan) followed by the local multiply (2*nnz
// flops per rank).
func SpMVTime(m *Machine, p *core.Plan, nnzPerRank []int64) (float64, error) {
	if len(nnzPerRank) != len(p.SentMsgs) {
		return 0, fmt.Errorf("netsim: nnz vector length %d != world size %d", len(nnzPerRank), len(p.SentMsgs))
	}
	comm, err := CommTime(m, p)
	if err != nil {
		return 0, err
	}
	flops := make([]int64, len(nnzPerRank))
	for i, nnz := range nnzPerRank {
		flops[i] = 2 * nnz
	}
	return comm + ComputeTime(m, flops), nil
}

// Microseconds converts seconds to microseconds for report printing.
func Microseconds(sec float64) float64 { return sec * 1e6 }
