// Package trace instruments a runtime.Comm to record every frame an
// exchange sends and receives, attributes frames to communication stages,
// and verifies a live execution against its static core.Plan — the
// schedule and the run must agree frame for frame. It doubles as a
// debugging aid (RenderTimeline prints the per-stage traffic matrix).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"stfw/internal/core"
	"stfw/internal/msg"
	"stfw/internal/runtime"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	Send Kind = iota
	Recv
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case Recv:
		return "recv"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded frame transfer.
type Event struct {
	Kind     Kind
	Exchange int // exchange namespace the wrapping communicator declared
	Rank     int // the rank that performed the operation
	Peer     int // the other endpoint
	Stage    int // communication stage (from the transport tag)
	Words    int64
	Subs     int
	Seq      int // global sequence number in recording order
}

// Recorder collects events from any number of wrapped communicators.
type Recorder struct {
	mu        sync.Mutex
	events    []Event
	maxStages int
}

// NewRecorder creates a recorder for exchanges of at most maxStages stages
// (the topology dimension; frames with foreign tags are ignored).
func NewRecorder(maxStages int) *Recorder {
	return &Recorder{maxStages: maxStages}
}

// Wrap returns a communicator that records c's traffic into r under
// exchange namespace 0 — the single-exchange case.
func (r *Recorder) Wrap(c runtime.Comm) runtime.Comm {
	return r.WrapExchange(c, 0)
}

// WrapExchange returns a communicator that records c's traffic into r,
// stamping every event with the given exchange id. Stage tags are only
// unique within one exchange (every exchange counts stages from the same
// tag base), so when one recorder observes several exchanges — concurrent,
// or sequential without a Reset — the id is the only thing that keeps their
// stage-0 frames apart. Use a distinct id per logical exchange and filter
// with ByExchange before verifying.
func (r *Recorder) WrapExchange(c runtime.Comm, exchange int) runtime.Comm {
	return &tracedComm{Comm: c, rec: r, exchange: exchange}
}

// Events returns a copy of the recorded events in recording order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// ByExchange filters events down to one exchange namespace, preserving
// order.
func ByExchange(events []Event, exchange int) []Event {
	var out []Event
	for _, e := range events {
		if e.Exchange == exchange {
			out = append(out, e)
		}
	}
	return out
}

// Reset clears the recording.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	e.Seq = len(r.events)
	r.events = append(r.events, e)
	r.mu.Unlock()
}

type tracedComm struct {
	runtime.Comm
	rec      *Recorder
	exchange int
}

func (t *tracedComm) Send(to, tag int, payload []byte) error {
	if stage, ok := core.TagStage(tag, t.rec.maxStages); ok {
		if m, err := msg.Decode(payload); err == nil && len(m.Subs) > 0 {
			t.rec.record(Event{
				Kind: Send, Exchange: t.exchange, Rank: t.Rank(), Peer: to, Stage: stage,
				Words: int64(m.PayloadBytes() / 8), Subs: len(m.Subs),
			})
		}
	}
	return t.Comm.Send(to, tag, payload)
}

func (t *tracedComm) Recv(from, tag int) ([]byte, error) {
	payload, err := t.Comm.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	t.recordRecv(from, tag, payload)
	return payload, nil
}

// RecvAnyOf implements runtime.AnyReceiver by delegating to the wrapped
// communicator, recording the matched frame under the sender the matcher
// reported. When the wrapped communicator does not support arrival-order
// receives the call reports runtime.ErrNoRecvAny, so runtime.RecvAnyOf
// falls back to the traced fixed-order Recv.
func (t *tracedComm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	ar, ok := t.Comm.(runtime.AnyReceiver)
	if !ok {
		return -1, nil, runtime.ErrNoRecvAny
	}
	sender, payload, err := ar.RecvAnyOf(tag, from)
	if err != nil {
		return sender, payload, err
	}
	t.recordRecv(sender, tag, payload)
	return sender, payload, nil
}

// SendRetains forwards the wrapped communicator's buffer-ownership answer
// (defaulting to retain, the safe direction, like runtime.SendRetains).
func (t *tracedComm) SendRetains() bool { return runtime.SendRetains(t.Comm) }

func (t *tracedComm) recordRecv(from, tag int, payload []byte) {
	if stage, ok := core.TagStage(tag, t.rec.maxStages); ok {
		if m, derr := msg.Decode(payload); derr == nil && len(m.Subs) > 0 {
			t.rec.record(Event{
				Kind: Recv, Exchange: t.exchange, Rank: t.Rank(), Peer: from, Stage: stage,
				Words: int64(m.PayloadBytes() / 8), Subs: len(m.Subs),
			})
		}
	}
}

// frameKey identifies a directed frame within a stage.
type frameKey struct {
	stage, from, to int
}

// VerifyAgainstPlan checks that the recorded nonempty sends are exactly the
// frames of the plan: same (stage, from, to) set, same words and submessage
// counts. It returns nil when the execution matched the schedule.
func VerifyAgainstPlan(events []Event, p *core.Plan) error {
	want := map[frameKey]core.Frame{}
	for d, stage := range p.Stages {
		for _, f := range stage {
			want[frameKey{d, f.From, f.To}] = f
		}
	}
	seen := map[frameKey]bool{}
	for _, e := range events {
		if e.Kind != Send {
			continue
		}
		k := frameKey{e.Stage, e.Rank, e.Peer}
		f, ok := want[k]
		if !ok {
			return fmt.Errorf("trace: executed frame %d->%d in stage %d not in plan", e.Rank, e.Peer, e.Stage)
		}
		if seen[k] {
			return fmt.Errorf("trace: frame %d->%d stage %d executed twice", e.Rank, e.Peer, e.Stage)
		}
		seen[k] = true
		if e.Words != f.Words {
			return fmt.Errorf("trace: frame %d->%d stage %d carried %d words, plan says %d",
				e.Rank, e.Peer, e.Stage, e.Words, f.Words)
		}
		if e.Subs != f.Subs {
			return fmt.Errorf("trace: frame %d->%d stage %d carried %d submessages, plan says %d",
				e.Rank, e.Peer, e.Stage, e.Subs, f.Subs)
		}
	}
	if len(seen) != len(want) {
		return fmt.Errorf("trace: executed %d frames, plan has %d", len(seen), len(want))
	}
	return nil
}

// StageLoads aggregates the recorded sends per stage: frames and words.
type StageLoad struct {
	Stage  int
	Frames int
	Words  int64
}

// Loads summarizes sends per stage, sorted by stage.
func Loads(events []Event) []StageLoad {
	agg := map[int]*StageLoad{}
	for _, e := range events {
		if e.Kind != Send {
			continue
		}
		l := agg[e.Stage]
		if l == nil {
			l = &StageLoad{Stage: e.Stage}
			agg[e.Stage] = l
		}
		l.Frames++
		l.Words += e.Words
	}
	out := make([]StageLoad, 0, len(agg))
	for _, l := range agg {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// RenderTimeline prints the per-stage traffic summary and the busiest
// senders, a quick visual check of how the regularization spread the load.
func RenderTimeline(w io.Writer, events []Event, K int) {
	fmt.Fprintf(w, "%-6s %8s %10s %14s\n", "stage", "frames", "words", "busiest rank")
	perStageRank := map[int]map[int]int{}
	for _, e := range events {
		if e.Kind != Send {
			continue
		}
		if perStageRank[e.Stage] == nil {
			perStageRank[e.Stage] = map[int]int{}
		}
		perStageRank[e.Stage][e.Rank]++
	}
	for _, l := range Loads(events) {
		busiest, most := -1, 0
		for r, n := range perStageRank[l.Stage] {
			if n > most || (n == most && r < busiest) {
				busiest, most = r, n
			}
		}
		fmt.Fprintf(w, "%-6d %8d %10d %8d (%d msgs)\n", l.Stage, l.Frames, l.Words, busiest, most)
	}
}
