package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// runTraced executes a store-and-forward exchange for random send sets and
// returns the recording plus the matching plan.
func runTraced(t *testing.T, dims []int, seed int64) ([]Event, *core.Plan) {
	t.Helper()
	tp := vpt.MustNew(dims...)
	K := tp.Size()
	rng := rand.New(rand.NewSource(seed))
	sends := core.NewSendSets(K)
	for i := 0; i < K; i++ {
		for j := 0; j < 3; j++ {
			dst := rng.Intn(K)
			if dst != i {
				sends.Add(i, dst, int64(1+rng.Intn(4)))
			}
		}
	}
	if err := sends.Normalize(); err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(tp, sends)
	if err != nil {
		t.Fatal(err)
	}

	rec := NewRecorder(tp.N())
	w, err := chanpt.NewWorld(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	comms := w.Comms()
	wrapped := make([]runtime.Comm, K)
	for i, c := range comms {
		wrapped[i] = rec.Wrap(c)
	}
	err = runtime.Run(wrapped, func(c runtime.Comm) error {
		payloads := map[int][]byte{}
		for _, pr := range sends.Sets[c.Rank()] {
			payloads[pr.Dst] = make([]byte, pr.Words*8)
		}
		_, err := core.Exchange(c, tp, payloads)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Events(), plan
}

func TestExecutionMatchesPlanExactly(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {2, 2, 2, 2}, {8, 2}, {16}} {
		events, plan := runTraced(t, dims, 11)
		if err := VerifyAgainstPlan(events, plan); err != nil {
			t.Errorf("dims %v: %v", dims, err)
		}
	}
}

func TestSendsEqualRecvs(t *testing.T) {
	events, _ := runTraced(t, []int{4, 2, 2}, 13)
	var sends, recvs int
	var sentWords, recvWords int64
	for _, e := range events {
		switch e.Kind {
		case Send:
			sends++
			sentWords += e.Words
		case Recv:
			recvs++
			recvWords += e.Words
		}
	}
	if sends != recvs || sentWords != recvWords {
		t.Errorf("sends %d/%d words, recvs %d/%d words", sends, sentWords, recvs, recvWords)
	}
	if sends == 0 {
		t.Error("nothing recorded")
	}
}

func TestVerifyDetectsDeviations(t *testing.T) {
	events, plan := runTraced(t, []int{4, 4}, 17)
	// Find a send event to corrupt.
	var idx = -1
	for i, e := range events {
		if e.Kind == Send {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no send events")
	}
	// Wrong word count.
	mutated := append([]Event(nil), events...)
	mutated[idx].Words++
	if err := VerifyAgainstPlan(mutated, plan); err == nil {
		t.Error("word-count deviation not detected")
	}
	// Phantom frame.
	phantom := append(append([]Event(nil), events...), Event{
		Kind: Send, Rank: 0, Peer: 1, Stage: 0, Words: 1, Subs: 1,
	})
	if err := VerifyAgainstPlan(phantom, plan); err == nil {
		t.Error("phantom or duplicate frame not detected")
	}
	// Missing frame.
	missing := append(append([]Event(nil), events[:idx]...), events[idx+1:]...)
	if err := VerifyAgainstPlan(missing, plan); err == nil {
		t.Error("missing frame not detected")
	}
	// Wrong submessage count.
	badsubs := append([]Event(nil), events...)
	badsubs[idx].Subs++
	if err := VerifyAgainstPlan(badsubs, plan); err == nil {
		t.Error("submessage-count deviation not detected")
	}
}

func TestLoadsAndTimeline(t *testing.T) {
	events, plan := runTraced(t, []int{4, 2, 2}, 19)
	loads := Loads(events)
	if len(loads) == 0 || len(loads) > 3 {
		t.Fatalf("loads = %+v", loads)
	}
	var total int64
	for _, l := range loads {
		total += l.Words
	}
	if total != plan.TotalWords {
		t.Errorf("traced words %d != plan %d", total, plan.TotalWords)
	}
	var buf bytes.Buffer
	RenderTimeline(&buf, events, 16)
	out := buf.String()
	if !strings.Contains(out, "stage") || !strings.Contains(out, "busiest") {
		t.Errorf("timeline output: %q", out)
	}
}

// TestRenderTimelineDeterministic pins the timeline rendering down on a
// hand-built event stream: per-stage aggregation, the busiest-rank
// tie-break (lowest rank wins), and that receives never count as load.
func TestRenderTimelineDeterministic(t *testing.T) {
	events := []Event{
		{Kind: Send, Rank: 2, Peer: 0, Stage: 0, Words: 4, Subs: 1},
		{Kind: Send, Rank: 2, Peer: 1, Stage: 0, Words: 6, Subs: 1},
		{Kind: Send, Rank: 1, Peer: 0, Stage: 0, Words: 5, Subs: 1},
		{Kind: Recv, Rank: 0, Peer: 2, Stage: 0, Words: 4, Subs: 1}, // ignored
		{Kind: Send, Rank: 3, Peer: 0, Stage: 1, Words: 7, Subs: 2},
		{Kind: Send, Rank: 0, Peer: 3, Stage: 1, Words: 7, Subs: 2}, // tie: rank 0 wins
	}
	loads := Loads(events)
	if len(loads) != 2 {
		t.Fatalf("loads = %+v", loads)
	}
	if loads[0].Stage != 0 || loads[0].Frames != 3 || loads[0].Words != 15 {
		t.Fatalf("stage 0 load = %+v", loads[0])
	}
	if loads[1].Stage != 1 || loads[1].Frames != 2 || loads[1].Words != 14 {
		t.Fatalf("stage 1 load = %+v", loads[1])
	}

	var buf bytes.Buffer
	RenderTimeline(&buf, events, 4)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline has %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[1], "2 (2 msgs)") {
		t.Errorf("stage 0 busiest: %q", lines[1])
	}
	if !strings.Contains(lines[2], "0 (1 msgs)") {
		t.Errorf("stage 1 tie-break should pick rank 0: %q", lines[2])
	}

	// No events: header only, no panic.
	buf.Reset()
	RenderTimeline(&buf, nil, 4)
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("empty timeline rendered %d lines", got)
	}

	// Receive-only stream: same as empty — receives carry no send load.
	buf.Reset()
	RenderTimeline(&buf, []Event{{Kind: Recv, Rank: 0, Peer: 1, Stage: 0, Words: 1, Subs: 1}}, 2)
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("recv-only timeline rendered %d lines", got)
	}
}

func TestRecorderReset(t *testing.T) {
	rec := NewRecorder(2)
	rec.record(Event{Kind: Send})
	if len(rec.Events()) != 1 {
		t.Fatal("event not recorded")
	}
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
}

// traceWorld builds a random exchange setup and returns what the recorder
// needs to run it: the topology, plan, send sets, and wrapped comms.
func traceWorld(t *testing.T, rec *Recorder, exchange int, dims []int, seed int64) (*vpt.Topology, *core.Plan, *core.SendSets, []runtime.Comm) {
	t.Helper()
	tp := vpt.MustNew(dims...)
	K := tp.Size()
	rng := rand.New(rand.NewSource(seed))
	sends := core.NewSendSets(K)
	for i := 0; i < K; i++ {
		for j := 0; j < 3; j++ {
			dst := rng.Intn(K)
			if dst != i {
				sends.Add(i, dst, int64(1+rng.Intn(4)))
			}
		}
	}
	if err := sends.Normalize(); err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(tp, sends)
	if err != nil {
		t.Fatal(err)
	}
	w, err := chanpt.NewWorld(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]runtime.Comm, K)
	for i, c := range w.Comms() {
		wrapped[i] = rec.WrapExchange(c, exchange)
	}
	return tp, plan, sends, wrapped
}

// TestConcurrentExchangesSeparate is the regression test for the recorder
// misattributing frames when several exchanges share one recorder: their
// stage tags collide (every exchange counts stages from the same tag base),
// so before events carried an exchange id the combined recording was
// unverifiable — stage-d frames of one run were indistinguishable from
// stage-d frames of the other. With WrapExchange each run verifies cleanly
// out of the shared recorder.
func TestConcurrentExchangesSeparate(t *testing.T) {
	rec := NewRecorder(4)
	type world struct {
		tp    *vpt.Topology
		plan  *core.Plan
		sends *core.SendSets
		comms []runtime.Comm
	}
	var worlds []world
	for i, seed := range []int64{23, 29} {
		tp, plan, sends, comms := traceWorld(t, rec, i+1, []int{4, 4}, seed)
		worlds = append(worlds, world{tp, plan, sends, comms})
	}

	errc := make(chan error, len(worlds))
	for _, w := range worlds {
		go func(w world) {
			errc <- runtime.Run(w.comms, func(c runtime.Comm) error {
				payloads := map[int][]byte{}
				for _, pr := range w.sends.Sets[c.Rank()] {
					payloads[pr.Dst] = make([]byte, pr.Words*8)
				}
				_, err := core.Exchange(c, w.tp, payloads)
				return err
			})
		}(w)
	}
	for range worlds {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	events := rec.Events()
	for i, w := range worlds {
		sub := ByExchange(events, i+1)
		if len(sub) == 0 {
			t.Fatalf("exchange %d recorded nothing", i+1)
		}
		if err := VerifyAgainstPlan(sub, w.plan); err != nil {
			t.Errorf("exchange %d does not verify in isolation: %v", i+1, err)
		}
		for _, e := range sub {
			if e.Exchange != i+1 {
				t.Fatalf("ByExchange(%d) leaked event %+v", i+1, e)
			}
		}
	}
	// The combined stream must NOT verify against either plan — that it
	// previously could only by luck is exactly the misattribution bug.
	if err := VerifyAgainstPlan(events, worlds[0].plan); err == nil {
		t.Error("combined recording verified against one plan; exchanges not separated")
	}
	if len(ByExchange(events, 99)) != 0 {
		t.Error("unknown exchange id matched events")
	}
}

// TestWrapDefaultsToExchangeZero keeps the one-exchange API stable: Wrap
// records under id 0.
func TestWrapDefaultsToExchangeZero(t *testing.T) {
	events, plan := runTraced(t, []int{4, 4}, 31)
	for _, e := range events {
		if e.Exchange != 0 {
			t.Fatalf("Wrap recorded exchange %d", e.Exchange)
		}
	}
	if err := VerifyAgainstPlan(ByExchange(events, 0), plan); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Send.String() != "send" || Recv.String() != "recv" {
		t.Error("kind names")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind name")
	}
}

func TestTagStageMapping(t *testing.T) {
	if d, ok := core.TagStage(core.StageTag(3), 5); !ok || d != 3 {
		t.Errorf("TagStage(StageTag(3)) = %d, %v", d, ok)
	}
	if _, ok := core.TagStage(core.StageTag(5), 5); ok {
		t.Error("stage beyond max accepted")
	}
	if _, ok := core.TagStage(12345, 5); ok {
		t.Error("foreign tag accepted")
	}
}
