package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// runTraced executes a store-and-forward exchange for random send sets and
// returns the recording plus the matching plan.
func runTraced(t *testing.T, dims []int, seed int64) ([]Event, *core.Plan) {
	t.Helper()
	tp := vpt.MustNew(dims...)
	K := tp.Size()
	rng := rand.New(rand.NewSource(seed))
	sends := core.NewSendSets(K)
	for i := 0; i < K; i++ {
		for j := 0; j < 3; j++ {
			dst := rng.Intn(K)
			if dst != i {
				sends.Add(i, dst, int64(1+rng.Intn(4)))
			}
		}
	}
	if err := sends.Normalize(); err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(tp, sends)
	if err != nil {
		t.Fatal(err)
	}

	rec := NewRecorder(tp.N())
	w, err := chanpt.NewWorld(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	comms := w.Comms()
	wrapped := make([]runtime.Comm, K)
	for i, c := range comms {
		wrapped[i] = rec.Wrap(c)
	}
	err = runtime.Run(wrapped, func(c runtime.Comm) error {
		payloads := map[int][]byte{}
		for _, pr := range sends.Sets[c.Rank()] {
			payloads[pr.Dst] = make([]byte, pr.Words*8)
		}
		_, err := core.Exchange(c, tp, payloads)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Events(), plan
}

func TestExecutionMatchesPlanExactly(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {2, 2, 2, 2}, {8, 2}, {16}} {
		events, plan := runTraced(t, dims, 11)
		if err := VerifyAgainstPlan(events, plan); err != nil {
			t.Errorf("dims %v: %v", dims, err)
		}
	}
}

func TestSendsEqualRecvs(t *testing.T) {
	events, _ := runTraced(t, []int{4, 2, 2}, 13)
	var sends, recvs int
	var sentWords, recvWords int64
	for _, e := range events {
		switch e.Kind {
		case Send:
			sends++
			sentWords += e.Words
		case Recv:
			recvs++
			recvWords += e.Words
		}
	}
	if sends != recvs || sentWords != recvWords {
		t.Errorf("sends %d/%d words, recvs %d/%d words", sends, sentWords, recvs, recvWords)
	}
	if sends == 0 {
		t.Error("nothing recorded")
	}
}

func TestVerifyDetectsDeviations(t *testing.T) {
	events, plan := runTraced(t, []int{4, 4}, 17)
	// Find a send event to corrupt.
	var idx = -1
	for i, e := range events {
		if e.Kind == Send {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no send events")
	}
	// Wrong word count.
	mutated := append([]Event(nil), events...)
	mutated[idx].Words++
	if err := VerifyAgainstPlan(mutated, plan); err == nil {
		t.Error("word-count deviation not detected")
	}
	// Phantom frame.
	phantom := append(append([]Event(nil), events...), Event{
		Kind: Send, Rank: 0, Peer: 1, Stage: 0, Words: 1, Subs: 1,
	})
	if err := VerifyAgainstPlan(phantom, plan); err == nil {
		t.Error("phantom or duplicate frame not detected")
	}
	// Missing frame.
	missing := append(append([]Event(nil), events[:idx]...), events[idx+1:]...)
	if err := VerifyAgainstPlan(missing, plan); err == nil {
		t.Error("missing frame not detected")
	}
	// Wrong submessage count.
	badsubs := append([]Event(nil), events...)
	badsubs[idx].Subs++
	if err := VerifyAgainstPlan(badsubs, plan); err == nil {
		t.Error("submessage-count deviation not detected")
	}
}

func TestLoadsAndTimeline(t *testing.T) {
	events, plan := runTraced(t, []int{4, 2, 2}, 19)
	loads := Loads(events)
	if len(loads) == 0 || len(loads) > 3 {
		t.Fatalf("loads = %+v", loads)
	}
	var total int64
	for _, l := range loads {
		total += l.Words
	}
	if total != plan.TotalWords {
		t.Errorf("traced words %d != plan %d", total, plan.TotalWords)
	}
	var buf bytes.Buffer
	RenderTimeline(&buf, events, 16)
	out := buf.String()
	if !strings.Contains(out, "stage") || !strings.Contains(out, "busiest") {
		t.Errorf("timeline output: %q", out)
	}
}

func TestRecorderReset(t *testing.T) {
	rec := NewRecorder(2)
	rec.record(Event{Kind: Send})
	if len(rec.Events()) != 1 {
		t.Fatal("event not recorded")
	}
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestKindString(t *testing.T) {
	if Send.String() != "send" || Recv.String() != "recv" {
		t.Error("kind names")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind name")
	}
}

func TestTagStageMapping(t *testing.T) {
	if d, ok := core.TagStage(core.StageTag(3), 5); !ok || d != 3 {
		t.Errorf("TagStage(StageTag(3)) = %d, %v", d, ok)
	}
	if _, ok := core.TagStage(core.StageTag(5), 5); ok {
		t.Error("stage beyond max accepted")
	}
	if _, ok := core.TagStage(12345, 5); ok {
		t.Error("foreign tag accepted")
	}
}
