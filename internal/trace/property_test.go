// Property test for the pipelined exchange engine: a live run under the
// recorder must agree frame-for-frame with the static core.Plan — same
// (stage, from, to) frame set, same words and submessage counts, every
// nonempty send mirrored by exactly one receive — and the payload bytes
// resident at every stage boundary must stay within the plan's
// MaxBufferWords bound.
package trace_test

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/trace"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

func propPayload(src, dst int, words int64) []byte {
	b := make([]byte, 0, words*8)
	for w := int64(0); w < words; w++ {
		b = binary.LittleEndian.AppendUint32(b, uint32(src*65536+dst))
		b = binary.LittleEndian.AppendUint32(b, uint32(w))
	}
	return b
}

func propSendSets(rng *rand.Rand, K int) *core.SendSets {
	s := core.NewSendSets(K)
	// One hot-spot rank with a near-complete send list, plus light traffic.
	hub := rng.Intn(K)
	for dst := 0; dst < K; dst++ {
		if dst != hub && rng.Intn(3) != 0 {
			s.Add(hub, dst, 1+rng.Int63n(4))
		}
	}
	for src := 0; src < K; src++ {
		for l := 0; l < 2; l++ {
			if dst := rng.Intn(K); dst != src {
				s.Add(src, dst, 1+rng.Int63n(4))
			}
		}
	}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

func propTopologies(t *testing.T) []*vpt.Topology {
	t.Helper()
	mk := func(tp *vpt.Topology, err error) *vpt.Topology {
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	return []*vpt.Topology{
		mk(vpt.New(4, 4)),
		mk(vpt.New(2, 2, 2, 2)),
		mk(vpt.NewBalanced(32, 5)),
		mk(vpt.NewFactored(12, 2)),
	}
}

func TestPipelinedExchangeMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, tp := range propTopologies(t) {
		K := tp.Size()
		s := propSendSets(rng, K)
		plan, err := core.BuildPlan(tp, s)
		if err != nil {
			t.Fatal(err)
		}

		w, err := chanpt.NewWorld(K, 2)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder(tp.N())

		var probeMu sync.Mutex
		probeErrs := []error{}
		comms := w.Comms()
		wrapped := make([]runtime.Comm, K)
		for i, c := range comms {
			wrapped[i] = rec.Wrap(c)
		}
		err = runtime.Run(wrapped, func(c runtime.Comm) error {
			rank := c.Rank()
			payloads := map[int][]byte{}
			for _, pr := range s.Sets[rank] {
				payloads[pr.Dst] = propPayload(rank, pr.Dst, pr.Words)
			}
			bound := plan.MaxBufferWords[rank] * 8
			probe := func(stage, residentBytes int) {
				if int64(residentBytes) > bound {
					probeMu.Lock()
					probeErrs = append(probeErrs, fmt.Errorf(
						"rank %d stage %d: %d resident payload bytes exceed plan bound %d",
						rank, stage, residentBytes, bound))
					probeMu.Unlock()
				}
			}
			_, err := core.Exchange(c, tp, payloads,
				core.WithPlan(plan), core.WithStageProbe(probe))
			return err
		})
		if err != nil {
			t.Fatalf("dims %v: %v", tp.Dims(), err)
		}
		for _, perr := range probeErrs {
			t.Errorf("dims %v: %v", tp.Dims(), perr)
		}

		events := rec.Events()
		if err := trace.VerifyAgainstPlan(events, plan); err != nil {
			t.Fatalf("dims %v: %v", tp.Dims(), err)
		}

		// Every nonempty send must be mirrored by exactly one receive with
		// identical stage, endpoints, words and submessage count — the
		// arrival-order engine may reorder deliveries but must not lose,
		// duplicate or alter frames.
		type key struct {
			stage, from, to, subs int
			words                 int64
		}
		sends := map[key]int{}
		recvs := map[key]int{}
		for _, e := range events {
			switch e.Kind {
			case trace.Send:
				sends[key{e.Stage, e.Rank, e.Peer, e.Subs, e.Words}]++
			case trace.Recv:
				recvs[key{e.Stage, e.Peer, e.Rank, e.Subs, e.Words}]++
			}
		}
		for k, n := range sends {
			if recvs[k] != n {
				t.Fatalf("dims %v: frame %d->%d stage %d sent %d times, received %d",
					tp.Dims(), k.from, k.to, k.stage, n, recvs[k])
			}
		}
		for k, n := range recvs {
			if sends[k] != n {
				t.Fatalf("dims %v: frame %d->%d stage %d received %d times, sent %d",
					tp.Dims(), k.from, k.to, k.stage, n, sends[k])
			}
		}
	}
}

// TestOrderedAndPipelinedSameTrace locks the two engines together at the
// frame level: same plan-conformant frame multiset from either engine.
func TestOrderedAndPipelinedSameTrace(t *testing.T) {
	tp, err := vpt.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	s := propSendSets(rng, tp.Size())
	plan, err := core.BuildPlan(tp, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]core.ExchangeOpt{nil, {core.Ordered()}} {
		w, err := chanpt.NewWorld(tp.Size(), 2)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder(tp.N())
		comms := w.Comms()
		wrapped := make([]runtime.Comm, len(comms))
		for i, c := range comms {
			wrapped[i] = rec.Wrap(c)
		}
		err = runtime.Run(wrapped, func(c runtime.Comm) error {
			payloads := map[int][]byte{}
			for _, pr := range s.Sets[c.Rank()] {
				payloads[pr.Dst] = propPayload(c.Rank(), pr.Dst, pr.Words)
			}
			_, err := core.Exchange(c, tp, payloads, opts...)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.VerifyAgainstPlan(rec.Events(), plan); err != nil {
			t.Fatalf("opts %v: %v", opts, err)
		}
	}
}
