package mapping

import (
	"math/rand"

	"stfw/internal/core"
	"stfw/internal/netsim"
)

// This file implements the second future-work direction of Section 8:
// mapping processes onto the *physical* topology so that pairs exchanging
// large volumes sit few network hops apart. Unlike the VPT mapping in
// mapping.go, the virtual topology and the schedule stay fixed; only the
// rank-to-node packing (netsim.Machine.WithPlacement) changes, reducing the
// per-hop term of the cost model.

// HopWeightedVolume returns sum over (i, j) of words(i->j) * hops between
// the nodes hosting perm[i] and perm[j] — the objective the physical
// placement minimizes.
func HopWeightedVolume(m *netsim.Machine, s *core.SendSets, perm []int) (int64, error) {
	if err := Validate(perm, s.K); err != nil {
		return 0, err
	}
	placed, err := m.WithPlacement(perm)
	if err != nil {
		return 0, err
	}
	var v int64
	for src, set := range s.Sets {
		for _, pr := range set {
			v += pr.Words * int64(placed.Topo.Hops(placed.Node(src), placed.Node(pr.Dst)))
		}
	}
	return v, nil
}

// PhysicalGreedy hill-climbs pairwise slot swaps to reduce the hop-weighted
// volume, starting from linear packing. It returns the placement (pass it
// to netsim.Machine.WithPlacement) and its objective value; the result is
// never worse than the identity packing.
func PhysicalGreedy(m *netsim.Machine, s *core.SendSets, opt Options) ([]int, int64, error) {
	K := s.K
	if err := m.Validate(K); err != nil {
		return nil, 0, err
	}
	if opt.Sweeps <= 0 {
		opt.Sweeps = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	type edge struct {
		peer int32
		w    int64
	}
	adj := make([][]edge, K)
	for src, set := range s.Sets {
		for _, pr := range set {
			if pr.Dst == src {
				continue
			}
			adj[src] = append(adj[src], edge{peer: int32(pr.Dst), w: pr.Words})
			adj[pr.Dst] = append(adj[pr.Dst], edge{peer: int32(src), w: pr.Words})
		}
	}

	perm := Identity(K) // perm[rank] = physical slot
	inv := Identity(K)  // inv[slot] = rank
	node := func(r int) int { return perm[r] / m.RanksPerNode }
	cost := func(r int) int64 {
		var c int64
		nr := node(r)
		for _, e := range adj[r] {
			c += e.w * int64(m.Topo.Hops(nr, node(int(e.peer))))
		}
		return c
	}
	tryswap := func(a, b int) bool {
		if a == b || node(a) == node(b) {
			return false // same node: hop costs unchanged
		}
		before := cost(a) + cost(b)
		perm[a], perm[b] = perm[b], perm[a]
		if cost(a)+cost(b) < before {
			inv[perm[a]], inv[perm[b]] = a, b
			return true
		}
		perm[a], perm[b] = perm[b], perm[a]
		return false
	}

	for sweep := 0; sweep < opt.Sweeps; sweep++ {
		for i := 0; i < 2*K; i++ {
			tryswap(rng.Intn(K), rng.Intn(K))
		}
		// Targeted: pull each rank toward its heaviest peer's node by
		// swapping with a rank co-located with that peer.
		for r := 0; r < K; r++ {
			var best edge
			for _, e := range adj[r] {
				if e.w > best.w {
					best = e
				}
			}
			if best.w == 0 {
				continue
			}
			peerSlot := perm[best.peer]
			base := (peerSlot / m.RanksPerNode) * m.RanksPerNode
			for off := 0; off < m.RanksPerNode; off++ {
				slot := base + off
				if slot >= K {
					break
				}
				if tryswap(r, inv[slot]) {
					break
				}
			}
		}
	}
	vol, err := HopWeightedVolume(m, s, perm)
	if err != nil {
		return nil, 0, err
	}
	return perm, vol, nil
}
