// Package mapping implements the first future-work direction of the paper
// (Section 8): mapping processes onto the virtual process topology so that
// pairs exchanging large volumes sit at small Hamming distance. Since a
// submessage from i to j is forwarded exactly Hamming(pos(i), pos(j)) times,
// the total store-and-forward volume is the Hamming-weighted sum of the
// send sets, and a good placement reduces it without touching the
// algorithm.
package mapping

import (
	"fmt"
	"math/rand"

	"stfw/internal/core"
	"stfw/internal/vpt"
)

// Identity returns the identity placement: rank i occupies VPT position i.
func Identity(K int) []int {
	p := make([]int, K)
	for i := range p {
		p[i] = i
	}
	return p
}

// Validate checks that perm is a permutation of [0, K).
func Validate(perm []int, K int) error {
	if len(perm) != K {
		return fmt.Errorf("mapping: permutation length %d != K %d", len(perm), K)
	}
	seen := make([]bool, K)
	for i, p := range perm {
		if p < 0 || p >= K || seen[p] {
			return fmt.Errorf("mapping: not a permutation at index %d (value %d)", i, p)
		}
		seen[p] = true
	}
	return nil
}

// WeightedVolume returns the total store-and-forward volume (in words) the
// placement induces: sum over (i, j) of words(i->j) * Hamming(perm[i],
// perm[j]). It equals the TotalWords of the plan built from the remapped
// send sets.
func WeightedVolume(t *vpt.Topology, s *core.SendSets, perm []int) (int64, error) {
	if err := Validate(perm, s.K); err != nil {
		return 0, err
	}
	if err := s.ValidateTopology(t); err != nil {
		return 0, err
	}
	var v int64
	for src, set := range s.Sets {
		for _, pr := range set {
			v += pr.Words * int64(t.Hamming(perm[src], perm[pr.Dst]))
		}
	}
	return v, nil
}

// Apply relabels the send sets under the placement: the process that was
// rank i now occupies VPT position perm[i], so messages i->j become
// perm[i]->perm[j].
func Apply(s *core.SendSets, perm []int) (*core.SendSets, error) {
	if err := Validate(perm, s.K); err != nil {
		return nil, err
	}
	out := core.NewSendSets(s.K)
	for src, set := range s.Sets {
		for _, pr := range set {
			out.Add(perm[src], perm[pr.Dst], pr.Words)
		}
	}
	if err := out.Normalize(); err != nil {
		return nil, err
	}
	return out, nil
}

// Options tunes the local search.
type Options struct {
	// Sweeps is the number of improvement passes over the candidate swap
	// stream; each sweep tries K random swaps plus targeted swaps around
	// the heaviest pairs.
	Sweeps int
	// Seed makes the search deterministic.
	Seed int64
}

// DefaultOptions returns a search budget that pays for itself on irregular
// instances.
func DefaultOptions() Options { return Options{Sweeps: 8, Seed: 1} }

// Greedy searches for a placement with low weighted volume by hill-climbing
// pairwise swaps, starting from the identity. It returns the placement and
// its weighted volume. The search only accepts strict improvements, so the
// result is never worse than identity.
func Greedy(t *vpt.Topology, s *core.SendSets, opt Options) ([]int, int64, error) {
	if err := s.ValidateTopology(t); err != nil {
		return nil, 0, err
	}
	K := s.K
	if opt.Sweeps <= 0 {
		opt.Sweeps = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Symmetric weighted adjacency for incremental objective deltas.
	type edge struct {
		peer int32
		w    int64
	}
	adj := make([][]edge, K)
	addW := func(a, b int, w int64) {
		adj[a] = append(adj[a], edge{peer: int32(b), w: w})
	}
	for src, set := range s.Sets {
		for _, pr := range set {
			if pr.Dst == src {
				continue
			}
			addW(src, pr.Dst, pr.Words)
			addW(pr.Dst, src, pr.Words)
		}
	}

	perm := Identity(K)
	pos := make([]int, K) // pos[rank] = VPT position
	inv := make([]int, K) // inv[position] = rank occupying it
	copy(pos, perm)
	copy(inv, perm)

	// cost of rank r under current placement.
	cost := func(r int) int64 {
		var c int64
		for _, e := range adj[r] {
			c += e.w * int64(t.Hamming(pos[r], pos[e.peer]))
		}
		return c
	}
	// delta of swapping the positions of ranks a and b.
	tryswap := func(a, b int) bool {
		if a == b {
			return false
		}
		before := cost(a) + cost(b)
		pos[a], pos[b] = pos[b], pos[a]
		after := cost(a) + cost(b)
		// Edges between a and b are counted twice on both sides with the
		// same value (Hamming is symmetric), so the comparison is exact.
		if after < before {
			inv[pos[a]], inv[pos[b]] = a, b
			return true
		}
		pos[a], pos[b] = pos[b], pos[a]
		return false
	}

	// Heaviest senders get targeted attention: try to co-locate them with
	// their heaviest peers' groups.
	heavy := make([]int, 0, K)
	for r := 0; r < K; r++ {
		if len(adj[r]) > 0 {
			heavy = append(heavy, r)
		}
	}

	for sweep := 0; sweep < opt.Sweeps; sweep++ {
		for i := 0; i < K; i++ {
			tryswap(rng.Intn(K), rng.Intn(K))
		}
		for _, r := range heavy {
			// Try swapping r next to its heaviest peer: candidate position
			// = a neighbor slot of the peer in its first dimension.
			var best edge
			for _, e := range adj[r] {
				if e.w > best.w {
					best = e
				}
			}
			if best.w == 0 {
				continue
			}
			peerPos := pos[best.peer]
			for d := 0; d < t.N(); d++ {
				cand := t.WithDigit(peerPos, d, rng.Intn(t.Dim(d)))
				tryswap(r, inv[cand])
			}
		}
	}
	for r := 0; r < K; r++ {
		perm[r] = pos[r]
	}
	vol, err := WeightedVolume(t, s, perm)
	if err != nil {
		return nil, 0, err
	}
	return perm, vol, nil
}
