package mapping

import (
	"stfw/internal/core"
	"stfw/internal/netsim"
	"stfw/internal/vpt"
)

// This file implements the dimension-assignment planner behind the
// hierarchical composite transport (internal/transport/hier). A composite
// transport serves intra-node traffic over a cheap local sub-transport and
// inter-node traffic over the wire, so the VPT factorization that minimizes
// total cost is no longer the one the balanced scheme picks in isolation:
// aligning a prefix of the dimensions with the node boundary keeps those
// stages' forwarding hops entirely on the fast path. The planner searches
// factorizations of K and rank placements jointly, prices each candidate
// with the exact schedule (core.BuildPlan) under the machine's cost model
// (netsim.CommTime), and reports how the chosen dimension list splits into
// an intra-node prefix and an inter-node suffix.

// DimPlan is a planned hierarchical deployment.
type DimPlan struct {
	// Dims is the chosen VPT factorization k_1..k_n (product = K).
	Dims []int
	// Split partitions the dimensions for a composite transport: under
	// Placement, the stages of dimensions [0, Split) move no words across a
	// node boundary, so a hierarchical transport serves them entirely over
	// its intra-node sub-transport; dimensions [Split, n) carry the
	// inter-node traffic. Split is traffic-relative — it describes the
	// planned send sets, not every conceivable exchange on the topology.
	Split int
	// Placement is the rank-to-slot permutation to install with
	// netsim.Machine.WithPlacement (and to derive a composite transport's
	// NodeOf from).
	Placement []int
	// CrossWords is the number of payload words that cross a node boundary
	// per exchange under the assignment — the slow-link traffic the split
	// concentrates into the suffix dimensions.
	CrossWords int64
	// Cost is the modeled exchange time: netsim.CommTime of the exact plan
	// on the placed machine.
	Cost float64
}

// Topology reconstructs the planned VPT.
func (p *DimPlan) Topology() (*vpt.Topology, error) { return vpt.New(p.Dims...) }

// DimCost prices one candidate assignment: the send sets routed through t,
// ranks placed by perm (nil = linear packing), on machine m. It returns the
// words crossing node boundaries and the modeled exchange time — the two
// columns of the planner's objective, exposed so callers can line a chosen
// plan up against a baseline.
func DimCost(m *netsim.Machine, s *core.SendSets, t *vpt.Topology, perm []int) (crossWords int64, cost float64, err error) {
	_, crossWords, cost, err = evalDims(m, s, t, perm)
	return crossWords, cost, err
}

// evalDims builds the exact schedule and prices it, also returning the
// per-dimension node-crossing word counts that determine the split.
func evalDims(m *netsim.Machine, s *core.SendSets, t *vpt.Topology, perm []int) (perDim []int64, crossWords int64, cost float64, err error) {
	p, err := core.BuildPlan(t, s)
	if err != nil {
		return nil, 0, 0, err
	}
	placed, err := m.WithPlacement(perm)
	if err != nil {
		return nil, 0, 0, err
	}
	cost, err = netsim.CommTime(placed, p)
	if err != nil {
		return nil, 0, 0, err
	}
	perDim = make([]int64, t.N())
	for d, stage := range p.Stages {
		for _, f := range stage {
			if placed.Node(f.From) != placed.Node(f.To) {
				perDim[d] += f.Words
			}
		}
	}
	for _, w := range perDim {
		crossWords += w
	}
	return perDim, crossWords, cost, nil
}

// AssessDims evaluates one fixed assignment — topology t under placement
// perm (nil = linear packing) — and reports it in the same form PlanDims
// returns, including the dimension split. It is the baseline column of a
// planner comparison table.
func AssessDims(m *netsim.Machine, s *core.SendSets, t *vpt.Topology, perm []int) (*DimPlan, error) {
	perDim, cross, cost, err := evalDims(m, s, t, perm)
	if err != nil {
		return nil, err
	}
	if perm == nil {
		perm = Identity(s.K)
	}
	p := &DimPlan{
		Dims:       t.Dims(),
		Placement:  append([]int(nil), perm...),
		CrossWords: cross,
		Cost:       cost,
	}
	p.Split = splitOf(perDim)
	return p, nil
}

// splitOf returns the length of the leading run of dimensions that move no
// words across node boundaries.
func splitOf(perDim []int64) int {
	split := 0
	for _, w := range perDim {
		if w != 0 {
			break
		}
		split++
	}
	return split
}

// candidateTopos enumerates the factorizations the planner considers, in a
// fixed order with base first: node-aligned shapes whose first dimension
// spans exactly one node's ranks (with the inter-node remainder either flat
// or balanced-factored), then the balanced schemes over all of K. Duplicates
// of earlier candidates are dropped.
func candidateTopos(K, ranksPerNode int, base *vpt.Topology) []*vpt.Topology {
	seen := map[string]bool{base.String(): true}
	out := []*vpt.Topology{base}
	add := func(dims ...int) {
		t, err := vpt.New(dims...)
		if err != nil || t.Size() != K || seen[t.String()] {
			return
		}
		seen[t.String()] = true
		out = append(out, t)
	}
	if g := ranksPerNode; g >= 2 && K%g == 0 {
		if rest := K / g; rest >= 2 {
			add(g, rest)
			add(rest, g)
			if rest&(rest-1) == 0 {
				for n := 2; n <= vpt.MaxDim(rest); n++ {
					if bt, err := vpt.NewBalanced(rest, n); err == nil {
						add(append([]int{g}, bt.Dims()...)...)
					}
				}
			}
		}
	}
	if K >= 2 && K&(K-1) == 0 {
		for n := 1; n <= vpt.MaxDim(K); n++ {
			if bt, err := vpt.NewBalanced(K, n); err == nil {
				add(bt.Dims()...)
			}
		}
	}
	return out
}

// PlanDims searches factorizations of s.K and rank placements for the
// assignment with the lowest modeled exchange time on m, and derives the
// intra-node/inter-node dimension split of the winner. The base topology
// with the identity placement is always the first candidate evaluated and
// improvements must be strict, so the result is never worse than the base
// assignment; with fixed Options the search is deterministic.
func PlanDims(m *netsim.Machine, s *core.SendSets, base *vpt.Topology, opt Options) (*DimPlan, error) {
	if err := m.Validate(s.K); err != nil {
		return nil, err
	}
	if err := s.ValidateTopology(base); err != nil {
		return nil, err
	}
	greedy, _, err := PhysicalGreedy(m, s, opt)
	if err != nil {
		return nil, err
	}
	placements := [][]int{Identity(s.K), greedy}

	var best *DimPlan
	var bestPerDim []int64
	for _, t := range candidateTopos(s.K, m.RanksPerNode, base) {
		for _, perm := range placements {
			perDim, cross, cost, err := evalDims(m, s, t, perm)
			if err != nil {
				return nil, err
			}
			if best == nil || cost < best.Cost {
				best = &DimPlan{
					Dims:       t.Dims(),
					Placement:  append([]int(nil), perm...),
					CrossWords: cross,
					Cost:       cost,
				}
				bestPerDim = perDim
			}
		}
	}
	best.Split = splitOf(bestPerDim)
	return best, nil
}
