package mapping

import (
	"testing"

	"stfw/internal/core"
	"stfw/internal/netsim"
)

// crossNodeSendSets pairs each rank with a rank on a distant node under
// linear packing, so a placement that co-locates pairs has big wins.
func crossNodeSendSets(K, ranksPerNode int) *core.SendSets {
	s := core.NewSendSets(K)
	half := K / 2
	for i := 0; i < half; i++ {
		s.Add(i, half+i, 2000)
		s.Add(half+i, i, 2000)
	}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

func TestHopWeightedVolumeIdentity(t *testing.T) {
	K := 64
	m, err := netsim.BlueGeneQ(K)
	if err != nil {
		t.Fatal(err)
	}
	s := crossNodeSendSets(K, m.RanksPerNode)
	v, err := HopWeightedVolume(m, s, Identity(K))
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("cross-node pattern has zero hop volume %d", v)
	}
}

func TestPhysicalGreedyImproves(t *testing.T) {
	K := 64
	m, err := netsim.CrayXK7(K)
	if err != nil {
		t.Fatal(err)
	}
	s := crossNodeSendSets(K, m.RanksPerNode)
	idVol, err := HopWeightedVolume(m, s, Identity(K))
	if err != nil {
		t.Fatal(err)
	}
	perm, vol, err := PhysicalGreedy(m, s, Options{Sweeps: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(perm, K); err != nil {
		t.Fatal(err)
	}
	if vol > idVol {
		t.Errorf("placement made things worse: %d vs %d", vol, idVol)
	}
	if vol >= idVol {
		t.Errorf("placement failed to improve cross-node pattern: %d vs %d", vol, idVol)
	}
	// The reported objective must match an independent evaluation.
	check, err := HopWeightedVolume(m, s, perm)
	if err != nil {
		t.Fatal(err)
	}
	if check != vol {
		t.Errorf("reported %d, recomputed %d", vol, check)
	}
}

func TestPlacementChangesCommTime(t *testing.T) {
	K := 64
	m, err := netsim.CrayXK7(K)
	if err != nil {
		t.Fatal(err)
	}
	s := crossNodeSendSets(K, m.RanksPerNode)
	plan, err := core.BuildDirectPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	base, err := netsim.CommTime(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	perm, _, err := PhysicalGreedy(m, s, Options{Sweeps: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	placed, err := m.WithPlacement(perm)
	if err != nil {
		t.Fatal(err)
	}
	better, err := netsim.CommTime(placed, plan)
	if err != nil {
		t.Fatal(err)
	}
	if better > base {
		t.Errorf("placement raised comm time: %g vs %g", better, base)
	}
}

func TestWithPlacementValidation(t *testing.T) {
	m, _ := netsim.BlueGeneQ(32)
	if _, err := m.WithPlacement([]int{0, 0, 1}); err == nil {
		t.Error("duplicate placement accepted")
	}
	if _, err := m.WithPlacement([]int{0, 5, 1}); err == nil {
		t.Error("out-of-range placement accepted")
	}
	cp, err := m.WithPlacement(nil)
	if err != nil || cp == nil {
		t.Errorf("nil placement: %v", err)
	}
	// Placement must not mutate the original machine.
	perm := make([]int, 32)
	for i := range perm {
		perm[i] = 31 - i
	}
	placed, err := m.WithPlacement(perm)
	if err != nil {
		t.Fatal(err)
	}
	if m.Node(0) != 0 {
		t.Error("original machine mutated")
	}
	if placed.Node(0) != 31/m.RanksPerNode {
		t.Errorf("placed Node(0) = %d", placed.Node(0))
	}
}

func TestPhysicalGreedyDeterministic(t *testing.T) {
	K := 32
	m, _ := netsim.CrayXC40(K)
	s := crossNodeSendSets(K, m.RanksPerNode)
	p1, v1, err := PhysicalGreedy(m, s, Options{Sweeps: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p2, v2, err := PhysicalGreedy(m, s, Options{Sweeps: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("nondeterministic objective")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nondeterministic placement")
		}
	}
}
