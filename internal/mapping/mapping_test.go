package mapping

import (
	"math/rand"
	"testing"

	"stfw/internal/core"
	"stfw/internal/vpt"
)

func clusteredSendSets(rng *rand.Rand, K int) *core.SendSets {
	// Ranks form pairs (2i, 2i+1) exchanging heavy traffic, plus light
	// random noise: a placement that co-locates pairs wins clearly.
	s := core.NewSendSets(K)
	for i := 0; i < K/2; i++ {
		s.Add(2*i, 2*i+1, 1000)
		s.Add(2*i+1, 2*i, 1000)
	}
	for i := 0; i < K; i++ {
		s.Add(i, rng.Intn(K), 1)
	}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

func TestIdentityAndValidate(t *testing.T) {
	id := Identity(5)
	if err := Validate(id, 5); err != nil {
		t.Fatal(err)
	}
	if err := Validate([]int{0, 1}, 3); err == nil {
		t.Error("short permutation accepted")
	}
	if err := Validate([]int{0, 0, 2}, 3); err == nil {
		t.Error("duplicate accepted")
	}
	if err := Validate([]int{0, 3, 1}, 3); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestWeightedVolumeIdentityEqualsPlanVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tp := vpt.MustNew(4, 4)
	s := clusteredSendSets(rng, 16)
	wv, err := WeightedVolume(tp, s, Identity(16))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(tp, s)
	if err != nil {
		t.Fatal(err)
	}
	if wv != plan.TotalWords {
		t.Errorf("weighted volume %d != plan volume %d", wv, plan.TotalWords)
	}
}

func TestApplyPreservesTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := clusteredSendSets(rng, 16)
	perm := Identity(16)
	// Reverse placement.
	for i := range perm {
		perm[i] = 15 - i
	}
	out, err := Apply(s, perm)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalWords() != s.TotalWords() {
		t.Errorf("volume changed: %d -> %d", s.TotalWords(), out.TotalWords())
	}
	if out.TotalMessages() != s.TotalMessages() {
		t.Errorf("messages changed: %d -> %d", s.TotalMessages(), out.TotalMessages())
	}
	// Message 0->1 (1000 words) must now be 15->14.
	found := false
	for _, pr := range out.Sets[15] {
		if pr.Dst == 14 && pr.Words >= 1000 {
			found = true
		}
	}
	if !found {
		t.Error("relabeled heavy message missing")
	}
}

func TestGreedyNeverWorseAndUsuallyBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tp := vpt.MustNew(2, 2, 2, 2)
	s := clusteredSendSets(rng, 16)
	idVol, err := WeightedVolume(tp, s, Identity(16))
	if err != nil {
		t.Fatal(err)
	}
	perm, vol, err := Greedy(tp, s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(perm, 16); err != nil {
		t.Fatal(err)
	}
	if vol > idVol {
		t.Errorf("greedy volume %d worse than identity %d", vol, idVol)
	}
	// The paired workload leaves big wins on the table for identity (pairs
	// (2i, 2i+1) are already adjacent in dimension 0 under identity, so
	// craft a shifted pairing instead).
	s2 := core.NewSendSets(16)
	for i := 0; i < 8; i++ {
		s2.Add(i, 15-i, 1000) // pairs at large Hamming distance under identity
		s2.Add(15-i, i, 1000)
	}
	if err := s2.Normalize(); err != nil {
		t.Fatal(err)
	}
	idVol2, _ := WeightedVolume(tp, s2, Identity(16))
	_, vol2, err := Greedy(tp, s2, Options{Sweeps: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if vol2 >= idVol2 {
		t.Errorf("greedy failed to improve distant pairs: %d vs %d", vol2, idVol2)
	}
}

func TestGreedyConsistentWithApply(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tp := vpt.MustNew(4, 2, 2)
	s := clusteredSendSets(rng, 16)
	perm, vol, err := Greedy(tp, s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	remapped, err := Apply(s, perm)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(tp, remapped)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalWords != vol {
		t.Errorf("plan volume %d != reported weighted volume %d", plan.TotalWords, vol)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tp := vpt.MustNew(4, 4)
	s := clusteredSendSets(rng, 16)
	p1, v1, err := Greedy(tp, s, Options{Sweeps: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p2, v2, err := Greedy(tp, s, Options{Sweeps: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("nondeterministic volume")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nondeterministic permutation")
		}
	}
}

func TestGreedyValidation(t *testing.T) {
	tp := vpt.MustNew(4, 4)
	s := core.NewSendSets(8) // K mismatch
	if _, _, err := Greedy(tp, s, DefaultOptions()); err == nil {
		t.Error("K mismatch accepted")
	}
}

func BenchmarkGreedy256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tp, _ := vpt.NewBalanced(256, 4)
	s := clusteredSendSets(rng, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Greedy(tp, s, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
