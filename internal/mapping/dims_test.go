package mapping

import (
	"math/rand"
	"reflect"
	"testing"

	"stfw/internal/core"
	"stfw/internal/netsim"
	"stfw/internal/vpt"
)

// irregularSendSets builds a seeded random sparse pattern: each rank sends
// to a handful of random peers with skewed volumes, the irregular shape the
// planner has to cope with.
func irregularSendSets(K int, seed int64) *core.SendSets {
	rng := rand.New(rand.NewSource(seed))
	s := core.NewSendSets(K)
	for src := 0; src < K; src++ {
		for i := 0; i < 6; i++ {
			dst := rng.Intn(K)
			if dst == src {
				continue
			}
			s.Add(src, dst, int64(1+rng.Intn(64)))
		}
	}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

// TestPlanDimsNeverWorseThanBase is the planner's core property: whatever
// the traffic, the chosen assignment's modeled cost is bounded by the base
// topology under the default (identity) placement, because that candidate
// is always in the pool and improvements must be strict.
func TestPlanDimsNeverWorseThanBase(t *testing.T) {
	const K = 64
	m, err := netsim.CrayXK7(K)
	if err != nil {
		t.Fatal(err)
	}
	base := vpt.MustNew(8, 8)
	for seed := int64(1); seed <= 5; seed++ {
		s := irregularSendSets(K, seed)
		plan, err := PlanDims(m, s, base, Options{Sweeps: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		_, baseCost, err := DimCost(m, s, base, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Cost > baseCost {
			t.Errorf("seed %d: plan cost %g worse than base %g (dims %v)", seed, plan.Cost, baseCost, plan.Dims)
		}
		if err := Validate(plan.Placement, K); err != nil {
			t.Errorf("seed %d: bad placement: %v", seed, err)
		}
		topo, err := plan.Topology()
		if err != nil {
			t.Fatalf("seed %d: bad dims %v: %v", seed, plan.Dims, err)
		}
		if topo.Size() != K {
			t.Errorf("seed %d: dims %v do not factor %d", seed, plan.Dims, K)
		}
		if plan.Split < 0 || plan.Split > len(plan.Dims) {
			t.Errorf("seed %d: split %d outside [0,%d]", seed, plan.Split, len(plan.Dims))
		}
	}
}

// TestPlanDimsDeterministic: fixed options, fixed traffic, identical plans.
func TestPlanDimsDeterministic(t *testing.T) {
	const K = 64
	m, err := netsim.CrayXC40(K)
	if err != nil {
		t.Fatal(err)
	}
	base := vpt.MustNew(4, 4, 4)
	s := irregularSendSets(K, 11)
	p1, err := PlanDims(m, s, base, Options{Sweeps: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanDims(m, s, base, Options{Sweeps: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("nondeterministic plans:\n%+v\n%+v", p1, p2)
	}
}

// TestPlanDimsSplitConsistent re-derives the split from the winner by
// independent replay: every dimension before the split moves zero words
// across node boundaries, and the first dimension after it (if any) does
// not.
func TestPlanDimsSplitConsistent(t *testing.T) {
	const K = 64
	m, err := netsim.CrayXC40(K)
	if err != nil {
		t.Fatal(err)
	}
	base := vpt.MustNew(8, 8)
	s := irregularSendSets(K, 3)
	plan, err := PlanDims(m, s, base, Options{Sweeps: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := plan.Topology()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.BuildPlan(topo, s)
	if err != nil {
		t.Fatal(err)
	}
	placed, err := m.WithPlacement(plan.Placement)
	if err != nil {
		t.Fatal(err)
	}
	perDim := make([]int64, topo.N())
	var total int64
	for d, stage := range p.Stages {
		for _, f := range stage {
			if placed.Node(f.From) != placed.Node(f.To) {
				perDim[d] += f.Words
			}
		}
		total += perDim[d]
	}
	if total != plan.CrossWords {
		t.Errorf("reported %d cross words, replay says %d", plan.CrossWords, total)
	}
	for d := 0; d < plan.Split; d++ {
		if perDim[d] != 0 {
			t.Errorf("dimension %d inside the intra-node prefix moves %d cross-node words", d, perDim[d])
		}
	}
	if plan.Split < topo.N() && perDim[plan.Split] == 0 {
		t.Errorf("split %d not maximal: dimension %d also moves no cross-node words", plan.Split, plan.Split)
	}
}

// TestPlanDimsClusteredTraffic: when every pair lives on one node and
// crossing a node boundary is catastrophically expensive, the planner must
// find an assignment that keeps all traffic intra-node, and the split must
// cover every dimension.
func TestPlanDimsClusteredTraffic(t *testing.T) {
	const K = 64
	topo, err := netsim.FitTorus(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := &netsim.Machine{
		Name:         "gamma-bound test machine",
		Topo:         topo,
		RanksPerNode: 8,
		Alpha:        1e-9,
		BetaWord:     1e-9,
		GammaHop:     1e-3,
	}
	rng := rand.New(rand.NewSource(5))
	s := core.NewSendSets(K)
	for src := 0; src < K; src++ {
		block := src / 8 * 8
		for i := 0; i < 4; i++ {
			dst := block + rng.Intn(8)
			if dst != src {
				s.Add(src, dst, int64(1+rng.Intn(32)))
			}
		}
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanDims(m, s, vpt.MustNew(4, 4, 4), Options{Sweeps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.CrossWords != 0 {
		t.Errorf("clustered traffic still crosses nodes: %d words (dims %v, placement %v)",
			plan.CrossWords, plan.Dims, plan.Placement)
	}
	if plan.Split != len(plan.Dims) {
		t.Errorf("split %d does not cover all %d dimensions of a cross-free plan", plan.Split, len(plan.Dims))
	}
}
